package crowdmax_test

import (
	"context"
	"fmt"
	"log"

	"crowdmax"
)

// ExampleSession_FindMax runs the two-phase algorithm end to end on a
// calibrated random instance.
func ExampleSession_FindMax() {
	r := crowdmax.NewRand(2015)
	cal, err := crowdmax.CalibratedUniform(1000, 10, 4, r.Child("data"))
	if err != nil {
		log.Fatal(err)
	}
	session, err := crowdmax.NewSession(crowdmax.Config{
		Naive:  crowdmax.NewThresholdWorker(cal.DeltaN, 0, r.Child("naive")),
		Expert: crowdmax.NewThresholdWorker(cal.DeltaE, 0, r.Child("expert")),
		Un:     10,
		Prices: crowdmax.Prices{Naive: 1, Expert: 50},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.FindMax(cal.Set.Items())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true rank of result: %d\n", cal.Set.Rank(res.Best.ID))
	fmt.Printf("candidates within bound: %v\n", len(res.Candidates) <= 19)
	fmt.Printf("within guarantee: %v\n", crowdmax.Distance(cal.Set.Max(), res.Best) <= 2*cal.DeltaE)
	// Output:
	// true rank of result: 1
	// candidates within bound: true
	// within guarantee: true
}

// ExampleFilter runs phase 1 alone: cheap workers shrink 1000 elements to a
// handful of candidates guaranteed to contain the maximum.
func ExampleFilter() {
	r := crowdmax.NewRand(7)
	cal, err := crowdmax.CalibratedUniform(1000, 8, 2, r.Child("data"))
	if err != nil {
		log.Fatal(err)
	}
	ledger := crowdmax.NewLedger()
	naive := crowdmax.NewOracle(
		crowdmax.NewThresholdWorker(cal.DeltaN, 0, r.Child("w")),
		crowdmax.Naive, ledger, crowdmax.NewMemo())
	candidates, err := crowdmax.Filter(context.Background(), cal.Set.Items(), naive, crowdmax.FilterOptions{Un: 8})
	if err != nil {
		log.Fatal(err)
	}
	maxKept := false
	for _, c := range candidates {
		if c.ID == cal.Set.Max().ID {
			maxKept = true
		}
	}
	fmt.Printf("candidates ≤ 2·un−1: %v\n", len(candidates) <= 15)
	fmt.Printf("maximum kept: %v\n", maxKept)
	fmt.Printf("comparisons within 4·n·un: %v\n", ledger.Naive() <= 4*1000*8)
	// Output:
	// candidates ≤ 2·un−1: true
	// maximum kept: true
	// comparisons within 4·n·un: true
}

// ExampleEstimateUn estimates the filter parameter from gold data
// (Algorithm 4) instead of assuming it.
func ExampleEstimateUn() {
	r := crowdmax.NewRand(11)
	cal, err := crowdmax.CalibratedUniform(500, 10, 3, r.Child("data"))
	if err != nil {
		log.Fatal(err)
	}
	naive := crowdmax.NewOracle(
		crowdmax.NewThresholdWorker(cal.DeltaN, 0, r.Child("w")),
		crowdmax.Naive, nil, nil)
	est, err := crowdmax.EstimateUn(context.Background(), cal.Set.Items(), naive, crowdmax.EstimateUnOptions{
		Perr: 0.5,
		N:    500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate upper-bounds the true un: %v\n", est >= 10)
	// Output:
	// estimate upper-bounds the true un: true
}

// ExampleCascadeFindMax composes three worker classes into a funnel.
func ExampleCascadeFindMax() {
	r := crowdmax.NewRand(13)
	set := crowdmax.UniformDataset(800, 0, 1, r.Child("data"))
	us := []int{30, 8, 2}
	levels := make([]crowdmax.Level, len(us))
	for i, u := range us {
		delta, err := set.DeltaForU(u)
		if err != nil {
			log.Fatal(err)
		}
		levels[i] = crowdmax.Level{
			Oracle: crowdmax.NewOracle(
				crowdmax.NewThresholdWorker(delta, 0, r.ChildN("w", i)),
				crowdmax.Class(i), nil, nil),
			U: u,
		}
	}
	res, err := crowdmax.CascadeFindMax(context.Background(), set.Items(), crowdmax.CascadeOptions{Levels: levels})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter stages: %d\n", len(res.Candidates))
	fmt.Printf("result in top 4: %v\n", set.Rank(res.Best.ID) <= 4)
	// Output:
	// filter stages: 2
	// result in top 4: true
}
