package crowdmax_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end and checks its headline
// output, so the examples can never silently rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run full scenarios; skipped in -short mode")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"./examples/quickstart", []string{"two-phase result", "savings from prefiltering"}},
		{"./examples/bestcar", []string{"finalists after the crowd phase", "expert's pick", "simulated expert's pick"}},
		{"./examples/dotcount", []string{"result: dots-100", "quality control banned"}},
		{"./examples/searcheval", []string{"two-phase: found the best result", "naive-only 2-MaxFind"}},
		{"./examples/cascade", []string{"funnel:", "professional-only baseline"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", tc.dir)
			cmd.Dir = "." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range tc.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
