#!/usr/bin/env bash
# server-smoke.sh — end-to-end smoke of the maxcrowdd service lifecycle:
#
#   1. boot on a random port, complete a mixed max/topk/score batch over
#      HTTP with honest guarantee labels (loadgen validates every label —
#      including each topk rank's — against its rung), SIGTERM the idle
#      server → exit 0;
#   2. SIGTERM with slowed jobs in flight → graceful drain (checkpoints and
#      job records land) and exit 0 within the deadline;
#   3. restart over the same state directory → the interrupted jobs resume
#      and finish, so the drain lost no work.
#
# loadgen doubles as the HTTP client, so the script needs no curl or jq.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
TMP=$(mktemp -d)
SRV_PID=
trap '[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

echo "server-smoke: building maxcrowdd and loadgen"
$GO build -o "$TMP/maxcrowdd" ./cmd/maxcrowdd
$GO build -o "$TMP/loadgen" ./cmd/loadgen

# wait_addr FILE — wait for maxcrowdd to write its bound address.
wait_addr() {
    for _ in $(seq 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "server-smoke: server never wrote $1" >&2
    return 1
}

# 1. Batch completion with honest labels, then an idle drain.
"$TMP/maxcrowdd" -addr 127.0.0.1:0 -addr-file "$TMP/addr1" -dir "$TMP/state1" &
SRV_PID=$!
wait_addr "$TMP/addr1"
"$TMP/loadgen" -server "http://$(cat "$TMP/addr1")" -jobs 9 -n 80 -un 4 -concurrency 4 \
    -mix max,topk,score
kill -TERM "$SRV_PID"
wait "$SRV_PID" # set -e: a non-zero exit fails the script
echo "server-smoke: mixed-workload batch completed, idle drain exited 0"

# 2. Drain with mixed work in flight: per-comparison latency keeps the four
# jobs (spanning all three workloads) running when the signal lands.
"$TMP/maxcrowdd" -addr 127.0.0.1:0 -addr-file "$TMP/addr2" -dir "$TMP/state2" \
    -cmp-latency 20ms -drain-timeout 30s &
SRV_PID=$!
wait_addr "$TMP/addr2"
"$TMP/loadgen" -server "http://$(cat "$TMP/addr2")" -jobs 4 -n 80 -un 4 -submit-only \
    -mix max,topk,score
sleep 1 # a few comparison round-trips, so the drain lands mid-run
START=$(date +%s)
kill -TERM "$SRV_PID"
wait "$SRV_PID"
ELAPSED=$(($(date +%s) - START))
[ "$ELAPSED" -le 45 ] || { echo "server-smoke: drain took ${ELAPSED}s" >&2; exit 1; }
RECORDS=$(ls "$TMP/state2/jobs" | wc -l)
[ "$RECORDS" -eq 4 ] || { echo "server-smoke: want 4 job records, got $RECORDS" >&2; exit 1; }
echo "server-smoke: loaded drain exited 0 in ${ELAPSED}s with all records persisted"

# 3. Restart over the same state directory: interrupted jobs resume to done.
"$TMP/maxcrowdd" -addr 127.0.0.1:0 -addr-file "$TMP/addr3" -dir "$TMP/state2" &
SRV_PID=$!
wait_addr "$TMP/addr3"
"$TMP/loadgen" -server "http://$(cat "$TMP/addr3")" -wait-all -timeout 2m
kill -TERM "$SRV_PID"
wait "$SRV_PID"
SRV_PID=
echo "server-smoke: ok"
