#!/usr/bin/env bash
# store-torture.sh — crash-and-fault torture of the maxcrowdd job store:
#
#   1. pre-seed the state directory with a poisoned record, a zero-byte
#      record, and an orphaned temp file; boot under disk-fault injection and
#      assert the server quarantines the damage, sweeps the orphan, reports
#      "degraded" on /healthz — and still serves;
#   2. run $CYCLES (default 25) kill -9 cycles: each boots the server under a
#      rotating fault plan (torn record writes, ENOSPC, failed renames and
#      fsyncs), submits a batch — some jobs carrying injected workload panics,
#      per-job deadlines, and idempotency keys, with occasional full replays
#      of a batch — records every acknowledged job ID, then SIGKILLs the
#      server mid-flight;
#   3. corrupt two surviving records by hand, boot one final time with no
#      fault injection, wait for every job to settle, and audit the books:
#      every job terminal, every acked ID either on the server or named in
#      the quarantine report (zero lost jobs), and each tenant's recorded
#      budget spend exactly equal to the sum of its results' comparisons —
#      monetary spend reconciled to the cent.
#
# loadgen doubles as the HTTP client and auditor, so no curl or jq is needed;
# the one raw /healthz probe uses bash's /dev/tcp.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
CYCLES=${CYCLES:-25}
TMP=$(mktemp -d)
STATE="$TMP/state"
JOBS="$STATE/jobs"
IDS="$TMP/acked.ids"
SRV_PID=
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

echo "store-torture: building maxcrowdd and loadgen"
$GO build -o "$TMP/maxcrowdd" ./cmd/maxcrowdd
$GO build -o "$TMP/loadgen" ./cmd/loadgen

# wait_addr FILE — wait for maxcrowdd to write its bound address.
wait_addr() {
    for _ in $(seq 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "store-torture: server never wrote $1" >&2
    return 1
}

# http_get HOST:PORT PATH — one-shot HTTP GET over bash's /dev/tcp.
http_get() {
    local hp=$1 path=$2
    exec 3<>"/dev/tcp/${hp%:*}/${hp##*:}"
    printf 'GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n' "$path" "$hp" >&3
    cat <&3
    exec 3>&- 3<&-
}

# boot PLAN SEED — start maxcrowdd over $STATE, appending to the shared log.
boot() {
    rm -f "$TMP/addr"
    local fault_args=()
    [ -n "$1" ] && fault_args=(-faults "$1" -faults-seed "$2")
    "$TMP/maxcrowdd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -dir "$STATE" \
        -cmp-latency 4ms -checkpoint-every 16 -tenant-max-cost 100000000 \
        -watchdog 2s -allow-faults "${fault_args[@]}" >>"$TMP/server.log" 2>&1 &
    SRV_PID=$!
    wait_addr "$TMP/addr"
}

# 1. Poisoned boot: pre-seeded damage must be quarantined, not fatal.
mkdir -p "$JOBS"
printf 'XXXXnot-a-record' > "$JOBS/j00424242.job"   # foreign magic
: > "$JOBS/j00424243.job"                            # zero-byte record
printf 'partial' > "$JOBS/j00424242.job.tmp-99"      # orphaned temp file

boot "torn:0.6~0.08%*.job.tmp-*" 1
http_get "$(cat "$TMP/addr")" /healthz | grep -q '"status": "degraded"' \
    || { echo "store-torture: poisoned boot did not report degraded" >&2; exit 1; }
QN=$(ls "$JOBS/quarantine" | wc -l)
[ "$QN" -ge 2 ] || { echo "store-torture: want >=2 quarantined files, got $QN" >&2; exit 1; }
if ls "$JOBS"/*.tmp-* >/dev/null 2>&1; then
    echo "store-torture: orphaned temp file survived the sweep" >&2; exit 1
fi
echo "store-torture: poisoned boot serves degraded with $QN files quarantined"

# 2. Kill -9 cycles under rotating fault plans. Submission failures are
# expected under injected faults (the server fails closed with 500); what
# must hold is that every *acknowledged* ID survives to the final audit.
PLANS=(
    "torn:0.6~0.08%*.job.tmp-*"
    "enospc~0.1%*.job.tmp-*,renamefail~0.05%*.job"
    "syncfail~0.08%*.job.tmp-*"
    ""
)
for i in $(seq 1 "$CYCLES"); do
    [ "$i" -gt 1 ] && boot "${PLANS[$((i % ${#PLANS[@]}))]}" "$i"
    LG=(-server "http://$(cat "$TMP/addr")" -jobs 6 -n 60 -un 4 -concurrency 4 \
        -submit-only -idem -seed $((100 * i)) -ids-out "$IDS")
    [ $((i % 3)) -eq 0 ] && LG+=(-fault-every 3)
    [ $((i % 4)) -eq 0 ] && LG+=(-deadline 3)
    "$TMP/loadgen" "${LG[@]}" >/dev/null 2>&1 || true
    # Every fifth cycle replays the identical batch: the idempotency keys
    # must dedupe it (same IDs acked again; the audit proves no double
    # charge, since the books still reconcile exactly).
    [ $((i % 5)) -eq 0 ] && { "$TMP/loadgen" "${LG[@]}" >/dev/null 2>&1 || true; }
    sleep 0.4
    kill -9 "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=
done
[ -s "$IDS" ] || { echo "store-torture: no job was ever acknowledged" >&2; exit 1; }
echo "store-torture: $CYCLES kill-9 cycles done, $(sort -u "$IDS" | wc -l) distinct IDs acked"

# 3. Corrupt two surviving records by hand, then the clean final boot: every
# job settles, the hand-damaged records land in quarantine, and the audit
# reconciles acked IDs and tenant budgets against what the store kept.
VICTIMS=("$JOBS"/*.job)
[ ${#VICTIMS[@]} -ge 2 ] || { echo "store-torture: fewer than 2 records survived" >&2; exit 1; }
V1=${VICTIMS[0]} V2=${VICTIMS[1]}
SIZE=$(wc -c <"$V1")
head -c $((SIZE / 2)) "$V1" > "$V1.cut" && mv "$V1.cut" "$V1"   # truncated record
printf 'XXXXgarbage' > "$V2"                                     # foreign magic

boot "" 0
"$TMP/loadgen" -server "http://$(cat "$TMP/addr")" -wait-all -allow-failed -timeout 5m
"$TMP/loadgen" -server "http://$(cat "$TMP/addr")" -audit -ids-file "$IDS" -allow-failed -ce 10
http_get "$(cat "$TMP/addr")" /healthz | grep -q '"status": "degraded"' \
    || { echo "store-torture: final boot lost the damage report" >&2; exit 1; }
kill -TERM "$SRV_PID"
wait "$SRV_PID" # set -e: a non-zero exit fails the script
SRV_PID=
echo "store-torture: ok"
