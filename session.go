package crowdmax

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/degrade"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/obs"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// ErrSessionBusy is returned by FindMax/FindMaxContext/EstimateUn when a
// Session is entered concurrently. A Session accumulates costs in a single
// ledger and is documented as not safe for concurrent use; the guard turns
// silent data races into a crisp error.
var ErrSessionBusy = errors.New("crowdmax: session already running (Session is not safe for concurrent use)")

// Config assembles a Session: the two worker pools, the filter parameter,
// and the pricing.
type Config struct {
	// Naive answers phase-1 comparisons (required).
	Naive Comparator
	// Expert answers phase-2 comparisons (required).
	Expert Comparator
	// Valuer answers the cardinal value queries of the crowd-scoring
	// workload (ScoreWorkload) with the naïve class's accuracy; comparison
	// workloads ignore it. Score runs require either a Valuer or a
	// NaiveBackend that answers value queries itself.
	Valuer Valuer
	// Un is the un(n) estimate handed to the filter; estimate it with
	// EstimateUn when unknown. Required, ≥ 1. Overestimating costs money
	// but never accuracy.
	Un int
	// Prices sets cn and ce for cost reporting; the zero value prices
	// every comparison at 0.
	Prices Prices
	// Phase2 selects the expert-phase algorithm; the zero value is
	// 2-MaxFind, the paper's practical choice.
	Phase2 Phase2Algorithm
	// Memoize caches each pair's first answer per worker class
	// (Appendix A, optimization 1). Enabled by default — set
	// DisableMemoization to turn it off.
	DisableMemoization bool
	// TrackLosses discards elements early once they have lost to un
	// distinct opponents (Appendix A, optimization 2).
	TrackLosses bool
	// Rand drives the randomized phase 2 (only needed with
	// RandomizedPhase2); defaults to a fixed-seed stream.
	Rand *Rand
	// Budget declares hard caps on comparison counts and monetary spend
	// for each FindMax run; the zero value is unlimited. A capped run that
	// hits a limit returns ErrBudgetExhausted (wrapped) alongside the
	// best-so-far partial result, and never exceeds any cap by even one
	// comparison.
	Budget BudgetLimits
	// NaiveBackend, when set, routes phase-1 comparisons through a dispatch
	// backend (flaky, retrying, or a real platform adapter) instead of
	// calling Naive in-process. Naive is still required: it remains the
	// semantic reference for the worker class.
	NaiveBackend Backend
	// ExpertBackend is the phase-2 counterpart of NaiveBackend.
	ExpertBackend Backend
	// Checkpoint enables crash recovery: snapshots of the run state are
	// written atomically to Checkpoint.Path at phase boundaries and every
	// Checkpoint.Every paid comparisons, and Session.Resume continues a
	// truncated run from the last snapshot. Requires memoization (the
	// default) and — for bit-identical resume — stateless comparators
	// (ε = 0 with an order-independent tie policy such as HashTie).
	Checkpoint CheckpointConfig
	// Chaos, when non-nil and enabled, injects semantic faults (adversarial
	// personas on the naïve backend, a deterministic crash) for robustness
	// testing; see ChaosPlan.
	Chaos *ChaosPlan
	// Health enables per-worker health tracking when a backend is a
	// WorkerPool (gold probes, quarantine) and, with HedgeAfter set, wraps
	// the backends in a hedging decorator; see HealthConfig.
	Health HealthConfig
	// Degrade, when non-nil, supervises the run with the graceful-degradation
	// controller: recoverable mid-phase failures walk the run down the
	// quality ladder instead of failing it, and Result.Guarantee reports the
	// quality actually achieved; see DegradeConfig.
	Degrade *DegradeConfig
	// Scheduler selects the comparison schedule. The zero value (Lockstep)
	// plays one platform batch per tournament group, exactly as the paper's
	// pseudo-code executes; DAGScheduler drains all data-independent groups
	// per logical step through the dependency-DAG dispatcher, reducing the
	// run's round latency without changing its answers, paid comparison
	// counts, or monetary cost.
	Scheduler SchedulerKind
	// OnPhase, when set, observes algorithm phase boundaries: it is called
	// with "start" (empty survivor set) as the run begins, "phase1" with the
	// filter's candidate set, and "done" with the final survivors. Services
	// use it to stream per-job progress. It composes with checkpointing —
	// the boundary snapshot is written before the observer runs, so the
	// observer only ever sees durable states.
	OnPhase func(phase string, survivors []Item)
	// OnDecision, when set, observes every degrade-controller decision as it
	// is appended to the log, after the process-metrics forwarding. A no-op
	// unless Config.Degrade is set.
	OnDecision func(d DegradeDecision)
}

// Session runs the two-phase algorithm with a fixed worker configuration
// and accumulates costs across runs. Create one with NewSession.
//
// A Session is NOT safe for concurrent use: runs share one cost ledger and
// the configured comparators are typically stateful (seeded random
// streams). A cheap atomic guard enforces this — a reentrant or concurrent
// FindMax/FindMaxContext/EstimateUn returns ErrSessionBusy instead of
// racing.
type Session struct {
	cfg    Config
	ledger *Ledger
	inUse  atomic.Bool
}

// enter acquires the session's single-run slot.
func (s *Session) enter() error {
	if !s.inUse.CompareAndSwap(false, true) {
		return ErrSessionBusy
	}
	return nil
}

// leave releases the slot acquired by enter.
func (s *Session) leave() { s.inUse.Store(false) }

// NewSession validates cfg and returns a ready Session.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Naive == nil {
		return nil, errors.New("crowdmax: Config.Naive is required")
	}
	if cfg.Expert == nil {
		return nil, errors.New("crowdmax: Config.Expert is required")
	}
	if cfg.Un < 1 {
		return nil, fmt.Errorf("crowdmax: Config.Un must be ≥ 1, got %d", cfg.Un)
	}
	return &Session{cfg: cfg, ledger: NewLedger()}, nil
}

// Result is the outcome of one Session.FindMax run.
type Result struct {
	// Best is the returned approximation of the maximum element. On a
	// truncated run (cancellation, budget exhaustion) it is the phase-2
	// best-so-far leader, or the zero Item when phase 2 never started.
	Best Item
	// Candidates is the phase-1 output S (|S| ≤ 2·un − 1). On a truncated
	// run it holds the survivors of the last completed filter iteration.
	Candidates []Item
	// NaiveComparisons and ExpertComparisons are this run's paid counts.
	NaiveComparisons, ExpertComparisons int64
	// Cost is this run's monetary cost under the session prices.
	Cost float64
	// Rung names the quality-ladder rung that produced Best, and Guarantee
	// its machine-checkable label. An undegraded successful run reports the
	// natural rung of its phase-2 algorithm (e.g. "expert-2maxfind" / 2δe);
	// any run that returns an error reports "best-so-far" with no bound.
	Rung      string
	Guarantee Guarantee
	// Phase1Complete reports whether the filter phase ran to completion —
	// δn-or-stronger labels are only honest when it did.
	Phase1Complete bool
	// Decisions is the degradation controller's decision log; nil when
	// Config.Degrade is unset.
	Decisions []DegradeDecision
	// Ranked is the top-k workload's output: the extracted elements best
	// first, each with the rung and guarantee its own round achieved. On a
	// truncated top-k run it holds the fully completed ranks. Nil for other
	// workloads.
	Ranked []RankedResult
	// Scores is the crowd-scoring workload's aggregated per-element scores,
	// best first (the elements fully scored before any truncation). Nil for
	// other workloads.
	Scores []ItemScore
}

// RankedResult is one rank of a top-k run: the extracted element and the
// quality rung/guarantee of the round that produced it.
type RankedResult struct {
	// Item is the element extracted at this rank.
	Item Item
	// Rung names the quality-ladder rung the rank's round completed on, and
	// Guarantee its machine-checkable label (relative to the input with all
	// better-ranked elements removed).
	Rung      string
	Guarantee Guarantee
}

// FindMax runs the two-phase algorithm on items with no cancellation
// deadline; see FindMaxContext.
func (s *Session) FindMax(items []Item) (Result, error) {
	return s.FindMaxContext(context.Background(), items)
}

// FindMaxContext runs the two-phase algorithm on items under ctx. The run
// stops promptly on cancellation, and the Config.Budget caps (when set) are
// enforced on every comparison. On cancellation or budget exhaustion the
// returned Result carries the best-so-far partial answer and the true paid
// costs alongside the error; use errors.Is(err, context.Canceled) and
// errors.Is(err, ErrBudgetExhausted) to tell the causes apart.
func (s *Session) FindMaxContext(ctx context.Context, items []Item) (Result, error) {
	return s.run(ctx, MaxFind(), items, nil)
}

// Run executes a workload on items through the session engine: the same
// backend wiring (chaos, health, hedging, checkpointing), budget
// enforcement, memoization, and checkpoint-replay resume that FindMax uses,
// with the algorithm supplied by the workload. FindMaxContext is exactly
// Run(ctx, MaxFind(), items); see TopKWorkload and ScoreWorkload for the
// other registered workloads.
func (s *Session) Run(ctx context.Context, w Workload, items []Item) (Result, error) {
	return s.run(ctx, w, items, nil)
}

// run is the workload-generic engine behind Run, FindMaxContext and Resume:
// it wires the configured backends (decorating them with chaos, health, and
// checkpoint layers as requested), optionally replays a checkpoint, hands
// the plumbed environment to the workload, and leaves cost merging and
// result labelling to it. With no Checkpoint/Chaos/Health configured and no
// backends set, the wiring collapses to the historical direct-comparator hot
// path.
func (s *Session) run(ctx context.Context, w Workload, items []Item, resume *checkpoint.State) (Result, error) {
	if w == nil {
		return Result{}, errors.New("crowdmax: nil workload")
	}
	if err := w.validate(&s.cfg, len(items)); err != nil {
		return Result{}, err
	}
	if resume != nil && resume.Kind != w.Kind() {
		return Result{}, fmt.Errorf("crowdmax: checkpoint belongs to workload %q, cannot resume it as %q", resume.Kind, w.Kind())
	}
	if err := s.enter(); err != nil {
		return Result{}, err
	}
	defer s.leave()
	runLedger := NewLedger()
	var naiveMemo, expertMemo *Memo
	var valueMemo *tournament.ValueMemo
	if !s.cfg.DisableMemoization {
		naiveMemo, expertMemo = NewMemo(), NewMemo()
		valueMemo = tournament.NewValueMemo()
	}
	var budget *Budget
	if !s.cfg.Budget.IsZero() {
		budget = NewBudget(s.cfg.Budget)
	}
	if resume != nil {
		// Replay the checkpoint: prime the memo tables with every frozen
		// answer and restore the ledger and budget totals. Re-running the
		// algorithm from the start then serves every pre-crash comparison
		// as a free memo hit billed at its original count, and the first
		// genuinely new comparison lands exactly where the crashed run
		// stopped.
		for _, e := range resume.NaiveMemo {
			naiveMemo.Prime(int(e.A), int(e.B), int(e.Winner))
		}
		for _, e := range resume.ExpertMemo {
			expertMemo.Prime(int(e.A), int(e.B), int(e.Winner))
		}
		for _, e := range resume.ValueMemo {
			valueMemo.Prime(int(e.ID), int(e.Rep), e.Value)
		}
		runLedger.AddSnapshot(cost.Snapshot{
			Comparisons: resume.Comparisons,
			MemoHits:    resume.MemoHits,
			Steps:       resume.Steps,
		})
		for i := 0; i < cost.MaxClasses; i++ {
			budget.Preload(Class(i), resume.BudgetSpent[i])
		}
	}
	r := s.cfg.Rand
	if r == nil {
		r = NewRand(0)
	}

	nb, eb := s.cfg.NaiveBackend, s.cfg.ExpertBackend
	ckOn := s.cfg.Checkpoint.Path != ""
	chaosOn := s.cfg.Chaos != nil && s.cfg.Chaos.Enabled()
	healthOn := !s.cfg.Health.IsZero()
	if ckOn || chaosOn || healthOn {
		// These layers are backend decorators; manufacture simulated
		// backends around the configured comparators (and valuer, so value
		// queries keep flowing through the decorators) when none are set.
		if nb == nil {
			if s.cfg.Valuer != nil {
				nb = dispatch.NewSimulatedValuer(s.cfg.Naive, s.cfg.Valuer)
			} else {
				nb = NewSimulatedBackend(s.cfg.Naive)
			}
		}
		if eb == nil {
			eb = NewSimulatedBackend(s.cfg.Expert)
		}
	}
	if chaosOn {
		// Chaos windows are positions on the run's paid-comparison clock;
		// memo replay never bills new comparisons, so a resumed run re-enters
		// every fault window at exactly the comparison that first opened it.
		clock := func() int64 { return runLedger.Snapshot().TotalComparisons() }
		var err error
		nb, eb, _, err = s.cfg.Chaos.Apply(nb, eb, clock)
		if err != nil {
			return Result{}, err
		}
	}
	if healthOn {
		if p, ok := nb.(*WorkerPool); ok {
			p.EnableHealth(s.cfg.Health)
		}
		if p, ok := eb.(*WorkerPool); ok {
			p.EnableHealth(s.cfg.Health)
		}
	}
	// The degrade controller's MinExperts precondition reads the expert
	// pool's live active-worker count — and its MinTrust precondition the
	// naïve pool's extraction confidence; grab both pools before hedge and
	// checkpoint decorators hide them behind dispatch.Func wrappers.
	expertPool, _ := eb.(*WorkerPool)
	naivePool, _ := nb.(*WorkerPool)
	if d := s.cfg.Health.HedgeAfter; healthOn && d > 0 {
		nb = dispatch.NewHedge(nb, d)
		eb = dispatch.NewHedge(eb, d)
	}
	hooks := &snapHooks{}
	var ck *ckWriter
	if ckOn {
		if s.cfg.DisableMemoization {
			return Result{}, errors.New("crowdmax: Config.Checkpoint requires memoization (resume replays the memo tables)")
		}
		ck = newCkWriter(s.cfg.Checkpoint, s.checkpointState(w.Kind(), items, r.Seed(), runLedger, budget, naiveMemo, expertMemo, valueMemo, hooks))
		nb, eb = ck.wrap(nb), ck.wrap(eb)
	}

	no := NewOracle(s.cfg.Naive, Naive, runLedger, naiveMemo).WithBackend(nb)
	eo := NewOracle(s.cfg.Expert, Expert, runLedger, expertMemo).WithBackend(eb)
	if s.cfg.Valuer != nil {
		no.WithValuer(s.cfg.Valuer)
	}
	if valueMemo != nil {
		no.WithValueMemo(valueMemo)
	}
	if budget != nil {
		no.WithBudget(budget)
		eo.WithBudget(budget)
	}
	env := &runEnv{
		s:          s,
		items:      items,
		resume:     resume,
		runLedger:  runLedger,
		budget:     budget,
		r:          r,
		no:         no,
		eo:         eo,
		ck:         ck,
		expertPool: expertPool,
		naivePool:  naivePool,
		hooks:      hooks,
	}
	// prepare runs before the start boundary so controllers and workload
	// state registered in the snapshot hooks are visible to every snapshot,
	// including the immediate one below.
	if err := w.prepare(env); err != nil {
		return Result{}, err
	}
	if ck != nil {
		// An immediate snapshot makes even a crash before the first
		// interval resumable; phase boundaries refresh it.
		ck.boundary("start", nil)
	}
	if s.cfg.OnPhase != nil {
		s.cfg.OnPhase("start", nil)
	}
	return w.run(ctx, env)
}

// degradeOptions builds the degrade.Run options a supervised run shares
// across workloads: live signal sampling (budget headroom, pool health,
// deadline) and decision forwarding to obs and the user's observer.
func (s *Session) degradeOptions(ctx context.Context, env *runEnv, ropt core.RandomizedOptions) degrade.Options {
	return degrade.Options{
		Un:          s.cfg.Un,
		TrackLosses: s.cfg.TrackLosses,
		Randomized:  ropt,
		Scheduler:   s.cfg.Scheduler,
		Signals: func() degrade.Signals {
			sig := degrade.Unconstrained()
			if env.budget != nil {
				sig.NaiveRemaining = env.budget.RemainingFor(worker.Naive)
				sig.ExpertRemaining = env.budget.RemainingFor(worker.Expert)
			}
			if env.expertPool != nil {
				sig.ActiveExperts = env.expertPool.ActiveWorkers()
			}
			// Trust confidence comes from whichever pool runs a graph
			// scorer; phase-1 health lives on the naïve pool, so it wins.
			if env.naivePool != nil {
				sig.TrustConfidence = env.naivePool.TrustConfidence()
			}
			if sig.TrustConfidence < 0 && env.expertPool != nil {
				sig.TrustConfidence = env.expertPool.TrustConfidence()
			}
			if dl, ok := ctx.Deadline(); ok {
				sig.HasDeadline = true
				sig.DeadlineLeft = time.Until(dl)
			}
			return sig
		},
		OnDecision: func(d degrade.Decision) {
			if m := obs.Active(); m != nil {
				m.DegradeDecision(d.Direction())
			}
			if s.cfg.OnDecision != nil {
				s.cfg.OnDecision(d)
			}
		},
	}
}

// findMaxDegraded is the max-find workload's tail under a degrade
// controller: it hands the wired oracles to degrade.Run and maps the
// supervised Outcome onto Result.
func (s *Session) findMaxDegraded(ctx context.Context, env *runEnv, ctl *degrade.Controller) (Result, error) {
	opt := s.degradeOptions(ctx, env, core.RandomizedOptions{R: env.r.Child("phase2")})
	opt.OnPhase = s.phaseHook(env.ck)
	out, err := degrade.Run(ctx, env.items, env.no, env.eo, ctl, opt)
	if err == nil && env.ck != nil {
		err = env.ck.Err()
	}
	s.ledger.Add(env.runLedger)
	rung, guarantee := out.Rung.Name, out.Rung.Guarantee
	if err != nil {
		// A fatal error (crash, cancellation) means no rung completed; the
		// partial leader carries no bound.
		rung, guarantee = "best-so-far", GuaranteeNone
	}
	return Result{
		Best:              out.Best,
		Candidates:        out.Candidates,
		NaiveComparisons:  env.runLedger.Naive(),
		ExpertComparisons: env.runLedger.Expert(),
		Cost:              env.runLedger.Cost(s.cfg.Prices),
		Rung:              rung,
		Guarantee:         guarantee,
		Phase1Complete:    out.Phase1Complete,
		Decisions:         out.Decisions,
	}, err
}

// phaseHook composes the checkpoint writer's boundary snapshot with the
// user's Config.OnPhase observer — snapshot first, so the observer never
// reports a boundary that is not yet durable.
func (s *Session) phaseHook(ck *ckWriter) func(phase string, survivors []Item) {
	user := s.cfg.OnPhase
	if ck == nil {
		return user
	}
	if user == nil {
		return ck.boundary
	}
	return func(phase string, survivors []Item) {
		ck.boundary(phase, survivors)
		user(phase, survivors)
	}
}

// TotalCost returns the monetary cost accumulated across all FindMax runs
// of this session.
func (s *Session) TotalCost() float64 { return s.ledger.Cost(s.cfg.Prices) }

// TotalComparisons returns the accumulated (naïve, expert) comparison
// counts across all runs.
func (s *Session) TotalComparisons() (naive, expert int64) {
	return s.ledger.Naive(), s.ledger.Expert()
}

// EstimateUn runs Algorithm 4 with this session's naïve workers: it
// estimates an upper bound for un(n) from a training set whose maximum is
// known (gold data), to be fed back into Config.Un. The estimation
// comparisons are billed to the session like any other naïve work.
//
// Deprecated: EstimateUn cannot be cancelled and bypasses the session's
// Config.Budget caps — estimation comparisons are billed but never held
// against the limits. Use EstimateUnContext, which honours both.
func (s *Session) EstimateUn(training []Item, perr float64, n int) (int, error) {
	return s.estimateUn(context.Background(), training, perr, n, false)
}

// EstimateUnContext is EstimateUn under a context and the session budget: the
// estimation stops promptly on cancellation, and when Config.Budget is set
// its caps apply to the estimation comparisons exactly as they do to a run —
// a capped estimation returns ErrBudgetExhausted (wrapped) rather than
// overspending.
func (s *Session) EstimateUnContext(ctx context.Context, training []Item, perr float64, n int) (int, error) {
	return s.estimateUn(ctx, training, perr, n, true)
}

func (s *Session) estimateUn(ctx context.Context, training []Item, perr float64, n int, budgeted bool) (int, error) {
	if err := s.enter(); err != nil {
		return 0, err
	}
	defer s.leave()
	runLedger := NewLedger()
	no := NewOracle(s.cfg.Naive, Naive, runLedger, nil).WithBackend(s.cfg.NaiveBackend)
	if budgeted && !s.cfg.Budget.IsZero() {
		no.WithBudget(NewBudget(s.cfg.Budget))
	}
	est, err := core.EstimateUn(ctx, training, no, core.EstimateUnOptions{Perr: perr, N: n})
	if err != nil {
		return 0, err
	}
	s.ledger.Add(runLedger)
	return est, nil
}

// Bounds evaluates the paper's closed-form guarantees for an input of size
// n under this session's un: the maximum naïve comparisons (Lemma 3), the
// maximum expert comparisons with a 2-MaxFind phase 2 (Theorem 1), the
// candidate-set bound, and the worst-case cost under the session prices.
//
// Deprecated: Bounds cannot report cancellation to callers embedding it in
// request paths; use BoundsContext.
func (s *Session) Bounds(n int) (naiveMax, expertMax float64, candidates int, worstCost float64) {
	naiveMax, expertMax, candidates, worstCost, _ = s.BoundsContext(context.Background(), n)
	return naiveMax, expertMax, candidates, worstCost
}

// BoundsContext is Bounds with a context: services evaluating bounds inside
// a request handler get the standard cancellation check (the computation is
// closed-form, so the context is only consulted once, up front).
func (s *Session) BoundsContext(ctx context.Context, n int) (naiveMax, expertMax float64, candidates int, worstCost float64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, 0, err
	}
	naiveMax = core.Phase1UpperBound(n, s.cfg.Un)
	expertMax = core.Phase2ExpertUpperBound(s.cfg.Un)
	candidates = core.CandidateSetBound(s.cfg.Un)
	worstCost = naiveMax*s.cfg.Prices.Unit(worker.Naive) + expertMax*s.cfg.Prices.Unit(worker.Expert)
	return naiveMax, expertMax, candidates, worstCost, nil
}
