package crowdmax

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"crowdmax/internal/core"
	"crowdmax/internal/worker"
)

// ErrSessionBusy is returned by FindMax/FindMaxContext/EstimateUn when a
// Session is entered concurrently. A Session accumulates costs in a single
// ledger and is documented as not safe for concurrent use; the guard turns
// silent data races into a crisp error.
var ErrSessionBusy = errors.New("crowdmax: session already running (Session is not safe for concurrent use)")

// Config assembles a Session: the two worker pools, the filter parameter,
// and the pricing.
type Config struct {
	// Naive answers phase-1 comparisons (required).
	Naive Comparator
	// Expert answers phase-2 comparisons (required).
	Expert Comparator
	// Un is the un(n) estimate handed to the filter; estimate it with
	// EstimateUn when unknown. Required, ≥ 1. Overestimating costs money
	// but never accuracy.
	Un int
	// Prices sets cn and ce for cost reporting; the zero value prices
	// every comparison at 0.
	Prices Prices
	// Phase2 selects the expert-phase algorithm; the zero value is
	// 2-MaxFind, the paper's practical choice.
	Phase2 Phase2Algorithm
	// Memoize caches each pair's first answer per worker class
	// (Appendix A, optimization 1). Enabled by default — set
	// DisableMemoization to turn it off.
	DisableMemoization bool
	// TrackLosses discards elements early once they have lost to un
	// distinct opponents (Appendix A, optimization 2).
	TrackLosses bool
	// Rand drives the randomized phase 2 (only needed with
	// RandomizedPhase2); defaults to a fixed-seed stream.
	Rand *Rand
	// Budget declares hard caps on comparison counts and monetary spend
	// for each FindMax run; the zero value is unlimited. A capped run that
	// hits a limit returns ErrBudgetExhausted (wrapped) alongside the
	// best-so-far partial result, and never exceeds any cap by even one
	// comparison.
	Budget BudgetLimits
	// NaiveBackend, when set, routes phase-1 comparisons through a dispatch
	// backend (flaky, retrying, or a real platform adapter) instead of
	// calling Naive in-process. Naive is still required: it remains the
	// semantic reference for the worker class.
	NaiveBackend Backend
	// ExpertBackend is the phase-2 counterpart of NaiveBackend.
	ExpertBackend Backend
}

// Session runs the two-phase algorithm with a fixed worker configuration
// and accumulates costs across runs. Create one with NewSession.
//
// A Session is NOT safe for concurrent use: runs share one cost ledger and
// the configured comparators are typically stateful (seeded random
// streams). A cheap atomic guard enforces this — a reentrant or concurrent
// FindMax/FindMaxContext/EstimateUn returns ErrSessionBusy instead of
// racing.
type Session struct {
	cfg    Config
	ledger *Ledger
	inUse  atomic.Bool
}

// enter acquires the session's single-run slot.
func (s *Session) enter() error {
	if !s.inUse.CompareAndSwap(false, true) {
		return ErrSessionBusy
	}
	return nil
}

// leave releases the slot acquired by enter.
func (s *Session) leave() { s.inUse.Store(false) }

// NewSession validates cfg and returns a ready Session.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Naive == nil {
		return nil, errors.New("crowdmax: Config.Naive is required")
	}
	if cfg.Expert == nil {
		return nil, errors.New("crowdmax: Config.Expert is required")
	}
	if cfg.Un < 1 {
		return nil, fmt.Errorf("crowdmax: Config.Un must be ≥ 1, got %d", cfg.Un)
	}
	return &Session{cfg: cfg, ledger: NewLedger()}, nil
}

// Result is the outcome of one Session.FindMax run.
type Result struct {
	// Best is the returned approximation of the maximum element. On a
	// truncated run (cancellation, budget exhaustion) it is the phase-2
	// best-so-far leader, or the zero Item when phase 2 never started.
	Best Item
	// Candidates is the phase-1 output S (|S| ≤ 2·un − 1). On a truncated
	// run it holds the survivors of the last completed filter iteration.
	Candidates []Item
	// NaiveComparisons and ExpertComparisons are this run's paid counts.
	NaiveComparisons, ExpertComparisons int64
	// Cost is this run's monetary cost under the session prices.
	Cost float64
}

// FindMax runs the two-phase algorithm on items with no cancellation
// deadline; see FindMaxContext.
func (s *Session) FindMax(items []Item) (Result, error) {
	return s.FindMaxContext(context.Background(), items)
}

// FindMaxContext runs the two-phase algorithm on items under ctx. The run
// stops promptly on cancellation, and the Config.Budget caps (when set) are
// enforced on every comparison. On cancellation or budget exhaustion the
// returned Result carries the best-so-far partial answer and the true paid
// costs alongside the error; use errors.Is(err, context.Canceled) and
// errors.Is(err, ErrBudgetExhausted) to tell the causes apart.
func (s *Session) FindMaxContext(ctx context.Context, items []Item) (Result, error) {
	if err := s.enter(); err != nil {
		return Result{}, err
	}
	defer s.leave()
	runLedger := NewLedger()
	var naiveMemo, expertMemo *Memo
	if !s.cfg.DisableMemoization {
		naiveMemo, expertMemo = NewMemo(), NewMemo()
	}
	no := NewOracle(s.cfg.Naive, Naive, runLedger, naiveMemo).WithBackend(s.cfg.NaiveBackend)
	eo := NewOracle(s.cfg.Expert, Expert, runLedger, expertMemo).WithBackend(s.cfg.ExpertBackend)
	if !s.cfg.Budget.IsZero() {
		b := NewBudget(s.cfg.Budget)
		no.WithBudget(b)
		eo.WithBudget(b)
	}
	r := s.cfg.Rand
	if r == nil {
		r = NewRand(0)
	}
	res, err := core.FindMax(ctx, items, no, eo, core.FindMaxOptions{
		Un:          s.cfg.Un,
		Phase2:      s.cfg.Phase2,
		TrackLosses: s.cfg.TrackLosses,
		Randomized:  core.RandomizedOptions{R: r.Child("phase2")},
	})
	s.ledger.Add(runLedger)
	return Result{
		Best:              res.Best,
		Candidates:        res.Candidates,
		NaiveComparisons:  runLedger.Naive(),
		ExpertComparisons: runLedger.Expert(),
		Cost:              runLedger.Cost(s.cfg.Prices),
	}, err
}

// TotalCost returns the monetary cost accumulated across all FindMax runs
// of this session.
func (s *Session) TotalCost() float64 { return s.ledger.Cost(s.cfg.Prices) }

// TotalComparisons returns the accumulated (naïve, expert) comparison
// counts across all runs.
func (s *Session) TotalComparisons() (naive, expert int64) {
	return s.ledger.Naive(), s.ledger.Expert()
}

// EstimateUn runs Algorithm 4 with this session's naïve workers: it
// estimates an upper bound for un(n) from a training set whose maximum is
// known (gold data), to be fed back into Config.Un. The estimation
// comparisons are billed to the session like any other naïve work.
func (s *Session) EstimateUn(training []Item, perr float64, n int) (int, error) {
	if err := s.enter(); err != nil {
		return 0, err
	}
	defer s.leave()
	runLedger := NewLedger()
	no := NewOracle(s.cfg.Naive, Naive, runLedger, nil).WithBackend(s.cfg.NaiveBackend)
	est, err := core.EstimateUn(context.Background(), training, no, core.EstimateUnOptions{Perr: perr, N: n})
	if err != nil {
		return 0, err
	}
	s.ledger.Add(runLedger)
	return est, nil
}

// Bounds evaluates the paper's closed-form guarantees for an input of size
// n under this session's un: the maximum naïve comparisons (Lemma 3), the
// maximum expert comparisons with a 2-MaxFind phase 2 (Theorem 1), the
// candidate-set bound, and the worst-case cost under the session prices.
func (s *Session) Bounds(n int) (naiveMax, expertMax float64, candidates int, worstCost float64) {
	naiveMax = core.Phase1UpperBound(n, s.cfg.Un)
	expertMax = core.Phase2ExpertUpperBound(s.cfg.Un)
	candidates = core.CandidateSetBound(s.cfg.Un)
	worstCost = naiveMax*s.cfg.Prices.Unit(worker.Naive) + expertMax*s.cfg.Prices.Unit(worker.Expert)
	return naiveMax, expertMax, candidates, worstCost
}
