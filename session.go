package crowdmax

import (
	"errors"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/worker"
)

// Config assembles a Session: the two worker pools, the filter parameter,
// and the pricing.
type Config struct {
	// Naive answers phase-1 comparisons (required).
	Naive Comparator
	// Expert answers phase-2 comparisons (required).
	Expert Comparator
	// Un is the un(n) estimate handed to the filter; estimate it with
	// EstimateUn when unknown. Required, ≥ 1. Overestimating costs money
	// but never accuracy.
	Un int
	// Prices sets cn and ce for cost reporting; the zero value prices
	// every comparison at 0.
	Prices Prices
	// Phase2 selects the expert-phase algorithm; the zero value is
	// 2-MaxFind, the paper's practical choice.
	Phase2 Phase2Algorithm
	// Memoize caches each pair's first answer per worker class
	// (Appendix A, optimization 1). Enabled by default — set
	// DisableMemoization to turn it off.
	DisableMemoization bool
	// TrackLosses discards elements early once they have lost to un
	// distinct opponents (Appendix A, optimization 2).
	TrackLosses bool
	// Rand drives the randomized phase 2 (only needed with
	// RandomizedPhase2); defaults to a fixed-seed stream.
	Rand *Rand
}

// Session runs the two-phase algorithm with a fixed worker configuration
// and accumulates costs across runs. Create one with NewSession. A Session
// is not safe for concurrent use.
type Session struct {
	cfg    Config
	ledger *Ledger
}

// NewSession validates cfg and returns a ready Session.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Naive == nil {
		return nil, errors.New("crowdmax: Config.Naive is required")
	}
	if cfg.Expert == nil {
		return nil, errors.New("crowdmax: Config.Expert is required")
	}
	if cfg.Un < 1 {
		return nil, fmt.Errorf("crowdmax: Config.Un must be ≥ 1, got %d", cfg.Un)
	}
	return &Session{cfg: cfg, ledger: NewLedger()}, nil
}

// Result is the outcome of one Session.FindMax run.
type Result struct {
	// Best is the returned approximation of the maximum element.
	Best Item
	// Candidates is the phase-1 output S (|S| ≤ 2·un − 1).
	Candidates []Item
	// NaiveComparisons and ExpertComparisons are this run's paid counts.
	NaiveComparisons, ExpertComparisons int64
	// Cost is this run's monetary cost under the session prices.
	Cost float64
}

// FindMax runs the two-phase algorithm on items.
func (s *Session) FindMax(items []Item) (Result, error) {
	runLedger := NewLedger()
	var naiveMemo, expertMemo *Memo
	if !s.cfg.DisableMemoization {
		naiveMemo, expertMemo = NewMemo(), NewMemo()
	}
	no := NewOracle(s.cfg.Naive, Naive, runLedger, naiveMemo)
	eo := NewOracle(s.cfg.Expert, Expert, runLedger, expertMemo)
	r := s.cfg.Rand
	if r == nil {
		r = NewRand(0)
	}
	res, err := core.FindMax(items, no, eo, core.FindMaxOptions{
		Un:          s.cfg.Un,
		Phase2:      s.cfg.Phase2,
		TrackLosses: s.cfg.TrackLosses,
		Randomized:  core.RandomizedOptions{R: r.Child("phase2")},
	})
	if err != nil {
		return Result{}, err
	}
	s.ledger.Add(runLedger)
	return Result{
		Best:              res.Best,
		Candidates:        res.Candidates,
		NaiveComparisons:  runLedger.Naive(),
		ExpertComparisons: runLedger.Expert(),
		Cost:              runLedger.Cost(s.cfg.Prices),
	}, nil
}

// TotalCost returns the monetary cost accumulated across all FindMax runs
// of this session.
func (s *Session) TotalCost() float64 { return s.ledger.Cost(s.cfg.Prices) }

// TotalComparisons returns the accumulated (naïve, expert) comparison
// counts across all runs.
func (s *Session) TotalComparisons() (naive, expert int64) {
	return s.ledger.Naive(), s.ledger.Expert()
}

// EstimateUn runs Algorithm 4 with this session's naïve workers: it
// estimates an upper bound for un(n) from a training set whose maximum is
// known (gold data), to be fed back into Config.Un. The estimation
// comparisons are billed to the session like any other naïve work.
func (s *Session) EstimateUn(training []Item, perr float64, n int) (int, error) {
	runLedger := NewLedger()
	no := NewOracle(s.cfg.Naive, Naive, runLedger, nil)
	est, err := core.EstimateUn(training, no, core.EstimateUnOptions{Perr: perr, N: n})
	if err != nil {
		return 0, err
	}
	s.ledger.Add(runLedger)
	return est, nil
}

// Bounds evaluates the paper's closed-form guarantees for an input of size
// n under this session's un: the maximum naïve comparisons (Lemma 3), the
// maximum expert comparisons with a 2-MaxFind phase 2 (Theorem 1), the
// candidate-set bound, and the worst-case cost under the session prices.
func (s *Session) Bounds(n int) (naiveMax, expertMax float64, candidates int, worstCost float64) {
	naiveMax = core.Phase1UpperBound(n, s.cfg.Un)
	expertMax = core.Phase2ExpertUpperBound(s.cfg.Un)
	candidates = core.CandidateSetBound(s.cfg.Un)
	worstCost = naiveMax*s.cfg.Prices.Unit(worker.Naive) + expertMax*s.cfg.Prices.Unit(worker.Expert)
	return naiveMax, expertMax, candidates, worstCost
}
