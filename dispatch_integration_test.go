package crowdmax

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowdmax/internal/dataset"
)

// blockingBackend parks every comparison on ctx.Done(), modelling a crowd
// platform that never answers. entered is closed when the first comparison
// arrives, so tests can cancel exactly while a request is in flight.
type blockingBackend struct {
	entered chan struct{}
	once    sync.Once
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{entered: make(chan struct{})}
}

func (b *blockingBackend) Answer(ctx context.Context, req BackendRequest) (BackendAnswer, error) {
	b.once.Do(func() { close(b.entered) })
	<-ctx.Done()
	return BackendAnswer{}, ctx.Err()
}

// sessionWithBackends mirrors testSession but routes the chosen phases
// through dispatch backends.
func sessionWithBackends(t *testing.T, cal dataset.Calibrated, un int, seed uint64, naiveB, expertB Backend) *Session {
	t.Helper()
	r := NewRand(seed)
	s, err := NewSession(Config{
		Naive:         NewThresholdWorker(cal.DeltaN, 0, r.Child("naive")),
		Expert:        NewThresholdWorker(cal.DeltaE, 0, r.Child("expert")),
		Un:            un,
		Prices:        Prices{Naive: 1, Expert: 50},
		NaiveBackend:  naiveB,
		ExpertBackend: expertB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFindMaxContextCancelMidFilter(t *testing.T) {
	r := NewRand(11)
	cal, err := dataset.UniformCalibrated(300, 6, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 blocks forever: the very first naïve comparison parks on the
	// context, so cancellation must unwind the run from inside the filter.
	bb := newBlockingBackend()
	s := sessionWithBackends(t, cal, 6, 500, bb, nil)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-bb.entered
		cancel()
	}()
	start := time.Now()
	res, err := s.FindMaxContext(ctx, cal.Set.Items())
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Partial result is well-formed: no comparison completed, so nothing
	// was paid, and with zero completed filter iterations nobody has been
	// eliminated — the survivor set is still the whole input.
	if res.NaiveComparisons != 0 || res.ExpertComparisons != 0 || res.Cost != 0 {
		t.Fatalf("blocked run paid: %+v", res)
	}
	if len(res.Candidates) != cal.Set.Len() {
		t.Fatalf("partial candidates = %d, want the untouched input (%d)",
			len(res.Candidates), cal.Set.Len())
	}
}

func TestFindMaxContextCancelMidPhase2(t *testing.T) {
	r := NewRand(12)
	cal, err := dataset.UniformCalibrated(300, 6, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 runs in-process; phase 2 blocks, so the cancellation lands
	// after the filter has produced its candidate set.
	bb := newBlockingBackend()
	s := sessionWithBackends(t, cal, 6, 501, nil, bb)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-bb.entered
		cancel()
	}()
	start := time.Now()
	res, err := s.FindMaxContext(ctx, cal.Set.Items())
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Phase 1 completed: the candidate set is the real filter output and
	// its comparisons are billed; phase 2 paid nothing.
	if len(res.Candidates) == 0 {
		t.Fatal("phase-1 candidates missing from partial result")
	}
	if max := 2*6 - 1; len(res.Candidates) > max {
		t.Fatalf("|S| = %d > %d", len(res.Candidates), max)
	}
	if res.NaiveComparisons == 0 {
		t.Fatal("phase-1 comparisons missing from partial result")
	}
	if res.ExpertComparisons != 0 {
		t.Fatalf("blocked phase 2 billed %d expert comparisons", res.ExpertComparisons)
	}
	// The best-so-far leader is one of the candidates.
	found := false
	for _, c := range res.Candidates {
		if c.ID == res.Best.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("partial Best (id %d) is not a candidate", res.Best.ID)
	}
}

func TestSessionReentrancyGuard(t *testing.T) {
	r := NewRand(13)
	cal, err := dataset.UniformCalibrated(200, 5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	bb := newBlockingBackend()
	s := sessionWithBackends(t, cal, 5, 502, bb, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.FindMaxContext(ctx, cal.Set.Items())
		done <- err
	}()
	<-bb.entered
	// The first run is parked inside the filter: every concurrent entry
	// must be refused rather than race on the shared ledger.
	if _, err := s.FindMax(cal.Set.Items()); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("concurrent FindMax: err = %v, want ErrSessionBusy", err)
	}
	if _, err := s.EstimateUn(cal.Set.Items(), 0.5, 200); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("concurrent EstimateUn: err = %v, want ErrSessionBusy", err)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("parked run: err = %v, want context.Canceled", err)
	}
	// The slot is released: a new run is admitted again (it fails on its
	// already-cancelled context, not on the guard).
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if _, err := s.FindMaxContext(dead, cal.Set.Items()); !errors.Is(err, context.Canceled) {
		t.Fatalf("slot not released after cancelled run: err = %v", err)
	}
}

// budgetSession builds a fresh session with identical worker streams for
// every call, so runs are bit-for-bit reproducible and budget truncation is
// deterministic.
func budgetSession(t *testing.T, cal dataset.Calibrated, lim BudgetLimits) *Session {
	t.Helper()
	r := NewRand(700)
	s, err := NewSession(Config{
		Naive:  NewThresholdWorker(cal.DeltaN, 0, r.Child("naive")),
		Expert: NewThresholdWorker(cal.DeltaE, 0, r.Child("expert")),
		Un:     5,
		Budget: lim,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBudgetExactCapSucceedsSmallerTruncates(t *testing.T) {
	r := NewRand(14)
	cal, err := dataset.UniformCalibrated(120, 5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()

	// Reference run: unconstrained, records the exact paid total.
	ref, err := budgetSession(t, cal, BudgetLimits{}).FindMax(items)
	if err != nil {
		t.Fatal(err)
	}
	total := ref.NaiveComparisons + ref.ExpertComparisons
	if total == 0 {
		t.Fatal("reference run paid nothing")
	}

	// A budget of exactly the unconstrained total must succeed and return
	// the identical answer (same worker streams, never refused).
	res, err := budgetSession(t, cal, BudgetLimits{MaxTotal: total}).FindMax(items)
	if err != nil {
		t.Fatalf("exact budget %d failed: %v", total, err)
	}
	if res.Best.ID != ref.Best.ID {
		t.Fatalf("exact budget changed the answer: %d vs %d", res.Best.ID, ref.Best.ID)
	}
	if got := res.NaiveComparisons + res.ExpertComparisons; got != total {
		t.Fatalf("exact budget paid %d, want %d", got, total)
	}

	// Every smaller cap is exhausted, and the cap is never exceeded by
	// even one comparison.
	for cap := total - 1; cap >= 1; cap -= 7 {
		res, err := budgetSession(t, cal, BudgetLimits{MaxTotal: cap}).FindMax(items)
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("cap %d: err = %v, want ErrBudgetExhausted", cap, err)
		}
		if spent := res.NaiveComparisons + res.ExpertComparisons; spent > cap {
			t.Fatalf("cap %d exceeded: spent %d", cap, spent)
		}
	}
}

func TestFlakyRetryBackendEndToEnd(t *testing.T) {
	r := NewRand(15)
	cal, err := dataset.UniformCalibrated(200, 5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// A flaky simulated crowd healed by the retry decorator: the run must
	// complete and return a phase-2-quality answer.
	wr := NewRand(900)
	naive := NewThresholdWorker(cal.DeltaN, 0, wr.Child("naive"))
	expert := NewThresholdWorker(cal.DeltaE, 0, wr.Child("expert"))
	flaky := func(cmp Comparator, seed uint64) Backend {
		return NewRetryBackend(
			NewFlakyBackend(NewSimulatedBackend(cmp), FlakyConfig{FailureRate: 0.2, Seed: seed}),
			RetryConfig{MaxAttempts: 10, BaseBackoff: time.Microsecond},
		)
	}
	s, err := NewSession(Config{
		Naive:         naive,
		Expert:        expert,
		Un:            5,
		NaiveBackend:  flaky(naive, 1),
		ExpertBackend: flaky(expert, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.FindMax(cal.Set.Items())
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
		t.Fatalf("d(M, e) = %g > 2δe", d)
	}
	if res.NaiveComparisons == 0 || res.ExpertComparisons == 0 {
		t.Fatal("backend run billed nothing")
	}
}

// slowFirstBackend answers every request correctly but stalls the first call
// long enough for a hedge decorator to launch its duplicate; calls counts how
// many requests actually reached the backend.
type slowFirstBackend struct {
	calls atomic.Int64
	stall time.Duration
}

func (b *slowFirstBackend) Answer(ctx context.Context, req BackendRequest) (BackendAnswer, error) {
	if b.calls.Add(1) == 1 {
		select {
		case <-time.After(b.stall):
		case <-ctx.Done():
			return BackendAnswer{}, ctx.Err()
		}
	}
	w := req.A
	if req.B.Value > req.A.Value {
		w = req.B
	}
	return BackendAnswer{Winner: w}, nil
}

func TestHedgeDuplicateChargesBudgetOnce(t *testing.T) {
	// Regression: a hedge-duplicated request must not double-bill. The
	// budget is pre-charged at the oracle layer — above the hedge — so the
	// duplicate the decorator launches below is platform spend at most, not
	// a second ledger comparison and not a second budget charge.
	slow := &slowFirstBackend{stall: 200 * time.Millisecond}
	ledger := NewLedger()
	budget := NewBudget(BudgetLimits{MaxExpert: 1})
	oracle := NewOracle(&ThresholdWorker{Tie: HashTie{Seed: 3}}, Expert, ledger, nil).
		WithBackend(NewHedgeBackend(slow, 5*time.Millisecond)).
		WithBudget(budget)

	a, b := Item{ID: 1, Value: 1}, Item{ID: 2, Value: 2}
	winner, err := oracle.Compare(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if winner.ID != 2 {
		t.Fatalf("winner = %d, want 2", winner.ID)
	}
	if got := slow.calls.Load(); got != 2 {
		t.Fatalf("backend saw %d calls, want 2 (original + hedge duplicate)", got)
	}
	if got := budget.Spent(Expert); got != 1 {
		t.Fatalf("budget charged %d expert comparisons for one hedged request, want 1", got)
	}
	if got := ledger.Expert(); got != 1 {
		t.Fatalf("ledger recorded %d paid expert comparisons, want 1", got)
	}
	// The budget cap of 1 is now exactly spent: a second comparison must be
	// refused — proof the duplicate did not consume cap headroom either.
	if _, err := oracle.Compare(context.Background(), a, Item{ID: 3, Value: 3}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second comparison: err = %v, want ErrBudgetExhausted", err)
	}
}
