// Bestcar reproduces the paper's motivating CARS scenario end to end: find
// the most expensive car in a catalogue when crowd workers cannot reliably
// compare close prices (Figure 1(b)-(c) of the paper), using cheap crowd
// workers to prefilter and a hired pricing expert to decide among the
// finalists.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdmax"
)

func main() {
	r := crowdmax.NewRand(7)

	// The synthetic stand-in for the paper's cars.com catalogue: 110
	// cars, $14K–$130K, every pair at least $500 apart.
	catalogue, cars, err := crowdmax.CarsDataset(crowdmax.CarsConfig{}, r.Child("cars"))
	if err != nil {
		log.Fatal(err)
	}
	set, err := crowdmax.SampleDataset(catalogue, 50, r.Child("sample"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d cars, submitted sample: %d\n", len(cars), set.Len())
	fmt.Printf("ground truth best: %s\n\n", set.Max().Label)

	// Crowd workers follow the expertise-barrier regime measured in the
	// paper's Figure 2(b): below ~20%% price difference their collective
	// lean is a per-pair coin that majority voting cannot fix.
	world := crowdmax.NewWorkerWorld(crowdmax.PlateauRegime{Threshold: 0.2, Epsilon: 0.02}, r.Child("world"))

	// A hired pricing expert can distinguish prices more than ~$3K apart.
	expert := crowdmax.NewThresholdWorker(3000, 0, r.Child("expert"))

	session, err := crowdmax.NewSession(crowdmax.Config{
		Naive:  world.Worker(r.Child("crowd")),
		Expert: expert,
		Un:     5,
		Prices: crowdmax.Prices{Naive: 1, Expert: 100}, // experts are 100× pricier
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.FindMax(set.Items())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("finalists after the crowd phase:")
	for _, c := range res.Candidates {
		fmt.Printf("  %s (true rank %d)\n", c.Label, set.Rank(c.ID))
	}
	fmt.Printf("\nexpert's pick: %s (true rank %d)\n", res.Best.Label, set.Rank(res.Best.ID))
	fmt.Printf("cost: %d crowd + %d expert comparisons = %.0f units\n",
		res.NaiveComparisons, res.ExpertComparisons, res.Cost)

	// What the paper's Table 2 shows: simulating the expert with 7 crowd
	// votes does NOT work for this task.
	fmt.Println("\nfor contrast, a \"simulated expert\" (majority of 7 crowd answers):")
	simulated := majorityOf(world, r.Child("sim"), 7)
	ledger := crowdmax.NewLedger()
	so := crowdmax.NewOracle(simulated, crowdmax.Expert, ledger, crowdmax.NewMemo())
	simBest, err := crowdmax.TwoMaxFind(context.Background(), res.Candidates, so)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated expert's pick: %s (true rank %d)\n", simBest.Label, set.Rank(simBest.ID))
}

// majorityOf aggregates k independent answers from the crowd world into one
// comparator — the paper's expert simulation.
func majorityOf(world *crowdmax.WorkerWorld, r *crowdmax.Rand, k int) crowdmax.Comparator {
	return crowdmax.ComparatorFunc(func(a, b crowdmax.Item) crowdmax.Item {
		votesA := 0
		for i := 0; i < k; i++ {
			if world.Worker(r).Compare(a, b).ID == a.ID {
				votesA++
			}
		}
		if 2*votesA > k {
			return a
		}
		return b
	})
}
