// Quickstart: find the (approximate) maximum of a random instance with the
// two-phase expert-aware algorithm, and compare what it cost against doing
// everything with experts.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdmax"
)

func main() {
	r := crowdmax.NewRand(42)

	// A random instance of 2000 elements, with thresholds calibrated so
	// that 10 elements are naïve-indistinguishable from the maximum and
	// 4 are expert-indistinguishable.
	cal, err := crowdmax.CalibratedUniform(2000, 10, 4, r.Child("data"))
	if err != nil {
		log.Fatal(err)
	}
	set := cal.Set
	fmt.Printf("instance: %d elements, true max value %.4f\n", set.Len(), set.Max().Value)
	fmt.Printf("worker thresholds: naive δn=%.4g, expert δe=%.4g\n", cal.DeltaN, cal.DeltaE)

	// Workers follow the threshold model T(δ, ε): arbitrary answers below
	// their threshold, correct (ε = 0) above it.
	session, err := crowdmax.NewSession(crowdmax.Config{
		Naive:  crowdmax.NewThresholdWorker(cal.DeltaN, 0, r.Child("naive")),
		Expert: crowdmax.NewThresholdWorker(cal.DeltaE, 0, r.Child("expert")),
		Un:     10,
		Prices: crowdmax.Prices{Naive: 1, Expert: 50},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := session.FindMax(set.Items())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntwo-phase result: value %.4f, true rank %d\n", res.Best.Value, set.Rank(res.Best.ID))
	fmt.Printf("phase 1 kept %d candidates (guaranteed ≤ %d)\n", len(res.Candidates), 2*10-1)
	fmt.Printf("cost: %d naive + %d expert comparisons = %.0f monetary units\n",
		res.NaiveComparisons, res.ExpertComparisons, res.Cost)

	// Baseline: run 2-MaxFind with experts over the whole input.
	ledger := crowdmax.NewLedger()
	eo := crowdmax.NewOracle(crowdmax.NewThresholdWorker(cal.DeltaE, 0, r.Child("e2")),
		crowdmax.Expert, ledger, crowdmax.NewMemo())
	best, err := crowdmax.TwoMaxFind(context.Background(), set.Items(), eo)
	if err != nil {
		log.Fatal(err)
	}
	baseCost := ledger.Cost(crowdmax.Prices{Naive: 1, Expert: 50})
	fmt.Printf("\nexpert-only baseline: value %.4f, true rank %d, cost %.0f\n",
		best.Value, set.Rank(best.ID), baseCost)
	fmt.Printf("savings from prefiltering with cheap naive workers: %.0f%%\n",
		100*(1-res.Cost/baseCost))
}
