// Dotcount reproduces the paper's DOTS scenario on the simulated
// crowdsourcing platform: find the image with the fewest dots using a crowd
// whose accuracy improves with the number of voters (the wisdom-of-crowds
// regime), with gold questions filtering out spammers — and simulate the
// expert phase with majority votes, which works for this task.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdmax"
)

func main() {
	r := crowdmax.NewRand(11)

	// 50 images with 100..1080 dots; values are negated counts so
	// max-finding finds the fewest dots.
	set := crowdmax.DotsDataset(50)
	fmt.Printf("task: find the image with the fewest dots among %d images\n", set.Len())
	fmt.Printf("ground truth: %s\n\n", set.Max().Label)

	// The simulated platform: 25 honest workers whose per-pair accuracy
	// follows the wisdom regime fitted to the paper's Figure 2(a), plus 5
	// spammers answering at random.
	plat, err := crowdmax.NewPlatform(crowdmax.PlatformConfig{R: r.Child("platform")})
	if err != nil {
		log.Fatal(err)
	}
	world := crowdmax.NewWorkerWorld(crowdmax.WisdomRegime{Sharpness: 5}, r.Child("world"))
	for i := 0; i < 25; i++ {
		plat.AddWorker(world.Worker(r.ChildN("worker", i)))
	}
	for i := 0; i < 5; i++ {
		plat.AddWorker(crowdmax.Spammer{R: r.ChildN("spammer", i)})
	}

	// Gold questions with known answers (the paper used 30 extra images);
	// workers under 70% gold accuracy are ignored.
	gold := crowdmax.DotsGold()
	var goldPairs []crowdmax.PlatformPair
	for i := 15; i < len(gold); i++ {
		goldPairs = append(goldPairs, crowdmax.PlatformPair{A: gold[i-15], B: gold[i]})
	}
	plat.SetGold(goldPairs)

	// Phase 1: each comparison is answered by 21 workers and
	// majority-aggregated, as in the paper's CrowdFlower setup; each
	// tournament round is submitted as one platform batch (one logical
	// step in the Section 3 execution model).
	ledger := crowdmax.NewLedger()
	naive := crowdmax.NewOracle(plat.BatchComparator(21), crowdmax.Naive, ledger, crowdmax.NewMemo())
	candidates, err := crowdmax.Filter(context.Background(), set.Items(), naive, crowdmax.FilterOptions{Un: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 kept %d candidates:\n", len(candidates))
	for _, c := range candidates {
		fmt.Printf("  %s (true rank %d)\n", c.Label, set.Rank(c.ID))
	}

	// Phase 2: no real experts needed — for this task a "simulated
	// expert" (majority of 7 fresh answers) suffices, exactly the paper's
	// Table 1 finding.
	expert := crowdmax.NewOracle(plat.BatchComparator(7), crowdmax.Expert, ledger, crowdmax.NewMemo())
	best, err := crowdmax.TwoMaxFind(context.Background(), candidates, expert)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nresult: %s (true rank %d)\n", best.Label, set.Rank(best.ID))
	fmt.Printf("platform stats: %d answers served (%d gold), %d logical steps, %d physical steps\n",
		plat.ServedTasks(), plat.ServedGold(), plat.LogicalSteps(), plat.PhysicalSteps())
	fmt.Printf("quality control banned %d of %d workers\n", plat.BannedWorkers(), 30)
}
