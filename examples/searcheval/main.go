// Searcheval reproduces the paper's Section 5.3 application: evaluating
// search-engine results. Crowd workers prefilter 50 results for a technical
// query; a domain expert (here: a researcher who knows the current best
// approximation algorithm) examines only the few finalists. The un(n)
// parameter is estimated from gold data with Algorithm 4 rather than
// assumed.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdmax"
)

func main() {
	r := crowdmax.NewRand(23)

	for _, query := range []crowdmax.SearchQuery{crowdmax.QueryAsymmetricTSP, crowdmax.QuerySteinerTree} {
		qr := r.Child(string(query))
		set, err := crowdmax.SearchDataset(query, 50, 0.05, qr.Child("data"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %q — %d results\n", query, set.Len())
		fmt.Printf("ground-truth best: %s\n", set.Max().Label)

		// Crowd workers hit the expertise barrier on closely relevant
		// results (relative relevance difference under 20%).
		world := crowdmax.NewWorkerWorld(crowdmax.PlateauRegime{Threshold: 0.2, Epsilon: 0.02}, qr.Child("world"))
		crowd := world.Worker(qr.Child("crowd"))

		// Estimate perr and un from the result list used as gold data
		// (Section 4.4), instead of guessing.
		est := crowdmax.NewOracle(crowd, crowdmax.Naive, nil, nil)
		perr, err := crowdmax.EstimatePerr(context.Background(), set.Items(), est, crowdmax.EstimatePerrOptions{
			Pairs: 60, Votes: 7, R: qr.Child("perr"),
		})
		if err != nil {
			log.Fatal(err)
		}
		un, err := crowdmax.EstimateUn(context.Background(), set.Items(), est, crowdmax.EstimateUnOptions{
			Perr: perr, N: set.Len(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if un > set.Len()/4 {
			un = set.Len() / 4
		}
		fmt.Printf("estimated perr=%.2f, un(50)=%d\n", perr, un)

		// The expert: distinguishes relevance gaps above 0.02, so the
		// clear best (gap ≥ 0.05) is always identified.
		session, err := crowdmax.NewSession(crowdmax.Config{
			Naive:  crowd,
			Expert: crowdmax.NewThresholdWorker(0.02, 0, qr.Child("expert")),
			Un:     un,
			Prices: crowdmax.Prices{Naive: 1, Expert: 50},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.FindMax(set.Items())
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MISSED"
		if res.Best.ID == set.Max().ID {
			verdict = "found"
		}
		fmt.Printf("two-phase: %s the best result (|S|=%d, cost %.0f)\n",
			verdict, len(res.Candidates), res.Cost)

		// The paper's negative result: a naive-only 2-MaxFind is not
		// reliable for this task.
		no := crowdmax.NewOracle(world.Worker(qr.Child("naiveonly")), crowdmax.Naive, nil, crowdmax.NewMemo())
		naiveBest, err := crowdmax.TwoMaxFind(context.Background(), set.Items(), no)
		if err != nil {
			log.Fatal(err)
		}
		naiveVerdict := "MISSED"
		if naiveBest.ID == set.Max().ID {
			naiveVerdict = "found"
		}
		fmt.Printf("naive-only 2-MaxFind: %s the best result (returned true rank %d)\n\n",
			naiveVerdict, set.Rank(naiveBest.ID))
	}
}
