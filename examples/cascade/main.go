// Cascade demonstrates the paper's multi-class extension (Section 3.3): a
// three-tier workforce — a machine-learning model (free-ish, coarse), crowd
// workers (cheap, medium), and a hired professional (expensive, fine) —
// finding the best element of a large set. Each tier filters the input for
// the next, so the professional only ever sees a handful of finalists.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdmax"
)

func main() {
	r := crowdmax.NewRand(31)
	const n = 5000

	// Generate the instance and calibrate each tier's discernment: the ML
	// model confuses the top 60 elements, the crowd the top 12, the
	// professional only the top 3.
	set := crowdmax.UniformDataset(n, 0, 1, r.Child("data"))
	us := []int{60, 12, 3}
	deltas := make([]float64, len(us))
	for i, u := range us {
		d, err := set.DeltaForU(u)
		if err != nil {
			log.Fatal(err)
		}
		deltas[i] = d
	}
	fmt.Printf("instance: %d elements; tier discernment u = %v\n\n", n, us)

	// Per-comparison prices: the ML model is ~free, the crowd costs 1,
	// the professional 100.
	prices := []float64{0.01, 1, 100}
	names := []string{"ML model", "crowd", "professional"}

	ledgers := make([]*crowdmax.Ledger, len(us))
	levels := make([]crowdmax.Level, len(us))
	for i := range us {
		ledgers[i] = crowdmax.NewLedger()
		w := crowdmax.NewThresholdWorker(deltas[i], 0, r.ChildN("tier", i))
		levels[i] = crowdmax.Level{
			Oracle: crowdmax.NewOracle(w, crowdmax.Class(i), ledgers[i], crowdmax.NewMemo()),
			U:      us[i],
		}
	}

	res, err := crowdmax.CascadeFindMax(context.Background(), set.Items(), crowdmax.CascadeOptions{Levels: levels})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("funnel:")
	fmt.Printf("  input                 %6d elements\n", n)
	totalCost := 0.0
	for i := range us {
		comparisons := ledgers[i].Comparisons(crowdmax.Class(i))
		cost := float64(comparisons) * prices[i]
		totalCost += cost
		stage := "final pick"
		if i < len(res.Candidates) {
			stage = fmt.Sprintf("%6d survivors", len(res.Candidates[i]))
		}
		fmt.Printf("  %-12s → %s   (%d comparisons, cost %.2f)\n",
			names[i], stage, comparisons, cost)
	}
	fmt.Printf("\nresult: value %.4f, true rank %d of %d\n",
		res.Best.Value, set.Rank(res.Best.ID), n)
	fmt.Printf("total cost: %.2f\n\n", totalCost)

	// Contrast: hand the professional the whole input.
	direct := crowdmax.NewLedger()
	pw := crowdmax.NewThresholdWorker(deltas[2], 0, r.Child("direct"))
	po := crowdmax.NewOracle(pw, crowdmax.Expert, direct, crowdmax.NewMemo())
	best, err := crowdmax.TwoMaxFind(context.Background(), set.Items(), po)
	if err != nil {
		log.Fatal(err)
	}
	directCost := float64(direct.Expert()) * prices[2]
	fmt.Printf("professional-only baseline: true rank %d, %d comparisons, cost %.2f (%.0f× the cascade)\n",
		set.Rank(best.ID), direct.Expert(), directCost, directCost/totalCost)
}
