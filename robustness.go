package crowdmax

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"crowdmax/internal/chaos"
	"crowdmax/internal/checkpoint"
	"crowdmax/internal/cost"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/faults"
	"crowdmax/internal/obs"
	"crowdmax/internal/tournament"
	"crowdmax/internal/trust"
)

// StorageFS is the injectable filesystem durable artifacts are written
// through; see internal/faults. Nil means the real filesystem.
type StorageFS = faults.FS

// CheckpointConfig enables crash recovery for Session runs.
type CheckpointConfig struct {
	// Path is the snapshot file; empty disables checkpointing. Snapshots
	// are written atomically (temp file + rename), so the file always
	// holds one complete snapshot.
	Path string
	// Every also snapshots after every N paid backend comparisons, in
	// addition to the run-start and phase-boundary snapshots; defaults
	// to 500. Memo hits are free and do not advance the counter.
	Every int
	// FS routes snapshot reads and writes through an injectable
	// filesystem so durability is testable under injected disk faults;
	// nil uses the real filesystem.
	FS StorageFS
	// OnSnapshot, when non-nil, is called after every successfully
	// written snapshot. It runs on the snapshotting goroutine under the
	// writer's lock, so it must be fast and must not block — it exists
	// for progress stamps (the service watchdog), not for work.
	OnSnapshot func()
}

// ChaosPlan declares the semantic faults to inject into a Session run:
// an adversarial persona poisoning the naïve backend and/or a deterministic
// crash after a fixed number of comparisons. Parse one from the -chaos flag
// syntax with ParseChaosPlan.
type ChaosPlan = chaos.Plan

// ParseChaosPlan parses a comma-separated chaos spec such as "crash:500",
// "spammer:0.2" or "colluder:7,crash:1000"; see chaos.ParsePlan.
func ParseChaosPlan(spec string) (ChaosPlan, error) { return chaos.ParsePlan(spec) }

// ErrInjectedCrash marks a run killed by the chaos crash injector. It wraps
// ErrPermanentBackend, so retry decorators never retry it; resume the run
// from its checkpoint with Session.Resume.
var ErrInjectedCrash = chaos.ErrCrash

// ErrPermanentBackend marks backend failures that retrying cannot repair;
// RetryBackend gives up on them immediately.
var ErrPermanentBackend = dispatch.ErrPermanent

// RetryError is the terminal failure of a retry backend: it carries the
// attempt count and (via errors.Unwrap) the final underlying error.
type RetryError = dispatch.RetryError

// HealthConfig configures worker health tracking: gold-set probing,
// disagreement sampling, the quarantine circuit breaker, and hedging.
type HealthConfig = dispatch.HealthConfig

// ScorerMode selects the detector feeding a WorkerPool's quarantine
// breaker: ScorerGold (gold probes + disagreement rate, the zero value),
// ScorerGraph (gold-free agreement-graph extraction), or ScorerHybrid
// (both).
type ScorerMode = dispatch.ScorerMode

// The scorer modes HealthConfig.Scorer accepts.
const (
	ScorerGold   = dispatch.ScorerGold
	ScorerGraph  = dispatch.ScorerGraph
	ScorerHybrid = dispatch.ScorerHybrid
)

// TrustConfig parameterizes the agreement-graph extractor behind
// ScorerGraph and ScorerHybrid (HealthConfig.Trust).
type TrustConfig = trust.Config

// TrustExtraction is one dense-core extraction from the worker agreement
// graph: the expert core, everyone's agreement scores, and the confidence
// the breaker demands before acting on graph verdicts. Read the latest one
// from WorkerPool.TrustExtraction.
type TrustExtraction = trust.Extraction

// GoldPair is one probe comparison with a known correct answer.
type GoldPair = dispatch.GoldPair

// GoldFromTraining builds gold probes from a training set with known
// maximum, Algorithm-4 style; see dispatch.GoldFromTraining.
func GoldFromTraining(training []Item, minGap float64, max int) []GoldPair {
	return dispatch.GoldFromTraining(training, minGap, max)
}

// WorkerPool multiplexes comparisons across named worker backends and,
// with HealthConfig enabled, quarantines workers below the reliability
// floor.
type WorkerPool = dispatch.Pool

// PoolWorker is one named worker backend in a WorkerPool.
type PoolWorker = dispatch.PoolWorker

// NewWorkerPool builds a pool over workers with seeded routing.
func NewWorkerPool(workers []PoolWorker, seed uint64) (*WorkerPool, error) {
	return dispatch.NewPool(workers, seed)
}

// NewHedgeBackend duplicates requests the inner backend has not answered
// within delay and returns the first successful answer. Wall-clock-driven
// and therefore not deterministic; keep it out of checkpointed runs.
func NewHedgeBackend(inner Backend, delay time.Duration) Backend {
	return dispatch.NewHedge(inner, delay)
}

// Resume continues a run truncated by a crash (or any permanent failure)
// from the snapshot at path, which must have been written by a session with
// the same configuration fingerprint — seed, un, phase-2 algorithm,
// loss-tracking setting — applied to the same items. The workload is
// reconstructed from the snapshot's kind and state blob (a top-k snapshot
// resumes as the same top-k run, a score snapshot as the same score run;
// pre-workload snapshots load as max-find). The snapshot's memo tables are
// replayed, so already-paid comparisons are served free at their recorded
// cost, and with deterministic comparators (ε = 0 and an order-independent
// tie policy such as HashTie) the resumed run returns answers, paid totals,
// and candidate sets bit-identical to an uninterrupted run with the same
// seed.
func (s *Session) Resume(ctx context.Context, path string, items []Item) (Result, error) {
	st, err := checkpoint.LoadFS(s.cfg.Checkpoint.FS, path)
	if err != nil {
		return Result{}, err
	}
	w, err := workloadFromState(st)
	if err != nil {
		return Result{}, err
	}
	if err := s.checkpointCompatible(st, items); err != nil {
		return Result{}, err
	}
	return s.run(ctx, w, items, st)
}

// ResumeWorkload is Resume for callers that know which workload the
// snapshot must belong to: it refuses a snapshot whose recorded kind differs
// from w's instead of silently running whatever the file says.
func (s *Session) ResumeWorkload(ctx context.Context, w Workload, path string, items []Item) (Result, error) {
	if w == nil {
		return Result{}, errors.New("crowdmax: nil workload")
	}
	st, err := checkpoint.LoadFS(s.cfg.Checkpoint.FS, path)
	if err != nil {
		return Result{}, err
	}
	if st.Kind != w.Kind() {
		return Result{}, fmt.Errorf("crowdmax: checkpoint belongs to workload %q, cannot resume it as %q", st.Kind, w.Kind())
	}
	if err := s.checkpointCompatible(st, items); err != nil {
		return Result{}, err
	}
	return s.run(ctx, w, items, st)
}

// workloadFromState reconstructs the workload a snapshot belongs to from its
// recorded kind and state blob.
func workloadFromState(st *checkpoint.State) (Workload, error) {
	switch st.Kind {
	case MaxFindKind:
		return MaxFind(), nil
	case TopKKind:
		k, _, err := decodeTopKBlob(st.Workload)
		if err != nil {
			return nil, err
		}
		return TopKWorkload(k), nil
	case ScoreKind:
		cfg, err := decodeScoreBlob(st.Workload)
		if err != nil {
			return nil, err
		}
		return ScoreWorkload(cfg), nil
	default:
		return nil, fmt.Errorf("crowdmax: checkpoint has unknown workload kind %q", st.Kind)
	}
}

// checkpointCompatible refuses snapshots whose configuration fingerprint
// does not match this session and input — resuming under a different
// configuration would silently produce answers neither run would have.
func (s *Session) checkpointCompatible(st *checkpoint.State, items []Item) error {
	if s.cfg.DisableMemoization {
		return errors.New("crowdmax: Resume requires memoization (resume replays the checkpoint's memo tables)")
	}
	seed := uint64(0)
	if s.cfg.Rand != nil {
		seed = s.cfg.Rand.Seed()
	}
	switch {
	case st.Un != s.cfg.Un:
		return fmt.Errorf("crowdmax: checkpoint was taken with un=%d, session has un=%d", st.Un, s.cfg.Un)
	case st.Phase2 != int(s.cfg.Phase2):
		return fmt.Errorf("crowdmax: checkpoint was taken with phase2=%d, session has %d", st.Phase2, int(s.cfg.Phase2))
	case st.TrackLosses != s.cfg.TrackLosses:
		return errors.New("crowdmax: checkpoint and session disagree on TrackLosses")
	case st.Seed != seed:
		return fmt.Errorf("crowdmax: checkpoint was taken with seed %d, session has %d", st.Seed, seed)
	case st.NItems != len(items):
		return fmt.Errorf("crowdmax: checkpoint covers %d items, got %d", st.NItems, len(items))
	case st.ItemsHash != itemsFingerprint(items):
		return errors.New("crowdmax: checkpoint items hash does not match the given items")
	}
	return nil
}

// itemsFingerprint hashes the input's IDs and value bits (FNV-1a) so Resume
// can detect a snapshot applied to different data.
func itemsFingerprint(items []Item) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, it := range items {
		binary.LittleEndian.PutUint64(buf[:8], uint64(int64(it.ID)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(it.Value))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// checkpointState returns the snapshot builder bound to one run's live
// state: the ledger and budget are read at snapshot time (atomic /
// mutex-guarded), and the memo tables are copied stripe by stripe.
func (s *Session) checkpointState(kind string, items []Item, seed uint64, led *Ledger, budget *Budget, nm, em *Memo, vm *tournament.ValueMemo, hooks *snapHooks) func(phase string, survivors []int64) *checkpoint.State {
	fp := itemsFingerprint(items)
	n := len(items)
	return func(phase string, survivors []int64) *checkpoint.State {
		st := &checkpoint.State{
			Kind:        kind,
			Seed:        seed,
			Un:          s.cfg.Un,
			Phase2:      int(s.cfg.Phase2),
			TrackLosses: s.cfg.TrackLosses,
			NItems:      n,
			ItemsHash:   fp,
			Phase:       phase,
			Survivors:   append([]int64(nil), survivors...),
		}
		snap := led.Snapshot()
		st.Comparisons, st.MemoHits, st.Steps = snap.Comparisons, snap.MemoHits, snap.Steps
		if budget != nil {
			for i := 0; i < cost.MaxClasses; i++ {
				st.BudgetSpent[i] = budget.Spent(Class(i))
			}
			st.BudgetCost = budget.SpentCost()
		}
		st.NaiveMemo = memoPairs(nm)
		st.ExpertMemo = memoPairs(em)
		st.ValueMemo = valueAnswers(vm)
		if hooks != nil {
			ctl, blob := hooks.snapshot()
			if ctl != nil {
				// The achieved rung and decision-log hash ride in the snapshot
				// so a resumed run can be audited against the walk that
				// produced it.
				st.Rung, st.DecisionHash = ctl.Snapshot()
			}
			st.Workload = blob
		}
		return st
	}
}

// memoPairs copies a memo table into the checkpoint's sorted triple form.
func memoPairs(m *Memo) []checkpoint.PairAnswer {
	if m == nil {
		return nil
	}
	entries := m.Entries()
	out := make([]checkpoint.PairAnswer, len(entries))
	for i, e := range entries {
		out[i] = checkpoint.PairAnswer{A: int64(e[0]), B: int64(e[1]), Winner: int64(e[2])}
	}
	return out
}

// ckWriter drives a run's checkpointing: a backend decorator counts paid
// comparisons and snapshots every N of them, and the core algorithm's
// OnPhase hook snapshots at phase boundaries. A failed snapshot write fails
// the run fast — the next dispatched comparison returns the write error —
// because continuing to spend money a crash would strand defeats the point.
type ckWriter struct {
	mu        sync.Mutex
	path      string
	every     int64
	since     int64
	phase     string
	survivors []int64
	build     func(phase string, survivors []int64) *checkpoint.State
	fs        faults.FS
	onSnap    func()
	err       error
}

func newCkWriter(cfg CheckpointConfig, build func(string, []int64) *checkpoint.State) *ckWriter {
	every := int64(cfg.Every)
	if every <= 0 {
		every = 500
	}
	return &ckWriter{path: cfg.Path, every: every, phase: "start", build: build,
		fs: cfg.FS, onSnap: cfg.OnSnapshot}
}

// wrap decorates a backend so successful answers advance the interval
// counter; the decorator sits outermost, so chaos-injected failures and
// memo hits (which never reach a backend) do not count.
func (w *ckWriter) wrap(b Backend) Backend {
	return dispatch.Func(func(ctx context.Context, req BackendRequest) (BackendAnswer, error) {
		w.mu.Lock()
		failed := w.err
		w.mu.Unlock()
		if failed != nil {
			return BackendAnswer{}, failed
		}
		ans, err := b.Answer(ctx, req)
		if err != nil {
			return ans, err
		}
		w.mu.Lock()
		w.since++
		if w.since >= w.every {
			w.since = 0
			w.snapshotLocked("interval")
		}
		w.mu.Unlock()
		return ans, nil
	})
}

// boundary records a phase boundary and snapshots immediately. Matches the
// core.FindMaxOptions.OnPhase signature.
func (w *ckWriter) boundary(phase string, survivors []Item) {
	ids := make([]int64, len(survivors))
	for i, it := range survivors {
		ids[i] = int64(it.ID)
	}
	w.mu.Lock()
	w.phase = phase
	w.survivors = ids
	w.since = 0
	w.snapshotLocked(phase)
	w.mu.Unlock()
}

// snapshotLocked builds and atomically writes one snapshot; callers hold
// w.mu, which also serializes concurrent interval snapshots from parallel
// batches.
func (w *ckWriter) snapshotLocked(label string) {
	st := w.build(label, w.survivors)
	if err := checkpoint.SaveFS(w.fs, w.path, st); err != nil {
		if w.err == nil {
			w.err = err
		}
		return
	}
	if m := obs.Active(); m != nil {
		m.CheckpointWrite()
	}
	if w.onSnap != nil {
		w.onSnap()
	}
}

// Err returns the first snapshot-write failure, if any.
func (w *ckWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
