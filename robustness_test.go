package crowdmax

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/dataset"
)

// statelessSession builds a session over deterministic, order-independent
// workers (ε = 0, HashTie) — the configuration under which checkpoint/resume
// promises bit-identical results.
func statelessSession(t *testing.T, cal dataset.Calibrated, seed uint64, mutate func(*Config)) *Session {
	t.Helper()
	cfg := Config{
		Naive:  &ThresholdWorker{Delta: cal.DeltaN, Tie: HashTie{Seed: seed}},
		Expert: &ThresholdWorker{Delta: cal.DeltaE, Tie: HashTie{Seed: seed + 1}},
		Un:     cal.Un,
		Prices: Prices{Naive: 1, Expert: 50},
		Rand:   NewRand(seed),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	cal, err := dataset.UniformCalibrated(200, 6, 2, NewRand(33))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	const seed = 77

	// Uninterrupted baseline (checkpointing on, to prove the decorator
	// itself does not perturb the run).
	baseDir := t.TempDir()
	base := statelessSession(t, cal, seed, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: filepath.Join(baseDir, "base.ck"), Every: 64}
	})
	want, err := base.FindMax(items)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(cal.Set.Max(), want.Best); d > 2*cal.DeltaE {
		t.Fatalf("baseline answer is %g from the max, want ≤ 2δe = %g", d, 2*cal.DeltaE)
	}

	for _, crashAfter := range []int64{50, 333, 1000, 2500} {
		t.Run(fmt.Sprintf("crash-after-%d", crashAfter), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ck")
			crashed := statelessSession(t, cal, seed, func(c *Config) {
				c.Checkpoint = CheckpointConfig{Path: path, Every: 64}
				c.Chaos = &ChaosPlan{CrashAfter: crashAfter}
			})
			_, err := crashed.FindMax(items)
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("crashed run: err = %v, want ErrInjectedCrash", err)
			}
			if !errors.Is(err, ErrPermanentBackend) {
				t.Fatalf("crash error %v does not wrap ErrPermanentBackend", err)
			}

			resumed := statelessSession(t, cal, seed, func(c *Config) {
				c.Checkpoint = CheckpointConfig{Path: path, Every: 64}
			})
			got, err := resumed.Resume(context.Background(), path, items)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if got.Best.ID != want.Best.ID {
				t.Fatalf("resumed best = %d, uninterrupted best = %d", got.Best.ID, want.Best.ID)
			}
			if got.NaiveComparisons != want.NaiveComparisons ||
				got.ExpertComparisons != want.ExpertComparisons ||
				got.Cost != want.Cost {
				t.Fatalf("resumed totals (%d naive, %d expert, cost %g) differ from uninterrupted (%d, %d, %g)",
					got.NaiveComparisons, got.ExpertComparisons, got.Cost,
					want.NaiveComparisons, want.ExpertComparisons, want.Cost)
			}
			if len(got.Candidates) != len(want.Candidates) {
				t.Fatalf("resumed candidate set size %d, want %d", len(got.Candidates), len(want.Candidates))
			}
			for i := range got.Candidates {
				if got.Candidates[i].ID != want.Candidates[i].ID {
					t.Fatalf("candidate %d: resumed %d, uninterrupted %d",
						i, got.Candidates[i].ID, want.Candidates[i].ID)
				}
			}
		})
	}
}

func TestResumeRejectsMismatchedFingerprint(t *testing.T) {
	cal, err := dataset.UniformCalibrated(120, 5, 2, NewRand(34))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	path := filepath.Join(t.TempDir(), "run.ck")
	s := statelessSession(t, cal, 5, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: path, Every: 32}
	})
	if _, err := s.FindMax(items); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
		items  []Item
	}{
		{name: "different-un", mutate: func(c *Config) { c.Un++ }, items: items},
		{name: "different-seed", mutate: func(c *Config) { c.Rand = NewRand(999) }, items: items},
		{name: "different-phase2", mutate: func(c *Config) { c.Phase2 = AllPlayAllPhase2 }, items: items},
		{name: "different-items", mutate: nil, items: items[:len(items)-1]},
		{name: "memoization-off", mutate: func(c *Config) { c.DisableMemoization = true }, items: items},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			other := statelessSession(t, cal, 5, func(c *Config) {
				if tc.mutate != nil {
					tc.mutate(c)
				}
			})
			if _, err := other.Resume(context.Background(), path, tc.items); err == nil {
				t.Fatal("Resume accepted a mismatched checkpoint")
			}
		})
	}
}

func TestResumeRejectsCorruptFile(t *testing.T) {
	cal, err := dataset.UniformCalibrated(60, 4, 2, NewRand(35))
	if err != nil {
		t.Fatal(err)
	}
	s := statelessSession(t, cal, 5, nil)
	path := filepath.Join(t.TempDir(), "garbage.ck")
	if err := os.WriteFile(path, []byte("CMCKgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resume(context.Background(), path, cal.Set.Items()); err == nil {
		t.Fatal("Resume accepted a corrupt checkpoint file")
	}
}

// dieAfterN answers the first n requests via cmp, then fails every request
// permanently with ErrBackendUnavailable — a platform that went away and
// never came back.
type dieAfterN struct {
	mu    sync.Mutex
	n     int64
	cmp   Comparator
	calls int64
}

func (d *dieAfterN) Answer(ctx context.Context, req BackendRequest) (BackendAnswer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.calls++
	if d.calls > d.n {
		return BackendAnswer{}, fmt.Errorf("platform gone: %w", ErrBackendUnavailable)
	}
	return BackendAnswer{Winner: d.cmp.Compare(req.A, req.B)}, nil
}

func TestBackendDiesMidPhase1(t *testing.T) {
	cal, err := dataset.UniformCalibrated(200, 6, 2, NewRand(36))
	if err != nil {
		t.Fatal(err)
	}
	const survive = 40
	naive := &ThresholdWorker{Delta: cal.DeltaN, Tie: HashTie{Seed: 9}}
	dying := &dieAfterN{n: survive, cmp: naive}
	s := statelessSession(t, cal, 9, func(c *Config) {
		c.NaiveBackend = dying
	})
	res, err := s.FindMaxContext(context.Background(), cal.Set.Items())
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("err = %v, want ErrBackendUnavailable", err)
	}
	// The result must report the true paid spend: exactly the comparisons
	// the backend answered before dying, priced accordingly.
	if res.NaiveComparisons != survive {
		t.Fatalf("paid %d naive comparisons, want %d", res.NaiveComparisons, survive)
	}
	if res.ExpertComparisons != 0 {
		t.Fatalf("phase 2 ran after a phase-1 death: %d expert comparisons", res.ExpertComparisons)
	}
	if want := float64(survive) * 1; res.Cost != want {
		t.Fatalf("cost = %g, want %g", res.Cost, want)
	}
	if res.Best.ID != 0 || res.Best.Value != 0 {
		t.Fatalf("phase-1 death still produced a best item: %+v", res.Best)
	}
}

func TestBackendDiesMidPhase2(t *testing.T) {
	cal, err := dataset.UniformCalibrated(200, 6, 2, NewRand(37))
	if err != nil {
		t.Fatal(err)
	}
	const survive = 3
	expert := &ThresholdWorker{Delta: cal.DeltaE, Tie: HashTie{Seed: 10}}
	dying := &dieAfterN{n: survive, cmp: expert}
	s := statelessSession(t, cal, 9, func(c *Config) {
		c.ExpertBackend = dying
	})
	res, err := s.FindMaxContext(context.Background(), cal.Set.Items())
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("err = %v, want ErrBackendUnavailable", err)
	}
	// Phase 1 completed: the partial result carries the full candidate set
	// and the naïve spend, plus exactly the expert comparisons that were
	// answered before the platform died.
	if len(res.Candidates) == 0 {
		t.Fatal("phase-2 death lost the phase-1 candidate set")
	}
	if res.NaiveComparisons == 0 {
		t.Fatal("phase-2 death lost the naïve spend")
	}
	if res.ExpertComparisons != survive {
		t.Fatalf("paid %d expert comparisons, want %d", res.ExpertComparisons, survive)
	}
	if want := float64(res.NaiveComparisons)*1 + float64(survive)*50; res.Cost != want {
		t.Fatalf("cost = %g, want %g", res.Cost, want)
	}
}

func TestCheckpointRequiresMemoization(t *testing.T) {
	cal, err := dataset.UniformCalibrated(60, 4, 2, NewRand(38))
	if err != nil {
		t.Fatal(err)
	}
	s := statelessSession(t, cal, 5, func(c *Config) {
		c.DisableMemoization = true
		c.Checkpoint = CheckpointConfig{Path: filepath.Join(t.TempDir(), "run.ck")}
	})
	if _, err := s.FindMax(cal.Set.Items()); err == nil {
		t.Fatal("checkpointing without memoization was accepted")
	}
}

// degradedOutageSession is statelessSession plus the degrade controller and
// a chaos plan that kills the expert backend for good from paid comparison
// `from` on — the acceptance scenario for graceful degradation.
func degradedOutageSession(t *testing.T, cal dataset.Calibrated, seed uint64, from int64, mutate func(*Config)) *Session {
	t.Helper()
	return statelessSession(t, cal, seed, func(c *Config) {
		plan, err := ParseChaosPlan(fmt.Sprintf("expert-outage:1.0@%d+", from))
		if err != nil {
			t.Fatal(err)
		}
		plan.Seed = seed
		plan.PairHash = true
		c.Chaos = &plan
		c.Degrade = &DegradeConfig{}
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestSessionDegradeExpertOutage(t *testing.T) {
	cal, err := dataset.UniformCalibrated(200, 6, 2, NewRand(35))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	s := degradedOutageSession(t, cal, 91, 40, nil)
	res, err := s.FindMax(items)
	if err != nil {
		t.Fatalf("expert outage was not absorbed: %v", err)
	}
	if res.Rung != "naive-majority" || res.Guarantee != GuaranteeDeltaN {
		t.Fatalf("degraded run reports rung %q (%q), want naive-majority (δn)", res.Rung, res.Guarantee)
	}
	if !res.Phase1Complete {
		t.Fatal("δn label claimed without a completed phase 1")
	}
	found := false
	for _, c := range res.Candidates {
		if c.ID == res.Best.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("majority answer %d is not in the candidate set", res.Best.ID)
	}
	if len(res.Decisions) < 2 {
		t.Fatalf("decision log has %d entries, want the start pick plus at least one downgrade", len(res.Decisions))
	}
	last := res.Decisions[len(res.Decisions)-1]
	if last.To != "naive-majority" || last.Direction() >= 0 {
		t.Fatalf("last decision %+v is not a downgrade to naive-majority", last)
	}
	// Without the controller the same outage is a hard failure (the
	// pre-degrade contract, still the default).
	hard := statelessSession(t, cal, 91, func(c *Config) {
		plan, perr := ParseChaosPlan("expert-outage:1.0@40+")
		if perr != nil {
			t.Fatal(perr)
		}
		plan.Seed = 91
		plan.PairHash = true
		c.Chaos = &plan
	})
	if _, err := hard.FindMax(items); !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("undegraded outage run: err = %v, want ErrBackendUnavailable", err)
	}
}

func TestSessionDegradeCrashResumeSameRung(t *testing.T) {
	cal, err := dataset.UniformCalibrated(200, 6, 2, NewRand(36))
	if err != nil {
		t.Fatal(err)
	}
	items := cal.Set.Items()
	const seed = 92

	// Uninterrupted degraded reference run: outage mid-run forces the
	// naive-majority rung.
	refPath := filepath.Join(t.TempDir(), "ref.ck")
	ref := degradedOutageSession(t, cal, seed, 40, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: refPath, Every: 16}
	})
	want, err := ref.FindMax(items)
	if err != nil {
		t.Fatal(err)
	}
	if want.Rung != "naive-majority" {
		t.Fatalf("reference run landed on %q, want naive-majority", want.Rung)
	}
	// The final snapshot carries the achieved rung and the decision-log hash.
	st, err := checkpoint.Load(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rung != "naive-majority" || st.DecisionHash == 0 {
		t.Fatalf("final snapshot carries rung %q hash %#x, want naive-majority and a non-zero hash", st.Rung, st.DecisionHash)
	}

	// Same run, crashed inside the degraded phase 2, then resumed: the
	// replay must land on the same rung with the same answer and costs.
	total := want.NaiveComparisons + want.ExpertComparisons
	path := filepath.Join(t.TempDir(), "run.ck")
	crashed := degradedOutageSession(t, cal, seed, 40, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: path, Every: 16}
		c.Chaos.CrashAfter = total - 5
	})
	if _, err := crashed.FindMax(items); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crashed run: err = %v, want ErrInjectedCrash", err)
	}
	resumed := degradedOutageSession(t, cal, seed, 40, func(c *Config) {
		c.Checkpoint = CheckpointConfig{Path: path, Every: 16}
	})
	got, err := resumed.Resume(context.Background(), path, items)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if got.Rung != want.Rung || got.Guarantee != want.Guarantee {
		t.Fatalf("resumed run landed on %q (%q), reference on %q (%q)",
			got.Rung, got.Guarantee, want.Rung, want.Guarantee)
	}
	if got.Best != want.Best {
		t.Fatalf("resumed best %+v differs from reference %+v", got.Best, want.Best)
	}
	if got.NaiveComparisons != want.NaiveComparisons || got.ExpertComparisons != want.ExpertComparisons {
		t.Fatalf("resumed totals (%d, %d) differ from reference (%d, %d)",
			got.NaiveComparisons, got.ExpertComparisons, want.NaiveComparisons, want.ExpertComparisons)
	}
	if len(got.Decisions) != len(want.Decisions) {
		t.Fatalf("resumed decision log has %d entries, reference %d", len(got.Decisions), len(want.Decisions))
	}
}

func TestSessionDegradeRejectsBadLadder(t *testing.T) {
	cal, err := dataset.UniformCalibrated(80, 4, 2, NewRand(37))
	if err != nil {
		t.Fatal(err)
	}
	s := statelessSession(t, cal, 5, func(c *Config) {
		// A ladder not ending in best-so-far could leave the controller with
		// no eligible rung; the run must refuse it up front.
		c.Degrade = &DegradeConfig{Ladder: QualityLadder{
			{Name: "expert-2maxfind", Guarantee: Guarantee2DeltaE, MinExperts: 1},
		}}
	})
	if _, err := s.FindMax(cal.Set.Items()); err == nil {
		t.Fatal("invalid ladder accepted")
	}
}
