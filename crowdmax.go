// Package crowdmax finds the maximum of a set of elements using two classes
// of crowd workers — cheap naïve workers and scarce, expensive experts — as
// introduced in "The Importance of Being Expert: Efficient Max-Finding in
// Crowdsourcing" (Anagnostopoulos, Becchetti, Fazzone, Mele, Riondato;
// SIGMOD 2015).
//
// # Model
//
// Workers compare two elements at a time and follow the threshold model
// T(δ, ε): when the elements' values differ by more than δ the worker
// returns the larger one with probability 1 − ε; when they are within δ the
// answer is arbitrary, and no amount of repetition or majority voting can
// recover the truth. Naïve workers have a large threshold δn; experts have
// δe ≪ δn and cost ce ≫ cn per comparison.
//
// # Algorithm
//
// FindMax runs the paper's two-phase algorithm: naïve workers filter the n
// elements down to at most 2·un − 1 candidates guaranteed (for ε = 0) to
// contain the maximum, using at most 4·n·un comparisons, where un counts
// the elements naïve-indistinguishable from the maximum; experts then
// extract an element within 2·δe of the maximum from the candidates using
// O(un^{3/2}) comparisons. Both phases are optimal up to constant factors.
//
// # Quick start
//
//	set := crowdmax.NewSet(values)
//	session, err := crowdmax.NewSession(crowdmax.Config{
//		Naive:  crowdmax.NewThresholdWorker(0.1, 0, rand1),
//		Expert: crowdmax.NewThresholdWorker(0.01, 0, rand2),
//		Un:     10,
//		Prices: crowdmax.Prices{Naive: 1, Expert: 50},
//	})
//	res, err := session.FindMax(set.Items())
//	// res.Best, res.Candidates, res.Cost, ...
//
// The subpackages under internal implement the full system: worker error
// models (including the empirical pair-bias model fitted to the paper's
// CrowdFlower measurements), a crowdsourcing-platform simulator with gold
// questions and spam filtering, dataset generators, and a harness that
// regenerates every table and figure of the paper's evaluation (see
// cmd/benchrun).
package crowdmax

import (
	"context"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// Item is one element of the universe: an ID, a ground-truth value v(e),
// and an optional label.
type Item = item.Item

// Set is an immutable collection of items with precomputed order
// statistics (true ranks, un/ue counts, threshold calibration).
type Set = item.Set

// NewSet builds a Set from raw values; items receive IDs 0..n−1.
func NewSet(values []float64) *Set { return item.NewSet(values) }

// NewSetItems builds a Set from labelled items, reassigning dense IDs.
func NewSetItems(items []Item) *Set { return item.NewSetItems(items) }

// Distance returns d(a, b) = |v(a) − v(b)|.
func Distance(a, b Item) float64 { return item.Distance(a, b) }

// Rand is a deterministic, splittable random stream; see NewRand.
type Rand = rng.Source

// NewRand returns a Rand seeded with seed. Use Child/ChildN to derive
// independent streams for workers and trials.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Comparator is any source of pairwise comparison answers — typically a
// simulated worker, or an adapter calling out to a real crowdsourcing
// platform.
type Comparator = worker.Comparator

// ComparatorFunc adapts a function to the Comparator interface.
type ComparatorFunc = worker.Func

// Class identifies a worker's billing/accuracy class.
type Class = worker.Class

// Worker classes.
const (
	Naive  = worker.Naive
	Expert = worker.Expert
)

// Truth is the infallible comparator (δ = 0, ε = 0); useful for tests and
// as a stand-in for a perfect expert.
var Truth = worker.Truth

// ThresholdWorker is a worker following the threshold model T(δ, ε).
type ThresholdWorker = worker.Threshold

// NewThresholdWorker returns a T(δ, ε) worker with uniformly random
// tie-breaking below the threshold, the paper's simulation default.
func NewThresholdWorker(delta, epsilon float64, r *Rand) *ThresholdWorker {
	return worker.NewThreshold(delta, epsilon, r)
}

// NewProbabilisticWorker returns a worker with a fixed error probability p
// on every comparison — the probabilistic error model of prior work, i.e.
// T(0, p).
func NewProbabilisticWorker(p float64, r *Rand) *ThresholdWorker {
	return worker.NewProbabilistic(p, r)
}

// HashTie breaks under-threshold ties by a deterministic hash of the pair —
// a pure function of its Seed and the two item IDs, independent of
// evaluation order. A ThresholdWorker with ε = 0 and a HashTie is safe for
// concurrent use, which makes it the tie-breaker to pair with
// Oracle.ParallelBatch.
type HashTie = worker.HashTie

// LogisticWorker is the Thurstone / Bradley–Terry psychometric comparator:
// P(correct) = 1/(1+exp(−d/Scale)), smooth in the value difference, with no
// hard indistinguishability radius.
type LogisticWorker = worker.Logistic

// NewLogisticWorker returns a Bradley–Terry comparator with the given
// discrimination scale.
func NewLogisticWorker(scale float64, r *Rand) *LogisticWorker {
	return worker.NewLogistic(scale, r)
}

// Valuer is any source of cardinal value estimates — the crowd-scoring
// query: "how good is this element?", answered per (element, repetition).
// The score workload asks each element Votes independent value queries and
// aggregates them robustly.
type Valuer = worker.Valuer

// ValuerFunc adapts a function to the Valuer interface.
type ValuerFunc = worker.ValuerFunc

// TruthValuer reports every element's exact value — the infallible scorer.
var TruthValuer = worker.TruthValuer

// NoisyValuer is a crowd scorer with additive seeded noise: each vote is the
// element's true value plus deterministic pseudo-Gaussian noise, a pure
// function of (Seed, element ID, rep) — so it is concurrency-safe and
// replay-stable, the value-query analogue of a HashTie comparator.
type NoisyValuer = worker.NoisyValuer

// Prices holds the per-comparison prices cn and ce of the cost model
// C(n) = xe·ce + xn·cn.
type Prices = cost.Prices

// Ledger accumulates comparison counts, memoization hits and logical steps.
type Ledger = cost.Ledger

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return cost.NewLedger() }

// Phase2Algorithm selects the expert phase: TwoMaxFind (default, the
// paper's practical choice), Randomized (the asymptotically optimal
// Algorithm 5), or AllPlayAll (the quadratic baseline).
type Phase2Algorithm = core.Phase2Algorithm

// Phase-2 algorithm choices.
const (
	TwoMaxFindPhase2 = core.Phase2TwoMaxFind
	RandomizedPhase2 = core.Phase2Randomized
	AllPlayAllPhase2 = core.Phase2AllPlayAll
)

// SchedulerKind selects the comparison schedule: LockstepScheduler (the
// default) submits one platform batch per tournament group, exactly as the
// paper's pseudo-code executes; DAGScheduler schedules comparisons as a
// dependency DAG and drains all data-ready groups per logical step,
// reducing round latency without changing answers, paid comparison counts,
// or monetary cost.
type SchedulerKind = sched.Kind

// Scheduler choices.
const (
	LockstepScheduler = sched.Lockstep
	DAGScheduler      = sched.DAG
)

// FindMaxResult reports the outcome of a two-phase run.
type FindMaxResult = core.FindMaxResult

// Oracle answers comparison requests through a worker, billing a ledger and
// optionally memoizing answers (Appendix A optimization).
type Oracle = tournament.Oracle

// Memo caches comparison answers per worker class.
type Memo = tournament.Memo

// NewMemo returns an empty memo table.
func NewMemo() *Memo { return tournament.NewMemo() }

// NewOracle binds a comparator of the given class to a ledger; memo may be
// nil to disable memoization. Call Oracle.ParallelBatch to evaluate batch
// comparisons concurrently when the comparator is concurrency-safe and
// order-independent (e.g. a ThresholdWorker with ε = 0 and a HashTie).
func NewOracle(cmp Comparator, class Class, ledger *Ledger, memo *Memo) *Oracle {
	return tournament.NewOracle(cmp, class, ledger, memo)
}

// FindMax runs Algorithm 1 with explicit oracles. Most callers should use
// Session.FindMax instead. ctx cancels the run; on cancellation or budget
// exhaustion the partial result is returned alongside the error (see
// core.FindMax).
func FindMax(ctx context.Context, items []Item, naive, expert *Oracle, opt core.FindMaxOptions) (FindMaxResult, error) {
	return core.FindMax(ctx, items, naive, expert, opt)
}

// FindMaxOptions configures FindMax; see core.FindMaxOptions.
type FindMaxOptions = core.FindMaxOptions

// Filter runs phase 1 alone (Algorithm 2): it returns at most 2·un − 1
// candidates guaranteed to contain the maximum under T(δn, 0).
func Filter(ctx context.Context, items []Item, naive *Oracle, opt core.FilterOptions) ([]Item, error) {
	return core.Filter(ctx, items, naive, opt)
}

// FilterOptions configures Filter; see core.FilterOptions.
type FilterOptions = core.FilterOptions

// TwoMaxFind runs the deterministic 2-MaxFind of Ajtai et al. over items:
// O(s^{3/2}) comparisons, result within 2δ of the maximum under T(δ, 0).
func TwoMaxFind(ctx context.Context, items []Item, o *Oracle) (Item, error) {
	return core.TwoMaxFind(ctx, items, o)
}

// TwoMaxFindWith is TwoMaxFind under an explicit comparison schedule.
func TwoMaxFindWith(ctx context.Context, items []Item, o *Oracle, kind SchedulerKind) (Item, error) {
	return core.TwoMaxFindWith(ctx, items, o, kind)
}

// RandomizedMaxFind runs the randomized Algorithm 5 of Ajtai et al.: Θ(s)
// comparisons (large constants), result within 3δ of the maximum w.h.p.
func RandomizedMaxFind(ctx context.Context, items []Item, o *Oracle, opt core.RandomizedOptions) (Item, error) {
	return core.RandomizedMaxFind(ctx, items, o, opt)
}

// RandomizedOptions configures RandomizedMaxFind.
type RandomizedOptions = core.RandomizedOptions

// EstimateUn runs Algorithm 4: it estimates an upper bound for un(N) from a
// training set with known maximum (gold data).
func EstimateUn(ctx context.Context, training []Item, naive *Oracle, opt core.EstimateUnOptions) (int, error) {
	return core.EstimateUn(ctx, training, naive, opt)
}

// EstimateUnOptions configures EstimateUn.
type EstimateUnOptions = core.EstimateUnOptions

// EstimatePerr estimates the under-threshold error probability perr from
// consensus probes on training data (Section 4.4).
func EstimatePerr(ctx context.Context, training []Item, naive *Oracle, opt core.EstimatePerrOptions) (float64, error) {
	return core.EstimatePerr(ctx, training, naive, opt)
}

// EstimatePerrOptions configures EstimatePerr.
type EstimatePerrOptions = core.EstimatePerrOptions

// TopKOptions configures TopK.
type TopKOptions = core.TopKOptions

// TopK returns k elements ordered best-first by running the two-phase
// algorithm k times, removing each round's winner — turning max-finding
// into the ranking tasks the paper's introduction motivates. Memoized
// oracles make later rounds substantially cheaper.
func TopK(ctx context.Context, items []Item, naive, expert *Oracle, opt TopKOptions) ([]Item, error) {
	return core.TopK(ctx, items, naive, expert, opt)
}

// RoundError reports a truncated TopK run: the 1-based round that failed,
// how many ranks completed, and the failed round's best-so-far leader.
// errors.As recovers it from a TopK error to salvage partial progress.
type RoundError = core.RoundError

// ScoreOptions configures Score.
type ScoreOptions = core.ScoreOptions

// ScoreResult reports a Score run: the best element, the expert shortlist,
// and every element's aggregated crowd score.
type ScoreResult = core.ScoreResult

// Score runs the crowd-scoring workload directly against a pair of oracles:
// naïve workers score every element with repeated cardinal value queries,
// votes are aggregated robustly (trimmed mean or median), and experts
// extract the maximum from the top-scored shortlist. Sessions run the same
// algorithm with budgets, chaos, and checkpoints attached via ScoreWorkload.
func Score(ctx context.Context, items []Item, naive, expert *Oracle, opt ScoreOptions) (ScoreResult, error) {
	return core.Score(ctx, items, naive, expert, opt)
}

// RankByWins orders items by win count in one all-play-all tournament,
// best first — the "last round" ranking of the paper's Tables 1–2.
func RankByWins(ctx context.Context, items []Item, o *Oracle) ([]Item, error) {
	return core.RankByWins(ctx, items, o)
}

// BracketOptions configures TournamentMax.
type BracketOptions = core.BracketOptions

// TournamentMax runs the classic single-elimination tournament baseline
// (related work, Venetis et al.): (n−1)·Repetitions comparisons, ⌈log2 n⌉
// logical steps, no accuracy guarantee under the threshold model.
func TournamentMax(ctx context.Context, items []Item, o *Oracle, opt BracketOptions) (Item, error) {
	return core.TournamentMax(ctx, items, o, opt)
}

// Level is one expertise class in the multi-class cascade extension: its
// oracle and its u(δ) value.
type Level = core.Level

// CascadeOptions configures CascadeFindMax.
type CascadeOptions = core.CascadeOptions

// CascadeResult reports a cascade run.
type CascadeResult = core.CascadeResult

// CascadeFindMax generalizes the two-phase algorithm to any number of
// worker classes ordered from least to most expert (Section 3.3's
// multi-class extension): every level but the last filters its input with
// Algorithm 2, and the last level extracts the maximum. With exactly two
// levels this is Algorithm 1.
func CascadeFindMax(ctx context.Context, items []Item, opt CascadeOptions) (CascadeResult, error) {
	return core.CascadeFindMax(ctx, items, opt)
}

// Backend is a pluggable comparison-answering service: the dispatch seam
// every paid comparison flows through when attached to an oracle via
// Oracle.WithBackend. Implementations may call out to a real crowdsourcing
// platform, inject faults (FlakyBackend), or add resilience (RetryBackend).
type Backend = dispatch.Backend

// BackendRequest is one comparison submitted to a Backend.
type BackendRequest = dispatch.Request

// BackendAnswer is a Backend's reply.
type BackendAnswer = dispatch.Answer

// NewSimulatedBackend wraps an in-process comparator as a Backend — the
// bridge between the simulated workers and the dispatch layer.
func NewSimulatedBackend(cmp Comparator) Backend { return dispatch.NewSimulated(cmp) }

// FlakyConfig configures NewFlakyBackend.
type FlakyConfig = dispatch.FlakyConfig

// NewFlakyBackend decorates a backend with deterministic fault and latency
// injection — the failure model of a real platform made reproducible.
func NewFlakyBackend(inner Backend, cfg FlakyConfig) Backend { return dispatch.NewFlaky(inner, cfg) }

// RetryConfig configures NewRetryBackend.
type RetryConfig = dispatch.RetryConfig

// NewRetryBackend decorates a backend with bounded retries, per-attempt
// timeouts and exponential backoff. Cancellation and budget exhaustion are
// never retried.
func NewRetryBackend(inner Backend, cfg RetryConfig) Backend { return dispatch.NewRetry(inner, cfg) }

// ErrBackendUnavailable marks transient backend failures (worth retrying).
var ErrBackendUnavailable = dispatch.ErrBackendUnavailable

// ErrBudgetExhausted is returned (possibly wrapped) when a comparison is
// refused because it would exceed a hard budget cap. Partial results remain
// valid; check with errors.Is.
var ErrBudgetExhausted = dispatch.ErrBudgetExhausted

// BudgetLimits declares hard caps on comparison counts and monetary spend;
// zero fields are unlimited.
type BudgetLimits = dispatch.Limits

// Budget enforces BudgetLimits with all-or-nothing pre-charging: a cap is
// never exceeded by even one comparison, under any concurrency.
type Budget = dispatch.Budget

// NewBudget returns a budget enforcing lim.
func NewBudget(lim BudgetLimits) *Budget { return dispatch.NewBudget(lim) }
