package crowdmax

import (
	"context"
	"testing"

	"crowdmax/internal/dataset"
)

func testSession(t *testing.T, cal dataset.Calibrated, un int, seed uint64) *Session {
	t.Helper()
	r := NewRand(seed)
	s, err := NewSession(Config{
		Naive:  NewThresholdWorker(cal.DeltaN, 0, r.Child("naive")),
		Expert: NewThresholdWorker(cal.DeltaE, 0, r.Child("expert")),
		Un:     un,
		Prices: Prices{Naive: 1, Expert: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	r := NewRand(1)
	w := NewThresholdWorker(0.1, 0, r)
	cases := []Config{
		{Expert: w, Un: 5},            // missing naive
		{Naive: w, Un: 5},             // missing expert
		{Naive: w, Expert: w, Un: 0},  // bad un
		{Naive: w, Expert: w, Un: -3}, // bad un
	}
	for i, cfg := range cases {
		if _, err := NewSession(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSessionFindMaxGuarantee(t *testing.T) {
	root := NewRand(2)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		cal, err := dataset.UniformCalibrated(600, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		s := testSession(t, cal, 8, uint64(100+trial))
		res, err := s.FindMax(cal.Set.Items())
		if err != nil {
			t.Fatal(err)
		}
		if d := Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
			t.Fatalf("trial %d: d(M, e) = %g > 2δe", trial, d)
		}
		if res.NaiveComparisons == 0 || res.ExpertComparisons == 0 {
			t.Fatal("comparison counts missing")
		}
		if want := float64(res.NaiveComparisons) + 50*float64(res.ExpertComparisons); res.Cost != want {
			t.Fatalf("cost = %g, want %g", res.Cost, want)
		}
	}
}

func TestSessionAccumulatesCosts(t *testing.T) {
	r := NewRand(3)
	cal, err := dataset.UniformCalibrated(400, 6, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	s := testSession(t, cal, 6, 200)
	res1, err := s.FindMax(cal.Set.Items())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s.FindMax(cal.Set.Items())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalCost(); got != res1.Cost+res2.Cost {
		t.Fatalf("TotalCost = %g, want %g", got, res1.Cost+res2.Cost)
	}
	n, e := s.TotalComparisons()
	if n != res1.NaiveComparisons+res2.NaiveComparisons ||
		e != res1.ExpertComparisons+res2.ExpertComparisons {
		t.Fatal("TotalComparisons mismatch")
	}
}

func TestSessionBoundsHold(t *testing.T) {
	r := NewRand(4)
	cal, err := dataset.UniformCalibrated(800, 10, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	s := testSession(t, cal, 10, 300)
	naiveMax, expertMax, candidates, worstCost := s.Bounds(800)
	res, err := s.FindMax(cal.Set.Items())
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.NaiveComparisons) > naiveMax {
		t.Fatalf("naive %d over bound %g", res.NaiveComparisons, naiveMax)
	}
	if float64(res.ExpertComparisons) > expertMax {
		t.Fatalf("expert %d over bound %g", res.ExpertComparisons, expertMax)
	}
	if len(res.Candidates) > candidates {
		t.Fatalf("|S| = %d over bound %d", len(res.Candidates), candidates)
	}
	if res.Cost > worstCost {
		t.Fatalf("cost %g over bound %g", res.Cost, worstCost)
	}
}

func TestSessionMemoizationReducesCost(t *testing.T) {
	// With memoization disabled the same pairs may be re-asked across
	// filter iterations; with it enabled repeats are free. Compare paid
	// comparisons on identical instances.
	r := NewRand(5)
	cal, err := dataset.UniformCalibrated(500, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool, seed uint64) int64 {
		rr := NewRand(seed)
		s, err := NewSession(Config{
			Naive:              NewThresholdWorker(cal.DeltaN, 0, rr.Child("n")),
			Expert:             NewThresholdWorker(cal.DeltaE, 0, rr.Child("e")),
			Un:                 8,
			DisableMemoization: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.FindMax(cal.Set.Items())
		if err != nil {
			t.Fatal(err)
		}
		return res.NaiveComparisons + res.ExpertComparisons
	}
	withMemo := run(false, 42)
	withoutMemo := run(true, 42)
	if withMemo > withoutMemo {
		t.Fatalf("memoization increased paid comparisons: %d > %d", withMemo, withoutMemo)
	}
}

func TestSessionRandomizedPhase2(t *testing.T) {
	r := NewRand(6)
	cal, err := dataset.UniformCalibrated(500, 8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRand(7)
	s, err := NewSession(Config{
		Naive:  NewThresholdWorker(cal.DeltaN, 0, rr.Child("n")),
		Expert: NewThresholdWorker(cal.DeltaE, 0, rr.Child("e")),
		Un:     8,
		Phase2: RandomizedPhase2,
		Rand:   rr.Child("p2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.FindMax(cal.Set.Items())
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(cal.Set.Max(), res.Best); d > 3*cal.DeltaE {
		t.Fatalf("randomized phase 2: d = %g > 3δe", d)
	}
}

func TestFacadeAlgorithmsUsable(t *testing.T) {
	// The free functions of the façade must work end to end.
	r := NewRand(8)
	set := NewSet([]float64{3, 1, 4, 1.5, 9, 2.6})
	ledger := NewLedger()
	o := NewOracle(Truth, Expert, ledger, NewMemo())
	best, err := TwoMaxFind(context.Background(), set.Items(), o)
	if err != nil {
		t.Fatal(err)
	}
	if best.Value != 9 {
		t.Fatalf("TwoMaxFind returned %v", best)
	}
	if ledger.Expert() == 0 {
		t.Fatal("ledger not billed")
	}
	cand, err := Filter(context.Background(), set.Items(), NewOracle(NewThresholdWorker(0.5, 0, r), Naive, nil, nil), FilterOptions{Un: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cand {
		if c.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("Filter dropped the maximum")
	}
	rbest, err := RandomizedMaxFind(context.Background(), set.Items(), NewOracle(Truth, Expert, nil, nil), RandomizedOptions{R: r})
	if err != nil || rbest.Value != 9 {
		t.Fatalf("RandomizedMaxFind: %v, %v", rbest, err)
	}
}

func TestFacadeEstimation(t *testing.T) {
	r := NewRand(9)
	cal, err := dataset.UniformCalibrated(400, 10, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	naive := NewOracle(NewThresholdWorker(cal.DeltaN, 0, r.Child("w")), Naive, nil, nil)
	perr, err := EstimatePerr(context.Background(), cal.Set.Items(), naive, EstimatePerrOptions{R: r.Child("p")})
	if err != nil {
		t.Fatal(err)
	}
	if perr <= 0 || perr > 1 {
		t.Fatalf("perr = %g", perr)
	}
	un, err := EstimateUn(context.Background(), cal.Set.Items(), naive, EstimateUnOptions{Perr: 0.5, N: 400})
	if err != nil {
		t.Fatal(err)
	}
	if un < 1 {
		t.Fatalf("un estimate = %d", un)
	}
}

func TestSessionEstimateUn(t *testing.T) {
	r := NewRand(10)
	cal, err := dataset.UniformCalibrated(600, 12, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	s := testSession(t, cal, 12, 400)
	est, err := s.EstimateUn(cal.Set.Items(), 0.5, 600)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 {
		t.Fatalf("estimate = %d", est)
	}
	// Estimation comparisons are billed to the session (cn = 1 each).
	if s.TotalCost() < 599 {
		t.Fatalf("estimation comparisons not billed: total cost %.0f", s.TotalCost())
	}
	if _, err := s.EstimateUn(nil, 0.5, 600); err == nil {
		t.Fatal("empty training accepted")
	}
}
