module crowdmax

go 1.22
