// Benchmarks regenerating each table and figure of the paper's evaluation.
// One benchmark per experiment, on a reduced sweep so `go test -bench=.`
// completes quickly; run cmd/benchrun for the full paper-scale sweeps.
package crowdmax_test

import (
	"context"
	"testing"

	"crowdmax/internal/experiment"
)

// benchSweep is a reduced version of the paper's 1000..5000 sweep.
func benchSweep(un, ue int) experiment.Sweep {
	return experiment.Sweep{Ns: []int{500, 1000}, Un: un, Ue: ue, Trials: 2, Seed: 2015}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := experiment.Fig2(experiment.Fig2Config{
			Seed: uint64(i), PairsPerBand: 10, Repeats: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		un, ue int
	}{{"un10ue5", 10, 5}, {"un50ue10", 50, 10}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchSweep(cfg.un, cfg.ue)
				s.Seed = uint64(i)
				if _, err := experiment.Fig3(context.Background(), s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSweep(10, 5)
		s.Seed = uint64(i)
		if _, err := experiment.Fig4(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig5(context.Background(), experiment.CostConfig{
			Sweep: benchSweep(10, 5), CE: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig6(context.Background(), experiment.Fig6Config{
			Sweep: benchSweep(10, 5),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig7(context.Background(), experiment.FactorCostConfig{
			CostConfig: experiment.CostConfig{Sweep: benchSweep(10, 5), CE: 20},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9(context.Background(), experiment.CostConfig{
			Sweep: benchSweep(10, 5), CE: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig10(experiment.FactorCostConfig{
			CostConfig: experiment.CostConfig{Sweep: benchSweep(10, 5), CE: 50},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Retention(context.Background(), experiment.Fig6Config{
			Sweep:   benchSweep(10, 5),
			Factors: []float64{0.2, 0.5, 0.8, 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table1(context.Background(), experiment.CrowdConfig{
			Seed: uint64(i), Spammers: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Table2(context.Background(), experiment.CrowdConfig{
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SearchEval(context.Background(), experiment.SearchConfig{
			Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.MajorityBound(experiment.MajorityConfig{
			Seed: uint64(i), Trials: 300,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpsilonSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.EpsilonSweep(context.Background(), experiment.EpsilonConfig{
			Sweep:    experiment.Sweep{Ns: []int{500}, Un: 8, Ue: 3, Trials: 2, Seed: uint64(i)},
			Epsilons: []float64{0, 0.2, 0.4},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CascadeExperiment(context.Background(), experiment.CascadeConfig{
			Ns: []int{500}, Us: [3]int{20, 6, 2}, PriceRatio: 50,
			Trials: 2, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepsExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.StepsExperiment(context.Background(), experiment.Sweep{
			Ns: []int{500}, Un: 8, Ue: 3, Trials: 2, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBracketAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BracketAccuracy(context.Background(), experiment.BracketConfig{
			Sweep: experiment.Sweep{Ns: []int{500}, Un: 8, Ue: 3, Trials: 2, Seed: uint64(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
