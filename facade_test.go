package crowdmax

import (
	"context"
	"strings"
	"testing"
)

// These tests exercise the façade re-exports end to end, so every public
// entry point is covered by at least one realistic use.

func TestFacadeDatasets(t *testing.T) {
	r := NewRand(1)

	u := UniformDataset(100, 0, 1, r.Child("u"))
	if u.Len() != 100 {
		t.Fatalf("uniform len = %d", u.Len())
	}

	cal, err := CalibratedUniform(200, 8, 3, r.Child("cal"))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Set.UCount(cal.DeltaN) != 8 || cal.Set.UCount(cal.DeltaE) != 3 {
		t.Fatal("calibration targets missed")
	}

	cars, catalogue, err := CarsDataset(CarsConfig{}, r.Child("cars"))
	if err != nil {
		t.Fatal(err)
	}
	if cars.Len() != 110 || len(catalogue) != 110 {
		t.Fatalf("cars = %d/%d", cars.Len(), len(catalogue))
	}
	sub, err := SampleDataset(cars, 50, r.Child("sample"))
	if err != nil || sub.Len() != 50 {
		t.Fatalf("sample: %v, %v", sub, err)
	}

	dots := DotsDataset(50)
	if DotCount(dots.Max()) != 100 {
		t.Fatalf("best dots = %d", DotCount(dots.Max()))
	}
	if len(DotsGold()) != 30 {
		t.Fatal("gold size wrong")
	}

	search, err := SearchDataset(QueryAsymmetricTSP, 50, 0.05, r.Child("s"))
	if err != nil || search.Len() != 50 {
		t.Fatalf("search: %v", err)
	}
	if !strings.Contains(search.Max().Label, string(QueryAsymmetricTSP)) {
		t.Fatal("search labels missing query")
	}
}

func TestFacadeSetConstruction(t *testing.T) {
	s := NewSetItems([]Item{{Value: 2, Label: "two"}, {Value: 5, Label: "five"}})
	if s.Max().Label != "five" {
		t.Fatalf("max = %v", s.Max())
	}
	if Distance(s.Item(0), s.Item(1)) != 3 {
		t.Fatal("distance wrong")
	}
}

func TestFacadeWorkers(t *testing.T) {
	r := NewRand(2)
	p := NewProbabilisticWorker(0.25, r)
	if p.Delta != 0 || p.Epsilon != 0.25 {
		t.Fatalf("probabilistic worker = %+v", p)
	}
	if Truth.Compare(Item{ID: 0, Value: 1}, Item{ID: 1, Value: 2}).ID != 1 {
		t.Fatal("Truth broken")
	}
}

func TestFacadeFindMaxFreeFunction(t *testing.T) {
	r := NewRand(3)
	cal, err := CalibratedUniform(400, 6, 2, r.Child("data"))
	if err != nil {
		t.Fatal(err)
	}
	ledger := NewLedger()
	no := NewOracle(NewThresholdWorker(cal.DeltaN, 0, r.Child("n")), Naive, ledger, NewMemo())
	eo := NewOracle(NewThresholdWorker(cal.DeltaE, 0, r.Child("e")), Expert, ledger, NewMemo())
	res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 6})
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
		t.Fatalf("d = %g", d)
	}
	if ledger.Naive() == 0 || ledger.Expert() == 0 {
		t.Fatal("ledger not billed")
	}
}

func TestFacadeCascade(t *testing.T) {
	r := NewRand(4)
	set := UniformDataset(500, 0, 1, r.Child("data"))
	us := []int{20, 6, 2}
	levels := make([]Level, len(us))
	for i, u := range us {
		d, err := set.DeltaForU(u)
		if err != nil {
			t.Fatal(err)
		}
		levels[i] = Level{
			Oracle: NewOracle(NewThresholdWorker(d, 0, r.ChildN("w", i)), Class(i), nil, nil),
			U:      u,
		}
	}
	res, err := CascadeFindMax(context.Background(), set.Items(), CascadeOptions{Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	dFine, err := set.DeltaForU(2)
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(set.Max(), res.Best); d > 2*dFine {
		t.Fatalf("cascade d = %g > 2δ", d)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidate sets = %d", len(res.Candidates))
	}
}

func TestFacadePlatformAndWorld(t *testing.T) {
	r := NewRand(5)
	plat, err := NewPlatform(PlatformConfig{R: r.Child("p")})
	if err != nil {
		t.Fatal(err)
	}
	world := NewWorkerWorld(WisdomRegime{Sharpness: 5}, r.Child("world"))
	for i := 0; i < 5; i++ {
		plat.AddWorker(world.Worker(r.ChildN("w", i)))
	}
	plat.AddWorker(Spammer{R: r.Child("spam")})
	gold := DotsGold()
	plat.SetGold([]PlatformPair{{A: gold[0], B: gold[29]}})

	a, b := Item{ID: 0, Value: -100}, Item{ID: 1, Value: -900}
	if got := plat.Comparator(7).Compare(a, b); got.ID != 0 {
		t.Fatalf("majority pick = %v", got)
	}
	if plat.ActiveWorkers() < 5 {
		t.Fatal("honest workers banned")
	}
}

func TestFacadePlateauWorld(t *testing.T) {
	r := NewRand(6)
	world := NewWorkerWorld(PlateauRegime{Threshold: 0.2, Epsilon: 0.05}, r.Child("world"))
	w := world.Worker(r.Child("w"))
	// Easy pair (rel diff 0.5): essentially always correct.
	a, b := Item{ID: 0, Value: 100}, Item{ID: 1, Value: 200}
	correct := 0
	for i := 0; i < 200; i++ {
		if w.Compare(a, b).ID == 1 {
			correct++
		}
	}
	if correct < 170 {
		t.Fatalf("easy-pair accuracy %d/200", correct)
	}
}

func TestFacadeTopKAndRankByWins(t *testing.T) {
	r := NewRand(7)
	set := UniformDataset(200, 0, 1, r.Child("data"))
	no := NewOracle(Truth, Naive, nil, NewMemo())
	eo := NewOracle(Truth, Expert, nil, NewMemo())
	top, err := TopK(context.Background(), set.Items(), no, eo, TopKOptions{K: 3, U: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range top {
		if set.Rank(it.ID) != i+1 {
			t.Fatalf("TopK position %d has rank %d", i, set.Rank(it.ID))
		}
	}
	ranked, err := RankByWins(context.Background(), top, eo)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 || ranked[0].ID != top[0].ID {
		t.Fatal("RankByWins disagreed on already-ordered items")
	}
}

func TestFacadeLogisticWorkerAndBracket(t *testing.T) {
	r := NewRand(8)
	set := UniformDataset(64, 0, 10, r.Child("data"))
	// A sharply discriminating logistic worker finds the max through the
	// bracket baseline most of the time.
	w := NewLogisticWorker(0.05, r.Child("w"))
	o := NewOracle(w, Naive, NewLedger(), nil)
	best, err := TournamentMax(context.Background(), set.Items(), o, BracketOptions{Repetitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.Rank(best.ID) > 10 {
		t.Fatalf("logistic bracket returned rank %d", set.Rank(best.ID))
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	r := NewRand(9)
	set := UniformDataset(10, 0, 1, r)
	var sb strings.Builder
	if err := WriteCSV(&sb, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() || back.Max().Value != set.Max().Value {
		t.Fatal("CSV round trip lost data")
	}
}
