package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"crowdmax/internal/dispatch"
	"crowdmax/internal/rng"
)

// Persona names an adversarial worker persona.
type Persona string

// The personas a Plan can inject.
const (
	PersonaNone      Persona = ""
	PersonaSpammer   Persona = "spammer"
	PersonaAdversary Persona = "adversary"
	PersonaColluder  Persona = "colluder"
	PersonaDegrader  Persona = "degrader"
	PersonaOutage    Persona = "outage"
	PersonaClique    Persona = "clique"
)

// Injection is one persona applied to one worker class, optionally windowed
// and ramped on the fault clock.
type Injection struct {
	// Persona selects the adversarial persona.
	Persona Persona
	// Expert targets the expert backend instead of the naïve one.
	Expert bool
	// Window restricts the injection to a span of the fault clock; the
	// zero Window is always active.
	Window Window
	// Fraction and FractionTo set the interception probability (and its
	// linear ramp across a bounded Window); see PersonaConfig.
	Fraction, FractionTo float64
	// Delta, TargetID, Rate, Drift and MaxRate parameterize the persona;
	// see PersonaConfig.
	Delta                float64
	TargetID             int
	Rate, Drift, MaxRate float64
}

// Plan is a declarative chaos configuration: a sequence of persona
// injections (each targeting one worker class, optionally windowed on the
// fault clock), plus an optional crash after a fixed number of comparisons.
// The zero Plan injects nothing. Plans are what Session.Config.Chaos and
// maxcrowd's -chaos flag carry; Apply turns one into decorated backends.
type Plan struct {
	// Injections are applied in order; a backend targeted twice is
	// decorated twice (the later injection sits outermost).
	Injections []Injection
	// CrashAfter, when > 0, kills the run (both classes) with ErrCrash
	// after that many dispatched comparisons.
	CrashAfter int64
	// Seed seeds every persona's decision stream (each injection derives
	// an independent child stream).
	Seed uint64
	// PairHash makes persona decisions a pure function of each request's
	// item pair instead of a sequential stream — required for bit-identical
	// crash/resume replay; see PersonaConfig.PairHash.
	PairHash bool
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool { return len(p.Injections) > 0 || p.CrashAfter > 0 }

// Apply decorates the two class backends per the plan. clock positions the
// injections' windows and ramps on the fault timeline (nil lets each persona
// count its own served requests); the session layer passes the run's
// paid-comparison count so windows replay identically across crash/resume.
// The crash injector — sharing one counter — wraps both backends outermost.
// The returned *Crash is nil when no crash is configured.
func (p Plan) Apply(naive, expert dispatch.Backend, clock Clock) (nb, eb dispatch.Backend, crash *Crash, err error) {
	nb, eb = naive, expert
	for i, inj := range p.Injections {
		cfg := PersonaConfig{
			Fraction: inj.Fraction, FractionTo: inj.FractionTo,
			Window: inj.Window, Clock: clock, PairHash: p.PairHash,
			Seed:  rng.New(p.Seed).ChildN("chaos-"+string(inj.Persona), i).Seed(),
			Delta: inj.Delta, TargetID: inj.TargetID,
			Rate: inj.Rate, Drift: inj.Drift, MaxRate: inj.MaxRate,
		}
		target := &nb
		if inj.Expert {
			target = &eb
		}
		switch inj.Persona {
		case PersonaSpammer:
			*target = NewSpammer(*target, cfg)
		case PersonaAdversary:
			*target = NewAdversary(*target, cfg)
		case PersonaColluder:
			*target = NewColluder(*target, cfg)
		case PersonaDegrader:
			*target = NewDegrader(*target, cfg)
		case PersonaOutage:
			*target = NewOutage(*target, cfg)
		case PersonaClique:
			// One ring member decorates the class backend; Fraction models
			// the share of the crowd the ring controls.
			*target = NewClique(cfg).Member(*target)
		default:
			return nil, nil, nil, fmt.Errorf("chaos: unknown persona %q", inj.Persona)
		}
	}
	if p.CrashAfter > 0 {
		crash = NewCrash(p.CrashAfter)
		nb, eb = crash.Wrap(nb), crash.Wrap(eb)
	}
	return nb, eb, crash, nil
}

// ParsePlan parses a comma-separated chaos spec — the -chaos flag syntax:
//
//	crash:N                  crash after N comparisons
//	spammer[:frac]           random answers on frac of requests (default all)
//	outage[:frac]            refuse frac of requests (default all)
//	adversary[:delta]        inverted answers above delta (default 0)
//	colluder:id              promote item id
//	clique:k:id              coordinated ring controlling fraction k of the
//	                         crowd: promotes item id, inverts other answers
//	degrader[:rate[:drift]]  drifting error rate (defaults 0, 0.001)
//
// Any persona token may carry an "expert-" prefix to target the expert
// backend ("expert-outage:0.5") and a "@window" suffix restricting it to a
// span of the fault clock: "@500-2000" is active for clock positions
// [500, 2000), "@1000+" from 1000 on. The spammer and outage fractions
// accept a ramp "a-b" (linear from a to b across a bounded window), e.g.
// "spammer:0.1-0.9@500-2000". Multiple persona tokens stack, each decorating
// its target backend in turn; "crash:N" may appear once.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		body, winSpec, hasWin := strings.Cut(tok, "@")
		name, args, _ := strings.Cut(body, ":")
		if name == "crash" {
			if hasWin {
				return Plan{}, fmt.Errorf("chaos: crash does not take a window, got %q", tok)
			}
			if p.CrashAfter > 0 {
				return Plan{}, fmt.Errorf("chaos: plan %q names crash more than once", spec)
			}
			n, err := strconv.ParseInt(args, 10, 64)
			if err != nil || n < 1 {
				return Plan{}, fmt.Errorf("chaos: crash wants a positive count, got %q", tok)
			}
			p.CrashAfter = n
			continue
		}
		var inj Injection
		if rest, ok := strings.CutPrefix(name, "expert-"); ok {
			inj.Expert = true
			name = rest
		}
		if hasWin {
			w, err := parseWindow(winSpec)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: bad window in %q: %v", tok, err)
			}
			inj.Window = w
		}
		switch name {
		case "spammer", "outage":
			inj.Persona = Persona(name)
			if args != "" {
				from, to, err := parseFraction(args)
				if err != nil {
					return Plan{}, fmt.Errorf("chaos: %s fraction must be in (0, 1], got %q", name, tok)
				}
				inj.Fraction, inj.FractionTo = from, to
			}
		case "adversary":
			inj.Persona = PersonaAdversary
			if args != "" {
				d, err := strconv.ParseFloat(args, 64)
				if err != nil || d < 0 {
					return Plan{}, fmt.Errorf("chaos: adversary delta must be ≥ 0, got %q", tok)
				}
				inj.Delta = d
			}
		case "colluder":
			inj.Persona = PersonaColluder
			id, err := strconv.Atoi(args)
			if err != nil || id < 0 {
				return Plan{}, fmt.Errorf("chaos: colluder wants a target item ID, got %q", tok)
			}
			inj.TargetID = id
		case "clique":
			inj.Persona = PersonaClique
			kS, idS, ok := strings.Cut(args, ":")
			if !ok {
				return Plan{}, fmt.Errorf("chaos: clique wants k:id (crowd fraction and target item ID), got %q", tok)
			}
			k, err := strconv.ParseFloat(kS, 64)
			if err != nil || k <= 0 || k > 1 {
				return Plan{}, fmt.Errorf("chaos: clique fraction must be in (0, 1], got %q", tok)
			}
			id, err := strconv.Atoi(idS)
			if err != nil || id < 0 {
				return Plan{}, fmt.Errorf("chaos: clique wants a target item ID, got %q", tok)
			}
			inj.Fraction, inj.TargetID = k, id
		case "degrader":
			inj.Persona = PersonaDegrader
			inj.Drift = 0.001
			if args != "" {
				parts := strings.SplitN(args, ":", 2)
				r, err := strconv.ParseFloat(parts[0], 64)
				if err != nil || r < 0 || r > 1 {
					return Plan{}, fmt.Errorf("chaos: degrader rate must be in [0, 1], got %q", tok)
				}
				inj.Rate = r
				if len(parts) == 2 {
					d, err := strconv.ParseFloat(parts[1], 64)
					if err != nil || d < 0 {
						return Plan{}, fmt.Errorf("chaos: degrader drift must be ≥ 0, got %q", tok)
					}
					inj.Drift = d
				}
			}
		default:
			return Plan{}, fmt.Errorf("chaos: unknown injection %q (want crash:N, [expert-]spammer, outage, adversary, colluder:id, clique:k:id, degrader)", name)
		}
		if inj.FractionTo > 0 && inj.Window.To <= inj.Window.From {
			return Plan{}, fmt.Errorf("chaos: ramp in %q needs a bounded @from-to window", tok)
		}
		p.Injections = append(p.Injections, inj)
	}
	if !p.Enabled() {
		return Plan{}, fmt.Errorf("chaos: empty plan %q", spec)
	}
	return p, nil
}

// parseWindow parses "N+" (open-ended from N) or "N-M" (the half-open span
// [N, M)).
func parseWindow(s string) (Window, error) {
	if from, ok := strings.CutSuffix(s, "+"); ok {
		n, err := strconv.ParseInt(from, 10, 64)
		if err != nil || n < 0 {
			return Window{}, fmt.Errorf("want N+ with N ≥ 0, got %q", s)
		}
		return Window{From: n}, nil
	}
	fromS, toS, ok := strings.Cut(s, "-")
	if !ok {
		return Window{}, fmt.Errorf("want N+ or N-M, got %q", s)
	}
	from, err1 := strconv.ParseInt(fromS, 10, 64)
	to, err2 := strconv.ParseInt(toS, 10, 64)
	if err1 != nil || err2 != nil || from < 0 || to <= from {
		return Window{}, fmt.Errorf("want N-M with 0 ≤ N < M, got %q", s)
	}
	return Window{From: from, To: to}, nil
}

// parseFraction parses "f" or a ramp "a-b", each in (0, 1].
func parseFraction(s string) (from, to float64, err error) {
	fromS, toS, ramp := strings.Cut(s, "-")
	from, err = strconv.ParseFloat(fromS, 64)
	if err != nil || from <= 0 || from > 1 {
		return 0, 0, fmt.Errorf("bad fraction %q", s)
	}
	if !ramp {
		return from, 0, nil
	}
	to, err = strconv.ParseFloat(toS, 64)
	if err != nil || to <= 0 || to > 1 {
		return 0, 0, fmt.Errorf("bad ramp target %q", s)
	}
	return from, to, nil
}
