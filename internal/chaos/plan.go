package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"crowdmax/internal/dispatch"
)

// Persona names an adversarial worker persona.
type Persona string

// The personas a Plan can inject.
const (
	PersonaNone      Persona = ""
	PersonaSpammer   Persona = "spammer"
	PersonaAdversary Persona = "adversary"
	PersonaColluder  Persona = "colluder"
	PersonaDegrader  Persona = "degrader"
)

// Plan is a declarative chaos configuration: which persona (if any) poisons
// the naïve worker pool, with which parameters, plus an optional crash
// injected after a fixed number of comparisons. The zero Plan injects
// nothing. Plans are what Session.Config.Chaos and maxcrowd's -chaos flag
// carry; Apply turns one into decorated backends.
type Plan struct {
	// Persona selects the adversarial persona applied to the naïve
	// backend; PersonaNone applies no persona.
	Persona Persona
	// Fraction, Delta, TargetID, Rate, Drift, MaxRate parameterize the
	// persona; see PersonaConfig.
	Fraction             float64
	Delta                float64
	TargetID             int
	Rate, Drift, MaxRate float64
	// Seed seeds the persona's decision stream.
	Seed uint64
	// CrashAfter, when > 0, kills the run (both classes) with ErrCrash
	// after that many dispatched comparisons.
	CrashAfter int64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool { return p.Persona != PersonaNone || p.CrashAfter > 0 }

// Apply decorates the two class backends per the plan: the persona poisons
// the naïve backend (the unvetted crowd; experts are assumed screened), and
// the crash injector — sharing one counter — wraps both outermost. The
// returned *Crash is nil when no crash is configured.
func (p Plan) Apply(naive, expert dispatch.Backend) (nb, eb dispatch.Backend, crash *Crash, err error) {
	nb, eb = naive, expert
	cfg := PersonaConfig{
		Fraction: p.Fraction, Seed: p.Seed, Delta: p.Delta,
		TargetID: p.TargetID, Rate: p.Rate, Drift: p.Drift, MaxRate: p.MaxRate,
	}
	switch p.Persona {
	case PersonaNone:
	case PersonaSpammer:
		nb = NewSpammer(nb, cfg)
	case PersonaAdversary:
		nb = NewAdversary(nb, cfg)
	case PersonaColluder:
		nb = NewColluder(nb, cfg)
	case PersonaDegrader:
		nb = NewDegrader(nb, cfg)
	default:
		return nil, nil, nil, fmt.Errorf("chaos: unknown persona %q", p.Persona)
	}
	if p.CrashAfter > 0 {
		crash = NewCrash(p.CrashAfter)
		nb, eb = crash.Wrap(nb), crash.Wrap(eb)
	}
	return nb, eb, crash, nil
}

// ParsePlan parses a comma-separated chaos spec — the -chaos flag syntax:
//
//	crash:N            crash after N comparisons
//	spammer[:frac]     random answers on frac of requests (default all)
//	adversary[:delta]  inverted answers above delta (default 0)
//	colluder:id        promote item id
//	degrader[:rate[:drift]]  drifting error rate (defaults 0, 0.001)
//
// At most one persona may appear; "crash:N" combines with any of them.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, args, _ := strings.Cut(tok, ":")
		if name != "crash" && p.Persona != PersonaNone {
			return Plan{}, fmt.Errorf("chaos: plan %q names more than one persona", spec)
		}
		switch name {
		case "crash":
			n, err := strconv.ParseInt(args, 10, 64)
			if err != nil || n < 1 {
				return Plan{}, fmt.Errorf("chaos: crash wants a positive count, got %q", tok)
			}
			p.CrashAfter = n
		case "spammer":
			p.Persona = PersonaSpammer
			if args != "" {
				f, err := strconv.ParseFloat(args, 64)
				if err != nil || f <= 0 || f > 1 {
					return Plan{}, fmt.Errorf("chaos: spammer fraction must be in (0, 1], got %q", tok)
				}
				p.Fraction = f
			}
		case "adversary":
			p.Persona = PersonaAdversary
			if args != "" {
				d, err := strconv.ParseFloat(args, 64)
				if err != nil || d < 0 {
					return Plan{}, fmt.Errorf("chaos: adversary delta must be ≥ 0, got %q", tok)
				}
				p.Delta = d
			}
		case "colluder":
			p.Persona = PersonaColluder
			id, err := strconv.Atoi(args)
			if err != nil || id < 0 {
				return Plan{}, fmt.Errorf("chaos: colluder wants a target item ID, got %q", tok)
			}
			p.TargetID = id
		case "degrader":
			p.Persona = PersonaDegrader
			p.Drift = 0.001
			if args != "" {
				parts := strings.SplitN(args, ":", 2)
				r, err := strconv.ParseFloat(parts[0], 64)
				if err != nil || r < 0 || r > 1 {
					return Plan{}, fmt.Errorf("chaos: degrader rate must be in [0, 1], got %q", tok)
				}
				p.Rate = r
				if len(parts) == 2 {
					d, err := strconv.ParseFloat(parts[1], 64)
					if err != nil || d < 0 {
						return Plan{}, fmt.Errorf("chaos: degrader drift must be ≥ 0, got %q", tok)
					}
					p.Drift = d
				}
			}
		default:
			return Plan{}, fmt.Errorf("chaos: unknown injection %q (want crash:N, spammer, adversary, colluder:id, degrader)", name)
		}
	}
	if !p.Enabled() {
		return Plan{}, fmt.Errorf("chaos: empty plan %q", spec)
	}
	return p, nil
}
