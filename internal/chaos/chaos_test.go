package chaos

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

func pair(aID int, aVal float64, bID int, bVal float64) dispatch.Request {
	return dispatch.Request{
		A: item.Item{ID: aID, Value: aVal},
		B: item.Item{ID: bID, Value: bVal},
	}
}

// truth answers every forwarded request correctly, and counts forwards.
type truth struct{ calls int }

func (t *truth) Answer(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
	t.calls++
	return dispatch.Answer{Winner: worker.Truth.Compare(req.A, req.B)}, nil
}

func answers(t *testing.T, b dispatch.Backend, reqs []dispatch.Request) []int {
	t.Helper()
	out := make([]int, len(reqs))
	for i, req := range reqs {
		ans, err := b.Answer(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if ans.Winner.ID != req.A.ID && ans.Winner.ID != req.B.ID {
			t.Fatalf("request %d: winner %d is neither %d nor %d",
				i, ans.Winner.ID, req.A.ID, req.B.ID)
		}
		out[i] = ans.Winner.ID
	}
	return out
}

func manyPairs(n int) []dispatch.Request {
	reqs := make([]dispatch.Request, n)
	for i := range reqs {
		// A always beats B by a wide margin, with fresh IDs per request.
		reqs[i] = pair(2*i, 10, 2*i+1, 1)
	}
	return reqs
}

func TestSpammerAnswersBothWays(t *testing.T) {
	reqs := manyPairs(400)
	got := answers(t, NewSpammer(&truth{}, PersonaConfig{Seed: 1}), reqs)
	var wrong int
	for i, id := range got {
		if id == reqs[i].B.ID {
			wrong++
		}
	}
	// Uniform spam should be wrong about half the time; [100, 300] out of
	// 400 is > 10 sigma of slack either way.
	if wrong < 100 || wrong > 300 {
		t.Fatalf("spammer wrong on %d/400 requests, want roughly half", wrong)
	}
}

func TestSpammerFractionForwardsTheRest(t *testing.T) {
	inner := &truth{}
	reqs := manyPairs(400)
	answers(t, NewSpammer(inner, PersonaConfig{Seed: 1, Fraction: 0.25}), reqs)
	if inner.calls < 200 || inner.calls >= 400 {
		t.Fatalf("inner answered %d/400 requests, want roughly 300", inner.calls)
	}
}

func TestPersonaDeterministicPerSeed(t *testing.T) {
	reqs := manyPairs(200)
	a := answers(t, NewSpammer(&truth{}, PersonaConfig{Seed: 7, Fraction: 0.5}), reqs)
	b := answers(t, NewSpammer(&truth{}, PersonaConfig{Seed: 7, Fraction: 0.5}), reqs)
	c := answers(t, NewSpammer(&truth{}, PersonaConfig{Seed: 8, Fraction: 0.5}), reqs)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 produced identical answer streams")
	}
}

func TestAdversaryInvertsAboveDelta(t *testing.T) {
	adv := NewAdversary(&truth{}, PersonaConfig{Seed: 1, Delta: 0.5})
	// Far pair: the adversary must report the loser.
	ans, err := adv.Answer(context.Background(), pair(1, 10, 2, 1))
	if err != nil || ans.Winner.ID != 2 {
		t.Fatalf("far pair: got winner %d, err %v; want loser 2", ans.Winner.ID, err)
	}
	// Close pair (distance ≤ delta): forwarded to the honest inner backend.
	ans, err = adv.Answer(context.Background(), pair(3, 1.0, 4, 1.2))
	if err != nil || ans.Winner.ID != 4 {
		t.Fatalf("close pair: got winner %d, err %v; want honest 4", ans.Winner.ID, err)
	}
}

func TestColluderPromotesTarget(t *testing.T) {
	col := NewColluder(&truth{}, PersonaConfig{Seed: 1, TargetID: 5})
	// Target present and weaker: still reported as winner, from either side.
	for _, req := range []dispatch.Request{pair(5, 0.1, 9, 10), pair(9, 10, 5, 0.1)} {
		ans, err := col.Answer(context.Background(), req)
		if err != nil || ans.Winner.ID != 5 {
			t.Fatalf("target pair: got winner %d, err %v; want target 5", ans.Winner.ID, err)
		}
	}
	// Target absent: forwarded.
	ans, err := col.Answer(context.Background(), pair(1, 10, 2, 1))
	if err != nil || ans.Winner.ID != 1 {
		t.Fatalf("non-target pair: got winner %d, err %v; want honest 1", ans.Winner.ID, err)
	}
}

func TestCliqueGoldHonestTargetPromotedRestInverted(t *testing.T) {
	inner := &truth{}
	m := NewClique(PersonaConfig{
		Seed: 3, Fraction: 1, TargetID: 5, GoldIDs: []int{100, 101},
	}).Member(inner)

	// Leaked gold pairs are forwarded to the honest inner backend — the ring
	// aces every probe, from either side of the pair.
	for _, req := range []dispatch.Request{pair(100, 10, 3, 1), pair(3, 1, 101, 10)} {
		before := inner.calls
		ans, err := m.Answer(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if inner.calls != before+1 {
			t.Fatalf("gold pair %v was not forwarded to the inner backend", req)
		}
		want := worker.Truth.Compare(req.A, req.B).ID
		if ans.Winner.ID != want {
			t.Fatalf("gold pair: got winner %d, want honest %d", ans.Winner.ID, want)
		}
	}

	// Target pairs promote the target even when it is far weaker.
	for _, req := range []dispatch.Request{pair(5, 0.1, 9, 10), pair(9, 10, 5, 0.1)} {
		ans, err := m.Answer(context.Background(), req)
		if err != nil || ans.Winner.ID != 5 {
			t.Fatalf("target pair: got winner %d, err %v; want target 5", ans.Winner.ID, err)
		}
	}

	// Every other pair is inverted: the loser is reported as winner.
	ans, err := m.Answer(context.Background(), pair(1, 10, 2, 1))
	if err != nil || ans.Winner.ID != 2 {
		t.Fatalf("ordinary pair: got winner %d, err %v; want inverted 2", ans.Winner.ID, err)
	}

	// Value queries: target inflated, everything else honest.
	vans, err := m.Answer(context.Background(), dispatch.Request{
		Kind: dispatch.KindValue, A: item.Item{ID: 5, Value: 0.1},
	})
	if err != nil || vans.Value < 1e17 {
		t.Fatalf("target value query: got %v, err %v; want inflated", vans.Value, err)
	}
	before := inner.calls
	if _, err := m.Answer(context.Background(), dispatch.Request{
		Kind: dispatch.KindValue, A: item.Item{ID: 7, Value: 2},
	}); err != nil || inner.calls != before+1 {
		t.Fatalf("non-target value query was not forwarded (err %v)", err)
	}
}

func TestCliqueMembersAnswerCoordinately(t *testing.T) {
	// Under PairHash the interception decision is a pure function of the
	// pair, so two ring members at a partial fraction make identical
	// choices on identical requests.
	c := NewClique(PersonaConfig{Seed: 9, Fraction: 0.5, TargetID: 5, PairHash: true})
	m1, m2 := c.Member(&truth{}), c.Member(&truth{})
	reqs := manyPairs(200)
	got1 := answers(t, m1, reqs)
	got2 := answers(t, m2, reqs)
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("two members of one ring diverged on the same request stream")
	}
	// The partial fraction must actually split: some pairs inverted, some
	// forwarded honest.
	var inverted int
	for i, id := range got1 {
		if id == reqs[i].B.ID {
			inverted++
		}
	}
	if inverted == 0 || inverted == len(reqs) {
		t.Fatalf("fraction 0.5 ring inverted %d/%d pairs; want a strict split", inverted, len(reqs))
	}
}

func TestPlanApplyCliqueDecoratesTarget(t *testing.T) {
	naive, expert := &truth{}, &truth{}
	p, err := ParsePlan("clique:1:5")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 1
	nb, eb, _, err := p.Apply(naive, expert, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eb != dispatch.Backend(expert) {
		t.Fatal("naive-side clique decorated the expert backend")
	}
	ans, err := nb.Answer(context.Background(), pair(1, 10, 2, 1))
	if err != nil || ans.Winner.ID != 2 {
		t.Fatalf("applied clique: got winner %d, err %v; want inverted 2", ans.Winner.ID, err)
	}
}

func TestDegraderDriftsTowardRandomness(t *testing.T) {
	// Rate 0, no drift: permanently honest.
	reqs := manyPairs(50)
	got := answers(t, NewDegrader(&truth{}, PersonaConfig{Seed: 1}), reqs)
	for i, id := range got {
		if id != reqs[i].A.ID {
			t.Fatalf("zero-rate degrader answered wrong at request %d", i)
		}
	}
	// Rate 1: permanently wrong.
	got = answers(t, NewDegrader(&truth{}, PersonaConfig{Seed: 1, Rate: 1}), reqs)
	for i, id := range got {
		if id != reqs[i].B.ID {
			t.Fatalf("rate-1 degrader answered right at request %d", i)
		}
	}
	// Drift 0.5 from 0: request 1 has rate 0 (honest), request 3+ has rate 1.
	got = answers(t, NewDegrader(&truth{}, PersonaConfig{Seed: 1, Drift: 0.5}), reqs[:5])
	if got[0] != reqs[0].A.ID {
		t.Fatalf("fresh degrader answered wrong on its first request")
	}
	for i := 2; i < 5; i++ {
		if got[i] != reqs[i].B.ID {
			t.Fatalf("fatigued degrader answered right at request %d", i)
		}
	}
	// MaxRate caps the drift.
	inner := &truth{}
	answers(t, NewDegrader(inner, PersonaConfig{Seed: 1, Drift: 1, MaxRate: 0.5}), manyPairs(200))
	if inner.calls < 50 || inner.calls > 150 {
		t.Fatalf("capped degrader forwarded %d/200, want roughly half", inner.calls)
	}
}

func TestCrashSharedAcrossBackends(t *testing.T) {
	c := NewCrash(3)
	a, b := c.Wrap(&truth{}), c.Wrap(&truth{})
	ctx := context.Background()
	for i, backend := range []dispatch.Backend{a, b, a} {
		if _, err := backend.Answer(ctx, pair(1, 2, 2, 1)); err != nil {
			t.Fatalf("request %d within budget failed: %v", i, err)
		}
	}
	if c.Crashed() {
		t.Fatal("Crashed() true before the budget was exceeded")
	}
	_, err := b.Answer(ctx, pair(1, 2, 2, 1))
	switch {
	case err == nil:
		t.Fatal("4th request survived a crash-after-3 injector")
	case !errors.Is(err, ErrCrash):
		t.Fatalf("crash error %v does not wrap ErrCrash", err)
	case !errors.Is(err, dispatch.ErrPermanent):
		t.Fatalf("crash error %v does not wrap dispatch.ErrPermanent", err)
	}
	if !c.Crashed() {
		t.Fatal("Crashed() false after a refused request")
	}
}

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec string
		want Plan
		bad  bool
	}{
		{spec: "crash:500", want: Plan{CrashAfter: 500}},
		{spec: "spammer", want: Plan{Injections: []Injection{{Persona: PersonaSpammer}}}},
		{spec: "spammer:0.2", want: Plan{Injections: []Injection{{Persona: PersonaSpammer, Fraction: 0.2}}}},
		{spec: "adversary:0.05", want: Plan{Injections: []Injection{{Persona: PersonaAdversary, Delta: 0.05}}}},
		{spec: "colluder:7", want: Plan{Injections: []Injection{{Persona: PersonaColluder, TargetID: 7}}}},
		{spec: "degrader:0.1:0.01", want: Plan{Injections: []Injection{{Persona: PersonaDegrader, Rate: 0.1, Drift: 0.01}}}},
		{spec: "degrader", want: Plan{Injections: []Injection{{Persona: PersonaDegrader, Drift: 0.001}}}},
		{spec: "spammer:0.2,crash:100", want: Plan{
			Injections: []Injection{{Persona: PersonaSpammer, Fraction: 0.2}},
			CrashAfter: 100,
		}},
		{spec: "outage", want: Plan{Injections: []Injection{{Persona: PersonaOutage}}}},
		{spec: "expert-outage:0.5", want: Plan{Injections: []Injection{
			{Persona: PersonaOutage, Expert: true, Fraction: 0.5},
		}}},
		{spec: "expert-outage:1.0@1000+", want: Plan{Injections: []Injection{
			{Persona: PersonaOutage, Expert: true, Fraction: 1, Window: Window{From: 1000}},
		}}},
		{spec: "spammer:0.3@500-2000,expert-outage:0.5@1000+", want: Plan{Injections: []Injection{
			{Persona: PersonaSpammer, Fraction: 0.3, Window: Window{From: 500, To: 2000}},
			{Persona: PersonaOutage, Expert: true, Fraction: 0.5, Window: Window{From: 1000}},
		}}},
		{spec: "spammer:0.1-0.9@500-2000", want: Plan{Injections: []Injection{
			{Persona: PersonaSpammer, Fraction: 0.1, FractionTo: 0.9, Window: Window{From: 500, To: 2000}},
		}}},
		{spec: "spammer,adversary", want: Plan{Injections: []Injection{
			{Persona: PersonaSpammer},
			{Persona: PersonaAdversary},
		}}},
		{spec: "expert-adversary:0.1@200-400", want: Plan{Injections: []Injection{
			{Persona: PersonaAdversary, Expert: true, Delta: 0.1, Window: Window{From: 200, To: 400}},
		}}},
		{spec: "clique:0.3:42", want: Plan{Injections: []Injection{
			{Persona: PersonaClique, Fraction: 0.3, TargetID: 42},
		}}},
		{spec: "expert-clique:1:7@500+", want: Plan{Injections: []Injection{
			{Persona: PersonaClique, Expert: true, Fraction: 1, TargetID: 7, Window: Window{From: 500}},
		}}},
		{spec: "", bad: true},
		{spec: "spammer:1.5", bad: true},
		{spec: "crash:0", bad: true},
		{spec: "colluder", bad: true},
		{spec: "gremlin", bad: true},
		{spec: "expert-gremlin", bad: true},
		{spec: "crash:100,crash:200", bad: true},
		{spec: "crash:100@500+", bad: true},
		{spec: "spammer@abc", bad: true},
		{spec: "spammer@500-100", bad: true},
		{spec: "spammer:0.1-0.9", bad: true},       // ramp without a window
		{spec: "spammer:0.1-0.9@1000+", bad: true}, // ramp needs a bounded window
		{spec: "outage:0", bad: true},
		{spec: "clique", bad: true},
		{spec: "clique:0.3", bad: true},
		{spec: "clique:1.5:42", bad: true},
		{spec: "clique:0:42", bad: true},
		{spec: "clique:0.3:-1", bad: true},
		{spec: "clique:0.3:x", bad: true},
	}
	for _, tc := range cases {
		got, err := ParsePlan(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("ParsePlan(%q) accepted a bad spec as %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestPlanApplyTargetsDeclaredClass(t *testing.T) {
	naive, expert := &truth{}, &truth{}
	nb, eb, crash, err := Plan{
		Injections: []Injection{{Persona: PersonaSpammer}},
		Seed:       1,
	}.Apply(naive, expert, nil)
	if err != nil {
		t.Fatal(err)
	}
	if crash != nil {
		t.Fatal("Apply returned a crash injector for a crash-free plan")
	}
	if eb != dispatch.Backend(expert) {
		t.Fatal("naive-side plan decorated the expert backend")
	}
	if nb == dispatch.Backend(naive) {
		t.Fatal("naive-side plan left the naive backend undecorated")
	}

	nb, eb, _, err = Plan{
		Injections: []Injection{{Persona: PersonaOutage, Expert: true}},
		Seed:       1,
	}.Apply(naive, expert, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb != dispatch.Backend(naive) {
		t.Fatal("expert-side plan decorated the naive backend")
	}
	if eb == dispatch.Backend(expert) {
		t.Fatal("expert-side plan left the expert backend undecorated")
	}

	_, _, crash, err = Plan{CrashAfter: 5}.Apply(naive, expert, nil)
	if err != nil || crash == nil {
		t.Fatalf("crash plan: crash=%v err=%v", crash, err)
	}

	bad := Plan{Injections: []Injection{{Persona: "gremlin"}}}
	if _, _, _, err := bad.Apply(naive, expert, nil); err == nil {
		t.Fatal("Apply accepted an unknown persona")
	}
}

func TestOutageRefusesWithRecoverableError(t *testing.T) {
	out := NewOutage(&truth{}, PersonaConfig{Seed: 1})
	_, err := out.Answer(context.Background(), pair(1, 2, 2, 1))
	switch {
	case err == nil:
		t.Fatal("full outage answered a request")
	case !errors.Is(err, ErrOutage):
		t.Fatalf("outage error %v does not wrap ErrOutage", err)
	case !errors.Is(err, dispatch.ErrBackendUnavailable):
		t.Fatalf("outage error %v does not wrap dispatch.ErrBackendUnavailable", err)
	case errors.Is(err, dispatch.ErrPermanent):
		t.Fatalf("outage error %v wraps dispatch.ErrPermanent; outages must stay recoverable", err)
	}

	// Partial outage refuses roughly the configured fraction.
	inner := &truth{}
	part := NewOutage(inner, PersonaConfig{Seed: 1, Fraction: 0.5})
	var refused int
	for _, req := range manyPairs(400) {
		if _, err := part.Answer(context.Background(), req); err != nil {
			refused++
		}
	}
	if refused < 100 || refused > 300 {
		t.Fatalf("half outage refused %d/400 requests, want roughly half", refused)
	}
	if inner.calls != 400-refused {
		t.Fatalf("inner answered %d requests, want %d", inner.calls, 400-refused)
	}
}

func TestWindowGatesPersona(t *testing.T) {
	// Served-request clock: the outage is total but only within [2, 4).
	out := NewOutage(&truth{}, PersonaConfig{Seed: 1, Window: Window{From: 2, To: 4}})
	var errAt []int
	for i, req := range manyPairs(6) {
		if _, err := out.Answer(context.Background(), req); err != nil {
			errAt = append(errAt, i)
		}
	}
	if !reflect.DeepEqual(errAt, []int{2, 3}) {
		t.Fatalf("windowed outage refused requests %v, want [2 3]", errAt)
	}

	// External clock: the window follows the clock, not the served count.
	tick := int64(0)
	clocked := NewOutage(&truth{}, PersonaConfig{
		Seed: 1, Window: Window{From: 10}, Clock: func() int64 { return tick },
	})
	if _, err := clocked.Answer(context.Background(), pair(1, 2, 2, 1)); err != nil {
		t.Fatalf("outage active before its window: %v", err)
	}
	tick = 10
	if _, err := clocked.Answer(context.Background(), pair(1, 2, 2, 1)); err == nil {
		t.Fatal("outage inactive inside its open-ended window")
	}
}

func TestRampInterpolatesFraction(t *testing.T) {
	// Ramp 0→1 over [0, 1000): early requests mostly pass, late ones mostly
	// refuse.
	tick := int64(0)
	out := NewOutage(&truth{}, PersonaConfig{
		Seed: 1, Fraction: 0.01, FractionTo: 1,
		Window: Window{To: 1000}, Clock: func() int64 { return tick },
	})
	refusedIn := func(from, to int64) int {
		refused := 0
		for tick = from; tick < to; tick++ {
			if _, err := out.Answer(context.Background(), pair(1, 2, 2, 1)); err != nil {
				refused++
			}
		}
		return refused
	}
	early, late := refusedIn(0, 200), refusedIn(800, 1000)
	if early > 80 {
		t.Fatalf("ramp start refused %d/200, want few", early)
	}
	if late < 120 {
		t.Fatalf("ramp end refused %d/200, want most", late)
	}
}

func TestPairHashIsOrderIndependent(t *testing.T) {
	reqs := manyPairs(100)
	cfg := PersonaConfig{Seed: 3, Fraction: 0.5, PairHash: true}
	forward := answers(t, NewSpammer(&truth{}, cfg), reqs)

	// Replay the same pairs in reverse order: each decision must match,
	// because it depends only on the pair, not on the request sequence.
	rev := make([]dispatch.Request, len(reqs))
	for i, req := range reqs {
		rev[len(reqs)-1-i] = req
	}
	backward := answers(t, NewSpammer(&truth{}, cfg), rev)
	for i := range reqs {
		if forward[i] != backward[len(reqs)-1-i] {
			t.Fatalf("pair-hash decision for request %d changed with request order", i)
		}
	}
}
