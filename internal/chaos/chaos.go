// Package chaos provides semantic fault injection for robustness testing:
// adversarial worker personas, backend outages, and a deterministic crash
// injector, all as dispatch.Backend decorators.
//
// internal/dispatch.Flaky models *transport* faults — requests that drop or
// stall. This package models the faults the paper's threshold model warns
// cannot be repaired by repetition: workers whose *answers* are wrong, and
// whole worker classes that go away. A Spammer answers uniformly at random;
// an Adversary inverts answers even when the value difference exceeds its
// threshold; a Colluder promotes one fixed target item; a Degrader starts
// honest and drifts toward randomness as it serves more requests (worker
// fatigue); an Outage refuses intercepted requests with an error wrapping
// dispatch.ErrBackendUnavailable — the platform persona that exercises the
// graceful-degradation ladder; a Clique is a coordinated ring whose members
// share one decision stream — honest on a leaked gold set, promoting one
// target item, and inverting every other intercepted answer — the adversary
// that defeats gold probes and motivates the agreement-graph trust layer
// (internal/trust). Each persona intercepts a configurable
// fraction of requests and forwards the rest, so a single decorator can also
// model a partially poisoned worker pool. Personas decorate either worker
// class: a Plan targets the naïve backend by default and the expert backend
// with the "expert-" token prefix.
//
// Injections can be time-varying: a PersonaConfig.Window restricts the
// persona to a span of the fault clock, and Fraction..FractionTo ramps the
// interception rate linearly across a bounded window. The clock defaults to
// the decorator's own served-request counter; a Plan applied by the session
// layer substitutes the run's paid-comparison count, which is restored on
// checkpoint resume — so a resumed run sees every window at the same position
// the crashed run did.
//
// The Crash injector kills a run after a fixed number of comparisons with an
// error wrapping dispatch.ErrPermanent (never retried), which is how the
// checkpoint/resume path is exercised end-to-end: run, crash
// deterministically, resume from the last snapshot, and require a
// bit-identical final answer.
//
// Injected randomness is drawn from seeded internal/rng streams under a
// mutex, so a sequential run misbehaves identically on every replay. For
// checkpointed runs that must replay bit-identically *across a crash*, set
// PersonaConfig.PairHash (Plan.PairHash): decisions then come from a pure
// hash of the seed and the request's item IDs, so a pair answered before the
// crash — and served from the memo on resume, never reaching the persona —
// does not shift the stream consumed by pairs answered after it.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// ErrCrash marks answers refused by an injected crash. It wraps
// dispatch.ErrPermanent, so retry decorators give up immediately — a crashed
// process does not come back because you ask again.
var ErrCrash = fmt.Errorf("chaos: injected crash: %w", dispatch.ErrPermanent)

// ErrOutage marks answers refused by an injected backend outage. It wraps
// dispatch.ErrBackendUnavailable — the platform is down, not the process —
// so the degrade controller treats it as a recoverable signal rather than a
// fatal one.
var ErrOutage = fmt.Errorf("chaos: injected outage: %w", dispatch.ErrBackendUnavailable)

// Clock reports the current position on the fault timeline. The session
// layer supplies the run's total paid-comparison count, which makes windows
// replay identically across crash and resume (failed dispatches are refunded
// and never billed, so injected faults do not advance the clock).
type Clock func() int64

// Window is a half-open span [From, To) of the fault clock during which an
// injection is active. To == 0 means open-ended; the zero Window is always
// active.
type Window struct {
	From, To int64
}

// Contains reports whether clock position t falls inside the window.
func (w Window) Contains(t int64) bool {
	return t >= w.From && (w.To == 0 || t < w.To)
}

// PersonaConfig configures an adversarial persona decorator.
type PersonaConfig struct {
	// Fraction is the probability in (0, 1] that a request is intercepted
	// by the persona instead of forwarded to the inner backend; values
	// outside (0, 1) mean 1 (every request).
	Fraction float64
	// FractionTo, when in (0, 1] and the Window is bounded, ramps the
	// interception probability linearly from Fraction at Window.From to
	// FractionTo at Window.To.
	FractionTo float64
	// Window restricts the persona to a span of the fault clock; the zero
	// Window is always active.
	Window Window
	// Clock positions the Window and ramp on the fault timeline; nil uses
	// the decorator's own served-request counter.
	Clock Clock
	// PairHash draws per-request randomness from a pure hash of
	// (Seed, A.ID, B.ID) instead of a sequential stream, making decisions
	// order-independent — required for bit-identical crash/resume replay.
	PairHash bool
	// Seed seeds the persona's deterministic decision stream.
	Seed uint64
	// Delta is the Adversary's discernment threshold: intercepted pairs
	// farther apart than Delta get the *wrong* answer.
	Delta float64
	// TargetID is the item the Colluder (and the Clique) promotes.
	TargetID int
	// GoldIDs lists item IDs of a leaked gold set the Clique answers
	// honestly — the shared-gold-answers attack that lets a coordinated
	// ring sail through gold-probe quality control. Ignored by the other
	// personas.
	GoldIDs []int
	// Rate is the Degrader's initial error probability; Drift is added per
	// clock tick; MaxRate caps the drift (0 means 1).
	Rate, Drift, MaxRate float64
}

// fraction returns the effective base interception probability.
func (c PersonaConfig) fraction() float64 {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return 1
	}
	return c.Fraction
}

// fractionAt returns the interception probability at clock position t,
// applying the linear ramp when one is configured over a bounded window.
func (c PersonaConfig) fractionAt(t int64) float64 {
	f := c.fraction()
	to := c.FractionTo
	w := c.Window
	if to <= 0 || to > 1 || w.To <= w.From {
		return f
	}
	pos := float64(t - w.From)
	span := float64(w.To - w.From)
	switch {
	case pos < 0:
		pos = 0
	case pos > span:
		pos = span
	}
	return f + (to-f)*pos/span
}

// hash01 maps (seed, salt, pair) to a uniform float64 in [0, 1) via a
// SplitMix64-style mix. Value queries additionally mix the vote index, so
// repeated votes on one element draw independent decisions; comparisons keep
// the historical pair-only chain, preserving bit-identical replay of
// existing runs.
func (c PersonaConfig) hash01(req dispatch.Request, salt uint64) float64 {
	h := splitmix(c.Seed ^ splitmix(salt))
	h = splitmix(h ^ uint64(int64(req.A.ID)))
	h = splitmix(h ^ uint64(int64(req.B.ID)))
	if req.Kind == dispatch.KindValue {
		h = splitmix(h ^ uint64(int64(req.Rep))*0x9e3779b97f4a7c15)
	}
	return float64(h>>11) / (1 << 53)
}

// Salts separating the independent randomness draws a persona makes per
// request in PairHash mode.
const (
	saltIntercept uint64 = 0x633d
	saltAnswer    uint64 = 0xa27f
)

// persona is the shared decorator chassis: a seeded decision source under a
// mutex, window/ramp gating against the fault clock, and an intercept
// function that produces the dishonest answer (or refusal).
type persona struct {
	inner dispatch.Backend
	cfg   PersonaConfig

	mu     sync.Mutex
	r      *rng.Source
	served int64

	// answer produces the persona's reply for an intercepted comparison at
	// clock position t. A false second return forwards to the inner backend
	// after all (personas whose dishonesty is conditional, e.g. the
	// Adversary below its threshold); a non-nil error refuses the request.
	answer func(p *persona, req dispatch.Request, t int64) (item.Item, bool, error)

	// value produces the persona's reply for an intercepted cardinal value
	// query, with the same second-return/error conventions as answer. nil
	// forwards every value query untouched (the persona's dishonesty has no
	// cardinal analogue, e.g. the Adversary, whose lies are defined by pair
	// distance).
	value func(p *persona, req dispatch.Request, t int64) (float64, bool, error)
}

// Answer implements dispatch.Backend.
func (p *persona) Answer(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
	if req.Kind == dispatch.KindValue && p.value == nil {
		return p.inner.Answer(ctx, req)
	}
	p.mu.Lock()
	t := p.served
	if p.cfg.Clock != nil {
		t = p.cfg.Clock()
	}
	p.served++
	intercept := false
	if p.cfg.Window.Contains(t) {
		f := p.cfg.fractionAt(t)
		intercept = f >= 1 || p.chance(req, saltIntercept, f)
	}
	var (
		winner item.Item
		score  float64
		ok     bool
		err    error
	)
	if intercept {
		if req.Kind == dispatch.KindValue {
			score, ok, err = p.value(p, req, t)
		} else {
			winner, ok, err = p.answer(p, req, t)
		}
	}
	p.mu.Unlock()
	if err != nil {
		return dispatch.Answer{}, err
	}
	if !intercept || !ok {
		return p.inner.Answer(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return dispatch.Answer{}, err
	}
	if req.Kind == dispatch.KindValue {
		return dispatch.Answer{Value: score}, nil
	}
	return dispatch.Answer{Winner: winner}, nil
}

// chance draws a Bernoulli(prob) decision for req: from a pure pair-keyed
// hash in PairHash mode (the same pair draws the same outcome whenever it is
// asked, which is what survives checkpoint replay), from the sequential
// seeded stream otherwise. Callers hold p.mu.
func (p *persona) chance(req dispatch.Request, salt uint64, prob float64) bool {
	switch {
	case prob <= 0:
		return false
	case prob >= 1:
		return true
	case p.cfg.PairHash:
		return p.cfg.hash01(req, salt) < prob
	}
	return p.r.Bernoulli(prob)
}

// coin draws a fair boolean for req; callers hold p.mu.
func (p *persona) coin(req dispatch.Request, salt uint64) bool {
	if p.cfg.PairHash {
		return p.cfg.hash01(req, salt) < 0.5
	}
	return p.r.Bool()
}

// garbageValue is the spammer-style reply to an intercepted value query: a
// uniform draw in [0, 1) that ignores the element entirely. Pure in
// (seed, item, rep) under PairHash, so replay stays bit-identical.
func (p *persona) garbageValue(req dispatch.Request) float64 {
	if p.cfg.PairHash {
		return p.cfg.hash01(req, saltAnswer)
	}
	return p.r.Float64()
}

// splitmix is the SplitMix64 finalizer (mirrors internal/rng's mixer).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// loser returns the less valuable element (the second on exact ties) — the
// wrong answer to any comparison the threshold model lets a worker resolve.
func loser(a, b item.Item) item.Item {
	if a.Value < b.Value {
		return a
	}
	return b
}

// NewSpammer decorates inner so intercepted comparisons are answered
// uniformly at random regardless of the elements — the classic click-through
// spammer that gold-question quality control exists to catch. Intercepted
// value queries get an arbitrary score that likewise ignores the element.
func NewSpammer(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("spammer"),
		answer: func(p *persona, req dispatch.Request, _ int64) (item.Item, bool, error) {
			if p.coin(req, saltAnswer) {
				return req.A, true, nil
			}
			return req.B, true, nil
		},
		value: func(p *persona, req dispatch.Request, _ int64) (float64, bool, error) {
			return p.garbageValue(req), true, nil
		},
	}
}

// NewAdversary decorates inner so intercepted comparisons whose value
// difference exceeds cfg.Delta are answered with the *loser* — an inverted
// answer exactly where the threshold model promises honesty. Pairs within
// Delta are forwarded: below the threshold every answer is already
// model-legal, so inversion there would be indistinguishable from honesty.
func NewAdversary(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("adversary"),
		answer: func(p *persona, req dispatch.Request, _ int64) (item.Item, bool, error) {
			if item.Distance(req.A, req.B) <= p.cfg.Delta {
				return item.Item{}, false, nil
			}
			return loser(req.A, req.B), true, nil
		},
	}
}

// NewColluder decorates inner so every intercepted comparison involving the
// target item reports the target as winner — a voting ring promoting one
// entry. Comparisons not involving the target are forwarded untouched. An
// intercepted value query on the target reports an absurdly high score (the
// cardinal form of the same promotion); other elements are forwarded.
func NewColluder(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("colluder"),
		answer: func(p *persona, req dispatch.Request, _ int64) (item.Item, bool, error) {
			switch p.cfg.TargetID {
			case req.A.ID:
				return req.A, true, nil
			case req.B.ID:
				return req.B, true, nil
			}
			return item.Item{}, false, nil
		},
		value: func(p *persona, req dispatch.Request, _ int64) (float64, bool, error) {
			if req.A.ID == p.cfg.TargetID {
				return 1e18, true, nil
			}
			return 0, false, nil
		},
	}
}

// Clique coordinates a colluding worker ring — the persona built to defeat
// gold-probe quality control. Every member shares one seeded decision
// stream (or, under PairHash, one pure hash), so the whole ring answers
// each intercepted pair identically:
//
//   - pairs touching the leaked gold set (cfg.GoldIDs) are forwarded to the
//     member's honest inner backend — the ring knows the answers the
//     platform checks and aces them;
//   - pairs involving cfg.TargetID report the target as winner — the
//     promotion the ring was hired for;
//   - every other intercepted pair gets the *loser* — coordinated
//     inversion that buries the target's competition.
//
// Gold accuracy stays perfect while phase-1 answers are poisoned, which is
// exactly the adversary the agreement-graph scorer (internal/trust) exists
// to catch: perfect internal agreement makes the ring a dense clique, but
// one the honest majority's larger core out-densifies.
//
// Build one Clique per ring and decorate each member worker with Member; a
// Plan applies a single member to the session backend, with Fraction
// modelling the share of the crowd the ring controls.
type Clique struct {
	cfg  PersonaConfig
	gold map[int]bool

	mu     sync.Mutex
	r      *rng.Source
	served int64
}

// NewClique builds the ring's shared state from cfg.
func NewClique(cfg PersonaConfig) *Clique {
	c := &Clique{
		cfg:  cfg,
		gold: make(map[int]bool, len(cfg.GoldIDs)),
		r:    rng.New(cfg.Seed).Child("clique"),
	}
	for _, id := range cfg.GoldIDs {
		c.gold[id] = true
	}
	return c
}

// Member decorates inner as one ring member. All members of one Clique
// share the ring's decision stream and answer coordinately.
func (c *Clique) Member(inner dispatch.Backend) dispatch.Backend {
	return &cliqueMember{c: c, inner: inner}
}

type cliqueMember struct {
	c     *Clique
	inner dispatch.Backend
}

// Answer implements dispatch.Backend.
func (m *cliqueMember) Answer(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
	c := m.c
	c.mu.Lock()
	t := c.served
	if c.cfg.Clock != nil {
		t = c.cfg.Clock()
	}
	c.served++
	intercept := false
	if c.cfg.Window.Contains(t) {
		f := c.cfg.fractionAt(t)
		if f >= 1 {
			intercept = true
		} else if c.cfg.PairHash {
			intercept = c.cfg.hash01(req, saltIntercept) < f
		} else {
			intercept = c.r.Bernoulli(f)
		}
	}
	var (
		winner item.Item
		value  float64
		ok     bool
	)
	if intercept {
		if req.Kind == dispatch.KindValue {
			// The cardinal form of the promotion; non-target value queries
			// (and everything gold) stay honest — lies there earn nothing.
			if req.A.ID == c.cfg.TargetID {
				value, ok = 1e18, true
			}
		} else {
			switch {
			case c.gold[req.A.ID] || c.gold[req.B.ID]:
				// Leaked gold: answer honestly and pass the probe.
			case req.A.ID == c.cfg.TargetID:
				winner, ok = req.A, true
			case req.B.ID == c.cfg.TargetID:
				winner, ok = req.B, true
			default:
				winner, ok = loser(req.A, req.B), true
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		return m.inner.Answer(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return dispatch.Answer{}, err
	}
	if req.Kind == dispatch.KindValue {
		return dispatch.Answer{Value: value}, nil
	}
	return dispatch.Answer{Winner: winner}, nil
}

// NewDegrader decorates inner with an error rate that starts at cfg.Rate and
// grows by cfg.Drift per clock tick up to cfg.MaxRate (default 1) — worker
// fatigue. An erroneous answer is the loser of the pair; otherwise the
// request is forwarded.
func NewDegrader(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("degrader"),
		answer: func(p *persona, req dispatch.Request, t int64) (item.Item, bool, error) {
			rate := p.cfg.Rate + p.cfg.Drift*float64(t)
			max := p.cfg.MaxRate
			if max <= 0 || max > 1 {
				max = 1
			}
			if rate > max {
				rate = max
			}
			if rate > 0 && p.chance(req, saltAnswer, rate) {
				return loser(req.A, req.B), true, nil
			}
			return item.Item{}, false, nil
		},
		value: func(p *persona, req dispatch.Request, t int64) (float64, bool, error) {
			rate := p.cfg.Rate + p.cfg.Drift*float64(t)
			max := p.cfg.MaxRate
			if max <= 0 || max > 1 {
				max = 1
			}
			if rate > max {
				rate = max
			}
			if rate > 0 && p.chance(req, saltAnswer, rate) {
				return p.garbageValue(req), true, nil
			}
			return 0, false, nil
		},
	}
}

// NewOutage decorates inner so intercepted requests fail with ErrOutage —
// the worker class is down. A Fraction below 1 models a brownout (some
// requests still get through); a Window models a timed outage; a ramp models
// a platform sliding into overload.
func NewOutage(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("outage"),
		answer: func(p *persona, req dispatch.Request, _ int64) (item.Item, bool, error) {
			return item.Item{}, false, ErrOutage
		},
		value: func(p *persona, req dispatch.Request, _ int64) (float64, bool, error) {
			return 0, false, ErrOutage
		},
	}
}

// Crash is a deterministic crash injector: backends wrapped by the same
// Crash share one comparison counter, and every request past the configured
// budget fails with ErrCrash. Deterministic for sequential runs — the
// N+1'th dispatched comparison dies, whichever backend carries it — which is
// what lets a test kill a run at an exact comparison index and then verify
// that resume-from-checkpoint reproduces the uninterrupted answer.
type Crash struct {
	after   int64
	n       atomic.Int64
	crashed atomic.Bool
}

// NewCrash returns an injector that admits after answers and then fails
// every subsequent request. after < 1 crashes immediately.
func NewCrash(after int64) *Crash {
	return &Crash{after: after}
}

// Wrap decorates b with this injector; multiple backends wrapped by one
// Crash share the admission counter.
func (c *Crash) Wrap(b dispatch.Backend) dispatch.Backend {
	return dispatch.Func(func(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
		if c.n.Add(1) > c.after {
			c.crashed.Store(true)
			return dispatch.Answer{}, fmt.Errorf("after %d comparisons: %w", c.after, ErrCrash)
		}
		return b.Answer(ctx, req)
	})
}

// Crashed reports whether the injector has refused at least one request.
func (c *Crash) Crashed() bool { return c.crashed.Load() }
