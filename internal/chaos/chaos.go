// Package chaos provides semantic fault injection for robustness testing:
// adversarial worker personas and a deterministic crash injector, all as
// dispatch.Backend decorators.
//
// internal/dispatch.Flaky models *transport* faults — requests that drop or
// stall. This package models the faults the paper's threshold model warns
// cannot be repaired by repetition: workers whose *answers* are wrong.
// A Spammer answers uniformly at random; an Adversary inverts answers even
// when the value difference exceeds its threshold; a Colluder promotes one
// fixed target item; a Degrader starts honest and drifts toward randomness
// as it serves more requests (worker fatigue). Each persona intercepts a
// configurable fraction of requests and forwards the rest, so a single
// decorator can also model a partially poisoned worker pool.
//
// The Crash injector kills a run after a fixed number of comparisons with an
// error wrapping dispatch.ErrPermanent (never retried), which is how the
// checkpoint/resume path is exercised end-to-end: run, crash
// deterministically, resume from the last snapshot, and require a
// bit-identical final answer.
//
// All injected randomness is drawn from seeded internal/rng streams under a
// mutex, so a sequential run misbehaves identically on every replay.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// ErrCrash marks answers refused by an injected crash. It wraps
// dispatch.ErrPermanent, so retry decorators give up immediately — a crashed
// process does not come back because you ask again.
var ErrCrash = fmt.Errorf("chaos: injected crash: %w", dispatch.ErrPermanent)

// PersonaConfig configures an adversarial persona decorator.
type PersonaConfig struct {
	// Fraction is the probability in (0, 1] that a request is intercepted
	// by the persona instead of forwarded to the inner backend; values
	// outside (0, 1) mean 1 (every request).
	Fraction float64
	// Seed seeds the persona's deterministic decision stream.
	Seed uint64
	// Delta is the Adversary's discernment threshold: intercepted pairs
	// farther apart than Delta get the *wrong* answer.
	Delta float64
	// TargetID is the item the Colluder promotes.
	TargetID int
	// Rate is the Degrader's initial error probability; Drift is added per
	// served request; MaxRate caps the drift (0 means 1).
	Rate, Drift, MaxRate float64
}

// fraction returns the effective interception probability.
func (c PersonaConfig) fraction() float64 {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return 1
	}
	return c.Fraction
}

// persona is the shared decorator chassis: a seeded decision stream under a
// mutex and an intercept function that produces the dishonest answer.
type persona struct {
	inner dispatch.Backend
	cfg   PersonaConfig

	mu     sync.Mutex
	r      *rng.Source
	served int64

	// answer produces the persona's reply for an intercepted request;
	// a false second return forwards to the inner backend after all
	// (personas whose dishonesty is conditional, e.g. the Adversary below
	// its threshold).
	answer func(p *persona, req dispatch.Request) (item.Item, bool)
}

// Answer implements dispatch.Backend.
func (p *persona) Answer(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
	p.mu.Lock()
	p.served++
	intercept := p.cfg.fraction() >= 1 || p.r.Bernoulli(p.cfg.fraction())
	var (
		winner item.Item
		ok     bool
	)
	if intercept {
		winner, ok = p.answer(p, req)
	}
	p.mu.Unlock()
	if !intercept || !ok {
		return p.inner.Answer(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return dispatch.Answer{}, err
	}
	return dispatch.Answer{Winner: winner}, nil
}

// loser returns the less valuable element (the second on exact ties) — the
// wrong answer to any comparison the threshold model lets a worker resolve.
func loser(a, b item.Item) item.Item {
	if a.Value < b.Value {
		return a
	}
	return b
}

// NewSpammer decorates inner so intercepted comparisons are answered
// uniformly at random regardless of the elements — the classic click-through
// spammer that gold-question quality control exists to catch.
func NewSpammer(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("spammer"),
		answer: func(p *persona, req dispatch.Request) (item.Item, bool) {
			if p.r.Bool() {
				return req.A, true
			}
			return req.B, true
		},
	}
}

// NewAdversary decorates inner so intercepted comparisons whose value
// difference exceeds cfg.Delta are answered with the *loser* — an inverted
// answer exactly where the threshold model promises honesty. Pairs within
// Delta are forwarded: below the threshold every answer is already
// model-legal, so inversion there would be indistinguishable from honesty.
func NewAdversary(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("adversary"),
		answer: func(p *persona, req dispatch.Request) (item.Item, bool) {
			if item.Distance(req.A, req.B) <= p.cfg.Delta {
				return item.Item{}, false
			}
			return loser(req.A, req.B), true
		},
	}
}

// NewColluder decorates inner so every intercepted comparison involving the
// target item reports the target as winner — a voting ring promoting one
// entry. Comparisons not involving the target are forwarded untouched.
func NewColluder(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("colluder"),
		answer: func(p *persona, req dispatch.Request) (item.Item, bool) {
			switch p.cfg.TargetID {
			case req.A.ID:
				return req.A, true
			case req.B.ID:
				return req.B, true
			}
			return item.Item{}, false
		},
	}
}

// NewDegrader decorates inner with an error rate that starts at cfg.Rate and
// grows by cfg.Drift per served request up to cfg.MaxRate (default 1) —
// worker fatigue. An erroneous answer is the loser of the pair; otherwise the
// request is forwarded.
func NewDegrader(inner dispatch.Backend, cfg PersonaConfig) dispatch.Backend {
	return &persona{
		inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("degrader"),
		answer: func(p *persona, req dispatch.Request) (item.Item, bool) {
			rate := p.cfg.Rate + p.cfg.Drift*float64(p.served-1)
			max := p.cfg.MaxRate
			if max <= 0 || max > 1 {
				max = 1
			}
			if rate > max {
				rate = max
			}
			if rate > 0 && p.r.Bernoulli(rate) {
				return loser(req.A, req.B), true
			}
			return item.Item{}, false
		},
	}
}

// Crash is a deterministic crash injector: backends wrapped by the same
// Crash share one comparison counter, and every request past the configured
// budget fails with ErrCrash. Deterministic for sequential runs — the
// N+1'th dispatched comparison dies, whichever backend carries it — which is
// what lets a test kill a run at an exact comparison index and then verify
// that resume-from-checkpoint reproduces the uninterrupted answer.
type Crash struct {
	after   int64
	n       atomic.Int64
	crashed atomic.Bool
}

// NewCrash returns an injector that admits after answers and then fails
// every subsequent request. after < 1 crashes immediately.
func NewCrash(after int64) *Crash {
	return &Crash{after: after}
}

// Wrap decorates b with this injector; multiple backends wrapped by one
// Crash share the admission counter.
func (c *Crash) Wrap(b dispatch.Backend) dispatch.Backend {
	return dispatch.Func(func(ctx context.Context, req dispatch.Request) (dispatch.Answer, error) {
		if c.n.Add(1) > c.after {
			c.crashed.Store(true)
			return dispatch.Answer{}, fmt.Errorf("after %d comparisons: %w", c.after, ErrCrash)
		}
		return b.Answer(ctx, req)
	})
}

// Crashed reports whether the injector has refused at least one request.
func (c *Crash) Crashed() bool { return c.crashed.Load() }
