package sched

import (
	"context"
	"errors"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func truthOracle(l *cost.Ledger, memo *tournament.Memo) *Oracle {
	return tournament.NewOracle(worker.Truth, worker.Naive, l, memo)
}

func items(ids ...int) []item.Item {
	out := make([]item.Item, len(ids))
	for i, id := range ids {
		out[i] = item.Item{ID: id, Value: float64(id)}
	}
	return out
}

func TestKindString(t *testing.T) {
	if Lockstep.String() != "lockstep" || DAG.String() != "dag" {
		t.Fatalf("Kind strings: %q, %q", Lockstep, DAG)
	}
	if Kind(99).String() != "sched(?)" {
		t.Fatalf("unknown kind: %q", Kind(99))
	}
}

func TestFrontierEmptyRun(t *testing.T) {
	f := NewFrontier(truthOracle(cost.NewLedger(), tournament.NewMemo()))
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Waves() != 0 {
		t.Fatalf("waves = %d, want 0", f.Waves())
	}
}

// TestFrontierMergesIndependentGroups pins the tentpole property: N
// independent groups enqueued together drain as ONE wave and ONE logical
// step, where the lockstep reference bills N.
func TestFrontierMergesIndependentGroups(t *testing.T) {
	l := cost.NewLedger()
	f := NewFrontier(truthOracle(l, tournament.NewMemo()))
	fired := 0
	for g := 0; g < 5; g++ {
		group := items(g*10+1, g*10+2, g*10+3)
		f.AddRoundRobin(group, tournament.RoundRobinOpts{}, func(res tournament.Result) error {
			if res.TopByWins().ID != group[2].ID {
				t.Errorf("group top %d, want %d", res.TopByWins().ID, group[2].ID)
			}
			fired++
			return nil
		})
	}
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("fired %d hooks, want 5", fired)
	}
	if f.Waves() != 1 {
		t.Fatalf("waves = %d, want 1", f.Waves())
	}
	if l.Steps() != 1 {
		t.Fatalf("steps = %d, want 1 (merged batch)", l.Steps())
	}
}

// TestFrontierChainsDependentWork pins the other half: successors enqueued
// from completion hooks land in later waves, so a dependency chain of depth
// d costs d steps.
func TestFrontierChainsDependentWork(t *testing.T) {
	l := cost.NewLedger()
	f := NewFrontier(truthOracle(l, tournament.NewMemo()))
	var winners []int
	var chain func(depth int)
	chain = func(depth int) {
		if depth == 0 {
			return
		}
		f.AddPivot(item.Item{ID: depth * 100, Value: float64(depth * 100)}, items(depth*100, 1), func(s []item.Item, _ []int) error {
			winners = append(winners, depth)
			chain(depth - 1)
			return nil
		})
	}
	chain(4)
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Waves() != 4 || l.Steps() != 4 {
		t.Fatalf("waves=%d steps=%d, want 4/4 for a depth-4 chain", f.Waves(), l.Steps())
	}
	for i, d := range winners {
		if d != 4-i {
			t.Fatalf("hooks fired out of order: %v", winners)
		}
	}
}

func TestFrontierHooksFireInEnqueueOrder(t *testing.T) {
	f := NewFrontier(truthOracle(cost.NewLedger(), tournament.NewMemo()))
	var order []int
	for g := 0; g < 4; g++ {
		g := g
		f.AddPairs([][2]item.Item{{{ID: 1, Value: 1}, {ID: 2, Value: 2}}}, func(w []item.Item) error {
			order = append(order, g)
			return nil
		})
	}
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, g := range order {
		if g != i {
			t.Fatalf("hook order %v, want ascending", order)
		}
	}
}

func TestFrontierAddPairsWinners(t *testing.T) {
	f := NewFrontier(truthOracle(cost.NewLedger(), tournament.NewMemo()))
	pairs := [][2]item.Item{
		{{ID: 1, Value: 1}, {ID: 9, Value: 9}},
		{{ID: 5, Value: 5}, {ID: 3, Value: 3}},
	}
	f.AddPairs(pairs, func(w []item.Item) error {
		if len(w) != 2 || w[0].ID != 9 || w[1].ID != 5 {
			t.Errorf("winners %v", w)
		}
		return nil
	})
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierHookErrorStopsRun(t *testing.T) {
	f := NewFrontier(truthOracle(cost.NewLedger(), tournament.NewMemo()))
	boom := errors.New("boom")
	later := false
	f.AddPairs([][2]item.Item{{{ID: 1, Value: 1}, {ID: 2, Value: 2}}}, func(w []item.Item) error {
		return boom
	})
	f.AddPairs([][2]item.Item{{{ID: 3, Value: 3}, {ID: 4, Value: 4}}}, func(w []item.Item) error {
		// Same wave, later hook: a failed hook must stop the drain.
		later = true
		return nil
	})
	if err := f.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if later {
		t.Fatal("hook after the failing one still fired")
	}
}

func TestFrontierCancellation(t *testing.T) {
	l := cost.NewLedger()
	f := NewFrontier(truthOracle(l, tournament.NewMemo()))
	ctx, cancel := context.WithCancel(context.Background())
	f.AddPairs([][2]item.Item{{{ID: 1, Value: 1}, {ID: 2, Value: 2}}}, func(w []item.Item) error {
		// Enqueue a successor, then cancel: the successor's wave must fail
		// and its hook must not run.
		f.AddPairs([][2]item.Item{{{ID: 3, Value: 3}, {ID: 4, Value: 4}}}, func(w []item.Item) error {
			t.Error("successor hook ran after cancellation")
			return nil
		})
		cancel()
		return nil
	})
	if err := f.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if l.Steps() != 1 {
		t.Fatalf("steps = %d, want 1 (second wave never dispatched)", l.Steps())
	}
}

// TestFrontierReusesBuffersAcrossWaves pins the zero-alloc discipline at the
// scheduler level: after the first wave sized the buffers, later same-shaped
// fully-memoized waves must not allocate.
func TestFrontierReusesBuffersAcrossWaves(t *testing.T) {
	l := cost.NewLedger()
	f := NewFrontier(truthOracle(l, tournament.NewMemo()))
	pairs := [][2]item.Item{{{ID: 1, Value: 1}, {ID: 2, Value: 2}}}
	var sink func(w []item.Item) error
	depth := 0
	sink = func(w []item.Item) error {
		depth++
		if depth < 8 {
			f.AddPairs(pairs, sink)
		}
		return nil
	}
	f.AddPairs(pairs, sink)
	if err := f.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Warmed up: everything below is memoized and the buffers are sized.
	allocs := testing.AllocsPerRun(50, func() {
		f.AddPairs(pairs, func(w []item.Item) error { return nil })
		if err := f.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 { // the done-closure itself may escape; the dispatch must not
		t.Fatalf("memoized wave allocates %.1f times, want ≤ 1", allocs)
	}
}
