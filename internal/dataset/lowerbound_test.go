package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"crowdmax/internal/item"
)

func TestLemma7InstanceValidation(t *testing.T) {
	if _, err := Lemma7Instance(10, 0, 1); err == nil {
		t.Fatal("un=0 accepted")
	}
	if _, err := Lemma7Instance(10, 10, 1); err == nil {
		t.Fatal("un=n accepted")
	}
	if _, err := Lemma7Instance(10, 3, 0); err == nil {
		t.Fatal("delta=0 accepted")
	}
}

func TestLemma7InstanceStructure(t *testing.T) {
	const (
		n     = 40
		un    = 6
		delta = 1.0
	)
	s, err := Lemma7Instance(n, un, delta)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("size = %d", s.Len())
	}
	e := s.Item(0)
	if !strings.Contains(e.Label, "designated maximum") || s.Max().ID != e.ID {
		t.Fatal("designated element is not the maximum")
	}
	// Exactly un elements (e included) are within δ of e.
	if got := s.UCount(delta); got != un {
		t.Fatalf("UCount(δ) = %d, want %d", got, un)
	}
	// e beats every E1 element with certainty: distance > δ.
	for _, it := range s.Items()[un:] {
		if item.Distance(e, it) <= delta {
			t.Fatalf("E1 element %q within δ of e", it.Label)
		}
	}
	// Every pair NOT involving e is within δ (their outcomes carry no
	// information about the maximum) — the heart of the proof.
	items := s.Items()
	for i := 1; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if item.Distance(items[i], items[j]) > delta {
				t.Fatalf("non-e pair (%q, %q) distinguishable: d=%g",
					items[i].Label, items[j].Label, item.Distance(items[i], items[j]))
			}
		}
	}
	// e vs E2 is within δ too.
	for _, it := range items[1:un] {
		if item.Distance(e, it) > delta {
			t.Fatalf("E2 element %q distinguishable from e", it.Label)
		}
	}
}

func TestLemma7InstanceProperty(t *testing.T) {
	f := func(nRaw, unRaw uint8) bool {
		n := int(nRaw)%200 + 3
		un := int(unRaw)%(n-1) + 1
		s, err := Lemma7Instance(n, un, 2.5)
		if err != nil {
			return false
		}
		return s.Len() == n && s.UCount(2.5) == un && s.Max().ID == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma7EdgeSizes(t *testing.T) {
	// un = 1: E2 empty; un = n−1: E1 has a single element.
	s, err := Lemma7Instance(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.UCount(1) != 1 {
		t.Fatalf("un=1 instance has UCount %d", s.UCount(1))
	}
	s, err = Lemma7Instance(5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.UCount(1) != 4 {
		t.Fatalf("un=4 instance has UCount %d", s.UCount(1))
	}
}
