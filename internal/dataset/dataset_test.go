package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

func TestUniformRange(t *testing.T) {
	r := rng.New(1)
	s := Uniform(500, 10, 20, r)
	if s.Len() != 500 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, it := range s.Items() {
		if it.Value < 10 || it.Value >= 20 {
			t.Fatalf("value %g outside [10, 20)", it.Value)
		}
	}
}

func TestUniformCalibratedHitsTargets(t *testing.T) {
	root := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		r := root.ChildN("t", trial)
		n := 100 + r.Intn(1000)
		un := 2 + r.Intn(20)
		ue := 1 + r.Intn(un)
		cal, err := UniformCalibrated(n, un, ue, r)
		if err != nil {
			t.Fatal(err)
		}
		if got := cal.Set.UCount(cal.DeltaN); got != un {
			t.Fatalf("trial %d: UCount(δn) = %d, want %d", trial, got, un)
		}
		if got := cal.Set.UCount(cal.DeltaE); got != ue {
			t.Fatalf("trial %d: UCount(δe) = %d, want %d", trial, got, ue)
		}
		if cal.DeltaE > cal.DeltaN {
			t.Fatalf("trial %d: δe %g > δn %g", trial, cal.DeltaE, cal.DeltaN)
		}
	}
}

func TestUniformCalibratedValidation(t *testing.T) {
	r := rng.New(3)
	bad := []struct{ n, un, ue int }{
		{100, 0, 1}, {100, 5, 0}, {100, 5, 6}, {100, 101, 1}, {10, 5, -1},
	}
	for _, tc := range bad {
		if _, err := UniformCalibrated(tc.n, tc.un, tc.ue, r); err == nil {
			t.Errorf("UniformCalibrated(%d, %d, %d) accepted", tc.n, tc.un, tc.ue)
		}
	}
}

func TestDots(t *testing.T) {
	s := Dots(50)
	if s.Len() != 50 {
		t.Fatalf("len = %d", s.Len())
	}
	// Minimum dots = maximum value; the best image has 100 dots.
	if DotCount(s.Max()) != 100 {
		t.Fatalf("best image has %d dots, want 100", DotCount(s.Max()))
	}
	// Counts follow the 20-step grid of the paper.
	for i, it := range s.Items() {
		if DotCount(it) != 100+20*i {
			t.Fatalf("item %d has %d dots", i, DotCount(it))
		}
	}
	if !strings.Contains(s.Item(0).Label, "dots-100") {
		t.Fatalf("label = %q", s.Item(0).Label)
	}
}

func TestDotsGold(t *testing.T) {
	gold := DotsGold()
	if len(gold) != 30 {
		t.Fatalf("gold size = %d", len(gold))
	}
	if DotCount(gold[0]) != 200 || DotCount(gold[29]) != 780 {
		t.Fatalf("gold range = %d..%d", DotCount(gold[0]), DotCount(gold[29]))
	}
	// Ranks 2(b): gold counts step by 20.
	for i := 1; i < len(gold); i++ {
		if DotCount(gold[i])-DotCount(gold[i-1]) != 20 {
			t.Fatal("gold grid step wrong")
		}
	}
}

func TestSampleSet(t *testing.T) {
	r := rng.New(4)
	s := Uniform(100, 0, 1, r)
	sub, err := SampleSet(s, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 30 {
		t.Fatalf("sample size = %d", sub.Len())
	}
	// Every sampled value must exist in the source.
	src := make(map[float64]bool, s.Len())
	for _, it := range s.Items() {
		src[it.Value] = true
	}
	for _, it := range sub.Items() {
		if !src[it.Value] {
			t.Fatalf("sampled value %g not in source", it.Value)
		}
	}
	// No duplicates (sampling without replacement).
	seen := make(map[float64]bool)
	for _, it := range sub.Items() {
		if seen[it.Value] {
			t.Fatalf("duplicate sample %g", it.Value)
		}
		seen[it.Value] = true
	}
}

func TestSampleSetValidation(t *testing.T) {
	r := rng.New(5)
	s := Uniform(10, 0, 1, r)
	for _, k := range []int{0, -1, 11} {
		if _, err := SampleSet(s, k, r); err == nil {
			t.Errorf("SampleSet(%d) accepted", k)
		}
	}
	if sub, err := SampleSet(s, 10, r); err != nil || sub.Len() != 10 {
		t.Fatal("full-size sample should work")
	}
}

func TestClusteredStructure(t *testing.T) {
	s, err := Clustered(12, 3, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 12 {
		t.Fatalf("len = %d", s.Len())
	}
	// Within a cluster: distances ≤ (clusterSize−1)·spread = 0.02.
	for c := 0; c < 4; c++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				d := item.Distance(s.Item(3*c+i), s.Item(3*c+j))
				if d > 0.021 {
					t.Fatalf("within-cluster distance %g", d)
				}
			}
		}
	}
	// Across clusters: at least gap − within-spread.
	if d := item.Distance(s.Item(0), s.Item(3)); d < 9.9 {
		t.Fatalf("cross-cluster distance %g", d)
	}
}

func TestClusteredValidation(t *testing.T) {
	if _, err := Clustered(0, 3, 1, 10); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Clustered(10, 0, 1, 10); err == nil {
		t.Fatal("clusterSize=0 accepted")
	}
}

func TestAdversarialIndistinguishable(t *testing.T) {
	delta := 0.5
	s, err := AdversarialIndistinguishable(40, delta)
	if err != nil {
		t.Fatal(err)
	}
	// Every pair within delta.
	if got := s.UCount(delta); got != 40 {
		t.Fatalf("UCount(δ) = %d, want 40 (all indistinguishable)", got)
	}
	max, min := s.ByRank(1), s.ByRank(40)
	if item.Distance(max, min) >= delta {
		t.Fatalf("spread %g ≥ δ", item.Distance(max, min))
	}
	// Values must still be strictly increasing (a valid partial order).
	for i := 1; i < 40; i++ {
		if s.Item(i).Value <= s.Item(i-1).Value {
			t.Fatal("values not strictly increasing")
		}
	}
}

func TestAdversarialIndistinguishableValidation(t *testing.T) {
	if _, err := AdversarialIndistinguishable(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := AdversarialIndistinguishable(5, 0); err == nil {
		t.Fatal("δ=0 accepted")
	}
	if _, err := AdversarialIndistinguishable(5, -1); err == nil {
		t.Fatal("δ<0 accepted")
	}
}

func TestUniformCalibratedProperty(t *testing.T) {
	root := rng.New(6)
	trial := 0
	f := func(nRaw uint16, unRaw, ueRaw uint8) bool {
		trial++
		r := root.ChildN("q", trial)
		n := int(nRaw)%400 + 50
		un := int(unRaw)%15 + 1
		ue := int(ueRaw)%un + 1
		cal, err := UniformCalibrated(n, un, ue, r)
		if err != nil {
			return true
		}
		return cal.Set.UCount(cal.DeltaN) == un &&
			cal.Set.UCount(cal.DeltaE) == ue &&
			cal.DeltaE <= cal.DeltaN &&
			!math.IsNaN(cal.DeltaN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
