package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"crowdmax/internal/item"
)

// ReadCSV loads a Set from CSV rows of the form "label,value" (or just
// "value"). A header row is skipped automatically when its value column
// does not parse as a number. This is how real datasets — the analogue of
// the paper's cars.com scrape — enter the tool chain.
func ReadCSV(r io.Reader) (*item.Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow 1- and 2-column rows
	cr.TrimLeadingSpace = true

	var items []item.Item
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		label, valueField := "", rec[0]
		if len(rec) >= 2 {
			label, valueField = rec[0], rec[1]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(valueField), 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("dataset: csv line %d: value %q is not a number", line, valueField)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: csv line %d: value %q is not finite", line, valueField)
		}
		items = append(items, item.Item{Value: v, Label: label})
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("dataset: csv contained no data rows")
	}
	return item.NewSetItems(items), nil
}

// WriteCSV writes a Set as "label,value" rows with a header, the inverse of
// ReadCSV.
func WriteCSV(w io.Writer, s *item.Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "value"}); err != nil {
		return err
	}
	for _, it := range s.Items() {
		label := it.Label
		if label == "" {
			label = fmt.Sprintf("item-%d", it.ID)
		}
		if err := cw.Write([]string{label, strconv.FormatFloat(it.Value, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
