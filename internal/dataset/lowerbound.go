package dataset

import (
	"fmt"

	"crowdmax/internal/item"
)

// Lemma7Instance builds the lower-bound instance of Lemma 7 / Figure 8: a
// designated element e, a set E1 of n − un elements spread evenly in an
// interval of length 0.1·δ centred at distance 1.5·δ below e, and a set E2
// of un − 1 elements arranged similarly at distance 0.8·δ below e.
//
// Its properties (verified by tests) are exactly what the proof needs:
// e is the maximum and wins every comparison against E1 (distance > δ),
// while every other pair of elements — within E1, within E2, across
// E1 × E2, and e against E2 — is within δ, so their comparison outcomes
// are arbitrary and carry no information. Any algorithm that lets e take
// part in fewer than un comparisons therefore cannot rule e out as the
// maximum, which yields Corollary 1's n·un/4 lower bound.
//
// The returned set places e first (ID 0), then E2, then E1.
func Lemma7Instance(n, un int, delta float64) (*item.Set, error) {
	if un < 1 || un > n-1 {
		return nil, fmt.Errorf("dataset: lemma 7 instance needs 1 ≤ un ≤ n−1, got un=%d n=%d", un, n)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("dataset: delta must be positive, got %g", delta)
	}
	items := make([]item.Item, 0, n)
	const top = 0.0 // v(e); everything else sits below
	items = append(items, item.Item{Value: top, Label: "e (designated maximum)"})

	// E2: un − 1 elements evenly spread in an interval of length 0.1·δ
	// centred at distance 0.8·δ.
	items = append(items, spread(top-0.8*delta, 0.1*delta, un-1, "E2")...)
	// E1: n − un elements likewise at distance 1.5·δ.
	items = append(items, spread(top-1.5*delta, 0.1*delta, n-un, "E1")...)
	return item.NewSetItems(items), nil
}

// spread returns k distinct items evenly placed in the interval of the
// given length centred at centre.
func spread(centre, length float64, k int, label string) []item.Item {
	out := make([]item.Item, k)
	for i := range out {
		offset := 0.0
		if k > 1 {
			offset = length * (float64(i)/float64(k-1) - 0.5)
		}
		out[i] = item.Item{Value: centre + offset, Label: fmt.Sprintf("%s-%d", label, i)}
	}
	return out
}
