package dataset

import (
	"strings"
	"testing"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

func TestCarsDefaults(t *testing.T) {
	r := rng.New(1)
	s, cars, err := Cars(CarsConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 110 || len(cars) != 110 {
		t.Fatalf("catalogue size = %d/%d", s.Len(), len(cars))
	}
	for _, c := range cars {
		if c.Price < 14000 || c.Price > 130000 {
			t.Fatalf("price $%.0f outside paper envelope", c.Price)
		}
	}
}

func TestCarsMinimumGap(t *testing.T) {
	r := rng.New(2)
	s, _, err := Cars(CarsConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	items := s.Items()
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if d := item.Distance(items[i], items[j]); d < 500 {
				t.Fatalf("pair gap $%.0f < $500", d)
			}
		}
	}
}

func TestCarsUniqueMakeModel(t *testing.T) {
	r := rng.New(3)
	_, cars, err := Cars(CarsConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, c := range cars {
		k := c.Make + "/" + c.Model
		if seen[k] {
			t.Fatalf("duplicate make/model %s", k)
		}
		seen[k] = true
	}
}

func TestCarsLabels(t *testing.T) {
	r := rng.New(4)
	s, cars, err := Cars(CarsConfig{N: 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range s.Items() {
		if it.Label != cars[i].String() {
			t.Fatalf("label mismatch: %q vs %q", it.Label, cars[i].String())
		}
		if !strings.Contains(it.Label, "$") {
			t.Fatalf("label %q missing price", it.Label)
		}
		if it.Value != cars[i].Price {
			t.Fatal("item value != car price")
		}
	}
}

func TestCarsValidation(t *testing.T) {
	r := rng.New(5)
	if _, _, err := Cars(CarsConfig{N: 1}, r); err == nil {
		t.Fatal("N=1 accepted")
	}
	// 300 cars in a $20K range cannot keep $500 gaps.
	if _, _, err := Cars(CarsConfig{N: 300, MinPrice: 10000, MaxPrice: 30000}, r); err == nil {
		t.Fatal("infeasible gap constraint accepted")
	}
	if _, _, err := Cars(CarsConfig{N: 1000}, r); err == nil {
		t.Fatal("more cars than make/model pairs accepted")
	}
}

func TestCarsDeterministicPerSeed(t *testing.T) {
	s1, _, err := Cars(CarsConfig{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Cars(CarsConfig{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s1.Len(); i++ {
		if s1.Item(i) != s2.Item(i) {
			t.Fatal("same seed produced different catalogues")
		}
	}
}

func TestSearchResultsShape(t *testing.T) {
	r := rng.New(6)
	s, err := SearchResults(QueryAsymmetricTSP, 50, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d", s.Len())
	}
	// One clear best, separated by at least the configured gap.
	best, second := s.ByRank(1), s.ByRank(2)
	if item.Distance(best, second) < 0.0499 {
		t.Fatalf("best gap = %g < 0.05", item.Distance(best, second))
	}
	if !strings.Contains(best.Label, "current best result") {
		t.Fatalf("best label = %q", best.Label)
	}
	if !strings.Contains(best.Label, string(QueryAsymmetricTSP)) {
		t.Fatalf("label missing query: %q", best.Label)
	}
}

func TestSearchResultsDefaultsAndValidation(t *testing.T) {
	r := rng.New(7)
	if _, err := SearchResults(QuerySteinerTree, 1, 0, r); err == nil {
		t.Fatal("n=1 accepted")
	}
	s, err := SearchResults(QuerySteinerTree, 10, 0, r) // default gap
	if err != nil {
		t.Fatal(err)
	}
	if item.Distance(s.ByRank(1), s.ByRank(2)) < 0.0499 {
		t.Fatal("default gap not applied")
	}
}

func TestSearchResultsRelevanceDecaysInRank(t *testing.T) {
	r := rng.New(8)
	s, err := SearchResults(QueryAsymmetricTSP, 50, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	// The noise is ±0.05 around a decaying curve: the first-listed result
	// (smallest original rank) should be worth more than the last.
	first, last := s.Item(0), s.Item(s.Len()-1)
	if first.Value <= last.Value {
		t.Fatalf("relevance did not decay: first %g, last %g", first.Value, last.Value)
	}
}
