package dataset

import (
	"fmt"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// Car describes one car in the synthetic catalogue. The paper's CARS
// dataset was scraped from cars.com and cleaned to 110 cars priced between
// $14K and $130K with every pair at least $500 apart; this generator
// reproduces that statistical envelope with synthetic make/model metadata.
type Car struct {
	Make      string
	Model     string
	BodyStyle string
	Doors     int
	Price     float64
}

// String renders "2013 Make Model (body) — $price".
func (c Car) String() string {
	return fmt.Sprintf("2013 %s %s (%s) — $%.0f", c.Make, c.Model, c.BodyStyle, c.Price)
}

var carMakes = []string{
	"BMW", "Audi", "Mercedes-Benz", "Porsche", "Lexus", "Jaguar",
	"Chevrolet", "Land Rover", "Cadillac", "Infiniti", "Ford", "Toyota",
	"Honda", "Nissan", "Volkswagen", "Volvo", "Acura", "Subaru",
	"Hyundai", "Kia", "Mazda", "Lincoln",
}

var carModels = []string{
	"M6", "S8", "ML63", "SL550", "Cayenne", "750Li", "A8L", "LS460",
	"XJL", "Corvette", "Range Sport", "Escalade", "550i", "QX56", "A7",
	"GTS", "RS7", "Panamera", "GS350", "Q70", "CTS-V", "XTS", "MKZ",
	"Avalon", "Accord", "Maxima", "Passat", "S60", "TLX", "Legacy",
	"Genesis", "Cadenza", "CX-9", "Continental",
}

var carBodies = []string{"sedan", "coupe", "SUV", "convertible", "wagon"}

// CarsConfig tunes the synthetic catalogue; zero values reproduce the
// paper's envelope.
type CarsConfig struct {
	// N is the catalogue size (paper: 110).
	N int
	// MinPrice and MaxPrice bound the price range (paper: 14000–130000).
	MinPrice, MaxPrice float64
	// MinGap is the minimum pairwise price difference (paper: 500).
	MinGap float64
}

func (c CarsConfig) withDefaults() CarsConfig {
	if c.N == 0 {
		c.N = 110
	}
	if c.MinPrice == 0 {
		c.MinPrice = 14000
	}
	if c.MaxPrice == 0 {
		c.MaxPrice = 130000
	}
	if c.MinGap == 0 {
		c.MinGap = 500
	}
	return c
}

// Cars generates the synthetic car catalogue. Prices follow the shape of
// the paper's cleaned cars.com data: right-skewed — most cars cheap, few
// expensive, so price gaps widen toward the luxury end — with every
// pairwise gap at least MinGap ("For every pair of cars the difference in
// price is at least $500"). Make/model pairs do not repeat, matching the
// paper's de-duplication.
//
// Concretely, sorted prices are MinPrice + i·MinGap + extra·(i/(n−1))³,
// where extra is the span left after the mandatory gaps, plus a jitter
// bounded by the local slack so ordering and gaps are preserved.
func Cars(cfg CarsConfig, r *rng.Source) (*item.Set, []Car, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n < 2 {
		return nil, nil, fmt.Errorf("dataset: need at least 2 cars, got %d", n)
	}
	if n > len(carMakes)*len(carModels) {
		return nil, nil, fmt.Errorf("dataset: at most %d distinct make/model pairs available, need %d",
			len(carMakes)*len(carModels), n)
	}
	span := cfg.MaxPrice - cfg.MinPrice
	extra := span - cfg.MinGap*float64(n-1)
	if extra < 0 {
		return nil, nil, fmt.Errorf("dataset: %d cars cannot keep a $%.0f gap within [$%.0f, $%.0f]",
			n, cfg.MinGap, cfg.MinPrice, cfg.MaxPrice)
	}
	weight := func(i int) float64 {
		f := float64(i) / float64(n-1)
		return f * f * f
	}
	base := make([]float64, n)
	for i := range base {
		base[i] = cfg.MinPrice + float64(i)*cfg.MinGap + extra*weight(i)
	}

	cars := make([]Car, n)
	items := make([]item.Item, n)
	used := make(map[string]bool)
	for i := 0; i < n; i++ {
		// Jitter within 45% of the local slack above the mandatory gap,
		// so adjacent cars keep at least MinGap between them.
		slack := extra
		if i > 0 {
			s := base[i] - base[i-1] - cfg.MinGap
			if s < slack {
				slack = s
			}
		}
		if i < n-1 {
			s := base[i+1] - base[i] - cfg.MinGap
			if s < slack {
				slack = s
			}
		}
		price := base[i]
		if slack > 0 {
			lo, hi := -0.45*slack, 0.45*slack
			if i == 0 {
				lo = 0 // keep the cheapest car at or above MinPrice
			}
			if i == n-1 {
				hi = 0 // keep the priciest car at or below MaxPrice
			}
			price += r.UniformIn(lo, hi)
		}
		var mk, md string
		for {
			mk = carMakes[r.Intn(len(carMakes))]
			md = carModels[r.Intn(len(carModels))]
			if !used[mk+"/"+md] {
				used[mk+"/"+md] = true
				break
			}
		}
		cars[i] = Car{
			Make:      mk,
			Model:     md,
			BodyStyle: carBodies[r.Intn(len(carBodies))],
			Doors:     2 + 2*r.Intn(2),
			Price:     price,
		}
		items[i] = item.Item{Value: price, Label: cars[i].String()}
	}
	return item.NewSetItems(items), cars, nil
}

// SampleSet draws a uniform random subsample of size k from s, re-indexed as
// its own Set (used to downsample the 110-car catalogue to the 50-element
// experiment instances of Section 5.3).
func SampleSet(s *item.Set, k int, r *rng.Source) (*item.Set, error) {
	if k < 1 || k > s.Len() {
		return nil, fmt.Errorf("dataset: cannot sample %d of %d items", k, s.Len())
	}
	perm := r.Perm(s.Len())[:k]
	items := make([]item.Item, k)
	for i, idx := range perm {
		items[i] = s.Item(idx)
	}
	return item.NewSetItems(items), nil
}
