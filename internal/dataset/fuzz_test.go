package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary byte soup never panics the CSV loader
// and that every successfully parsed set satisfies the Set invariants.
func FuzzReadCSV(f *testing.F) {
	f.Add("label,value\na,1\nb,2\n")
	f.Add("5\n9\n1\n")
	f.Add("x")
	f.Add(",,,\n")
	f.Add("a,1\na,1\na,1\n")
	f.Add("\"quoted,label\",3.5\n")
	f.Add("h,NaN\n")
	f.Add("a,1e309\nb,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("successful parse produced empty set")
		}
		// Max is consistent with ranks.
		m := s.Max()
		if s.Rank(m.ID) != 1 {
			t.Fatalf("Max has rank %d", s.Rank(m.ID))
		}
		for _, it := range s.Items() {
			if it.Value > m.Value {
				t.Fatalf("item %v above reported max %v", it, m)
			}
		}
	})
}
