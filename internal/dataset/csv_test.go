package dataset

import (
	"strings"
	"testing"

	"crowdmax/internal/rng"
)

func TestReadCSVWithHeaderAndLabels(t *testing.T) {
	in := "label,value\ncar A,10000\ncar B,25000\ncar C,18000\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max().Label != "car B" || s.Max().Value != 25000 {
		t.Fatalf("max = %+v", s.Max())
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "a,1\nb,3\nc,2\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Max().Label != "b" {
		t.Fatalf("set = %d items, max %q", s.Len(), s.Max().Label)
	}
}

func TestReadCSVValueOnlyColumn(t *testing.T) {
	in := "5\n9\n1\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Max().Value != 9 {
		t.Fatalf("set = %d items, max %g", s.Len(), s.Max().Value)
	}
	if s.Max().Label != "" {
		t.Fatalf("value-only rows should have empty labels, got %q", s.Max().Label)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("label,value\n")); err == nil {
		t.Fatal("header-only input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,1\nb,not-a-number\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := rng.New(1)
	orig, _, err := Cars(CarsConfig{N: 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip changed size: %d vs %d", back.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if back.Item(i).Value != orig.Item(i).Value {
			t.Fatalf("item %d value changed: %g vs %g", i, back.Item(i).Value, orig.Item(i).Value)
		}
		if back.Item(i).Label != orig.Item(i).Label {
			t.Fatalf("item %d label changed", i)
		}
	}
}

func TestWriteCSVFillsEmptyLabels(t *testing.T) {
	s := Uniform(3, 0, 1, rng.New(2))
	var sb strings.Builder
	if err := WriteCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "item-0") {
		t.Fatalf("missing generated label:\n%s", sb.String())
	}
}

func TestReadCSVRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"a,NaN\n", "a,+Inf\n", "a,-Inf\n"} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("non-finite value %q accepted", strings.TrimSpace(bad))
		}
	}
}
