package dataset

import (
	"fmt"
	"math"
	"sort"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// SearchQuery names one of the Section 5.3 evaluation queries. The paper
// used two queries from approximation algorithms, chosen because "there is a
// clear best result for the majority of the searches".
type SearchQuery string

// The two queries of Section 5.3.
const (
	QueryAsymmetricTSP SearchQuery = "asymmetric tsp best approximation"
	QuerySteinerTree   SearchQuery = "steiner tree best approximation"
)

// SearchResults generates the synthetic stand-in for a query's result list:
// n results sampled uniformly among the top-100 ranks of a search engine
// ("50 results from Google, distributed uniformly among the top-100
// results"), with ground-truth relevance decaying in the original rank plus
// per-result noise — so results are "relevant to the queries in different
// extents" — and a single clearly best result (the paper's recently
// published best approximation ratio) separated from the runner-up by
// bestGap. Labels carry the query and original rank.
func SearchResults(query SearchQuery, n int, bestGap float64, r *rng.Source) (*item.Set, error) {
	if n < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 search results, got %d", n)
	}
	if bestGap <= 0 {
		bestGap = 0.05
	}
	ranks := r.Perm(100)[:n]
	sort.Ints(ranks)
	items := make([]item.Item, n)
	for i, rank := range ranks {
		// Relevance decays with rank; noise makes neighbours overlap.
		rel := 1.0/(1.0+float64(rank)/15.0) + r.UniformIn(-0.05, 0.05)
		items[i] = item.Item{
			Value: rel,
			Label: fmt.Sprintf("%s #%d", query, rank+1),
		}
	}
	// Promote the most relevant result to a clear best.
	best, second := 0, -1
	for i := 1; i < n; i++ {
		if items[i].Value > items[best].Value {
			second = best
			best = i
		} else if second < 0 || items[i].Value > items[second].Value {
			second = i
		}
	}
	if items[best].Value-items[second].Value < bestGap {
		items[best].Value = items[second].Value + bestGap
	}
	items[best].Label += " (current best result)"
	return item.NewSetItems(items), nil
}

// Clustered generates the adversarial instance family used for worst-case
// measurements: n elements arranged in clusters of clusterSize; within a
// cluster, consecutive values are `spread` apart (choose clusterSize·spread
// ≤ δ to make whole clusters indistinguishable), and cluster bases are
// `gap` apart (choose gap > δ + clusterSize·spread to make distinct
// clusters distinguishable). Together with worker.AdversarialTie this
// maximizes the number of comparisons of 2-MaxFind, which is how the paper
// builds its worst-case curves ("The adversarial data were created so as to
// maximize the number of comparisons of the 2-MaxFind algorithm").
func Clustered(n, clusterSize int, spread, gap float64) (*item.Set, error) {
	if n < 1 || clusterSize < 1 {
		return nil, fmt.Errorf("dataset: invalid clustered instance n=%d clusterSize=%d", n, clusterSize)
	}
	values := make([]float64, n)
	for i := range values {
		cluster := i / clusterSize
		within := i % clusterSize
		values[i] = float64(cluster)*gap + float64(within)*spread
	}
	return item.NewSet(values), nil
}

// AdversarialIndistinguishable generates the single-cluster worst case: all
// n values within a total spread strictly below delta, so every comparison
// falls under the threshold and the tie-break policy fully controls the
// outcome.
func AdversarialIndistinguishable(n int, delta float64) (*item.Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: invalid instance size %d", n)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("dataset: delta must be positive, got %g", delta)
	}
	values := make([]float64, n)
	step := delta / math.Max(float64(2*n), 2)
	for i := range values {
		values[i] = float64(i) * step
	}
	return item.NewSet(values), nil
}
