// Package parallel provides the bounded worker pool behind the repository's
// deterministic parallel execution engine.
//
// The experiment harness runs large sweeps of independently seeded trials —
// the embarrassingly parallel Monte-Carlo pattern of the paper's evaluation
// (and of its batch execution model, Section 3, following Venetis et al.).
// Because every trial derives its own random stream from the root seed via
// rng.Source.Child/ChildN, the *values* computed per trial do not depend on
// execution order; determinism is preserved by collecting results into
// index-addressed slots and reducing them in a fixed order afterwards.
//
// The contract, relied on by internal/experiment:
//
//   - For(workers, n, fn) calls fn(i) exactly once for every i in [0, n)
//     (error-free runs), from at most workers goroutines.
//   - fn(i) must write its result to a slot owned exclusively by index i
//     (e.g. out[i]); For establishes the happens-before edge that makes all
//     writes visible to the caller when it returns.
//   - The returned error is the error of the lowest failing index — the same
//     error a sequential loop would return — regardless of scheduling or
//     worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crowdmax/internal/obs"
)

// DefaultWorkers returns the default pool width: runtime.GOMAXPROCS(0).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize maps the conventional "Workers knob" encoding to a concrete
// width: values ≤ 0 select DefaultWorkers.
func Normalize(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// For runs fn(i) for every i in [0, n) on a bounded pool of at most workers
// goroutines (workers ≤ 0 selects DefaultWorkers) and waits for completion.
//
// Error propagation is deterministic: when any call fails, For returns the
// error of the lowest failing index, exactly as a sequential loop would.
// With workers == 1 the loop runs inline on the calling goroutine and stops
// at the first error; with more workers every index still runs (trial
// workloads are cheap and independent), so the lowest-index error is always
// observed. A panic in fn is re-raised on the calling goroutine.
func For(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Pool metrics (fan-out sizes, queue depth, per-worker busy time) are
	// recorded only when observability is enabled; the disabled cost is one
	// atomic pointer load per For call, never per task.
	m := obs.Active()
	if m != nil {
		m.PoolSubmit(n)
	}
	errs := make([]error, n)
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  atomic.Bool
		panicVal  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				var start time.Time
				if m != nil {
					start = time.Now()
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicVal = r
								panicked.Store(true)
							})
						}
					}()
					errs[i] = fn(i)
				}()
				if m != nil {
					m.PoolTaskDone(slot, int64(time.Since(start)))
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
