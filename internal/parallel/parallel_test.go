package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if Normalize(0) != DefaultWorkers() || Normalize(-3) != DefaultWorkers() {
		t.Fatal("Normalize of non-positive widths must select the default")
	}
	if Normalize(5) != 5 {
		t.Fatal("Normalize must pass positive widths through")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		const n = 137
		counts := make([]atomic.Int64, n)
		if err := For(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForOrderedResults(t *testing.T) {
	const n = 500
	out := make([]int, n)
	if err := For(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	// Several indices fail; the reported error must be the lowest one,
	// matching what a sequential loop would return, for every pool width.
	for _, workers := range []int{1, 3, 8} {
		err := For(workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	if err := For(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	if err := For(4, -5, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	_ = For(4, 50, func(i int) error {
		if i == 20 {
			panic("boom")
		}
		return nil
	})
}
