package worker

import (
	"math"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// Logistic is a psychometric comparator in the Thurstone / Bradley–Terry
// family cited in Section 3.2 ("the concept of Just Noticeable Difference
// by Weber and Fechner, then generalized by Thurstone"): the probability of
// picking the truly larger element grows smoothly with the value difference,
//
//	P(correct | d) = 1 / (1 + exp(−d/Scale)),
//
// so tiny differences are coin flips and large ones near-certain. Unlike
// the threshold model there is no hard indistinguishability radius — errors
// at any distance are independent across repetitions, so majority voting
// always helps. It generalizes the fixed-probability model (which is the
// Scale → ∞ limit rescaled) and is the kind of model Venetis et al. fit
// when tuning their tournaments.
type Logistic struct {
	// Scale is the discrimination scale s > 0: at d = s the worker is
	// right with probability 1/(1+e^{−1}) ≈ 0.73.
	Scale float64
	// R drives the coin flips.
	R *rng.Source
}

// NewLogistic returns a Bradley–Terry comparator with the given scale.
func NewLogistic(scale float64, r *rng.Source) *Logistic {
	return &Logistic{Scale: scale, R: r}
}

// CorrectProb returns P(correct) for a comparison at distance d ≥ 0.
func (w *Logistic) CorrectProb(d float64) float64 {
	s := w.Scale
	if s <= 0 {
		s = 1
	}
	return 1 / (1 + math.Exp(-d/s))
}

// Compare implements the logistic choice model.
func (w *Logistic) Compare(a, b item.Item) item.Item {
	hi, lo := a, b
	if b.Value > a.Value {
		hi, lo = b, a
	}
	if w.R.Bernoulli(w.CorrectProb(item.Distance(a, b))) {
		return hi
	}
	return lo
}
