package worker

import (
	"math"
	"sync"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// A Regime assigns each comparison pair a latent per-pair probability q that
// an individual worker answers it correctly. The latent q is a property of
// the *pair* (the question's intrinsic difficulty), not of the worker; all
// workers sampled from the same World share it. This is the empirical model
// behind Figure 2:
//
//   - If q > 1/2 for every pair, majority voting over k workers drives
//     accuracy to 1 as k grows (the DOTS behaviour — wisdom of crowds).
//   - If q has mass on both sides of 1/2 for hard pairs, majority accuracy
//     plateaus at P(q > 1/2) no matter how many workers vote (the CARS
//     behaviour — the cognitive barrier that motivates experts).
type Regime interface {
	// CorrectProb draws the latent correctness probability for a pair at
	// relative difference rel ∈ [0, ∞). It is called once per pair; r is
	// the world's private stream.
	CorrectProb(rel float64, r *rng.Source) float64
}

// WisdomRegime models tasks where discernment is innate and noisy but
// unbiased (DOTS): every pair's latent correctness is a deterministic,
// strictly >1/2 function of the relative difference,
//
//	q(rel) = 1 − 0.5·exp(−Sharpness·rel).
//
// Majority accuracy therefore approaches 1 for every difficulty band,
// faster for larger differences — the shape of Figure 2(a).
type WisdomRegime struct {
	// Sharpness controls how quickly accuracy improves with relative
	// difference. The default used by the experiments is 5, calibrated so
	// the hardest band ([0, 10%] relative difference) starts near 0.6
	// single-worker accuracy, as measured on CrowdFlower in the paper.
	Sharpness float64
}

// CorrectProb returns the deterministic q(rel).
func (w WisdomRegime) CorrectProb(rel float64, _ *rng.Source) float64 {
	s := w.Sharpness
	if s <= 0 {
		s = 5
	}
	return 1 - 0.5*math.Exp(-s*rel)
}

// PlateauRegime models tasks requiring acquired knowledge (CARS): above the
// threshold relative difference, pairs are easy (q = 1 − Epsilon); below it,
// each pair draws a latent bias on either side of 1/2 — with probability
// PlateauAt(rel) the crowd leans correct, otherwise it leans wrong, and no
// amount of voting recovers the wrong-leaning pairs. Majority accuracy in a
// difficulty band therefore plateaus at the band's PlateauAt value — the
// shape of Figure 2(b), where accuracy "does not surpass 0.6 or 0.7,
// depending on the difference".
type PlateauRegime struct {
	// Threshold is the relative difference below which expertise is
	// required; the paper measures ≈20% for car prices.
	Threshold float64
	// Epsilon is the residual error above the threshold.
	Epsilon float64
	// PlateauAt returns, for a hard pair at relative difference
	// rel ≤ Threshold, the probability that the crowd's latent bias is on
	// the correct side. If nil, a linear ramp from 0.58 at rel = 0 to
	// 0.78 at rel = Threshold is used, matching the measured 0.6/0.7
	// plateaus of the two hard CARS bands (whose midpoints are rel = 0.05
	// and rel = 0.15).
	PlateauAt func(rel float64) float64
	// BiasLo and BiasHi bound the magnitude of the latent bias |q − 1/2|
	// for hard pairs; defaults are 0.02 and 0.15.
	BiasLo, BiasHi float64
}

// CorrectProb draws the latent q for a pair.
func (p PlateauRegime) CorrectProb(rel float64, r *rng.Source) float64 {
	thr := p.Threshold
	if thr <= 0 {
		thr = 0.2
	}
	if rel > thr {
		return 1 - p.Epsilon
	}
	plateau := 0.58 + 0.20*(rel/thr)
	if p.PlateauAt != nil {
		plateau = p.PlateauAt(rel)
	}
	lo, hi := p.BiasLo, p.BiasHi
	if hi <= 0 {
		lo, hi = 0.02, 0.15
	}
	bias := r.UniformIn(lo, hi)
	if r.Bernoulli(plateau) {
		return 0.5 + bias
	}
	return 0.5 - bias
}

// World holds the latent per-pair difficulties of a task under a Regime and
// hands out workers that share them. Safe for concurrent use.
type World struct {
	regime Regime
	r      *rng.Source

	mu sync.Mutex
	q  map[[2]int]float64
}

// NewWorld creates a World for the given regime, drawing latent difficulties
// from r.
func NewWorld(regime Regime, r *rng.Source) *World {
	return &World{regime: regime, r: r, q: make(map[[2]int]float64)}
}

// CorrectProb returns the latent correctness probability of the pair (a, b),
// drawing and caching it on first use.
func (w *World) CorrectProb(a, b item.Item) float64 {
	k := pairKey(a.ID, b.ID)
	w.mu.Lock()
	defer w.mu.Unlock()
	if q, ok := w.q[k]; ok {
		return q
	}
	q := w.regime.CorrectProb(relDiff(a, b), w.r)
	w.q[k] = q
	return q
}

// Worker returns a comparator sampling answers from this world: it answers
// each comparison correctly with the pair's latent probability, using r for
// its private coin flips.
func (w *World) Worker(r *rng.Source) Comparator {
	return Func(func(a, b item.Item) item.Item {
		hi, lo := a, b
		if b.Value > a.Value {
			hi, lo = b, a
		}
		if a.Value == b.Value { // truly tied pairs have no correct answer
			if r.Bool() {
				return a
			}
			return b
		}
		if r.Bernoulli(w.CorrectProb(a, b)) {
			return hi
		}
		return lo
	})
}

// relDiff returns the relative difference |v(a) − v(b)| / max(|v(a)|, |v(b)|)
// used to bucket question difficulty in Section 3.1 (e.g. "the relative
// difference between the number of dots ranged from 0 to 10%").
func relDiff(a, b item.Item) float64 {
	d := item.Distance(a, b)
	m := math.Max(math.Abs(a.Value), math.Abs(b.Value))
	if m == 0 {
		return 0
	}
	return d / m
}

// RelDiff exposes relDiff for experiment bucketing.
func RelDiff(a, b item.Item) float64 { return relDiff(a, b) }
