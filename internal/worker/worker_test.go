package worker

import (
	"math"
	"testing"
	"testing/quick"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

func it(id int, v float64) item.Item { return item.Item{ID: id, Value: v} }

func TestClassString(t *testing.T) {
	if Naive.String() != "naive" || Expert.String() != "expert" {
		t.Fatal("class names wrong")
	}
	if Class(5).String() != "class5" {
		t.Fatalf("extended class name = %q", Class(5).String())
	}
}

func TestTruth(t *testing.T) {
	a, b := it(0, 1), it(1, 2)
	if Truth.Compare(a, b).ID != 1 || Truth.Compare(b, a).ID != 1 {
		t.Fatal("Truth returned the smaller element")
	}
	// Exact tie: first argument wins, deterministically.
	x, y := it(0, 3), it(1, 3)
	if Truth.Compare(x, y).ID != 0 {
		t.Fatal("Truth tie should return first argument")
	}
}

func TestThresholdAboveThresholdNoError(t *testing.T) {
	w := NewThreshold(1.0, 0, rng.New(1))
	a, b := it(0, 0), it(1, 5)
	for i := 0; i < 100; i++ {
		if w.Compare(a, b).ID != 1 {
			t.Fatal("ε=0 worker erred above threshold")
		}
		if w.Compare(b, a).ID != 1 {
			t.Fatal("ε=0 worker erred above threshold (swapped args)")
		}
	}
}

func TestThresholdBoundaryIsIndistinguishable(t *testing.T) {
	// d(a, b) == δ exactly: the model says "≤ δ" is arbitrary.
	w := &Threshold{Delta: 5, Tie: AdversarialTie{}, R: rng.New(1)}
	a, b := it(0, 0), it(1, 5)
	if w.Compare(a, b).ID != 0 {
		t.Fatal("boundary distance should fall in the arbitrary regime")
	}
}

func TestThresholdBelowThresholdRandom(t *testing.T) {
	w := NewThreshold(10, 0, rng.New(2))
	a, b := it(0, 0), it(1, 1)
	winsA := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if w.Compare(a, b).ID == 0 {
			winsA++
		}
	}
	f := float64(winsA) / trials
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("under-threshold win rate = %.3f, want ≈0.5", f)
	}
}

func TestThresholdEpsilonRate(t *testing.T) {
	w := NewThreshold(0.5, 0.2, rng.New(3))
	a, b := it(0, 0), it(1, 10)
	errors := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if w.Compare(a, b).ID != 1 {
			errors++
		}
	}
	f := float64(errors) / trials
	if math.Abs(f-0.2) > 0.02 {
		t.Fatalf("error rate = %.3f, want ≈0.2", f)
	}
}

func TestProbabilisticIsZeroDeltaThreshold(t *testing.T) {
	w := NewProbabilistic(0.3, rng.New(4))
	if w.Delta != 0 || w.Epsilon != 0.3 {
		t.Fatalf("probabilistic worker misconfigured: δ=%g ε=%g", w.Delta, w.Epsilon)
	}
	// Any nonzero distance is above threshold δ=0.
	a, b := it(0, 0), it(1, 1e-9)
	errors := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if w.Compare(a, b).ID != 1 {
			errors++
		}
	}
	f := float64(errors) / trials
	if math.Abs(f-0.3) > 0.02 {
		t.Fatalf("error rate = %.3f, want ≈0.3", f)
	}
}

func TestRandomTieBalance(t *testing.T) {
	tie := RandomTie{R: rng.New(5)}
	a, b := it(0, 1), it(1, 1)
	picksA := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if tie.Pick(a, b).ID == 0 {
			picksA++
		}
	}
	f := float64(picksA) / trials
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("RandomTie pick rate = %.3f", f)
	}
}

func TestStickyTieIsSticky(t *testing.T) {
	tie := NewStickyTie(rng.New(6))
	a, b := it(3, 1), it(7, 1)
	first := tie.Pick(a, b)
	for i := 0; i < 50; i++ {
		if tie.Pick(a, b).ID != first.ID {
			t.Fatal("sticky tie changed its answer")
		}
		// Argument order must not matter.
		if tie.Pick(b, a).ID != first.ID {
			t.Fatal("sticky tie depends on argument order")
		}
	}
}

func TestStickyTieIndependentPairs(t *testing.T) {
	tie := NewStickyTie(rng.New(7))
	// Over many distinct pairs, first answers should be split roughly evenly.
	firstWins := 0
	const pairs = 2000
	for i := 0; i < pairs; i++ {
		a, b := it(2*i, 1), it(2*i+1, 1)
		if tie.Pick(a, b).ID == a.ID {
			firstWins++
		}
	}
	f := float64(firstWins) / pairs
	if math.Abs(f-0.5) > 0.05 {
		t.Fatalf("sticky first-answer rate = %.3f", f)
	}
}

func TestAdversarialTie(t *testing.T) {
	a, b := it(0, 1), it(1, 2)
	if (AdversarialTie{}).Pick(a, b).ID != 0 {
		t.Fatal("adversary should pick the lower-valued element")
	}
	if (AdversarialTie{}).Pick(b, a).ID != 0 {
		t.Fatal("adversary should pick the lower-valued element (swapped)")
	}
	// Exact tie: second argument.
	x, y := it(5, 3), it(6, 3)
	if (AdversarialTie{}).Pick(x, y).ID != 6 {
		t.Fatal("adversary tie rule changed")
	}
}

func TestThresholdAdversarialNeverHelpsMax(t *testing.T) {
	w := &Threshold{Delta: 2, Tie: AdversarialTie{}, R: rng.New(8)}
	a, b := it(0, 0), it(1, 1) // within threshold
	for i := 0; i < 20; i++ {
		if w.Compare(a, b).ID != 0 {
			t.Fatal("adversarial worker let the better element win under threshold")
		}
	}
}

func TestDistanceErrorWorker(t *testing.T) {
	r := rng.New(9)
	w := &DistanceError{
		Delta:     1,
		EpsilonAt: func(d float64) float64 { return 0.5 / d }, // decays with distance
		Tie:       RandomTie{R: r},
		R:         r,
	}
	far, near := it(0, 0), it(1, 10)
	errorsFar := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if w.Compare(far, near).ID != 1 {
			errorsFar++
		}
	}
	f := float64(errorsFar) / trials
	if math.Abs(f-0.05) > 0.01 {
		t.Fatalf("distance-dependent error at d=10: %.3f, want ≈0.05", f)
	}
}

func TestDistanceErrorClamping(t *testing.T) {
	r := rng.New(10)
	w := &DistanceError{
		Delta:     0,
		EpsilonAt: func(d float64) float64 { return 7 }, // clamped to 1
		Tie:       RandomTie{R: r},
		R:         r,
	}
	a, b := it(0, 0), it(1, 5)
	for i := 0; i < 20; i++ {
		if w.Compare(a, b).ID != 0 {
			t.Fatal("ε clamped to 1 should always err")
		}
	}
	w.EpsilonAt = func(d float64) float64 { return -3 } // clamped to 0
	for i := 0; i < 20; i++ {
		if w.Compare(a, b).ID != 1 {
			t.Fatal("ε clamped to 0 should never err")
		}
	}
}

func TestSpammerIgnoresValues(t *testing.T) {
	s := Spammer{R: rng.New(11)}
	a, b := it(0, 0), it(1, 1e9)
	winsWorse := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.Compare(a, b).ID == 0 {
			winsWorse++
		}
	}
	f := float64(winsWorse) / trials
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("spammer picked the worse element %.3f of the time, want ≈0.5", f)
	}
}

func TestThresholdModelProperty(t *testing.T) {
	// Property: with ε = 0, a threshold worker never errs on pairs farther
	// apart than δ, for any δ and values.
	r := rng.New(12)
	f := func(va, vb, deltaRaw float64) bool {
		if math.IsNaN(va) || math.IsNaN(vb) || math.IsNaN(deltaRaw) {
			return true
		}
		if math.Abs(va) > 1e300 || math.Abs(vb) > 1e300 {
			return true
		}
		delta := math.Mod(math.Abs(deltaRaw), 100)
		a, b := it(0, va), it(1, vb)
		if item.Distance(a, b) <= delta {
			return true // arbitrary regime: nothing to check
		}
		w := NewThreshold(delta, 0, r)
		got := w.Compare(a, b)
		want := a
		if vb > va {
			want = b
		}
		return got.ID == want.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := Func(func(a, b item.Item) item.Item { called = true; return b })
	if f.Compare(it(0, 1), it(1, 2)).ID != 1 || !called {
		t.Fatal("Func adapter broken")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if pairKey(3, 9) != pairKey(9, 3) {
		t.Fatal("pairKey not symmetric")
	}
	if pairKey(3, 9) == pairKey(3, 8) {
		t.Fatal("pairKey collision")
	}
}

func TestFirstLosesTie(t *testing.T) {
	a, b := it(0, 5), it(1, 1)
	if (FirstLosesTie{}).Pick(a, b).ID != 1 {
		t.Fatal("first argument should lose")
	}
	if (FirstLosesTie{}).Pick(b, a).ID != 0 {
		t.Fatal("first argument should lose (swapped)")
	}
	// Inside the threshold model: pivot-first call order makes the pivot
	// lose every under-threshold comparison.
	w := &Threshold{Delta: 100, Tie: FirstLosesTie{}, R: rng.New(1)}
	if w.Compare(a, b).ID != 1 {
		t.Fatal("threshold worker with FirstLosesTie should return the second element")
	}
}
