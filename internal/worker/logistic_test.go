package worker

import (
	"math"
	"testing"
	"testing/quick"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

func TestLogisticCorrectProbShape(t *testing.T) {
	w := NewLogistic(2, rng.New(1))
	if got := w.CorrectProb(0); got != 0.5 {
		t.Fatalf("P(correct | d=0) = %g, want 0.5", got)
	}
	if got := w.CorrectProb(2); math.Abs(got-1/(1+math.Exp(-1))) > 1e-12 {
		t.Fatalf("P(correct | d=s) = %g", got)
	}
	// Monotone increasing in distance, approaching 1.
	prev := 0.0
	for _, d := range []float64{0.1, 0.5, 1, 2, 5, 20} {
		p := w.CorrectProb(d)
		if p <= prev || p > 1 {
			t.Fatalf("P(correct | %g) = %g not increasing toward 1", d, p)
		}
		prev = p
	}
	if prev < 0.999 {
		t.Fatalf("P(correct | 20) = %g, want ≈1", prev)
	}
}

func TestLogisticZeroScaleDefaults(t *testing.T) {
	w := NewLogistic(0, rng.New(2))
	if got := w.CorrectProb(1); math.Abs(got-1/(1+math.Exp(-1))) > 1e-12 {
		t.Fatalf("default scale wrong: %g", got)
	}
}

func TestLogisticEmpiricalAccuracy(t *testing.T) {
	w := NewLogistic(1, rng.New(3))
	a, b := item.Item{ID: 0, Value: 0}, item.Item{ID: 1, Value: 1}
	correct := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if w.Compare(a, b).ID == 1 {
			correct++
		}
	}
	want := 1 / (1 + math.Exp(-1))
	if got := float64(correct) / trials; math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical accuracy %.3f, want %.3f", got, want)
	}
}

func TestLogisticSymmetricInArguments(t *testing.T) {
	// The model depends only on the distance; argument order must not
	// bias the winner.
	w := NewLogistic(1, rng.New(4))
	a, b := item.Item{ID: 0, Value: 5}, item.Item{ID: 1, Value: 5.3}
	winsB1, winsB2 := 0, 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if w.Compare(a, b).ID == 1 {
			winsB1++
		}
		if w.Compare(b, a).ID == 1 {
			winsB2++
		}
	}
	if math.Abs(float64(winsB1-winsB2))/trials > 0.03 {
		t.Fatalf("argument order biased the outcome: %d vs %d", winsB1, winsB2)
	}
}

func TestLogisticMajorityAlwaysHelps(t *testing.T) {
	// Unlike the threshold model, repetitions help at EVERY distance:
	// P(correct) > 1/2 whenever d > 0, so the majority converges to the
	// truth — the defining contrast with the expertise barrier.
	w := NewLogistic(1, rng.New(5))
	f := func(dRaw uint8) bool {
		d := float64(dRaw%100)/100 + 0.01
		return w.CorrectProb(d) > 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
