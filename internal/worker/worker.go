// Package worker implements the paper's human-worker error models.
//
// The central model is the threshold model T(δ, ε) of Section 3.2: a worker
// comparing elements k, j returns the more valuable one with probability
// 1 − ε when d(k, j) > δ, and answers *arbitrarily* when d(k, j) ≤ δ. The
// arbitrary regime is the model's distinctive feature — unlike a purely
// probabilistic comparator, repetition and majority voting cannot recover
// the truth below the threshold. The probabilistic error model of prior work
// is the special case δ = 0.
//
// Section 3.3 splits the workforce into classes: naïve workers follow
// T(δn, εn) and experts follow T(δe, εe) with δe ≪ δn and εe ≤ εn. The
// package also provides the empirical pair-bias model used to reproduce
// Figure 2, spammer workers for the platform's quality-control experiments,
// and adversarial tie-breaking for worst-case analysis.
package worker

import (
	"fmt"
	"math"
	"sync"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

// Class identifies the billing/accuracy class of a worker. The paper uses
// two classes; higher values support the multi-class extension of
// Section 3.3 ("a natural extension models multiple classes of workers").
type Class int

// The two worker classes of the paper.
const (
	Naive Class = iota
	Expert
)

// String returns the lower-case class name.
func (c Class) String() string {
	switch c {
	case Naive:
		return "naive"
	case Expert:
		return "expert"
	default:
		return fmt.Sprintf("class%d", int(c))
	}
}

// Comparator is any source of answers to pairwise comparison tasks. Compare
// returns the element the worker believes has the larger value ("wins the
// comparison"). Implementations may be randomized and need not be
// consistent across repeated calls with the same arguments.
type Comparator interface {
	Compare(a, b item.Item) item.Item
}

// Func adapts a function to the Comparator interface.
type Func func(a, b item.Item) item.Item

// Compare calls f.
func (f Func) Compare(a, b item.Item) item.Item { return f(a, b) }

// Truth is the infallible comparator: it always returns the element with the
// larger value (the first argument on exact ties). It is the δ = 0, ε = 0
// limit of the threshold model and is used in tests and as a reference.
var Truth Comparator = Func(func(a, b item.Item) item.Item {
	if b.Value > a.Value {
		return b
	}
	return a
})

// TieBreaker decides comparisons between indistinguishable elements
// (d(a, b) ≤ δ), where the threshold model allows any behaviour.
type TieBreaker interface {
	// Pick returns the element reported as winner of an
	// under-threshold comparison.
	Pick(a, b item.Item) item.Item
}

// RandomTie answers under-threshold comparisons uniformly at random,
// independently at every call. This matches the paper's simulation setup:
// "When a worker is asked to rank a pair of elements whose value difference
// is below her threshold, each element is chosen as the answer with
// probability 1/2."
type RandomTie struct{ R *rng.Source }

// Pick returns a or b with probability 1/2 each.
func (t RandomTie) Pick(a, b item.Item) item.Item {
	if t.R.Bool() {
		return a
	}
	return b
}

// StickyTie answers under-threshold comparisons with a per-pair answer that
// is random on first encounter and repeated thereafter ("if asked multiple
// times to compare k and j, the worker may return k on some occasions and j
// in others, or always k or j" — this is the "always" variant). Safe for
// concurrent use.
type StickyTie struct {
	R  *rng.Source
	mu sync.Mutex
	m  map[[2]int]int // pair → winning ID
}

// NewStickyTie returns a StickyTie drawing first answers from r.
func NewStickyTie(r *rng.Source) *StickyTie {
	return &StickyTie{R: r, m: make(map[[2]int]int)}
}

// Pick returns the pair's sticky answer, drawing it on first use.
func (t *StickyTie) Pick(a, b item.Item) item.Item {
	k := pairKey(a.ID, b.ID)
	t.mu.Lock()
	w, ok := t.m[k]
	if !ok {
		w = a.ID
		if t.R.Bool() {
			w = b.ID
		}
		t.m[k] = w
	}
	t.mu.Unlock()
	if w == a.ID {
		return a
	}
	return b
}

// HashTie answers under-threshold comparisons with an unbiased coin that is
// a pure function of (Seed, pair): the same pair always gets the same
// answer, different pairs get (statistically) independent answers, and the
// outcome does not depend on when or from which goroutine the question is
// asked. It is the order-independent, stateless counterpart of StickyTie,
// and the tie policy that makes a Threshold worker safe for the oracle's
// parallel batch evaluation (tournament.Oracle.ParallelBatch).
type HashTie struct {
	// Seed selects the coin family; two HashTies with the same seed agree
	// on every pair.
	Seed uint64
}

// Pick returns the pair's hashed answer; symmetric in its arguments.
func (t HashTie) Pick(a, b item.Item) item.Item {
	lo, hi := a, b
	if lo.ID > hi.ID {
		lo, hi = hi, lo
	}
	h := splitmix(t.Seed ^ splitmix(uint64(int64(lo.ID))) ^ splitmix(uint64(int64(hi.ID))*0x9e3779b97f4a7c15))
	if h&1 == 0 {
		return lo
	}
	return hi
}

// splitmix is the SplitMix64 finalizer, decorrelating structured inputs.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AdversarialTie makes the *less* valuable element win every
// under-threshold comparison. This is the worst-case adversary of
// Section 5: in 2-MaxFind's elimination step it makes the pivot lose, so no
// indistinguishable candidate is ever eliminated, maximizing the number of
// comparisons; in phase 1 it makes the maximum lose every game the model
// allows it to lose.
type AdversarialTie struct{}

// Pick returns the element with the smaller value (the second on ties).
func (AdversarialTie) Pick(a, b item.Item) item.Item {
	if a.Value < b.Value {
		return a
	}
	return b
}

// FirstLosesTie makes the element presented first lose every
// under-threshold comparison. Algorithms present the pivot first in
// elimination passes (tournament.PivotPass compares x against each
// candidate), so this is exactly the worst case of Section 5: "in all the
// comparisons of step 4 of Algorithm 3, whenever the difference is below
// the threshold, we make element x lose, such as to maximize the number of
// elements that go to the next round."
type FirstLosesTie struct{}

// Pick returns the second element.
func (FirstLosesTie) Pick(_, b item.Item) item.Item { return b }

// Threshold is a worker following the threshold model T(δ, ε).
// Above the threshold it errs with probability Epsilon; below, the Tie
// policy decides. The zero Epsilon, RandomTie configuration is the paper's
// simulation default.
//
// Compare touches R only when Epsilon > 0, so a Threshold with Epsilon == 0
// and a concurrency-safe, order-independent Tie (HashTie, AdversarialTie,
// FirstLosesTie) is itself safe for concurrent use and order-independent —
// the prerequisite for tournament.Oracle.ParallelBatch.
type Threshold struct {
	// Delta is the discernment threshold δ ≥ 0.
	Delta float64
	// Epsilon is the residual error probability ε ∈ [0, 1) applied when
	// d(a, b) > δ.
	Epsilon float64
	// Tie decides under-threshold comparisons.
	Tie TieBreaker
	// R drives the residual-error coin flips.
	R *rng.Source
}

// NewThreshold returns a T(δ, ε) worker with uniformly random tie-breaking.
func NewThreshold(delta, epsilon float64, r *rng.Source) *Threshold {
	return &Threshold{Delta: delta, Epsilon: epsilon, Tie: RandomTie{R: r}, R: r}
}

// Compare implements the threshold model.
func (w *Threshold) Compare(a, b item.Item) item.Item {
	if item.Distance(a, b) <= w.Delta {
		return w.Tie.Pick(a, b)
	}
	hi, lo := a, b
	if b.Value > a.Value {
		hi, lo = b, a
	}
	if w.Epsilon > 0 && w.R.Bernoulli(w.Epsilon) {
		return lo
	}
	return hi
}

// NewProbabilistic returns a worker following the probabilistic error model
// of prior work ([Feige et al.], [Davidson et al.]): a fixed error
// probability p on every comparison, independent of the values. It is the
// threshold model with δ = 0 and ε = p.
func NewProbabilistic(p float64, r *rng.Source) *Threshold {
	return NewThreshold(0, p, r)
}

// DistanceError is the Appendix A generalization of the threshold model:
// above the threshold the error probability depends on the distance through
// EpsilonAt, typically decreasing as elements move farther apart.
type DistanceError struct {
	// Delta is the discernment threshold.
	Delta float64
	// EpsilonAt returns the error probability for a comparison at
	// distance d > Delta. Values are clamped to [0, 1].
	EpsilonAt func(d float64) float64
	// Tie decides under-threshold comparisons.
	Tie TieBreaker
	// R drives the error coin flips.
	R *rng.Source
}

// Compare implements the distance-dependent threshold model.
func (w *DistanceError) Compare(a, b item.Item) item.Item {
	d := item.Distance(a, b)
	if d <= w.Delta {
		return w.Tie.Pick(a, b)
	}
	hi, lo := a, b
	if b.Value > a.Value {
		hi, lo = b, a
	}
	eps := w.EpsilonAt(d)
	if eps < 0 {
		eps = 0
	} else if eps > 1 {
		eps = 1
	}
	if w.R.Bernoulli(eps) {
		return lo
	}
	return hi
}

// Spammer answers every comparison uniformly at random regardless of the
// elements. The platform's gold-question quality control (Section 3.1:
// workers under 70% gold accuracy are ignored) exists to filter these out.
type Spammer struct{ R *rng.Source }

// Compare returns a or b with probability 1/2 each.
func (s Spammer) Compare(a, b item.Item) item.Item {
	if s.R.Bool() {
		return a
	}
	return b
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Valuer is a source of cardinal value estimates — the crowd-scoring query
// model of Nordio et al., where a worker is shown one element and asked for
// a score instead of being shown a pair and asked for a winner. rep is the
// vote index: asking V independent votes on the same element calls Value V
// times with rep = 0..V−1, and an implementation must return (statistically)
// independent estimates across rep values.
type Valuer interface {
	Value(it item.Item, rep int) float64
}

// ValuerFunc adapts a function to the Valuer interface.
type ValuerFunc func(it item.Item, rep int) float64

// Value calls f.
func (f ValuerFunc) Value(it item.Item, rep int) float64 { return f(it, rep) }

// TruthValuer reports every element's exact value regardless of rep — the
// σ = 0 limit of the noisy scoring model, used in tests and as a reference.
var TruthValuer Valuer = ValuerFunc(func(it item.Item, _ int) float64 { return it.Value })

// NoisyValuer is a crowd scorer with additive noise: each vote is the true
// value plus a Gaussian perturbation of standard deviation Sigma. The noise
// is a pure function of (Seed, item ID, rep) — the same vote always returns
// the same estimate, different votes are (statistically) independent, and
// the outcome does not depend on when or from which goroutine the question
// is asked. It is the value-query counterpart of HashTie: the property that
// makes a scoring run safe for parallel dispatch and bit-identical
// checkpoint replay.
//
// Calibration: a NoisyValuer with Sigma on the order of the naive class's
// discernment threshold δn models the same workforce answering cardinal
// questions — aggregating V votes shrinks the effective error by ~1/√V.
type NoisyValuer struct {
	// Sigma is the per-vote noise standard deviation; 0 reports exact
	// values.
	Sigma float64
	// Seed selects the noise family; two NoisyValuers with the same seed
	// agree on every (item, rep) vote.
	Seed uint64
}

// Value returns the vote's deterministic noisy estimate.
func (v NoisyValuer) Value(it item.Item, rep int) float64 {
	if v.Sigma == 0 {
		return it.Value
	}
	h := splitmix(v.Seed ^ splitmix(uint64(int64(it.ID))) ^ splitmix(uint64(int64(rep))*0x9e3779b97f4a7c15))
	// Box-Muller from two uniforms derived from one hash chain.
	u1 := float64(h>>11) / (1 << 53)
	h2 := splitmix(h)
	u2 := float64(h2>>11) / (1 << 53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return it.Value + v.Sigma*z
}
