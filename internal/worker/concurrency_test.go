package worker

import (
	"sync"
	"testing"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
)

func TestWorldConcurrentAccess(t *testing.T) {
	// World documents safety for concurrent use: many goroutines sampling
	// answers for overlapping pairs must agree on the latent difficulties.
	root := rng.New(99)
	w := NewWorld(PlateauRegime{Threshold: 0.2}, root.Child("world"))
	items := make([]item.Item, 20)
	for i := range items {
		items[i] = item.Item{ID: i, Value: 100 + float64(i)}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wk := w.Worker(root.ChildN("wk", g))
			for i := 0; i < 200; i++ {
				a, b := items[i%20], items[(i+7)%20]
				if a.ID == b.ID {
					continue
				}
				wk.Compare(a, b)
			}
		}(g)
	}
	wg.Wait()
	// Latent q values must now be frozen and consistent.
	q1 := w.CorrectProb(items[0], items[7])
	q2 := w.CorrectProb(items[7], items[0])
	if q1 != q2 {
		t.Fatal("latent q inconsistent after concurrent access")
	}
}

func TestStickyTieConcurrentAccess(t *testing.T) {
	root := rng.New(100)
	tie := NewStickyTie(root.Child("tie"))
	a, b := item.Item{ID: 0, Value: 1}, item.Item{ID: 1, Value: 1}
	first := tie.Pick(a, b)
	var wg sync.WaitGroup
	errs := make(chan int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if tie.Pick(a, b).ID != first.ID {
					errs <- i
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if i, bad := <-errs; bad {
		t.Fatalf("sticky answer changed under concurrency at iteration %d", i)
	}
}
