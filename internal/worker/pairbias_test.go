package worker

import (
	"math"
	"testing"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/stats"
)

func TestRelDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{100, 110, 10.0 / 110.0},
		{110, 100, 10.0 / 110.0},
		{0, 0, 0},
		{-4, 4, 2},
		{50, 50, 0},
	}
	for _, tc := range tests {
		got := RelDiff(item.Item{Value: tc.a}, item.Item{ID: 1, Value: tc.b})
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RelDiff(%g,%g) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWisdomRegimeAlwaysAboveHalf(t *testing.T) {
	w := WisdomRegime{Sharpness: 5}
	r := rng.New(1)
	for _, rel := range []float64{0, 0.01, 0.05, 0.1, 0.3, 1, 10} {
		q := w.CorrectProb(rel, r)
		if q < 0.5 || q > 1 {
			t.Errorf("wisdom q(%g) = %g outside [0.5, 1]", rel, q)
		}
	}
	// Monotone in relative difference: easier pairs are answered better.
	prev := 0.0
	for _, rel := range []float64{0.01, 0.05, 0.1, 0.2, 0.5, 1} {
		q := w.CorrectProb(rel, r)
		if q <= prev {
			t.Fatalf("wisdom q not increasing at rel=%g", rel)
		}
		prev = q
	}
}

func TestWisdomRegimeDefaultSharpness(t *testing.T) {
	a := WisdomRegime{}.CorrectProb(0.1, rng.New(1))
	b := WisdomRegime{Sharpness: 5}.CorrectProb(0.1, rng.New(1))
	if a != b {
		t.Fatalf("default sharpness mismatch: %g vs %g", a, b)
	}
}

func TestPlateauRegimeEasyPairs(t *testing.T) {
	p := PlateauRegime{Threshold: 0.2, Epsilon: 0.1}
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		q := p.CorrectProb(0.5, r)
		if q != 0.9 {
			t.Fatalf("above-threshold q = %g, want 0.9", q)
		}
	}
}

func TestPlateauRegimeHardPairsSplit(t *testing.T) {
	p := PlateauRegime{Threshold: 0.2, Epsilon: 0.1}
	r := rng.New(3)
	above, total := 0, 4000
	for i := 0; i < total; i++ {
		q := p.CorrectProb(0.1, r) // mid-band: plateau target 0.68
		if q == 0.5 {
			t.Fatal("hard pair q should never be exactly 1/2")
		}
		if q > 0.5 {
			above++
		}
	}
	f := float64(above) / float64(total)
	if math.Abs(f-0.68) > 0.03 {
		t.Fatalf("P(q > 1/2) = %.3f at rel=0.1, want ≈0.68", f)
	}
}

func TestWorldCachesPerPair(t *testing.T) {
	w := NewWorld(PlateauRegime{Threshold: 0.2}, rng.New(4))
	a, b := item.Item{ID: 0, Value: 100}, item.Item{ID: 1, Value: 105}
	q1 := w.CorrectProb(a, b)
	for i := 0; i < 20; i++ {
		if w.CorrectProb(a, b) != q1 {
			t.Fatal("latent q changed across calls")
		}
		if w.CorrectProb(b, a) != q1 {
			t.Fatal("latent q depends on argument order")
		}
	}
}

func TestWorldWorkersShareLatentDifficulty(t *testing.T) {
	// Two workers from the same world must agree in the long run on the
	// hard pairs exactly as the shared latent q dictates.
	root := rng.New(5)
	w := NewWorld(PlateauRegime{Threshold: 0.2}, root.Child("world"))
	a, b := item.Item{ID: 0, Value: 100}, item.Item{ID: 1, Value: 101}
	q := w.CorrectProb(a, b)
	w1 := w.Worker(root.Child("w1"))
	w2 := w.Worker(root.Child("w2"))
	const trials = 5000
	correct1, correct2 := 0, 0
	for i := 0; i < trials; i++ {
		if w1.Compare(a, b).ID == 1 {
			correct1++
		}
		if w2.Compare(a, b).ID == 1 {
			correct2++
		}
	}
	f1, f2 := float64(correct1)/trials, float64(correct2)/trials
	if math.Abs(f1-q) > 0.03 || math.Abs(f2-q) > 0.03 {
		t.Fatalf("worker correctness %.3f/%.3f deviates from latent q=%.3f", f1, f2, q)
	}
}

func TestWorldWisdomMajorityApproachesOne(t *testing.T) {
	// Figure 2(a) shape: under the wisdom regime, majority accuracy over
	// 21 workers is near 1 even for the hardest band.
	root := rng.New(6)
	w := NewWorld(WisdomRegime{Sharpness: 5}, root.Child("world"))
	a, b := item.Item{ID: 0, Value: 1000}, item.Item{ID: 1, Value: 1080} // 7.4% rel diff
	q := w.CorrectProb(a, b)
	if q <= 0.5 {
		t.Fatalf("wisdom latent q = %g, want > 0.5", q)
	}
	if acc := stats.MajorityCorrectProb(q, 21); acc < 0.75 {
		t.Fatalf("21-worker majority accuracy = %.3f, want ≥ 0.75", acc)
	}
}

func TestWorldPlateauMajorityStuck(t *testing.T) {
	// Figure 2(b) shape: under the plateau regime, a hard pair whose
	// latent bias fell on the wrong side is wrong forever, regardless of
	// the number of voters.
	root := rng.New(7)
	w := NewWorld(PlateauRegime{Threshold: 0.2}, root.Child("world"))
	// Find a wrong-leaning hard pair.
	var a, b item.Item
	found := false
	for i := 0; i < 200; i++ {
		a = item.Item{ID: 2 * i, Value: 100}
		b = item.Item{ID: 2*i + 1, Value: 103}
		if w.CorrectProb(a, b) < 0.5 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no wrong-leaning pair in 200 draws (plateau ≈ 0.58)")
	}
	q := w.CorrectProb(a, b)
	if acc := stats.MajorityCorrectProb(q, 51); acc > 0.5 {
		t.Fatalf("51-voter majority accuracy = %.3f on wrong-leaning pair, want < 0.5", acc)
	}
}

func TestWorldTiedValuesCoinFlip(t *testing.T) {
	root := rng.New(8)
	w := NewWorld(WisdomRegime{}, root.Child("world"))
	wk := w.Worker(root.Child("wk"))
	a, b := item.Item{ID: 0, Value: 5}, item.Item{ID: 1, Value: 5}
	winsA := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if wk.Compare(a, b).ID == 0 {
			winsA++
		}
	}
	f := float64(winsA) / trials
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("tied-pair win rate = %.3f", f)
	}
}

func TestPlateauDefaults(t *testing.T) {
	r := rng.New(9)
	p := PlateauRegime{} // all defaults
	q := p.CorrectProb(0.05, r)
	if q == 0.5 || q < 0.3 || q > 0.7 {
		t.Fatalf("default plateau q = %g outside expected band", q)
	}
	if got := p.CorrectProb(0.3, r); got != 1.0 { // ε defaults to 0
		t.Fatalf("default above-threshold q = %g, want 1", got)
	}
}

func TestPlateauCustomPlateauAt(t *testing.T) {
	r := rng.New(10)
	p := PlateauRegime{Threshold: 0.2, PlateauAt: func(rel float64) float64 { return 1 }}
	for i := 0; i < 100; i++ {
		if q := p.CorrectProb(0.1, r); q <= 0.5 {
			t.Fatalf("PlateauAt=1 produced wrong-leaning q = %g", q)
		}
	}
}
