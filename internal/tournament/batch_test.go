package tournament

import (
	"context"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

// recordingBatcher counts batch calls and forwards to Truth.
type recordingBatcher struct {
	batches int
	pairs   int
}

func (r *recordingBatcher) Compare(a, b item.Item) item.Item {
	return worker.Truth.Compare(a, b)
}

func (r *recordingBatcher) CompareBatch(pairs [][2]item.Item) []item.Item {
	r.batches++
	r.pairs += len(pairs)
	out := make([]item.Item, len(pairs))
	for i, p := range pairs {
		out[i] = worker.Truth.Compare(p[0], p[1])
	}
	return out
}

func TestCompareBatchEmpty(t *testing.T) {
	l := cost.NewLedger()
	o := NewOracle(worker.Truth, worker.Naive, l, nil)
	got, err := o.CompareBatch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch returned %d winners", len(got))
	}
	if l.Steps() != 0 {
		t.Fatal("empty batch billed a step")
	}
}

func TestCompareBatchSequentialFallback(t *testing.T) {
	// A plain comparator (no batch support) is answered element-wise but
	// still billed as one logical step.
	l := cost.NewLedger()
	o := NewOracle(worker.Truth, worker.Naive, l, nil)
	pairs := [][2]item.Item{
		{it2(0, 1), it2(1, 2)},
		{it2(2, 9), it2(3, 4)},
	}
	winners, err := o.CompareBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if winners[0].ID != 1 || winners[1].ID != 2 {
		t.Fatalf("winners = %v", winners)
	}
	if l.Naive() != 2 || l.Steps() != 1 {
		t.Fatalf("billing: %s", l)
	}
}

func TestCompareBatchUsesBatchComparator(t *testing.T) {
	rb := &recordingBatcher{}
	l := cost.NewLedger()
	o := NewOracle(rb, worker.Naive, l, nil)
	pairs := [][2]item.Item{
		{it2(0, 1), it2(1, 2)},
		{it2(2, 9), it2(3, 4)},
		{it2(4, 5), it2(5, 6)},
	}
	winners, err := o.CompareBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rb.batches != 1 || rb.pairs != 3 {
		t.Fatalf("batcher saw %d batches / %d pairs", rb.batches, rb.pairs)
	}
	if winners[1].ID != 2 {
		t.Fatalf("winners = %v", winners)
	}
	if l.Naive() != 3 || l.Steps() != 1 {
		t.Fatalf("billing: %s", l)
	}
}

func TestCompareBatchMemoServesRepeats(t *testing.T) {
	rb := &recordingBatcher{}
	l := cost.NewLedger()
	o := NewOracle(rb, worker.Naive, l, NewMemo())
	pairs := [][2]item.Item{{it2(0, 1), it2(1, 2)}}
	mustBatch(t, o, pairs)
	// Second batch fully memoized: no step, no forwarding, a memo hit.
	mustBatch(t, o, pairs)
	if rb.batches != 1 {
		t.Fatalf("memoized batch forwarded: %d batches", rb.batches)
	}
	if l.Steps() != 1 || l.Naive() != 1 || l.MemoHits(worker.Naive) != 1 {
		t.Fatalf("billing: %s", l)
	}
}

func TestCompareBatchDedupesWithinBatch(t *testing.T) {
	rb := &recordingBatcher{}
	l := cost.NewLedger()
	o := NewOracle(rb, worker.Naive, l, NewMemo())
	p := [2]item.Item{it2(0, 1), it2(1, 2)}
	rev := [2]item.Item{it2(1, 2), it2(0, 1)}
	winners := mustBatch(t, o, [][2]item.Item{p, p, rev})
	if rb.pairs != 1 {
		t.Fatalf("duplicates not deduped: batcher saw %d pairs", rb.pairs)
	}
	for i, w := range winners {
		if w.ID != 1 {
			t.Fatalf("winner %d = %v", i, w)
		}
	}
	if l.Naive() != 1 || l.MemoHits(worker.Naive) != 2 {
		t.Fatalf("billing: %s", l)
	}
}

func TestCompareBatchDuplicatesWithoutMemoAskedIndependently(t *testing.T) {
	rb := &recordingBatcher{}
	l := cost.NewLedger()
	o := NewOracle(rb, worker.Naive, l, nil)
	p := [2]item.Item{it2(0, 1), it2(1, 2)}
	mustBatch(t, o, [][2]item.Item{p, p})
	if rb.pairs != 2 {
		t.Fatalf("without memo duplicates should be asked twice, saw %d", rb.pairs)
	}
	if l.Naive() != 2 {
		t.Fatalf("billing: %s", l)
	}
}

func TestCompareBatchMixedSequentialDuplicates(t *testing.T) {
	// Sequential fallback + memo: the second copy within one batch is a
	// memo hit.
	l := cost.NewLedger()
	o := NewOracle(worker.Truth, worker.Naive, l, NewMemo())
	p := [2]item.Item{it2(0, 1), it2(1, 2)}
	winners := mustBatch(t, o, [][2]item.Item{p, p})
	if winners[0].ID != 1 || winners[1].ID != 1 {
		t.Fatalf("winners = %v", winners)
	}
	if l.Naive() != 1 || l.MemoHits(worker.Naive) != 1 {
		t.Fatalf("billing: %s", l)
	}
}

func TestRoundRobinStepsWithBatcher(t *testing.T) {
	rb := &recordingBatcher{}
	l := cost.NewLedger()
	o := NewOracle(rb, worker.Naive, l, nil)
	RoundRobin(context.Background(), items(1, 2, 3, 4, 5), o)
	if rb.batches != 1 {
		t.Fatalf("tournament used %d batches, want 1", rb.batches)
	}
	if l.Steps() != 1 || l.Naive() != 10 {
		t.Fatalf("billing: %s", l)
	}
}

func TestRoundRobinConsistencyBatchVsSequential(t *testing.T) {
	// With a deterministic comparator, the batch path must give exactly
	// the same tournament outcome as the sequential path.
	r := rng.New(9)
	vals := make([]float64, 12)
	for i := range vals {
		vals[i] = r.Float64()
	}
	seqRes := mustRR(t, items(vals...), NewOracle(worker.Truth, worker.Naive, nil, nil))
	rb := &recordingBatcher{}
	batchRes := mustRR(t, items(vals...), NewOracle(rb, worker.Naive, nil, nil))
	for i := range seqRes.Wins {
		if seqRes.Wins[i] != batchRes.Wins[i] {
			t.Fatalf("wins diverge at %d: %d vs %d", i, seqRes.Wins[i], batchRes.Wins[i])
		}
	}
}

func it2(id int, v float64) item.Item { return item.Item{ID: id, Value: v} }

// mustBatch runs CompareBatch under a background context and fails the test
// on error.
func mustBatch(t *testing.T, o *Oracle, pairs [][2]item.Item) []item.Item {
	t.Helper()
	winners, err := o.CompareBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	return winners
}
