package tournament

import (
	"context"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

// The zero-alloc contract of the hot path, asserted hard (not just
// reported): memo lookups and steady-state stores are allocation-free, and
// a fully-memoized CompareBatchInto with retained scratch is allocation-free
// end to end. These assertions are what keep the DAG scheduler's dispatch
// overhead from eating the rounds it wins.

func allocPairs(n int) [][2]item.Item {
	pairs := make([][2]item.Item, n)
	for i := range pairs {
		pairs[i] = [2]item.Item{
			{ID: 2 * i, Value: float64(2 * i)},
			{ID: 2*i + 1, Value: float64(2*i + 1)},
		}
	}
	return pairs
}

func TestMemoLookupZeroAllocs(t *testing.T) {
	m := NewMemo()
	for i := 0; i < 1000; i++ {
		m.store(i, i+1000, i)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i := 0; i < 1000; i++ {
			if _, ok := m.lookup(i, i+1000); !ok {
				t.Fatal("lost entry")
			}
		}
	}); n != 0 {
		t.Fatalf("memo lookup allocates %.1f per 1000 lookups, want 0", n)
	}
}

func TestMemoStoreSteadyStateZeroAllocs(t *testing.T) {
	m := NewMemoSized(4096) // pre-sized: steady state has no growth
	for i := 0; i < 2000; i++ {
		m.store(i, i+10000, i)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i := 0; i < 2000; i++ {
			m.store(i, i+10000, i) // re-store of an existing key: CAS no-op path
		}
	}); n != 0 {
		t.Fatalf("memo re-store allocates %.1f per 2000 stores, want 0", n)
	}
	// Fresh stores into pre-sized headroom are also allocation-free.
	next := 50000
	if n := testing.AllocsPerRun(1, func() {
		m.store(next, next+1, next)
		next += 2
	}); n != 0 {
		t.Fatalf("fresh store into headroom allocates %.1f, want 0", n)
	}
}

func TestCompareBatchIntoMemoizedZeroAllocs(t *testing.T) {
	l := cost.NewLedger()
	o := NewOracle(worker.Truth, worker.Naive, l, NewMemo())
	pairs := allocPairs(256)
	winners := make([]item.Item, len(pairs))
	var s BatchScratch
	ctx := context.Background()
	if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("memoized CompareBatchInto allocates %.1f per batch, want 0", n)
	}
	if winners[0].ID != 1 {
		t.Fatalf("winner[0] = %d, want 1", winners[0].ID)
	}
}

func TestCompareBatchIntoUnmemoizedSteadyAllocs(t *testing.T) {
	// Without a memo every call pays the comparator, but the dispatch
	// machinery itself must still reuse the caller's buffers: allow only
	// the scratch map-clear path, no per-pair allocations.
	l := cost.NewLedger()
	o := NewOracle(worker.Truth, worker.Naive, l, nil)
	pairs := allocPairs(256)
	winners := make([]item.Item, len(pairs))
	var s BatchScratch
	ctx := context.Background()
	if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("unmemoized CompareBatchInto allocates %.1f per batch, want 0", n)
	}
}

func BenchmarkMemoLookup(b *testing.B) {
	m := NewMemo()
	for i := 0; i < 4096; i++ {
		m.store(i, i+100000, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.lookup(i%4096, i%4096+100000)
	}
}

func BenchmarkMemoStore(b *testing.B) {
	m := NewMemoSized(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % (1 << 19)
		m.store(k, k+1<<20, k)
	}
}

func BenchmarkCompareBatchIntoMemoized(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(itoa(size), func(b *testing.B) {
			o := NewOracle(worker.Truth, worker.Naive, cost.NewLedger(), NewMemo())
			pairs := allocPairs(size)
			winners := make([]item.Item, len(pairs))
			var s BatchScratch
			ctx := context.Background()
			if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompareBatchLegacyAlloc(b *testing.B) {
	// The allocating wrapper, for comparison against the Into variant.
	o := NewOracle(worker.Truth, worker.Naive, cost.NewLedger(), NewMemo())
	pairs := allocPairs(256)
	ctx := context.Background()
	if _, err := o.CompareBatch(ctx, pairs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.CompareBatch(ctx, pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
