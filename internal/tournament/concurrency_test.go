package tournament

import (
	"context"
	"sync"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

func TestMemoConcurrentAccess(t *testing.T) {
	// Memo documents safety for concurrent use: goroutines racing to
	// answer overlapping pairs must converge on one answer per pair, and
	// the shared atomic ledger must account for every comparison exactly
	// once (as a fresh charge or as a memo hit).
	const goroutines = 32
	const perGoroutine = 300
	root := rng.New(1)
	memo := NewMemo()
	ledger := cost.NewLedger()
	items := make([]item.Item, 10)
	for i := range items {
		items[i] = item.Item{ID: i, Value: float64(i) * 0.1}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine worker and oracle sharing the memo and the
			// ledger; workers are documented single-goroutine.
			r := root.ChildN("g", g)
			w := worker.NewThreshold(10, 0, r) // all arbitrary: only memo makes it consistent
			o := NewOracle(w, worker.Naive, ledger, memo)
			for i := 0; i < perGoroutine; i++ {
				a, b := items[i%10], items[(i+3)%10]
				o.Compare(context.Background(), a, b)
			}
		}(g)
	}
	wg.Wait()
	// Every request was either charged or a memo hit; no update was lost.
	total := ledger.Comparisons(worker.Naive) + ledger.MemoHits(worker.Naive)
	if want := int64(goroutines * perGoroutine); total != want {
		t.Fatalf("charges+hits = %d, want %d", total, want)
	}
	if ledger.Comparisons(worker.Naive) != int64(memo.Len()) {
		t.Fatalf("charged %d fresh comparisons but memo holds %d pairs",
			ledger.Comparisons(worker.Naive), memo.Len())
	}
	// After the dust settles, answers are frozen.
	o := NewOracle(worker.NewThreshold(10, 0, root.Child("final")), worker.Naive, nil, memo)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			first, err := o.Compare(context.Background(), items[i], items[j])
			if err != nil {
				t.Fatal(err)
			}
			second, err := o.Compare(context.Background(), items[i], items[j])
			if err != nil {
				t.Fatal(err)
			}
			if second.ID != first.ID {
				t.Fatalf("pair (%d,%d) not frozen", i, j)
			}
		}
	}
}

func TestParallelBatchConcurrentOracles(t *testing.T) {
	// Many goroutines driving parallel batches through one memoized,
	// ledgered oracle: the worker is a stateless HashTie threshold
	// comparator, so this exercises every concurrent code path at once.
	items := make([]item.Item, 16)
	for i := range items {
		items[i] = item.Item{ID: i, Value: float64(i)}
	}
	var pairs [][2]item.Item
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			pairs = append(pairs, [2]item.Item{items[i], items[j]})
		}
	}
	ledger := cost.NewLedger()
	w := &worker.Threshold{Delta: 100, Tie: worker.HashTie{Seed: 42}}
	o := NewOracle(w, worker.Expert, ledger, NewMemo()).ParallelBatch(4)
	want, err := o.CompareBatch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := o.CompareBatch(context.Background(), pairs)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Errorf("pair %d: got %d, want %d", i, got[i].ID, want[i].ID)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ledger.Expert() != int64(len(pairs)) {
		t.Fatalf("expert comparisons = %d, want %d (every repeat a memo hit)",
			ledger.Expert(), len(pairs))
	}
}

func TestLossTrackerConcurrent(t *testing.T) {
	lt := NewLossTracker()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lt.Record(i%10, (i+g)%17)
			}
		}(g)
	}
	wg.Wait()
	for id := 0; id < 10; id++ {
		if lt.Losses(id) == 0 {
			t.Fatalf("loser %d has no recorded losses", id)
		}
	}
}
