package tournament

import (
	"sync"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

func TestMemoConcurrentAccess(t *testing.T) {
	// Memo documents safety for concurrent use: goroutines racing to
	// answer overlapping pairs must converge on one answer per pair.
	root := rng.New(1)
	memo := NewMemo()
	items := make([]item.Item, 10)
	for i := range items {
		items[i] = item.Item{ID: i, Value: float64(i) * 0.1}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine worker and oracle sharing only the memo;
			// workers and ledgers are documented single-goroutine.
			r := root.ChildN("g", g)
			w := worker.NewThreshold(10, 0, r) // all arbitrary: only memo makes it consistent
			o := NewOracle(w, worker.Naive, cost.NewLedger(), memo)
			for i := 0; i < 300; i++ {
				a, b := items[i%10], items[(i+3)%10]
				o.Compare(a, b)
			}
		}(g)
	}
	wg.Wait()
	// After the dust settles, answers are frozen.
	o := NewOracle(worker.NewThreshold(10, 0, root.Child("final")), worker.Naive, nil, memo)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			first := o.Compare(items[i], items[j])
			if o.Compare(items[i], items[j]).ID != first.ID {
				t.Fatalf("pair (%d,%d) not frozen", i, j)
			}
		}
	}
}
