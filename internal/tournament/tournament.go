// Package tournament provides the comparison-tournament machinery shared by
// the paper's algorithms: billed (and optionally memoized) comparison
// oracles, all-play-all (round-robin) tournaments, pivot elimination passes,
// and the cross-iteration loss counters of Appendix A.
//
// Memoization implements the first Appendix A optimization — "avoid
// repeating the comparison of two elements multiple times by the same type
// of workers. … The algorithm will keep an n × n table containing in cell
// (i, j) the result of the first comparison between element ei and ej."
// Besides saving money, memoization is what makes 2-MaxFind terminate
// against adversarial tie-breaking: the pivot's tournament wins must carry
// over to its elimination pass.
//
// # Dispatch
//
// Every comparison flows through the internal/dispatch layer: an Oracle
// consults its hard Budget (when attached) before performing a comparison,
// checks its context for cancellation, and — when a dispatch.Backend is
// attached — submits the comparison as a cancellable, fallible request
// instead of calling the in-process comparator directly. The default oracle
// (no backend, no budget) keeps the historical hot path: a direct comparator
// call behind nil checks.
//
// # Concurrency
//
// Memo, LossTracker, Budget, and Oracle's billing are safe for concurrent
// use: the memo is a lock-free CAS table on packed uint64 keys, the loss
// tracker is sharded across independently locked stripes, the budget is
// mutex-guarded with all-or-nothing spending, and the ledger (cost.Ledger)
// is atomic. An Oracle may therefore be shared by the goroutines of a
// parallel batch evaluation provided its underlying worker.Comparator (or
// dispatch.Backend) is itself safe for concurrent use — see
// Oracle.ParallelBatch.
package tournament

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"crowdmax/internal/cost"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/parallel"
	"crowdmax/internal/worker"
)

// The observability layer mirrors the ledger's class space with its own
// constant (obs must not import cost, so the low-level parallel pool can use
// it). Fail the build if they ever drift.
const (
	_ = uint(cost.MaxClasses - obs.NumClasses)
	_ = uint(obs.NumClasses - cost.MaxClasses)
)

// Oracle answers comparison requests by dispatching them to a worker
// comparator (or a dispatch.Backend), billing each paid comparison to a
// ledger under the worker's class, and optionally serving repeats from a
// memo table for free. A hard dispatch.Budget may be attached: every paid
// comparison is pre-charged against it all-or-nothing, so a cap is never
// exceeded, and a refused comparison surfaces dispatch.ErrBudgetExhausted
// to the algorithm.
//
// The oracle's own bookkeeping (ledger, memo, budget) is safe for
// concurrent use; whether concurrent Compare calls are safe overall depends
// solely on the underlying comparator or backend. See ParallelBatch for the
// opt-in that lets CompareBatch exploit this.
type Oracle struct {
	cmp          worker.Comparator
	backend      dispatch.Backend
	budget       *dispatch.Budget
	class        worker.Class
	ledger       *cost.Ledger
	memo         *Memo
	valuer       worker.Valuer
	vmemo        *ValueMemo
	batchWorkers int
	obs          *obs.Scope
}

// NewOracle binds a comparator of the given class to a ledger. memo may be
// nil to disable memoization (used by the ablation benchmarks).
func NewOracle(cmp worker.Comparator, class worker.Class, ledger *cost.Ledger, memo *Memo) *Oracle {
	return &Oracle{cmp: cmp, class: class, ledger: ledger, memo: memo}
}

// NewBackendOracle binds a dispatch backend of the given class to a ledger;
// every comparison is submitted as a dispatch request (cancellable,
// fallible) instead of an in-process comparator call. memo may be nil to
// disable memoization.
func NewBackendOracle(b dispatch.Backend, class worker.Class, ledger *cost.Ledger, memo *Memo) *Oracle {
	return &Oracle{backend: b, class: class, ledger: ledger, memo: memo}
}

// WithBackend routes the oracle's comparisons through b (replacing the
// direct comparator call); returns the oracle for chaining. The underlying
// comparator, if any, is still used for the BatchComparator fast path when b
// is nil.
func (o *Oracle) WithBackend(b dispatch.Backend) *Oracle {
	o.backend = b
	return o
}

// WithBudget attaches a hard spend budget: every paid comparison is
// pre-charged against it and refused with dispatch.ErrBudgetExhausted once
// a cap would be exceeded. Memo hits stay free. A nil budget (the default)
// costs one nil check per comparison. Returns the oracle for chaining.
func (o *Oracle) WithBudget(b *dispatch.Budget) *Oracle {
	o.budget = b
	return o
}

// Budget returns the attached budget, nil when unconstrained.
func (o *Oracle) Budget() *dispatch.Budget { return o.budget }

// WithValuer attaches an in-process cardinal scorer answering AskValue
// queries when no backend is attached (the backendless counterpart of
// dispatch.NewSimulatedValuer); returns the oracle for chaining.
func (o *Oracle) WithValuer(v worker.Valuer) *Oracle {
	o.valuer = v
	return o
}

// WithValueMemo attaches a value-query memo: each (item, rep) vote is paid
// once and served free thereafter, and the memo's entries ride in
// checkpoints so a resumed scoring run replays its votes bit-identically.
// Returns the oracle for chaining.
func (o *Oracle) WithValueMemo(m *ValueMemo) *Oracle {
	o.vmemo = m
	return o
}

// ParallelBatch opts the oracle into evaluating the non-memoized remainder
// of each CompareBatch concurrently on up to workers goroutines (workers ≤ 0
// selects runtime.GOMAXPROCS(0)); it returns the oracle for chaining.
//
// The caller asserts that the underlying comparator is stateless-safe: its
// Compare must be callable from multiple goroutines and its answers must not
// depend on call order (e.g. worker.Truth, or a worker.Threshold with
// Epsilon == 0 and an order-independent tie policy such as worker.HashTie).
// An order-dependent comparator would make results vary with scheduling,
// destroying the engine's bit-for-bit determinism guarantee. Comparators
// that implement BatchComparator (the platform simulator) are never fanned
// out — they receive the whole batch in one call, as before.
func (o *Oracle) ParallelBatch(workers int) *Oracle {
	o.batchWorkers = parallel.Normalize(workers)
	return o
}

// WithObs attaches an observability scope: comparison and memo-table
// counters accrue to the scope's metrics, and the algorithms driving this
// oracle label their trace events with the scope's trial and phase. A nil
// scope (the default) keeps the hot path at a single nil check. Returns the
// oracle for chaining.
func (o *Oracle) WithObs(s *obs.Scope) *Oracle {
	o.obs = s
	return o
}

// Obs returns the oracle's observability scope, nil when detached.
func (o *Oracle) Obs() *obs.Scope { return o.obs }

// LedgerSnapshot copies the oracle's ledger counters (zero snapshot for an
// un-billed oracle); algorithms difference snapshots at phase boundaries to
// attribute costs per phase.
func (o *Oracle) LedgerSnapshot() cost.Snapshot { return o.ledger.Snapshot() }

// Class returns the billing class of this oracle.
func (o *Oracle) Class() worker.Class { return o.class }

// Memoized reports whether this oracle serves repeated pairs from a memo
// table. Algorithms that rely on independent repeated answers (majority
// vote over repetitions) must use a non-memoized oracle.
func (o *Oracle) Memoized() bool { return o.memo != nil }

// Compare returns the winner of the comparison, billing it unless served
// from the memo. Memo hits are free and never consult the budget or the
// context; a paid comparison first checks ctx, then pre-charges the budget
// (all-or-nothing), then dispatches — through the backend when one is
// attached, directly to the comparator otherwise. On a backend failure the
// budget charge is refunded, so failed dispatches never consume spend.
func (o *Oracle) Compare(ctx context.Context, a, b item.Item) (item.Item, error) {
	if o.memo != nil {
		if w, ok := o.memo.lookup(a.ID, b.ID); ok {
			if o.ledger != nil {
				o.ledger.MemoHit(o.class)
			}
			if o.obs != nil {
				o.obs.Memo(int(o.class), 1, 0)
			}
			if w == a.ID {
				return a, nil
			}
			return b, nil
		}
	}
	var winner item.Item
	if o.backend == nil && o.budget == nil {
		// Hot path (default configuration): direct comparator call behind
		// the cancellation check alone, no extra call frame.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return item.Item{}, err
			}
		}
		winner = o.cmp.Compare(a, b)
		if o.ledger != nil {
			o.ledger.Charge(o.class)
		}
	} else {
		var err error
		winner, err = o.ask(ctx, a, b)
		if err != nil {
			return item.Item{}, err
		}
	}
	if o.obs != nil {
		o.obs.Comparisons(int(o.class), 1)
		if o.memo != nil {
			o.obs.Memo(int(o.class), 0, 1)
		}
	}
	if o.memo != nil {
		o.memo.store(a.ID, b.ID, winner.ID)
	}
	return winner, nil
}

// ask performs one paid (non-memoized) comparison: ctx check, budget
// pre-charge, dispatch, ledger charge. The nil-backend, nil-budget path —
// the default configuration and the hot path of every benchmark — costs two
// nil checks and one ctx.Err() call on top of the historical direct
// comparator call.
func (o *Oracle) ask(ctx context.Context, a, b item.Item) (item.Item, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return item.Item{}, err
		}
	}
	if o.budget != nil {
		if err := o.budget.Spend(o.class, 1); err != nil {
			return item.Item{}, err
		}
	}
	var winner item.Item
	if o.backend != nil {
		ans, err := o.backend.Answer(ctx, dispatch.Request{A: a, B: b, Class: o.class})
		if err != nil {
			if o.budget != nil {
				o.budget.Refund(o.class, 1)
			}
			return item.Item{}, err
		}
		winner = ans.Winner
	} else {
		winner = o.cmp.Compare(a, b)
	}
	if o.ledger != nil {
		o.ledger.Charge(o.class)
	}
	return winner, nil
}

// AskValue obtains one cardinal value estimate for it (vote index rep),
// billing it to the oracle's class unless served from the value memo. The
// paid path follows the exact discipline of Compare's: ctx check, budget
// pre-charge (all-or-nothing, refunded on dispatch failure), dispatch
// through the backend when one is attached (as a dispatch.KindValue
// request) or the in-process valuer otherwise, then the ledger charge.
// An oracle with neither backend nor valuer fails the query permanently.
func (o *Oracle) AskValue(ctx context.Context, it item.Item, rep int) (float64, error) {
	if o.vmemo != nil {
		if v, ok := o.vmemo.lookup(it.ID, rep); ok {
			if o.ledger != nil {
				o.ledger.MemoHit(o.class)
			}
			if o.obs != nil {
				o.obs.Memo(int(o.class), 1, 0)
			}
			return v, nil
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	if o.budget != nil {
		if err := o.budget.Spend(o.class, 1); err != nil {
			return 0, err
		}
	}
	var v float64
	switch {
	case o.backend != nil:
		ans, err := o.backend.Answer(ctx, dispatch.Request{A: it, Class: o.class, Kind: dispatch.KindValue, Rep: rep})
		if err != nil {
			if o.budget != nil {
				o.budget.Refund(o.class, 1)
			}
			return 0, err
		}
		v = ans.Value
	case o.valuer != nil:
		v = o.valuer.Value(it, rep)
	default:
		if o.budget != nil {
			o.budget.Refund(o.class, 1)
		}
		return 0, fmt.Errorf("tournament: oracle has no valuer or backend for value queries: %w", dispatch.ErrPermanent)
	}
	if o.ledger != nil {
		o.ledger.Charge(o.class)
	}
	if o.obs != nil {
		o.obs.Comparisons(int(o.class), 1)
		if o.vmemo != nil {
			o.obs.Memo(int(o.class), 0, 1)
		}
	}
	if o.vmemo != nil {
		o.vmemo.store(it.ID, rep, v)
	}
	return v, nil
}

// Step records one logical step (batch round) on the oracle's ledger.
func (o *Oracle) Step() {
	if o.ledger != nil {
		o.ledger.Step()
	}
}

// ValueEntry is one frozen value-query answer: the element's ID, the vote
// index, and the estimate the crowd returned.
type ValueEntry struct {
	ID, Rep int64
	Value   float64
}

// ValueMemo caches cardinal value answers keyed by (item ID, vote index).
// First store wins; safe for concurrent use. It is the value-query
// counterpart of Memo: besides saving money on repeated votes, its entries
// are what checkpoints freeze so a resumed scoring run replays every
// pre-crash vote for free with the original answer.
type ValueMemo struct {
	mu sync.RWMutex
	m  map[[2]int]float64
}

// NewValueMemo returns an empty value memo.
func NewValueMemo() *ValueMemo {
	return &ValueMemo{m: make(map[[2]int]float64)}
}

// lookup returns the frozen answer for (id, rep), if any.
func (m *ValueMemo) lookup(id, rep int) (float64, bool) {
	m.mu.RLock()
	v, ok := m.m[[2]int{id, rep}]
	m.mu.RUnlock()
	return v, ok
}

// store freezes the first answer for (id, rep); later stores are no-ops.
func (m *ValueMemo) store(id, rep int, v float64) {
	m.mu.Lock()
	if _, ok := m.m[[2]int{id, rep}]; !ok {
		m.m[[2]int{id, rep}] = v
	}
	m.mu.Unlock()
}

// Prime inserts a frozen answer during checkpoint replay.
func (m *ValueMemo) Prime(id, rep int, v float64) { m.store(id, rep, v) }

// Entries returns every frozen answer sorted by (ID, Rep), the deterministic
// order checkpoints encode.
func (m *ValueMemo) Entries() []ValueEntry {
	m.mu.RLock()
	out := make([]ValueEntry, 0, len(m.m))
	for k, v := range m.m {
		out = append(out, ValueEntry{ID: int64(k[0]), Rep: int64(k[1]), Value: v})
	}
	m.mu.RUnlock()
	slices.SortFunc(out, func(a, b ValueEntry) int {
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		if a.Rep != b.Rep {
			if a.Rep < b.Rep {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

// Result holds the outcome of an all-play-all tournament.
type Result struct {
	// Items are the participants, in input order.
	Items []item.Item
	// Wins[i] is the number of comparisons Items[i] won.
	Wins []int
	// Losers[i] lists, for Items[i], the IDs of the opponents it lost to.
	// Populated only with RoundRobinOpts.RecordLosers set; nil otherwise.
	Losers [][]int
}

// TopByWins returns the participant with the most wins, ties broken by
// input order.
func (r Result) TopByWins() item.Item {
	best := 0
	for i := 1; i < len(r.Items); i++ {
		if r.Wins[i] > r.Wins[best] {
			best = i
		}
	}
	return r.Items[best]
}

// MinByWins returns the participant with the fewest wins, ties broken by
// input order (used by the randomized Algorithm 5, which removes "the
// minimal element … with ties broken arbitrarily").
func (r Result) MinByWins() item.Item {
	best := 0
	for i := 1; i < len(r.Items); i++ {
		if r.Wins[i] < r.Wins[best] {
			best = i
		}
	}
	return r.Items[best]
}

// RoundRobinOpts configures RoundRobinWith.
type RoundRobinOpts struct {
	// RecordLosers fills Result.Losers with each participant's defeaters.
	// Recording costs one slice and up to n−1 appends per participant, so
	// it is off by default; only callers that consume the loss lists (the
	// Appendix A loss tracking, 2-MaxFind's victim carry-over) opt in.
	RecordLosers bool
}

// AppendAllPairs appends every unordered pair of items to buf in the
// canonical (i, j), i < j order — the exact pair sequence RoundRobinWith
// submits — and returns the extended buffer. Shared with the DAG scheduler
// (internal/sched) so both schedulers ask identical comparison sequences.
// The buffer is grown to its exact final size up front: a wave-sized buffer
// must not be built through a doubling chain of large zeroed reallocations.
func AppendAllPairs(buf [][2]item.Item, items []item.Item) [][2]item.Item {
	n := len(items)
	buf = slices.Grow(buf, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			buf = append(buf, [2]item.Item{items[i], items[j]})
		}
	}
	return buf
}

// ScoreRoundRobin builds a tournament Result from the winners of the pair
// sequence produced by AppendAllPairs(nil, items). winners must be parallel
// to that sequence. Shared by RoundRobinWith and the DAG scheduler so the
// two schedulers demultiplex identically.
func ScoreRoundRobin(items []item.Item, winners []item.Item, opts RoundRobinOpts) Result {
	n := len(items)
	r := Result{
		Items: items,
		Wins:  make([]int, n),
	}
	if opts.RecordLosers {
		r.Losers = make([][]int, n)
	}
	p := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if winners[p].ID == items[i].ID {
				r.Wins[i]++
				if opts.RecordLosers {
					r.Losers[j] = append(r.Losers[j], items[i].ID)
				}
			} else {
				r.Wins[j]++
				if opts.RecordLosers {
					r.Losers[i] = append(r.Losers[i], items[j].ID)
				}
			}
			p++
		}
	}
	return r
}

// RoundRobin plays an all-play-all tournament among items using the oracle:
// every unordered pair is compared exactly once. The whole tournament is
// submitted as one batch of independent comparisons — a single logical step
// in the Section 3 execution model. Result.Losers is not recorded; use
// RoundRobinWith to opt in. On cancellation or budget exhaustion the error
// is returned and the Result is unusable.
func RoundRobin(ctx context.Context, items []item.Item, o *Oracle) (Result, error) {
	return RoundRobinWith(ctx, items, o, RoundRobinOpts{})
}

// RoundRobinWith is RoundRobin with options.
func RoundRobinWith(ctx context.Context, items []item.Item, o *Oracle, opts RoundRobinOpts) (Result, error) {
	n := len(items)
	if m := obs.Active(); m != nil {
		m.ObserveGroup(n)
	}
	pairs := AppendAllPairs(make([][2]item.Item, 0, n*(n-1)/2), items)
	winners, err := o.CompareBatch(ctx, pairs)
	if err != nil {
		return Result{}, err
	}
	return ScoreRoundRobin(items, winners, opts), nil
}

// AppendPivotPairs appends the (pivot, candidate) pairs of a pivot
// elimination pass to buf — every candidate except the pivot itself, in
// candidate order — and returns the extended buffer. Shared with the DAG
// scheduler; see AppendAllPairs.
func AppendPivotPairs(buf [][2]item.Item, x item.Item, candidates []item.Item) [][2]item.Item {
	buf = slices.Grow(buf, len(candidates))
	for _, c := range candidates {
		if c.ID != x.ID {
			buf = append(buf, [2]item.Item{x, c})
		}
	}
	return buf
}

// ScorePivot splits candidates into survivors and eliminated IDs from the
// winners of the pair sequence produced by AppendPivotPairs(nil, x,
// candidates). The pivot itself always survives. Shared by PivotPass and
// the DAG scheduler.
func ScorePivot(x item.Item, candidates []item.Item, winners []item.Item) (survivors []item.Item, eliminated []int) {
	survivors = make([]item.Item, 0, len(candidates))
	p := 0
	for _, c := range candidates {
		if c.ID == x.ID {
			survivors = append(survivors, c)
			continue
		}
		if winners[p].ID == x.ID {
			eliminated = append(eliminated, c.ID)
		} else {
			survivors = append(survivors, c)
		}
		p++
	}
	return survivors, eliminated
}

// PivotPass compares pivot x against every element of candidates (skipping x
// itself) in one logical step and returns the survivors — the elements that
// did NOT lose to x — and the IDs of the eliminated elements. This is
// step 4 of 2-MaxFind: "Compare x against all candidate elements and
// eliminate all elements that lose to x." The pivot itself always survives.
// On cancellation or budget exhaustion the error is returned with nil
// survivors.
func PivotPass(ctx context.Context, x item.Item, candidates []item.Item, o *Oracle) (survivors []item.Item, eliminated []int, err error) {
	if len(candidates) == 0 {
		return nil, nil, nil
	}
	pairs := AppendPivotPairs(make([][2]item.Item, 0, len(candidates)), x, candidates)
	winners, err := o.CompareBatch(ctx, pairs)
	if err != nil {
		return nil, nil, err
	}
	survivors, eliminated = ScorePivot(x, candidates, winners)
	return survivors, eliminated, nil
}

// lossShards is the number of independently locked stripes of a
// LossTracker, fixed at a power of two so the stripe index is a mask.
const lossShards = 64

// lossShard is one stripe: a mutex and the loser → distinct-winner sets it
// owns.
type lossShard struct {
	mu     sync.Mutex
	losses map[int]map[int]struct{}
}

// LossTracker implements the second Appendix A optimization: it counts, for
// every element, losses against *distinct* opponents across all filter
// iterations. By Lemma 1, an element with more than un(n) distinct-opponent
// losses cannot be the maximum and can be discarded early.
//
// Safe for concurrent use, and — unlike the previous single-mutex design —
// not a serialization point under the batch scheduler: entries are striped
// across 64 independently locked shards by loser ID, so goroutines
// recording losses for different elements almost never share a lock. The
// counts are set cardinalities, so recording order is irrelevant to the
// final state.
type LossTracker struct {
	shards [lossShards]lossShard
}

// NewLossTracker returns an empty tracker.
func NewLossTracker() *LossTracker {
	t := &LossTracker{}
	for i := range t.shards {
		t.shards[i].losses = make(map[int]map[int]struct{})
	}
	return t
}

// lossShard returns the stripe owning the loser ID.
func (t *LossTracker) shard(loser int) *lossShard {
	h := uint64(loser) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &t.shards[h&(lossShards-1)]
}

// Record notes that loser lost a comparison to winner.
func (t *LossTracker) Record(loser, winner int) {
	s := t.shard(loser)
	s.mu.Lock()
	set, ok := s.losses[loser]
	if !ok {
		set = make(map[int]struct{})
		s.losses[loser] = set
	}
	set[winner] = struct{}{}
	s.mu.Unlock()
}

// Losses returns the number of distinct opponents the element has lost to.
func (t *LossTracker) Losses(id int) int {
	s := t.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.losses[id])
}
