// Package tournament provides the comparison-tournament machinery shared by
// the paper's algorithms: billed (and optionally memoized) comparison
// oracles, all-play-all (round-robin) tournaments, pivot elimination passes,
// and the cross-iteration loss counters of Appendix A.
//
// Memoization implements the first Appendix A optimization — "avoid
// repeating the comparison of two elements multiple times by the same type
// of workers. … The algorithm will keep an n × n table containing in cell
// (i, j) the result of the first comparison between element ei and ej."
// Besides saving money, memoization is what makes 2-MaxFind terminate
// against adversarial tie-breaking: the pivot's tournament wins must carry
// over to its elimination pass.
package tournament

import (
	"sync"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

// Memo caches the first answer to every unordered pair for one worker
// class. Safe for concurrent use.
type Memo struct {
	mu sync.Mutex
	m  map[[2]int]int // unordered pair → winner ID
}

// NewMemo returns an empty memo table.
func NewMemo() *Memo { return &Memo{m: make(map[[2]int]int)} }

// lookup returns the cached winner ID for the pair, if any.
func (m *Memo) lookup(a, b int) (int, bool) {
	m.mu.Lock()
	w, ok := m.m[key(a, b)]
	m.mu.Unlock()
	return w, ok
}

// store records the winner ID for the pair.
func (m *Memo) store(a, b, winner int) {
	m.mu.Lock()
	m.m[key(a, b)] = winner
	m.mu.Unlock()
}

// Len returns the number of cached pairs.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

func key(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Oracle answers comparison requests by forwarding them to a worker
// comparator, billing each paid comparison to a ledger under the worker's
// class, and optionally serving repeats from a memo table for free.
type Oracle struct {
	cmp    worker.Comparator
	class  worker.Class
	ledger *cost.Ledger
	memo   *Memo
}

// NewOracle binds a comparator of the given class to a ledger. memo may be
// nil to disable memoization (used by the ablation benchmarks).
func NewOracle(cmp worker.Comparator, class worker.Class, ledger *cost.Ledger, memo *Memo) *Oracle {
	return &Oracle{cmp: cmp, class: class, ledger: ledger, memo: memo}
}

// Class returns the billing class of this oracle.
func (o *Oracle) Class() worker.Class { return o.class }

// Memoized reports whether this oracle serves repeated pairs from a memo
// table. Algorithms that rely on independent repeated answers (majority
// vote over repetitions) must use a non-memoized oracle.
func (o *Oracle) Memoized() bool { return o.memo != nil }

// Compare returns the winner of the comparison, billing it unless served
// from the memo.
func (o *Oracle) Compare(a, b item.Item) item.Item {
	if o.memo != nil {
		if w, ok := o.memo.lookup(a.ID, b.ID); ok {
			if o.ledger != nil {
				o.ledger.MemoHit(o.class)
			}
			if w == a.ID {
				return a
			}
			return b
		}
	}
	winner := o.cmp.Compare(a, b)
	if o.ledger != nil {
		o.ledger.Charge(o.class)
	}
	if o.memo != nil {
		o.memo.store(a.ID, b.ID, winner.ID)
	}
	return winner
}

// Step records one logical step (batch round) on the oracle's ledger.
func (o *Oracle) Step() {
	if o.ledger != nil {
		o.ledger.Step()
	}
}

// Result holds the outcome of an all-play-all tournament.
type Result struct {
	// Items are the participants, in input order.
	Items []item.Item
	// Wins[i] is the number of comparisons Items[i] won.
	Wins []int
	// Losers[i] lists, for Items[i], the IDs of the opponents it lost to.
	Losers [][]int
}

// TopByWins returns the participant with the most wins, ties broken by
// input order.
func (r Result) TopByWins() item.Item {
	best := 0
	for i := 1; i < len(r.Items); i++ {
		if r.Wins[i] > r.Wins[best] {
			best = i
		}
	}
	return r.Items[best]
}

// MinByWins returns the participant with the fewest wins, ties broken by
// input order (used by the randomized Algorithm 5, which removes "the
// minimal element … with ties broken arbitrarily").
func (r Result) MinByWins() item.Item {
	best := 0
	for i := 1; i < len(r.Items); i++ {
		if r.Wins[i] < r.Wins[best] {
			best = i
		}
	}
	return r.Items[best]
}

// RoundRobin plays an all-play-all tournament among items using the oracle:
// every unordered pair is compared exactly once. The whole tournament is
// submitted as one batch of independent comparisons — a single logical step
// in the Section 3 execution model.
func RoundRobin(items []item.Item, o *Oracle) Result {
	n := len(items)
	r := Result{
		Items:  items,
		Wins:   make([]int, n),
		Losers: make([][]int, n),
	}
	pairs := make([][2]item.Item, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]item.Item{items[i], items[j]})
		}
	}
	winners := o.CompareBatch(pairs)
	p := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if winners[p].ID == items[i].ID {
				r.Wins[i]++
				r.Losers[j] = append(r.Losers[j], items[i].ID)
			} else {
				r.Wins[j]++
				r.Losers[i] = append(r.Losers[i], items[j].ID)
			}
			p++
		}
	}
	return r
}

// PivotPass compares pivot x against every element of candidates (skipping x
// itself) in one logical step and returns the survivors — the elements that
// did NOT lose to x — and the IDs of the eliminated elements. This is
// step 4 of 2-MaxFind: "Compare x against all candidate elements and
// eliminate all elements that lose to x." The pivot itself always survives.
func PivotPass(x item.Item, candidates []item.Item, o *Oracle) (survivors []item.Item, eliminated []int) {
	if len(candidates) == 0 {
		return nil, nil
	}
	pairs := make([][2]item.Item, 0, len(candidates))
	for _, c := range candidates {
		if c.ID != x.ID {
			pairs = append(pairs, [2]item.Item{x, c})
		}
	}
	winners := o.CompareBatch(pairs)
	survivors = make([]item.Item, 0, len(candidates))
	p := 0
	for _, c := range candidates {
		if c.ID == x.ID {
			survivors = append(survivors, c)
			continue
		}
		if winners[p].ID == x.ID {
			eliminated = append(eliminated, c.ID)
		} else {
			survivors = append(survivors, c)
		}
		p++
	}
	return survivors, eliminated
}

// LossTracker implements the second Appendix A optimization: it counts, for
// every element, losses against *distinct* opponents across all filter
// iterations. By Lemma 1, an element with more than un(n) distinct-opponent
// losses cannot be the maximum and can be discarded early.
type LossTracker struct {
	losses map[int]map[int]struct{}
}

// NewLossTracker returns an empty tracker.
func NewLossTracker() *LossTracker {
	return &LossTracker{losses: make(map[int]map[int]struct{})}
}

// Record notes that loser lost a comparison to winner.
func (t *LossTracker) Record(loser, winner int) {
	s, ok := t.losses[loser]
	if !ok {
		s = make(map[int]struct{})
		t.losses[loser] = s
	}
	s[winner] = struct{}{}
}

// Losses returns the number of distinct opponents the element has lost to.
func (t *LossTracker) Losses(id int) int { return len(t.losses[id]) }
