// Package tournament provides the comparison-tournament machinery shared by
// the paper's algorithms: billed (and optionally memoized) comparison
// oracles, all-play-all (round-robin) tournaments, pivot elimination passes,
// and the cross-iteration loss counters of Appendix A.
//
// Memoization implements the first Appendix A optimization — "avoid
// repeating the comparison of two elements multiple times by the same type
// of workers. … The algorithm will keep an n × n table containing in cell
// (i, j) the result of the first comparison between element ei and ej."
// Besides saving money, memoization is what makes 2-MaxFind terminate
// against adversarial tie-breaking: the pivot's tournament wins must carry
// over to its elimination pass.
//
// # Dispatch
//
// Every comparison flows through the internal/dispatch layer: an Oracle
// consults its hard Budget (when attached) before performing a comparison,
// checks its context for cancellation, and — when a dispatch.Backend is
// attached — submits the comparison as a cancellable, fallible request
// instead of calling the in-process comparator directly. The default oracle
// (no backend, no budget) keeps the historical hot path: a direct comparator
// call behind nil checks.
//
// # Concurrency
//
// Memo, LossTracker, Budget, and Oracle's billing are safe for concurrent
// use: the memo is sharded across independently locked stripes, the loss
// tracker is mutex-guarded, the budget is mutex-guarded with all-or-nothing
// spending, and the ledger (cost.Ledger) is atomic. An Oracle may therefore
// be shared by the goroutines of a parallel batch evaluation provided its
// underlying worker.Comparator (or dispatch.Backend) is itself safe for
// concurrent use — see Oracle.ParallelBatch.
package tournament

import (
	"context"
	"sort"
	"sync"

	"crowdmax/internal/cost"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/parallel"
	"crowdmax/internal/worker"
)

// The observability layer mirrors the ledger's class space with its own
// constant (obs must not import cost, so the low-level parallel pool can use
// it). Fail the build if they ever drift.
const (
	_ = uint(cost.MaxClasses - obs.NumClasses)
	_ = uint(obs.NumClasses - cost.MaxClasses)
)

// memoShards is the number of independently locked stripes of a Memo. The
// count is fixed (a power of two, so the shard index is a mask) and sized so
// that even a pool of tens of goroutines rarely contends on one stripe.
const memoShards = 64

// memoShard is one stripe: a mutex and the slice of the pair table it owns.
type memoShard struct {
	mu sync.Mutex
	m  map[[2]int]int // unordered pair → winner ID
}

// Memo caches the first answer to every unordered pair for one worker
// class. Safe for concurrent use: entries are striped across 64 shards by
// pair hash, so goroutines touching different pairs almost never share a
// lock, and a pair's answer is frozen by whichever goroutine stores it
// first.
type Memo struct {
	shards [memoShards]memoShard
}

// NewMemo returns an empty memo table.
func NewMemo() *Memo {
	m := &Memo{}
	for i := range m.shards {
		m.shards[i].m = make(map[[2]int]int)
	}
	return m
}

// shard returns the stripe owning the (ordered) pair key.
func (m *Memo) shard(k [2]int) *memoShard {
	// SplitMix64-style avalanche over the two IDs; cheap and uniform.
	h := uint64(k[0])*0x9e3779b97f4a7c15 ^ uint64(k[1])*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return &m.shards[h&(memoShards-1)]
}

// lookup returns the cached winner ID for the pair, if any.
func (m *Memo) lookup(a, b int) (int, bool) {
	k := key(a, b)
	s := m.shard(k)
	s.mu.Lock()
	w, ok := s.m[k]
	s.mu.Unlock()
	return w, ok
}

// store records the winner ID for the pair. The first store wins: a
// concurrent duplicate answer for the same pair does not overwrite the
// frozen one, so every observer agrees on the pair's answer forever after.
func (m *Memo) store(a, b, winner int) {
	k := key(a, b)
	s := m.shard(k)
	s.mu.Lock()
	if _, ok := s.m[k]; !ok {
		s.m[k] = winner
	}
	s.mu.Unlock()
}

// Len returns the number of cached pairs.
func (m *Memo) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Entries returns every cached (a, b, winner) triple with a < b, sorted by
// (a, b) — the deterministic serialization order the checkpoint codec
// requires. Safe for concurrent use (each stripe is locked while copied).
func (m *Memo) Entries() [][3]int {
	var out [][3]int
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, w := range s.m {
			out = append(out, [3]int{k[0], k[1], w})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Prime pre-loads the answer for one pair — how a resumed session replays a
// checkpoint's frozen answers. Like store, the first answer for a pair wins.
func (m *Memo) Prime(a, b, winner int) { m.store(a, b, winner) }

func key(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Oracle answers comparison requests by dispatching them to a worker
// comparator (or a dispatch.Backend), billing each paid comparison to a
// ledger under the worker's class, and optionally serving repeats from a
// memo table for free. A hard dispatch.Budget may be attached: every paid
// comparison is pre-charged against it all-or-nothing, so a cap is never
// exceeded, and a refused comparison surfaces dispatch.ErrBudgetExhausted
// to the algorithm.
//
// The oracle's own bookkeeping (ledger, memo, budget) is safe for
// concurrent use; whether concurrent Compare calls are safe overall depends
// solely on the underlying comparator or backend. See ParallelBatch for the
// opt-in that lets CompareBatch exploit this.
type Oracle struct {
	cmp          worker.Comparator
	backend      dispatch.Backend
	budget       *dispatch.Budget
	class        worker.Class
	ledger       *cost.Ledger
	memo         *Memo
	batchWorkers int
	obs          *obs.Scope
}

// NewOracle binds a comparator of the given class to a ledger. memo may be
// nil to disable memoization (used by the ablation benchmarks).
func NewOracle(cmp worker.Comparator, class worker.Class, ledger *cost.Ledger, memo *Memo) *Oracle {
	return &Oracle{cmp: cmp, class: class, ledger: ledger, memo: memo}
}

// NewBackendOracle binds a dispatch backend of the given class to a ledger;
// every comparison is submitted as a dispatch request (cancellable,
// fallible) instead of an in-process comparator call. memo may be nil to
// disable memoization.
func NewBackendOracle(b dispatch.Backend, class worker.Class, ledger *cost.Ledger, memo *Memo) *Oracle {
	return &Oracle{backend: b, class: class, ledger: ledger, memo: memo}
}

// WithBackend routes the oracle's comparisons through b (replacing the
// direct comparator call); returns the oracle for chaining. The underlying
// comparator, if any, is still used for the BatchComparator fast path when b
// is nil.
func (o *Oracle) WithBackend(b dispatch.Backend) *Oracle {
	o.backend = b
	return o
}

// WithBudget attaches a hard spend budget: every paid comparison is
// pre-charged against it and refused with dispatch.ErrBudgetExhausted once
// a cap would be exceeded. Memo hits stay free. A nil budget (the default)
// costs one nil check per comparison. Returns the oracle for chaining.
func (o *Oracle) WithBudget(b *dispatch.Budget) *Oracle {
	o.budget = b
	return o
}

// Budget returns the attached budget, nil when unconstrained.
func (o *Oracle) Budget() *dispatch.Budget { return o.budget }

// ParallelBatch opts the oracle into evaluating the non-memoized remainder
// of each CompareBatch concurrently on up to workers goroutines (workers ≤ 0
// selects runtime.GOMAXPROCS(0)); it returns the oracle for chaining.
//
// The caller asserts that the underlying comparator is stateless-safe: its
// Compare must be callable from multiple goroutines and its answers must not
// depend on call order (e.g. worker.Truth, or a worker.Threshold with
// Epsilon == 0 and an order-independent tie policy such as worker.HashTie).
// An order-dependent comparator would make results vary with scheduling,
// destroying the engine's bit-for-bit determinism guarantee. Comparators
// that implement BatchComparator (the platform simulator) are never fanned
// out — they receive the whole batch in one call, as before.
func (o *Oracle) ParallelBatch(workers int) *Oracle {
	o.batchWorkers = parallel.Normalize(workers)
	return o
}

// WithObs attaches an observability scope: comparison and memo-table
// counters accrue to the scope's metrics, and the algorithms driving this
// oracle label their trace events with the scope's trial and phase. A nil
// scope (the default) keeps the hot path at a single nil check. Returns the
// oracle for chaining.
func (o *Oracle) WithObs(s *obs.Scope) *Oracle {
	o.obs = s
	return o
}

// Obs returns the oracle's observability scope, nil when detached.
func (o *Oracle) Obs() *obs.Scope { return o.obs }

// LedgerSnapshot copies the oracle's ledger counters (zero snapshot for an
// un-billed oracle); algorithms difference snapshots at phase boundaries to
// attribute costs per phase.
func (o *Oracle) LedgerSnapshot() cost.Snapshot { return o.ledger.Snapshot() }

// Class returns the billing class of this oracle.
func (o *Oracle) Class() worker.Class { return o.class }

// Memoized reports whether this oracle serves repeated pairs from a memo
// table. Algorithms that rely on independent repeated answers (majority
// vote over repetitions) must use a non-memoized oracle.
func (o *Oracle) Memoized() bool { return o.memo != nil }

// Compare returns the winner of the comparison, billing it unless served
// from the memo. Memo hits are free and never consult the budget or the
// context; a paid comparison first checks ctx, then pre-charges the budget
// (all-or-nothing), then dispatches — through the backend when one is
// attached, directly to the comparator otherwise. On a backend failure the
// budget charge is refunded, so failed dispatches never consume spend.
func (o *Oracle) Compare(ctx context.Context, a, b item.Item) (item.Item, error) {
	if o.memo != nil {
		if w, ok := o.memo.lookup(a.ID, b.ID); ok {
			if o.ledger != nil {
				o.ledger.MemoHit(o.class)
			}
			if o.obs != nil {
				o.obs.Memo(int(o.class), 1, 0)
			}
			if w == a.ID {
				return a, nil
			}
			return b, nil
		}
	}
	var winner item.Item
	if o.backend == nil && o.budget == nil {
		// Hot path (default configuration): direct comparator call behind
		// the cancellation check alone, no extra call frame.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return item.Item{}, err
			}
		}
		winner = o.cmp.Compare(a, b)
		if o.ledger != nil {
			o.ledger.Charge(o.class)
		}
	} else {
		var err error
		winner, err = o.ask(ctx, a, b)
		if err != nil {
			return item.Item{}, err
		}
	}
	if o.obs != nil {
		o.obs.Comparisons(int(o.class), 1)
		if o.memo != nil {
			o.obs.Memo(int(o.class), 0, 1)
		}
	}
	if o.memo != nil {
		o.memo.store(a.ID, b.ID, winner.ID)
	}
	return winner, nil
}

// ask performs one paid (non-memoized) comparison: ctx check, budget
// pre-charge, dispatch, ledger charge. The nil-backend, nil-budget path —
// the default configuration and the hot path of every benchmark — costs two
// nil checks and one ctx.Err() call on top of the historical direct
// comparator call.
func (o *Oracle) ask(ctx context.Context, a, b item.Item) (item.Item, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return item.Item{}, err
		}
	}
	if o.budget != nil {
		if err := o.budget.Spend(o.class, 1); err != nil {
			return item.Item{}, err
		}
	}
	var winner item.Item
	if o.backend != nil {
		ans, err := o.backend.Answer(ctx, dispatch.Request{A: a, B: b, Class: o.class})
		if err != nil {
			if o.budget != nil {
				o.budget.Refund(o.class, 1)
			}
			return item.Item{}, err
		}
		winner = ans.Winner
	} else {
		winner = o.cmp.Compare(a, b)
	}
	if o.ledger != nil {
		o.ledger.Charge(o.class)
	}
	return winner, nil
}

// Step records one logical step (batch round) on the oracle's ledger.
func (o *Oracle) Step() {
	if o.ledger != nil {
		o.ledger.Step()
	}
}

// Result holds the outcome of an all-play-all tournament.
type Result struct {
	// Items are the participants, in input order.
	Items []item.Item
	// Wins[i] is the number of comparisons Items[i] won.
	Wins []int
	// Losers[i] lists, for Items[i], the IDs of the opponents it lost to.
	// Populated only by RoundRobinWith with RecordLosers set; nil
	// otherwise.
	Losers [][]int
}

// TopByWins returns the participant with the most wins, ties broken by
// input order.
func (r Result) TopByWins() item.Item {
	best := 0
	for i := 1; i < len(r.Items); i++ {
		if r.Wins[i] > r.Wins[best] {
			best = i
		}
	}
	return r.Items[best]
}

// MinByWins returns the participant with the fewest wins, ties broken by
// input order (used by the randomized Algorithm 5, which removes "the
// minimal element … with ties broken arbitrarily").
func (r Result) MinByWins() item.Item {
	best := 0
	for i := 1; i < len(r.Items); i++ {
		if r.Wins[i] < r.Wins[best] {
			best = i
		}
	}
	return r.Items[best]
}

// RoundRobinOpts configures RoundRobinWith.
type RoundRobinOpts struct {
	// RecordLosers fills Result.Losers with each participant's defeaters.
	// Recording costs one slice and up to n−1 appends per participant, so
	// it is off by default; only callers that consume the loss lists (the
	// Appendix A loss tracking, 2-MaxFind's victim carry-over) opt in.
	RecordLosers bool
}

// RoundRobin plays an all-play-all tournament among items using the oracle:
// every unordered pair is compared exactly once. The whole tournament is
// submitted as one batch of independent comparisons — a single logical step
// in the Section 3 execution model. Result.Losers is not recorded; use
// RoundRobinWith to opt in. On cancellation or budget exhaustion the error
// is returned and the Result is unusable.
func RoundRobin(ctx context.Context, items []item.Item, o *Oracle) (Result, error) {
	return RoundRobinWith(ctx, items, o, RoundRobinOpts{})
}

// RoundRobinWith is RoundRobin with options.
func RoundRobinWith(ctx context.Context, items []item.Item, o *Oracle, opts RoundRobinOpts) (Result, error) {
	n := len(items)
	if m := obs.Active(); m != nil {
		m.ObserveGroup(n)
	}
	r := Result{
		Items: items,
		Wins:  make([]int, n),
	}
	if opts.RecordLosers {
		r.Losers = make([][]int, n)
	}
	pairs := make([][2]item.Item, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]item.Item{items[i], items[j]})
		}
	}
	winners, err := o.CompareBatch(ctx, pairs)
	if err != nil {
		return Result{}, err
	}
	p := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if winners[p].ID == items[i].ID {
				r.Wins[i]++
				if opts.RecordLosers {
					r.Losers[j] = append(r.Losers[j], items[i].ID)
				}
			} else {
				r.Wins[j]++
				if opts.RecordLosers {
					r.Losers[i] = append(r.Losers[i], items[j].ID)
				}
			}
			p++
		}
	}
	return r, nil
}

// PivotPass compares pivot x against every element of candidates (skipping x
// itself) in one logical step and returns the survivors — the elements that
// did NOT lose to x — and the IDs of the eliminated elements. This is
// step 4 of 2-MaxFind: "Compare x against all candidate elements and
// eliminate all elements that lose to x." The pivot itself always survives.
// On cancellation or budget exhaustion the error is returned with nil
// survivors.
func PivotPass(ctx context.Context, x item.Item, candidates []item.Item, o *Oracle) (survivors []item.Item, eliminated []int, err error) {
	if len(candidates) == 0 {
		return nil, nil, nil
	}
	pairs := make([][2]item.Item, 0, len(candidates))
	for _, c := range candidates {
		if c.ID != x.ID {
			pairs = append(pairs, [2]item.Item{x, c})
		}
	}
	winners, err := o.CompareBatch(ctx, pairs)
	if err != nil {
		return nil, nil, err
	}
	survivors = make([]item.Item, 0, len(candidates))
	p := 0
	for _, c := range candidates {
		if c.ID == x.ID {
			survivors = append(survivors, c)
			continue
		}
		if winners[p].ID == x.ID {
			eliminated = append(eliminated, c.ID)
		} else {
			survivors = append(survivors, c)
		}
		p++
	}
	return survivors, eliminated, nil
}

// LossTracker implements the second Appendix A optimization: it counts, for
// every element, losses against *distinct* opponents across all filter
// iterations. By Lemma 1, an element with more than un(n) distinct-opponent
// losses cannot be the maximum and can be discarded early.
//
// Safe for concurrent use: Record and Losses may be called from multiple
// goroutines (the counts are set-cardinalities, so recording order is
// irrelevant to the final state).
type LossTracker struct {
	mu     sync.Mutex
	losses map[int]map[int]struct{}
}

// NewLossTracker returns an empty tracker.
func NewLossTracker() *LossTracker {
	return &LossTracker{losses: make(map[int]map[int]struct{})}
}

// Record notes that loser lost a comparison to winner.
func (t *LossTracker) Record(loser, winner int) {
	t.mu.Lock()
	s, ok := t.losses[loser]
	if !ok {
		s = make(map[int]struct{})
		t.losses[loser] = s
	}
	s[winner] = struct{}{}
	t.mu.Unlock()
}

// Losses returns the number of distinct opponents the element has lost to.
func (t *LossTracker) Losses(id int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.losses[id])
}
