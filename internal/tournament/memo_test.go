package tournament

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemoFirstStoreWins(t *testing.T) {
	m := NewMemo()
	m.store(1, 2, 2)
	m.store(1, 2, 1) // later, conflicting store must lose
	m.store(2, 1, 1) // either pair order hits the same cell
	if w, ok := m.lookup(1, 2); !ok || w != 2 {
		t.Fatalf("lookup(1,2) = %d,%v, want 2,true", w, ok)
	}
	if w, ok := m.lookup(2, 1); !ok || w != 2 {
		t.Fatalf("lookup(2,1) = %d,%v, want 2,true", w, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMemoLookupMiss(t *testing.T) {
	m := NewMemo()
	if _, ok := m.lookup(3, 4); ok {
		t.Fatal("empty memo reported a hit")
	}
	m.store(3, 4, 4)
	if _, ok := m.lookup(3, 5); ok {
		t.Fatal("unrelated pair reported a hit")
	}
}

func TestMemoSelfPair(t *testing.T) {
	m := NewMemo()
	m.store(7, 7, 7)
	if w, ok := m.lookup(7, 7); !ok || w != 7 {
		t.Fatalf("lookup(7,7) = %d,%v, want 7,true", w, ok)
	}
}

// TestMemoGrowth drives the table well past its initial capacity so the
// append-only growth chain (new tables installed by CAS, old ones retained
// and scanned newest-first) is exercised, then verifies every entry is still
// served correctly.
func TestMemoGrowth(t *testing.T) {
	m := NewMemo()
	const n = 300 // 300*299/2 = 44850 pairs ≫ the 1024-slot initial table
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			winner := a
			if (a+b)%3 == 0 {
				winner = b
			}
			m.store(a, b, winner)
		}
	}
	want := n * (n - 1) / 2
	if m.Len() != want {
		t.Fatalf("Len = %d, want %d", m.Len(), want)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			winner := a
			if (a+b)%3 == 0 {
				winner = b
			}
			if w, ok := m.lookup(b, a); !ok || w != winner {
				t.Fatalf("lookup(%d,%d) = %d,%v, want %d,true", b, a, w, ok, winner)
			}
		}
	}
}

// TestMemoEntriesSortedRoundTrip pins the contract the checkpoint codec
// depends on: Entries is sorted by (a, b) and Prime reconstructs an
// equivalent memo.
func TestMemoEntriesSortedRoundTrip(t *testing.T) {
	m := NewMemo()
	// Insert in a scrambled order.
	for i := 500; i > 0; i-- {
		a, b := (i*7)%97, (i*13)%89+97
		m.store(a, b, b)
	}
	entries := m.Entries()
	if len(entries) != m.Len() {
		t.Fatalf("Entries len %d != Len %d", len(entries), m.Len())
	}
	for i := 1; i < len(entries); i++ {
		p, q := entries[i-1], entries[i]
		if p[0] > q[0] || (p[0] == q[0] && p[1] >= q[1]) {
			t.Fatalf("Entries not strictly sorted at %d: %v then %v", i, p, q)
		}
	}
	clone := NewMemo()
	for _, e := range entries {
		clone.Prime(e[0], e[1], e[2])
	}
	for _, e := range entries {
		if w, ok := clone.lookup(e[0], e[1]); !ok || w != e[2] {
			t.Fatalf("clone.lookup(%d,%d) = %d,%v, want %d,true", e[0], e[1], w, ok, e[2])
		}
	}
}

func TestNewMemoSized(t *testing.T) {
	m := NewMemoSized(5000)
	for i := 0; i < 5000; i++ {
		m.store(i, i+100000, i)
	}
	if m.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", m.Len())
	}
}

func TestMemoPanicsOnUnpackableID(t *testing.T) {
	for _, bad := range [][2]int{{-1, 2}, {1 << 31, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("store(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewMemo().store(bad[0], bad[1], bad[0])
		}()
	}
}

// TestMemoConcurrentFirstStoreWins hammers one table from many goroutines —
// concurrent stores to overlapping keys with opposing winners, interleaved
// lookups, enough keys to force growth mid-race — and then verifies global
// consistency: every key holds one of the two proposed winners, and repeat
// lookups are stable. Run under -race this also proves the CAS protocol
// publishes entries safely.
func TestMemoConcurrentFirstStoreWins(t *testing.T) {
	m := NewMemo()
	const (
		workers = 8
		keys    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				a, b := k, k+keys
				winner := a
				if (w+k)%2 == 0 {
					winner = b
				}
				m.store(a, b, winner)
				if got, ok := m.lookup(a, b); ok && got != a && got != b {
					panic(fmt.Sprintf("lookup(%d,%d) returned non-member %d", a, b, got))
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		a, b := k, k+keys
		w1, ok1 := m.lookup(a, b)
		w2, ok2 := m.lookup(b, a)
		if !ok1 || !ok2 || w1 != w2 {
			t.Fatalf("key (%d,%d): unstable lookups %d,%v vs %d,%v", a, b, w1, ok1, w2, ok2)
		}
		if w1 != a && w1 != b {
			t.Fatalf("key (%d,%d): winner %d is not a member", a, b, w1)
		}
	}
}

// TestLossTrackerShardedConcurrent drives the sharded loss tracker from many
// goroutines recording overlapping (loser, winner) pairs and checks the
// distinct-opponent counts, including cross-shard losers.
func TestLossTrackerShardedConcurrent(t *testing.T) {
	lt := NewLossTracker()
	const (
		workers = 8
		losers  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for l := 0; l < losers; l++ {
				// Every worker records the same three winners per loser:
				// duplicates across goroutines must still count once each.
				lt.Record(l, 10_000+l)
				lt.Record(l, 20_000+l)
				lt.Record(l, 30_000+w%3) // partial overlap across workers
			}
		}(w)
	}
	wg.Wait()
	for l := 0; l < losers; l++ {
		got := lt.Losses(l)
		want := 2 + min(workers, 3) // two unique winners + overlapping set {30000..30002}
		if got != want {
			t.Fatalf("Losses(%d) = %d, want %d", l, got, want)
		}
	}
	if lt.Losses(999_999) != 0 {
		t.Fatal("unknown loser has losses")
	}
}
