package tournament

import (
	"context"
	"testing"
	"testing/quick"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

func items(values ...float64) []item.Item {
	out := make([]item.Item, len(values))
	for i, v := range values {
		out[i] = item.Item{ID: i, Value: v}
	}
	return out
}

func truthOracle(l *cost.Ledger, memo *Memo) *Oracle {
	return NewOracle(worker.Truth, worker.Naive, l, memo)
}

func TestRoundRobinGameCount(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 10, 17} {
		l := cost.NewLedger()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		res := mustRR(t, items(vals...), truthOracle(l, nil))
		want := int64(n * (n - 1) / 2)
		if l.Naive() != want {
			t.Errorf("n=%d: %d comparisons, want %d", n, l.Naive(), want)
		}
		totalWins := 0
		for _, w := range res.Wins {
			totalWins += w
		}
		if totalWins != n*(n-1)/2 {
			t.Errorf("n=%d: total wins %d != games %d", n, totalWins, n*(n-1)/2)
		}
	}
}

func TestRoundRobinTruthRanking(t *testing.T) {
	its := items(3, 9, 1, 7)
	res := mustRR(t, its, truthOracle(cost.NewLedger(), nil))
	// With the truthful comparator, wins = n − rank.
	wantWins := []int{1, 3, 0, 2}
	for i, w := range res.Wins {
		if w != wantWins[i] {
			t.Errorf("Wins[%d] = %d, want %d", i, w, wantWins[i])
		}
	}
	if res.TopByWins().ID != 1 {
		t.Errorf("TopByWins = %d, want 1", res.TopByWins().ID)
	}
	if res.MinByWins().ID != 2 {
		t.Errorf("MinByWins = %d, want 2", res.MinByWins().ID)
	}
}

func TestRoundRobinLosersRecorded(t *testing.T) {
	its := items(1, 2, 3)
	res := mustRRWith(t, its, truthOracle(cost.NewLedger(), nil), RoundRobinOpts{RecordLosers: true})
	if len(res.Losers[0]) != 2 { // value 1 loses to both
		t.Fatalf("Losers[0] = %v", res.Losers[0])
	}
	if len(res.Losers[2]) != 0 { // value 3 loses to none
		t.Fatalf("Losers[2] = %v", res.Losers[2])
	}
}

func TestRoundRobinLosersOptIn(t *testing.T) {
	// Loser recording is opt-in: the plain entry point must not allocate
	// the per-element loss lists it used to fill unconditionally.
	res := mustRR(t, items(1, 2, 3, 4), truthOracle(cost.NewLedger(), nil))
	if res.Losers != nil {
		t.Fatalf("RoundRobin recorded losers without opt-in: %v", res.Losers)
	}
	// Wins are unaffected by the option.
	with := mustRRWith(t, items(1, 2, 3, 4), truthOracle(cost.NewLedger(), nil), RoundRobinOpts{RecordLosers: true})
	for i := range res.Wins {
		if res.Wins[i] != with.Wins[i] {
			t.Fatalf("Wins diverge at %d: %d vs %d", i, res.Wins[i], with.Wins[i])
		}
	}
}

func TestRoundRobinSingleLogicalStep(t *testing.T) {
	l := cost.NewLedger()
	mustRR(t, items(1, 2, 3, 4), truthOracle(l, nil))
	if l.Steps() != 1 {
		t.Fatalf("steps = %d, want 1", l.Steps())
	}
	// Degenerate tournaments are free.
	l2 := cost.NewLedger()
	mustRR(t, items(1), truthOracle(l2, nil))
	if l2.Steps() != 0 {
		t.Fatalf("singleton tournament recorded %d steps", l2.Steps())
	}
}

func TestTopTiesBrokenByInputOrder(t *testing.T) {
	// Cycle via a rigged comparator: everyone ends with equal wins.
	cycle := worker.Func(func(a, b item.Item) item.Item {
		if (a.ID+1)%3 == b.ID {
			return b
		}
		return a
	})
	o := NewOracle(cycle, worker.Naive, cost.NewLedger(), nil)
	res := mustRR(t, items(1, 2, 3), o)
	if res.TopByWins().ID != 0 || res.MinByWins().ID != 0 {
		t.Fatalf("tie break not by input order: top=%d min=%d",
			res.TopByWins().ID, res.MinByWins().ID)
	}
}

func TestMemoAvoidsRepeatBilling(t *testing.T) {
	l := cost.NewLedger()
	memo := NewMemo()
	o := truthOracle(l, memo)
	its := items(1, 2, 3, 4)
	mustRR(t, its, o)
	paid := l.Naive()
	mustRR(t, its, o) // identical tournament: all answers memoized
	if l.Naive() != paid {
		t.Fatalf("second tournament billed %d extra comparisons", l.Naive()-paid)
	}
	if l.MemoHits(worker.Naive) != paid {
		t.Fatalf("memo hits = %d, want %d", l.MemoHits(worker.Naive), paid)
	}
}

func TestMemoConsistentAnswers(t *testing.T) {
	// A random tie-breaking worker gives inconsistent answers; the memo
	// must freeze the first one.
	r := rng.New(1)
	w := worker.NewThreshold(100, 0, r) // everything under threshold
	memo := NewMemo()
	o := NewOracle(w, worker.Naive, cost.NewLedger(), memo)
	a, b := item.Item{ID: 0, Value: 1}, item.Item{ID: 1, Value: 2}
	first := mustCompare(t, o, a, b)
	for i := 0; i < 50; i++ {
		if mustCompare(t, o, a, b).ID != first.ID {
			t.Fatal("memoized answer changed")
		}
		if mustCompare(t, o, b, a).ID != first.ID {
			t.Fatal("memoized answer depends on argument order")
		}
	}
	if memo.Len() != 1 {
		t.Fatalf("memo size = %d, want 1", memo.Len())
	}
}

func TestOracleWithoutLedger(t *testing.T) {
	o := NewOracle(worker.Truth, worker.Expert, nil, nil)
	a, b := item.Item{ID: 0, Value: 1}, item.Item{ID: 1, Value: 2}
	if mustCompare(t, o, a, b).ID != 1 {
		t.Fatal("nil-ledger oracle broken")
	}
	o.Step() // must not panic
	if o.Class() != worker.Expert {
		t.Fatal("class accessor wrong")
	}
}

func TestPivotPass(t *testing.T) {
	its := items(5, 1, 9, 3, 7)
	x := its[2] // value 9 beats everyone
	l := cost.NewLedger()
	surv, elim := mustPivot(t, x, its, truthOracle(l, nil))
	if len(surv) != 1 || surv[0].ID != 2 {
		t.Fatalf("survivors = %v", surv)
	}
	if len(elim) != 4 {
		t.Fatalf("eliminated = %v", elim)
	}
	if l.Naive() != 4 { // pivot not compared against itself
		t.Fatalf("comparisons = %d, want 4", l.Naive())
	}
	if l.Steps() != 1 {
		t.Fatalf("steps = %d, want 1", l.Steps())
	}
}

func TestPivotPassKeepsWinners(t *testing.T) {
	its := items(5, 1, 9, 3, 7)
	x := its[0] // value 5: beats 1 and 3, loses to 9 and 7
	surv, elim := mustPivot(t, x, its, truthOracle(cost.NewLedger(), nil))
	if len(surv) != 3 {
		t.Fatalf("survivors = %v", surv)
	}
	if len(elim) != 2 {
		t.Fatalf("eliminated = %v", elim)
	}
	for _, s := range surv {
		if s.Value < 5 {
			t.Fatalf("element %v should have been eliminated", s)
		}
	}
}

func TestPivotPassEmpty(t *testing.T) {
	surv, elim := mustPivot(t, item.Item{ID: 0}, nil, truthOracle(cost.NewLedger(), nil))
	if surv != nil || elim != nil {
		t.Fatal("empty pass should be a no-op")
	}
}

func TestLossTrackerDistinctOpponents(t *testing.T) {
	tr := NewLossTracker()
	tr.Record(1, 2)
	tr.Record(1, 2) // same opponent: no double count
	tr.Record(1, 3)
	if got := tr.Losses(1); got != 2 {
		t.Fatalf("Losses(1) = %d, want 2", got)
	}
	if got := tr.Losses(2); got != 0 {
		t.Fatalf("Losses(2) = %d, want 0", got)
	}
}

func TestLemma2Property(t *testing.T) {
	// Lemma 2: in an all-play-all tournament among |A| elements, at most
	// 2r − 1 elements win at least |A| − r comparisons — for ANY outcome
	// pattern, so we test with a maximally confusing random worker.
	r := rng.New(42)
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw)%20 + 2
		rr := int(rRaw)%(n-1) + 1 // r < |A|
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		w := worker.NewThreshold(2, 0, r) // all comparisons arbitrary
		o := NewOracle(w, worker.Naive, nil, nil)
		res := mustRR(t, items(vals...), o)
		count := 0
		for _, wins := range res.Wins {
			if wins >= n-rr {
				count++
			}
		}
		return count <= 2*rr-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWinsPlusLossesProperty(t *testing.T) {
	// Every participant's wins + losses must equal n − 1.
	r := rng.New(7)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%15 + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		w := worker.NewThreshold(0.5, 0.3, r)
		res := mustRRWith(t, items(vals...), NewOracle(w, worker.Naive, nil, nil),
			RoundRobinOpts{RecordLosers: true})
		for i := range res.Items {
			if res.Wins[i]+len(res.Losers[i]) != n-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoizedAccessor(t *testing.T) {
	plain := NewOracle(worker.Truth, worker.Naive, nil, nil)
	memoized := NewOracle(worker.Truth, worker.Naive, nil, NewMemo())
	if plain.Memoized() || !memoized.Memoized() {
		t.Fatal("Memoized accessor wrong")
	}
}

func TestOracleStepBillsLedger(t *testing.T) {
	l := cost.NewLedger()
	o := NewOracle(worker.Truth, worker.Naive, l, nil)
	o.Step()
	if l.Steps() != 1 {
		t.Fatalf("steps = %d", l.Steps())
	}
}

// mustRR, mustRRWith and mustPivot run the tournament primitives under a
// background context and fail the test on error, keeping the happy-path
// assertions uncluttered.
func mustRR(t *testing.T, its []item.Item, o *Oracle) Result {
	t.Helper()
	res, err := RoundRobin(context.Background(), its, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustRRWith(t *testing.T, its []item.Item, o *Oracle, opts RoundRobinOpts) Result {
	t.Helper()
	res, err := RoundRobinWith(context.Background(), its, o, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustPivot(t *testing.T, x item.Item, its []item.Item, o *Oracle) ([]item.Item, []int) {
	t.Helper()
	surv, elim, err := PivotPass(context.Background(), x, its, o)
	if err != nil {
		t.Fatal(err)
	}
	return surv, elim
}

// mustCompare asks the oracle under a background context, failing the test
// on error.
func mustCompare(t *testing.T, o *Oracle, a, b item.Item) item.Item {
	t.Helper()
	w, err := o.Compare(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
