package tournament

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Memo caches the first answer to every unordered pair for one worker class
// — the n × n comparison table of Appendix A — as a lock-free hash table.
//
// Each entry is a single packed uint64 (both 31-bit item IDs, a winner bit,
// and an occupancy bit), published with one compare-and-swap into an
// open-addressed table of atomic words. Lookups are pure atomic loads and
// stores are a bounded linear probe ending in one CAS, so the memo never
// serializes the goroutines of a parallel batch the way the previous
// 64-stripe locked design could, and both operations are allocation-free in
// the steady state — the property the zero-alloc hot-path benchmarks assert.
//
// Within one table the first store for a pair wins outright: a losing CAS
// re-reads the slot and adopts the frozen answer. When a table fills, a
// larger one is atomically chained in front of it (tables are append-only
// and never migrated, so no entry is ever lost or re-homed); lookups probe
// newest-to-oldest and return the first match. Every path through Oracle
// serializes duplicate asks of one pair (CompareBatch deduplicates within a
// batch, batches on one run are ordered), so at every batch boundary each
// pair has exactly one reachable entry and every observer agrees on its
// answer forever after.
type Memo struct {
	head atomic.Pointer[memoTable]
}

// memoTable is one fixed-capacity open-addressed table in the memo's chain.
// Slots hold packed entries; zero means empty. count reserves occupancy
// before the publishing CAS, keeping live entries strictly under limit so a
// probe always terminates at an empty slot.
type memoTable struct {
	prev  *memoTable // older and smaller; immutable once chained behind
	mask  uint64     // len(slots) − 1 (capacity is a power of two)
	limit int64      // max entries before a larger table is chained in
	count atomic.Int64
	slots []atomic.Uint64
}

// Packed entry layout (single uint64):
//
//	bits 63..33  lo ID (the smaller of the pair, 31 bits)
//	bits 32..2   hi ID (the larger of the pair, 31 bits)
//	bit  1       winner-is-hi
//	bit  0       occupied (keeps every entry non-zero, even pair (0, 1))
const (
	memoIDLimit   = 1 << 31
	memoKeyMask   = ^uint64(3)
	memoWinnerBit = uint64(2)
	memoLiveBit   = uint64(1)

	// memoMinSlots is the initial table capacity of NewMemo; growth
	// quadruples, so even million-pair runs chain only a handful of tables.
	memoMinSlots = 1 << 10
	// memoGrowth is the capacity multiplier of each chained table.
	memoGrowth = 4
)

// NewMemo returns an empty memo table with the default initial capacity.
func NewMemo() *Memo { return NewMemoSized(0) }

// NewMemoSized returns an empty memo pre-sized for about pairs distinct
// entries, avoiding growth chaining when the caller can bound the number of
// comparisons up front (e.g. 4·n·un for a filter run). pairs ≤ 0 selects
// the default initial capacity.
func NewMemoSized(pairs int) *Memo {
	slots := memoMinSlots
	for int64(slots)*3/4 < int64(pairs) {
		slots *= memoGrowth
	}
	m := &Memo{}
	m.head.Store(newMemoTable(slots, nil))
	return m
}

func newMemoTable(slots int, prev *memoTable) *memoTable {
	return &memoTable{
		prev:  prev,
		mask:  uint64(slots - 1),
		limit: int64(slots) * 3 / 4,
		slots: make([]atomic.Uint64, slots),
	}
}

// packKey orders the pair and packs it into the key bits of an entry.
func packKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	if a < 0 || b >= memoIDLimit {
		panic(fmt.Sprintf("tournament: memo item IDs must be in [0, 2^31), got (%d, %d)", a, b))
	}
	return uint64(a)<<33 | uint64(b)<<2
}

// memoHash avalanches the key bits; cheap and uniform (SplitMix64 finalizer).
func memoHash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	return k ^ k>>31
}

// get probes one table for the key; returns the packed entry when present.
// Probes terminate at the first empty slot: entries are never deleted and
// occupancy stays under limit, so an absent key always meets a zero word.
func (t *memoTable) get(k uint64) (uint64, bool) {
	h := memoHash(k)
	for i := uint64(0); ; i++ {
		e := t.slots[(h+i)&t.mask].Load()
		if e == 0 {
			return 0, false
		}
		if e&memoKeyMask == k {
			return e, true
		}
	}
}

// entryWinner decodes an entry's winner ID given its key.
func entryWinner(e uint64) int {
	lo := int(e >> 33)
	hi := int(e >> 2 & (memoIDLimit - 1))
	if e&memoWinnerBit != 0 {
		return hi
	}
	return lo
}

// lookup returns the cached winner ID for the pair, if any.
func (m *Memo) lookup(a, b int) (int, bool) {
	k := packKey(a, b)
	for t := m.head.Load(); t != nil; t = t.prev {
		if e, ok := t.get(k); ok {
			return entryWinner(e), true
		}
	}
	return 0, false
}

// store records the winner ID for the pair. The first published entry for a
// pair is frozen: a concurrent duplicate answer does not overwrite it.
func (m *Memo) store(a, b, winner int) {
	k := packKey(a, b)
	e := k | memoLiveBit
	if hi := int(k >> 2 & (memoIDLimit - 1)); winner == hi && a != b {
		e |= memoWinnerBit
	}
	for {
		head := m.head.Load()
		for t := head; t != nil; t = t.prev {
			if _, ok := t.get(k); ok {
				return // frozen by an earlier store
			}
		}
		if head.tryInsert(k, e) {
			return
		}
		// The newest table is full (or filled while we probed): chain a
		// larger one in front and retry. The CAS admits exactly one grower;
		// losers simply observe the new head on retry.
		m.head.CompareAndSwap(head, newMemoTable(len(head.slots)*memoGrowth, head))
	}
}

// tryInsert publishes the entry into this table, or adopts a concurrent
// store of the same key. It reports false only when the table is at
// capacity, telling the caller to grow.
func (t *memoTable) tryInsert(k, e uint64) bool {
	h := memoHash(k)
	for i := uint64(0); i <= t.mask; i++ {
		s := &t.slots[(h+i)&t.mask]
		cur := s.Load()
		if cur == 0 {
			// Reserve occupancy before publishing so live entries never
			// reach capacity and probes always terminate.
			if t.count.Add(1) > t.limit {
				t.count.Add(-1)
				return false
			}
			if s.CompareAndSwap(0, e) {
				return true
			}
			t.count.Add(-1)
			cur = s.Load()
		}
		if cur&memoKeyMask == k {
			return true // frozen by a concurrent store
		}
	}
	return false
}

// Len returns the number of cached pairs.
func (m *Memo) Len() int {
	n := 0
	m.scan(func(uint64) { n++ })
	return n
}

// scan visits every reachable entry exactly once, newest table first, so a
// pair duplicated across tables by a store/grow race yields the entry
// lookup would return.
func (m *Memo) scan(fn func(e uint64)) {
	var seen map[uint64]struct{}
	for t := m.head.Load(); t != nil; t = t.prev {
		for i := range t.slots {
			e := t.slots[i].Load()
			if e == 0 {
				continue
			}
			if t.prev != nil || seen != nil {
				if seen == nil {
					seen = make(map[uint64]struct{})
				}
				k := e & memoKeyMask
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
			}
			fn(e)
		}
	}
}

// Entries returns every cached (a, b, winner) triple with a ≤ b, sorted by
// (a, b) — the deterministic serialization order the checkpoint codec
// requires. Safe for concurrent use (entries are atomic snapshots).
func (m *Memo) Entries() [][3]int {
	var out [][3]int
	m.scan(func(e uint64) {
		out = append(out, [3]int{int(e >> 33), int(e >> 2 & (memoIDLimit - 1)), entryWinner(e)})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Prime pre-loads the answer for one pair — how a resumed session replays a
// checkpoint's frozen answers. Like store, the first answer for a pair wins.
func (m *Memo) Prime(a, b, winner int) { m.store(a, b, winner) }
