package tournament

import (
	"context"
	"sync/atomic"

	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
)

// BatchComparator is implemented by comparison sources that can answer a
// batch of independent comparisons in one logical step — the execution
// model of Section 3 (following Venetis et al.): "In the s-th logical step,
// a batch Bs of pairwise comparisons is sent to the crowdsourcing
// platform." The platform simulator implements it; plain workers answer
// batches element-wise.
type BatchComparator interface {
	// CompareBatch returns the winner of each pair, parallel to pairs.
	CompareBatch(pairs [][2]item.Item) []item.Item
}

// BatchScratch holds the reusable working buffers of CompareBatchInto. The
// zero value is ready to use; a scratch retained across calls (the DAG
// scheduler keeps one per frontier) makes the fully-memoized batch path
// allocation-free. A BatchScratch must not be shared by concurrent calls.
type BatchScratch struct {
	todo   []int
	sub    [][2]item.Item
	subIdx []int
	dups   []int
	seen   map[uint64]struct{}
}

// markSeen records the pair key, reporting whether it was already present.
// The map is lazily created and reused (cleared) across calls.
func (s *BatchScratch) markSeen(k uint64) bool {
	if s.seen == nil {
		s.seen = make(map[uint64]struct{})
	}
	if _, ok := s.seen[k]; ok {
		return true
	}
	s.seen[k] = struct{}{}
	return false
}

// CompareBatch answers a batch of comparisons: memoized pairs are served
// for free, the remainder is forwarded to the underlying comparator — in
// one call when it implements BatchComparator, element-wise otherwise —
// and exactly one logical step is billed when anything is actually sent.
// It allocates the winners slice and working buffers per call; the
// scheduler hot path uses CompareBatchInto with retained buffers instead.
func (o *Oracle) CompareBatch(ctx context.Context, pairs [][2]item.Item) ([]item.Item, error) {
	winners := make([]item.Item, len(pairs))
	var s BatchScratch
	if err := o.CompareBatchInto(ctx, pairs, winners, &s); err != nil {
		return nil, err
	}
	return winners, nil
}

// CompareBatchInto is CompareBatch writing into caller-owned storage:
// winners must have len(pairs) slots, and scratch provides the working
// buffers, reused across calls. With every pair memoized — the steady state
// of repeated tournaments — the call performs no allocation at all, which
// is what lets the DAG scheduler's dispatch overhead stay out of the hot
// path (asserted by the allocs/op benchmarks).
//
// A batch submitted to a BatchComparator is pre-charged against the budget
// all-or-nothing, so a hard cap is never exceeded even by a platform batch;
// element-wise paths charge pair by pair through the dispatch seam.
//
// Duplicate pairs within one batch are asked only once when memoization is
// enabled (the platform would be asked once and the answer reused), and
// independently otherwise.
//
// On cancellation, budget exhaustion or backend failure the error is
// returned and winners is unusable; comparisons already performed remain
// billed (they really happened) and memoized.
//
// Observability counters are aggregated per batch: one atomic add for the
// paid comparisons and one for the memo hits, instead of one per pair, so
// the cost of an attached scope is negligible and the cost of a detached
// one (the default) is a nil check.
func (o *Oracle) CompareBatchInto(ctx context.Context, pairs [][2]item.Item, winners []item.Item, s *BatchScratch) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	s.todo = s.todo[:0]
	for i, p := range pairs {
		if o.memo != nil {
			if w, ok := o.memo.lookup(p[0].ID, p[1].ID); ok {
				winners[i] = pick(p, w)
				continue
			}
		}
		s.todo = append(s.todo, i)
	}
	hits := int64(len(pairs) - len(s.todo))
	if o.ledger != nil && hits > 0 {
		o.ledger.MemoHitN(o.class, hits)
	}
	if len(s.todo) == 0 {
		o.observeBatch(0, hits)
		return nil
	}
	if o.ledger != nil {
		o.ledger.Step()
	}
	if bc, ok := o.cmp.(BatchComparator); ok && o.backend == nil {
		return o.comparePlatform(bc, pairs, hits, winners, s)
	}
	if o.batchWorkers > 1 && len(s.todo) > 1 {
		paid, dupHits, err := o.compareParallel(ctx, pairs, winners, s)
		o.observeBatch(paid, hits+dupHits)
		return err
	}
	var paid int64
	for _, i := range s.todo {
		p := pairs[i]
		// A duplicate may have been memoized by an earlier element of
		// this same batch.
		if o.memo != nil {
			if w, ok := o.memo.lookup(p[0].ID, p[1].ID); ok {
				if o.ledger != nil {
					o.ledger.MemoHit(o.class)
				}
				hits++
				winners[i] = pick(p, w)
				continue
			}
		}
		w, err := o.ask(ctx, p[0], p[1])
		if err != nil {
			o.observeBatch(paid, hits)
			return err
		}
		paid++
		if o.memo != nil {
			o.memo.store(p[0].ID, p[1].ID, w.ID)
		}
		winners[i] = w
	}
	o.observeBatch(paid, hits)
	return nil
}

// comparePlatform answers the batch's todo remainder through a
// BatchComparator in one platform call, deduplicating repeated pairs when
// memoization is enabled. The whole platform batch is admitted or refused
// as a unit: a budget that cannot cover it refuses before anything is sent.
func (o *Oracle) comparePlatform(bc BatchComparator, pairs [][2]item.Item, hits int64, winners []item.Item, s *BatchScratch) error {
	s.sub, s.subIdx, s.dups = s.sub[:0], s.subIdx[:0], s.dups[:0]
	if o.memo == nil {
		for _, i := range s.todo {
			s.sub = append(s.sub, pairs[i])
		}
		s.subIdx = append(s.subIdx, s.todo...)
	} else {
		clear(s.seen)
		for _, i := range s.todo {
			if s.markSeen(packKey(pairs[i][0].ID, pairs[i][1].ID)) {
				s.dups = append(s.dups, i)
				continue
			}
			s.sub = append(s.sub, pairs[i])
			s.subIdx = append(s.subIdx, i)
		}
	}
	if o.budget != nil {
		if err := o.budget.Spend(o.class, int64(len(s.sub))); err != nil {
			return err
		}
	}
	res := bc.CompareBatch(s.sub)
	if o.ledger != nil {
		o.ledger.ChargeN(o.class, int64(len(s.subIdx)))
	}
	for j, i := range s.subIdx {
		if o.memo != nil {
			o.memo.store(pairs[i][0].ID, pairs[i][1].ID, res[j].ID)
		}
		winners[i] = res[j]
	}
	if o.ledger != nil && len(s.dups) > 0 {
		o.ledger.MemoHitN(o.class, int64(len(s.dups)))
	}
	for _, i := range s.dups {
		w, _ := o.memo.lookup(pairs[i][0].ID, pairs[i][1].ID)
		winners[i] = pick(pairs[i], w)
	}
	o.observeBatch(int64(len(s.subIdx)), hits+int64(len(s.dups)))
	return nil
}

// observeBatch records one batch's aggregate counts on the attached
// observability scope: paid comparisons, and — for memoized oracles — the
// memo table's hit/miss split (every paid comparison of a memoized oracle
// is a miss).
func (o *Oracle) observeBatch(paid, hits int64) {
	if o.obs == nil {
		return
	}
	o.obs.Comparisons(int(o.class), paid)
	if o.memo != nil {
		o.obs.Memo(int(o.class), hits, paid)
	}
}

// compareParallel answers the todo indices of pairs concurrently on the
// oracle's batch pool (see ParallelBatch) and returns the paid-comparison
// and duplicate-hit counts for the caller's observability aggregation.
// Duplicate pairs are separated first when memoization is enabled — exactly
// like the sequential path, which serves them as memo hits — so billing and
// answers are identical to a sequential run whenever the comparator is
// order-independent. Each worker writes only its own winners slot; ledger,
// memo and budget are concurrency-safe. Every pair goes through the same
// dispatch seam as Compare (ctx check, budget pre-charge, backend), so a
// cancelled or exhausted run stops promptly; parallel.For reports the error
// of the lowest failing index.
func (o *Oracle) compareParallel(ctx context.Context, pairs [][2]item.Item, winners []item.Item, s *BatchScratch) (paid, dupHits int64, err error) {
	sub := s.todo
	s.dups = s.dups[:0]
	if o.memo != nil {
		s.subIdx = s.subIdx[:0]
		clear(s.seen)
		for _, i := range s.todo {
			if s.markSeen(packKey(pairs[i][0].ID, pairs[i][1].ID)) {
				s.dups = append(s.dups, i)
				continue
			}
			s.subIdx = append(s.subIdx, i)
		}
		sub = s.subIdx
	}
	var nPaid atomic.Int64
	err = parallel.For(o.batchWorkers, len(sub), func(j int) error {
		i := sub[j]
		p := pairs[i]
		w, askErr := o.ask(ctx, p[0], p[1])
		if askErr != nil {
			return askErr
		}
		nPaid.Add(1)
		if o.memo != nil {
			o.memo.store(p[0].ID, p[1].ID, w.ID)
		}
		winners[i] = w
		return nil
	})
	if err != nil {
		return nPaid.Load(), 0, err
	}
	if o.ledger != nil && len(s.dups) > 0 {
		o.ledger.MemoHitN(o.class, int64(len(s.dups)))
	}
	for _, i := range s.dups {
		w, _ := o.memo.lookup(pairs[i][0].ID, pairs[i][1].ID)
		winners[i] = pick(pairs[i], w)
	}
	return nPaid.Load(), int64(len(s.dups)), nil
}

func pick(p [2]item.Item, winnerID int) item.Item {
	if winnerID == p[0].ID {
		return p[0]
	}
	return p[1]
}
