package tournament

import (
	"context"
	"sync/atomic"

	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
)

// BatchComparator is implemented by comparison sources that can answer a
// batch of independent comparisons in one logical step — the execution
// model of Section 3 (following Venetis et al.): "In the s-th logical step,
// a batch Bs of pairwise comparisons is sent to the crowdsourcing
// platform." The platform simulator implements it; plain workers answer
// batches element-wise.
type BatchComparator interface {
	// CompareBatch returns the winner of each pair, parallel to pairs.
	CompareBatch(pairs [][2]item.Item) []item.Item
}

// CompareBatch answers a batch of comparisons: memoized pairs are served
// for free, the remainder is forwarded to the underlying comparator — in
// one call when it implements BatchComparator, element-wise otherwise —
// and exactly one logical step is billed when anything is actually sent.
// A batch submitted to a BatchComparator is pre-charged against the budget
// all-or-nothing, so a hard cap is never exceeded even by a platform batch;
// element-wise paths charge pair by pair through the dispatch seam.
//
// Duplicate pairs within one batch are asked only once when memoization is
// enabled (the platform would be asked once and the answer reused), and
// independently otherwise.
//
// On cancellation, budget exhaustion or backend failure CompareBatch
// returns a nil slice and the error; comparisons already performed remain
// billed (they really happened) and memoized.
//
// Observability counters are aggregated per batch: one atomic add for the
// paid comparisons and one for the memo hits, instead of one per pair, so
// the cost of an attached scope is negligible and the cost of a detached
// one (the default) is a nil check.
func (o *Oracle) CompareBatch(ctx context.Context, pairs [][2]item.Item) ([]item.Item, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	winners := make([]item.Item, len(pairs))
	todo := make([]int, 0, len(pairs))
	for i, p := range pairs {
		if o.memo != nil {
			if w, ok := o.memo.lookup(p[0].ID, p[1].ID); ok {
				if o.ledger != nil {
					o.ledger.MemoHit(o.class)
				}
				winners[i] = pick(p, w)
				continue
			}
		}
		todo = append(todo, i)
	}
	hits := int64(len(pairs) - len(todo))
	if len(todo) == 0 {
		o.observeBatch(0, hits)
		return winners, nil
	}
	if o.ledger != nil {
		o.ledger.Step()
	}
	if bc, ok := o.cmp.(BatchComparator); ok && o.backend == nil {
		var sub [][2]item.Item
		var subIdx []int
		var dups []int
		if o.memo == nil {
			sub = make([][2]item.Item, len(todo))
			subIdx = todo
			for j, i := range todo {
				sub[j] = pairs[i]
			}
		} else {
			seen := make(map[[2]int]bool, len(todo))
			for _, i := range todo {
				k := key(pairs[i][0].ID, pairs[i][1].ID)
				if seen[k] {
					dups = append(dups, i)
					continue
				}
				seen[k] = true
				sub = append(sub, pairs[i])
				subIdx = append(subIdx, i)
			}
		}
		// The whole platform batch is admitted or refused as a unit: a
		// budget that cannot cover it refuses before anything is sent.
		if o.budget != nil {
			if err := o.budget.Spend(o.class, int64(len(sub))); err != nil {
				return nil, err
			}
		}
		res := bc.CompareBatch(sub)
		for j, i := range subIdx {
			o.settle(pairs[i], res[j], &winners[i])
		}
		for _, i := range dups {
			w, _ := o.memo.lookup(pairs[i][0].ID, pairs[i][1].ID)
			if o.ledger != nil {
				o.ledger.MemoHit(o.class)
			}
			winners[i] = pick(pairs[i], w)
		}
		o.observeBatch(int64(len(subIdx)), hits+int64(len(dups)))
		return winners, nil
	}
	if o.batchWorkers > 1 && len(todo) > 1 {
		paid, dupHits, err := o.compareParallel(ctx, pairs, todo, winners)
		o.observeBatch(paid, hits+dupHits)
		if err != nil {
			return nil, err
		}
		return winners, nil
	}
	var paid int64
	for _, i := range todo {
		p := pairs[i]
		// A duplicate may have been memoized by an earlier element of
		// this same batch.
		if o.memo != nil {
			if w, ok := o.memo.lookup(p[0].ID, p[1].ID); ok {
				if o.ledger != nil {
					o.ledger.MemoHit(o.class)
				}
				hits++
				winners[i] = pick(p, w)
				continue
			}
		}
		w, err := o.ask(ctx, p[0], p[1])
		if err != nil {
			o.observeBatch(paid, hits)
			return nil, err
		}
		paid++
		if o.memo != nil {
			o.memo.store(p[0].ID, p[1].ID, w.ID)
		}
		winners[i] = w
	}
	o.observeBatch(paid, hits)
	return winners, nil
}

// observeBatch records one batch's aggregate counts on the attached
// observability scope: paid comparisons, and — for memoized oracles — the
// memo table's hit/miss split (every paid comparison of a memoized oracle
// is a miss).
func (o *Oracle) observeBatch(paid, hits int64) {
	if o.obs == nil {
		return
	}
	o.obs.Comparisons(int(o.class), paid)
	if o.memo != nil {
		o.obs.Memo(int(o.class), hits, paid)
	}
}

// compareParallel answers the todo indices of pairs concurrently on the
// oracle's batch pool (see ParallelBatch) and returns the paid-comparison
// and duplicate-hit counts for the caller's observability aggregation.
// Duplicate pairs are separated first when memoization is enabled — exactly
// like the sequential path, which serves them as memo hits — so billing and
// answers are identical to a sequential run whenever the comparator is
// order-independent. Each worker writes only its own winners slot; ledger,
// memo and budget are concurrency-safe. Every pair goes through the same
// dispatch seam as Compare (ctx check, budget pre-charge, backend), so a
// cancelled or exhausted run stops promptly; parallel.For reports the error
// of the lowest failing index.
func (o *Oracle) compareParallel(ctx context.Context, pairs [][2]item.Item, todo []int, winners []item.Item) (paid, dupHits int64, err error) {
	sub := todo
	var dups []int
	if o.memo != nil {
		sub = make([]int, 0, len(todo))
		seen := make(map[[2]int]bool, len(todo))
		for _, i := range todo {
			k := key(pairs[i][0].ID, pairs[i][1].ID)
			if seen[k] {
				dups = append(dups, i)
				continue
			}
			seen[k] = true
			sub = append(sub, i)
		}
	}
	var nPaid atomic.Int64
	err = parallel.For(o.batchWorkers, len(sub), func(j int) error {
		i := sub[j]
		p := pairs[i]
		w, askErr := o.ask(ctx, p[0], p[1])
		if askErr != nil {
			return askErr
		}
		nPaid.Add(1)
		if o.memo != nil {
			o.memo.store(p[0].ID, p[1].ID, w.ID)
		}
		winners[i] = w
		return nil
	})
	if err != nil {
		return nPaid.Load(), 0, err
	}
	for _, i := range dups {
		w, _ := o.memo.lookup(pairs[i][0].ID, pairs[i][1].ID)
		if o.ledger != nil {
			o.ledger.MemoHit(o.class)
		}
		winners[i] = pick(pairs[i], w)
	}
	return nPaid.Load(), int64(len(dups)), nil
}

// settle bills one fresh answer, memoizes it and records the winner.
func (o *Oracle) settle(p [2]item.Item, winner item.Item, out *item.Item) {
	if o.ledger != nil {
		o.ledger.Charge(o.class)
	}
	if o.memo != nil {
		o.memo.store(p[0].ID, p[1].ID, winner.ID)
	}
	*out = winner
}

func pick(p [2]item.Item, winnerID int) item.Item {
	if winnerID == p[0].ID {
		return p[0]
	}
	return p[1]
}
