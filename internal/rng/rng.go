// Package rng provides deterministic, splittable random number generation
// for reproducible simulations.
//
// Every experiment in this repository is driven by a single root seed.
// Trials, workers, and datasets each receive an independent child stream
// derived from the root seed and a textual label, so adding a new consumer
// of randomness never perturbs the streams of existing consumers. This is
// essential for the paper's experiments, where average-case curves are
// averages over many independently seeded trials.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand.Rand and adds
// derivation of independent child streams.
type Source struct {
	seed uint64
	*rand.Rand
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{
		seed: seed,
		Rand: rand.New(rand.NewSource(int64(mix(seed)))),
	}
}

// Seed returns the seed this Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Child derives an independent stream identified by label. Two Sources with
// the same seed produce identical children for identical labels, and
// (statistically) independent children for distinct labels.
func (s *Source) Child(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(mix(s.seed ^ h.Sum64()))
}

// ChildN derives an independent stream identified by label and an index,
// e.g. one stream per trial.
func (s *Source) ChildN(label string, n int) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(mix(s.seed ^ h.Sum64() ^ mix(uint64(n)+0x9e3779b97f4a7c15)))
}

// Bool returns a uniformly random boolean.
func (s *Source) Bool() bool { return s.Int63()&1 == 0 }

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return s.Float64() < p
	}
}

// UniformIn returns a uniform float64 in [lo, hi).
func (s *Source) UniformIn(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// mix is the SplitMix64 finalizer; it decorrelates structured seeds.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
