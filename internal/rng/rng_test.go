package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed sources agreed on %d/100 draws", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := New(7).Seed(); got != 7 {
		t.Fatalf("Seed() = %d, want 7", got)
	}
}

func TestChildDeterminism(t *testing.T) {
	a := New(99).Child("trial")
	b := New(99).Child("trial")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same-label children diverged at draw %d", i)
		}
	}
}

func TestChildLabelsIndependent(t *testing.T) {
	root := New(99)
	a, b := root.Child("alpha"), root.Child("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children with distinct labels agreed on %d/100 draws", same)
	}
}

func TestChildNDistinct(t *testing.T) {
	root := New(5)
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		v := root.ChildN("trial", i).Int63()
		if seen[v] {
			t.Fatalf("ChildN streams collided at index %d", i)
		}
		seen[v] = true
	}
}

func TestChildDoesNotConsumeParent(t *testing.T) {
	a, b := New(3), New(3)
	a.Child("x") // derivation must not advance the parent stream
	if a.Int63() != b.Int63() {
		t.Fatal("Child() advanced the parent stream")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 20; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(123)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %.3f", got)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(7)
	const trials = 20000
	trues := 0
	for i := 0; i < trials; i++ {
		if r.Bool() {
			trues++
		}
	}
	got := float64(trues) / trials
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("Bool() frequency = %.3f", got)
	}
}

func TestUniformInRange(t *testing.T) {
	r := New(11)
	f := func(lo, hi float64) bool {
		// Keep magnitudes where hi−lo cannot overflow.
		if math.IsNaN(lo) || math.IsNaN(hi) || math.Abs(lo) > 1e307 || math.Abs(hi) > 1e307 {
			return true
		}
		if lo >= hi {
			lo, hi = hi-1, lo+1
		}
		v := r.UniformIn(lo, hi)
		// Allow v == hi: rounding of lo + (hi−lo)·f can land exactly on
		// hi for extreme ranges even though f < 1.
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformInMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += r.UniformIn(10, 20)
	}
	mean := sum / trials
	if math.Abs(mean-15) > 0.1 {
		t.Fatalf("UniformIn(10,20) mean = %.3f", mean)
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := mix(0xdeadbeef)
	total := 0
	for bit := 0; bit < 64; bit++ {
		diff := base ^ mix(0xdeadbeef^(1<<bit))
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		total += n
	}
	avg := float64(total) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("mix avalanche average = %.1f bits, want ≈32", avg)
	}
}
