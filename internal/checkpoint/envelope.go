package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"crowdmax/internal/faults"
)

// This file exports the container format and codec primitives the session
// checkpoint is built from, so other durable artifacts — the service layer's
// job records, future replay logs — share one framing, one corruption
// discipline, and one atomic-write path instead of reinventing them.
//
// An envelope is: a 4-byte magic, a u32 version, a u32 CRC-32C of the
// payload, a u64 payload length, then the payload. OpenEnvelope fails closed
// (ErrCorrupt, wrapped) on any mismatch, exactly like the session snapshot
// codec it was extracted from.

// SealEnvelope frames payload in the checkpoint container format under the
// given 4-byte magic and version.
func SealEnvelope(magic string, version uint32, payload []byte) []byte {
	if len(magic) != 4 {
		panic(fmt.Sprintf("checkpoint: envelope magic %q is not 4 bytes", magic))
	}
	out := make([]byte, headerSize+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[4:], version)
	binary.LittleEndian.PutUint32(out[8:], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(out[12:], uint64(len(payload)))
	copy(out[headerSize:], payload)
	return out
}

// OpenEnvelope validates data against the expected magic and version and
// returns the payload. Every failure mode — short file, wrong magic, version
// skew, length mismatch, checksum mismatch — wraps ErrCorrupt.
func OpenEnvelope(magic string, version uint32, data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorrupt, len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, data[:4], magic)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, version)
	}
	wantSum := binary.LittleEndian.Uint32(data[8:])
	n := binary.LittleEndian.Uint64(data[12:])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d does not match %d trailing bytes",
			ErrCorrupt, n, len(data)-headerSize)
	}
	body := data[headerSize:]
	if got := crc32.Checksum(body, castagnoli); got != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, wantSum, got)
	}
	return body, nil
}

// OpenEnvelopeAny validates data against the expected magic — but not a
// particular version — and returns the payload together with the version the
// file declares. Callers that support several codec revisions (the session
// snapshot reads v2 and v3) probe with this and dispatch on the version;
// every other failure mode still wraps ErrCorrupt.
func OpenEnvelopeAny(magic string, data []byte) ([]byte, uint32, error) {
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorrupt, len(data))
	}
	if string(data[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, data[:4], magic)
	}
	v := binary.LittleEndian.Uint32(data[4:])
	wantSum := binary.LittleEndian.Uint32(data[8:])
	n := binary.LittleEndian.Uint64(data[12:])
	if n != uint64(len(data)-headerSize) {
		return nil, 0, fmt.Errorf("%w: payload length %d does not match %d trailing bytes",
			ErrCorrupt, n, len(data)-headerSize)
	}
	body := data[headerSize:]
	if got := crc32.Checksum(body, castagnoli); got != wantSum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, wantSum, got)
	}
	return body, v, nil
}

// Builder is the append side of the little-endian payload codec: fixed-width
// integers, length-prefixed strings, IEEE-754 floats. Strings longer than
// the codec's cap are truncated, mirroring the decode-side bound.
type Builder struct{ p payload }

// Bytes returns the encoded payload so far.
func (b *Builder) Bytes() []byte { return b.p.b }

// U64 appends an unsigned 64-bit integer.
func (b *Builder) U64(v uint64) { b.p.u64(v) }

// I64 appends a signed 64-bit integer.
func (b *Builder) I64(v int64) { b.p.i64(v) }

// Bool appends a boolean as one byte.
func (b *Builder) Bool(v bool) { b.p.bool(v) }

// Str appends a length-prefixed string (truncated at the codec cap).
func (b *Builder) Str(s string) { b.p.str(s) }

// F64 appends a float64 as its IEEE-754 bits.
func (b *Builder) F64(v float64) { b.p.u64(math.Float64bits(v)) }

// Reader is the bounds-checked decode side of the payload codec. The first
// inconsistency latches an error wrapping ErrCorrupt and every subsequent
// read returns zero, so decode loops need a single error check at the end.
type Reader struct{ r reader }

// NewReader returns a Reader over an envelope payload.
func NewReader(payload []byte) *Reader { return &Reader{r: reader{b: payload}} }

// U64 reads an unsigned 64-bit integer.
func (r *Reader) U64() uint64 { return r.r.u64() }

// I64 reads a signed 64-bit integer.
func (r *Reader) I64() int64 { return r.r.i64() }

// Bool reads a one-byte boolean.
func (r *Reader) Bool() bool { return r.r.bool() }

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return r.r.str() }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.r.u64()) }

// Count reads a length prefix and validates it against the remaining bytes
// at elemSize bytes per element, so a forged length can never trigger a huge
// allocation. Returns -1 after a latched error.
func (r *Reader) Count(elemSize int) int64 { return r.r.count(elemSize) }

// Err returns the latched decode error, if any.
func (r *Reader) Err() error { return r.r.err }

// Done returns the latched decode error, or an ErrCorrupt-wrapping error
// when payload bytes remain unread — the standard end-of-decode check.
func (r *Reader) Done() error {
	if r.r.err != nil {
		return r.r.err
	}
	if len(r.r.b) != r.r.off {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.r.b)-r.r.off)
	}
	return nil
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory, an fsync, and a rename, creating parent directories as needed.
// An interrupted write leaves the previous file (or no file) behind, never a
// truncated one — the write discipline every durable artifact in this
// repository (checkpoints, job records, benchmark results) goes through.
func WriteFileAtomic(path string, data []byte, mode os.FileMode) error {
	return WriteFileAtomicFS(faults.OS(), path, data, mode)
}

// WriteFileAtomicFS is WriteFileAtomic over an injectable filesystem, so
// the atomic-rename protocol itself is testable under disk faults: a torn
// write surfaces as a CRC failure on the next open, an ENOSPC leaves the
// previous file intact, a failed rename never publishes the temp file.
// A nil fsys uses the real filesystem.
func WriteFileAtomicFS(fsys faults.FS, path string, data []byte, mode os.FileMode) error {
	if fsys == nil {
		fsys = faults.OS()
	}
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Chmod(mode)
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = fsys.Rename(name, path)
	}
	if werr != nil {
		fsys.Remove(name)
		return werr
	}
	return nil
}
