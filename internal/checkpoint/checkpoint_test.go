package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleState exercises every field, including negative IDs and non-trivial
// ledger/budget counters.
func sampleState() *State {
	s := &State{
		Seed:         0xDEADBEEF,
		Un:           8,
		Phase2:       1,
		TrackLosses:  true,
		NItems:       400,
		ItemsHash:    0x1234_5678_9ABC_DEF0,
		Phase:        "phase1",
		Survivors:    []int64{3, 1, 15, 7},
		Rung:         "naive-majority",
		DecisionHash: 0xFEED_FACE_CAFE_BEEF,
		Steps:        99,
		BudgetCost:   12.75,
		NaiveMemo: []PairAnswer{
			{A: 5, B: 9, Winner: 9},
			{A: 1, B: 2, Winner: 1},
			{A: -3, B: 4, Winner: 4},
		},
		ExpertMemo: []PairAnswer{{A: 3, B: 7, Winner: 3}},
		Kind:       "score",
		Workload:   []byte{0x01, 0x00, 0xFE, 0x42},
		ValueMemo: []ValueAnswer{
			{ID: 7, Rep: 1, Value: 0.25},
			{ID: 7, Rep: 0, Value: -1.5},
			{ID: 2, Rep: 0, Value: 3.125},
		},
	}
	s.Comparisons[0] = 1234
	s.Comparisons[1] = 56
	s.MemoHits[0] = 78
	s.BudgetSpent[0] = 1234
	s.BudgetSpent[1] = 56
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleState()
	want.SortPairs()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode(Encode(s)): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := sampleState()
	b := sampleState()
	// Same logical state with memo tables in different input order must
	// produce identical bytes after SortPairs (Save relies on this for the
	// bit-identical-resume property).
	b.NaiveMemo[0], b.NaiveMemo[2] = b.NaiveMemo[2], b.NaiveMemo[0]
	b.ValueMemo[0], b.ValueMemo[2] = b.ValueMemo[2], b.ValueMemo[0]
	a.SortPairs()
	b.SortPairs()
	if !reflect.DeepEqual(Encode(a), Encode(b)) {
		t.Fatal("same state encoded to different bytes")
	}
}

func TestZeroStateRoundTrip(t *testing.T) {
	got, err := Decode(Encode(&State{}))
	if err != nil {
		t.Fatalf("Decode(Encode(zero)): %v", err)
	}
	// Encode normalizes an empty Kind to the max-find kind every pre-v3
	// snapshot implicitly had, so a zero state rounds-trips to that.
	if !reflect.DeepEqual(got, &State{Kind: KindMaxFind}) {
		t.Fatalf("zero state round trip mismatch: %+v", got)
	}
}

func TestDecodeFailsClosedOnEveryByteFlip(t *testing.T) {
	data := Encode(sampleState())
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x40
		if _, err := Decode(mutated); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d/%d: err = %v, want ErrCorrupt", i, len(data), err)
		}
	}
}

func TestDecodeFailsClosedOnEveryTruncation(t *testing.T) {
	data := Encode(sampleState())
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d/%d bytes: err = %v, want ErrCorrupt", n, len(data), err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("one trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsOldVersion(t *testing.T) {
	// A version-1 file predates the degrade-controller fields; decoding
	// must fail closed rather than misalign the payload or fabricate a
	// rung. The version word is not covered by the payload CRC, so patching
	// it exercises the version check itself.
	data := Encode(sampleState())
	data[4] = 1
	_, err := Decode(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version-1 file: err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-1 rejection %q does not name the version", err)
	}
}

func TestDecodeRejectsForgedLengths(t *testing.T) {
	// A header that promises a huge payload must fail on the length check,
	// not attempt the allocation.
	data := Encode(&State{})
	data = data[:headerSize]
	data[12] = 0xFF
	data[13] = 0xFF
	data[19] = 0x7F
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged payload length: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "run.ck")
	want := sampleState()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Load(Save(s)) mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Save leaves no temp files behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want only the snapshot", len(entries))
	}
	// Overwriting is atomic-by-rename: a second Save still yields one file.
	want.Phase = "done"
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != "done" {
		t.Fatalf("reloaded phase %q, want %q", got.Phase, "done")
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.ck"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("missing file misreported as corruption")
	}
}

// encodeV2 renders s in the historical version-2 layout (everything up to
// and including the memo tables, no workload envelope) — the byte stream a
// pre-workload-engine build wrote to disk.
func encodeV2(s *State) []byte {
	var b Builder
	b.U64(s.Seed)
	b.I64(int64(s.Un))
	b.I64(int64(s.Phase2))
	b.Bool(s.TrackLosses)
	b.I64(int64(s.NItems))
	b.U64(s.ItemsHash)
	b.Str(s.Phase)
	b.I64(int64(len(s.Survivors)))
	for _, id := range s.Survivors {
		b.I64(id)
	}
	b.Str(s.Rung)
	b.U64(s.DecisionHash)
	for i := range s.Comparisons {
		b.I64(s.Comparisons[i])
	}
	for i := range s.MemoHits {
		b.I64(s.MemoHits[i])
	}
	b.I64(s.Steps)
	for i := range s.BudgetSpent {
		b.I64(s.BudgetSpent[i])
	}
	b.F64(s.BudgetCost)
	for _, table := range [][]PairAnswer{s.NaiveMemo, s.ExpertMemo} {
		b.I64(int64(len(table)))
		for _, e := range table {
			b.I64(e.A)
			b.I64(e.B)
			b.I64(e.Winner)
		}
	}
	return SealEnvelope(magic, versionPreKinds, b.Bytes())
}

func TestDecodeMigratesV2AsMaxFind(t *testing.T) {
	want := sampleState()
	want.Kind = ""
	want.Workload = nil
	want.ValueMemo = nil
	want.SortPairs()
	got, err := Decode(encodeV2(want))
	if err != nil {
		t.Fatalf("Decode(v2): %v", err)
	}
	if got.Kind != KindMaxFind {
		t.Fatalf("v2 snapshot decoded with kind %q, want %q", got.Kind, KindMaxFind)
	}
	if got.Workload != nil || got.ValueMemo != nil {
		t.Fatalf("v2 snapshot fabricated workload extras: blob=%v valueMemo=%v", got.Workload, got.ValueMemo)
	}
	want.Kind = KindMaxFind
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 migration mismatch:\n got %+v\nwant %+v", got, want)
	}
	// And the migrated state re-encodes as a valid v3 snapshot.
	again, err := Decode(Encode(got))
	if err != nil {
		t.Fatalf("Decode(Encode(migrated)): %v", err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("migrated state did not round-trip through v3:\n got %+v\nwant %+v", again, got)
	}
}

func TestDecodeV2FailsClosedOnTruncation(t *testing.T) {
	data := encodeV2(sampleState())
	for n := headerSize; n < len(data); n += 7 {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("v2 truncation to %d/%d bytes: err = %v, want ErrCorrupt", n, len(data), err)
		}
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ck")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage file: err = %v, want ErrCorrupt", err)
	}
}
