package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crowdmax/internal/faults"
)

// FuzzCheckpointRoundTrip is the fail-closed property: arbitrary bytes either
// decode into a state that survives a re-encode/re-decode round trip, or are
// rejected with an error wrapping ErrCorrupt — never a panic, never a silent
// half-parse.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CMCK"))
	f.Add(Encode(&State{}))
	f.Add(Encode(sampleState()))
	big := sampleState()
	for i := int64(0); i < 100; i++ {
		big.NaiveMemo = append(big.NaiveMemo, PairAnswer{A: i, B: i + 1, Winner: i})
	}
	f.Add(Encode(big))
	degraded := sampleState()
	degraded.Rung = "expert-shrunk"
	degraded.DecisionHash = ^uint64(0)
	f.Add(Encode(degraded))
	topk := sampleState()
	topk.Kind = "top-k"
	topk.Workload = []byte{3, 0, 0, 0, 0, 0, 0, 0, 42}
	topk.ValueMemo = nil
	f.Add(Encode(topk))
	f.Add(encodeV2(sampleState()))
	// Fault-injected partial writes: what a torn write actually leaves on
	// disk after the rename published it — a prefix of a valid snapshot at
	// several truncation fractions. All must be rejected, never half-parsed.
	for _, frac := range []string{"torn:0.1", "torn:0.5", "torn:0.9"} {
		dir := f.TempDir()
		in := faults.NewInjector(faults.OS(), mustFaultPlan(f, frac))
		path := filepath.Join(dir, "torn.ck")
		if err := WriteFileAtomicFS(in, path, Encode(sampleState()), 0o644); err != nil {
			f.Fatalf("torn write should report success: %v", err)
		}
		partial, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(partial)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// Valid input: decoding what we re-encode must reproduce the state.
		// (Bytes may legitimately differ — Encode sorts the memo tables —
		// but the decoded states must match.)
		again, err := Decode(Encode(s))
		if err != nil {
			t.Fatalf("re-decode of re-encoded state failed: %v", err)
		}
		s.SortPairs()
		again.SortPairs()
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip mismatch:\nfirst  %+v\nsecond %+v", s, again)
		}
	})
}
