// Package checkpoint persists the state of a long max-finding run so a
// crashed session can resume without repaying for answered comparisons.
//
// # What a snapshot holds, and why resume is replay
//
// A snapshot is not a serialized call stack. It records the run's
// *knowledge*: the configuration fingerprint (seed, un, phase-2 choice,
// items hash), the current phase and survivor set, the ledger counters and
// budget spend so far, and — crucially — the full memo tables, i.e. every
// pair's frozen answer per worker class. Session.Resume re-runs the
// algorithm from the beginning with the memo tables primed: every
// pre-checkpoint comparison is a free memo hit, the restored ledger carries
// its paid count, and the first genuinely new comparison lands exactly where
// the crashed run left off. With deterministic comparators (ε = 0 and an
// order-independent tie policy such as worker.HashTie) the resumed run's
// final answer, paid totals, and survivor sets are bit-identical to an
// uninterrupted run — replay sidesteps serializing any in-flight algorithm
// state, which is what makes the guarantee provable rather than hopeful.
//
// # Format
//
// The on-disk format is a fixed header — magic "CMCK", a version, the
// payload length, and a CRC-32C checksum — followed by a little-endian
// fixed-width payload. Decoding is strictly bounds-checked and fails closed:
// a truncated, bit-flipped, or version-skewed file yields an error wrapping
// ErrCorrupt, never a panic and never a silently wrong resume. Save writes
// via a temp file in the target directory followed by an atomic rename, so
// readers observe either the previous complete snapshot or the new one.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"crowdmax/internal/cost"
	"crowdmax/internal/faults"
)

// ErrCorrupt marks a checkpoint file that failed validation — wrong magic,
// unsupported version, truncation, checksum mismatch, or an inconsistent
// payload. Every Decode/Load failure mode wraps it, so callers need exactly
// one errors.Is check to distinguish "bad file" from I/O trouble.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated checkpoint")

// magic identifies a checkpoint file; version is the codec revision.
// Version 2 added the degrade-controller state (Rung, DecisionHash); version
// 3 added the workload envelope (Kind, the opaque per-workload state blob,
// and the value-query memo table). Decode reads v3 and — because a v2 file
// can only have been written by a max-find run — v2, which loads with
// Kind = KindMaxFind and empty extras. Anything else fails closed: a v1 file
// predates the quality ladder and silently resuming it could report a
// guarantee the original run never established.
const (
	magic           = "CMCK"
	version         = 3
	versionPreKinds = 2 // last revision before workload kinds; max-find only

	// headerSize = magic + u32 version + u32 crc + u64 payload length.
	headerSize = 4 + 4 + 4 + 8

	// maxStringLen bounds decoded string fields; maxPairs bounds decoded
	// memo tables and survivor sets (an n=10^6 run has < 10^8 pairs asked;
	// anything past this is a forged length, not a real run).
	maxStringLen = 256
	maxPairs     = 1 << 28
)

// castagnoli is the CRC-32C table (the polynomial with hardware support).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// KindMaxFind is the workload kind of the original two-phase max-finding
// session — the kind every pre-v3 snapshot implicitly has.
const KindMaxFind = "max-find"

// PairAnswer is one memoized comparison: the unordered pair's item IDs and
// the frozen winner ID.
type PairAnswer struct {
	A, B, Winner int64
}

// ValueAnswer is one memoized cardinal value query: the item ID, the vote
// index, and the frozen estimate.
type ValueAnswer struct {
	ID, Rep int64
	Value   float64
}

// State is one snapshot of a session run. Fields divide into the
// configuration fingerprint (Seed..ItemsHash — Resume refuses a snapshot
// whose fingerprint does not match the session and items it is applied to),
// progress markers (Phase, Survivors), restored accounting (ledger counters,
// budget spend), and the replay substrate (the two memo tables).
type State struct {
	// Seed is the session's root rng seed; identical seeds are what make
	// resumed and uninterrupted runs comparable at all.
	Seed uint64
	// Un, Phase2 and TrackLosses fingerprint the algorithm configuration.
	Un          int
	Phase2      int
	TrackLosses bool
	// NItems and ItemsHash fingerprint the input (count + FNV-1a over IDs
	// and value bits).
	NItems    int
	ItemsHash uint64

	// Phase labels the boundary or interval the snapshot was taken at
	// ("start", "phase1", "done", or "interval").
	Phase string
	// Survivors holds the item IDs of the last known survivor set (the
	// phase-1 output when taken at or past that boundary).
	Survivors []int64
	// Rung and DecisionHash carry the degrade controller's state at
	// snapshot time: the quality-ladder rung the run had reached ("" when
	// no controller ran or none was decided yet) and the FNV hash of its
	// decision log. A resumed run replays to the same rung; the hash lets
	// harnesses verify the whole ladder walk matched, not just its
	// endpoint.
	Rung         string
	DecisionHash uint64

	// Comparisons, MemoHits and Steps are the run ledger's counters at
	// snapshot time.
	Comparisons [cost.MaxClasses]int64
	MemoHits    [cost.MaxClasses]int64
	Steps       int64
	// BudgetSpent and BudgetCost are the budget's admitted totals at
	// snapshot time (zero when the run has no budget).
	BudgetSpent [cost.MaxClasses]int64
	BudgetCost  float64

	// NaiveMemo and ExpertMemo are the frozen pair answers per class,
	// sorted by (A, B) so encoding is deterministic.
	NaiveMemo, ExpertMemo []PairAnswer

	// Kind names the workload the snapshot belongs to (KindMaxFind,
	// "top-k", "score"). Resume dispatches on it; a v2 file decodes with
	// KindMaxFind. Encode writes KindMaxFind when empty.
	Kind string
	// Workload is the workload's opaque private state blob (nil for
	// max-find): the top-k completed-rank log, the score configuration.
	// The checkpoint codec frames and checksums it but never interprets it.
	Workload []byte
	// ValueMemo is the frozen value-query answers (crowd scoring), sorted
	// by (ID, Rep) so encoding is deterministic. Empty for comparison-only
	// workloads.
	ValueMemo []ValueAnswer
}

// SortPairs orders both pair-memo tables by (A, B) and the value-memo table
// by (ID, Rep); Encode requires sorted tables for byte-identical output
// across runs.
func (s *State) SortPairs() {
	for _, t := range [][]PairAnswer{s.NaiveMemo, s.ExpertMemo} {
		sort.Slice(t, func(i, j int) bool {
			if t[i].A != t[j].A {
				return t[i].A < t[j].A
			}
			return t[i].B < t[j].B
		})
	}
	sort.Slice(s.ValueMemo, func(i, j int) bool {
		if s.ValueMemo[i].ID != s.ValueMemo[j].ID {
			return s.ValueMemo[i].ID < s.ValueMemo[j].ID
		}
		return s.ValueMemo[i].Rep < s.ValueMemo[j].Rep
	})
}

// Encode renders the state in the versioned, checksummed binary format.
func Encode(s *State) []byte {
	var p payload
	p.u64(s.Seed)
	p.i64(int64(s.Un))
	p.i64(int64(s.Phase2))
	p.bool(s.TrackLosses)
	p.i64(int64(s.NItems))
	p.u64(s.ItemsHash)
	p.str(s.Phase)
	p.i64(int64(len(s.Survivors)))
	for _, id := range s.Survivors {
		p.i64(id)
	}
	p.str(s.Rung)
	p.u64(s.DecisionHash)
	for i := 0; i < cost.MaxClasses; i++ {
		p.i64(s.Comparisons[i])
	}
	for i := 0; i < cost.MaxClasses; i++ {
		p.i64(s.MemoHits[i])
	}
	p.i64(s.Steps)
	for i := 0; i < cost.MaxClasses; i++ {
		p.i64(s.BudgetSpent[i])
	}
	p.u64(math.Float64bits(s.BudgetCost))
	for _, table := range [][]PairAnswer{s.NaiveMemo, s.ExpertMemo} {
		p.i64(int64(len(table)))
		for _, e := range table {
			p.i64(e.A)
			p.i64(e.B)
			p.i64(e.Winner)
		}
	}
	kind := s.Kind
	if kind == "" {
		kind = KindMaxFind
	}
	p.str(kind)
	p.i64(int64(len(s.Workload)))
	p.b = append(p.b, s.Workload...)
	p.i64(int64(len(s.ValueMemo)))
	for _, e := range s.ValueMemo {
		p.i64(e.ID)
		p.i64(e.Rep)
		p.u64(math.Float64bits(e.Value))
	}
	return SealEnvelope(magic, version, p.b)
}

// Decode parses an encoded state, failing closed (ErrCorrupt, wrapped) on
// any inconsistency. It never panics on hostile input: every read is
// bounds-checked and every count validated against the remaining bytes
// before allocation.
func Decode(data []byte) (*State, error) {
	body, v, err := OpenEnvelopeAny(magic, data)
	if err != nil {
		return nil, err
	}
	if v != version && v != versionPreKinds {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d or %d)",
			ErrCorrupt, v, versionPreKinds, version)
	}

	r := reader{b: body}
	s := &State{}
	s.Seed = r.u64()
	s.Un = int(r.i64())
	s.Phase2 = int(r.i64())
	s.TrackLosses = r.bool()
	s.NItems = int(r.i64())
	s.ItemsHash = r.u64()
	s.Phase = r.str()
	if n := r.count(8); n > 0 {
		s.Survivors = make([]int64, n)
		for i := range s.Survivors {
			s.Survivors[i] = r.i64()
		}
	}
	s.Rung = r.str()
	s.DecisionHash = r.u64()
	for i := 0; i < cost.MaxClasses; i++ {
		s.Comparisons[i] = r.i64()
	}
	for i := 0; i < cost.MaxClasses; i++ {
		s.MemoHits[i] = r.i64()
	}
	s.Steps = r.i64()
	for i := 0; i < cost.MaxClasses; i++ {
		s.BudgetSpent[i] = r.i64()
	}
	s.BudgetCost = math.Float64frombits(r.u64())
	for _, table := range []*[]PairAnswer{&s.NaiveMemo, &s.ExpertMemo} {
		if n := r.count(24); n > 0 {
			*table = make([]PairAnswer, n)
			for i := range *table {
				(*table)[i] = PairAnswer{A: r.i64(), B: r.i64(), Winner: r.i64()}
			}
		}
	}
	if v == versionPreKinds {
		// A v2 file was written by a max-find run; the workload envelope
		// fields did not exist yet.
		s.Kind = KindMaxFind
	} else {
		if s.Kind = r.str(); s.Kind == "" {
			// Encode always writes a kind; normalize a hand-forged empty
			// one the same way Encode would have.
			s.Kind = KindMaxFind
		}
		if n := r.count(1); n > 0 {
			s.Workload = append([]byte(nil), r.take(int(n))...)
		}
		if n := r.count(24); n > 0 {
			s.ValueMemo = make([]ValueAnswer, n)
			for i := range s.ValueMemo {
				s.ValueMemo[i] = ValueAnswer{ID: r.i64(), Rep: r.i64(), Value: math.Float64frombits(r.u64())}
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != r.off {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return s, nil
}

// Save atomically writes the state to path: encode, write to a temp file in
// the same directory, fsync, rename. An interrupted save leaves the previous
// snapshot (or no file) behind, never a truncated one.
func Save(path string, s *State) error {
	return SaveFS(nil, path, s)
}

// SaveFS is Save over an injectable filesystem (nil for the real one), so
// snapshot durability is testable under injected disk faults.
func SaveFS(fsys faults.FS, path string, s *State) error {
	s.SortPairs()
	if err := WriteFileAtomicFS(fsys, path, Encode(s), 0o644); err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", path, err)
	}
	return nil
}

// Load reads and decodes the snapshot at path. Decoding failures wrap
// ErrCorrupt; a missing file surfaces as the usual fs.ErrNotExist.
func Load(path string) (*State, error) {
	return LoadFS(nil, path)
}

// LoadFS is Load over an injectable filesystem (nil for the real one).
func LoadFS(fsys faults.FS, path string) (*State, error) {
	if fsys == nil {
		fsys = faults.OS()
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: %w", path, err)
	}
	return s, nil
}

// payload is the append-side of the little-endian codec.
type payload struct{ b []byte }

func (p *payload) u64(v uint64) { p.b = binary.LittleEndian.AppendUint64(p.b, v) }
func (p *payload) i64(v int64)  { p.u64(uint64(v)) }
func (p *payload) bool(v bool) {
	if v {
		p.b = append(p.b, 1)
	} else {
		p.b = append(p.b, 0)
	}
}
func (p *payload) str(s string) {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	p.i64(int64(len(s)))
	p.b = append(p.b, s...)
}

// reader is the bounds-checked decode side; the first failure latches err
// and every subsequent read returns zero, so decode loops need one error
// check at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.b)-r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) bool() bool {
	s := r.take(1)
	return s != nil && s[0] != 0
}

func (r *reader) str() string {
	n := r.count(1)
	if n < 0 {
		return ""
	}
	if n > maxStringLen {
		r.fail("string length %d exceeds cap %d", n, maxStringLen)
		return ""
	}
	return string(r.take(int(n)))
}

// count reads a length prefix and validates it against the remaining bytes
// at elemSize bytes per element, so a forged length can never trigger a
// huge allocation. Returns -1 after a latched error.
func (r *reader) count(elemSize int) int64 {
	n := r.i64()
	if r.err != nil {
		return -1
	}
	if n < 0 || n > maxPairs || n*int64(elemSize) > int64(len(r.b)-r.off) {
		r.fail("count %d inconsistent with %d remaining bytes", n, len(r.b)-r.off)
		return -1
	}
	return n
}
