package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"crowdmax/internal/faults"
)

func mustFaultPlan(tb testing.TB, spec string) faults.Plan {
	tb.Helper()
	p, err := faults.ParsePlan(spec)
	if err != nil {
		tb.Fatalf("faults.ParsePlan(%q): %v", spec, err)
	}
	return p
}

// TestWriteFileAtomicSurvivesFaults pins the atomic-rename protocol's
// guarantees under each injected fault: a failure never publishes a
// truncated file over a good one, and a torn write that does publish is
// caught by the envelope checksum on the next open.
func TestWriteFileAtomicSurvivesFaults(t *testing.T) {
	good := SealEnvelope("TEST", 1, []byte("the previous complete artifact"))
	next := SealEnvelope("TEST", 1, []byte("the next artifact, longer than before"))

	t.Run("enospc keeps previous file", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "a.bin")
		if err := WriteFileAtomic(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
		in := faults.NewInjector(faults.OS(), mustFaultPlan(t, "enospc:0.5"))
		if err := WriteFileAtomicFS(in, path, next, 0o644); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("want ENOSPC, got %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenEnvelope("TEST", 1, data); err != nil {
			t.Fatalf("previous file damaged by failed write: %v", err)
		}
	})

	t.Run("failed rename leaves no temp behind", func(t *testing.T) {
		dir := t.TempDir()
		in := faults.NewInjector(faults.OS(), mustFaultPlan(t, "renamefail"))
		err := WriteFileAtomicFS(in, filepath.Join(dir, "a.bin"), next, 0o644)
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO, got %v", err)
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 0 {
			t.Fatalf("directory not clean after failed rename: %v", ents)
		}
	})

	t.Run("torn write fails closed on open", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "a.bin")
		in := faults.NewInjector(faults.OS(), mustFaultPlan(t, "torn:0.5"))
		if err := WriteFileAtomicFS(in, path, next, 0o644); err != nil {
			t.Fatalf("torn write should report success: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := OpenEnvelope("TEST", 1, data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn file must open as ErrCorrupt, got %v", err)
		}
	})

	t.Run("create failure surfaces", func(t *testing.T) {
		dir := t.TempDir()
		in := faults.NewInjector(faults.OS(), mustFaultPlan(t, "eio-create"))
		if err := WriteFileAtomicFS(in, filepath.Join(dir, "a.bin"), next, 0o644); !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO, got %v", err)
		}
	})
}

// TestSaveLoadFSUnderFaults drives the snapshot codec itself through the
// injectable filesystem: a torn save fails closed as ErrCorrupt on load, a
// read fault surfaces as EIO, and a clean retry over the same injector
// (past its fault window) round-trips.
func TestSaveLoadFSUnderFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ck")
	in := faults.NewInjector(faults.OS(), mustFaultPlan(t, "torn@0-1,eio-read@0-1"))

	st := sampleState()
	if err := SaveFS(in, path, st); err != nil {
		t.Fatalf("torn save should report success: %v", err)
	}
	if _, err := LoadFS(in, path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first load should hit the read fault, got %v", err)
	}
	if _, err := LoadFS(in, path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn snapshot must load as ErrCorrupt, got %v", err)
	}
	if err := SaveFS(in, path, st); err != nil {
		t.Fatalf("clean save: %v", err)
	}
	got, err := LoadFS(in, path)
	if err != nil {
		t.Fatalf("clean load: %v", err)
	}
	if got.Seed != st.Seed || got.NItems != st.NItems {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, st)
	}
}
