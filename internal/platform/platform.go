// Package platform simulates a crowdsourcing platform in the style of
// CrowdFlower as used in Sections 3.1 and 5.3 of the paper.
//
// A Platform owns a pool of worker accounts, each backed by one of the
// error models in internal/worker. Algorithms interact with it exactly the
// way the paper's execution model prescribes (Section 3, following Venetis
// et al.): comparisons are submitted in batches — one batch per logical
// step — and the platform expands each batch into physical steps according
// to how many workers are active.
//
// Quality control mirrors the paper's CrowdFlower setup: a configurable
// fraction of the queries served to each worker are gold questions with a
// known answer, and "responses of workers whose performance on gold
// comparisons has accuracy less than 70% are ignored" — such workers are
// banned and their assignments rerouted.
//
// The platform can also aggregate several independent answers to the same
// question by majority vote, which is how the paper simulates an expert
// when the platform has none: "simulating each expert query by 7 naïve
// queries and selecting the answer that received most votes".
package platform

import (
	"errors"
	"fmt"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

// Pair is one comparison task.
type Pair struct {
	A, B item.Item
}

// Answer is one worker's response to a task.
type Answer struct {
	Pair
	// Winner is the element the worker reported as larger.
	Winner item.Item
	// WorkerID identifies the responding worker account.
	WorkerID int
}

// Config tunes a Platform. Zero values select the paper's setup.
type Config struct {
	// GoldFraction is the fraction of served queries that are gold
	// questions (the paper uses 15%).
	GoldFraction float64
	// GoldAccuracyFloor bans workers whose gold accuracy falls below it
	// (the paper's CrowdFlower setting is 70%).
	GoldAccuracyFloor float64
	// MinGoldSeen delays banning until a worker has answered this many
	// gold questions (default 4), so a single unlucky answer does not
	// ban an honest worker.
	MinGoldSeen int
	// R drives worker assignment and gold injection. Required.
	R *rng.Source
}

func (c Config) withDefaults() Config {
	if c.GoldFraction == 0 {
		c.GoldFraction = 0.15
	}
	if c.GoldAccuracyFloor == 0 {
		c.GoldAccuracyFloor = 0.70
	}
	if c.MinGoldSeen == 0 {
		c.MinGoldSeen = 4
	}
	return c
}

type account struct {
	cmp         worker.Comparator
	goldCorrect int
	goldTotal   int
	banned      bool
}

// Platform is a simulated crowdsourcing platform. Each Platform instance is
// owned by one goroutine at a time — its worker accounts and gold-question
// state evolve with every submitted batch, so a run drives its own instance
// (experiments running in parallel each construct their own Platform). The
// surrounding machinery (Oracle, Memo, Ledger) is safe for concurrent use;
// see package tournament.
type Platform struct {
	cfg      Config
	accounts []*account
	gold     []Pair

	logicalSteps  int64
	physicalSteps int64
	servedTasks   int64
	servedGold    int64
}

// New creates a Platform.
func New(cfg Config) (*Platform, error) {
	cfg = cfg.withDefaults()
	if cfg.R == nil {
		return nil, errors.New("platform: Config.R is required")
	}
	if cfg.GoldFraction < 0 || cfg.GoldFraction >= 1 {
		return nil, fmt.Errorf("platform: GoldFraction %g outside [0,1)", cfg.GoldFraction)
	}
	return &Platform{cfg: cfg}, nil
}

// AddWorker registers a worker account backed by cmp and returns its ID.
func (p *Platform) AddWorker(cmp worker.Comparator) int {
	p.accounts = append(p.accounts, &account{cmp: cmp})
	return len(p.accounts) - 1
}

// SetGold installs the gold questions used for quality control. Gold pairs
// should have distinct values so the correct answer is well defined.
func (p *Platform) SetGold(gold []Pair) {
	p.gold = append([]Pair(nil), gold...)
}

// ActiveWorkers returns the number of workers not banned by quality control.
func (p *Platform) ActiveWorkers() int {
	n := 0
	for _, a := range p.accounts {
		if !a.banned {
			n++
		}
	}
	return n
}

// BannedWorkers returns the number of workers banned by quality control.
func (p *Platform) BannedWorkers() int { return len(p.accounts) - p.ActiveWorkers() }

// LogicalSteps returns the number of batches submitted so far — the time
// complexity measure of the paper's execution model.
func (p *Platform) LogicalSteps() int64 { return p.logicalSteps }

// PhysicalSteps returns the number of physical time steps consumed: each
// batch takes ⌈batch size / active workers⌉ physical steps.
func (p *Platform) PhysicalSteps() int64 { return p.physicalSteps }

// ServedTasks returns the number of real (non-gold) task answers served.
func (p *Platform) ServedTasks() int64 { return p.servedTasks }

// ServedGold returns the number of gold questions served.
func (p *Platform) ServedGold() int64 { return p.servedGold }

// WorkerStats summarizes one worker account's quality-control record.
type WorkerStats struct {
	// ID is the worker's account ID.
	ID int
	// GoldSeen and GoldCorrect count the worker's gold questions and
	// correct answers to them.
	GoldSeen, GoldCorrect int
	// Banned reports whether quality control has excluded the worker.
	Banned bool
}

// GoldAccuracy returns the worker's accuracy on gold questions (1 when it
// has seen none — no evidence against it yet).
func (s WorkerStats) GoldAccuracy() float64 {
	if s.GoldSeen == 0 {
		return 1
	}
	return float64(s.GoldCorrect) / float64(s.GoldSeen)
}

// Stats returns every worker's quality-control record, in account order.
// Platforms use exactly this view to decide whose answers to trust; it is
// also the raw material for the reliability-estimation literature the paper
// cites as complementary ("our work is orthogonal and complementary").
func (p *Platform) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.accounts))
	for i, a := range p.accounts {
		out[i] = WorkerStats{
			ID:          i,
			GoldSeen:    a.goldTotal,
			GoldCorrect: a.goldCorrect,
			Banned:      a.banned,
		}
	}
	return out
}

// pickActive returns a random active worker ID, or -1 if none remain.
func (p *Platform) pickActive() int {
	n := p.ActiveWorkers()
	if n == 0 {
		return -1
	}
	k := p.cfg.R.Intn(n)
	for id, a := range p.accounts {
		if a.banned {
			continue
		}
		if k == 0 {
			return id
		}
		k--
	}
	return -1
}

// serveGoldMaybe serves a gold question to the worker with the configured
// probability and updates its quality-control state.
func (p *Platform) serveGoldMaybe(id int) {
	if len(p.gold) == 0 || p.cfg.GoldFraction <= 0 {
		return
	}
	// With q = GoldFraction, issuing one gold question per real question
	// with probability q/(1−q) makes gold questions a q-fraction of all
	// served queries in expectation.
	if !p.cfg.R.Bernoulli(p.cfg.GoldFraction / (1 - p.cfg.GoldFraction)) {
		return
	}
	g := p.gold[p.cfg.R.Intn(len(p.gold))]
	a := p.accounts[id]
	ans := a.cmp.Compare(g.A, g.B)
	correct := g.A
	if g.B.Value > g.A.Value {
		correct = g.B
	}
	a.goldTotal++
	p.servedGold++
	if ans.ID == correct.ID {
		a.goldCorrect++
	}
	if a.goldTotal >= p.cfg.MinGoldSeen &&
		float64(a.goldCorrect)/float64(a.goldTotal) < p.cfg.GoldAccuracyFloor {
		a.banned = true
	}
}

// ErrNoWorkers is returned when quality control has banned the entire pool.
var ErrNoWorkers = errors.New("platform: no active workers remain")

// SubmitBatch serves one batch of comparison tasks — one logical step — each
// answered by one randomly assigned active worker. Gold questions are
// interleaved per the configured fraction; a worker banned mid-batch stops
// receiving assignments (its earlier answers in the batch stand, as on the
// real platform where filtering is retroactive only across jobs).
func (p *Platform) SubmitBatch(pairs []Pair) ([]Answer, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	p.logicalSteps++
	active := p.ActiveWorkers()
	if active == 0 {
		return nil, ErrNoWorkers
	}
	p.physicalSteps += int64((len(pairs) + active - 1) / active)

	answers := make([]Answer, 0, len(pairs))
	for _, pr := range pairs {
		id := p.pickActive()
		if id < 0 {
			return answers, ErrNoWorkers
		}
		p.serveGoldMaybe(id)
		if p.accounts[id].banned {
			// Reassign: the worker was banned by the gold question it
			// just answered.
			id = p.pickActive()
			if id < 0 {
				return answers, ErrNoWorkers
			}
		}
		w := p.accounts[id].cmp.Compare(pr.A, pr.B)
		p.servedTasks++
		answers = append(answers, Answer{Pair: pr, Winner: w, WorkerID: id})
	}
	return answers, nil
}

// MajorityVote asks k independent workers to compare a and b (one batch) and
// returns the element winning the most votes, ties broken uniformly at
// random. This is the wisdom-of-crowds aggregation of Sections 3.1–3.2.
func (p *Platform) MajorityVote(a, b item.Item, k int) (item.Item, error) {
	if k < 1 {
		k = 1
	}
	pairs := make([]Pair, k)
	for i := range pairs {
		pairs[i] = Pair{A: a, B: b}
	}
	answers, err := p.SubmitBatch(pairs)
	if err != nil {
		return item.Item{}, err
	}
	votesA := 0
	for _, ans := range answers {
		if ans.Winner.ID == a.ID {
			votesA++
		}
	}
	switch {
	case 2*votesA > len(answers):
		return a, nil
	case 2*votesA < len(answers):
		return b, nil
	case p.cfg.R.Bool():
		return a, nil
	default:
		return b, nil
	}
}

// Comparator adapts the platform to the worker.Comparator interface: each
// Compare call becomes a job answered by votes workers and aggregated by
// majority. votes = 1 models ordinary single-answer tasks; votes = 7
// reproduces the paper's "simulated expert". If the worker pool is
// exhausted by quality control, the comparator panics — tests exercise this
// via CheckedComparator instead.
func (p *Platform) Comparator(votes int) worker.Comparator {
	return worker.Func(func(a, b item.Item) item.Item {
		w, err := p.MajorityVote(a, b, votes)
		if err != nil {
			panic(fmt.Sprintf("platform: %v", err))
		}
		return w
	})
}

// CheckedComparator is like Comparator but reports pool exhaustion through
// the returned error channel function instead of panicking.
func (p *Platform) CheckedComparator(votes int) func(a, b item.Item) (item.Item, error) {
	return func(a, b item.Item) (item.Item, error) {
		return p.MajorityVote(a, b, votes)
	}
}

// batchComparator adapts the platform to tournament.BatchComparator.
type batchComparator struct {
	p     *Platform
	votes int
}

// Compare answers a single comparison as a one-pair batch.
func (b batchComparator) Compare(x, y item.Item) item.Item {
	return b.CompareBatch([][2]item.Item{{x, y}})[0]
}

// CompareBatch submits all the pairs' jobs — votes answers per pair — as
// ONE platform batch (one logical step) and majority-aggregates each pair.
// Like Comparator, it panics if quality control exhausts the worker pool.
func (b batchComparator) CompareBatch(pairs [][2]item.Item) []item.Item {
	if len(pairs) == 0 {
		return nil
	}
	jobs := make([]Pair, 0, len(pairs)*b.votes)
	for _, pr := range pairs {
		for v := 0; v < b.votes; v++ {
			jobs = append(jobs, Pair{A: pr[0], B: pr[1]})
		}
	}
	answers, err := b.p.SubmitBatch(jobs)
	if err != nil {
		panic(fmt.Sprintf("platform: %v", err))
	}
	winners := make([]item.Item, len(pairs))
	for i, pr := range pairs {
		votesA := 0
		for v := 0; v < b.votes; v++ {
			if answers[i*b.votes+v].Winner.ID == pr[0].ID {
				votesA++
			}
		}
		switch {
		case 2*votesA > b.votes:
			winners[i] = pr[0]
		case 2*votesA < b.votes:
			winners[i] = pr[1]
		case b.p.cfg.R.Bool():
			winners[i] = pr[0]
		default:
			winners[i] = pr[1]
		}
	}
	return winners
}

// BatchComparator adapts the platform to the tournament batch interface:
// each CompareBatch call becomes one platform batch in which every pair is
// answered by votes workers and majority-aggregated. Tournaments routed
// through it consume one logical step per round, matching the paper's time
// model; the per-call Comparator costs one logical step per comparison.
func (p *Platform) BatchComparator(votes int) worker.Comparator {
	if votes < 1 {
		votes = 1
	}
	return batchComparator{p: p, votes: votes}
}
