package platform

import (
	"errors"
	"math"
	"testing"

	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

func it(id int, v float64) item.Item { return item.Item{ID: id, Value: v} }

func newPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func goldPairs(n int) []Pair {
	gold := make([]Pair, n)
	for i := range gold {
		gold[i] = Pair{A: it(1000+2*i, float64(i)), B: it(1001+2*i, float64(i)+100)}
	}
	return gold
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := New(Config{R: rng.New(1), GoldFraction: 1.5}); err == nil {
		t.Fatal("GoldFraction ≥ 1 accepted")
	}
	if _, err := New(Config{R: rng.New(1), GoldFraction: -0.1}); err == nil {
		t.Fatal("negative GoldFraction accepted")
	}
}

func TestSubmitBatchBasics(t *testing.T) {
	r := rng.New(1)
	p := newPlatform(t, Config{R: r})
	p.AddWorker(worker.Truth)
	p.AddWorker(worker.Truth)

	pairs := []Pair{
		{A: it(0, 1), B: it(1, 2)},
		{A: it(2, 5), B: it(3, 4)},
	}
	answers, err := p.SubmitBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d", len(answers))
	}
	if answers[0].Winner.ID != 1 || answers[1].Winner.ID != 2 {
		t.Fatalf("truthful workers gave wrong answers: %+v", answers)
	}
	if p.LogicalSteps() != 1 {
		t.Fatalf("logical steps = %d", p.LogicalSteps())
	}
	if p.PhysicalSteps() != 1 { // 2 tasks / 2 workers
		t.Fatalf("physical steps = %d", p.PhysicalSteps())
	}
	if p.ServedTasks() != 2 {
		t.Fatalf("served = %d", p.ServedTasks())
	}
}

func TestSubmitBatchEmpty(t *testing.T) {
	p := newPlatform(t, Config{R: rng.New(2)})
	p.AddWorker(worker.Truth)
	answers, err := p.SubmitBatch(nil)
	if err != nil || answers != nil {
		t.Fatalf("empty batch: %v, %v", answers, err)
	}
	if p.LogicalSteps() != 0 {
		t.Fatal("empty batch consumed a logical step")
	}
}

func TestSubmitBatchNoWorkers(t *testing.T) {
	p := newPlatform(t, Config{R: rng.New(3)})
	_, err := p.SubmitBatch([]Pair{{A: it(0, 1), B: it(1, 2)}})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
}

func TestPhysicalStepExpansion(t *testing.T) {
	r := rng.New(4)
	p := newPlatform(t, Config{R: r})
	for i := 0; i < 3; i++ {
		p.AddWorker(worker.Truth)
	}
	pairs := make([]Pair, 10)
	for i := range pairs {
		pairs[i] = Pair{A: it(2*i, 1), B: it(2*i+1, 2)}
	}
	if _, err := p.SubmitBatch(pairs); err != nil {
		t.Fatal(err)
	}
	// ⌈10/3⌉ = 4 physical steps for one logical step.
	if p.PhysicalSteps() != 4 {
		t.Fatalf("physical steps = %d, want 4", p.PhysicalSteps())
	}
	if p.LogicalSteps() != 1 {
		t.Fatalf("logical steps = %d, want 1", p.LogicalSteps())
	}
}

func TestSpamFilterBansSpammers(t *testing.T) {
	r := rng.New(5)
	p := newPlatform(t, Config{R: r.Child("p"), GoldFraction: 0.3})
	p.AddWorker(worker.Truth)
	p.AddWorker(worker.Spammer{R: r.Child("spam")})
	p.SetGold(goldPairs(20))

	pairs := make([]Pair, 400)
	for i := range pairs {
		pairs[i] = Pair{A: it(2*i, 1), B: it(2*i+1, 2)}
	}
	if _, err := p.SubmitBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if p.BannedWorkers() != 1 {
		t.Fatalf("banned = %d, want 1 (the spammer)", p.BannedWorkers())
	}
	if p.ActiveWorkers() != 1 {
		t.Fatalf("active = %d", p.ActiveWorkers())
	}
	if p.ServedGold() == 0 {
		t.Fatal("no gold questions served")
	}
}

func TestSpamFilterKeepsHonestWorkers(t *testing.T) {
	r := rng.New(6)
	p := newPlatform(t, Config{R: r.Child("p"), GoldFraction: 0.3})
	// Honest-but-imperfect: 10% error, safely above the 70% floor.
	for i := 0; i < 4; i++ {
		p.AddWorker(worker.NewProbabilistic(0.1, r.ChildN("w", i)))
	}
	p.SetGold(goldPairs(20))
	pairs := make([]Pair, 500)
	for i := range pairs {
		pairs[i] = Pair{A: it(2*i, 1), B: it(2*i+1, 2)}
	}
	if _, err := p.SubmitBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if p.BannedWorkers() != 0 {
		t.Fatalf("banned %d honest workers", p.BannedWorkers())
	}
}

func TestGoldFractionApproximate(t *testing.T) {
	r := rng.New(7)
	p := newPlatform(t, Config{R: r, GoldFraction: 0.15})
	p.AddWorker(worker.Truth)
	p.SetGold(goldPairs(10))
	pairs := make([]Pair, 4000)
	for i := range pairs {
		pairs[i] = Pair{A: it(2*i, 1), B: it(2*i+1, 2)}
	}
	if _, err := p.SubmitBatch(pairs); err != nil {
		t.Fatal(err)
	}
	frac := float64(p.ServedGold()) / float64(p.ServedGold()+p.ServedTasks())
	if math.Abs(frac-0.15) > 0.02 {
		t.Fatalf("gold fraction = %.3f, want ≈0.15", frac)
	}
}

func TestNoGoldConfigured(t *testing.T) {
	r := rng.New(8)
	p := newPlatform(t, Config{R: r})
	p.AddWorker(worker.Truth)
	pairs := make([]Pair, 100)
	for i := range pairs {
		pairs[i] = Pair{A: it(2*i, 1), B: it(2*i+1, 2)}
	}
	if _, err := p.SubmitBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if p.ServedGold() != 0 {
		t.Fatal("gold served without a golden set")
	}
}

func TestMajorityVoteAggregates(t *testing.T) {
	r := rng.New(9)
	p := newPlatform(t, Config{R: r.Child("p")})
	// Seven workers, each 30% wrong: majority of 7 is right ≈ 87%+.
	for i := 0; i < 7; i++ {
		p.AddWorker(worker.NewProbabilistic(0.3, r.ChildN("w", i)))
	}
	a, b := it(0, 1), it(1, 2)
	correct := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		w, err := p.MajorityVote(a, b, 7)
		if err != nil {
			t.Fatal(err)
		}
		if w.ID == 1 {
			correct++
		}
	}
	f := float64(correct) / trials
	single := 0.7
	if f <= single {
		t.Fatalf("majority accuracy %.3f not above single-worker %.3f", f, single)
	}
}

func TestMajorityVoteMinOneVote(t *testing.T) {
	r := rng.New(10)
	p := newPlatform(t, Config{R: r})
	p.AddWorker(worker.Truth)
	w, err := p.MajorityVote(it(0, 1), it(1, 2), 0)
	if err != nil || w.ID != 1 {
		t.Fatalf("k=0 vote: %v, %v", w, err)
	}
}

func TestComparatorAdapter(t *testing.T) {
	r := rng.New(11)
	p := newPlatform(t, Config{R: r})
	p.AddWorker(worker.Truth)
	cmp := p.Comparator(3)
	if cmp.Compare(it(0, 5), it(1, 3)).ID != 0 {
		t.Fatal("comparator adapter wrong")
	}
}

func TestCheckedComparatorReportsExhaustion(t *testing.T) {
	r := rng.New(12)
	p := newPlatform(t, Config{R: r.Child("p"), GoldFraction: 0.5, MinGoldSeen: 2})
	p.AddWorker(worker.Spammer{R: r.Child("s")})
	p.SetGold(goldPairs(10))
	cmp := p.CheckedComparator(1)
	var sawErr bool
	for i := 0; i < 200; i++ {
		if _, err := cmp(it(2*i, 1), it(2*i+1, 2)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("pool exhaustion never reported")
	}
}

func TestComparatorPanicsOnExhaustion(t *testing.T) {
	r := rng.New(13)
	p := newPlatform(t, Config{R: r.Child("p"), GoldFraction: 0.5, MinGoldSeen: 2})
	p.AddWorker(worker.Spammer{R: r.Child("s")})
	p.SetGold(goldPairs(10))
	cmp := p.Comparator(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on pool exhaustion")
		}
	}()
	for i := 0; i < 200; i++ {
		cmp.Compare(it(2*i, 1), it(2*i+1, 2))
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.GoldFraction != 0.15 || cfg.GoldAccuracyFloor != 0.70 || cfg.MinGoldSeen != 4 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestBatchComparatorOneLogicalStepPerBatch(t *testing.T) {
	r := rng.New(14)
	p := newPlatform(t, Config{R: r})
	for i := 0; i < 5; i++ {
		p.AddWorker(worker.Truth)
	}
	bc := p.BatchComparator(3).(interface {
		CompareBatch(pairs [][2]item.Item) []item.Item
	})
	pairs := [][2]item.Item{
		{it(0, 1), it(1, 2)},
		{it(2, 5), it(3, 4)},
		{it(4, 7), it(5, 9)},
	}
	winners := bc.CompareBatch(pairs)
	if winners[0].ID != 1 || winners[1].ID != 2 || winners[2].ID != 5 {
		t.Fatalf("winners = %v", winners)
	}
	if p.LogicalSteps() != 1 {
		t.Fatalf("logical steps = %d, want 1 for the whole batch", p.LogicalSteps())
	}
	// 3 pairs × 3 votes = 9 jobs over 5 workers → ⌈9/5⌉ = 2 physical steps.
	if p.PhysicalSteps() != 2 {
		t.Fatalf("physical steps = %d, want 2", p.PhysicalSteps())
	}
	if p.ServedTasks() != 9 {
		t.Fatalf("served = %d, want 9", p.ServedTasks())
	}
}

func TestBatchComparatorMajorityAggregates(t *testing.T) {
	r := rng.New(15)
	p := newPlatform(t, Config{R: r.Child("p")})
	for i := 0; i < 9; i++ {
		p.AddWorker(worker.NewProbabilistic(0.3, r.ChildN("w", i)))
	}
	cmp := p.BatchComparator(9)
	correct := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		if cmp.Compare(it(0, 1), it(1, 2)).ID == 1 {
			correct++
		}
	}
	if f := float64(correct) / trials; f <= 0.7 {
		t.Fatalf("9-vote batch majority accuracy %.3f not above single-worker 0.7", f)
	}
}

func TestBatchComparatorEmptyAndClamp(t *testing.T) {
	r := rng.New(16)
	p := newPlatform(t, Config{R: r})
	p.AddWorker(worker.Truth)
	bc := p.BatchComparator(0) // clamps to 1 vote
	if got := bc.Compare(it(0, 1), it(1, 2)); got.ID != 1 {
		t.Fatalf("clamped comparator wrong: %v", got)
	}
	batch := p.BatchComparator(2).(interface {
		CompareBatch(pairs [][2]item.Item) []item.Item
	})
	if got := batch.CompareBatch(nil); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
}

func TestWorkerStats(t *testing.T) {
	r := rng.New(17)
	p := newPlatform(t, Config{R: r.Child("p"), GoldFraction: 0.3})
	p.AddWorker(worker.Truth)
	p.AddWorker(worker.Spammer{R: r.Child("s")})
	p.SetGold(goldPairs(10))
	pairs := make([]Pair, 300)
	for i := range pairs {
		pairs[i] = Pair{A: it(2*i, 1), B: it(2*i+1, 2)}
	}
	if _, err := p.SubmitBatch(pairs); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats entries = %d", len(stats))
	}
	honest, spammer := stats[0], stats[1]
	if honest.Banned {
		t.Fatal("honest worker banned")
	}
	if honest.GoldSeen == 0 || honest.GoldAccuracy() != 1 {
		t.Fatalf("honest worker stats = %+v", honest)
	}
	if !spammer.Banned {
		t.Fatal("spammer not banned")
	}
	if spammer.GoldAccuracy() >= 0.7 {
		t.Fatalf("spammer gold accuracy = %.2f, should be below the floor", spammer.GoldAccuracy())
	}
}

func TestWorkerStatsNoGoldSeen(t *testing.T) {
	p := newPlatform(t, Config{R: rng.New(18)})
	p.AddWorker(worker.Truth)
	s := p.Stats()[0]
	if s.GoldAccuracy() != 1 || s.Banned {
		t.Fatalf("fresh worker stats = %+v", s)
	}
}
