// Package obs is the repository's observability layer: allocation-conscious
// counters and histograms threaded through the comparison hot paths, an
// optional structured JSONL event trace whose records carry the deterministic
// replay seeds of internal/rng, and runtime endpoints (expvar and
// net/http/pprof) for live inspection of long runs.
//
// The layer is disabled by default and costs a nil check (or nothing at all)
// on every hot path when off: instrumented code holds a *Scope that is nil
// while observability is disabled, and every Scope method is safe on a nil
// receiver. Enabling installs a process-wide *Metrics (and optionally a
// *Tracer) that subsequent Scopes reference; counters are single atomic adds,
// batched per comparison batch wherever the call sites allow.
//
// The paper's budget claims are per-phase claims — Phase 1 performs at most
// 4·n·un(n) naïve comparisons, 2-MaxFind O(|S|^{3/2}) expert ones — so the
// metric space is phase-labelled: comparisons attribute to the filter,
// 2-MaxFind, or randomized phase via ledger deltas taken at phase boundaries
// by internal/core.
package obs

import (
	"expvar"
	"strconv"
	"sync"
	"sync/atomic"
)

// NumClasses is the number of worker classes the metric space distinguishes.
// It mirrors cost.MaxClasses (compile-checked in internal/tournament, which
// imports both packages; obs itself stays dependency-free so the low-level
// parallel pool can use it).
const NumClasses = 8

// Phase labels a metric or trace event with the algorithm phase that
// produced it.
type Phase int

const (
	// PhaseOther covers work outside the three named phases (baselines,
	// estimation, platform simulation).
	PhaseOther Phase = iota
	// PhaseFilter is Algorithm 2, the naïve-worker filtering phase.
	PhaseFilter
	// PhaseTwoMaxFind is Algorithm 3, the deterministic second phase.
	PhaseTwoMaxFind
	// PhaseRandomized is Algorithm 5, the randomized second phase.
	PhaseRandomized

	numPhases
)

// String returns the phase's metric label.
func (p Phase) String() string {
	switch p {
	case PhaseFilter:
		return "filter"
	case PhaseTwoMaxFind:
		return "2maxfind"
	case PhaseRandomized:
		return "randomized"
	default:
		return "other"
	}
}

// poolWorkerSlots bounds the per-worker busy-time counters; pools wider than
// this fold onto the slots modulo the width (widths in this repository are
// GOMAXPROCS-sized, far below the bound).
const poolWorkerSlots = 64

// Metrics is the process-wide metric set. All fields are fixed atomics, so a
// single Metrics may be written by every goroutine of a parallel run without
// locks; readers see momentarily inconsistent cross-counter snapshots while
// writers are active, which is fine for monitoring.
type Metrics struct {
	comparisons [NumClasses]atomic.Int64
	memoHit     [NumClasses]atomic.Int64
	memoMiss    [NumClasses]atomic.Int64

	phaseCmp    [numPhases][NumClasses]atomic.Int64
	phaseRounds [numPhases]atomic.Int64

	// groupSizes observes the size of every all-play-all tournament —
	// the paper's group-size parameters (4·un in the filter, ⌈√s⌉ in
	// 2-MaxFind, 80·(c+2) in Algorithm 5) made measurable.
	groupSizes Histogram

	poolBatches    atomic.Int64
	poolTasks      atomic.Int64
	poolDepth      atomic.Int64
	poolBatchSizes Histogram
	poolBusyNanos  [poolWorkerSlots]atomic.Int64

	// Dispatch-layer counters: comparisons refused by a hard budget cap
	// (per class) and transport-level retries spent by the retry backend.
	budgetRefusals [NumClasses]atomic.Int64
	dispatchRetry  atomic.Int64

	// Robustness counters: retry decorators that exhausted every attempt
	// (and the attempts they burned), hedged requests (duplicated after the
	// hedge delay) and hedges whose duplicate answered first, gold-set
	// probes (and failed ones) issued by worker-health tracking, workers
	// quarantined by the circuit breaker, and checkpoint snapshots written.
	retryGiveUps        atomic.Int64
	retryGiveUpAttempts atomic.Int64
	hedges              atomic.Int64
	hedgeWins           atomic.Int64
	goldProbes          atomic.Int64
	goldFailures        atomic.Int64
	quarantines         atomic.Int64
	reinstates          atomic.Int64
	checkpointWrites    atomic.Int64

	// Per-detector quarantine splits: which detector fired — gold-floor
	// violation, raw disagreement rate, or an agreement-graph verdict.
	quarantinesGold     atomic.Int64
	quarantinesDisagree atomic.Int64
	quarantinesGraph    atomic.Int64

	// Degradation counters: quality-ladder decisions made by the degrade
	// controller, split into downgrades (weaker rung than before) and
	// recoveries (stronger rung after a pool healed).
	degradeDecisions  atomic.Int64
	degradeDowngrades atomic.Int64
	degradeRecoveries atomic.Int64

	// Storage-fault and service-robustness counters: corrupt records moved
	// to quarantine at startup, orphaned temp files swept, record-persist
	// retries and writes deferred to the drain flush, jobs failed by an
	// isolated panic, jobs expired at their deadline, watchdog stall flags
	// raised, and idempotent submissions replayed from the store.
	storeQuarantines atomic.Int64
	storeTmpSwept    atomic.Int64
	persistRetries   atomic.Int64
	persistDeferred  atomic.Int64
	jobPanics        atomic.Int64
	jobExpiries      atomic.Int64
	jobStalls        atomic.Int64
	idemReplays      atomic.Int64
}

// Comparisons records n paid comparisons by the given class.
func (m *Metrics) Comparisons(class int, n int64) {
	m.comparisons[class&(NumClasses-1)].Add(n)
}

// Memo records the memo-table outcome of one comparison batch: hits served
// free from the table, misses forwarded (and paid).
func (m *Metrics) Memo(class int, hits, misses int64) {
	i := class & (NumClasses - 1)
	if hits != 0 {
		m.memoHit[i].Add(hits)
	}
	if misses != 0 {
		m.memoMiss[i].Add(misses)
	}
}

// PhaseComparisons attributes a per-class comparison delta (a ledger
// snapshot difference taken at a phase boundary) to the given phase.
func (m *Metrics) PhaseComparisons(p Phase, counts [NumClasses]int64) {
	pi := phaseIndex(p)
	for c, n := range counts {
		if n != 0 {
			m.phaseCmp[pi][c].Add(n)
		}
	}
}

// Round records one iteration (filter iteration, 2-MaxFind round,
// Algorithm 5 round) of the given phase.
func (m *Metrics) Round(p Phase) {
	m.phaseRounds[phaseIndex(p)].Add(1)
}

// ObserveGroup records the size of one all-play-all tournament.
func (m *Metrics) ObserveGroup(size int) {
	m.groupSizes.Observe(int64(size))
}

// PoolSubmit records a fan-out of n tasks onto the parallel pool.
func (m *Metrics) PoolSubmit(n int) {
	m.poolBatches.Add(1)
	m.poolTasks.Add(int64(n))
	m.poolDepth.Add(int64(n))
	m.poolBatchSizes.Observe(int64(n))
}

// PoolTaskDone records one completed pool task: the queue-depth gauge drops
// and the executing worker slot accumulates busy time.
func (m *Metrics) PoolTaskDone(worker int, busyNanos int64) {
	m.poolDepth.Add(-1)
	m.poolBusyNanos[worker&(poolWorkerSlots-1)].Add(busyNanos)
}

// BudgetRefusal records one comparison request refused by a budget cap.
func (m *Metrics) BudgetRefusal(class int) {
	m.budgetRefusals[class&(NumClasses-1)].Add(1)
}

// Retry records n transport-level retries by the dispatch retry backend.
func (m *Metrics) Retry(n int64) {
	m.dispatchRetry.Add(n)
}

// RetryExhausted records one retry decorator giving up after burning
// attempts tries.
func (m *Metrics) RetryExhausted(attempts int64) {
	m.retryGiveUps.Add(1)
	m.retryGiveUpAttempts.Add(attempts)
}

// Hedge records one request duplicated after the hedge delay; won reports
// whether the duplicate (not the original) answered first.
func (m *Metrics) Hedge(won bool) {
	m.hedges.Add(1)
	if won {
		m.hedgeWins.Add(1)
	}
}

// GoldProbe records one gold-set health probe; correct reports whether the
// worker answered it correctly.
func (m *Metrics) GoldProbe(correct bool) {
	m.goldProbes.Add(1)
	if !correct {
		m.goldFailures.Add(1)
	}
}

// Quarantine records one worker evicted by the health circuit breaker.
// reason names the detector that fired: "gold" (probe accuracy below the
// floor), "disagree" (raw disagreement rate), or "graph" (an agreement-
// graph verdict); unknown reasons count toward the total only.
func (m *Metrics) Quarantine(reason string) {
	m.quarantines.Add(1)
	switch reason {
	case "gold":
		m.quarantinesGold.Add(1)
	case "disagree":
		m.quarantinesDisagree.Add(1)
	case "graph":
		m.quarantinesGraph.Add(1)
	}
}

// Reinstate records one quarantined worker returned to rotation after its
// half-open probation elapsed; reason names the detector that originally
// evicted it (accepted for trace symmetry with Quarantine).
func (m *Metrics) Reinstate(reason string) {
	_ = reason
	m.reinstates.Add(1)
}

// DegradeDecision records one quality-ladder decision by the degrade
// controller: direction < 0 is a downgrade (weaker rung), > 0 a recovery
// (stronger rung), 0 a stay.
func (m *Metrics) DegradeDecision(direction int) {
	m.degradeDecisions.Add(1)
	switch {
	case direction < 0:
		m.degradeDowngrades.Add(1)
	case direction > 0:
		m.degradeRecoveries.Add(1)
	}
}

// CheckpointWrite records one session checkpoint snapshot written.
func (m *Metrics) CheckpointWrite() {
	m.checkpointWrites.Add(1)
}

// StoreQuarantine records one corrupt record moved to the quarantine
// directory (or left in place when even the move failed).
func (m *Metrics) StoreQuarantine() {
	m.storeQuarantines.Add(1)
}

// StoreTmpSweep records n orphaned temp files swept at startup.
func (m *Metrics) StoreTmpSweep(n int64) {
	m.storeTmpSwept.Add(n)
}

// PersistRetry records one retried job-record write.
func (m *Metrics) PersistRetry() {
	m.persistRetries.Add(1)
}

// PersistDeferred records one job record whose write exhausted its retry
// budget and was deferred to the drain flush.
func (m *Metrics) PersistDeferred() {
	m.persistDeferred.Add(1)
}

// JobPanic records one job failed by an isolated workload panic.
func (m *Metrics) JobPanic() {
	m.jobPanics.Add(1)
}

// JobExpiry records one job settled at its deadline with a partial result.
func (m *Metrics) JobExpiry() {
	m.jobExpiries.Add(1)
}

// JobStall records one watchdog flag: a running job with no checkpoint
// progress for the configured window.
func (m *Metrics) JobStall() {
	m.jobStalls.Add(1)
}

// IdempotentReplay records one submission answered from the store by its
// idempotency key instead of admitting a duplicate job.
func (m *Metrics) IdempotentReplay() {
	m.idemReplays.Add(1)
}

func phaseIndex(p Phase) int {
	if p < 0 || p >= numPhases {
		return int(PhaseOther)
	}
	return int(p)
}

// className maps a class index to its metric label (mirrors worker.Class).
func className(c int) string {
	switch c {
	case 0:
		return "naive"
	case 1:
		return "expert"
	default:
		return "class" + strconv.Itoa(c)
	}
}

// Snapshot renders the metric set as a JSON-marshalable tree — the value the
// expvar "crowdmax" variable reports on /debug/vars. Zero-valued classes and
// phases are omitted so the output stays small.
func (m *Metrics) Snapshot() map[string]any {
	out := make(map[string]any)

	cmp := make(map[string]int64)
	memo := make(map[string]any)
	for c := 0; c < NumClasses; c++ {
		if n := m.comparisons[c].Load(); n != 0 {
			cmp[className(c)] = n
		}
		hit, miss := m.memoHit[c].Load(), m.memoMiss[c].Load()
		if hit != 0 || miss != 0 {
			memo[className(c)] = map[string]int64{"hit": hit, "miss": miss}
		}
	}
	out["comparisons"] = cmp
	out["memo"] = memo

	phases := make(map[string]any)
	for p := Phase(0); p < numPhases; p++ {
		pm := make(map[string]any)
		for c := 0; c < NumClasses; c++ {
			if n := m.phaseCmp[p][c].Load(); n != 0 {
				pm["comparisons_"+className(c)] = n
			}
		}
		if r := m.phaseRounds[p].Load(); r != 0 {
			pm["rounds"] = r
		}
		if len(pm) != 0 {
			phases[p.String()] = pm
		}
	}
	out["phase"] = phases

	out["tournament"] = map[string]any{"group_sizes": m.groupSizes.Snapshot()}

	busy := make(map[string]int64)
	for w := range m.poolBusyNanos {
		if n := m.poolBusyNanos[w].Load(); n != 0 {
			busy["w"+strconv.Itoa(w)] = n
		}
	}
	out["pool"] = map[string]any{
		"batches":        m.poolBatches.Load(),
		"tasks":          m.poolTasks.Load(),
		"queue_depth":    m.poolDepth.Load(),
		"batch_sizes":    m.poolBatchSizes.Snapshot(),
		"worker_busy_ns": busy,
	}

	refusals := make(map[string]int64)
	for c := 0; c < NumClasses; c++ {
		if n := m.budgetRefusals[c].Load(); n != 0 {
			refusals[className(c)] = n
		}
	}
	out["dispatch"] = map[string]any{
		"budget_refusals":       refusals,
		"retries":               m.dispatchRetry.Load(),
		"retry_giveups":         m.retryGiveUps.Load(),
		"retry_giveup_attempts": m.retryGiveUpAttempts.Load(),
		"hedges":                m.hedges.Load(),
		"hedge_wins":            m.hedgeWins.Load(),
	}
	out["health"] = map[string]any{
		"gold_probes":          m.goldProbes.Load(),
		"gold_failures":        m.goldFailures.Load(),
		"quarantines":          m.quarantines.Load(),
		"quarantines_gold":     m.quarantinesGold.Load(),
		"quarantines_disagree": m.quarantinesDisagree.Load(),
		"quarantines_graph":    m.quarantinesGraph.Load(),
		"reinstates":           m.reinstates.Load(),
	}
	out["degrade"] = map[string]any{
		"decisions":  m.degradeDecisions.Load(),
		"downgrades": m.degradeDowngrades.Load(),
		"recoveries": m.degradeRecoveries.Load(),
	}
	out["checkpoint"] = map[string]any{"writes": m.checkpointWrites.Load()}
	out["service"] = map[string]any{
		"store_quarantines": m.storeQuarantines.Load(),
		"store_tmp_swept":   m.storeTmpSwept.Load(),
		"persist_retries":   m.persistRetries.Load(),
		"persist_deferred":  m.persistDeferred.Load(),
		"job_panics":        m.jobPanics.Load(),
		"job_expiries":      m.jobExpiries.Load(),
		"job_stalls":        m.jobStalls.Load(),
		"idem_replays":      m.idemReplays.Load(),
	}
	return out
}

// global holds the installed base scope; nil while observability is off.
var global atomic.Pointer[Scope]

// Enable installs a fresh Metrics (and the given Tracer, which may be nil
// for metrics-only operation) as the process default and returns the
// Metrics. It also registers the expvar export. Enable is typically called
// once at startup; calling it again replaces the previous state.
func Enable(t *Tracer) *Metrics {
	m := &Metrics{}
	global.Store(&Scope{m: m, t: t})
	publish()
	return m
}

// Disable uninstalls the process default; subsequent Trial calls return nil
// and Active returns nil. Scopes created before Disable keep recording into
// the old Metrics.
func Disable() { global.Store(nil) }

// Enabled reports whether observability is on. Call sites use it to skip
// building labels that only a live Scope would consume.
func Enabled() bool { return global.Load() != nil }

// Active returns the installed Metrics, or nil while disabled. Hot paths
// not already holding a Scope (the parallel pool, tournament group
// accounting) use this; the disabled cost is one atomic pointer load.
func Active() *Metrics {
	if s := global.Load(); s != nil {
		return s.m
	}
	return nil
}

// publishOnce guards the expvar registration (Publish panics on duplicates).
var publishOnce sync.Once

func publish() {
	publishOnce.Do(func() {
		expvar.Publish("crowdmax", expvar.Func(func() any {
			s := global.Load()
			if s == nil || s.m == nil {
				return map[string]any{"enabled": false}
			}
			return s.m.Snapshot()
		}))
	})
}
