package obs

import (
	"io"
	"strconv"
	"sync"
)

// F is one key/value field of a trace event. Fields carry either an integer
// or a string payload in a flat struct — no interface boxing — so building a
// field list allocates nothing beyond the (usually stack-held) slice.
type F struct {
	K     string
	I     int64
	S     string
	isStr bool
}

// Fi returns an integer field.
func Fi(k string, v int64) F { return F{K: k, I: v} }

// Fs returns a string field.
func Fs(k, v string) F { return F{K: k, S: v, isStr: true} }

// Tracer writes the structured event trace as JSON Lines: one object per
// event, encoded by hand (no reflection) into a reused buffer under a mutex.
// Events carry a monotonic sequence number instead of a wall-clock
// timestamp, so a sequential run's trace is bit-for-bit reproducible — the
// same property the deterministic replay engine gives results. Concurrent
// runs interleave event order (the sequence number records the interleaving)
// but every event's content is still deterministic.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	seq int64
	err error
}

// NewTracer returns a Tracer writing JSONL to w. The caller owns w's
// lifecycle (e.g. closing the trace file after the run).
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Err returns the first write error, if any; once a write fails the tracer
// drops subsequent events.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// emit encodes and writes one event line.
func (t *Tracer) emit(ev, trial string, seed uint64, phase Phase, fs []F) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	b := append(t.buf[:0], `{"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev)
	if trial != "" {
		b = append(b, `,"trial":`...)
		b = strconv.AppendQuote(b, trial)
	}
	if seed != 0 {
		b = append(b, `,"seed":`...)
		b = strconv.AppendUint(b, seed, 10)
	}
	if phase != PhaseOther {
		b = append(b, `,"phase":`...)
		b = strconv.AppendQuote(b, phase.String())
	}
	for _, f := range fs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.K)
		b = append(b, ':')
		if f.isStr {
			b = strconv.AppendQuote(b, f.S)
		} else {
			b = strconv.AppendInt(b, f.I, 10)
		}
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Scope is the handle instrumented code records through. It couples the
// process Metrics and Tracer with the labels that make trace events
// attributable: the trial identifier, the trial's derived rng stream seed
// (the replay key), and the current algorithm phase.
//
// A nil *Scope is the disabled state — every method is safe and free on a
// nil receiver — so hot paths pay exactly one nil check when observability
// is off.
type Scope struct {
	m     *Metrics
	t     *Tracer
	trial string
	seed  uint64
	phase Phase
}

// Trial derives a Scope for one trial from the installed base scope, or nil
// while observability is disabled. label identifies the trial for humans
// ("fig3/n400/t2"); seed is the trial's derived rng stream seed, the key a
// deterministic replay needs to re-run exactly this trial.
func Trial(label string, seed uint64) *Scope {
	base := global.Load()
	if base == nil {
		return nil
	}
	s := *base
	s.trial = label
	s.seed = seed
	return &s
}

// Scope couples this tracer with the process metrics (when enabled) under
// the given trial label and replay seed, independent of the installed global
// base scope. Services use it to give each job its own trace stream — the
// per-job tracer receives the events while process-wide counters still
// aggregate — without routing every job through the process trace file.
func (t *Tracer) Scope(trial string, seed uint64) *Scope {
	return &Scope{m: Active(), t: t, trial: trial, seed: seed}
}

// WithPhase returns a copy of the scope labelled with the given phase (nil
// in, nil out).
func (s *Scope) WithPhase(p Phase) *Scope {
	if s == nil {
		return nil
	}
	c := *s
	c.phase = p
	return &c
}

// Metrics returns the scope's metric set, or nil.
func (s *Scope) Metrics() *Metrics {
	if s == nil {
		return nil
	}
	return s.m
}

// Seed returns the trial's replay seed (0 on a nil scope).
func (s *Scope) Seed() uint64 {
	if s == nil {
		return 0
	}
	return s.seed
}

// Comparisons records n paid comparisons by class.
func (s *Scope) Comparisons(class int, n int64) {
	if s == nil || s.m == nil || n == 0 {
		return
	}
	s.m.Comparisons(class, n)
}

// Memo records a batch's memo hits and misses by class.
func (s *Scope) Memo(class int, hits, misses int64) {
	if s == nil || s.m == nil || (hits == 0 && misses == 0) {
		return
	}
	s.m.Memo(class, hits, misses)
}

// PhaseComparisons attributes a per-class ledger delta to the scope's phase.
func (s *Scope) PhaseComparisons(counts [NumClasses]int64) {
	if s == nil || s.m == nil {
		return
	}
	s.m.PhaseComparisons(s.phase, counts)
}

// Round records one iteration of the scope's phase.
func (s *Scope) Round() {
	if s == nil || s.m == nil {
		return
	}
	s.m.Round(s.phase)
}

// Event emits one trace event carrying the scope's trial, seed, and phase
// labels plus the given fields. A no-op without a tracer; callers guard the
// call (and the field-list construction) behind a nil check on the scope.
func (s *Scope) Event(ev string, fs ...F) {
	if s == nil || s.t == nil {
		return
	}
	s.t.emit(ev, s.trial, s.seed, s.phase, fs)
}

// Tracing reports whether events emitted through this scope reach a tracer;
// callers use it to skip assembling expensive field lists.
func (s *Scope) Tracing() bool { return s != nil && s.t != nil }
