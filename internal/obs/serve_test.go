package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeExposesVarsAndPprof(t *testing.T) {
	t.Cleanup(Disable)
	m := Enable(nil)
	m.Comparisons(0, 11)
	m.PhaseComparisons(PhaseFilter, [NumClasses]int64{11})

	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars struct {
		Crowdmax struct {
			Comparisons map[string]int64 `json:"comparisons"`
			Phase       map[string]struct {
				ComparisonsNaive int64 `json:"comparisons_naive"`
			} `json:"phase"`
		} `json:"crowdmax"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if vars.Crowdmax.Comparisons["naive"] != 11 {
		t.Errorf("crowdmax.comparisons.naive = %d, want 11", vars.Crowdmax.Comparisons["naive"])
	}
	if vars.Crowdmax.Phase["filter"].ComparisonsNaive != 11 {
		t.Errorf("crowdmax.phase.filter.comparisons_naive = %d, want 11", vars.Crowdmax.Phase["filter"].ComparisonsNaive)
	}

	resp, err = client.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	index, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
	if !strings.Contains(string(index), "goroutine") {
		t.Errorf("/debug/pprof/ index does not list profiles:\n%.200s", index)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999"); err == nil {
		t.Fatal("expected error for unusable address")
	}
}
