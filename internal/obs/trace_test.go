package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// traceLines decodes each JSONL line of the tracer output.
func traceLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestTraceRoundTrip(t *testing.T) {
	t.Cleanup(Disable)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	Enable(tr)

	sc := Trial("fig3/n400/t2", 12345)
	if !sc.Tracing() {
		t.Fatal("scope not tracing")
	}
	sc.Event("trial.start", Fi("n", 400), Fs("approach", "alg1"))
	fsc := sc.WithPhase(PhaseFilter)
	fsc.Event("filter.group", Fi("size", 40), Fi("survivors", 1))
	sc.WithPhase(PhaseTwoMaxFind).Event("2maxfind.round", Fi("round", 1))

	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	if tr.Events() != 3 {
		t.Fatalf("tracer recorded %d events, want 3", tr.Events())
	}

	recs := traceLines(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("got %d JSONL records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec["seq"] != float64(i+1) {
			t.Errorf("record %d: seq = %v, want %d", i, rec["seq"], i+1)
		}
		if rec["trial"] != "fig3/n400/t2" {
			t.Errorf("record %d: trial = %v", i, rec["trial"])
		}
		if rec["seed"] != float64(12345) {
			t.Errorf("record %d: seed = %v, want 12345", i, rec["seed"])
		}
	}
	if recs[0]["ev"] != "trial.start" || recs[0]["n"] != float64(400) || recs[0]["approach"] != "alg1" {
		t.Errorf("bad first record: %v", recs[0])
	}
	if _, hasPhase := recs[0]["phase"]; hasPhase {
		t.Errorf("PhaseOther record should omit phase: %v", recs[0])
	}
	if recs[1]["phase"] != "filter" || recs[1]["size"] != float64(40) {
		t.Errorf("bad filter record: %v", recs[1])
	}
	if recs[2]["phase"] != "2maxfind" {
		t.Errorf("bad 2maxfind record: %v", recs[2])
	}
}

func TestTraceOmitsEmptyTrialAndSeed(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sc := &Scope{m: &Metrics{}, t: tr}
	sc.Event("bare")
	recs := traceLines(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	for _, k := range []string{"trial", "seed", "phase"} {
		if _, ok := recs[0][k]; ok {
			t.Errorf("zero-valued %q should be omitted: %v", k, recs[0])
		}
	}
}

func TestTraceStringEscaping(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sc := &Scope{m: &Metrics{}, t: tr, trial: `he said "hi"` + "\n\t\\"}
	sc.Event("esc", Fs("msg", "a\"b\\c\nd"))
	recs := traceLines(t, &buf)
	if recs[0]["trial"] != "he said \"hi\"\n\t\\" {
		t.Errorf("trial round-trip failed: %q", recs[0]["trial"])
	}
	if recs[0]["msg"] != "a\"b\\c\nd" {
		t.Errorf("field round-trip failed: %q", recs[0]["msg"])
	}
}

func TestTraceConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	base := &Scope{m: &Metrics{}, t: tr}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &Scope{m: base.m, t: base.t, trial: "w", seed: uint64(w + 1)}
			for i := 0; i < perWriter; i++ {
				sc.Event("tick", Fi("i", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
	recs := traceLines(t, &buf)
	if len(recs) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(recs), writers*perWriter)
	}
	// seq must be a permutation of 1..N even under concurrency.
	seen := make(map[float64]bool, len(recs))
	for _, rec := range recs {
		seq := rec["seq"].(float64)
		if seen[seq] {
			t.Fatalf("duplicate seq %v", seq)
		}
		seen[seq] = true
	}
}

// errWriter fails after the first write.
type errWriter struct{ writes int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestTraceStopsAfterWriteError(t *testing.T) {
	w := &errWriter{}
	tr := NewTracer(w)
	sc := &Scope{m: &Metrics{}, t: tr}
	sc.Event("one")
	sc.Event("two")   // fails
	sc.Event("three") // dropped
	if tr.Err() == nil {
		t.Fatal("expected a recorded write error")
	}
	if w.writes != 2 {
		t.Errorf("writer called %d times, want 2 (events after the error must be dropped)", w.writes)
	}
}
