package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of a Histogram: bucket b counts
// observations v with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b); bucket 0
// counts v == 0 and the last bucket absorbs everything wider.
const histBuckets = 32

// Histogram is a lock-free power-of-two histogram. Observing is two atomic
// adds; the zero value is ready to use. Exponential buckets fit the
// quantities measured here (tournament group sizes, pool batch sizes), whose
// interesting variation is multiplicative.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot renders the histogram as a JSON-marshalable map: total count and
// sum plus one "le_<upper>" entry per non-empty bucket, where <upper> is the
// bucket's inclusive upper bound 2^b − 1.
func (h *Histogram) Snapshot() map[string]int64 {
	out := map[string]int64{
		"count": h.n.Load(),
		"sum":   h.sum.Load(),
	}
	for b := 0; b < histBuckets; b++ {
		if c := h.counts[b].Load(); c != 0 {
			upper := int64(1)<<uint(b) - 1
			out["le_"+strconv.FormatInt(upper, 10)] = c
		}
	}
	return out
}
