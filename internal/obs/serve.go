package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof" // also registers /debug/pprof/ on the default mux
)

// Serve starts the observability HTTP server on addr (e.g. "localhost:6060"
// or ":0" for an ephemeral port) and returns the bound address. The server
// exposes the standard runtime endpoints on the default mux:
//
//	/debug/vars    expvar — including the "crowdmax" metric tree
//	/debug/pprof/  CPU, heap, goroutine, mutex, block profiles
//
// The server runs until the process exits; Serve is non-blocking. Metrics
// appear under /debug/vars once Enable has installed them (Serve registers
// the export either way, reporting {"enabled": false} while disabled).
func Serve(addr string) (net.Addr, error) {
	publish()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck — server lives for the process
	return ln.Addr(), nil
}

// Routes mounts the same observability endpoints on a caller-owned mux, for
// servers (like maxcrowdd) that serve application routes and debug routes
// from one listener instead of the default mux. As with Serve, the expvar
// export is registered eagerly and reports {"enabled": false} until Enable
// installs the metric set.
func Routes(mux *http.ServeMux) {
	publish()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
