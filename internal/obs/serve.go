package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
)

// Serve starts the observability HTTP server on addr (e.g. "localhost:6060"
// or ":0" for an ephemeral port) and returns the bound address. The server
// exposes the standard runtime endpoints on the default mux:
//
//	/debug/vars    expvar — including the "crowdmax" metric tree
//	/debug/pprof/  CPU, heap, goroutine, mutex, block profiles
//
// The server runs until the process exits; Serve is non-blocking. Metrics
// appear under /debug/vars once Enable has installed them (Serve registers
// the export either way, reporting {"enabled": false} while disabled).
func Serve(addr string) (net.Addr, error) {
	publish()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck — server lives for the process
	return ln.Addr(), nil
}
