package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricsCountersConcurrent(t *testing.T) {
	m := &Metrics{}
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.Comparisons(0, 1)
				m.Comparisons(1, 2)
				m.Memo(0, 1, 1)
				m.Round(PhaseFilter)
				m.PhaseComparisons(PhaseTwoMaxFind, [NumClasses]int64{0, 3})
				m.ObserveGroup(40)
				m.PoolSubmit(2)
				m.PoolTaskDone(w, 10)
				m.PoolTaskDone(w, 10)
			}
		}(w)
	}
	wg.Wait()

	total := int64(writers * perWriter)
	if got := m.comparisons[0].Load(); got != total {
		t.Errorf("naive comparisons = %d, want %d", got, total)
	}
	if got := m.comparisons[1].Load(); got != 2*total {
		t.Errorf("expert comparisons = %d, want %d", got, 2*total)
	}
	if got := m.memoHit[0].Load(); got != total {
		t.Errorf("memo hits = %d, want %d", got, total)
	}
	if got := m.memoMiss[0].Load(); got != total {
		t.Errorf("memo misses = %d, want %d", got, total)
	}
	if got := m.phaseRounds[PhaseFilter].Load(); got != total {
		t.Errorf("filter rounds = %d, want %d", got, total)
	}
	if got := m.phaseCmp[PhaseTwoMaxFind][1].Load(); got != 3*total {
		t.Errorf("2maxfind expert delta = %d, want %d", got, 3*total)
	}
	if got := m.groupSizes.Count(); got != total {
		t.Errorf("group observations = %d, want %d", got, total)
	}
	if got := m.poolDepth.Load(); got != 0 {
		t.Errorf("queue depth = %d, want 0 after all tasks done", got)
	}
	if got := m.poolTasks.Load(); got != 2*total {
		t.Errorf("pool tasks = %d, want %d", got, 2*total)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
	// -5 clamps to 0, so the sum is 0+1+2+3+4+7+8+1023.
	if got := h.Sum(); got != 1048 {
		t.Fatalf("sum = %d, want 1048", got)
	}
	snap := h.Snapshot()
	checks := map[string]int64{
		"le_0":    2, // 0 and the clamped -5
		"le_1":    1,
		"le_3":    2, // 2, 3
		"le_7":    2, // 4, 7
		"le_15":   1, // 8
		"le_1023": 1,
	}
	for k, want := range checks {
		if snap[k] != want {
			t.Errorf("bucket %s = %d, want %d (snapshot %v)", k, snap[k], want, snap)
		}
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	m := &Metrics{}
	m.Comparisons(0, 5)
	m.Memo(1, 2, 3)
	m.PhaseComparisons(PhaseFilter, [NumClasses]int64{5})
	m.Round(PhaseFilter)
	m.ObserveGroup(16)
	m.PoolSubmit(4)
	m.PoolTaskDone(0, 100)

	data, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var tree map[string]any
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	phase, ok := tree["phase"].(map[string]any)
	if !ok {
		t.Fatalf("no phase tree in %s", data)
	}
	filter, ok := phase["filter"].(map[string]any)
	if !ok {
		t.Fatalf("no filter phase in %s", data)
	}
	if filter["comparisons_naive"] != float64(5) {
		t.Errorf("filter naive comparisons = %v, want 5", filter["comparisons_naive"])
	}
	if filter["rounds"] != float64(1) {
		t.Errorf("filter rounds = %v, want 1", filter["rounds"])
	}
}

func TestEnableDisable(t *testing.T) {
	t.Cleanup(Disable)
	if Enabled() || Active() != nil {
		t.Fatal("observability unexpectedly enabled at test start")
	}
	if sc := Trial("x", 1); sc != nil {
		t.Fatal("Trial returned a scope while disabled")
	}
	m := Enable(nil)
	if !Enabled() || Active() != m {
		t.Fatal("Enable did not install metrics")
	}
	sc := Trial("fig3/n400/t0", 42)
	if sc == nil {
		t.Fatal("Trial returned nil while enabled")
	}
	if sc.Seed() != 42 {
		t.Errorf("scope seed = %d, want 42", sc.Seed())
	}
	sc.Comparisons(0, 7)
	if got := m.comparisons[0].Load(); got != 7 {
		t.Errorf("scope write not visible: %d", got)
	}
	Disable()
	if Enabled() || Active() != nil {
		t.Fatal("Disable did not uninstall")
	}
	// Scopes created before Disable keep recording into the old metrics.
	sc.Comparisons(0, 1)
	if got := m.comparisons[0].Load(); got != 8 {
		t.Errorf("pre-Disable scope stopped recording: %d", got)
	}
}

func TestScopeNilSafety(t *testing.T) {
	var sc *Scope
	sc.Comparisons(0, 1)
	sc.Memo(0, 1, 1)
	sc.PhaseComparisons([NumClasses]int64{1})
	sc.Round()
	sc.Event("x", Fi("a", 1))
	if sc.WithPhase(PhaseFilter) != nil {
		t.Error("WithPhase on nil scope returned non-nil")
	}
	if sc.Metrics() != nil || sc.Seed() != 0 || sc.Tracing() {
		t.Error("nil scope leaked state")
	}
}

// TestDisabledPathAllocsNothing pins the contract the <2% benchmark budget
// rests on: with observability off, the instrumentation hooks on the hot
// paths must not allocate.
func TestDisabledPathAllocsNothing(t *testing.T) {
	Disable()
	var sc *Scope
	if avg := testing.AllocsPerRun(1000, func() {
		if m := Active(); m != nil {
			t.Fatal("enabled")
		}
		sc.Comparisons(0, 1)
		sc.Memo(0, 1, 1)
		sc.Round()
		sc.Event("ev", Fi("a", 1), Fi("b", 2), Fs("c", "d"))
		if sc.Tracing() {
			t.Fatal("tracing")
		}
	}); avg != 0 {
		t.Errorf("disabled path allocates %.1f objects per op, want 0", avg)
	}
}

// TestEnabledCountersAllocNothing checks the metrics-only enabled path (no
// tracer) is also allocation-free — counters are plain atomic adds.
func TestEnabledCountersAllocNothing(t *testing.T) {
	t.Cleanup(Disable)
	Enable(nil)
	m := Active()
	if avg := testing.AllocsPerRun(1000, func() {
		m.Comparisons(0, 1)
		m.Memo(0, 1, 1)
		m.Round(PhaseFilter)
		m.ObserveGroup(40)
		m.PoolSubmit(8)
		m.PoolTaskDone(1, 50)
	}); avg != 0 {
		t.Errorf("enabled counter path allocates %.1f objects per op, want 0", avg)
	}
}
