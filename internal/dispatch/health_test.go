package dispatch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

// countingBackend answers via cmp and counts calls.
type countingBackend struct {
	cmp   worker.Comparator
	calls atomic.Int64
}

func (b *countingBackend) Answer(ctx context.Context, r Request) (Answer, error) {
	b.calls.Add(1)
	return Answer{Winner: b.cmp.Compare(r.A, r.B)}, nil
}

func honestWorker() *countingBackend { return &countingBackend{cmp: worker.Truth} }

// alwaysWrong reports the loser of every pair — a deterministic worst-case
// spammer, so quarantine tests need no luck.
func alwaysWrong() *countingBackend {
	return &countingBackend{cmp: worker.Func(func(a, b item.Item) item.Item {
		if a.Value < b.Value {
			return a
		}
		return b
	})}
}

func training() []item.Item {
	return []item.Item{it(0, 0.1), it(1, 0.3), it(2, 0.5), it(3, 0.7), it(4, 1.0)}
}

func TestGoldFromTraining(t *testing.T) {
	gold := GoldFromTraining(training(), 0.25, 0)
	// Items 0..2 are > 0.25 away from the max (value 1.0); item 3 (gap 0.3)
	// also qualifies. Every probe's winner is the training max, ID 4.
	if len(gold) != 4 {
		t.Fatalf("got %d gold pairs, want 4", len(gold))
	}
	for _, g := range gold {
		if g.WinnerID != 4 || g.B.ID != 4 {
			t.Fatalf("gold pair %+v does not name the training max", g)
		}
	}
	if gold := GoldFromTraining(training(), 0.25, 2); len(gold) != 2 {
		t.Fatalf("cap ignored: got %d pairs, want 2", len(gold))
	}
	if gold := GoldFromTraining(training(), 10, 0); len(gold) != 0 {
		t.Fatalf("minGap above every distance still yielded %d pairs", len(gold))
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, 1); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPool([]PoolWorker{{Name: "w"}}, 1); err == nil {
		t.Fatal("nil backend accepted")
	}
}

func TestPoolSpreadsRequests(t *testing.T) {
	a, b := honestWorker(), honestWorker()
	p, err := NewPool([]PoolWorker{{Name: "a", Backend: a}, {Name: "b", Backend: b}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ans, err := p.Answer(context.Background(), req(it(0, 1), it(1, 2)))
		if err != nil {
			t.Fatal(err)
		}
		if ans.Winner.ID != 1 {
			t.Fatalf("honest pool answered wrong: winner %d", ans.Winner.ID)
		}
	}
	if a.calls.Load() == 0 || b.calls.Load() == 0 {
		t.Fatalf("routing starved a worker: a=%d b=%d", a.calls.Load(), b.calls.Load())
	}
	if p.ActiveWorkers() != 2 || p.Evictions() != 0 {
		t.Fatalf("healthless pool evicted workers: active=%d evictions=%d",
			p.ActiveWorkers(), p.Evictions())
	}
}

func TestPoolQuarantinesGoldFailer(t *testing.T) {
	bad := alwaysWrong()
	workers := []PoolWorker{
		{Name: "honest-0", Backend: honestWorker()},
		{Name: "honest-1", Backend: honestWorker()},
		{Name: "bad", Backend: bad},
	}
	p, err := NewPool(workers, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableHealth(HealthConfig{Gold: GoldFromTraining(training(), 0.25, 0), ProbeEvery: 2, Seed: 7})
	for i := 0; i < 200; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	cards := p.Scorecards()
	for _, c := range cards {
		switch c.Name {
		case "bad":
			if !c.Quarantined {
				t.Fatalf("always-wrong worker not quarantined: %+v", c)
			}
			if c.GoldCorrect != 0 {
				t.Fatalf("always-wrong worker passed %d gold probes", c.GoldCorrect)
			}
		default:
			if c.Quarantined {
				t.Fatalf("honest worker quarantined: %+v", c)
			}
			if c.GoldProbes > 0 && c.GoldAccuracy() != 1 {
				t.Fatalf("honest worker failed gold probes: %+v", c)
			}
		}
	}
	if p.ActiveWorkers() != 2 || p.Evictions() != 1 {
		t.Fatalf("active=%d evictions=%d, want 2 and 1", p.ActiveWorkers(), p.Evictions())
	}
	// A quarantined worker receives no further traffic.
	served := bad.calls.Load()
	for i := 0; i < 50; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	if bad.calls.Load() != served {
		t.Fatalf("quarantined worker served %d more requests", bad.calls.Load()-served)
	}
}

func TestPoolNeverDropsBelowMinActive(t *testing.T) {
	// Every worker is rotten; the pool must keep MinActive of them anyway.
	p, err := NewPool([]PoolWorker{
		{Name: "bad-0", Backend: alwaysWrong()},
		{Name: "bad-1", Backend: alwaysWrong()},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableHealth(HealthConfig{Gold: GoldFromTraining(training(), 0.25, 0), ProbeEvery: 2, Seed: 3})
	for i := 0; i < 200; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.ActiveWorkers(); got != 1 {
		t.Fatalf("active = %d, want the MinActive floor of 1", got)
	}
}

func TestPoolDisagreementQuarantine(t *testing.T) {
	// No gold set: the bad worker must fall to disagreement sampling alone.
	// Only the original answerer is charged, so the honest majority's rate
	// stays below the ceiling while the bad worker's hits 100%.
	p, err := NewPool([]PoolWorker{
		{Name: "honest-0", Backend: honestWorker()},
		{Name: "honest-1", Backend: honestWorker()},
		{Name: "honest-2", Backend: honestWorker()},
		{Name: "bad", Backend: alwaysWrong()},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableHealth(HealthConfig{DisagreeEvery: 1, MaxDisagree: 0.75, MinProbes: 4, Seed: 11})
	for i := 0; i < 300; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range p.Scorecards() {
		if c.Name == "bad" && !c.Quarantined {
			t.Fatalf("bad worker survived disagreement sampling: %+v", c)
		}
		if c.Name != "bad" && c.Quarantined {
			t.Fatalf("honest worker quarantined by disagreement sampling: %+v", c)
		}
	}
}

func TestPoolPropagatesBackendErrors(t *testing.T) {
	boom := errors.New("boom")
	p, err := NewPool([]PoolWorker{{Backend: Func(func(context.Context, Request) (Answer, error) {
		return Answer{}, boom
	})}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Answer(context.Background(), req(it(0, 1), it(1, 2))); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the backend's error", err)
	}
}

func TestHedgeFastPathNoDuplicate(t *testing.T) {
	inner := honestWorker()
	h := NewHedge(inner, 50*time.Millisecond)
	ans, err := h.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	if err != nil || ans.Winner.ID != 1 {
		t.Fatalf("ans=%+v err=%v", ans, err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("fast answer still hedged: %d calls", inner.calls.Load())
	}
}

func TestHedgeDuplicatesSlowRequest(t *testing.T) {
	var calls atomic.Int64
	inner := Func(func(ctx context.Context, r Request) (Answer, error) {
		if calls.Add(1) == 1 {
			// First copy hangs until cancelled.
			<-ctx.Done()
			return Answer{}, ctx.Err()
		}
		return Answer{Winner: r.B}, nil
	})
	h := NewHedge(inner, 5*time.Millisecond)
	ans, err := h.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Winner.ID != 1 {
		t.Fatalf("winner = %d, want the hedged copy's answer", ans.Winner.ID)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2 (original + hedge)", calls.Load())
	}
}

func TestHedgeBothFailSurfacesFirstError(t *testing.T) {
	boom := errors.New("boom")
	inner := Func(func(ctx context.Context, r Request) (Answer, error) {
		time.Sleep(2 * time.Millisecond)
		return Answer{}, boom
	})
	h := NewHedge(inner, time.Millisecond)
	if _, err := h.Answer(context.Background(), req(it(0, 1), it(1, 2))); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestHedgeHonorsCancellation(t *testing.T) {
	inner := Func(func(ctx context.Context, r Request) (Answer, error) {
		<-ctx.Done()
		return Answer{}, ctx.Err()
	})
	h := NewHedge(inner, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := h.Answer(ctx, req(it(0, 1), it(1, 2))); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// healingBackend answers wrong until healed, then honestly — a worker whose
// quality genuinely recovers, for half-open circuit-breaker tests.
type healingBackend struct {
	healed atomic.Bool
	calls  atomic.Int64
}

func (b *healingBackend) Answer(ctx context.Context, r Request) (Answer, error) {
	b.calls.Add(1)
	w := r.A
	if r.B.Value > r.A.Value {
		w = r.B
	}
	if !b.healed.Load() {
		// Report the loser.
		if w == r.A {
			w = r.B
		} else {
			w = r.A
		}
	}
	return Answer{Winner: w}, nil
}

func TestPoolReprobeReinstatesHealedWorker(t *testing.T) {
	sick := &healingBackend{}
	p, err := NewPool([]PoolWorker{
		{Name: "honest-0", Backend: honestWorker()},
		{Name: "honest-1", Backend: honestWorker()},
		{Name: "sick", Backend: sick},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableHealth(HealthConfig{
		Gold: GoldFromTraining(training(), 0.25, 0), ProbeEvery: 2,
		ReprobeAfter: 25, Seed: 7,
	})
	drive := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
				t.Fatal(err)
			}
		}
	}
	drive(200)
	if p.Evictions() == 0 {
		t.Fatal("sick worker was never quarantined")
	}
	// The breaker is half-open: sitting out ReprobeAfter routing decisions
	// earns the worker a fresh scorecard — even while it is still sick, so
	// it cycles quarantine → reprobe → quarantine.
	if p.Reinstates() == 0 {
		t.Fatalf("sick worker was never reinstated after %d decisions", 200)
	}
	evictionsWhileSick := p.Evictions()
	if evictionsWhileSick < 2 {
		t.Fatalf("still-sick worker re-quarantined %d times, want ≥ 2 (reprobe must re-test)", evictionsWhileSick)
	}

	// Once healed, reinstatement sticks: the worker passes its probes and
	// serves real traffic again. (At most one more eviction is legitimate —
	// wrong answers given while still sick may already sit on the current
	// scorecard when the healing lands.)
	sick.healed.Store(true)
	drive(400)
	if got := p.ActiveWorkers(); got != 3 {
		t.Fatalf("active = %d after healing, want all 3 workers back", got)
	}
	if p.Evictions() > evictionsWhileSick+1 {
		t.Fatalf("healed worker kept getting evicted: %d → %d evictions", evictionsWhileSick, p.Evictions())
	}
	for _, c := range p.Scorecards() {
		if c.Name == "sick" {
			if c.Quarantined {
				t.Fatalf("healed worker still quarantined: %+v", c)
			}
			if c.GoldProbes > 0 && c.GoldAccuracy() != 1 {
				t.Fatalf("healed worker's fresh scorecard carries old failures: %+v", c)
			}
		}
	}
}

func TestPoolPermanentQuarantineWithoutReprobe(t *testing.T) {
	// ReprobeAfter unset: the pre-existing contract — quarantine is forever.
	p, err := NewPool([]PoolWorker{
		{Name: "honest-0", Backend: honestWorker()},
		{Name: "honest-1", Backend: honestWorker()},
		{Name: "bad", Backend: alwaysWrong()},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableHealth(HealthConfig{Gold: GoldFromTraining(training(), 0.25, 0), ProbeEvery: 2, Seed: 7})
	for i := 0; i < 400; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	if p.Reinstates() != 0 {
		t.Fatalf("permanent quarantine reinstated %d workers", p.Reinstates())
	}
	if p.Evictions() != 1 || p.ActiveWorkers() != 2 {
		t.Fatalf("evictions=%d active=%d, want 1 and 2", p.Evictions(), p.ActiveWorkers())
	}
}
