package dispatch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/rng"
	"crowdmax/internal/trust"
	"crowdmax/internal/worker"
)

// ScorerMode selects which detector feeds the quarantine circuit breaker.
type ScorerMode string

const (
	// ScorerGold is the historical detector (and the zero value): gold-set
	// probe accuracy plus the raw disagreement rate.
	ScorerGold ScorerMode = "gold"
	// ScorerGraph is the gold-free detector: workers are scored by pooled
	// agreement with the dense core extracted from the worker agreement
	// graph (internal/trust), built from the same disagreement-sampling
	// duplicates the pool already pays for. Catches coordinated cliques
	// that answer gold honestly; needs no gold set at all.
	ScorerGraph ScorerMode = "graph"
	// ScorerHybrid runs both detectors; either may condemn a worker.
	ScorerHybrid ScorerMode = "hybrid"
)

// graphVerdictFloor is the minimum extraction confidence at which graph
// verdicts are applied: below it the graph is too thin (or the core too
// contested) to evict anyone.
const graphVerdictFloor = 0.5

// GoldPair is one comparison with a known correct answer, used to probe
// worker reliability. Algorithm 4's training set is the natural source: it
// compares each training element against the known training maximum, so any
// pair (x, max) with d(x, max) above the naïve threshold is a question an
// honest worker must answer correctly.
type GoldPair struct {
	// A and B are the probe elements.
	A, B item.Item
	// WinnerID is the ID of the known correct answer.
	WinnerID int
}

// GoldFromTraining builds gold probes Algorithm-4 style from a training set
// with known maximum: every element whose distance from the maximum exceeds
// minGap yields one (element, max) probe, up to max pairs (0 = unlimited).
// minGap should be at least the naïve threshold δn, so the threshold model
// obliges honest workers to answer every probe correctly.
func GoldFromTraining(training []item.Item, minGap float64, max int) []GoldPair {
	best := 0
	for i := 1; i < len(training); i++ {
		if training[i].Value > training[best].Value {
			best = i
		}
	}
	var gold []GoldPair
	for i, x := range training {
		if i == best || item.Distance(x, training[best]) <= minGap {
			continue
		}
		gold = append(gold, GoldPair{A: x, B: training[best], WinnerID: training[best].ID})
		if max > 0 && len(gold) >= max {
			break
		}
	}
	return gold
}

// HealthConfig configures per-worker health tracking on a Pool: gold-set
// probing, disagreement sampling, and the quarantine circuit breaker. The
// zero value (no gold set, all thresholds zero) disables tracking.
type HealthConfig struct {
	// Gold is the probe set; empty disables gold probing.
	Gold []GoldPair
	// Floor is the minimum gold accuracy a worker must sustain; workers
	// below it (after MinProbes probes) are quarantined. Defaults to 0.7,
	// the industry-standard gold floor the paper's platform section cites.
	Floor float64
	// MinProbes is the number of gold answers required before the floor is
	// enforced, so one unlucky probe cannot evict an honest worker.
	// Defaults to 4.
	MinProbes int
	// ProbeEvery issues one gold probe per worker every N routed requests.
	// Defaults to 8.
	ProbeEvery int
	// DisagreeEvery, when > 0, duplicates every Nth request to a second
	// worker and records disagreement between the two answers.
	DisagreeEvery int
	// MaxDisagree quarantines a worker whose disagreement rate (after
	// MinProbes duplicated answers) exceeds it. Defaults to 1 (disabled)
	// because under-threshold pairs legitimately disagree.
	MaxDisagree float64
	// MinActive is the number of workers the pool refuses to go below, no
	// matter how sick they look — somebody has to answer. Defaults to 1.
	MinActive int
	// HedgeAfter, when > 0, wraps the session's backends in a Hedge
	// decorator with this delay (consumed by Session, not Pool).
	HedgeAfter time.Duration
	// ReprobeAfter, when > 0, makes the quarantine half-open: an evicted
	// worker sits out that many routing decisions and is then reinstated
	// with a clean scorecard, getting a fresh chance to prove itself (and
	// getting re-quarantined if still sick). 0 keeps quarantine permanent.
	ReprobeAfter int
	// Scorer selects the detector feeding the breaker: ScorerGold (the
	// zero value, historical behaviour), ScorerGraph (gold-free agreement-
	// graph extraction), or ScorerHybrid (both). The graph scorers condemn
	// a worker whose pooled agreement with the extracted core falls below
	// Floor, once the extraction's confidence clears the verdict floor.
	Scorer ScorerMode
	// Trust parameterizes the agreement-graph extractor behind ScorerGraph
	// and ScorerHybrid; the zero value gets trust.Config's defaults, with
	// the seed falling back to Seed.
	Trust trust.Config
	// Seed seeds probe selection.
	Seed uint64
}

// IsZero reports whether the config enables nothing.
func (c HealthConfig) IsZero() bool {
	return len(c.Gold) == 0 && c.Floor == 0 && c.MinProbes == 0 && c.ProbeEvery == 0 &&
		c.DisagreeEvery == 0 && c.MaxDisagree == 0 && c.MinActive == 0 &&
		c.HedgeAfter == 0 && c.ReprobeAfter == 0 && c.Seed == 0 &&
		(c.Scorer == "" || c.Scorer == ScorerGold)
}

// graphScorer reports whether the config runs the agreement-graph detector.
func (c HealthConfig) graphScorer() bool {
	return c.Scorer == ScorerGraph || c.Scorer == ScorerHybrid
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Floor <= 0 {
		c.Floor = 0.7
	}
	if c.MinProbes <= 0 {
		c.MinProbes = 4
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 8
	}
	if c.MaxDisagree <= 0 {
		c.MaxDisagree = 1
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.Scorer == "" {
		c.Scorer = ScorerGold
	}
	if c.graphScorer() {
		// The graph is fed by disagreement-sampling duplicates; a graph
		// scorer without sampling would never observe anything.
		if c.DisagreeEvery <= 0 {
			c.DisagreeEvery = 8
		}
		if c.Trust.Seed == 0 {
			c.Trust.Seed = c.Seed
		}
	}
	return c
}

// PoolWorker is one named worker backend in a Pool.
type PoolWorker struct {
	// Name identifies the worker in scorecards.
	Name string
	// Backend answers the worker's comparisons.
	Backend Backend
}

// Scorecard is a point-in-time copy of one worker's health counters.
type Scorecard struct {
	// Name is the worker's name.
	Name string
	// Answered counts requests routed to the worker (excluding probes).
	Answered int64
	// GoldProbes and GoldCorrect count gold probes issued and passed.
	GoldProbes, GoldCorrect int64
	// Duplicated and Disagreed count disagreement samples and mismatches.
	Duplicated, Disagreed int64
	// Quarantined reports whether the circuit breaker evicted the worker.
	Quarantined bool
	// Reason names the detector that quarantined the worker ("gold",
	// "disagree", or "graph"); "" while not quarantined.
	Reason string
	// TrustScore is the worker's pooled agreement rate with the extracted
	// core from the latest graph extraction, or -1 when no graph scorer
	// runs (or the worker has too few samples for a score yet).
	TrustScore float64
	// InCore reports whether the latest extraction placed the worker in the
	// dense core. Always false without a graph scorer.
	InCore bool
}

// GoldAccuracy returns the worker's gold pass rate (1 with no probes yet).
func (s Scorecard) GoldAccuracy() float64 {
	if s.GoldProbes == 0 {
		return 1
	}
	return float64(s.GoldCorrect) / float64(s.GoldProbes)
}

// poolWorker is a Pool's mutable per-worker record; all fields are guarded
// by the pool mutex.
type poolWorker struct {
	PoolWorker
	answered    int64
	goldN       int64
	goldOK      int64
	dupN        int64
	disagree    int64
	sinceProbe  int
	quarantined bool
	// reason names the detector that quarantined the worker; "" when not
	// quarantined.
	reason string
	// satOut counts routing decisions this worker has sat out while
	// quarantined, toward the half-open ReprobeAfter threshold.
	satOut int
}

// Pool multiplexes comparison requests across a set of named worker
// backends with seeded routing — the crowd made explicit. With health
// tracking enabled (EnableHealth) it maintains a per-worker scorecard fed by
// gold-set probes and disagreement sampling, and a circuit breaker
// quarantines any worker whose gold accuracy falls below the reliability
// floor, never reducing the pool below MinActive workers. Safe for
// concurrent use; routing decisions are serialized under one mutex while
// the backend calls themselves run outside it.
type Pool struct {
	mu      sync.Mutex
	workers []*poolWorker
	active  int
	r       *rng.Source

	health     bool
	cfg        HealthConfig
	evictions  int64
	reinstates int64

	// graph is the agreement graph behind the graph/hybrid scorers (nil
	// under ScorerGold); ext is its latest extraction and sinceExtract the
	// observations accumulated since, toward Trust.ExtractEvery.
	graph        *trust.Graph
	ext          trust.Extraction
	sinceExtract int
}

// NewPool builds a pool over the given workers with seeded routing.
func NewPool(workers []PoolWorker, seed uint64) (*Pool, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("dispatch: pool needs at least one worker")
	}
	p := &Pool{r: rng.New(seed).Child("pool-route"), active: len(workers)}
	for i, w := range workers {
		if w.Backend == nil {
			return nil, fmt.Errorf("dispatch: pool worker %d (%q) has no backend", i, w.Name)
		}
		if w.Name == "" {
			w.Name = fmt.Sprintf("worker-%d", i)
		}
		p.workers = append(p.workers, &poolWorker{PoolWorker: w})
	}
	return p, nil
}

// EnableHealth turns on health tracking per cfg (defaults applied).
func (p *Pool) EnableHealth(cfg HealthConfig) {
	p.mu.Lock()
	p.cfg = cfg.withDefaults()
	p.health = true
	if p.cfg.graphScorer() {
		p.graph = trust.New(p.cfg.Trust)
		p.cfg.Trust = p.graph.Config() // trust defaults (ExtractEvery &c.)
	}
	p.mu.Unlock()
}

// Answer implements Backend: route to a seeded-random active worker,
// interleave gold probes and disagreement samples per the health config, and
// quarantine workers the scorecard condemns.
func (p *Pool) Answer(ctx context.Context, req Request) (Answer, error) {
	w, probe := p.route()
	if probe != nil {
		p.runProbe(ctx, w, probe, req.Class)
		// The probe may have quarantined w; route the real request again.
		if p.isQuarantined(w) {
			w, _ = p.route()
		}
	}
	ans, err := w.Backend.Answer(ctx, req)
	if err != nil {
		return Answer{}, err
	}
	p.mu.Lock()
	w.answered++
	dup := p.health && p.cfg.DisagreeEvery > 0 && w.answered%int64(p.cfg.DisagreeEvery) == 0 && p.active > 1
	p.mu.Unlock()
	if dup {
		p.sampleDisagreement(ctx, w, req, ans)
	}
	return ans, nil
}

// route picks an active worker under the pool lock and decides whether it is
// due a gold probe.
func (p *Pool) route() (*poolWorker, *GoldPair) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reinstateLocked()
	w := p.pickLocked(nil)
	var probe *GoldPair
	if p.health && len(p.cfg.Gold) > 0 {
		w.sinceProbe++
		if w.sinceProbe >= p.cfg.ProbeEvery {
			w.sinceProbe = 0
			probe = &p.cfg.Gold[p.r.Intn(len(p.cfg.Gold))]
		}
	}
	return w, probe
}

// pickLocked returns a seeded-random non-quarantined worker, excluding skip
// (the disagreement counterpart must differ from the original answerer).
// Callers hold p.mu and guarantee at least one eligible worker exists.
func (p *Pool) pickLocked(skip *poolWorker) *poolWorker {
	eligible := p.active
	if skip != nil && !skip.quarantined {
		eligible--
	}
	k := p.r.Intn(eligible)
	for _, w := range p.workers {
		if w.quarantined || w == skip {
			continue
		}
		if k == 0 {
			return w
		}
		k--
	}
	// Unreachable while the active counter is consistent.
	panic("dispatch: pool has no eligible worker")
}

// runProbe issues one gold probe to w and updates its scorecard; probe
// transport errors are ignored (an unreachable worker is a transport
// problem, not dishonesty — the caller's real request will surface it).
func (p *Pool) runProbe(ctx context.Context, w *poolWorker, g *GoldPair, class worker.Class) {
	ans, err := w.Backend.Answer(ctx, Request{A: g.A, B: g.B, Class: class})
	if err != nil {
		return
	}
	correct := ans.Winner.ID == g.WinnerID
	if m := obs.Active(); m != nil {
		m.GoldProbe(correct)
	}
	p.mu.Lock()
	w.goldN++
	if correct {
		w.goldOK++
	}
	p.maybeQuarantineLocked(w)
	p.mu.Unlock()
}

// sampleDisagreement duplicates req to a second worker and records whether
// the two answers disagree. Both workers' duplicate counters advance, but
// only the original answerer's disagreement is charged — the sampler cannot
// tell who is wrong, and symmetric charging would let one spammer poison
// every honest worker's rate.
func (p *Pool) sampleDisagreement(ctx context.Context, w *poolWorker, req Request, ans Answer) {
	p.mu.Lock()
	other := p.pickLocked(w)
	p.mu.Unlock()
	if other == w {
		return
	}
	dupAns, err := other.Backend.Answer(ctx, req)
	if err != nil {
		return
	}
	agreed := dupAns.Winner.ID == ans.Winner.ID
	p.mu.Lock()
	w.dupN++
	if !agreed {
		w.disagree++
	}
	if p.graph != nil {
		// The duplicate the pool already paid for doubles as one agreement
		// observation between the two workers — the graph scorer's entire
		// input. Extractions run every Trust.ExtractEvery observations and
		// sweep the whole pool, so a condemning core change lands at once.
		p.graph.Observe(w.Name, other.Name, agreed)
		p.sinceExtract++
		if p.sinceExtract >= p.cfg.Trust.ExtractEvery {
			p.sinceExtract = 0
			p.ext = p.graph.Extract()
			for _, ww := range p.workers {
				p.maybeQuarantineLocked(ww)
			}
		}
	}
	p.maybeQuarantineLocked(w)
	p.mu.Unlock()
}

// maybeQuarantineLocked applies the circuit breaker to w; callers hold p.mu.
// Which detectors run depends on the configured Scorer; the first detector
// to condemn names the quarantine reason.
func (p *Pool) maybeQuarantineLocked(w *poolWorker) {
	if !p.health || w.quarantined || p.active <= p.cfg.MinActive {
		return
	}
	reason := ""
	if p.cfg.Scorer != ScorerGraph {
		if w.goldN >= int64(p.cfg.MinProbes) &&
			float64(w.goldOK)/float64(w.goldN) < p.cfg.Floor {
			reason = "gold"
		} else if w.dupN >= int64(p.cfg.MinProbes) &&
			float64(w.disagree)/float64(w.dupN) > p.cfg.MaxDisagree {
			reason = "disagree"
		}
	}
	if reason == "" && p.graphCondemnsLocked(w) {
		reason = "graph"
	}
	if reason == "" {
		return
	}
	w.quarantined = true
	w.reason = reason
	w.satOut = 0
	p.active--
	p.evictions++
	if m := obs.Active(); m != nil {
		m.Quarantine(reason)
	}
}

// graphCondemnsLocked reports the agreement-graph verdict on w: condemned
// when the latest extraction is confident enough to stand behind and w's
// pooled agreement with the core falls below the reliability floor. Workers
// without a score yet (too few samples) get no verdict. Callers hold p.mu.
func (p *Pool) graphCondemnsLocked(w *poolWorker) bool {
	if p.graph == nil || p.ext.Confidence < graphVerdictFloor {
		return false
	}
	score, ok := p.ext.Scores[w.Name]
	return ok && score < p.cfg.Floor
}

// reinstateLocked advances every quarantined worker's probation clock by one
// routing decision and returns those past ReprobeAfter to rotation with a
// clean scorecard — the half-open state of the circuit breaker. Callers hold
// p.mu. Disabled while ReprobeAfter is 0.
func (p *Pool) reinstateLocked() {
	if !p.health || p.cfg.ReprobeAfter <= 0 {
		return
	}
	for _, w := range p.workers {
		if !w.quarantined {
			continue
		}
		w.satOut++
		if w.satOut < p.cfg.ReprobeAfter {
			continue
		}
		reason := w.reason
		w.quarantined = false
		w.reason = ""
		w.goldN, w.goldOK, w.dupN, w.disagree = 0, 0, 0, 0
		w.sinceProbe, w.satOut = 0, 0
		if p.graph != nil {
			// The clean scorecard extends to the graph: the worker's edges
			// are forgotten and its stale extraction score dropped, so the
			// grudge that evicted it cannot instantly re-condemn — it must
			// re-earn (or re-lose) its trust from fresh duplicates.
			p.graph.Forget(w.Name)
			delete(p.ext.Scores, w.Name)
		}
		p.active++
		p.reinstates++
		if m := obs.Active(); m != nil {
			m.Reinstate(reason)
		}
	}
}

// isQuarantined reports w's circuit-breaker state.
func (p *Pool) isQuarantined(w *poolWorker) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return w.quarantined
}

// Scorecards returns a copy of every worker's health counters, in pool
// order.
func (p *Pool) Scorecards() []Scorecard {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Scorecard, len(p.workers))
	for i, w := range p.workers {
		out[i] = Scorecard{
			Name: w.Name, Answered: w.answered,
			GoldProbes: w.goldN, GoldCorrect: w.goldOK,
			Duplicated: w.dupN, Disagreed: w.disagree,
			Quarantined: w.quarantined, Reason: w.reason,
			TrustScore: -1,
		}
		if p.graph != nil {
			if score, ok := p.ext.Scores[w.Name]; ok {
				out[i].TrustScore = score
			}
			out[i].InCore = p.ext.InCore(w.Name)
		}
	}
	return out
}

// TrustConfidence returns the latest graph extraction's confidence, or -1
// when no graph scorer runs — the signal the degrade controller samples to
// react to a collapsing trust core.
func (p *Pool) TrustConfidence() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.graph == nil {
		return -1
	}
	return p.ext.Confidence
}

// TrustExtraction returns the latest agreement-graph extraction (the zero
// Extraction before the first one, or when no graph scorer runs).
func (p *Pool) TrustExtraction() trust.Extraction {
	p.mu.Lock()
	defer p.mu.Unlock()
	ext := p.ext
	if ext.Scores != nil {
		scores := make(map[string]float64, len(ext.Scores))
		for k, v := range ext.Scores {
			scores[k] = v
		}
		ext.Scores = scores
	}
	return ext
}

// Evictions returns the number of workers quarantined so far.
func (p *Pool) Evictions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// Reinstates returns the number of quarantined workers returned to rotation
// by the half-open circuit breaker.
func (p *Pool) Reinstates() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reinstates
}

// ActiveWorkers returns the number of non-quarantined workers.
func (p *Pool) ActiveWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Hedge duplicates slow in-flight requests: if the inner backend has not
// answered within the configured delay, a second identical request is
// launched and the first *successful* answer wins (both errors surface the
// first error). Hedging trades extra spend on the platform's slow tail for
// latency — the classic tail-at-scale defense.
//
// Unlike everything else in this package, hedging is wall-clock-driven and
// therefore NOT deterministic: which copy wins depends on real scheduling.
// Keep it out of runs that must replay bit-identically (checkpointed runs
// with simulated backends don't need it; real-platform runs do).
type Hedge struct {
	inner Backend
	delay time.Duration
}

// NewHedge wraps inner so requests still unanswered after delay are
// duplicated.
func NewHedge(inner Backend, delay time.Duration) *Hedge {
	return &Hedge{inner: inner, delay: delay}
}

// Answer implements Backend.
func (h *Hedge) Answer(ctx context.Context, req Request) (Answer, error) {
	type result struct {
		ans    Answer
		err    error
		hedged bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	launch := func(hedged bool) {
		go func() {
			ans, err := h.inner.Answer(hctx, req)
			ch <- result{ans: ans, err: err, hedged: hedged}
		}()
	}
	launch(false)
	t := time.NewTimer(h.delay)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.ans, r.err
	case <-ctx.Done():
		return Answer{}, ctx.Err()
	case <-t.C:
	}
	launch(true)
	var firstErr error
	for i := 0; i < 2; i++ {
		select {
		case r := <-ch:
			if r.err == nil {
				if m := obs.Active(); m != nil {
					m.Hedge(r.hedged)
				}
				return r.ans, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			return Answer{}, ctx.Err()
		}
	}
	if m := obs.Active(); m != nil {
		m.Hedge(false)
	}
	return Answer{}, firstErr
}
