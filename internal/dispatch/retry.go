package dispatch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"crowdmax/internal/obs"
)

// RetryConfig configures the retry/timeout/backoff decorator.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per request (first attempt
	// included); defaults to 3.
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt (0 = no per-attempt
	// deadline beyond the caller's ctx).
	AttemptTimeout time.Duration
	// BaseBackoff is the delay before the first retry; defaults to 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; defaults to 1s.
	MaxBackoff time.Duration
	// Multiplier scales the backoff between retries; defaults to 2.
	Multiplier float64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	return c
}

// Retry decorates a backend with bounded retries, per-attempt timeouts and
// exponential backoff — the standard resilience wrapper between an
// algorithm and an unreliable answer source. Cancellation and budget
// exhaustion are never retried: those are caller decisions, not transport
// faults. Every retry increments the observability layer's retry counter
// (when enabled) and the returned Answer's Retries field.
type Retry struct {
	inner Backend
	cfg   RetryConfig
}

// NewRetry wraps inner with retry semantics per cfg.
func NewRetry(inner Backend, cfg RetryConfig) *Retry {
	return &Retry{inner: inner, cfg: cfg.withDefaults()}
}

// Answer implements Backend.
func (r *Retry) Answer(ctx context.Context, req Request) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	backoff := r.cfg.BaseBackoff
	var last error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if m := obs.Active(); m != nil {
				m.Retry(1)
			}
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return Answer{}, ctx.Err()
			case <-t.C:
			}
			backoff = time.Duration(float64(backoff) * r.cfg.Multiplier)
			if backoff > r.cfg.MaxBackoff {
				backoff = r.cfg.MaxBackoff
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.cfg.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		}
		ans, err := r.inner.Answer(actx, req)
		cancel()
		if err == nil {
			ans.Retries += attempt
			return ans, nil
		}
		last = err
		if !retryable(ctx, err) {
			return Answer{}, err
		}
	}
	return Answer{}, fmt.Errorf("dispatch: %d attempts failed, last: %w", r.cfg.MaxAttempts, last)
}

// retryable reports whether err is worth another attempt: cancellation of
// the caller's ctx and budget exhaustion are terminal, everything else —
// including a per-attempt deadline while the caller's ctx is still live —
// is treated as transient.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, ErrBudgetExhausted) && !errors.Is(err, context.Canceled)
}
