package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crowdmax/internal/obs"
	"crowdmax/internal/rng"
)

// RetryConfig configures the retry/timeout/backoff decorator.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per request (first attempt
	// included); defaults to 3.
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt (0 = no per-attempt
	// deadline beyond the caller's ctx).
	AttemptTimeout time.Duration
	// BaseBackoff is the delay before the first retry; defaults to 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; defaults to 1s.
	MaxBackoff time.Duration
	// Multiplier scales the backoff between retries; defaults to 2.
	Multiplier float64
	// NoJitter disables the full-jitter randomization and sleeps the exact
	// exponential schedule. Jitter is on by default: each delay is drawn
	// uniformly from [0, backoff), so a fleet of clients whose requests
	// failed together does not retry in lockstep (a retry storm re-breaking
	// the backend it is hammering).
	NoJitter bool
	// Seed seeds the jitter stream; two Retry decorators with the same
	// seed draw the same delay sequence, keeping fault-injection runs
	// reproducible.
	Seed uint64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	return c
}

// Backoff yields the seeded full-jitter exponential delay sequence a
// RetryConfig describes, decoupled from any backend — the same discipline
// Retry sleeps between attempts, reusable by any bounded retry loop (the
// service layer's record-persist retries). Each Next call returns the
// delay before the following attempt and advances the exponential; the
// draw comes from a seeded stream, so a given (config, seed) always
// sleeps the same sequence.
type Backoff struct {
	cfg RetryConfig

	mu  sync.Mutex
	cur time.Duration
	r   *rng.Source
}

// NewBackoff returns a fresh delay sequence for cfg (defaults applied).
func NewBackoff(cfg RetryConfig) *Backoff {
	cfg = cfg.withDefaults()
	return &Backoff{cfg: cfg, cur: cfg.BaseBackoff, r: rng.New(cfg.Seed).Child("retry-jitter")}
}

// Next returns the delay to sleep before the next attempt.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	backoff := b.cur
	b.cur = time.Duration(float64(b.cur) * b.cfg.Multiplier)
	if b.cur > b.cfg.MaxBackoff {
		b.cur = b.cfg.MaxBackoff
	}
	if b.cfg.NoJitter || backoff <= 0 {
		return backoff
	}
	return time.Duration(b.r.Int63n(int64(backoff)))
}

// RetryError is the terminal failure of a Retry decorator: every attempt
// failed. It carries the attempt count (so callers and the observability
// layer can report effort-before-giving-up, which a bare wrapped error
// loses) and the last underlying error. Unwrap exposes Last, so
// errors.Is(err, ErrBackendUnavailable) keeps working through it.
type RetryError struct {
	// Attempts is the number of tries performed (== MaxAttempts).
	Attempts int
	// Last is the error of the final attempt.
	Last error
}

// Error implements error.
func (e *RetryError) Error() string {
	return fmt.Sprintf("dispatch: %d attempts failed, last: %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RetryError) Unwrap() error { return e.Last }

// Retry decorates a backend with bounded retries, per-attempt timeouts and
// exponential backoff with full jitter — the standard resilience wrapper
// between an algorithm and an unreliable answer source. Cancellation, budget
// exhaustion and permanent failures (ErrPermanent) are never retried: those
// are caller decisions or dead backends, not transport faults. Every retry
// increments the observability layer's retry counter (when enabled) and the
// returned Answer's Retries field; giving up surfaces a *RetryError carrying
// the attempt count.
type Retry struct {
	inner Backend
	cfg   RetryConfig

	mu sync.Mutex
	r  *rng.Source
}

// NewRetry wraps inner with retry semantics per cfg.
func NewRetry(inner Backend, cfg RetryConfig) *Retry {
	cfg = cfg.withDefaults()
	return &Retry{inner: inner, cfg: cfg, r: rng.New(cfg.Seed).Child("retry-jitter")}
}

// delay returns the sleep before the retry that follows backoff, applying
// full jitter unless disabled. The jitter draw comes from the decorator's
// seeded stream under a mutex, so a sequential run sleeps the same sequence
// on every replay.
func (r *Retry) delay(backoff time.Duration) time.Duration {
	if r.cfg.NoJitter || backoff <= 0 {
		return backoff
	}
	r.mu.Lock()
	d := time.Duration(r.r.Int63n(int64(backoff)))
	r.mu.Unlock()
	return d
}

// Answer implements Backend.
func (r *Retry) Answer(ctx context.Context, req Request) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	backoff := r.cfg.BaseBackoff
	var last error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if m := obs.Active(); m != nil {
				m.Retry(1)
			}
			t := time.NewTimer(r.delay(backoff))
			select {
			case <-ctx.Done():
				t.Stop()
				return Answer{}, ctx.Err()
			case <-t.C:
			}
			backoff = time.Duration(float64(backoff) * r.cfg.Multiplier)
			if backoff > r.cfg.MaxBackoff {
				backoff = r.cfg.MaxBackoff
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.cfg.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		}
		ans, err := r.inner.Answer(actx, req)
		cancel()
		if err == nil {
			ans.Retries += attempt
			return ans, nil
		}
		last = err
		if !retryable(ctx, err) {
			return Answer{}, err
		}
	}
	if m := obs.Active(); m != nil {
		m.RetryExhausted(int64(r.cfg.MaxAttempts))
	}
	return Answer{}, &RetryError{Attempts: r.cfg.MaxAttempts, Last: last}
}

// retryable reports whether err is worth another attempt: cancellation of
// the caller's ctx, budget exhaustion, and permanent failures are terminal;
// everything else — including a per-attempt deadline while the caller's ctx
// is still live — is treated as transient.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, ErrBudgetExhausted) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, ErrPermanent)
}
