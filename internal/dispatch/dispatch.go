// Package dispatch is the comparison-dispatch layer between the algorithms
// and whatever actually answers comparisons. The paper's algorithms are
// defined over an abstract stream of pairwise comparisons; a real
// crowdsourcing deployment answers that stream asynchronously, fallibly, and
// only while the money lasts. This package provides the seam that makes
// those properties first-class without touching the algorithm layer:
//
//   - Backend is the pluggable answer source: Answer(ctx, Request) can fail,
//     block, and be cancelled. Simulated wraps an in-process
//     worker.Comparator (the historical behaviour); Flaky injects faults and
//     latency for resilience testing; Retry decorates any backend with
//     per-attempt timeouts and exponential backoff.
//   - Budget enforces hard caps on per-class comparison counts and monetary
//     spend. Spending is all-or-nothing and pre-charged, so a cap is never
//     exceeded — not even by a single comparison — regardless of concurrency.
//
// tournament.Oracle routes every comparison through this layer; algorithms
// observe failures as ordinary errors (context.Canceled, ErrBudgetExhausted,
// a backend's own error) and surface best-so-far partial results upward.
package dispatch

import (
	"context"
	"errors"
	"fmt"

	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

// ErrBackendUnavailable marks a transient backend failure — the request did
// not produce an answer but retrying may succeed. Flaky wraps its injected
// faults in it, and Retry treats any error as retryable except context
// cancellation and budget exhaustion.
var ErrBackendUnavailable = errors.New("dispatch: backend unavailable")

// ErrPermanent marks a failure that no amount of retrying can repair — the
// backend is gone for good (an injected crash, a revoked credential, a
// decommissioned platform). Retry gives up immediately on errors wrapping
// it, exactly like cancellation and budget exhaustion.
var ErrPermanent = errors.New("dispatch: permanent backend failure")

// RequestKind distinguishes the query types a backend can answer. The zero
// value is the pairwise comparison every max-finding algorithm asks; value
// queries are the cardinal-score alternative of the crowd-scoring workload
// (Nordio et al.), where a worker estimates one element's value directly
// instead of ranking a pair.
type RequestKind int

const (
	// KindCompare asks for the more valuable of the pair (A, B).
	KindCompare RequestKind = iota
	// KindValue asks for a cardinal estimate of A's value; B is unused.
	// Rep distinguishes repeated votes on the same element.
	KindValue
)

// Request is one task submitted to a backend: a pairwise comparison
// (KindCompare, the zero value) or a cardinal value query (KindValue).
type Request struct {
	// A and B are the elements to compare. Value queries set only A.
	A, B item.Item
	// Class is the worker class the task is intended for; backends use it
	// to route to the matching worker pool (and platforms to price the
	// task).
	Class worker.Class
	// Kind selects the query type; the zero value is a comparison.
	Kind RequestKind
	// Rep is the vote index of a value query (0-based): asking the crowd
	// for V independent estimates of one element submits V requests that
	// differ only in Rep. Ignored for comparisons.
	Rep int
}

// Answer is a backend's reply to a Request.
type Answer struct {
	// Winner is the element the worker reported as more valuable. It must
	// be one of the request's two elements. Zero for value queries.
	Winner item.Item
	// Value is the worker's cardinal estimate for a KindValue request;
	// zero (and meaningless) for comparisons.
	Value float64
	// Retries counts transport-level retries spent obtaining this answer
	// (0 for a first-attempt success); decorators like Retry populate it.
	Retries int
}

// Backend answers comparison requests. Implementations may block (a real
// platform round-trip), fail (transient outages, hard errors), and must
// honor ctx cancellation promptly. A Backend must be safe for concurrent
// use when driven by a parallel oracle (see tournament.Oracle.ParallelBatch).
type Backend interface {
	Answer(ctx context.Context, req Request) (Answer, error)
}

// Func adapts a function to the Backend interface.
type Func func(ctx context.Context, req Request) (Answer, error)

// Answer calls f.
func (f Func) Answer(ctx context.Context, req Request) (Answer, error) {
	return f(ctx, req)
}

// Simulated is the in-process backend: it answers every request by calling a
// worker.Comparator (or, for value queries, a worker.Valuer) synchronously.
// It is infallible apart from context cancellation, which it checks before
// every answer — a cancelled dispatch returns ctx.Err() without consulting
// the worker — and value queries submitted without a valuer, which fail
// permanently (the workload asked a question this crowd cannot answer).
type Simulated struct {
	cmp worker.Comparator
	val worker.Valuer
}

// NewSimulated wraps an in-process comparator as a Backend.
func NewSimulated(cmp worker.Comparator) *Simulated {
	return &Simulated{cmp: cmp}
}

// NewSimulatedValuer wraps an in-process comparator and valuer as a Backend
// that answers both comparisons and cardinal value queries.
func NewSimulatedValuer(cmp worker.Comparator, val worker.Valuer) *Simulated {
	return &Simulated{cmp: cmp, val: val}
}

// Answer implements Backend.
func (s *Simulated) Answer(ctx context.Context, req Request) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	if req.Kind == KindValue {
		if s.val == nil {
			return Answer{}, fmt.Errorf("dispatch: value query without a valuer: %w", ErrPermanent)
		}
		return Answer{Value: s.val.Value(req.A, req.Rep)}, nil
	}
	return Answer{Winner: s.cmp.Compare(req.A, req.B)}, nil
}

// Comparator returns the wrapped in-process comparator.
func (s *Simulated) Comparator() worker.Comparator { return s.cmp }

// Valuer returns the wrapped in-process valuer, nil when comparisons-only.
func (s *Simulated) Valuer() worker.Valuer { return s.val }
