// Package dispatch is the comparison-dispatch layer between the algorithms
// and whatever actually answers comparisons. The paper's algorithms are
// defined over an abstract stream of pairwise comparisons; a real
// crowdsourcing deployment answers that stream asynchronously, fallibly, and
// only while the money lasts. This package provides the seam that makes
// those properties first-class without touching the algorithm layer:
//
//   - Backend is the pluggable answer source: Answer(ctx, Request) can fail,
//     block, and be cancelled. Simulated wraps an in-process
//     worker.Comparator (the historical behaviour); Flaky injects faults and
//     latency for resilience testing; Retry decorates any backend with
//     per-attempt timeouts and exponential backoff.
//   - Budget enforces hard caps on per-class comparison counts and monetary
//     spend. Spending is all-or-nothing and pre-charged, so a cap is never
//     exceeded — not even by a single comparison — regardless of concurrency.
//
// tournament.Oracle routes every comparison through this layer; algorithms
// observe failures as ordinary errors (context.Canceled, ErrBudgetExhausted,
// a backend's own error) and surface best-so-far partial results upward.
package dispatch

import (
	"context"
	"errors"

	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

// ErrBackendUnavailable marks a transient backend failure — the request did
// not produce an answer but retrying may succeed. Flaky wraps its injected
// faults in it, and Retry treats any error as retryable except context
// cancellation and budget exhaustion.
var ErrBackendUnavailable = errors.New("dispatch: backend unavailable")

// ErrPermanent marks a failure that no amount of retrying can repair — the
// backend is gone for good (an injected crash, a revoked credential, a
// decommissioned platform). Retry gives up immediately on errors wrapping
// it, exactly like cancellation and budget exhaustion.
var ErrPermanent = errors.New("dispatch: permanent backend failure")

// Request is one pairwise comparison task submitted to a backend.
type Request struct {
	// A and B are the elements to compare.
	A, B item.Item
	// Class is the worker class the task is intended for; backends use it
	// to route to the matching worker pool (and platforms to price the
	// task).
	Class worker.Class
}

// Answer is a backend's reply to a Request.
type Answer struct {
	// Winner is the element the worker reported as more valuable. It must
	// be one of the request's two elements.
	Winner item.Item
	// Retries counts transport-level retries spent obtaining this answer
	// (0 for a first-attempt success); decorators like Retry populate it.
	Retries int
}

// Backend answers comparison requests. Implementations may block (a real
// platform round-trip), fail (transient outages, hard errors), and must
// honor ctx cancellation promptly. A Backend must be safe for concurrent
// use when driven by a parallel oracle (see tournament.Oracle.ParallelBatch).
type Backend interface {
	Answer(ctx context.Context, req Request) (Answer, error)
}

// Func adapts a function to the Backend interface.
type Func func(ctx context.Context, req Request) (Answer, error)

// Answer calls f.
func (f Func) Answer(ctx context.Context, req Request) (Answer, error) {
	return f(ctx, req)
}

// Simulated is the in-process backend: it answers every request by calling a
// worker.Comparator synchronously. It is infallible apart from context
// cancellation, which it checks before every answer — a cancelled dispatch
// returns ctx.Err() without consulting the worker.
type Simulated struct {
	cmp worker.Comparator
}

// NewSimulated wraps an in-process comparator as a Backend.
func NewSimulated(cmp worker.Comparator) *Simulated {
	return &Simulated{cmp: cmp}
}

// Answer implements Backend.
func (s *Simulated) Answer(ctx context.Context, req Request) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	return Answer{Winner: s.cmp.Compare(req.A, req.B)}, nil
}

// Comparator returns the wrapped in-process comparator.
func (s *Simulated) Comparator() worker.Comparator { return s.cmp }
