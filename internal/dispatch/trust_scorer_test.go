package dispatch

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

// cliqueBackend models one member of a coordinated ring that defeats gold
// probing: pairs touching the (leaked) training set are answered honestly,
// everything else is inverted. All members answer identically, so the ring
// forms a perfectly-agreeing clique in the agreement graph.
func cliqueBackend() *countingBackend {
	return &countingBackend{cmp: worker.Func(func(a, b item.Item) item.Item {
		if a.ID < 10 || b.ID < 10 { // training/gold IDs are 0..4
			return worker.Truth.Compare(a, b)
		}
		if a.Value < b.Value {
			return a
		}
		return b
	})}
}

// trustPool builds 6 honest workers plus 3 gold-acing clique members.
func trustPool(t *testing.T, seed uint64) *Pool {
	t.Helper()
	var ws []PoolWorker
	for i := 0; i < 6; i++ {
		ws = append(ws, PoolWorker{Name: "honest-" + string(rune('0'+i)), Backend: honestWorker()})
	}
	for i := 0; i < 3; i++ {
		ws = append(ws, PoolWorker{Name: "clique-" + string(rune('0'+i)), Backend: cliqueBackend()})
	}
	p, err := NewPool(ws, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func driveTrust(t *testing.T, p *Pool, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGraphScorerCatchesGoldAcingClique(t *testing.T) {
	gold := GoldFromTraining(training(), 0.25, 0)

	// Arm 1: the historical gold scorer. The ring aces every probe and the
	// raw disagreement ceiling is disabled by default, so it survives.
	goldArm := trustPool(t, 7)
	goldArm.EnableHealth(HealthConfig{Gold: gold, ProbeEvery: 2, DisagreeEvery: 2, Seed: 7})
	driveTrust(t, goldArm, 600)
	for _, c := range goldArm.Scorecards() {
		if c.Quarantined {
			t.Fatalf("gold scorer quarantined %q (%+v) — the clique should ace gold", c.Name, c)
		}
		if c.TrustScore != -1 || c.InCore {
			t.Fatalf("gold scorer produced trust fields for %q: %+v", c.Name, c)
		}
	}
	if goldArm.TrustConfidence() != -1 {
		t.Fatalf("gold scorer reported trust confidence %v, want -1", goldArm.TrustConfidence())
	}

	// Arm 2: the agreement-graph scorer, same crowd, no gold set at all.
	// The ring's internal agreement is perfect but the honest core is
	// bigger; extraction scores the ring at ~0 agreement with the core.
	graphArm := trustPool(t, 7)
	graphArm.EnableHealth(HealthConfig{Scorer: ScorerGraph, DisagreeEvery: 2, Seed: 7})
	driveTrust(t, graphArm, 600)
	if conf := graphArm.TrustConfidence(); conf < graphVerdictFloor {
		t.Fatalf("graph extraction confidence %v never cleared the verdict floor", conf)
	}
	ext := graphArm.TrustExtraction()
	for _, c := range graphArm.Scorecards() {
		isClique := c.Name[0] == 'c'
		if isClique {
			if !c.Quarantined {
				t.Fatalf("graph scorer kept clique member %q: %+v (ext %+v)", c.Name, c, ext)
			}
			if c.Reason != "graph" {
				t.Fatalf("clique member %q quarantined for %q, want \"graph\"", c.Name, c.Reason)
			}
			if c.InCore {
				t.Fatalf("clique member %q in the extracted core", c.Name)
			}
		} else {
			if c.Quarantined {
				t.Fatalf("graph scorer quarantined honest %q: %+v", c.Name, c)
			}
			if !c.InCore {
				t.Fatalf("honest %q outside the extracted core (ext %+v)", c.Name, ext)
			}
		}
	}

	// Arm 3: hybrid — graph verdicts land with a gold set present too.
	hybrid := trustPool(t, 7)
	hybrid.EnableHealth(HealthConfig{
		Scorer: ScorerHybrid, Gold: gold, ProbeEvery: 2, DisagreeEvery: 2, Seed: 7,
	})
	driveTrust(t, hybrid, 600)
	var caught int
	for _, c := range hybrid.Scorecards() {
		if c.Name[0] == 'c' && c.Quarantined {
			caught++
			if c.Reason != "graph" {
				t.Fatalf("hybrid caught %q via %q, want \"graph\" (gold was aced)", c.Name, c.Reason)
			}
		}
	}
	if caught != 3 {
		t.Fatalf("hybrid caught %d/3 clique members", caught)
	}
}

func TestScorecardReasonNamesDetector(t *testing.T) {
	// Gold failer → reason "gold".
	p, err := NewPool([]PoolWorker{
		{Name: "honest-0", Backend: honestWorker()},
		{Name: "honest-1", Backend: honestWorker()},
		{Name: "bad", Backend: alwaysWrong()},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableHealth(HealthConfig{Gold: GoldFromTraining(training(), 0.25, 0), ProbeEvery: 2, Seed: 7})
	for i := 0; i < 200; i++ {
		if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range p.Scorecards() {
		if c.Name == "bad" && (!c.Quarantined || c.Reason != "gold") {
			t.Fatalf("gold failer: %+v, want quarantined with reason \"gold\"", c)
		}
		if c.Name != "bad" && c.Reason != "" {
			t.Fatalf("healthy worker carries reason %q", c.Reason)
		}
	}

	// Disagreement failer → reason "disagree".
	p2, err := NewPool([]PoolWorker{
		{Name: "honest-0", Backend: honestWorker()},
		{Name: "honest-1", Backend: honestWorker()},
		{Name: "honest-2", Backend: honestWorker()},
		{Name: "bad", Backend: alwaysWrong()},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	p2.EnableHealth(HealthConfig{DisagreeEvery: 1, MaxDisagree: 0.75, MinProbes: 4, Seed: 11})
	for i := 0; i < 300; i++ {
		if _, err := p2.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range p2.Scorecards() {
		if c.Name == "bad" && (!c.Quarantined || c.Reason != "disagree") {
			t.Fatalf("disagreement failer: %+v, want quarantined with reason \"disagree\"", c)
		}
	}
}

func TestReinstateForgetsGraphEdges(t *testing.T) {
	p := trustPool(t, 7)
	p.EnableHealth(HealthConfig{
		Scorer: ScorerGraph, DisagreeEvery: 2, ReprobeAfter: 1 << 30, Seed: 7,
	})
	driveTrust(t, p, 600)
	p.mu.Lock()
	var evicted *poolWorker
	for _, w := range p.workers {
		if w.quarantined {
			evicted = w
			break
		}
	}
	if evicted == nil {
		p.mu.Unlock()
		t.Fatal("no worker was quarantined")
	}
	if evicted.reason != "graph" {
		p.mu.Unlock()
		t.Fatalf("evicted for %q, want \"graph\"", evicted.reason)
	}
	before := p.graph.Samples()
	// Force the probation clock past the threshold and run one half-open
	// sweep: the worker returns with a clean scorecard AND a clean slate in
	// the agreement graph — no stale grudge can instantly re-condemn it.
	evicted.satOut = p.cfg.ReprobeAfter
	p.reinstateLocked()
	if evicted.quarantined || evicted.reason != "" {
		p.mu.Unlock()
		t.Fatalf("worker not reinstated: quarantined=%v reason=%q", evicted.quarantined, evicted.reason)
	}
	if _, ok := p.ext.Scores[evicted.Name]; ok {
		p.mu.Unlock()
		t.Fatalf("reinstated worker %q still carries an extraction score", evicted.Name)
	}
	after := p.graph.Samples()
	p.mu.Unlock()
	if after >= before {
		t.Fatalf("graph samples %d → %d after Forget, want a drop", before, after)
	}
	if p.Reinstates() != 1 {
		t.Fatalf("reinstates = %d, want 1", p.Reinstates())
	}
}

// TestHalfOpenBreakerConcurrentReprobe hammers a pool whose breaker is
// half-open (quarantine → sit out → reinstate → re-quarantine) from many
// goroutines at once, then checks the breaker's invariants held. Run under
// -race in both GOMAXPROCS legs, this pins the quarantine/reinstatement
// cycle as race-free; the sequential replay at the end pins it as
// deterministic.
func TestHalfOpenBreakerConcurrentReprobe(t *testing.T) {
	build := func() *Pool {
		p, err := NewPool([]PoolWorker{
			{Name: "honest-0", Backend: honestWorker()},
			{Name: "honest-1", Backend: honestWorker()},
			{Name: "sick", Backend: alwaysWrong()},
		}, 7)
		if err != nil {
			t.Fatal(err)
		}
		p.EnableHealth(HealthConfig{
			Gold: GoldFromTraining(training(), 0.25, 0), ProbeEvery: 2,
			DisagreeEvery: 2, ReprobeAfter: 10, Seed: 7,
		})
		return p
	}

	p := build()
	const goroutines, each = 8, 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := p.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Breaker invariants under concurrency: the active count matches the
	// scorecards, never dips below MinActive, and every reinstatement was
	// preceded by an eviction.
	cards := p.Scorecards()
	var active int
	for _, c := range cards {
		if !c.Quarantined {
			active++
			if c.Reason != "" {
				t.Fatalf("active worker %q carries reason %q", c.Name, c.Reason)
			}
		}
	}
	if got := p.ActiveWorkers(); got != active {
		t.Fatalf("ActiveWorkers=%d but %d scorecards are active", got, active)
	}
	if active < 1 || active > len(cards) {
		t.Fatalf("active=%d out of range [1, %d]", active, len(cards))
	}
	if p.Reinstates() > p.Evictions() {
		t.Fatalf("reinstates %d > evictions %d", p.Reinstates(), p.Evictions())
	}
	if p.Evictions() == 0 || p.Reinstates() == 0 {
		t.Fatalf("breaker never cycled: evictions=%d reinstates=%d", p.Evictions(), p.Reinstates())
	}

	// Sequential replay: the same decision stream driven single-threaded is
	// a pure function of the seed — two runs agree card for card.
	replay := func() ([]Scorecard, int64, int64) {
		rp := build()
		for i := 0; i < goroutines*each; i++ {
			if _, err := rp.Answer(context.Background(), req(it(10, 1), it(11, 2))); err != nil {
				t.Fatal(err)
			}
		}
		return rp.Scorecards(), rp.Evictions(), rp.Reinstates()
	}
	c1, e1, r1 := replay()
	c2, e2, r2 := replay()
	if !reflect.DeepEqual(c1, c2) || e1 != e2 || r1 != r2 {
		t.Fatalf("sequential replay diverged:\n%+v e=%d r=%d\n%+v e=%d r=%d", c1, e1, r1, c2, e2, r2)
	}
}
