package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"crowdmax/internal/cost"
	"crowdmax/internal/obs"
	"crowdmax/internal/worker"
)

// ErrBudgetExhausted is returned (wrapped, with the violated cap named) when
// a comparison would exceed a Budget cap. Algorithms receiving it abandon
// the run and surface their best-so-far partial result; the budget's spend
// at that moment is ≤ every cap — refusal happens strictly before the
// comparison is performed or billed.
var ErrBudgetExhausted = errors.New("dispatch: comparison budget exhausted")

// costEpsilon absorbs float accumulation error in the monetary cap so a
// budget of exactly a run's cost admits the run's final comparison.
const costEpsilon = 1e-9

// Limits configures a Budget. The zero value of every field means
// "unlimited"; the zero Limits as a whole means "no budget" (callers
// typically skip creating a Budget at all — see Limits.IsZero).
type Limits struct {
	// MaxNaive caps paid naïve (class 0) comparisons; 0 = unlimited.
	MaxNaive int64
	// MaxExpert caps paid comparisons summed over every non-naïve class
	// (mirroring cost.Ledger.Expert); 0 = unlimited.
	MaxExpert int64
	// MaxTotal caps paid comparisons across all classes; 0 = unlimited.
	MaxTotal int64
	// MaxCost caps monetary spend under Prices; 0 = unlimited.
	MaxCost float64
	// Prices values each class's comparisons for the MaxCost cap.
	Prices cost.Prices
}

// IsZero reports whether the limits impose no cap at all.
func (l Limits) IsZero() bool { return l == Limits{} }

// Budget enforces hard caps on comparison spend. All spending is pre-charged
// and all-or-nothing under one mutex, so concurrent spenders can never push
// the tally past a cap: a comparison is either fully admitted before it runs
// or refused with ErrBudgetExhausted. Memo hits are free and never consult
// the budget, matching the ledger's billing.
//
// A Budget is its own record of truth: Spent/SpentCost report the admitted
// totals, Refusals the number of refused requests (also mirrored to the
// observability layer's budget-refusal counter when obs is enabled).
type Budget struct {
	mu       sync.Mutex
	lim      Limits
	perClass [cost.MaxClasses]int64
	total    int64
	spent    float64
	refusals atomic.Int64
}

// NewBudget returns a Budget enforcing l. A zero Limits yields a budget that
// admits everything (callers usually pass no budget at all instead).
func NewBudget(l Limits) *Budget { return &Budget{lim: l} }

// Limits returns the caps this budget enforces.
func (b *Budget) Limits() Limits { return b.lim }

// Spend admits n comparisons of the given class, or refuses all of them.
// The check-and-commit is atomic: either every counter (per-class, total,
// monetary) stays within its cap after adding n and the spend is recorded,
// or nothing is recorded and an error wrapping ErrBudgetExhausted names the
// violated cap. Callers pre-charge — Spend before performing work — and
// Refund if the backend then fails, so the budget counts successful
// (billed) comparisons.
func (b *Budget) Spend(class worker.Class, n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	price := b.lim.Prices.Unit(class)
	ci := int(class)
	if ci < 0 || ci >= cost.MaxClasses {
		return fmt.Errorf("dispatch: worker class %d outside [0, %d)", ci, cost.MaxClasses)
	}
	b.mu.Lock()
	var violated string
	switch {
	case b.lim.MaxNaive > 0 && class == worker.Naive && b.perClass[ci]+n > b.lim.MaxNaive:
		violated = fmt.Sprintf("naive cap %d", b.lim.MaxNaive)
	case b.lim.MaxExpert > 0 && class != worker.Naive && b.expertSpendLocked()+n > b.lim.MaxExpert:
		violated = fmt.Sprintf("expert cap %d", b.lim.MaxExpert)
	case b.lim.MaxTotal > 0 && b.total+n > b.lim.MaxTotal:
		violated = fmt.Sprintf("total cap %d", b.lim.MaxTotal)
	case b.lim.MaxCost > 0 && b.spent+price*float64(n) > b.lim.MaxCost+costEpsilon:
		violated = fmt.Sprintf("cost cap %g", b.lim.MaxCost)
	}
	if violated != "" {
		b.mu.Unlock()
		b.refusals.Add(1)
		if m := obs.Active(); m != nil {
			m.BudgetRefusal(ci)
		}
		return fmt.Errorf("dispatch: %s reached by %d %s comparison(s): %w",
			violated, n, class, ErrBudgetExhausted)
	}
	b.perClass[ci] += n
	b.total += n
	b.spent += price * float64(n)
	b.mu.Unlock()
	return nil
}

// expertSpendLocked sums the non-naïve per-class spend; callers hold b.mu.
func (b *Budget) expertSpendLocked() int64 {
	var s int64
	for i := 1; i < cost.MaxClasses; i++ {
		s += b.perClass[i]
	}
	return s
}

// Preload force-records n comparisons of the given class as already spent,
// bypassing the cap checks — how a resumed session restores the admitted
// spend of the run segment before its checkpoint. The restored spend was
// admitted under the same caps when it was originally charged, so skipping
// the check cannot overshoot; subsequent Spend calls enforce the caps
// against the combined total as usual.
func (b *Budget) Preload(class worker.Class, n int64) {
	if b == nil || n <= 0 {
		return
	}
	ci := int(class)
	if ci < 0 || ci >= cost.MaxClasses {
		return
	}
	price := b.lim.Prices.Unit(class)
	b.mu.Lock()
	b.perClass[ci] += n
	b.total += n
	b.spent += price * float64(n)
	b.mu.Unlock()
}

// Refund returns n previously Spent comparisons of the given class — used
// when a pre-charged comparison's backend dispatch fails, so failed requests
// don't consume budget.
func (b *Budget) Refund(class worker.Class, n int64) {
	if b == nil || n <= 0 {
		return
	}
	ci := int(class)
	if ci < 0 || ci >= cost.MaxClasses {
		return
	}
	price := b.lim.Prices.Unit(class)
	b.mu.Lock()
	b.perClass[ci] -= n
	b.total -= n
	b.spent -= price * float64(n)
	b.mu.Unlock()
}

// Spent returns the admitted comparison count of the given class.
func (b *Budget) Spent(class worker.Class) int64 {
	if b == nil {
		return 0
	}
	ci := int(class)
	if ci < 0 || ci >= cost.MaxClasses {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.perClass[ci]
}

// SpentTotal returns the admitted comparison count across all classes.
func (b *Budget) SpentTotal() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// SpentCost returns the admitted monetary spend under the budget's prices.
func (b *Budget) SpentCost() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// RemainingFor returns how many more comparisons of the given class the
// budget would admit, or -1 when the class is unconstrained (nil budget, or
// no cap touches it). The answer is the minimum headroom across the class
// cap, the total cap, and the monetary cap at the class's unit price — a
// snapshot, not a reservation: concurrent spenders can still consume it.
// Degrade controllers use this to check a ladder rung's cost estimate
// before committing to it.
func (b *Budget) RemainingFor(class worker.Class) int64 {
	if b == nil {
		return -1
	}
	ci := int(class)
	if ci < 0 || ci >= cost.MaxClasses {
		return 0
	}
	price := b.lim.Prices.Unit(class)
	b.mu.Lock()
	defer b.mu.Unlock()
	rem := int64(-1)
	tighten := func(r int64) {
		if r < 0 {
			r = 0
		}
		if rem < 0 || r < rem {
			rem = r
		}
	}
	if b.lim.MaxNaive > 0 && class == worker.Naive {
		tighten(b.lim.MaxNaive - b.perClass[ci])
	}
	if b.lim.MaxExpert > 0 && class != worker.Naive {
		tighten(b.lim.MaxExpert - b.expertSpendLocked())
	}
	if b.lim.MaxTotal > 0 {
		tighten(b.lim.MaxTotal - b.total)
	}
	if b.lim.MaxCost > 0 && price > 0 {
		tighten(int64((b.lim.MaxCost + costEpsilon - b.spent) / price))
	}
	return rem
}

// Refusals returns the number of Spend calls refused so far.
func (b *Budget) Refusals() int64 {
	if b == nil {
		return 0
	}
	return b.refusals.Load()
}
