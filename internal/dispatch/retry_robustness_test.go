package dispatch

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// alwaysFail fails every request with a fixed error, counting calls.
type alwaysFail struct {
	err   error
	calls int
}

func (f *alwaysFail) Answer(context.Context, Request) (Answer, error) {
	f.calls++
	return Answer{}, f.err
}

func jitterSequence(seed uint64, n int) []time.Duration {
	r := NewRetry(NewSimulated(nil), RetryConfig{Seed: seed})
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = r.delay(10 * time.Millisecond)
	}
	return out
}

func TestJitterDelaysReproduciblePerSeed(t *testing.T) {
	a := jitterSequence(42, 32)
	b := jitterSequence(42, 32)
	c := jitterSequence(43, 32)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 10*time.Millisecond {
			t.Fatalf("draw %d = %v outside [0, backoff)", i, a[i])
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 drew identical delay sequences")
	}
}

func TestNoJitterSleepsExactSchedule(t *testing.T) {
	r := NewRetry(NewSimulated(nil), RetryConfig{NoJitter: true})
	for _, backoff := range []time.Duration{0, time.Millisecond, time.Second} {
		if got := r.delay(backoff); got != backoff {
			t.Fatalf("NoJitter delay(%v) = %v", backoff, got)
		}
	}
}

func TestRetryErrorCarriesAttemptCount(t *testing.T) {
	inner := &alwaysFail{err: fmt.Errorf("flaky: %w", ErrBackendUnavailable)}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 4, BaseBackoff: time.Microsecond})
	_, err := r.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RetryError", err, err)
	}
	if re.Attempts != 4 {
		t.Fatalf("Attempts = %d, want 4", re.Attempts)
	}
	// The final underlying cause must stay reachable through the wrapper.
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("RetryError hides the underlying cause: %v", err)
	}
	if inner.calls != 4 {
		t.Fatalf("inner saw %d calls, want 4", inner.calls)
	}
}

func TestRetryGivesUpImmediatelyOnPermanentFailure(t *testing.T) {
	inner := &alwaysFail{err: fmt.Errorf("crashed: %w", ErrPermanent)}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 5, BaseBackoff: time.Microsecond})
	_, err := r.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	var re *RetryError
	if errors.As(err, &re) {
		t.Fatalf("permanent failure still produced a RetryError: %v", err)
	}
	if inner.calls != 1 {
		t.Fatalf("permanent failure retried: %d calls", inner.calls)
	}
}
