package dispatch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"crowdmax/internal/rng"
)

// FlakyConfig configures fault and latency injection.
type FlakyConfig struct {
	// FailureRate is the probability in [0, 1] that a request fails with
	// an error wrapping ErrBackendUnavailable instead of being forwarded.
	FailureRate float64
	// Latency is the fixed delay injected before every forwarded request.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed seeds the deterministic fault/jitter stream.
	Seed uint64
}

// Flaky decorates a backend with injected transient failures and latency —
// the fault model of a real crowdsourcing platform (workers time out, HITs
// expire, the HTTP round-trip is slow) made deterministic for testing. The
// fault stream is drawn from a seeded rng under a mutex, so a sequential run
// fails on the same requests every time.
//
// Injected delays honor ctx: cancellation during the sleep returns ctx.Err()
// immediately, so a cancelled run never waits out the injected latency.
type Flaky struct {
	inner Backend
	cfg   FlakyConfig

	mu sync.Mutex
	r  *rng.Source
}

// NewFlaky wraps inner with fault injection per cfg.
func NewFlaky(inner Backend, cfg FlakyConfig) *Flaky {
	return &Flaky{inner: inner, cfg: cfg, r: rng.New(cfg.Seed)}
}

// Answer implements Backend: it sleeps the injected latency (cancellable),
// fails with probability FailureRate, and otherwise forwards to the inner
// backend.
func (f *Flaky) Answer(ctx context.Context, req Request) (Answer, error) {
	f.mu.Lock()
	fail := f.cfg.FailureRate > 0 && f.r.Bernoulli(f.cfg.FailureRate)
	delay := f.cfg.Latency
	if f.cfg.Jitter > 0 {
		delay += time.Duration(f.r.Intn(int(f.cfg.Jitter)))
	}
	f.mu.Unlock()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return Answer{}, ctx.Err()
		case <-t.C:
		}
	} else if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	if fail {
		return Answer{}, fmt.Errorf("dispatch: injected fault for pair (%d, %d): %w",
			req.A.ID, req.B.ID, ErrBackendUnavailable)
	}
	return f.inner.Answer(ctx, req)
}
