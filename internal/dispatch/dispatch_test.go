package dispatch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/worker"
)

func it(id int, v float64) item.Item { return item.Item{ID: id, Value: v} }

func req(a, b item.Item) Request { return Request{A: a, B: b, Class: worker.Naive} }

func TestSimulatedAnswersThroughComparator(t *testing.T) {
	b := NewSimulated(worker.Truth)
	ans, err := b.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if ans.Winner.ID != 1 {
		t.Fatalf("winner = %d, want 1", ans.Winner.ID)
	}
}

func TestSimulatedHonorsCancellation(t *testing.T) {
	called := false
	b := NewSimulated(worker.Func(func(a, _ item.Item) item.Item {
		called = true
		return a
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Answer(ctx, req(it(0, 1), it(1, 2))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("cancelled dispatch still consulted the worker")
	}
}

func TestFlakyFailureRate(t *testing.T) {
	f := NewFlaky(NewSimulated(worker.Truth), FlakyConfig{FailureRate: 0.5, Seed: 7})
	fails := 0
	for i := 0; i < 1000; i++ {
		_, err := f.Answer(context.Background(), req(it(0, 1), it(1, 2)))
		if err != nil {
			if !errors.Is(err, ErrBackendUnavailable) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	if fails < 400 || fails > 600 {
		t.Fatalf("fails = %d of 1000 at rate 0.5", fails)
	}
}

func TestFlakyDeterministicFaultStream(t *testing.T) {
	pattern := func() []bool {
		f := NewFlaky(NewSimulated(worker.Truth), FlakyConfig{FailureRate: 0.3, Seed: 42})
		out := make([]bool, 50)
		for i := range out {
			_, err := f.Answer(context.Background(), req(it(0, 1), it(1, 2)))
			out[i] = err != nil
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream diverged at request %d", i)
		}
	}
}

func TestFlakyLatencyCancellable(t *testing.T) {
	f := NewFlaky(NewSimulated(worker.Truth), FlakyConfig{Latency: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.Answer(ctx, req(it(0, 1), it(1, 2)))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled flaky dispatch did not return promptly")
	}
}

// failNTimes fails the first n requests, then succeeds.
type failNTimes struct {
	mu    sync.Mutex
	n     int
	calls int
}

func (f *failNTimes) Answer(_ context.Context, r Request) (Answer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.n {
		return Answer{}, ErrBackendUnavailable
	}
	return Answer{Winner: worker.Truth.Compare(r.A, r.B)}, nil
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	inner := &failNTimes{n: 2}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	ans, err := r.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if ans.Winner.ID != 1 {
		t.Fatalf("winner = %d, want 1", ans.Winner.ID)
	}
	if ans.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", ans.Retries)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	inner := &failNTimes{n: 10}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 3, BaseBackoff: time.Microsecond})
	if _, err := r.Answer(context.Background(), req(it(0, 1), it(1, 2))); !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("err = %v, want wrapped ErrBackendUnavailable", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner attempts = %d, want 3", inner.calls)
	}
}

func TestRetryDoesNotRetryCancellation(t *testing.T) {
	inner := &failNTimes{n: 10}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 5, BaseBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := r.Answer(ctx, req(it(0, 1), it(1, 2)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancelled retry slept through its backoff")
	}
}

func TestRetryDoesNotRetryBudgetExhaustion(t *testing.T) {
	inner := Func(func(context.Context, Request) (Answer, error) {
		return Answer{}, ErrBudgetExhausted
	})
	r := NewRetry(inner, RetryConfig{MaxAttempts: 5, BaseBackoff: time.Microsecond})
	if _, err := r.Answer(context.Background(), req(it(0, 1), it(1, 2))); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	block := Func(func(ctx context.Context, _ Request) (Answer, error) {
		<-ctx.Done()
		return Answer{}, ctx.Err()
	})
	r := NewRetry(block, RetryConfig{
		MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond, BaseBackoff: time.Microsecond,
	})
	start := time.Now()
	_, err := r.Answer(context.Background(), req(it(0, 1), it(1, 2)))
	if err == nil {
		t.Fatal("expected error from blocking backend")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("per-attempt timeouts did not bound the blocking backend")
	}
}

func TestBudgetTotalCap(t *testing.T) {
	b := NewBudget(Limits{MaxTotal: 3})
	for i := 0; i < 3; i++ {
		if err := b.Spend(worker.Naive, 1); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if err := b.Spend(worker.Naive, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := b.SpentTotal(); got != 3 {
		t.Fatalf("SpentTotal = %d, want 3 (cap may never be exceeded)", got)
	}
	if got := b.Refusals(); got != 1 {
		t.Fatalf("Refusals = %d, want 1", got)
	}
}

func TestBudgetPerClassCaps(t *testing.T) {
	b := NewBudget(Limits{MaxNaive: 2, MaxExpert: 1})
	if err := b.Spend(worker.Naive, 2); err != nil {
		t.Fatalf("naive spend: %v", err)
	}
	if err := b.Spend(worker.Naive, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("naive overspend err = %v", err)
	}
	if err := b.Spend(worker.Expert, 1); err != nil {
		t.Fatalf("expert spend: %v", err)
	}
	// The expert cap covers every non-naïve class.
	if err := b.Spend(worker.Class(2), 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("class-2 overspend err = %v", err)
	}
}

func TestBudgetMonetaryCapExact(t *testing.T) {
	p := cost.Prices{Naive: 1, Expert: 10}
	b := NewBudget(Limits{MaxCost: 25, Prices: p})
	if err := b.Spend(worker.Naive, 5); err != nil { // cost 5
		t.Fatal(err)
	}
	if err := b.Spend(worker.Expert, 2); err != nil { // cost 25 — exactly the cap
		t.Fatalf("spend to exactly the cap should succeed: %v", err)
	}
	if err := b.Spend(worker.Naive, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := b.SpentCost(); got != 25 {
		t.Fatalf("SpentCost = %g, want 25", got)
	}
}

func TestBudgetAllOrNothing(t *testing.T) {
	b := NewBudget(Limits{MaxTotal: 5})
	if err := b.Spend(worker.Naive, 10); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := b.SpentTotal(); got != 0 {
		t.Fatalf("refused spend leaked %d comparisons into the tally", got)
	}
}

func TestBudgetRefund(t *testing.T) {
	b := NewBudget(Limits{MaxTotal: 1})
	if err := b.Spend(worker.Naive, 1); err != nil {
		t.Fatal(err)
	}
	b.Refund(worker.Naive, 1)
	if err := b.Spend(worker.Naive, 1); err != nil {
		t.Fatalf("spend after refund: %v", err)
	}
}

func TestBudgetConcurrentNeverExceedsCap(t *testing.T) {
	const limit = 100
	b := NewBudget(Limits{MaxTotal: limit})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Spend(worker.Naive, 1)
			}
		}()
	}
	wg.Wait()
	if got := b.SpentTotal(); got != limit {
		t.Fatalf("SpentTotal = %d, want exactly %d", got, limit)
	}
}

func TestNilBudgetAdmitsEverything(t *testing.T) {
	var b *Budget
	if err := b.Spend(worker.Naive, 1<<40); err != nil {
		t.Fatalf("nil budget refused: %v", err)
	}
	if b.SpentTotal() != 0 || b.Refusals() != 0 {
		t.Fatal("nil budget reported spend")
	}
}

func TestLimitsIsZero(t *testing.T) {
	if !(Limits{}).IsZero() {
		t.Fatal("zero Limits not IsZero")
	}
	if (Limits{MaxTotal: 1}).IsZero() {
		t.Fatal("non-zero Limits reported IsZero")
	}
}

func TestBudgetRemainingFor(t *testing.T) {
	var nb *Budget
	if got := nb.RemainingFor(worker.Naive); got != -1 {
		t.Fatalf("nil budget remaining = %d, want -1 (unconstrained)", got)
	}

	b := NewBudget(Limits{MaxNaive: 10, MaxExpert: 5, MaxTotal: 12})
	if got := b.RemainingFor(worker.Naive); got != 10 {
		t.Fatalf("fresh naive remaining = %d, want the class cap 10", got)
	}
	if got := b.RemainingFor(worker.Expert); got != 5 {
		t.Fatalf("fresh expert remaining = %d, want the class cap 5", got)
	}
	if err := b.Spend(worker.Naive, 8); err != nil {
		t.Fatal(err)
	}
	if got := b.RemainingFor(worker.Naive); got != 2 {
		t.Fatalf("naive remaining after spending 8/10 = %d, want 2", got)
	}
	// The total cap (12) is now tighter than the expert class cap (5):
	// 8 spent leaves 4 total.
	if got := b.RemainingFor(worker.Expert); got != 4 {
		t.Fatalf("expert remaining = %d, want the total-cap headroom 4", got)
	}
	if err := b.Spend(worker.Expert, 4); err != nil {
		t.Fatal(err)
	}
	if got := b.RemainingFor(worker.Expert); got != 0 {
		t.Fatalf("exhausted expert remaining = %d, want 0", got)
	}

	// No cap touches the class: unconstrained.
	open := NewBudget(Limits{MaxExpert: 3})
	if got := open.RemainingFor(worker.Naive); got != -1 {
		t.Fatalf("uncapped naive remaining = %d, want -1", got)
	}

	// Monetary cap only: headroom is priced per class.
	money := NewBudget(Limits{MaxCost: 100, Prices: cost.Prices{Naive: 1, Expert: 10}})
	if got := money.RemainingFor(worker.Expert); got != 10 {
		t.Fatalf("monetary expert remaining = %d, want 100/10 = 10", got)
	}
	if err := money.Spend(worker.Expert, 9); err != nil {
		t.Fatal(err)
	}
	if got := money.RemainingFor(worker.Expert); got != 1 {
		t.Fatalf("monetary expert remaining after 9 = %d, want 1", got)
	}
	if got := money.RemainingFor(worker.Naive); got != 10 {
		t.Fatalf("monetary naive remaining = %d, want (100-90)/1 = 10", got)
	}

	// RemainingFor is consistent with Spend: exactly the remaining amount is
	// admitted and one more is refused.
	if err := money.Spend(worker.Expert, 1); err != nil {
		t.Fatal(err)
	}
	if err := money.Spend(worker.Expert, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spend past the reported remaining: err = %v, want ErrBudgetExhausted", err)
	}
}
