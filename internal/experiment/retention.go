package experiment

import (
	"context"
	"fmt"
	"io"

	"crowdmax/internal/parallel"
)

// RetentionResult reports, for each estimation factor, the fraction of runs
// in which the true maximum survived phase 1 — the Section 5.2 statistic
// ("if the estimation factor is 0.8 then the set returned in the first round
// contains the real max in 99% of the times, whereas for an estimation
// factor of 0.5 results start to worsen with the max appearing in 82% of
// the sets. When the estimation factor drops to 0.2 the number of times the
// maximum arrives in the second round is only 38%").
type RetentionResult struct {
	Un, Ue    int
	Factors   []float64
	Retention []float64 // fraction in [0, 1], parallel to Factors
	Runs      int       // total runs per factor
}

// WriteText renders the result as a table.
func (r RetentionResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Section 5.2 — max retention after phase 1 (un=%d, ue=%d, %d runs/factor)\n",
		r.Un, r.Ue, r.Runs); err != nil {
		return err
	}
	rows := make([][]string, len(r.Factors))
	for i := range r.Factors {
		rows[i] = []string{
			fmt.Sprintf("%g", r.Factors[i]),
			fmt.Sprintf("%.0f%%", 100*r.Retention[i]),
		}
	}
	return WriteTable(w, []string{"estimation factor", "max retained"}, rows)
}

// Retention measures phase-1 max retention for each estimation factor over
// the sweep.
func Retention(ctx context.Context, cfg Fig6Config) (RetentionResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return RetentionResult{}, err
	}
	res := RetentionResult{
		Un:      cfg.Un,
		Ue:      cfg.Ue,
		Factors: cfg.Factors,
		Runs:    len(cfg.Ns) * cfg.Trials,
	}
	// Cells are (factor, n, trial) triples, all independent.
	perN := len(cfg.Ns) * cfg.Trials
	kept := make([]bool, len(cfg.Factors)*perN)
	if err := parallel.For(cfg.Workers, len(kept), func(c int) error {
		fi, rest := c/perN, c%perN
		ni, trial := rest/cfg.Trials, rest%cfg.Trials
		factor := cfg.Factors[fi]
		cal, r, err := cfg.instance(cfg.Ns[ni], trial)
		if err != nil {
			return err
		}
		tr, err := runTrial(ctx, Alg1, cal, estimatedUn(cfg.Un, factor), cfg.Budget, r.Child(fmt.Sprintf("ret-f%g", factor)),
			trialLabel("retention", cfg.Ns[ni], trial))
		if err != nil {
			return err
		}
		kept[c] = tr.MaxRetained
		return nil
	}); err != nil {
		return RetentionResult{}, err
	}
	for fi := range cfg.Factors {
		retained := 0
		for c := fi * perN; c < (fi+1)*perN; c++ {
			if kept[c] {
				retained++
			}
		}
		res.Retention = append(res.Retention, float64(retained)/float64(perN))
	}
	return res, nil
}
