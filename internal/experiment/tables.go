package experiment

import (
	"context"
	"fmt"
	"io"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/parallel"
	"crowdmax/internal/platform"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// CrowdConfig configures the Table 1 and Table 2 reproductions — the
// Section 5.3 experiments that ran on CrowdFlower, here on the simulated
// platform.
type CrowdConfig struct {
	// N is the dataset size submitted to the crowd (paper: 50).
	N int
	// Un is the filter parameter (paper: 5, suggested by the real data).
	Un int
	// Workers is the size of the platform's honest worker pool.
	Workers int
	// Spammers is the number of random-answer workers mixed in; the
	// platform's gold-question filter is expected to remove them.
	Spammers int
	// NaiveVotes is the number of answers collected and
	// majority-aggregated per phase-1 comparison (the paper requested at
	// least 21 answers per pair).
	NaiveVotes int
	// ExpertVotes is the simulated-expert panel size (paper: 7 naïve
	// queries per expert query).
	ExpertVotes int
	// Experiments is how many independent runs to report (paper: 2).
	Experiments int
	// Seed drives all randomness.
	Seed uint64
	// Parallel bounds the goroutines fanning independent experiments out;
	// 0 selects runtime.GOMAXPROCS(0). (Workers above is the simulated
	// platform's pool size, a model parameter — not a concurrency knob.)
	// Each experiment owns its platform and crowd world, and output is
	// identical for every value of Parallel.
	Parallel int
}

func (c CrowdConfig) withDefaults() CrowdConfig {
	if c.N == 0 {
		c.N = 50
	}
	if c.Un == 0 {
		c.Un = 5
	}
	if c.Workers == 0 {
		c.Workers = 30
	}
	if c.NaiveVotes == 0 {
		c.NaiveVotes = 21
	}
	if c.ExpertVotes == 0 {
		c.ExpertVotes = 7
	}
	if c.Experiments == 0 {
		c.Experiments = 2
	}
	return c
}

// CrowdRow is one row of a Table 1 / Table 2 reproduction: an element and
// its position in each experiment's last round (0 = did not reach it).
type CrowdRow struct {
	// Label describes the element (dot count, car description).
	Label string
	// TrueRank is the element's ground-truth rank (1 = best).
	TrueRank int
	// LastRound[e] is the element's position in experiment e's final
	// ranking, or 0 if it did not survive phase 1.
	LastRound []int
}

// CrowdTable is a reproduced Table 1 or Table 2.
type CrowdTable struct {
	Title string
	Rows  []CrowdRow
	// Survivors[e] is the phase-1 candidate count of experiment e.
	Survivors []int
	// BestFound[e] reports whether experiment e's simulated experts
	// ranked the true best element first.
	BestFound []bool
}

// WriteText renders the table in the paper's layout.
func (t CrowdTable) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	headers := []string{"element", "true rank"}
	for e := range t.Survivors {
		headers = append(headers, fmt.Sprintf("Exp. %d", e+1))
	}
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		row := []string{r.Label, fmt.Sprintf("%d", r.TrueRank)}
		for _, pos := range r.LastRound {
			if pos == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%d", pos))
			}
		}
		rows[i] = row
	}
	if err := WriteTable(w, headers, rows); err != nil {
		return err
	}
	for e := range t.Survivors {
		if _, err := fmt.Fprintf(w, "Exp. %d: %d survivors, best ranked first: %v\n",
			e+1, t.Survivors[e], t.BestFound[e]); err != nil {
			return err
		}
	}
	return nil
}

// crowdRun executes one CrowdFlower-style experiment: phase 1 with
// majority-of-NaiveVotes platform jobs, then an all-play-all "last round"
// among the survivors judged by simulated experts (majority of ExpertVotes
// naïve answers). Comparisons are submitted through the platform's batch
// interface, so each tournament round is one logical step. It returns the
// survivors and their final ranking (best first).
func crowdRun(ctx context.Context, items []item.Item, gold []item.Item, world *worker.World, cfg CrowdConfig, r *rng.Source) (survivors []item.Item, ranking []item.Item, err error) {
	plat, err := platform.New(platform.Config{R: r.Child("platform")})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		plat.AddWorker(world.Worker(r.ChildN("worker", i)))
	}
	for i := 0; i < cfg.Spammers; i++ {
		plat.AddWorker(worker.Spammer{R: r.ChildN("spammer", i)})
	}
	if len(gold) >= 2 {
		// Gold questions must be answerable by honest workers: pair each
		// gold element with one far away in value, so only spammers fall
		// below the 70% accuracy floor.
		span := len(gold) / 2
		if span < 1 {
			span = 1
		}
		pairs := make([]platform.Pair, 0, len(gold)-span)
		for i := span; i < len(gold); i++ {
			pairs = append(pairs, platform.Pair{A: gold[i-span], B: gold[i]})
		}
		plat.SetGold(pairs)
	}

	ledger := cost.NewLedger()
	sc := obs.Trial("crowd", r.Seed())
	naive := tournament.NewOracle(plat.BatchComparator(cfg.NaiveVotes), worker.Naive, ledger, tournament.NewMemo()).WithObs(sc)
	survivors, err = core.Filter(ctx, items, naive, core.FilterOptions{Un: cfg.Un})
	if err != nil {
		return nil, nil, err
	}

	// "Last round": all-play-all among the survivors, judged by simulated
	// experts, ranked by wins (stable on ties).
	expert := tournament.NewOracle(plat.BatchComparator(cfg.ExpertVotes), worker.Expert, ledger, tournament.NewMemo()).WithObs(sc)
	ranking, err = core.RankByWins(ctx, survivors, expert)
	if err != nil {
		return nil, nil, err
	}
	return survivors, ranking, nil
}

// buildCrowdTable assembles the report rows for the top topK true elements.
func buildCrowdTable(title string, set *item.Set, rankings [][]item.Item, topK int) CrowdTable {
	t := CrowdTable{Title: title}
	if topK > set.Len() {
		topK = set.Len()
	}
	for e := range rankings {
		t.Survivors = append(t.Survivors, len(rankings[e]))
		found := len(rankings[e]) > 0 && rankings[e][0].ID == set.Max().ID
		t.BestFound = append(t.BestFound, found)
	}
	for rank := 1; rank <= topK; rank++ {
		el := set.ByRank(rank)
		row := CrowdRow{Label: el.Label, TrueRank: rank}
		for _, ranking := range rankings {
			pos := 0
			for i, it := range ranking {
				if it.ID == el.ID {
					pos = i + 1
					break
				}
			}
			row.LastRound = append(row.LastRound, pos)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table1 reproduces Table 1: the DOTS minimum-finding experiment. Naïve
// workers follow the wisdom-of-crowds regime, so the simulated experts
// (majority of 7) order the last round almost perfectly.
func Table1(ctx context.Context, cfg CrowdConfig) (CrowdTable, error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed).Child("table1")
	set := dataset.Dots(cfg.N)
	gold := dataset.DotsGold()

	rankings := make([][]item.Item, cfg.Experiments)
	if err := parallel.For(cfg.Parallel, cfg.Experiments, func(e int) error {
		r := root.ChildN("exp", e)
		world := worker.NewWorld(worker.WisdomRegime{Sharpness: 5}, r.Child("world"))
		_, ranking, err := crowdRun(ctx, set.Items(), gold, world, cfg, r)
		if err != nil {
			return fmt.Errorf("experiment %d: %w", e+1, err)
		}
		rankings[e] = ranking
		return nil
	}); err != nil {
		return CrowdTable{}, err
	}
	return buildCrowdTable("Table 1 — DOTS last-round ranking (fewest dots first)", set, rankings, 9), nil
}

// Table2 reproduces Table 2: the CARS most-expensive-car experiment. Naïve
// workers follow the plateau regime, so the top car reaches the last round
// but the simulated experts cannot reliably identify it — the paper's
// evidence that real experts are needed.
func Table2(ctx context.Context, cfg CrowdConfig) (CrowdTable, *item.Set, error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed).Child("table2")
	catalogue, _, err := dataset.Cars(dataset.CarsConfig{}, root.Child("catalogue"))
	if err != nil {
		return CrowdTable{}, nil, err
	}
	set, err := dataset.SampleSet(catalogue, cfg.N, root.Child("sample"))
	if err != nil {
		return CrowdTable{}, nil, err
	}

	rankings := make([][]item.Item, cfg.Experiments)
	if err := parallel.For(cfg.Parallel, cfg.Experiments, func(e int) error {
		r := root.ChildN("exp", e)
		world := worker.NewWorld(worker.PlateauRegime{Threshold: 0.2, Epsilon: 0.02}, r.Child("world"))
		_, ranking, err := crowdRun(ctx, set.Items(), nil, world, cfg, r)
		if err != nil {
			return fmt.Errorf("experiment %d: %w", e+1, err)
		}
		rankings[e] = ranking
		return nil
	}); err != nil {
		return CrowdTable{}, nil, err
	}
	return buildCrowdTable("Table 2 — CARS last-round ranking (most expensive first)", set, rankings, 19), set, nil
}
