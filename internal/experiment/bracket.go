package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/stats"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// BracketConfig configures the bracket-baseline experiment.
type BracketConfig struct {
	Sweep
	// Repetitions are the per-match panel sizes compared (odd); defaults
	// to {1, 7}.
	Repetitions []int
	// ErrorProb is the per-comparison error of the probabilistic-model
	// workers; defaults to 0.2.
	ErrorProb float64
}

func (c BracketConfig) withDefaults() BracketConfig {
	c.Sweep = c.Sweep.withDefaults()
	if len(c.Repetitions) == 0 {
		c.Repetitions = []int{1, 7}
	}
	if c.ErrorProb == 0 {
		c.ErrorProb = 0.2
	}
	return c
}

// BracketAccuracy quantifies the argument of Sections 2–3.2 with the
// single-elimination bracket baseline: under the *probabilistic* error
// model, repeating each match and majority-voting drives the bracket's
// accuracy toward perfect — so experts would be unnecessary; under the
// *threshold* model, the same repetitions buy nothing, because matches
// between indistinguishable elements stay coin flips. One curve per
// (model, repetitions) pair; y is the average true rank of the bracket's
// winner. Algorithm 1's rank on the same instances is included for
// reference.
func BracketAccuracy(ctx context.Context, cfg BracketConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	for _, rep := range cfg.Repetitions {
		if rep < 1 || rep%2 == 0 {
			return Figure{}, fmt.Errorf("experiment: repetitions must be odd and ≥ 1, got %d", rep)
		}
	}
	if cfg.ErrorProb < 0 || cfg.ErrorProb >= 0.5 {
		return Figure{}, fmt.Errorf("experiment: error probability %g outside [0, 0.5)", cfg.ErrorProb)
	}

	fig := Figure{
		Title: fmt.Sprintf("Bracket baseline under both error models (un=%d, ue=%d, p=%g)",
			cfg.Un, cfg.Ue, cfg.ErrorProb),
		XLabel: "n",
		YLabel: "average real rank of max",
	}
	type cell struct {
		name string
		run  func(cal instanceData, r *rng.Source) (int, error)
	}
	// Build the curve set: per repetitions × {probabilistic, threshold},
	// plus Alg 1 for reference.
	var cells []cell
	for _, rep := range cfg.Repetitions {
		rep := rep
		cells = append(cells, cell{
			name: fmt.Sprintf("bracket rep=%d (probabilistic)", rep),
			run: func(cal instanceData, r *rng.Source) (int, error) {
				w := worker.NewProbabilistic(cfg.ErrorProb, r.Child("w"))
				o := tournament.NewOracle(w, worker.Naive, nil, nil)
				best, err := core.TournamentMax(ctx, cal.items, o, core.BracketOptions{Repetitions: rep})
				if err != nil {
					return 0, err
				}
				return cal.rank(best.ID), nil
			},
		})
		cells = append(cells, cell{
			name: fmt.Sprintf("bracket rep=%d (threshold)", rep),
			run: func(cal instanceData, r *rng.Source) (int, error) {
				w := &worker.Threshold{Delta: cal.deltaN,
					Tie: worker.RandomTie{R: r.Child("w")}, R: r.Child("w")}
				o := tournament.NewOracle(w, worker.Naive, nil, nil)
				best, err := core.TournamentMax(ctx, cal.items, o, core.BracketOptions{Repetitions: rep})
				if err != nil {
					return 0, err
				}
				return cal.rank(best.ID), nil
			},
		})
	}
	cells = append(cells, cell{
		name: "Alg 1 (threshold)",
		run: func(cal instanceData, r *rng.Source) (int, error) {
			nw := &worker.Threshold{Delta: cal.deltaN,
				Tie: worker.RandomTie{R: r.Child("n")}, R: r.Child("n")}
			ew := &worker.Threshold{Delta: cal.deltaE,
				Tie: worker.RandomTie{R: r.Child("e")}, R: r.Child("e")}
			no := tournament.NewOracle(nw, worker.Naive, nil, nil)
			eo := tournament.NewOracle(ew, worker.Expert, nil, nil)
			res, err := core.FindMax(ctx, cal.items, no, eo, core.FindMaxOptions{Un: cfg.Un})
			if err != nil {
				return 0, err
			}
			return cal.rank(res.Best.ID), nil
		},
	})

	// Each (n, trial) pair is one independent unit running every curve's
	// runner on the same instance.
	ranks := make([][]int, len(cfg.Ns)*cfg.Trials)
	if err := parallel.For(cfg.Workers, len(ranks), func(c int) error {
		ni, trial := c/cfg.Trials, c%cfg.Trials
		cal, r, err := cfg.instance(cfg.Ns[ni], trial)
		if err != nil {
			return err
		}
		data := instanceData{
			items:  cal.Set.Items(),
			deltaN: cal.DeltaN,
			deltaE: cal.DeltaE,
			rank:   cal.Set.Rank,
		}
		rs := make([]int, len(cells))
		for ci, cl := range cells {
			rank, err := cl.run(data, r.Child(cl.name))
			if err != nil {
				return err
			}
			rs[ci] = rank
		}
		ranks[c] = rs
		return nil
	}); err != nil {
		return Figure{}, err
	}
	sums := make([][]stats.Summary, len(cells))
	for i := range sums {
		sums[i] = make([]stats.Summary, len(cfg.Ns))
	}
	for ni := range cfg.Ns {
		for trial := 0; trial < cfg.Trials; trial++ {
			rs := ranks[ni*cfg.Trials+trial]
			for ci := range cells {
				sums[ci][ni].Add(float64(rs[ci]))
			}
		}
	}
	xs := nsToFloats(cfg.Ns)
	for ci, c := range cells {
		ys := make([]float64, len(cfg.Ns))
		errs := make([]float64, len(cfg.Ns))
		for ni := range cfg.Ns {
			ys[ni] = sums[ci][ni].Mean()
			errs[ni] = sums[ci][ni].StdErr()
		}
		fig.Curves = append(fig.Curves, Curve{Name: c.name, X: xs, Y: ys, Err: errs})
	}
	return fig, nil
}

// instanceData carries one calibrated instance into a cell runner.
type instanceData struct {
	items          []item.Item
	deltaN, deltaE float64
	rank           func(id int) int
}
