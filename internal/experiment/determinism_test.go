package experiment

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
)

// workerWidths are the parallel widths every experiment must agree across.
func workerWidths() []int {
	widths := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		widths = append(widths, g)
	}
	return widths
}

func renderAcrossWidths(t *testing.T, name string, render func(workers int) ([]byte, error)) {
	t.Helper()
	var want []byte
	for i, w := range workerWidths() {
		got, err := render(w)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, w, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: workers=%d output differs from workers=%d\n--- workers=%d\n%s\n--- workers=%d\n%s",
				name, w, workerWidths()[0], workerWidths()[0], want, w, got)
		}
	}
}

func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	renderAcrossWidths(t, "fig3", func(workers int) ([]byte, error) {
		fig, err := Fig3(context.Background(), Sweep{Ns: []int{400}, Trials: 4, Seed: 99, Workers: workers})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := fig.WriteText(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

func TestFig5DeterministicAcrossWorkers(t *testing.T) {
	renderAcrossWidths(t, "fig5", func(workers int) ([]byte, error) {
		fig, err := Fig5(context.Background(), CostConfig{
			Sweep: Sweep{Ns: []int{400}, Trials: 3, Seed: 7, Workers: workers},
			CE:    10,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := fig.WriteText(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

func TestTable1DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("platform simulation is slow")
	}
	renderAcrossWidths(t, "table1", func(workers int) ([]byte, error) {
		tab, err := Table1(context.Background(), CrowdConfig{N: 20, Seed: 3, Spammers: 2, Parallel: workers})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := tab.WriteText(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

func BenchmarkFig3Parallel(b *testing.B) {
	s := Sweep{Ns: []int{400, 800}, Trials: 4, Seed: 2015}
	widths := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		widths = append(widths, g)
	}
	for _, workers := range widths {
		s.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Fig3(context.Background(), s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
