package experiment

import (
	"context"
	"fmt"
	"math"

	"crowdmax/internal/parallel"
	"crowdmax/internal/stats"
)

// Fig3 reproduces Figure 3: accuracy (average true rank of the returned
// element) as a function of the input size n, for the three approaches of
// Section 5.1, at fixed (un, ue). Rank 1 is perfect.
func Fig3(ctx context.Context, s Sweep) (Figure, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Figure 3 (un=%d, ue=%d)", s.Un, s.Ue),
		XLabel: "n",
		YLabel: "average real rank of max",
	}
	perApproach := make(map[Approach][]*stats.Summary)
	for _, a := range Approaches {
		perApproach[a] = make([]*stats.Summary, len(s.Ns))
		for i := range perApproach[a] {
			perApproach[a][i] = &stats.Summary{}
		}
	}
	// Fan the (n, trial) cells out across the pool — each cell seeds its
	// own instance and worker streams — then reduce into the summaries in
	// the fixed (n, trial, approach) order a sequential run would use.
	ranks := make([][]int, len(s.Ns)*s.Trials)
	if err := parallel.For(s.Workers, len(ranks), func(c int) error {
		ni, trial := c/s.Trials, c%s.Trials
		cal, r, err := s.instance(s.Ns[ni], trial)
		if err != nil {
			return err
		}
		rs := make([]int, len(Approaches))
		for ai, a := range Approaches {
			tr, err := runTrial(ctx, a, cal, s.Un, s.Budget, r.Child(a.String()), trialLabel("fig3", s.Ns[ni], trial))
			if err != nil {
				return err
			}
			rs[ai] = tr.Rank
		}
		ranks[c] = rs
		return nil
	}); err != nil {
		return Figure{}, err
	}
	for ni := range s.Ns {
		for trial := 0; trial < s.Trials; trial++ {
			rs := ranks[ni*s.Trials+trial]
			for ai, a := range Approaches {
				perApproach[a][ni].Add(float64(rs[ai]))
			}
		}
	}
	xs := nsToFloats(s.Ns)
	for _, a := range Approaches {
		ys := make([]float64, len(s.Ns))
		errs := make([]float64, len(s.Ns))
		for i, sum := range perApproach[a] {
			ys[i] = sum.Mean()
			errs[i] = sum.StdErr()
		}
		fig.Curves = append(fig.Curves, Curve{Name: a.String(), X: xs, Y: ys, Err: errs})
	}
	return fig, nil
}

// Fig6Config extends the sweep with the estimation factors of Section 5.2.
type Fig6Config struct {
	Sweep
	// Factors are the ratios estimated/true un; the paper uses
	// {0.2, 0.5, 0.8, 1, 1.2, 2}.
	Factors []float64
}

func (c Fig6Config) withDefaults() Fig6Config {
	c.Sweep = c.Sweep.withDefaults()
	if len(c.Factors) == 0 {
		c.Factors = []float64{0.2, 0.5, 0.8, 1, 1.2, 2}
	}
	return c
}

// Fig6 reproduces Figure 6: accuracy of Alg 1 as a function of n when un is
// mis-estimated by each factor. Overestimation costs money but not
// accuracy; underestimation degrades accuracy because the maximum may be
// filtered out.
func Fig6(ctx context.Context, cfg Fig6Config) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Figure 6 (un=%d, ue=%d)", cfg.Un, cfg.Ue),
		XLabel: "n",
		YLabel: "average real rank of max",
	}
	// Cells are (factor, n, trial) triples, all independent.
	perN := len(cfg.Ns) * cfg.Trials
	ranks := make([]int, len(cfg.Factors)*perN)
	if err := parallel.For(cfg.Workers, len(ranks), func(c int) error {
		fi, rest := c/perN, c%perN
		ni, trial := rest/cfg.Trials, rest%cfg.Trials
		factor := cfg.Factors[fi]
		cal, r, err := cfg.instance(cfg.Ns[ni], trial)
		if err != nil {
			return err
		}
		tr, err := runTrial(ctx, Alg1, cal, estimatedUn(cfg.Un, factor), cfg.Budget, r.Child(fmt.Sprintf("f%g", factor)),
			trialLabel("fig6", cfg.Ns[ni], trial))
		if err != nil {
			return err
		}
		ranks[c] = tr.Rank
		return nil
	}); err != nil {
		return Figure{}, err
	}
	for fi, factor := range cfg.Factors {
		ys := make([]float64, len(cfg.Ns))
		errs := make([]float64, len(cfg.Ns))
		for ni := range cfg.Ns {
			var sum stats.Summary
			for trial := 0; trial < cfg.Trials; trial++ {
				sum.Add(float64(ranks[fi*perN+ni*cfg.Trials+trial]))
			}
			ys[ni] = sum.Mean()
			errs[ni] = sum.StdErr()
		}
		fig.Curves = append(fig.Curves, Curve{
			Name: factorLabel(factor),
			X:    nsToFloats(cfg.Ns),
			Y:    ys,
			Err:  errs,
		})
	}
	return fig, nil
}

// estimatedUn applies an estimation factor, clamping at 1 (the filter
// requires un ≥ 1).
func estimatedUn(un int, factor float64) int {
	est := int(math.Round(float64(un) * factor))
	if est < 1 {
		est = 1
	}
	return est
}

func factorLabel(f float64) string {
	if f == 1 {
		return "Alg 1"
	}
	return fmt.Sprintf("Alg 1 (%g*un)", f)
}

func nsToFloats(ns []int) []float64 {
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	return xs
}
