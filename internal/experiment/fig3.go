package experiment

import (
	"fmt"
	"math"

	"crowdmax/internal/stats"
)

// Fig3 reproduces Figure 3: accuracy (average true rank of the returned
// element) as a function of the input size n, for the three approaches of
// Section 5.1, at fixed (un, ue). Rank 1 is perfect.
func Fig3(s Sweep) (Figure, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Figure 3 (un=%d, ue=%d)", s.Un, s.Ue),
		XLabel: "n",
		YLabel: "average real rank of max",
	}
	perApproach := make(map[Approach][]*stats.Summary)
	for _, a := range Approaches {
		perApproach[a] = make([]*stats.Summary, len(s.Ns))
		for i := range perApproach[a] {
			perApproach[a][i] = &stats.Summary{}
		}
	}
	for ni, n := range s.Ns {
		for trial := 0; trial < s.Trials; trial++ {
			cal, r, err := s.instance(n, trial)
			if err != nil {
				return Figure{}, err
			}
			for _, a := range Approaches {
				tr, err := runTrial(a, cal, s.Un, r.Child(a.String()))
				if err != nil {
					return Figure{}, err
				}
				perApproach[a][ni].Add(float64(tr.Rank))
			}
		}
	}
	xs := nsToFloats(s.Ns)
	for _, a := range Approaches {
		ys := make([]float64, len(s.Ns))
		errs := make([]float64, len(s.Ns))
		for i, sum := range perApproach[a] {
			ys[i] = sum.Mean()
			errs[i] = sum.StdErr()
		}
		fig.Curves = append(fig.Curves, Curve{Name: a.String(), X: xs, Y: ys, Err: errs})
	}
	return fig, nil
}

// Fig6Config extends the sweep with the estimation factors of Section 5.2.
type Fig6Config struct {
	Sweep
	// Factors are the ratios estimated/true un; the paper uses
	// {0.2, 0.5, 0.8, 1, 1.2, 2}.
	Factors []float64
}

func (c Fig6Config) withDefaults() Fig6Config {
	c.Sweep = c.Sweep.withDefaults()
	if len(c.Factors) == 0 {
		c.Factors = []float64{0.2, 0.5, 0.8, 1, 1.2, 2}
	}
	return c
}

// Fig6 reproduces Figure 6: accuracy of Alg 1 as a function of n when un is
// mis-estimated by each factor. Overestimation costs money but not
// accuracy; underestimation degrades accuracy because the maximum may be
// filtered out.
func Fig6(cfg Fig6Config) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Figure 6 (un=%d, ue=%d)", cfg.Un, cfg.Ue),
		XLabel: "n",
		YLabel: "average real rank of max",
	}
	for _, factor := range cfg.Factors {
		unEst := estimatedUn(cfg.Un, factor)
		ys := make([]float64, len(cfg.Ns))
		errs := make([]float64, len(cfg.Ns))
		for ni, n := range cfg.Ns {
			var sum stats.Summary
			for trial := 0; trial < cfg.Trials; trial++ {
				cal, r, err := cfg.instance(n, trial)
				if err != nil {
					return Figure{}, err
				}
				tr, err := runTrial(Alg1, cal, unEst, r.Child(fmt.Sprintf("f%g", factor)))
				if err != nil {
					return Figure{}, err
				}
				sum.Add(float64(tr.Rank))
			}
			ys[ni] = sum.Mean()
			errs[ni] = sum.StdErr()
		}
		fig.Curves = append(fig.Curves, Curve{
			Name: factorLabel(factor),
			X:    nsToFloats(cfg.Ns),
			Y:    ys,
			Err:  errs,
		})
	}
	return fig, nil
}

// estimatedUn applies an estimation factor, clamping at 1 (the filter
// requires un ≥ 1).
func estimatedUn(un int, factor float64) int {
	est := int(math.Round(float64(un) * factor))
	if est < 1 {
		est = 1
	}
	return est
}

func factorLabel(f float64) string {
	if f == 1 {
		return "Alg 1"
	}
	return fmt.Sprintf("Alg 1 (%g*un)", f)
}

func nsToFloats(ns []int) []float64 {
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	return xs
}
