package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/parallel"
	"crowdmax/internal/stats"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// EpsilonConfig configures the residual-error robustness sweep. The paper's
// analysis assumes εn = εe = 0 and remarks that "our results can be
// extended to any value less than 1/2" (Section 4); this experiment
// measures how the accuracy of Algorithm 1 degrades as the residual error
// grows, holding everything else at the Figure 3 setup.
type EpsilonConfig struct {
	Sweep
	// Epsilons are the residual error probabilities applied to BOTH
	// worker classes; defaults to {0, 0.05, 0.1, 0.2, 0.3, 0.4}.
	Epsilons []float64
}

func (c EpsilonConfig) withDefaults() EpsilonConfig {
	c.Sweep = c.Sweep.withDefaults()
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4}
	}
	return c
}

// EpsilonSweep measures the average true rank returned by Algorithm 1 as a
// function of the residual error ε, one curve per input size.
func EpsilonSweep(ctx context.Context, cfg EpsilonConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	for _, eps := range cfg.Epsilons {
		if eps < 0 || eps >= 0.5 {
			return Figure{}, fmt.Errorf("experiment: ε=%g outside [0, 0.5)", eps)
		}
	}
	fig := Figure{
		Title:  fmt.Sprintf("Residual-error robustness (un=%d, ue=%d)", cfg.Un, cfg.Ue),
		XLabel: "epsilon",
		YLabel: "average real rank of max",
	}
	// Cells are (n, ε, trial) triples, all independent.
	perN := len(cfg.Epsilons) * cfg.Trials
	ranks := make([]float64, len(cfg.Ns)*perN)
	if err := parallel.For(cfg.Workers, len(ranks), func(c int) error {
		ni, rest := c/perN, c%perN
		ei, trial := rest/cfg.Trials, rest%cfg.Trials
		eps := cfg.Epsilons[ei]
		cal, r, err := cfg.instance(cfg.Ns[ni], trial)
		if err != nil {
			return err
		}
		er := r.Child(fmt.Sprintf("eps%g", eps))
		nw := &worker.Threshold{Delta: cal.DeltaN, Epsilon: eps,
			Tie: worker.RandomTie{R: er.Child("n")}, R: er.Child("n")}
		ew := &worker.Threshold{Delta: cal.DeltaE, Epsilon: eps,
			Tie: worker.RandomTie{R: er.Child("e")}, R: er.Child("e")}
		no := tournament.NewOracle(nw, worker.Naive, nil, nil)
		eo := tournament.NewOracle(ew, worker.Expert, nil, nil)
		res, err := core.FindMax(ctx, cal.Set.Items(), no, eo, core.FindMaxOptions{Un: cfg.Un})
		if err != nil {
			return err
		}
		ranks[c] = float64(cal.Set.Rank(res.Best.ID))
		return nil
	}); err != nil {
		return Figure{}, err
	}
	for ni, n := range cfg.Ns {
		ys := make([]float64, len(cfg.Epsilons))
		errs := make([]float64, len(cfg.Epsilons))
		for ei := range cfg.Epsilons {
			var sum stats.Summary
			for trial := 0; trial < cfg.Trials; trial++ {
				sum.Add(ranks[ni*perN+ei*cfg.Trials+trial])
			}
			ys[ei] = sum.Mean()
			errs[ei] = sum.StdErr()
		}
		fig.Curves = append(fig.Curves, Curve{
			Name: fmt.Sprintf("n=%d", n),
			X:    append([]float64(nil), cfg.Epsilons...),
			Y:    ys,
			Err:  errs,
		})
	}
	return fig, nil
}
