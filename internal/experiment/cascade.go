package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/stats"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// CascadeConfig configures the multi-class extension experiment
// (Section 3.3's "a natural extension models multiple classes of workers
// with different expertise levels"): a three-level cascade — coarse, medium,
// fine — against the two-level Algorithm 1 that skips the middle class, at
// prices growing with expertise.
type CascadeConfig struct {
	// Ns are the input sizes.
	Ns []int
	// Us are the per-level u values, coarse to fine (three levels).
	Us [3]int
	// PriceRatio scales prices across adjacent levels: level l costs
	// PriceRatio^l per comparison. Defaults to 10.
	PriceRatio float64
	// Trials is the number of random instances per point.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the goroutines fanning trials out; 0 selects
	// runtime.GOMAXPROCS(0). Output is identical for every value.
	Workers int
}

func (c CascadeConfig) withDefaults() CascadeConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{1000, 2000, 3000, 4000, 5000}
	}
	if c.Us == [3]int{} {
		c.Us = [3]int{50, 10, 3}
	}
	if c.PriceRatio == 0 {
		c.PriceRatio = 10
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	return c
}

// CascadeExperiment compares the three-level cascade against the two-level
// Algorithm 1 on the same instances: average cost (per-level prices 1, R,
// R²) and average true rank. The two-level baseline uses the coarse workers
// for phase 1 and the fine workers for phase 2 — i.e. it pays the fine
// price for everything the middle class would have absorbed.
func CascadeExperiment(ctx context.Context, cfg CascadeConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	if cfg.Us[0] < cfg.Us[1] || cfg.Us[1] < cfg.Us[2] || cfg.Us[2] < 1 {
		return Figure{}, fmt.Errorf("experiment: cascade u values must be non-increasing and ≥ 1, got %v", cfg.Us)
	}
	for _, n := range cfg.Ns {
		if n < 4*cfg.Us[0] {
			return Figure{}, fmt.Errorf("experiment: n=%d too small for u1=%d", n, cfg.Us[0])
		}
	}
	prices := [3]float64{1, cfg.PriceRatio, cfg.PriceRatio * cfg.PriceRatio}

	fig := Figure{
		Title:  fmt.Sprintf("Multi-class cascade vs two-level (us=%v, price ratio %g)", cfg.Us, cfg.PriceRatio),
		XLabel: "n",
		YLabel: "C(n)",
	}
	cascadeCost := make([]float64, len(cfg.Ns))
	twoLevelCost := make([]float64, len(cfg.Ns))
	cascadeRank := make([]float64, len(cfg.Ns))
	twoLevelRank := make([]float64, len(cfg.Ns))

	// Cells are (n, trial) pairs; each measures both arms on one instance.
	type cell struct {
		cCost, cRank, tCost, tRank float64
	}
	cells := make([]cell, len(cfg.Ns)*cfg.Trials)
	if err := parallel.For(cfg.Workers, len(cells), func(c int) error {
		ni, trial := c/cfg.Trials, c%cfg.Trials
		n := cfg.Ns[ni]
		r := rng.New(cfg.Seed).ChildN(fmt.Sprintf("cascade-n%d", n), trial)
		set, deltas, err := threeLevelData(n, cfg.Us, r.Child("data"))
		if err != nil {
			return err
		}

		// Three-level cascade, each level billed at its price.
		ledgers := [3]*cost.Ledger{cost.NewLedger(), cost.NewLedger(), cost.NewLedger()}
		levels := make([]core.Level, 3)
		for l := 0; l < 3; l++ {
			w := &worker.Threshold{Delta: deltas[l],
				Tie: worker.RandomTie{R: r.ChildN("cw", l)}, R: r.ChildN("cw", l)}
			levels[l] = core.Level{
				Oracle: tournament.NewOracle(w, worker.Class(l), ledgers[l], nil),
				U:      cfg.Us[l],
			}
		}
		cres, err := core.CascadeFindMax(ctx, set.Items(), core.CascadeOptions{Levels: levels})
		if err != nil {
			return err
		}
		total := 0.0
		for l := 0; l < 3; l++ {
			total += float64(ledgers[l].Comparisons(worker.Class(l))) * prices[l]
		}
		cells[c].cCost = total
		cells[c].cRank = float64(set.Rank(cres.Best.ID))

		// Two-level baseline: coarse filter at u1, fine phase 2.
		ln, le := cost.NewLedger(), cost.NewLedger()
		nw := &worker.Threshold{Delta: deltas[0],
			Tie: worker.RandomTie{R: r.Child("tn")}, R: r.Child("tn")}
		ew := &worker.Threshold{Delta: deltas[2],
			Tie: worker.RandomTie{R: r.Child("te")}, R: r.Child("te")}
		no := tournament.NewOracle(nw, worker.Naive, ln, nil)
		eo := tournament.NewOracle(ew, worker.Expert, le, nil)
		tres, err := core.FindMax(ctx, set.Items(), no, eo, core.FindMaxOptions{Un: cfg.Us[0]})
		if err != nil {
			return err
		}
		cells[c].tCost = float64(ln.Naive())*prices[0] + float64(le.Expert())*prices[2]
		cells[c].tRank = float64(set.Rank(tres.Best.ID))
		return nil
	}); err != nil {
		return Figure{}, err
	}
	for ni := range cfg.Ns {
		var cCost, tCost, cRank, tRank stats.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			cl := cells[ni*cfg.Trials+trial]
			cCost.Add(cl.cCost)
			cRank.Add(cl.cRank)
			tCost.Add(cl.tCost)
			tRank.Add(cl.tRank)
		}
		cascadeCost[ni] = cCost.Mean()
		twoLevelCost[ni] = tCost.Mean()
		cascadeRank[ni] = cRank.Mean()
		twoLevelRank[ni] = tRank.Mean()
	}
	xs := nsToFloats(cfg.Ns)
	fig.Curves = []Curve{
		{Name: "3-level cascade cost", X: xs, Y: cascadeCost},
		{Name: "2-level (Alg 1) cost", X: xs, Y: twoLevelCost},
		{Name: "3-level cascade rank", X: xs, Y: cascadeRank},
		{Name: "2-level (Alg 1) rank", X: xs, Y: twoLevelRank},
	}
	return fig, nil
}

// threeLevelData builds a uniform instance with three calibrated
// thresholds.
func threeLevelData(n int, us [3]int, r *rng.Source) (*item.Set, [3]float64, error) {
	for attempt := 0; attempt < 100; attempt++ {
		s := dataset.Uniform(n, 0, 1, r)
		var deltas [3]float64
		ok := true
		for i, u := range us {
			d, err := s.DeltaForU(u)
			if err != nil {
				ok = false
				break
			}
			deltas[i] = d
		}
		if ok {
			return s, deltas, nil
		}
	}
	return nil, [3]float64{}, fmt.Errorf("experiment: could not calibrate three-level instance (us=%v)", us)
}
