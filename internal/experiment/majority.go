package experiment

import (
	"fmt"
	"io"

	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/stats"
	"crowdmax/internal/worker"
)

// MajorityConfig configures the Section 3.2 majority-vote bound experiment.
type MajorityConfig struct {
	// Ps are the per-worker error probabilities.
	Ps []float64
	// Ks are the panel sizes.
	Ks []int
	// Trials is the number of majority votes simulated per (p, k).
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the goroutines fanning (p, k) cells out; 0 selects
	// runtime.GOMAXPROCS(0). Output is identical for every value.
	Workers int
}

func (c MajorityConfig) withDefaults() MajorityConfig {
	if len(c.Ps) == 0 {
		c.Ps = []float64{0.1, 0.2, 0.3, 0.4}
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 3, 5, 9, 15, 21}
	}
	if c.Trials == 0 {
		c.Trials = 2000
	}
	return c
}

// MajorityRow is one (p, k) cell: the empirical majority-error frequency,
// the exact probability, and the paper's Chernoff bound.
type MajorityRow struct {
	P         float64
	K         int
	Empirical float64
	Exact     float64
	Chernoff  float64
}

// MajorityResult is the Section 3.2 reproduction: for every cell, empirical
// error ≈ exact ≤ Chernoff bound — the analytic justification for the
// wisdom-of-crowds regime.
type MajorityResult struct {
	Rows []MajorityRow
}

// WriteText renders the result table.
func (m MajorityResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Section 3.2 — majority-vote error vs Chernoff bound exp(-(1-2p)^2 k / (8(1-p)))"); err != nil {
		return err
	}
	rows := make([][]string, len(m.Rows))
	for i, r := range m.Rows {
		rows[i] = []string{
			fmt.Sprintf("%g", r.P), fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%.4f", r.Empirical), fmt.Sprintf("%.4f", r.Exact),
			fmt.Sprintf("%.4f", r.Chernoff),
		}
	}
	return WriteTable(w, []string{"p", "k", "empirical err", "exact err", "Chernoff bound"}, rows)
}

// MajorityBound simulates majority voting with probabilistic workers and
// compares the empirical error against the exact probability and the
// Section 3.2 Chernoff bound.
func MajorityBound(cfg MajorityConfig) (MajorityResult, error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed).Child("majority")
	a, b := item.Item{ID: 0, Value: 0}, item.Item{ID: 1, Value: 1}

	for _, p := range cfg.Ps {
		if p < 0 || p >= 0.5 {
			return MajorityResult{}, fmt.Errorf("experiment: error probability %g outside [0, 0.5)", p)
		}
	}
	// Cells are (p, k) pairs, all independent.
	rows := make([]MajorityRow, len(cfg.Ps)*len(cfg.Ks))
	if err := parallel.For(cfg.Workers, len(rows), func(c int) error {
		pi, ki := c/len(cfg.Ks), c%len(cfg.Ks)
		p, k := cfg.Ps[pi], cfg.Ks[ki]
		r := root.ChildN(fmt.Sprintf("p%d", pi), ki)
		w := worker.NewProbabilistic(p, r)
		wrongMajorities := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			votesWrong := 0
			for v := 0; v < k; v++ {
				if w.Compare(a, b).ID == 0 {
					votesWrong++
				}
			}
			switch {
			case 2*votesWrong > k:
				wrongMajorities++
			case 2*votesWrong == k:
				wrongMajorities += 0.5
			}
		}
		rows[c] = MajorityRow{
			P:         p,
			K:         k,
			Empirical: wrongMajorities / float64(cfg.Trials),
			Exact:     1 - stats.MajorityCorrectProb(1-p, k),
			Chernoff:  stats.ChernoffMajorityBound(p, k),
		}
		return nil
	}); err != nil {
		return MajorityResult{}, err
	}
	return MajorityResult{Rows: rows}, nil
}
