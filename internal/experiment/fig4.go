package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/stats"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// comparisonsPoint holds the per-n measurements behind Figures 4, 5, 9 (and
// 7, 10 via the estimation-factor variant): average and worst-case naïve and
// expert comparison counts for each approach.
type comparisonsPoint struct {
	N int

	Alg1NaiveAvg, Alg1ExpertAvg float64
	Alg1NaiveWC, Alg1ExpertWC   float64 // theory upper bounds, per the paper

	TwoMFNaiveAvg, TwoMFExpertAvg float64
	TwoMFWC                       float64 // measured on adversarial instances
}

// measureComparisons runs the sweep once and returns per-n comparison
// counts; it is shared by Fig4 and the cost figures.
func measureComparisons(ctx context.Context, s Sweep) ([]comparisonsPoint, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	points := make([]comparisonsPoint, len(s.Ns))

	// Per-(n, trial) measurement cells, fanned out across the pool.
	type trialCounts struct {
		a1n, a1e, tn, te float64
	}
	cells := make([]trialCounts, len(s.Ns)*s.Trials)
	if err := parallel.For(s.Workers, len(cells), func(c int) error {
		ni, trial := c/s.Trials, c%s.Trials
		cal, r, err := s.instance(s.Ns[ni], trial)
		if err != nil {
			return err
		}
		label := trialLabel("fig4", s.Ns[ni], trial)
		trA, err := runTrial(ctx, Alg1, cal, s.Un, s.Budget, r.Child("alg1"), label)
		if err != nil {
			return err
		}
		trN, err := runTrial(ctx, TwoMaxFindNaive, cal, s.Un, s.Budget, r.Child("2mf-naive"), label)
		if err != nil {
			return err
		}
		trE, err := runTrial(ctx, TwoMaxFindExpert, cal, s.Un, s.Budget, r.Child("2mf-expert"), label)
		if err != nil {
			return err
		}
		cells[c] = trialCounts{
			a1n: float64(trA.NaiveComparisons),
			a1e: float64(trA.ExpertComparisons),
			tn:  float64(trN.NaiveComparisons),
			te:  float64(trE.ExpertComparisons),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Worst cases, following Section 5: "For our algorithm we considered
	// the upper bound predicted by the theory"; for 2-MaxFind, adversarial
	// instances maximizing its comparisons — one independent (and
	// expensive) run per n, also fanned out.
	wcs := make([]float64, len(s.Ns))
	if err := parallel.For(s.Workers, len(s.Ns), func(ni int) error {
		wc, err := adversarialTwoMaxFind(ctx, s.Ns[ni], rng.New(s.Seed).ChildN("wc", s.Ns[ni]))
		if err != nil {
			return err
		}
		wcs[ni] = wc
		return nil
	}); err != nil {
		return nil, err
	}

	for ni, n := range s.Ns {
		p := comparisonsPoint{N: n}
		var a1n, a1e, tn, te stats.Summary
		for trial := 0; trial < s.Trials; trial++ {
			cell := cells[ni*s.Trials+trial]
			a1n.Add(cell.a1n)
			a1e.Add(cell.a1e)
			tn.Add(cell.tn)
			te.Add(cell.te)
		}
		p.Alg1NaiveAvg = a1n.Mean()
		p.Alg1ExpertAvg = a1e.Mean()
		p.TwoMFNaiveAvg = tn.Mean()
		p.TwoMFExpertAvg = te.Mean()
		p.Alg1NaiveWC = core.Phase1UpperBound(n, s.Un)
		p.Alg1ExpertWC = core.Phase2ExpertUpperBound(s.Un)
		p.TwoMFWC = wcs[ni]
		points[ni] = p
	}
	return points, nil
}

// adversarialTwoMaxFind measures 2-MaxFind's comparison count on the
// worst-case instance: all elements mutually indistinguishable and the
// paper's pivot-loses tie-breaking, which keeps every candidate alive
// through the elimination passes and drives the count to the Θ(s^{3/2})
// bound.
func adversarialTwoMaxFind(ctx context.Context, n int, r *rng.Source) (float64, error) {
	s, err := dataset.AdversarialIndistinguishable(n, 1)
	if err != nil {
		return 0, err
	}
	ledger := cost.NewLedger()
	w := &worker.Threshold{Delta: 1, Tie: worker.FirstLosesTie{}, R: r}
	o := tournament.NewOracle(w, worker.Naive, ledger, nil)
	if _, err := core.TwoMaxFind(ctx, s.Items(), o); err != nil {
		return 0, err
	}
	return float64(ledger.Naive()), nil
}

// Fig4 reproduces Figure 4: naïve and expert comparison counts (log scale in
// the paper) as a function of n, average and worst case, for the three
// approaches. The paper plots the average 2-MaxFind counts of the naïve-only
// and expert-only variants as one curve because they nearly coincide; we
// keep them separate.
func Fig4(ctx context.Context, s Sweep) (Figure, error) {
	points, err := measureComparisons(ctx, s)
	if err != nil {
		return Figure{}, err
	}
	s = s.withDefaults()
	fig := Figure{
		Title:  fmt.Sprintf("Figure 4 (un=%d, ue=%d)", s.Un, s.Ue),
		XLabel: "n",
		YLabel: "# of comparisons",
	}
	xs := nsToFloats(s.Ns)
	get := func(f func(comparisonsPoint) float64) []float64 {
		ys := make([]float64, len(points))
		for i, p := range points {
			ys[i] = f(p)
		}
		return ys
	}
	fig.Curves = []Curve{
		{Name: "Alg 1 naive (wc)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.Alg1NaiveWC })},
		{Name: "Alg 1 naive (avg)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.Alg1NaiveAvg })},
		{Name: "2-MaxFind-naive (wc)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.TwoMFWC })},
		{Name: "2-MaxFind-naive (avg)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.TwoMFNaiveAvg })},
		{Name: "2-MaxFind-expert (wc)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.TwoMFWC })},
		{Name: "2-MaxFind-expert (avg)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.TwoMFExpertAvg })},
		{Name: "Alg 1 expert (wc)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.Alg1ExpertWC })},
		{Name: "Alg 1 expert (avg)", X: xs, Y: get(func(p comparisonsPoint) float64 { return p.Alg1ExpertAvg })},
	}
	return fig, nil
}
