package experiment

import (
	"context"
	"strings"
	"testing"
)

func TestTable1PaperShape(t *testing.T) {
	tab, err := Table1(context.Background(), CrowdConfig{Seed: 1, Spammers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Survivors) != 2 {
		t.Fatalf("experiments = %d", len(tab.Survivors))
	}
	for e := 0; e < 2; e++ {
		// Wisdom-of-crowds regime: the simulated experts identify the
		// minimum in both experiments ("the final results were almost
		// perfect").
		if !tab.BestFound[e] {
			t.Fatalf("experiment %d: best not ranked first", e+1)
		}
		if tab.Survivors[e] < 1 || tab.Survivors[e] > 9 { // 2·un−1 = 9
			t.Fatalf("experiment %d: %d survivors", e+1, tab.Survivors[e])
		}
		// The true best element must appear in the last round at rank 1.
		if tab.Rows[0].LastRound[e] != 1 {
			t.Fatalf("experiment %d: best at last-round position %d", e+1, tab.Rows[0].LastRound[e])
		}
	}
	// Survivor positions are nearly the true order: every surviving
	// top-9 element's last-round position differs from its true rank by
	// at most 1 (the paper saw a single adjacent swap).
	for _, row := range tab.Rows {
		for e, pos := range row.LastRound {
			if pos == 0 {
				continue
			}
			diff := pos - row.TrueRank
			if diff < -1 || diff > 1 {
				t.Fatalf("experiment %d: %s true rank %d ranked %d",
					e+1, row.Label, row.TrueRank, pos)
			}
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	tab, err := Table1(context.Background(), CrowdConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "dots-100", "Exp. 1", "Exp. 2", "survivors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable2PaperShape(t *testing.T) {
	// The expertise barrier is statistical: each experiment's simulated
	// experts identify the top car only if every latent pair-lean happens
	// to favour it. We check the paper's two claims across several seeded
	// replications: the top car is ALWAYS promoted to the last round, and
	// the simulated experts fail to rank it first in a clear majority of
	// experiments (in the paper, they failed in all).
	experiments, failures, promoted := 0, 0, 0
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		tab, set, err := Table2(context.Background(), CrowdConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() != 50 {
			t.Fatalf("sample size = %d", set.Len())
		}
		for e := 0; e < 2; e++ {
			// Paper: "in both cases the most expensive car passed to
			// the second round".
			if tab.Rows[0].LastRound[e] != 0 {
				promoted++
			}
			if tab.Survivors[e] > 9 {
				t.Fatalf("seed %d experiment %d: %d survivors > 2·un−1", seed, e+1, tab.Survivors[e])
			}
			experiments++
			if !tab.BestFound[e] {
				failures++
			}
		}
	}
	if promoted < experiments-1 {
		t.Fatalf("most expensive car promoted in only %d/%d experiments", promoted, experiments)
	}
	if failures*2 < experiments {
		t.Fatalf("simulated experts failed only %d/%d experiments; the expertise barrier did not bind",
			failures, experiments)
	}
}

func TestTable2TopRowsAreExpensiveCars(t *testing.T) {
	tab, set, err := Table2(context.Background(), CrowdConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 19 { // the paper reports the top-19 cars
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row.TrueRank != i+1 {
			t.Fatalf("row %d has true rank %d", i, row.TrueRank)
		}
		if !strings.Contains(row.Label, "$") {
			t.Fatalf("row label %q missing price", row.Label)
		}
	}
	if set.Max().Label != tab.Rows[0].Label {
		t.Fatal("first row is not the most expensive car")
	}
}

func TestCrowdConfigDefaults(t *testing.T) {
	cfg := CrowdConfig{}.withDefaults()
	if cfg.N != 50 || cfg.Un != 5 || cfg.ExpertVotes != 7 || cfg.NaiveVotes != 21 ||
		cfg.Experiments != 2 || cfg.Workers != 30 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestSearchEvalPaperShape(t *testing.T) {
	res, err := SearchEval(context.Background(), SearchConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 2 queries × 3 un values
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Paper: "In both queries and for all these values of un(50) the
		// maximum was promoted to the second round (and the experts
		// identified it, of course)."
		if !r.Promoted {
			t.Fatalf("query %q un=%d: best not promoted", r.Query, r.Un)
		}
		if !r.ExpertFound {
			t.Fatalf("query %q un=%d: experts missed the best", r.Query, r.Un)
		}
	}
	if len(res.NaiveOnly) != 4 {
		t.Fatalf("naive-only runs = %d", len(res.NaiveOnly))
	}
	found := 0
	for _, r := range res.NaiveOnly {
		if r.Found {
			found++
		}
	}
	// Paper: "naïve users were able to identify the best result only in
	// one of the four cases". The reproduction target is the shape: the
	// naïve-only approach fails in most runs.
	if found > 2 {
		t.Fatalf("naive-only succeeded %d/4 times; expertise barrier did not bind", found)
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "naive-only 2-MaxFind runs") {
		t.Fatal("rendering incomplete")
	}
}

func TestMajorityBoundHolds(t *testing.T) {
	res, err := MajorityBound(MajorityConfig{Seed: 7, Trials: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		// The Chernoff bound dominates the exact error everywhere, and
		// the empirical frequency tracks the exact value within noise.
		if row.Exact > row.Chernoff+1e-9 {
			t.Fatalf("exact %.4f above bound %.4f at p=%g k=%d", row.Exact, row.Chernoff, row.P, row.K)
		}
		if diff := row.Empirical - row.Exact; diff > 0.05 || diff < -0.05 {
			t.Fatalf("empirical %.4f far from exact %.4f at p=%g k=%d", row.Empirical, row.Exact, row.P, row.K)
		}
	}
}

func TestMajorityBoundValidation(t *testing.T) {
	if _, err := MajorityBound(MajorityConfig{Ps: []float64{0.6}}); err == nil {
		t.Fatal("p ≥ 0.5 accepted")
	}
}

func TestFig2PaperShapes(t *testing.T) {
	dots, cars, err := Fig2(Fig2Config{Seed: 9, PairsPerBand: 25, Repeats: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(dots.Curves) != 4 || len(cars.Curves) != 4 {
		t.Fatalf("bands = %d/%d", len(dots.Curves), len(cars.Curves))
	}
	last := func(c Curve) float64 { return c.Y[len(c.Y)-1] }
	first := func(c Curve) float64 { return c.Y[0] }

	// DOTS: every band improves with workers and ends high; even the
	// hardest band clearly beats its single-worker accuracy.
	for _, c := range dots.Curves {
		if last(c) < first(c) {
			t.Fatalf("DOTS band %s did not improve: %.2f → %.2f", c.Name, first(c), last(c))
		}
	}
	if last(dots.Curves[3]) < 0.95 {
		t.Fatalf("easy DOTS band ends at %.2f, want ≈1", last(dots.Curves[3]))
	}
	if last(dots.Curves[0]) < first(dots.Curves[0])+0.1 {
		t.Fatalf("hard DOTS band barely improved: %.2f → %.2f",
			first(dots.Curves[0]), last(dots.Curves[0]))
	}

	// CARS: the two hard bands plateau below 0.8 no matter how many
	// workers vote; the easy bands approach 1.
	if last(cars.Curves[0]) > 0.8 || last(cars.Curves[1]) > 0.85 {
		t.Fatalf("hard CARS bands exceeded their plateau: %.2f, %.2f",
			last(cars.Curves[0]), last(cars.Curves[1]))
	}
	if last(cars.Curves[3]) < 0.9 {
		t.Fatalf("easy CARS band ends at %.2f, want ≈1", last(cars.Curves[3]))
	}
}

func TestFig2Rendering(t *testing.T) {
	dots, _, err := Fig2(Fig2Config{Seed: 10, PairsPerBand: 5, Repeats: 3, MaxWorkers: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := dots.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "majority accuracy") {
		t.Fatal("figure rendering missing y label")
	}
	var csv strings.Builder
	if err := dots.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "workers,") {
		t.Fatalf("CSV header = %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
}

func TestMajorityBoundRendering(t *testing.T) {
	res, err := MajorityBound(MajorityConfig{Seed: 8, Trials: 100, Ps: []float64{0.2}, Ks: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Chernoff bound") {
		t.Fatal("majority rendering missing header")
	}
}
