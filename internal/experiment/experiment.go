// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendix C) on the simulated substrate.
//
// Each experiment has a Config with paper defaults, a Run function that
// produces a structured result, and text rendering that prints the same
// rows/series the paper reports. Absolute numbers differ from the paper
// (whose workers were humans on CrowdFlower); the shapes — who wins, by
// what factor, where crossovers fall — are the reproduction target and are
// recorded against the paper in EXPERIMENTS.md.
package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/obs"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// Approach identifies one of the three algorithms compared throughout
// Section 5.1.
type Approach int

const (
	// Alg1 is the paper's two-phase algorithm: naïve filter + expert
	// 2-MaxFind.
	Alg1 Approach = iota
	// TwoMaxFindNaive runs 2-MaxFind over the whole input with naïve
	// workers only.
	TwoMaxFindNaive
	// TwoMaxFindExpert runs 2-MaxFind over the whole input with expert
	// workers only.
	TwoMaxFindExpert
)

// String returns the curve label used in the paper's figures.
func (a Approach) String() string {
	switch a {
	case Alg1:
		return "Alg 1"
	case TwoMaxFindNaive:
		return "2-MaxFind-naive"
	case TwoMaxFindExpert:
		return "2-MaxFind-expert"
	default:
		return fmt.Sprintf("approach(%d)", int(a))
	}
}

// Approaches lists the three compared algorithms in figure-legend order.
var Approaches = []Approach{TwoMaxFindExpert, Alg1, TwoMaxFindNaive}

// Trial is the outcome of one algorithm run on one random instance.
type Trial struct {
	// Rank is the true rank of the returned element (1 = the maximum),
	// the accuracy measure of Section 5.1.
	Rank int
	// NaiveComparisons and ExpertComparisons are the paid comparison
	// counts xn and xe.
	NaiveComparisons, ExpertComparisons int64
	// MaxRetained reports whether the true maximum survived phase 1
	// (always true for the single-phase baselines).
	MaxRetained bool
}

// runTrial executes one approach on a calibrated instance under ctx. unEst
// is the un(n) estimate given to Alg 1 (ignored by the baselines); tie
// breaking is uniformly random, matching the paper's simulation setup. A
// non-zero lim attaches a fresh per-trial budget to both oracles, so a
// budget-truncated sweep reproduces deterministically trial by trial. label
// names the trial for the observability trace (empty while observability is
// off); the trial's replay seed — r.Seed(), the derived stream seed a
// deterministic re-run reconstructs via rng.New(rootSeed).ChildN(...) —
// rides along on every event so traces line up with replays.
func runTrial(ctx context.Context, a Approach, cal dataset.Calibrated, unEst int, lim dispatch.Limits, r *rng.Source, label string) (Trial, error) {
	ledger := cost.NewLedger()
	naive := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r.Child("naive")}, R: r.Child("naive")}
	expert := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: r.Child("expert")}, R: r.Child("expert")}
	no := tournament.NewOracle(naive, worker.Naive, ledger, nil)
	eo := tournament.NewOracle(expert, worker.Expert, ledger, nil)
	if !lim.IsZero() {
		b := dispatch.NewBudget(lim)
		no.WithBudget(b)
		eo.WithBudget(b)
	}
	items := cal.Set.Items()
	sc := obs.Trial(label, r.Seed())
	if sc != nil {
		no.WithObs(sc)
		eo.WithObs(sc)
		sc.Event("trial.start",
			obs.Fs("approach", a.String()), obs.Fi("n", int64(len(items))),
			obs.Fi("un_est", int64(unEst)))
	}

	var (
		bestID   int
		retained = true
	)
	switch a {
	case Alg1:
		res, err := core.FindMax(ctx, items, no, eo, core.FindMaxOptions{Un: unEst})
		if err != nil {
			return Trial{}, err
		}
		bestID = res.Best.ID
		retained = false
		for _, c := range res.Candidates {
			if c.ID == cal.Set.Max().ID {
				retained = true
			}
		}
	case TwoMaxFindNaive:
		best, err := core.TwoMaxFind(ctx, items, no)
		if err != nil {
			return Trial{}, err
		}
		bestID = best.ID
	case TwoMaxFindExpert:
		best, err := core.TwoMaxFind(ctx, items, eo)
		if err != nil {
			return Trial{}, err
		}
		bestID = best.ID
	default:
		return Trial{}, fmt.Errorf("experiment: unknown approach %d", int(a))
	}
	if sc != nil {
		sc.Event("trial.done",
			obs.Fs("approach", a.String()), obs.Fi("rank", int64(cal.Set.Rank(bestID))),
			obs.Fi("naive", ledger.Naive()), obs.Fi("expert", ledger.Expert()))
	}
	return Trial{
		Rank:              cal.Set.Rank(bestID),
		NaiveComparisons:  ledger.Naive(),
		ExpertComparisons: ledger.Expert(),
		MaxRetained:       retained,
	}, nil
}

// trialLabel names one (figure, n, trial) cell for the observability trace.
// It returns "" while observability is disabled so the hot path does not
// pay for the formatting.
func trialLabel(fig string, n, trial int) string {
	if !obs.Enabled() {
		return ""
	}
	return fmt.Sprintf("%s/n%d/t%d", fig, n, trial)
}

// Sweep is the shared parameter sweep of the Section 5.1–5.2 experiments.
type Sweep struct {
	// Ns are the input sizes; the paper sweeps 1000..5000.
	Ns []int
	// Un and Ue are the target un(n) and ue(n); the paper uses (10, 5)
	// and (50, 10).
	Un, Ue int
	// Trials is the number of random instances averaged per point.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the goroutines fanning independent trials out
	// (0 selects runtime.GOMAXPROCS(0), 1 runs sequentially). Every trial
	// derives its own random stream from Seed, and results are reduced in
	// a fixed (n, trial, approach) order, so output is bit-for-bit
	// identical for every value of Workers.
	Workers int
	// Budget caps every individual trial's comparison counts and monetary
	// spend (zero = unlimited). Each trial gets a fresh budget, so a
	// truncated sweep reproduces deterministically: the same seed and the
	// same limits truncate the same trials at the same comparisons.
	Budget dispatch.Limits
}

func (s Sweep) withDefaults() Sweep {
	if len(s.Ns) == 0 {
		s.Ns = []int{1000, 2000, 3000, 4000, 5000}
	}
	if s.Un == 0 {
		s.Un = 10
	}
	if s.Ue == 0 {
		s.Ue = 5
	}
	if s.Trials == 0 {
		s.Trials = 10
	}
	return s
}

// Validate reports configuration errors early.
func (s Sweep) validate() error {
	if s.Un < 1 || s.Ue < 1 || s.Ue > s.Un {
		return fmt.Errorf("experiment: invalid un=%d ue=%d", s.Un, s.Ue)
	}
	for _, n := range s.Ns {
		if n < 4*s.Un {
			return fmt.Errorf("experiment: n=%d too small for un=%d", n, s.Un)
		}
	}
	if s.Trials < 1 {
		return fmt.Errorf("experiment: trials=%d", s.Trials)
	}
	return nil
}

// instance generates the calibrated random instance for one (n, trial) cell.
func (s Sweep) instance(n, trial int) (dataset.Calibrated, *rng.Source, error) {
	r := rng.New(s.Seed).ChildN(fmt.Sprintf("n%d", n), trial)
	cal, err := dataset.UniformCalibrated(n, s.Un, s.Ue, r.Child("data"))
	return cal, r, err
}
