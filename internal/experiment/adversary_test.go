package experiment

import (
	"context"
	"reflect"
	"testing"
)

func TestAdversarySweepRetentionWithHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("100-trial sweep")
	}
	cfg := AdversaryConfig{Trials: 100, Fractions: []float64{0.1, 0.2}, Seed: 5}
	fig, err := AdversarySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 2 {
		t.Fatalf("got %d curves, want health off + health on", len(fig.Curves))
	}
	off, on := fig.Curves[0], fig.Curves[1]
	for i, f := range cfg.Fractions {
		// The acceptance bar: with up to 20% spammers and health tracking
		// on, the true max survives phase 1 in ≥ 95% of trials.
		if on.Y[i] < 95 {
			t.Errorf("health on, fraction %g: retention %.0f%% < 95%%", f, on.Y[i])
		}
		if off.Y[i] < on.Y[i]-50 {
			t.Errorf("health off collapsed at fraction %g: %.0f%% vs %.0f%% with health",
				f, off.Y[i], on.Y[i])
		}
	}
}

func TestAdversarySweepReproduciblePerSeed(t *testing.T) {
	cfg := AdversaryConfig{Trials: 10, Fractions: []float64{0.2}, Seed: 9}
	a, err := AdversarySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdversarySweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different sweeps:\n%+v\n%+v", a, b)
	}
}

func TestAdversarySweepValidation(t *testing.T) {
	if _, err := AdversarySweep(context.Background(), AdversaryConfig{Fractions: []float64{1.5}}); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
	if _, err := AdversarySweep(context.Background(), AdversaryConfig{Persona: "gremlin", Trials: 1, Fractions: []float64{0.5}}); err == nil {
		t.Fatal("unknown persona accepted")
	}
}
