package experiment

import (
	"context"
	"strings"
	"testing"

	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/rng"
)

// smallSweep keeps unit-test runtime reasonable.
func smallSweep() Sweep {
	return Sweep{Ns: []int{200, 400}, Un: 6, Ue: 3, Trials: 3, Seed: 11}
}

func TestApproachString(t *testing.T) {
	if Alg1.String() != "Alg 1" ||
		TwoMaxFindNaive.String() != "2-MaxFind-naive" ||
		TwoMaxFindExpert.String() != "2-MaxFind-expert" {
		t.Fatal("approach names wrong")
	}
	if !strings.Contains(Approach(7).String(), "7") {
		t.Fatal("unknown approach name")
	}
}

func TestSweepDefaults(t *testing.T) {
	s := Sweep{}.withDefaults()
	if len(s.Ns) != 5 || s.Un != 10 || s.Ue != 5 || s.Trials != 10 {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestSweepValidate(t *testing.T) {
	bad := []Sweep{
		{Ns: []int{100}, Un: 0, Ue: 1, Trials: 1},
		{Ns: []int{100}, Un: 5, Ue: 6, Trials: 1},
		{Ns: []int{10}, Un: 5, Ue: 2, Trials: 1}, // n < 4·un
		{Ns: []int{100}, Un: 5, Ue: 2, Trials: 0},
	}
	for i, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	if err := smallSweep().validate(); err != nil {
		t.Fatalf("good sweep rejected: %v", err)
	}
}

func TestRunTrialAllApproaches(t *testing.T) {
	r := rng.New(1)
	cal, err := dataset.UniformCalibrated(300, 6, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Approaches {
		tr, err := runTrial(context.Background(), a, cal, 6, dispatch.Limits{}, r.Child(a.String()), "")
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if tr.Rank < 1 || tr.Rank > 300 {
			t.Fatalf("%v: rank %d", a, tr.Rank)
		}
		switch a {
		case Alg1:
			if tr.NaiveComparisons == 0 || tr.ExpertComparisons == 0 {
				t.Fatalf("Alg 1 used %d naive / %d expert comparisons",
					tr.NaiveComparisons, tr.ExpertComparisons)
			}
		case TwoMaxFindNaive:
			if tr.ExpertComparisons != 0 || tr.NaiveComparisons == 0 {
				t.Fatalf("naive-only run billed experts")
			}
		case TwoMaxFindExpert:
			if tr.NaiveComparisons != 0 || tr.ExpertComparisons == 0 {
				t.Fatalf("expert-only run billed naives")
			}
		}
	}
}

func TestRunTrialUnknownApproach(t *testing.T) {
	r := rng.New(2)
	cal, err := dataset.UniformCalibrated(100, 3, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runTrial(context.Background(), Approach(42), cal, 3, dispatch.Limits{}, r, ""); err == nil {
		t.Fatal("unknown approach accepted")
	}
}

func TestRunTrialDeterministicPerSeed(t *testing.T) {
	r1 := rng.New(3)
	cal1, err := dataset.UniformCalibrated(300, 6, 3, r1.Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := runTrial(context.Background(), Alg1, cal1, 6, dispatch.Limits{}, r1.Child("t"), "")
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(3)
	cal2, err := dataset.UniformCalibrated(300, 6, 3, r2.Child("d"))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := runTrial(context.Background(), Alg1, cal2, 6, dispatch.Limits{}, r2.Child("t"), "")
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Fatalf("same seed, different trials: %+v vs %+v", tr1, tr2)
	}
}

func TestFig3ShapeAndOrdering(t *testing.T) {
	s := Sweep{Ns: []int{300, 600}, Un: 8, Ue: 3, Trials: 8, Seed: 5}
	fig, err := Fig3(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	byName := map[string]Curve{}
	for _, c := range fig.Curves {
		byName[c.Name] = c
	}
	// Paper shape: the expert-only baseline and Alg 1 are accurate (small
	// rank); the naïve-only baseline is clearly worse on average.
	avg := func(c Curve) float64 {
		s := 0.0
		for _, y := range c.Y {
			s += y
		}
		return s / float64(len(c.Y))
	}
	expert, alg1, naive := avg(byName["2-MaxFind-expert"]), avg(byName["Alg 1"]), avg(byName["2-MaxFind-naive"])
	if naive <= expert || naive <= alg1 {
		t.Fatalf("naive-only (%.2f) should be worst; expert %.2f, alg1 %.2f", naive, expert, alg1)
	}
	if expert > float64(s.Ue)+1 {
		t.Fatalf("expert-only rank %.2f too high for ue=%d", expert, s.Ue)
	}
}

func TestFig4BoundsRespected(t *testing.T) {
	s := smallSweep()
	fig, err := Fig4(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Curve{}
	for _, c := range fig.Curves {
		byName[c.Name] = c
	}
	for i := range s.Ns {
		if byName["Alg 1 naive (avg)"].Y[i] > byName["Alg 1 naive (wc)"].Y[i] {
			t.Fatal("Alg 1 naive average exceeds its worst case")
		}
		if byName["Alg 1 expert (avg)"].Y[i] > byName["Alg 1 expert (wc)"].Y[i] {
			t.Fatal("Alg 1 expert average exceeds its worst case")
		}
		if byName["2-MaxFind-naive (avg)"].Y[i] > byName["2-MaxFind-naive (wc)"].Y[i] {
			t.Fatal("2-MaxFind average exceeds adversarial worst case")
		}
		// The headline claim: Alg 1's expert comparisons do not grow
		// with n (they depend only on un).
		if byName["Alg 1 expert (avg)"].Y[i] > byName["2-MaxFind-expert (avg)"].Y[i] {
			t.Fatal("Alg 1 should use fewer expert comparisons than expert-only 2-MaxFind")
		}
	}
}

func TestFig5CrossoverWithExpertPrice(t *testing.T) {
	// Section 5.1: "if the ratio is less than 10, then our algorithm has
	// a higher cost in the average case. As the cost of an expert worker
	// becomes much higher ... the savings can become tremendous." With a
	// high ce, Alg 1 must beat 2-MaxFind-expert; with ce = 1 it must not.
	s := Sweep{Ns: []int{600}, Un: 6, Ue: 3, Trials: 6, Seed: 7}
	cheap, err := Fig5(context.Background(), CostConfig{Sweep: s, CE: 1})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Fig5(context.Background(), CostConfig{Sweep: s, CE: 200})
	if err != nil {
		t.Fatal(err)
	}
	get := func(f Figure, name string) float64 {
		for _, c := range f.Curves {
			if c.Name == name {
				return c.Y[0]
			}
		}
		t.Fatalf("curve %q missing", name)
		return 0
	}
	if get(cheap, "Alg 1 (avg)") <= get(cheap, "2-MaxFind-expert (avg)") {
		t.Fatal("with ce=cn, Alg 1 should cost more than expert-only")
	}
	if get(costly, "Alg 1 (avg)") >= get(costly, "2-MaxFind-expert (avg)") {
		t.Fatal("with ce≫cn, Alg 1 should cost less than expert-only")
	}
}

func TestFig6UnderestimationDegradesAccuracy(t *testing.T) {
	cfg := Fig6Config{
		Sweep:   Sweep{Ns: []int{400}, Un: 10, Ue: 5, Trials: 12, Seed: 9},
		Factors: []float64{0.2, 1, 2},
	}
	fig, err := Fig6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Curve{}
	for _, c := range fig.Curves {
		byName[c.Name] = c
	}
	under := byName["Alg 1 (0.2*un)"].Y[0]
	exact := byName["Alg 1"].Y[0]
	over := byName["Alg 1 (2*un)"].Y[0]
	if under <= exact {
		t.Fatalf("underestimation (%.2f) should degrade accuracy vs exact (%.2f)", under, exact)
	}
	// Overestimation must not significantly degrade accuracy (Section 4.4).
	if over > exact+2 {
		t.Fatalf("overestimation degraded accuracy: %.2f vs %.2f", over, exact)
	}
}

func TestFig7CostScalesWithFactor(t *testing.T) {
	cfg := FactorCostConfig{
		CostConfig: CostConfig{Sweep: Sweep{Ns: []int{400}, Un: 8, Ue: 3, Trials: 4, Seed: 13}, CE: 10},
		Factors:    []float64{0.5, 1, 2},
	}
	fig, err := Fig7(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	// Cost increases with the estimation factor (roughly linearly).
	if !(fig.Curves[0].Y[0] < fig.Curves[1].Y[0] && fig.Curves[1].Y[0] < fig.Curves[2].Y[0]) {
		t.Fatalf("costs not increasing in factor: %v %v %v",
			fig.Curves[0].Y[0], fig.Curves[1].Y[0], fig.Curves[2].Y[0])
	}
}

func TestFig9And10WorstCases(t *testing.T) {
	s := smallSweep()
	f9, err := Fig9(context.Background(), CostConfig{Sweep: s, CE: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Curves) != 3 {
		t.Fatalf("fig9 curves = %d", len(f9.Curves))
	}
	f10, err := Fig10(FactorCostConfig{CostConfig: CostConfig{Sweep: s, CE: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Curves) != 6 {
		t.Fatalf("fig10 curves = %d", len(f10.Curves))
	}
	// Fig10 worst cases are pure theory: monotone in both n and factor.
	for _, c := range f10.Curves {
		for i := 1; i < len(c.Y); i++ {
			if c.Y[i] < c.Y[i-1] {
				t.Fatalf("curve %q not monotone in n", c.Name)
			}
		}
	}
}

func TestRetentionShape(t *testing.T) {
	cfg := Fig6Config{
		Sweep:   Sweep{Ns: []int{400, 800}, Un: 10, Ue: 5, Trials: 15, Seed: 17},
		Factors: []float64{0.2, 0.8, 1},
	}
	res, err := Retention(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retention) != 3 {
		t.Fatalf("retention entries = %d", len(res.Retention))
	}
	// Section 5.2 shape: retention falls as the factor shrinks; exact
	// estimation retains (essentially) always.
	if res.Retention[2] < 0.99 {
		t.Fatalf("exact estimation retention = %.2f", res.Retention[2])
	}
	if res.Retention[0] >= res.Retention[2] {
		t.Fatalf("factor 0.2 retention %.2f not below factor 1 retention %.2f",
			res.Retention[0], res.Retention[2])
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "estimation factor") {
		t.Fatal("retention rendering missing header")
	}
}

func TestEstimatedUnClamping(t *testing.T) {
	if estimatedUn(10, 0.01) != 1 {
		t.Fatal("estimate should clamp at 1")
	}
	if estimatedUn(10, 1.2) != 12 || estimatedUn(10, 0.5) != 5 {
		t.Fatal("estimate rounding wrong")
	}
}
