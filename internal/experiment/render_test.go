package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		Title:  "Sample",
		XLabel: "n",
		YLabel: "value",
		Curves: []Curve{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}, Err: []float64{0.5, 0, 1}},
			{Name: "b,quoted", X: []float64{1, 2}, Y: []float64{5, 6}},
		},
	}
}

func TestFigureWriteTextRaggedCurves(t *testing.T) {
	var sb strings.Builder
	if err := sampleFigure().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# Sample", "a", "b,quoted", "10±0.5", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, out)
		}
	}
	// The shorter curve's missing third point renders as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "-") {
		t.Fatalf("ragged row = %q", last)
	}
}

func TestFigureWriteCSVEscaping(t *testing.T) {
	var sb strings.Builder
	if err := sampleFigure().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"b,quoted"`) {
		t.Fatalf("comma-bearing name not quoted:\n%s", out)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 4 { // header + 3 points
		t.Fatalf("rows = %d", len(rows))
	}
	// Ragged column is empty, not "-".
	if !strings.HasSuffix(rows[3], ",") {
		t.Fatalf("ragged CSV row = %q", rows[3])
	}
}

func TestFigureWriteJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := sampleFigure().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got figureJSON
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "Sample" || len(got.Curves) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Curves[0].Err == nil || got.Curves[1].Err != nil {
		t.Fatal("err fields not preserved/omitted correctly")
	}
}

func TestWriteTableAlignment(t *testing.T) {
	var sb strings.Builder
	err := WriteTable(&sb, []string{"col", "long header"}, [][]string{
		{"a-very-long-cell", "1"},
		{"b", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Separator matches the widest cell in each column.
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("a-very-long-cell"))) {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestFormatNum(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{40000, "40000"},
		{-12, "-12"},
		{0.123456, "0.123"},
		{1234.5, "1234"}, // %.0f rounds half to even
		{0.5, "0.5"},
	}
	for _, tc := range tests {
		if got := formatNum(tc.v); got != tc.want {
			t.Errorf("formatNum(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestEmptyFigure(t *testing.T) {
	var sb strings.Builder
	empty := Figure{Title: "empty", XLabel: "x", YLabel: "y"}
	if err := empty.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := empty.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if err := empty.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
}
