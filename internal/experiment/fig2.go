package experiment

import (
	"fmt"

	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/stats"
	"crowdmax/internal/worker"
)

// Fig2Config configures the Figure 2 reproduction: majority-vote accuracy as
// a function of the number of workers, bucketed by the relative value
// difference of the compared pair, for the DOTS (wisdom-of-crowds) and CARS
// (expertise-barrier) regimes.
type Fig2Config struct {
	// PairsPerBand is the number of random pairs sampled per difficulty
	// band (the paper submitted 105 DOTS and 154 CARS pairs overall).
	PairsPerBand int
	// Repeats is the number of independent worker panels per pair.
	Repeats int
	// MaxWorkers is the largest panel size (the paper requested "at
	// least 21 answers" per pair).
	MaxWorkers int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the goroutines fanning difficulty bands out; 0
	// selects runtime.GOMAXPROCS(0). Parallelism is per band — a band's
	// world draws latent pair parameters from one stream in encounter
	// order, so trials within a band stay sequential — and output is
	// identical for every value.
	Workers int
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.PairsPerBand == 0 {
		c.PairsPerBand = 30
	}
	if c.Repeats == 0 {
		c.Repeats = 20
	}
	if c.MaxWorkers == 0 {
		c.MaxWorkers = 21
	}
	return c
}

// band is one relative-difference bucket of Figure 2.
type band struct {
	lo, hi float64 // (lo, hi]; lo = 0 means [0, hi]
	label  string
}

var dotsBands = []band{
	{0, 0.1, "[0,0.1]"},
	{0.1, 0.2, "(0.1,0.2]"},
	{0.2, 0.3, "(0.2,0.3]"},
	{0.3, 1, "(0.3,+inf)"},
}

var carsBands = []band{
	{0, 0.1, "[0,0.1]"},
	{0.1, 0.2, "(0.1,0.2]"},
	{0.2, 0.5, "(0.2,0.5]"},
	{0.5, 1, "(0.5,+inf)"},
}

// Fig2 runs both panels of Figure 2 and returns them as figures whose curves
// are the difficulty bands and whose x-axis is the (odd) panel size 1..21.
func Fig2(cfg Fig2Config) (dots, cars Figure, err error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)

	dots, err = fig2Panel("Figure 2(a) DOTS", dotsBands,
		worker.WisdomRegime{Sharpness: 5}, 100, 1500, cfg, root.Child("dots"))
	if err != nil {
		return Figure{}, Figure{}, err
	}
	cars, err = fig2Panel("Figure 2(b) CARS", carsBands,
		worker.PlateauRegime{Threshold: 0.2, Epsilon: 0.05}, 14000, 130000, cfg, root.Child("cars"))
	if err != nil {
		return Figure{}, Figure{}, err
	}
	return dots, cars, nil
}

func fig2Panel(title string, bands []band, regime worker.Regime, lo, hi float64, cfg Fig2Config, r *rng.Source) (Figure, error) {
	fig := Figure{Title: title, XLabel: "workers", YLabel: "majority accuracy"}
	var ks []float64
	for k := 1; k <= cfg.MaxWorkers; k += 2 {
		ks = append(ks, float64(k))
	}
	curves := make([]Curve, len(bands))
	if err := parallel.For(cfg.Workers, len(bands), func(bi int) error {
		b := bands[bi]
		world := worker.NewWorld(regime, r.ChildN("world", bi))
		accs := make([]*stats.Summary, len(ks))
		for i := range accs {
			accs[i] = &stats.Summary{}
		}
		for p := 0; p < cfg.PairsPerBand; p++ {
			pr := r.ChildN(fmt.Sprintf("band%d-pair", bi), p)
			a, bIt, err := pairInBand(b, lo, hi, 2*p, pr)
			if err != nil {
				return err
			}
			hiIt := a
			if bIt.Value > a.Value {
				hiIt = bIt
			}
			for rep := 0; rep < cfg.Repeats; rep++ {
				w := world.Worker(pr.ChildN("panel", rep))
				// Ask MaxWorkers workers once, reuse prefixes for
				// smaller panels, like the paper ("ordered by time
				// of response").
				votesHi := 0
				ki := 0
				for k := 1; k <= cfg.MaxWorkers; k++ {
					if w.Compare(a, bIt).ID == hiIt.ID {
						votesHi++
					}
					if k%2 == 1 {
						correct := 0.0
						if 2*votesHi > k {
							correct = 1
						} else if 2*votesHi == k {
							correct = 0.5
						}
						accs[ki].Add(correct)
						ki++
					}
				}
			}
		}
		ys := make([]float64, len(ks))
		errs := make([]float64, len(ks))
		for i, s := range accs {
			ys[i] = s.Mean()
			errs[i] = s.StdErr()
		}
		curves[bi] = Curve{
			Name: b.label + fmt.Sprintf(",%d", cfg.PairsPerBand),
			X:    append([]float64(nil), ks...),
			Y:    ys,
			Err:  errs,
		}
		return nil
	}); err != nil {
		return Figure{}, err
	}
	fig.Curves = append(fig.Curves, curves...)
	return fig, nil
}

// pairInBand constructs a pair of items whose relative difference lies in
// the band, with values inside [lo, hi].
func pairInBand(b band, lo, hi float64, baseID int, r *rng.Source) (item.Item, item.Item, error) {
	bandHi := b.hi
	if bandHi > 0.9 {
		bandHi = 0.9 // keep the smaller value positive and in range
	}
	for attempt := 0; attempt < 1000; attempt++ {
		rel := r.UniformIn(b.lo, bandHi)
		if rel <= b.lo && b.lo > 0 { // bands are (lo, hi]
			continue
		}
		big := r.UniformIn(lo, hi)
		small := big * (1 - rel)
		if small < lo {
			continue
		}
		return item.Item{ID: baseID, Value: small}, item.Item{ID: baseID + 1, Value: big}, nil
	}
	return item.Item{}, item.Item{}, fmt.Errorf("experiment: no pair in band %s within [%g,%g]", b.label, lo, hi)
}
