package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/chaos"
	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// AdversaryConfig configures the adversarial sweep: phase-1 max retention as
// a function of the fraction of poisoned workers in the naïve pool, with and
// without worker health tracking. It is the robustness counterpart of the
// Section 5.2 retention experiment: there the threat is an underestimated
// un, here it is workers who violate the threshold model outright.
type AdversaryConfig struct {
	// N is the input size; defaults to 400.
	N int
	// Un and Ue are the calibrated distinguishability parameters; default
	// 8 and 3.
	Un, Ue int
	// PoolSize is the number of naïve workers in the pool; defaults to 10.
	PoolSize int
	// Trials is the number of random instances per (fraction, arm) cell;
	// defaults to 100.
	Trials int
	// Fractions are the poisoned-worker fractions swept on the x-axis;
	// default {0, 0.1, 0.2, 0.3}.
	Fractions []float64
	// Persona is the fault model for poisoned workers; defaults to the
	// spammer (uniformly random answers).
	Persona chaos.Persona
	// Seed derives every instance, worker, and routing stream; a fixed
	// seed reproduces the sweep exactly.
	Seed uint64
	// Workers bounds the parallel cell evaluations (0 = GOMAXPROCS).
	Workers int
}

func (c AdversaryConfig) withDefaults() AdversaryConfig {
	if c.N == 0 {
		c.N = 400
	}
	if c.Un == 0 {
		c.Un = 8
	}
	if c.Ue == 0 {
		c.Ue = 3
	}
	if c.PoolSize == 0 {
		c.PoolSize = 10
	}
	if c.Trials == 0 {
		c.Trials = 100
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0, 0.1, 0.2, 0.3}
	}
	if c.Persona == chaos.PersonaNone {
		c.Persona = chaos.PersonaSpammer
	}
	return c
}

func (c AdversaryConfig) validate() error {
	if c.N < 8 || c.Un < 1 || c.Ue < 1 || c.PoolSize < 1 || c.Trials < 1 {
		return fmt.Errorf("experiment: adversary config out of range: %+v", c)
	}
	for _, f := range c.Fractions {
		if f < 0 || f >= 1 {
			return fmt.Errorf("experiment: poisoned fraction %g outside [0, 1)", f)
		}
	}
	return nil
}

// adversaryPool builds the naïve worker pool for one trial: PoolSize
// threshold workers, the first round(f·PoolSize) of them poisoned by the
// configured persona (intercepting every request they serve).
func (c AdversaryConfig) adversaryPool(cal dataset.Calibrated, f float64, r *rng.Source) (*dispatch.Pool, error) {
	bad := int(f*float64(c.PoolSize) + 0.5)
	workers := make([]dispatch.PoolWorker, c.PoolSize)
	for i := range workers {
		wr := r.ChildN("worker", i)
		var b dispatch.Backend = dispatch.NewSimulated(&worker.Threshold{
			Delta: cal.DeltaN, Tie: worker.RandomTie{R: wr}, R: wr,
		})
		name := fmt.Sprintf("honest-%d", i)
		if i < bad {
			pcfg := chaos.PersonaConfig{Seed: wr.Seed(), Delta: cal.DeltaN, Rate: 0.5}
			switch c.Persona {
			case chaos.PersonaSpammer:
				b = chaos.NewSpammer(b, pcfg)
			case chaos.PersonaAdversary:
				b = chaos.NewAdversary(b, pcfg)
			case chaos.PersonaDegrader:
				b = chaos.NewDegrader(b, pcfg)
			default:
				return nil, fmt.Errorf("experiment: adversary sweep does not support persona %q", c.Persona)
			}
			name = fmt.Sprintf("%s-%d", c.Persona, i)
		}
		workers[i] = dispatch.PoolWorker{Name: name, Backend: b}
	}
	return dispatch.NewPool(workers, r.Child("pool").Seed())
}

// adversaryGold builds the trial's gold probe set Algorithm-4 style: a small
// training sample from the same distribution whose maximum is known to the
// experimenter, filtered to pairs an honest naïve worker must answer
// correctly.
func adversaryGold(cal dataset.Calibrated, r *rng.Source) []dispatch.GoldPair {
	training := make([]item.Item, 24)
	for i := range training {
		training[i] = item.Item{ID: 1<<20 + i, Value: r.UniformIn(0, 1)}
	}
	return dispatch.GoldFromTraining(training, cal.DeltaN, 32)
}

// AdversarySweep measures phase-1 retention of the true maximum under a
// progressively more poisoned naïve worker pool, with health tracking off
// (every worker keeps answering) and on (gold probes + quarantine evict
// workers below the reliability floor). The returned figure has the poisoned
// fraction on the x-axis and retention percent on the y-axis, one curve per
// arm.
func AdversarySweep(ctx context.Context, cfg AdversaryConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	// Cells are (fraction, arm, trial) triples, all independent. Arm 0 is
	// health off, arm 1 health on; both arms replay the same instances.
	perFraction := 2 * cfg.Trials
	kept := make([]bool, len(cfg.Fractions)*perFraction)
	err := parallel.For(cfg.Workers, len(kept), func(c int) error {
		fi, rest := c/perFraction, c%perFraction
		arm, trial := rest/cfg.Trials, rest%cfg.Trials
		f := cfg.Fractions[fi]

		ir := rng.New(cfg.Seed).ChildN("adv-instance", trial)
		cal, err := dataset.UniformCalibrated(cfg.N, cfg.Un, cfg.Ue, ir.Child("data"))
		if err != nil {
			return err
		}
		// Worker and routing streams vary per (fraction, arm) so the two
		// arms are independent draws over identical instances.
		tr := ir.ChildN(fmt.Sprintf("f%g", f), arm)
		pool, err := cfg.adversaryPool(cal, f, tr)
		if err != nil {
			return err
		}
		if arm == 1 {
			pool.EnableHealth(dispatch.HealthConfig{
				Gold:       adversaryGold(cal, tr.Child("gold")),
				ProbeEvery: 4,
				Seed:       tr.Child("health").Seed(),
			})
		}
		ledger := cost.NewLedger()
		naive := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: tr.Child("ref")}, R: tr.Child("ref")}
		no := tournament.NewOracle(naive, worker.Naive, ledger, nil).WithBackend(pool)
		survivors, err := core.Filter(ctx, cal.Set.Items(), no, core.FilterOptions{Un: cfg.Un})
		if err != nil {
			return err
		}
		maxID := cal.Set.Max().ID
		for _, s := range survivors {
			if s.ID == maxID {
				kept[c] = true
				break
			}
		}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}

	fig := Figure{
		Title:  "Adversarial sweep — phase-1 retention under poisoned workers",
		XLabel: "poisoned fraction",
		YLabel: "max retained (%)",
		Curves: []Curve{{Name: "health off"}, {Name: "health on"}},
	}
	for fi, f := range cfg.Fractions {
		for arm := 0; arm < 2; arm++ {
			retained := 0
			base := fi*perFraction + arm*cfg.Trials
			for t := 0; t < cfg.Trials; t++ {
				if kept[base+t] {
					retained++
				}
			}
			fig.Curves[arm].X = append(fig.Curves[arm].X, f)
			fig.Curves[arm].Y = append(fig.Curves[arm].Y, 100*float64(retained)/float64(cfg.Trials))
		}
	}
	return fig, nil
}
