package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/parallel"
	"crowdmax/internal/stats"
)

// CostConfig configures the cost figures (5, 7, 9, 10): a sweep plus the
// price of an expert comparison. The paper fixes cn = 1 and varies
// ce ∈ {10, 20, 50}.
type CostConfig struct {
	Sweep
	// CE is the expert price ce; cn is fixed to 1 as in the paper.
	CE float64
}

func (c CostConfig) withDefaults() CostConfig {
	c.Sweep = c.Sweep.withDefaults()
	if c.CE == 0 {
		c.CE = 10
	}
	return c
}

func (c CostConfig) prices() cost.Prices {
	return cost.Prices{Naive: 1, Expert: c.CE}
}

// Fig5 reproduces one panel of Figure 5: average monetary cost
// C(n) = xe·ce + xn·cn as a function of n for the three approaches.
func Fig5(ctx context.Context, cfg CostConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	points, err := measureComparisons(ctx, cfg.Sweep)
	if err != nil {
		return Figure{}, err
	}
	ce := cfg.CE
	fig := Figure{
		Title:  fmt.Sprintf("Figure 5 (avg cost, ce=%g, un=%d, ue=%d)", ce, cfg.Un, cfg.Ue),
		XLabel: "n",
		YLabel: "C(n)",
	}
	xs := nsToFloats(cfg.Ns)
	curve := func(name string, f func(comparisonsPoint) float64) Curve {
		ys := make([]float64, len(points))
		for i, p := range points {
			ys[i] = f(p)
		}
		return Curve{Name: name, X: xs, Y: ys}
	}
	fig.Curves = []Curve{
		curve("2-MaxFind-expert (avg)", func(p comparisonsPoint) float64 { return ce * p.TwoMFExpertAvg }),
		curve("Alg 1 (avg)", func(p comparisonsPoint) float64 { return p.Alg1NaiveAvg + ce*p.Alg1ExpertAvg }),
		curve("2-MaxFind-naive (avg)", func(p comparisonsPoint) float64 { return p.TwoMFNaiveAvg }),
	}
	return fig, nil
}

// Fig9 reproduces one panel of Figure 9 (Appendix C): worst-case cost as a
// function of n for the three approaches — theory bounds for Alg 1,
// measured adversarial instances for 2-MaxFind.
func Fig9(ctx context.Context, cfg CostConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	points, err := measureComparisons(ctx, cfg.Sweep)
	if err != nil {
		return Figure{}, err
	}
	ce := cfg.CE
	fig := Figure{
		Title:  fmt.Sprintf("Figure 9 (wc cost, ce=%g, un=%d, ue=%d)", ce, cfg.Un, cfg.Ue),
		XLabel: "n",
		YLabel: "C(n)",
	}
	xs := nsToFloats(cfg.Ns)
	curve := func(name string, f func(comparisonsPoint) float64) Curve {
		ys := make([]float64, len(points))
		for i, p := range points {
			ys[i] = f(p)
		}
		return Curve{Name: name, X: xs, Y: ys}
	}
	fig.Curves = []Curve{
		curve("2-MaxFind-expert (wc)", func(p comparisonsPoint) float64 { return ce * p.TwoMFWC }),
		curve("Alg 1 (wc)", func(p comparisonsPoint) float64 { return p.Alg1NaiveWC + ce*p.Alg1ExpertWC }),
		curve("2-MaxFind-naive (wc)", func(p comparisonsPoint) float64 { return p.TwoMFWC }),
	}
	return fig, nil
}

// FactorCostConfig configures the estimation-factor cost figures (7 and 10).
type FactorCostConfig struct {
	CostConfig
	// Factors are the estimation factors; defaults to the paper's
	// {0.2, 0.5, 0.8, 1, 1.2, 2}.
	Factors []float64
}

func (c FactorCostConfig) withDefaults() FactorCostConfig {
	c.CostConfig = c.CostConfig.withDefaults()
	if len(c.Factors) == 0 {
		c.Factors = []float64{0.2, 0.5, 0.8, 1, 1.2, 2}
	}
	return c
}

// Fig7 reproduces one panel of Figure 7: average cost of Alg 1 as a function
// of n for each estimation factor. The paper's observation — cost scales
// smoothly and roughly linearly in the factor — is the target shape.
func Fig7(ctx context.Context, cfg FactorCostConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Figure 7 (avg cost, ce=%g, un=%d, ue=%d)", cfg.CE, cfg.Un, cfg.Ue),
		XLabel: "n",
		YLabel: "C(n)",
	}
	prices := cfg.prices()
	// Cells are (factor, n, trial) triples, all independent.
	perN := len(cfg.Ns) * cfg.Trials
	costs := make([]float64, len(cfg.Factors)*perN)
	if err := parallel.For(cfg.Workers, len(costs), func(c int) error {
		fi, rest := c/perN, c%perN
		ni, trial := rest/cfg.Trials, rest%cfg.Trials
		factor := cfg.Factors[fi]
		cal, r, err := cfg.instance(cfg.Ns[ni], trial)
		if err != nil {
			return err
		}
		tr, err := runTrial(ctx, Alg1, cal, estimatedUn(cfg.Un, factor), cfg.Budget, r.Child(fmt.Sprintf("cost-f%g", factor)),
			trialLabel("fig7", cfg.Ns[ni], trial))
		if err != nil {
			return err
		}
		costs[c] = float64(tr.NaiveComparisons)*prices.Naive + float64(tr.ExpertComparisons)*prices.Expert
		return nil
	}); err != nil {
		return Figure{}, err
	}
	for fi, factor := range cfg.Factors {
		ys := make([]float64, len(cfg.Ns))
		for ni := range cfg.Ns {
			var sum stats.Summary
			for trial := 0; trial < cfg.Trials; trial++ {
				sum.Add(costs[fi*perN+ni*cfg.Trials+trial])
			}
			ys[ni] = sum.Mean()
		}
		fig.Curves = append(fig.Curves, Curve{
			Name: factorLabel(factor) + " (avg)",
			X:    nsToFloats(cfg.Ns),
			Y:    ys,
		})
	}
	return fig, nil
}

// Fig10 reproduces one panel of Figure 10: worst-case (theory) cost of Alg 1
// as a function of n for each estimation factor.
func Fig10(cfg FactorCostConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Figure 10 (wc cost, ce=%g, un=%d, ue=%d)", cfg.CE, cfg.Un, cfg.Ue),
		XLabel: "n",
		YLabel: "C(n)",
	}
	for _, factor := range cfg.Factors {
		unEst := estimatedUn(cfg.Un, factor)
		ys := make([]float64, len(cfg.Ns))
		for ni, n := range cfg.Ns {
			ys[ni] = core.Phase1UpperBound(n, unEst) + cfg.CE*core.Phase2ExpertUpperBound(unEst)
		}
		fig.Curves = append(fig.Curves, Curve{
			Name: factorLabel(factor) + " (wc)",
			X:    nsToFloats(cfg.Ns),
			Y:    ys,
		})
	}
	return fig, nil
}
