package experiment

import (
	"context"
	"fmt"
	"hash/fnv"

	"crowdmax/internal/chaos"
	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// TrustMix is one adversary composition of the worker pool: how many of the
// PoolSize workers are chance-level spammers and how many belong to a
// coordinated gold-acing clique.
type TrustMix struct {
	Spammers  int `json:"spammers"`
	Colluders int `json:"colluders"`
}

// TrustArms are the scorer arms the sweep compares, in report order.
var TrustArms = []string{"gold", "graph", "hybrid"}

// TrustConfig configures the trust sweep: phase-1 max retention and total
// paid comparisons per (adversary mix, scorer arm) cell. It answers the
// question the gold-probe breaker cannot: what happens when the adversary
// *passes* the probes? The clique arm of each mix answers the leaked gold
// set honestly and coordinately inverts everything else, so the gold scorer
// keeps paying it while the agreement-graph scorer (internal/trust) evicts
// it from the disagreement structure alone.
type TrustConfig struct {
	// N is the input size; defaults to 400.
	N int
	// Un and Ue are the calibrated distinguishability parameters; default
	// 8 and 3.
	Un, Ue int
	// PoolSize is the number of naïve workers in the pool; defaults to 10.
	PoolSize int
	// Trials is the number of random instances per cell; defaults to 40.
	Trials int
	// Warmup is the number of unlabeled warm-up comparisons driven through
	// the pool before phase 1, on every arm — the spend that buys the
	// detectors their evidence (gold probes for the gold arm, duplicate
	// samples for the graph arm) before retention is on the line. Defaults
	// to 240.
	Warmup int
	// Mixes are the (spammers, colluders) compositions swept; defaults to
	// {0,0}, {2,0}, {0,2}, {0,3}, {2,2}.
	Mixes []TrustMix
	// Seed derives every instance, worker, and routing stream; a fixed seed
	// reproduces the sweep bit-identically.
	Seed uint64
	// Workers bounds the parallel cell evaluations (0 = GOMAXPROCS).
	Workers int
}

func (c TrustConfig) withDefaults() TrustConfig {
	if c.N == 0 {
		c.N = 400
	}
	if c.Un == 0 {
		c.Un = 8
	}
	if c.Ue == 0 {
		c.Ue = 3
	}
	if c.PoolSize == 0 {
		c.PoolSize = 10
	}
	if c.Trials == 0 {
		c.Trials = 40
	}
	if c.Warmup == 0 {
		c.Warmup = 240
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []TrustMix{{0, 0}, {2, 0}, {0, 2}, {0, 3}, {2, 2}}
	}
	return c
}

func (c TrustConfig) validate() error {
	if c.N < 8 || c.Un < 1 || c.Ue < 1 || c.PoolSize < 2 || c.Trials < 1 || c.Warmup < 0 {
		return fmt.Errorf("experiment: trust config out of range: %+v", c)
	}
	for _, m := range c.Mixes {
		if m.Spammers < 0 || m.Colluders < 0 || m.Spammers+m.Colluders >= c.PoolSize {
			return fmt.Errorf("experiment: trust mix %+v leaves no honest majority in a pool of %d", m, c.PoolSize)
		}
	}
	return nil
}

// TrustArmStats is one arm's aggregate over a mix's trials.
type TrustArmStats struct {
	// RetentionPct is the percentage of trials whose phase-1 survivors
	// still contained the true maximum.
	RetentionPct float64 `json:"retention_pct"`
	// MeanCost is the mean total paid comparisons per trial — routed
	// answers plus gold probes plus disagreement duplicates, warm-up
	// included. Retention per dollar is RetentionPct / MeanCost.
	MeanCost float64 `json:"mean_cost"`
}

// TrustCell is one adversary mix's result across all arms.
type TrustCell struct {
	Spammers  int                      `json:"spammers"`
	Colluders int                      `json:"colluders"`
	Arms      map[string]TrustArmStats `json:"arms"`
}

// TrustReport is the sweep's JSON artifact (results/BENCH_trust.json,
// gated by benchcheck's kind:"trust" schema).
type TrustReport struct {
	Kind     string      `json:"kind"`
	Seed     uint64      `json:"seed"`
	N        int         `json:"n"`
	Un       int         `json:"un"`
	Ue       int         `json:"ue"`
	PoolSize int         `json:"pool_size"`
	Trials   int         `json:"trials"`
	Warmup   int         `json:"warmup"`
	Mixes    []TrustCell `json:"mixes"`
	// Deterministic records that the whole sweep was run twice and both
	// passes hashed identically.
	Deterministic bool   `json:"deterministic"`
	Hash          string `json:"hash"`
}

// trustGold builds the trial's gold probe set Algorithm-4 style and returns
// the training-item IDs alongside — the "leak" handed to the clique, which
// answers exactly those pairs honestly.
func trustGold(cal dataset.Calibrated, r *rng.Source) ([]dispatch.GoldPair, []int) {
	training := make([]item.Item, 24)
	ids := make([]int, len(training))
	for i := range training {
		training[i] = item.Item{ID: 1<<20 + i, Value: r.UniformIn(0, 1)}
		ids[i] = training[i].ID
	}
	return dispatch.GoldFromTraining(training, cal.DeltaN, 32), ids
}

// trustPool builds one trial's pool: honest threshold workers, the first
// Spammers of them replaced by chance-level spammers and the next Colluders
// by members of a single coordinated clique that knows the gold set.
func (c TrustConfig) trustPool(cal dataset.Calibrated, mix TrustMix, goldIDs []int, targetID int, r *rng.Source) (*dispatch.Pool, error) {
	var ring *chaos.Clique
	if mix.Colluders > 0 {
		ring = chaos.NewClique(chaos.PersonaConfig{
			Seed: r.Child("ring").Seed(), Fraction: 1,
			TargetID: targetID, GoldIDs: goldIDs,
		})
	}
	workers := make([]dispatch.PoolWorker, c.PoolSize)
	for i := range workers {
		wr := r.ChildN("worker", i)
		var b dispatch.Backend = dispatch.NewSimulated(&worker.Threshold{
			Delta: cal.DeltaN, Tie: worker.RandomTie{R: wr}, R: wr,
		})
		name := fmt.Sprintf("honest-%d", i)
		switch {
		case i < mix.Spammers:
			b = chaos.NewSpammer(b, chaos.PersonaConfig{Seed: wr.Seed()})
			name = fmt.Sprintf("spammer-%d", i)
		case i < mix.Spammers+mix.Colluders:
			b = ring.Member(b)
			name = fmt.Sprintf("clique-%d", i)
		}
		workers[i] = dispatch.PoolWorker{Name: name, Backend: b}
	}
	return dispatch.NewPool(workers, r.Child("pool").Seed())
}

// trustHealth returns the arm's health configuration. Every arm pays for its
// evidence: the gold arms buy probes, the graph arms buy duplicate samples,
// hybrid buys both.
func trustHealth(arm string, gold []dispatch.GoldPair, seed uint64) dispatch.HealthConfig {
	switch arm {
	case "gold":
		return dispatch.HealthConfig{Gold: gold, ProbeEvery: 4, DisagreeEvery: 2, Seed: seed}
	case "graph":
		return dispatch.HealthConfig{Scorer: dispatch.ScorerGraph, DisagreeEvery: 2, Seed: seed}
	default: // hybrid
		return dispatch.HealthConfig{
			Scorer: dispatch.ScorerHybrid, Gold: gold,
			ProbeEvery: 4, DisagreeEvery: 2, Seed: seed,
		}
	}
}

// evalTrustCell runs one (mix, arm, trial) cell and reports whether phase 1
// retained the true maximum and what the trial cost in paid comparisons.
func (c TrustConfig) evalTrustCell(ctx context.Context, mixIdx, armIdx, trial int) (kept bool, paid int64, err error) {
	mix := c.Mixes[mixIdx]
	ir := rng.New(c.Seed).ChildN("trust-instance", trial)
	cal, err := dataset.UniformCalibrated(c.N, c.Un, c.Ue, ir.Child("data"))
	if err != nil {
		return false, 0, err
	}
	// Worker, gold, and routing streams vary per (mix, arm); the instance
	// stays fixed per trial so the arms compare on identical inputs.
	tr := ir.ChildN(fmt.Sprintf("s%dc%d", mix.Spammers, mix.Colluders), armIdx)
	gold, goldIDs := trustGold(cal, tr.Child("gold"))

	// The ring's promotion target: the weakest item, so every poisoned
	// answer works against the true maximum.
	items := cal.Set.Items()
	target := items[0]
	for _, x := range items[1:] {
		if x.Value < target.Value {
			target = x
		}
	}
	pool, err := c.trustPool(cal, mix, goldIDs, target.ID, tr)
	if err != nil {
		return false, 0, err
	}
	pool.EnableHealth(trustHealth(TrustArms[armIdx], gold, tr.Child("health").Seed()))

	// Warm-up: unlabeled comparisons whose answers are thrown away but
	// whose probes and duplicates feed the detectors, so a scorer that can
	// catch the adversary has done so before retention is measured.
	wr := tr.Child("warmup")
	for i := 0; i < c.Warmup; i++ {
		a, b := items[wr.Intn(len(items))], items[wr.Intn(len(items))]
		if a.ID == b.ID {
			continue
		}
		if _, err := pool.Answer(ctx, dispatch.Request{A: a, B: b, Class: worker.Naive}); err != nil {
			return false, 0, err
		}
	}

	ledger := cost.NewLedger()
	ref := tr.Child("ref")
	naive := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: ref}, R: ref}
	no := tournament.NewOracle(naive, worker.Naive, ledger, nil).WithBackend(pool)
	survivors, err := core.Filter(ctx, items, no, core.FilterOptions{Un: c.Un})
	if err != nil {
		return false, 0, err
	}
	maxID := cal.Set.Max().ID
	for _, s := range survivors {
		if s.ID == maxID {
			kept = true
			break
		}
	}
	for _, sc := range pool.Scorecards() {
		paid += sc.Answered + sc.GoldProbes + sc.Duplicated
	}
	return kept, paid, nil
}

// runTrustSweep evaluates every cell once and aggregates per (mix, arm).
func (c TrustConfig) runTrustSweep(ctx context.Context) ([]TrustCell, string, error) {
	arms := len(TrustArms)
	perMix := arms * c.Trials
	kept := make([]bool, len(c.Mixes)*perMix)
	paid := make([]int64, len(kept))
	err := parallel.For(c.Workers, len(kept), func(i int) error {
		mixIdx, rest := i/perMix, i%perMix
		armIdx, trial := rest/c.Trials, rest%c.Trials
		k, p, err := c.evalTrustCell(ctx, mixIdx, armIdx, trial)
		if err != nil {
			return err
		}
		kept[i], paid[i] = k, p
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	cells := make([]TrustCell, len(c.Mixes))
	h := fnv.New64a()
	for mi, mix := range c.Mixes {
		cell := TrustCell{Spammers: mix.Spammers, Colluders: mix.Colluders,
			Arms: make(map[string]TrustArmStats, arms)}
		for ai, arm := range TrustArms {
			base := mi*perMix + ai*c.Trials
			retained, total := 0, int64(0)
			for t := 0; t < c.Trials; t++ {
				if kept[base+t] {
					retained++
				}
				total += paid[base+t]
			}
			st := TrustArmStats{
				RetentionPct: 100 * float64(retained) / float64(c.Trials),
				MeanCost:     float64(total) / float64(c.Trials),
			}
			cell.Arms[arm] = st
			fmt.Fprintf(h, "%d/%d/%s:%.4f:%.4f;", mix.Spammers, mix.Colluders, arm,
				st.RetentionPct, st.MeanCost)
		}
		cells[mi] = cell
	}
	return cells, fmt.Sprintf("%016x", h.Sum64()), nil
}

// TrustSweep measures phase-1 retention and paid comparisons per adversary
// mix under the three scorer arms, running the whole sweep twice to certify
// determinism. The headline comparison: at mixes dominated by a gold-acing
// clique, the gold arm keeps paying the ring and retention collapses, while
// the graph and hybrid arms evict it during warm-up and stay near 100%.
func TrustSweep(ctx context.Context, cfg TrustConfig) (TrustReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return TrustReport{}, err
	}
	cells, hash, err := cfg.runTrustSweep(ctx)
	if err != nil {
		return TrustReport{}, err
	}
	_, rehash, err := cfg.runTrustSweep(ctx)
	if err != nil {
		return TrustReport{}, err
	}
	return TrustReport{
		Kind: "trust", Seed: cfg.Seed,
		N: cfg.N, Un: cfg.Un, Ue: cfg.Ue,
		PoolSize: cfg.PoolSize, Trials: cfg.Trials, Warmup: cfg.Warmup,
		Mixes:         cells,
		Deterministic: hash == rehash,
		Hash:          hash,
	}, nil
}

// Figure renders the report as a text/CSV/JSON figure: one curve per arm,
// mixes on the x-axis (indexed; the title carries the composition key).
func (r TrustReport) Figure() Figure {
	fig := Figure{
		Title:  "Trust sweep — phase-1 retention per scorer arm (x = mix index)",
		XLabel: "mix (spammers/colluders): " + r.mixKey(),
		YLabel: "max retained (%)",
	}
	for _, arm := range TrustArms {
		curve := Curve{Name: arm}
		for i, cell := range r.Mixes {
			curve.X = append(curve.X, float64(i))
			curve.Y = append(curve.Y, cell.Arms[arm].RetentionPct)
		}
		fig.Curves = append(fig.Curves, curve)
	}
	return fig
}

func (r TrustReport) mixKey() string {
	s := ""
	for i, cell := range r.Mixes {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d=%d/%d", i, cell.Spammers, cell.Colluders)
	}
	return s
}
