package experiment

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestEpsilonSweepShape(t *testing.T) {
	cfg := EpsilonConfig{
		Sweep:    Sweep{Ns: []int{400}, Un: 8, Ue: 3, Trials: 10, Seed: 21},
		Epsilons: []float64{0, 0.2, 0.4},
	}
	fig, err := EpsilonSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 1 || len(fig.Curves[0].Y) != 3 {
		t.Fatalf("unexpected figure shape: %d curves", len(fig.Curves))
	}
	ys := fig.Curves[0].Y
	// ε = 0 matches the theory (rank within the 2δe guarantee band);
	// ε = 0.4 must be clearly worse — residual errors let the filter and
	// the pivot passes evict the maximum.
	if ys[0] > 5 {
		t.Fatalf("ε=0 rank %.2f too high", ys[0])
	}
	if ys[2] <= ys[0] {
		t.Fatalf("accuracy did not degrade with ε: %.2f (ε=0) vs %.2f (ε=0.4)", ys[0], ys[2])
	}
}

func TestEpsilonSweepValidation(t *testing.T) {
	cfg := EpsilonConfig{
		Sweep:    Sweep{Ns: []int{400}, Un: 8, Ue: 3, Trials: 2, Seed: 21},
		Epsilons: []float64{0.6},
	}
	if _, err := EpsilonSweep(context.Background(), cfg); err == nil {
		t.Fatal("ε ≥ 0.5 accepted")
	}
}

func TestCascadeExperimentShape(t *testing.T) {
	// A strong price hierarchy (1, 50, 2500 — e.g. machine, crowd,
	// professional) is where the middle class pays off: it absorbs the
	// filtering the top class would otherwise be billed for.
	cfg := CascadeConfig{
		Ns:         []int{600, 1200},
		Us:         [3]int{20, 6, 2},
		PriceRatio: 50,
		Trials:     4,
		Seed:       23,
	}
	fig, err := CascadeExperiment(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Curve{}
	for _, c := range fig.Curves {
		byName[c.Name] = c
	}
	for i := range cfg.Ns {
		// The cascade's purpose: strictly cheaper than the two-level
		// algorithm when the top class is 100× the bottom one, because
		// the middle class absorbs most of the filtering the top class
		// would otherwise pay for.
		if byName["3-level cascade cost"].Y[i] >= byName["2-level (Alg 1) cost"].Y[i] {
			t.Fatalf("n=%d: cascade cost %.0f not below two-level %.0f",
				cfg.Ns[i], byName["3-level cascade cost"].Y[i], byName["2-level (Alg 1) cost"].Y[i])
		}
		// Accuracy must not collapse: both stay in the top handful.
		if byName["3-level cascade rank"].Y[i] > 6 {
			t.Fatalf("n=%d: cascade rank %.2f too high", cfg.Ns[i], byName["3-level cascade rank"].Y[i])
		}
	}
}

func TestCascadeExperimentValidation(t *testing.T) {
	if _, err := CascadeExperiment(context.Background(), CascadeConfig{
		Ns: []int{500}, Us: [3]int{5, 10, 2}, Trials: 1,
	}); err == nil {
		t.Fatal("increasing u accepted")
	}
	if _, err := CascadeExperiment(context.Background(), CascadeConfig{
		Ns: []int{50}, Us: [3]int{50, 10, 3}, Trials: 1,
	}); err == nil {
		t.Fatal("n < 4·u1 accepted")
	}
}

func TestExtensionsRender(t *testing.T) {
	fig, err := EpsilonSweep(context.Background(), EpsilonConfig{
		Sweep:    Sweep{Ns: []int{400}, Un: 6, Ue: 2, Trials: 2, Seed: 29},
		Epsilons: []float64{0, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "epsilon") {
		t.Fatal("epsilon figure missing x label")
	}
}

func TestStepsExperimentShape(t *testing.T) {
	fig, err := StepsExperiment(context.Background(), Sweep{Ns: []int{256, 1024}, Un: 8, Ue: 3, Trials: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Curve{}
	for _, c := range fig.Curves {
		byName[c.Name] = c
	}
	// Bracket: exactly ⌈log2 n⌉ steps, the most parallel of the three.
	if byName["bracket"].Y[0] != 8 || byName["bracket"].Y[1] != 10 {
		t.Fatalf("bracket steps = %v, want [8 10]", byName["bracket"].Y)
	}
	for i := range fig.Curves[0].X {
		if byName["bracket"].Y[i] >= byName["Alg 1"].Y[i] {
			t.Fatal("bracket should take fewer logical steps than Alg 1")
		}
	}
	// Alg 1's filter steps grow with n (more groups per iteration);
	// 2-MaxFind's average round count is near-constant (a larger pivot
	// sample eliminates more per pass, so it may even dip) but must stay
	// far below its 2·√n worst case.
	if byName["Alg 1"].Y[1] < byName["Alg 1"].Y[0] {
		t.Fatalf("Alg 1 steps decreased with n: %v", byName["Alg 1"].Y)
	}
	for i, n := range []float64{256, 1024} {
		if byName["2-MaxFind-expert"].Y[i] > 2*math.Sqrt(n)+1 {
			t.Fatalf("2-MaxFind steps %v exceed the 2√n bound", byName["2-MaxFind-expert"].Y)
		}
	}
}

func TestBracketAccuracyShape(t *testing.T) {
	fig, err := BracketAccuracy(context.Background(), BracketConfig{
		Sweep:       Sweep{Ns: []int{512}, Un: 10, Ue: 4, Trials: 15, Seed: 43},
		Repetitions: []int{1, 7},
		ErrorProb:   0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Curve{}
	for _, c := range fig.Curves {
		byName[c.Name] = c
	}
	if len(fig.Curves) != 5 {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	// Probabilistic model: repetition helps a lot.
	p1 := byName["bracket rep=1 (probabilistic)"].Y[0]
	p7 := byName["bracket rep=7 (probabilistic)"].Y[0]
	if p7 >= p1 {
		t.Fatalf("repetition did not help under probabilistic model: rep1=%.1f rep7=%.1f", p1, p7)
	}
	if p7 > 3 {
		t.Fatalf("rep=7 probabilistic bracket rank %.1f, want near-perfect", p7)
	}
	// Threshold model: repetition buys (statistically) nothing; both stay
	// clearly worse than Algorithm 1 on the same instances.
	t1 := byName["bracket rep=1 (threshold)"].Y[0]
	t7 := byName["bracket rep=7 (threshold)"].Y[0]
	alg1 := byName["Alg 1 (threshold)"].Y[0]
	if t7 < t1/3 {
		t.Fatalf("repetition helped too much under threshold model: rep1=%.1f rep7=%.1f", t1, t7)
	}
	if alg1 >= t7 || alg1 >= t1 {
		t.Fatalf("Alg 1 (%.1f) should beat the bracket (%.1f / %.1f) under the threshold model", alg1, t1, t7)
	}
}

func TestBracketAccuracyValidation(t *testing.T) {
	base := Sweep{Ns: []int{256}, Un: 8, Ue: 3, Trials: 1, Seed: 1}
	if _, err := BracketAccuracy(context.Background(), BracketConfig{Sweep: base, Repetitions: []int{2}}); err == nil {
		t.Fatal("even repetitions accepted")
	}
	if _, err := BracketAccuracy(context.Background(), BracketConfig{Sweep: base, ErrorProb: 0.7}); err == nil {
		t.Fatal("error probability ≥ 0.5 accepted")
	}
}
