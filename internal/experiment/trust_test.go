package experiment

import (
	"context"
	"testing"
)

func smallTrust() TrustConfig {
	return TrustConfig{
		N: 200, Trials: 6, Warmup: 200,
		Mixes: []TrustMix{{0, 0}, {0, 3}},
		Seed:  2015,
	}
}

func TestTrustSweepGraphSurvivesCliqueGoldDoesNot(t *testing.T) {
	rep, err := TrustSweep(context.Background(), smallTrust())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic || rep.Hash == "" {
		t.Fatalf("sweep not certified deterministic: %+v", rep)
	}
	if rep.Kind != "trust" || len(rep.Mixes) != 2 {
		t.Fatalf("malformed report: %+v", rep)
	}
	clean, clique := rep.Mixes[0], rep.Mixes[1]
	for _, arm := range TrustArms {
		if r := clean.Arms[arm].RetentionPct; r < 90 {
			t.Errorf("clean pool, arm %s: retention %.1f%%, want ≥ 90", arm, r)
		}
		if c := clean.Arms[arm].MeanCost; c <= 0 {
			t.Errorf("clean pool, arm %s: mean cost %v, want > 0", arm, c)
		}
	}
	// The headline: a gold-acing clique collapses the gold arm while the
	// graph arms evict the ring during warm-up and keep the maximum.
	goldR := clique.Arms["gold"].RetentionPct
	graphR := clique.Arms["graph"].RetentionPct
	hybridR := clique.Arms["hybrid"].RetentionPct
	if goldR >= graphR || goldR >= hybridR {
		t.Errorf("clique mix: gold retention %.1f%% not below graph %.1f%% / hybrid %.1f%%",
			goldR, graphR, hybridR)
	}
	if graphR < 90 || hybridR < 90 {
		t.Errorf("clique mix: graph %.1f%% / hybrid %.1f%% retention, want ≥ 90", graphR, hybridR)
	}
}

func TestTrustSweepSameSeedSameHash(t *testing.T) {
	a, err := TrustSweep(context.Background(), smallTrust())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrustSweep(context.Background(), smallTrust())
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same seed hashed %s then %s", a.Hash, b.Hash)
	}
	cfg := smallTrust()
	cfg.Seed++
	c, err := TrustSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seeds produced the same hash")
	}
}

func TestTrustSweepValidation(t *testing.T) {
	bad := smallTrust()
	bad.Mixes = []TrustMix{{5, 5}} // no honest majority in a pool of 10
	if _, err := TrustSweep(context.Background(), bad); err == nil {
		t.Fatal("mix filling the whole pool accepted")
	}
	bad = smallTrust()
	bad.PoolSize = 1
	if _, err := TrustSweep(context.Background(), bad); err == nil {
		t.Fatal("single-worker pool accepted")
	}
}

func TestTrustReportFigure(t *testing.T) {
	rep, err := TrustSweep(context.Background(), TrustConfig{
		N: 100, Trials: 2, Warmup: 60, Mixes: []TrustMix{{0, 0}}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fig := rep.Figure()
	if len(fig.Curves) != len(TrustArms) {
		t.Fatalf("figure has %d curves, want %d", len(fig.Curves), len(TrustArms))
	}
	for _, c := range fig.Curves {
		if len(c.X) != 1 || len(c.Y) != 1 {
			t.Fatalf("curve %s has %d points, want 1", c.Name, len(c.X))
		}
	}
}
