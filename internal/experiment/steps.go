package experiment

import (
	"context"
	"fmt"

	"crowdmax/internal/core"
	"crowdmax/internal/cost"
	"crowdmax/internal/parallel"
	"crowdmax/internal/stats"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// StepsExperiment measures the *time* complexity of the approaches under
// the paper's execution model (Section 3, following Venetis et al.): the
// number of logical steps — batch rounds submitted to the platform — as a
// function of n. Comparisons within a tournament round are independent and
// run in one batch, so logical steps capture wall-clock time when the
// worker pool is large.
//
// Expected shapes: the single-elimination bracket takes exactly ⌈log2 n⌉
// steps; Algorithm 1's filter takes one step per group per iteration (the
// groups of one iteration could be merged into one batch — we count the
// conservative per-group figure); 2-MaxFind takes two steps per pivot
// round.
func StepsExperiment(ctx context.Context, s Sweep) (Figure, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Title:  fmt.Sprintf("Logical steps (un=%d, ue=%d)", s.Un, s.Ue),
		XLabel: "n",
		YLabel: "logical steps",
	}
	type series struct {
		name string
		ys   []float64
	}
	curves := []series{
		{name: "Alg 1"}, {name: "2-MaxFind-expert"}, {name: "bracket"},
	}
	// Cells are (n, trial) pairs; each measures all three approaches.
	steps := make([][3]float64, len(s.Ns)*s.Trials)
	if err := parallel.For(s.Workers, len(steps), func(c int) error {
		ni, trial := c/s.Trials, c%s.Trials
		cal, r, err := s.instance(s.Ns[ni], trial)
		if err != nil {
			return err
		}
		items := cal.Set.Items()

		l := cost.NewLedger()
		nw := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r.Child("a")}, R: r.Child("a")}
		ew := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: r.Child("b")}, R: r.Child("b")}
		no := tournament.NewOracle(nw, worker.Naive, l, nil)
		eo := tournament.NewOracle(ew, worker.Expert, l, nil)
		if _, err := core.FindMax(ctx, items, no, eo, core.FindMaxOptions{Un: s.Un}); err != nil {
			return err
		}
		steps[c][0] = float64(l.Steps())

		l2 := cost.NewLedger()
		ew2 := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: r.Child("c")}, R: r.Child("c")}
		eo2 := tournament.NewOracle(ew2, worker.Expert, l2, nil)
		if _, err := core.TwoMaxFind(ctx, items, eo2); err != nil {
			return err
		}
		steps[c][1] = float64(l2.Steps())

		l3 := cost.NewLedger()
		nw3 := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r.Child("d")}, R: r.Child("d")}
		no3 := tournament.NewOracle(nw3, worker.Naive, l3, nil)
		if _, err := core.TournamentMax(ctx, items, no3, core.BracketOptions{}); err != nil {
			return err
		}
		steps[c][2] = float64(l3.Steps())
		return nil
	}); err != nil {
		return Figure{}, err
	}
	for ni := range s.Ns {
		sums := make([]stats.Summary, 3)
		for trial := 0; trial < s.Trials; trial++ {
			cell := steps[ni*s.Trials+trial]
			for i := range sums {
				sums[i].Add(cell[i])
			}
		}
		for i := range curves {
			curves[i].ys = append(curves[i].ys, sums[i].Mean())
		}
	}
	xs := nsToFloats(s.Ns)
	for _, c := range curves {
		fig.Curves = append(fig.Curves, Curve{Name: c.name, X: xs, Y: c.ys})
	}
	return fig, nil
}
