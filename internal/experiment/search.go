package experiment

import (
	"context"
	"fmt"
	"io"

	"crowdmax/internal/core"
	"crowdmax/internal/dataset"
	"crowdmax/internal/obs"
	"crowdmax/internal/parallel"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// SearchConfig configures the Section 5.3 search-result evaluation
// reproduction.
type SearchConfig struct {
	// N is the number of results per query (paper: 50, uniform over the
	// top-100 ranks).
	N int
	// Uns are the un(50) values tried (paper: 6, 8, 10).
	Uns []int
	// NaiveRuns is the number of naïve-only 2-MaxFind runs per query
	// (paper: 2 per query, 4 total).
	NaiveRuns int
	// DeltaE is the expert threshold; the clear-best gap of the dataset
	// (0.05) exceeds it, so experts always identify the best result.
	DeltaE float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the goroutines fanning queries out; 0 selects
	// runtime.GOMAXPROCS(0). Parallelism is per query — a query's crowd
	// world draws latent pair parameters in encounter order, so the runs
	// within a query stay sequential — and output is identical for every
	// value.
	Workers int
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.N == 0 {
		c.N = 50
	}
	if len(c.Uns) == 0 {
		c.Uns = []int{6, 8, 10}
	}
	if c.NaiveRuns == 0 {
		c.NaiveRuns = 2
	}
	if c.DeltaE == 0 {
		c.DeltaE = 0.02
	}
	return c
}

// SearchRow is one (query, un) cell of the two-phase experiment.
type SearchRow struct {
	Query       dataset.SearchQuery
	Un          int
	Promoted    bool // the best result reached the second round
	ExpertFound bool // the experts then identified it
	Candidates  int
}

// NaiveRun is one naïve-only 2-MaxFind run on a query.
type NaiveRun struct {
	Query dataset.SearchQuery
	Run   int
	Found bool // the run returned the true best result
}

// SearchResult is the full Section 5.3 search-evaluation reproduction.
type SearchResult struct {
	Rows      []SearchRow
	NaiveOnly []NaiveRun
}

// WriteText renders both halves of the experiment.
func (s SearchResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Section 5.3 — evaluation of search results"); err != nil {
		return err
	}
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			string(r.Query), fmt.Sprintf("%d", r.Un),
			fmt.Sprintf("%v", r.Promoted), fmt.Sprintf("%v", r.ExpertFound),
			fmt.Sprintf("%d", r.Candidates),
		}
	}
	if err := WriteTable(w, []string{"query", "un(50)", "best promoted", "experts found best", "|S|"}, rows); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\n# naive-only 2-MaxFind runs"); err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range s.NaiveOnly {
		rows = append(rows, []string{string(r.Query), fmt.Sprintf("%d", r.Run), fmt.Sprintf("%v", r.Found)})
	}
	return WriteTable(w, []string{"query", "run", "found best"}, rows)
}

// SearchEval runs the Section 5.3 experiment: for each query, the two-phase
// algorithm with crowd workers in phase 1 and real (threshold-model) experts
// in phase 2, for each un; then naïve-only 2-MaxFind runs. The expected
// shape: the best result is always promoted and found by the experts, while
// the naïve-only approach rarely finds it.
func SearchEval(ctx context.Context, cfg SearchConfig) (SearchResult, error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed).Child("search")
	queries := []dataset.SearchQuery{dataset.QueryAsymmetricTSP, dataset.QuerySteinerTree}

	// Queries are independent units; each owns its crowd world.
	perQuery := make([]SearchResult, len(queries))
	if err := parallel.For(cfg.Workers, len(queries), func(qi int) error {
		query := queries[qi]
		qr := root.ChildN("query", qi)
		set, err := dataset.SearchResults(query, cfg.N, 0.05, qr.Child("data"))
		if err != nil {
			return err
		}
		world := worker.NewWorld(worker.PlateauRegime{Threshold: 0.2, Epsilon: 0.02}, qr.Child("world"))
		var out SearchResult

		for _, un := range cfg.Uns {
			r := qr.ChildN("un", un)
			sc := obs.Trial(trialLabel("search", qi, un), r.Seed())
			naive := tournament.NewOracle(world.Worker(r.Child("naive")), worker.Naive, nil, tournament.NewMemo()).WithObs(sc)
			candidates, err := core.Filter(ctx, set.Items(), naive, core.FilterOptions{Un: un})
			if err != nil {
				return err
			}
			promoted := false
			for _, c := range candidates {
				if c.ID == set.Max().ID {
					promoted = true
				}
			}
			ew := &worker.Threshold{Delta: cfg.DeltaE, Tie: worker.RandomTie{R: r.Child("exp")}, R: r.Child("exp")}
			eo := tournament.NewOracle(ew, worker.Expert, nil, tournament.NewMemo()).WithObs(sc)
			best, err := core.RunPhase2(ctx, candidates, eo, core.Phase2TwoMaxFind, core.RandomizedOptions{})
			if err != nil {
				return err
			}
			out.Rows = append(out.Rows, SearchRow{
				Query:       query,
				Un:          un,
				Promoted:    promoted,
				ExpertFound: best.ID == set.Max().ID,
				Candidates:  len(candidates),
			})
		}

		for run := 0; run < cfg.NaiveRuns; run++ {
			r := qr.ChildN("naiveonly", run)
			naive := tournament.NewOracle(world.Worker(r), worker.Naive, nil, tournament.NewMemo()).
				WithObs(obs.Trial(trialLabel("search-naive", qi, run), r.Seed()))
			best, err := core.TwoMaxFind(ctx, set.Items(), naive)
			if err != nil {
				return err
			}
			out.NaiveOnly = append(out.NaiveOnly, NaiveRun{
				Query: query,
				Run:   run + 1,
				Found: best.ID == set.Max().ID,
			})
		}
		perQuery[qi] = out
		return nil
	}); err != nil {
		return SearchResult{}, err
	}
	var out SearchResult
	for _, q := range perQuery {
		out.Rows = append(out.Rows, q.Rows...)
		out.NaiveOnly = append(out.NaiveOnly, q.NaiveOnly...)
	}
	return out, nil
}
