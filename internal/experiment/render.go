package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Curve is one series of a figure.
type Curve struct {
	// Name is the legend label.
	Name string `json:"name"`
	// X and Y are the data points, parallel slices.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Err holds per-point standard errors (optional; nil when the curve
	// is deterministic, e.g. a theory bound).
	Err []float64 `json:"err,omitempty"`
}

// Figure is a reproduced paper figure: a set of curves over a shared x-axis.
type Figure struct {
	// Title names the figure after the paper (e.g. "Figure 3(a)").
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Curves are the series, in legend order.
	Curves []Curve
}

// WriteText renders the figure as an aligned text table: one row per x
// value, one column per curve, matching the series the paper plots.
func (f Figure) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s vs %s\n", f.Title, f.YLabel, f.XLabel); err != nil {
		return err
	}
	headers := []string{f.XLabel}
	for _, c := range f.Curves {
		headers = append(headers, c.Name)
	}
	var rows [][]string
	for i := 0; i < f.pointCount(); i++ {
		row := []string{formatNum(f.xAt(i))}
		for _, c := range f.Curves {
			if i < len(c.Y) {
				cell := formatNum(c.Y[i])
				if c.Err != nil && i < len(c.Err) && c.Err[i] > 0 {
					cell += fmt.Sprintf("±%s", formatNum(c.Err[i]))
				}
				row = append(row, cell)
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return WriteTable(w, headers, rows)
}

// WriteCSV renders the figure as CSV with the same layout as WriteText.
func (f Figure) WriteCSV(w io.Writer) error {
	cols := []string{csvEscape(f.XLabel)}
	for _, c := range f.Curves {
		cols = append(cols, csvEscape(c.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < f.pointCount(); i++ {
		row := []string{fmt.Sprintf("%g", f.xAt(i))}
		for _, c := range f.Curves {
			if i < len(c.Y) {
				row = append(row, fmt.Sprintf("%g", c.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the figure as indented JSON, for downstream plotting
// tools.
func (f Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(figureJSON{
		Title:  f.Title,
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		Curves: f.Curves,
	})
}

type figureJSON struct {
	Title  string  `json:"title"`
	XLabel string  `json:"xLabel"`
	YLabel string  `json:"yLabel"`
	Curves []Curve `json:"curves"`
}

func (f Figure) pointCount() int {
	n := 0
	for _, c := range f.Curves {
		if len(c.X) > n {
			n = len(c.X)
		}
	}
	return n
}

func (f Figure) xAt(i int) float64 {
	for _, c := range f.Curves {
		if i < len(c.X) {
			return c.X[i]
		}
	}
	return 0
}

// WriteTable renders an aligned text table.
func WriteTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
