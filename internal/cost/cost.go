// Package cost implements the paper's monetary cost model (Section 3.4).
//
// Workers are paid per comparison; naïve and expert comparisons have
// different unit prices cn and ce with ce ≫ cn. An algorithm performing
// xn naïve and xe expert comparisons costs
//
//	C(n) = xe·ce + xn·cn.
//
// The ledger also tracks logical steps — the batch rounds of Venetis et
// al.'s execution model (Section 3) that the paper treats as the time
// complexity measure — and memoization hits, so the Appendix A
// optimizations can be quantified.
package cost

import (
	"fmt"
	"strings"

	"crowdmax/internal/worker"
)

// Prices holds per-comparison prices by worker class.
type Prices struct {
	// Naive is cn, the price of one naïve comparison.
	Naive float64
	// Expert is ce, the price of one expert comparison; the paper's
	// regime of interest is Expert ≫ Naive.
	Expert float64
}

// Unit returns the price of one comparison by the given class. Classes
// beyond Expert (the multi-class extension) are priced like experts.
func (p Prices) Unit(c worker.Class) float64 {
	if c == worker.Naive {
		return p.Naive
	}
	return p.Expert
}

// Ledger accumulates the resource consumption of an algorithm run:
// comparisons by worker class, memoization hits (answers served from the
// comparison table of Appendix A at zero cost), and logical steps (batches
// submitted to the platform). The zero value is an empty ledger.
type Ledger struct {
	comparisons map[worker.Class]int64
	memoHits    map[worker.Class]int64
	steps       int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		comparisons: make(map[worker.Class]int64),
		memoHits:    make(map[worker.Class]int64),
	}
}

func (l *Ledger) init() {
	if l.comparisons == nil {
		l.comparisons = make(map[worker.Class]int64)
		l.memoHits = make(map[worker.Class]int64)
	}
}

// Charge records one paid comparison by the given class.
func (l *Ledger) Charge(c worker.Class) {
	l.init()
	l.comparisons[c]++
}

// MemoHit records a comparison answered from the memo table (free).
func (l *Ledger) MemoHit(c worker.Class) {
	l.init()
	l.memoHits[c]++
}

// Step records one logical step (one batch round).
func (l *Ledger) Step() { l.steps++ }

// Comparisons returns the number of paid comparisons by class.
func (l *Ledger) Comparisons(c worker.Class) int64 {
	if l.comparisons == nil {
		return 0
	}
	return l.comparisons[c]
}

// MemoHits returns the number of memoized (free) comparisons by class.
func (l *Ledger) MemoHits(c worker.Class) int64 {
	if l.memoHits == nil {
		return 0
	}
	return l.memoHits[c]
}

// Naive returns xn, the paid naïve comparisons.
func (l *Ledger) Naive() int64 { return l.Comparisons(worker.Naive) }

// Expert returns xe, the paid comparisons of every non-naïve class.
func (l *Ledger) Expert() int64 {
	if l.comparisons == nil {
		return 0
	}
	var n int64
	for c, v := range l.comparisons {
		if c != worker.Naive {
			n += v
		}
	}
	return n
}

// Steps returns the number of logical steps recorded.
func (l *Ledger) Steps() int64 { return l.steps }

// Cost returns C(n) = Σ_class comparisons(class)·price(class).
func (l *Ledger) Cost(p Prices) float64 {
	if l.comparisons == nil {
		return 0
	}
	var c float64
	for cl, n := range l.comparisons {
		c += float64(n) * p.Unit(cl)
	}
	return c
}

// Add accumulates another ledger into this one (used to merge per-phase
// ledgers into a run total).
func (l *Ledger) Add(o *Ledger) {
	l.init()
	if o == nil || o.comparisons == nil {
		if o != nil {
			l.steps += o.steps
		}
		return
	}
	for c, n := range o.comparisons {
		l.comparisons[c] += n
	}
	for c, n := range o.memoHits {
		l.memoHits[c] += n
	}
	l.steps += o.steps
}

// Reset empties the ledger.
func (l *Ledger) Reset() {
	l.comparisons = make(map[worker.Class]int64)
	l.memoHits = make(map[worker.Class]int64)
	l.steps = 0
}

// String renders a one-line summary.
func (l *Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "naive=%d expert=%d steps=%d", l.Naive(), l.Expert(), l.Steps())
	if h := l.MemoHits(worker.Naive) + l.MemoHits(worker.Expert); h > 0 {
		fmt.Fprintf(&b, " memo=%d", h)
	}
	return b.String()
}
