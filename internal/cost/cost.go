// Package cost implements the paper's monetary cost model (Section 3.4).
//
// Workers are paid per comparison; naïve and expert comparisons have
// different unit prices cn and ce with ce ≫ cn. An algorithm performing
// xn naïve and xe expert comparisons costs
//
//	C(n) = xe·ce + xn·cn.
//
// The ledger also tracks logical steps — the batch rounds of Venetis et
// al.'s execution model (Section 3) that the paper treats as the time
// complexity measure — and memoization hits, so the Appendix A
// optimizations can be quantified.
package cost

import (
	"fmt"
	"strings"
	"sync/atomic"

	"crowdmax/internal/worker"
)

// Prices holds per-comparison prices by worker class.
type Prices struct {
	// Naive is cn, the price of one naïve comparison.
	Naive float64
	// Expert is ce, the price of one expert comparison; the paper's
	// regime of interest is Expert ≫ Naive.
	Expert float64
}

// Unit returns the price of one comparison by the given class. Classes
// beyond Expert (the multi-class extension) are priced like experts.
func (p Prices) Unit(c worker.Class) float64 {
	if c == worker.Naive {
		return p.Naive
	}
	return p.Expert
}

// MaxClasses is the number of worker classes a Ledger can bill. The paper
// uses two; the multi-class cascade extension uses three. Fixed-width
// per-class counters are what make the ledger lock-free.
const MaxClasses = 8

// Ledger accumulates the resource consumption of an algorithm run:
// comparisons by worker class, memoization hits (answers served from the
// comparison table of Appendix A at zero cost), and logical steps (batches
// submitted to the platform). The zero value is an empty ledger.
//
// Ledger is safe for concurrent use: every counter is a fixed atomic, so a
// ledger shared by the goroutines of a parallel batch evaluation (or by
// concurrent algorithm phases) needs no external locking. Charging is a
// single atomic add — cheaper than the map update it replaces even in
// sequential runs, which matters because it sits on the hot path of every
// comparison. Readers see momentarily inconsistent cross-counter snapshots
// while writers are active; quiesce (e.g. join the pool) before reporting.
type Ledger struct {
	comparisons [MaxClasses]atomic.Int64
	memoHits    [MaxClasses]atomic.Int64
	steps       atomic.Int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// classIndex bounds-checks a class against the ledger's fixed counters.
func classIndex(c worker.Class) int {
	if c < 0 || int(c) >= MaxClasses {
		panic(fmt.Sprintf("cost: worker class %d outside [0, %d)", int(c), MaxClasses))
	}
	return int(c)
}

// Charge records one paid comparison by the given class.
func (l *Ledger) Charge(c worker.Class) {
	l.comparisons[classIndex(c)].Add(1)
}

// ChargeN records n paid comparisons by the given class in one atomic add —
// the per-batch amortization the batch dispatch path relies on.
func (l *Ledger) ChargeN(c worker.Class, n int64) {
	l.comparisons[classIndex(c)].Add(n)
}

// MemoHit records a comparison answered from the memo table (free).
func (l *Ledger) MemoHit(c worker.Class) {
	l.memoHits[classIndex(c)].Add(1)
}

// MemoHitN records n memoized comparisons in one atomic add; see ChargeN.
func (l *Ledger) MemoHitN(c worker.Class, n int64) {
	l.memoHits[classIndex(c)].Add(n)
}

// Step records one logical step (one batch round).
func (l *Ledger) Step() { l.steps.Add(1) }

// Comparisons returns the number of paid comparisons by class.
func (l *Ledger) Comparisons(c worker.Class) int64 {
	return l.comparisons[classIndex(c)].Load()
}

// MemoHits returns the number of memoized (free) comparisons by class.
func (l *Ledger) MemoHits(c worker.Class) int64 {
	return l.memoHits[classIndex(c)].Load()
}

// Naive returns xn, the paid naïve comparisons.
func (l *Ledger) Naive() int64 { return l.Comparisons(worker.Naive) }

// Expert returns xe, the paid comparisons of every non-naïve class.
func (l *Ledger) Expert() int64 {
	var n int64
	for i := 1; i < MaxClasses; i++ {
		n += l.comparisons[i].Load()
	}
	return n
}

// Steps returns the number of logical steps recorded.
func (l *Ledger) Steps() int64 { return l.steps.Load() }

// Cost returns C(n) = Σ_class comparisons(class)·price(class).
func (l *Ledger) Cost(p Prices) float64 {
	var c float64
	for i := 0; i < MaxClasses; i++ {
		if n := l.comparisons[i].Load(); n != 0 {
			c += float64(n) * p.Unit(worker.Class(i))
		}
	}
	return c
}

// Snapshot is a point-in-time copy of a ledger's counters. Differencing two
// snapshots taken at phase boundaries yields the phase's resource
// consumption — the "ledger cost delta" the observability layer attributes
// to each algorithm phase.
type Snapshot struct {
	// Comparisons and MemoHits are the per-class counter values.
	Comparisons [MaxClasses]int64
	MemoHits    [MaxClasses]int64
	// Steps is the logical-step counter value.
	Steps int64
}

// Snapshot copies the ledger's counters. Safe on a nil ledger (zero
// snapshot) so callers can snapshot an un-billed oracle unconditionally.
// Concurrent writers make the copy momentarily inconsistent across
// counters; quiesce before snapshotting when exactness matters.
func (l *Ledger) Snapshot() Snapshot {
	var s Snapshot
	if l == nil {
		return s
	}
	for i := 0; i < MaxClasses; i++ {
		s.Comparisons[i] = l.comparisons[i].Load()
		s.MemoHits[i] = l.memoHits[i].Load()
	}
	s.Steps = l.steps.Load()
	return s
}

// Sub returns the counter-wise difference s − o: the resources consumed
// between snapshot o and snapshot s.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	var d Snapshot
	for i := 0; i < MaxClasses; i++ {
		d.Comparisons[i] = s.Comparisons[i] - o.Comparisons[i]
		d.MemoHits[i] = s.MemoHits[i] - o.MemoHits[i]
	}
	d.Steps = s.Steps - o.Steps
	return d
}

// TotalComparisons sums the paid comparisons across classes.
func (s Snapshot) TotalComparisons() int64 {
	var n int64
	for _, c := range s.Comparisons {
		n += c
	}
	return n
}

// TotalMemoHits sums the memoized (free) comparisons across classes.
func (s Snapshot) TotalMemoHits() int64 {
	var n int64
	for _, c := range s.MemoHits {
		n += c
	}
	return n
}

// Add accumulates another ledger into this one (used to merge per-phase
// ledgers into a run total).
func (l *Ledger) Add(o *Ledger) {
	if o == nil {
		return
	}
	for i := 0; i < MaxClasses; i++ {
		if n := o.comparisons[i].Load(); n != 0 {
			l.comparisons[i].Add(n)
		}
		if n := o.memoHits[i].Load(); n != 0 {
			l.memoHits[i].Add(n)
		}
	}
	l.steps.Add(o.steps.Load())
}

// AddSnapshot adds a snapshot's counters into the ledger — how a resumed
// session restores the paid totals of the run segment before the checkpoint.
func (l *Ledger) AddSnapshot(s Snapshot) {
	for i := 0; i < MaxClasses; i++ {
		if s.Comparisons[i] != 0 {
			l.comparisons[i].Add(s.Comparisons[i])
		}
		if s.MemoHits[i] != 0 {
			l.memoHits[i].Add(s.MemoHits[i])
		}
	}
	if s.Steps != 0 {
		l.steps.Add(s.Steps)
	}
}

// Reset empties the ledger. Not atomic with respect to concurrent writers;
// reset only between runs.
func (l *Ledger) Reset() {
	for i := 0; i < MaxClasses; i++ {
		l.comparisons[i].Store(0)
		l.memoHits[i].Store(0)
	}
	l.steps.Store(0)
}

// String renders a one-line summary.
func (l *Ledger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "naive=%d expert=%d steps=%d", l.Naive(), l.Expert(), l.Steps())
	if h := l.MemoHits(worker.Naive) + l.MemoHits(worker.Expert); h > 0 {
		fmt.Fprintf(&b, " memo=%d", h)
	}
	return b.String()
}
