package cost

import (
	"strings"
	"testing"
	"testing/quick"

	"crowdmax/internal/worker"
)

func TestZeroValueLedgerUsable(t *testing.T) {
	var l Ledger
	if l.Naive() != 0 || l.Expert() != 0 || l.Steps() != 0 {
		t.Fatal("zero ledger not empty")
	}
	if l.Cost(Prices{Naive: 1, Expert: 10}) != 0 {
		t.Fatal("zero ledger has nonzero cost")
	}
	l.Charge(worker.Naive) // must not panic
	if l.Naive() != 1 {
		t.Fatal("charge on zero-value ledger lost")
	}
}

func TestChargeAndCost(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 7; i++ {
		l.Charge(worker.Naive)
	}
	for i := 0; i < 3; i++ {
		l.Charge(worker.Expert)
	}
	if l.Naive() != 7 || l.Expert() != 3 {
		t.Fatalf("counts = %d/%d", l.Naive(), l.Expert())
	}
	// C(n) = xe·ce + xn·cn = 3·50 + 7·1 = 157.
	if got := l.Cost(Prices{Naive: 1, Expert: 50}); got != 157 {
		t.Fatalf("Cost = %g, want 157", got)
	}
}

func TestCostLinearity(t *testing.T) {
	f := func(xn, xe uint16, cn, ce uint16) bool {
		l := NewLedger()
		for i := 0; i < int(xn)%500; i++ {
			l.Charge(worker.Naive)
		}
		for i := 0; i < int(xe)%500; i++ {
			l.Charge(worker.Expert)
		}
		p := Prices{Naive: float64(cn), Expert: float64(ce)}
		want := float64(l.Naive())*float64(cn) + float64(l.Expert())*float64(ce)
		return l.Cost(p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiClassBilledAsExpert(t *testing.T) {
	l := NewLedger()
	l.Charge(worker.Class(2)) // third expertise level
	if l.Expert() != 1 {
		t.Fatal("extended classes should count as expert comparisons")
	}
	if got := l.Cost(Prices{Naive: 1, Expert: 20}); got != 20 {
		t.Fatalf("extended class cost = %g, want 20", got)
	}
}

func TestMemoHitsAreFree(t *testing.T) {
	l := NewLedger()
	l.Charge(worker.Expert)
	l.MemoHit(worker.Expert)
	l.MemoHit(worker.Expert)
	if l.Expert() != 1 {
		t.Fatal("memo hits were billed")
	}
	if l.MemoHits(worker.Expert) != 2 {
		t.Fatalf("memo hits = %d", l.MemoHits(worker.Expert))
	}
	if got := l.Cost(Prices{Naive: 1, Expert: 10}); got != 10 {
		t.Fatalf("Cost with memo hits = %g, want 10", got)
	}
}

func TestSteps(t *testing.T) {
	l := NewLedger()
	l.Step()
	l.Step()
	if l.Steps() != 2 {
		t.Fatalf("steps = %d", l.Steps())
	}
}

func TestAdd(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	a.Charge(worker.Naive)
	a.Step()
	b.Charge(worker.Expert)
	b.Charge(worker.Expert)
	b.MemoHit(worker.Naive)
	b.Step()
	a.Add(b)
	if a.Naive() != 1 || a.Expert() != 2 || a.Steps() != 2 || a.MemoHits(worker.Naive) != 1 {
		t.Fatalf("merged ledger wrong: %s", a)
	}
	// Adding nil or empty must be safe.
	a.Add(nil)
	var empty Ledger
	a.Add(&empty)
	if a.Naive() != 1 {
		t.Fatal("Add(nil/empty) corrupted ledger")
	}
}

func TestReset(t *testing.T) {
	l := NewLedger()
	l.Charge(worker.Naive)
	l.Step()
	l.Reset()
	if l.Naive() != 0 || l.Steps() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestPricesUnit(t *testing.T) {
	p := Prices{Naive: 2, Expert: 30}
	if p.Unit(worker.Naive) != 2 || p.Unit(worker.Expert) != 30 || p.Unit(worker.Class(3)) != 30 {
		t.Fatal("Unit pricing wrong")
	}
}

func TestString(t *testing.T) {
	l := NewLedger()
	l.Charge(worker.Naive)
	l.MemoHit(worker.Expert)
	s := l.String()
	if !strings.Contains(s, "naive=1") || !strings.Contains(s, "memo=1") {
		t.Fatalf("String() = %q", s)
	}
}
