// Package item defines the universe of elements over which the max-finding
// algorithms operate.
//
// Following Section 3 of the paper, an element e has a real value v(e); the
// distance between two elements is d(u, v) = |v(u) − v(v)|. The maximum
// element of a set L is any element attaining max v(e) over L. The quantity
// un(n) = |{e : d(M, e) ≤ δ}| counts the elements indistinguishable from the
// maximum at discernment threshold δ (the maximum itself included, since
// d(M, M) = 0).
package item

import (
	"fmt"
	"sort"
)

// Item is one element of the universe. Value is the ground-truth value v(e)
// that human workers can only approximately compare; Label is an optional
// human-readable description (a car model, an image name, a search result).
type Item struct {
	// ID identifies the item within its Set. IDs are dense indices
	// 0..n−1 assigned by NewSet and used to key memoization tables.
	ID int
	// Value is v(e), the ground-truth value of the element.
	Value float64
	// Label is an optional description shown in reports.
	Label string
}

// Distance returns d(a, b) = |v(a) − v(b)|.
func Distance(a, b Item) float64 {
	d := a.Value - b.Value
	if d < 0 {
		d = -d
	}
	return d
}

// Set is an immutable collection of items with precomputed order statistics.
// The zero value is an empty set; use NewSet to build one.
type Set struct {
	items  []Item
	byrank []int // byrank[r] = index into items of the rank-(r+1) item
	rank   []int // rank[id] = true rank of item id (1 = maximum)
}

// NewSet builds a Set from values. Items receive IDs 0..len(values)−1 and
// empty labels.
func NewSet(values []float64) *Set {
	items := make([]Item, len(values))
	for i, v := range values {
		items[i] = Item{ID: i, Value: v}
	}
	return NewSetItems(items)
}

// NewSetItems builds a Set from explicit items, reassigning IDs to the dense
// range 0..n−1 (labels and values are preserved).
func NewSetItems(items []Item) *Set {
	s := &Set{items: make([]Item, len(items))}
	copy(s.items, items)
	for i := range s.items {
		s.items[i].ID = i
	}
	s.byrank = make([]int, len(s.items))
	for i := range s.byrank {
		s.byrank[i] = i
	}
	sort.SliceStable(s.byrank, func(a, b int) bool {
		return s.items[s.byrank[a]].Value > s.items[s.byrank[b]].Value
	})
	s.rank = make([]int, len(s.items))
	for r, idx := range s.byrank {
		s.rank[idx] = r + 1
	}
	return s
}

// Len returns the number of items in the set.
func (s *Set) Len() int { return len(s.items) }

// Item returns the item with the given ID.
func (s *Set) Item(id int) Item { return s.items[id] }

// Items returns a copy of all items in ID order.
func (s *Set) Items() []Item {
	out := make([]Item, len(s.items))
	copy(out, s.items)
	return out
}

// IDs returns the dense list of all item IDs, 0..n−1.
func (s *Set) IDs() []int {
	ids := make([]int, len(s.items))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Max returns the maximum element M of the set. It panics on an empty set.
func (s *Set) Max() Item {
	if len(s.items) == 0 {
		panic("item: Max of empty set")
	}
	return s.items[s.byrank[0]]
}

// ByRank returns the item of the given true rank (1 = maximum). Ties are
// broken by insertion order, consistently with Rank.
func (s *Set) ByRank(r int) Item {
	if r < 1 || r > len(s.items) {
		panic(fmt.Sprintf("item: rank %d out of range [1,%d]", r, len(s.items)))
	}
	return s.items[s.byrank[r-1]]
}

// Rank returns the true rank of the item with the given ID (1 = maximum).
// This is the accuracy measure of Section 5.1: "If the rank is 1 then we
// have perfect accuracy, and the higher is the rank the lower the accuracy."
func (s *Set) Rank(id int) int { return s.rank[id] }

// UCount returns u(δ) = |{e ∈ S : d(M, e) ≤ δ}|, the number of elements
// indistinguishable from the maximum at threshold δ, including the maximum
// itself. For naïve workers this is un(n); for experts, ue(n).
func (s *Set) UCount(delta float64) int {
	if len(s.items) == 0 {
		return 0
	}
	m := s.Max()
	count := 0
	for _, it := range s.items {
		if Distance(m, it) <= delta {
			count++
		}
	}
	return count
}

// DeltaForU returns a threshold δ such that UCount(δ) == u, or an error if
// no such threshold exists (which happens only when the u-th and (u+1)-th
// closest elements to the maximum are at identical distance). For u == Len()
// it returns the distance to the farthest element.
//
// This is how the experiments of Section 5 pin un(n) and ue(n) to exact
// target values as n varies: the instance is generated first, then δn and δe
// are calibrated against it.
func (s *Set) DeltaForU(u int) (float64, error) {
	n := len(s.items)
	if u < 1 || u > n {
		return 0, fmt.Errorf("item: target u=%d out of range [1,%d]", u, n)
	}
	m := s.Max()
	dists := make([]float64, n)
	for i, it := range s.items {
		dists[i] = Distance(m, it)
	}
	sort.Float64s(dists)
	// dists[0] == 0 is the maximum itself. UCount(δ) == u requires
	// dists[u−1] ≤ δ and (if u < n) dists[u] > δ.
	if u == n {
		return dists[n-1], nil
	}
	if dists[u] <= dists[u-1] {
		return 0, fmt.Errorf("item: no threshold separates u=%d (ties at distance %g)", u, dists[u-1])
	}
	return dists[u-1] + (dists[u]-dists[u-1])/2, nil
}

// Subset returns the items with the given IDs, in the given order.
func (s *Set) Subset(ids []int) []Item {
	out := make([]Item, len(ids))
	for i, id := range ids {
		out[i] = s.items[id]
	}
	return out
}
