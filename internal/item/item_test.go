package item

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	tests := []struct {
		a, b float64
		want float64
	}{
		{0, 0, 0},
		{1, 3, 2},
		{3, 1, 2},
		{-2, 2, 4},
		{-5, -1, 4},
		{1.5, 1.5, 0},
	}
	for _, tc := range tests {
		got := Distance(Item{Value: tc.a}, Item{Value: tc.b})
		if got != tc.want {
			t.Errorf("Distance(%g, %g) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x, y := Item{Value: a}, Item{Value: b}
		return Distance(x, y) == Distance(y, x) && Distance(x, y) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSetAssignsDenseIDs(t *testing.T) {
	s := NewSet([]float64{5, 2, 9})
	for i := 0; i < s.Len(); i++ {
		if s.Item(i).ID != i {
			t.Errorf("Item(%d).ID = %d", i, s.Item(i).ID)
		}
	}
}

func TestNewSetItemsReassignsIDs(t *testing.T) {
	s := NewSetItems([]Item{{ID: 42, Value: 1, Label: "a"}, {ID: 42, Value: 2, Label: "b"}})
	if s.Item(0).ID != 0 || s.Item(1).ID != 1 {
		t.Fatalf("IDs not reassigned: %d, %d", s.Item(0).ID, s.Item(1).ID)
	}
	if s.Item(0).Label != "a" || s.Item(1).Label != "b" {
		t.Fatal("labels not preserved")
	}
}

func TestMax(t *testing.T) {
	s := NewSet([]float64{3, 7, 1, 7, 2})
	m := s.Max()
	if m.Value != 7 {
		t.Fatalf("Max().Value = %g, want 7", m.Value)
	}
	if m.ID != 1 {
		t.Fatalf("Max() tie should resolve to first occurrence, got ID %d", m.ID)
	}
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max on empty set did not panic")
		}
	}()
	NewSet(nil).Max()
}

func TestRank(t *testing.T) {
	s := NewSet([]float64{10, 30, 20})
	wantRanks := map[int]int{0: 3, 1: 1, 2: 2}
	for id, want := range wantRanks {
		if got := s.Rank(id); got != want {
			t.Errorf("Rank(%d) = %d, want %d", id, got, want)
		}
	}
}

func TestRankTiesStable(t *testing.T) {
	s := NewSet([]float64{5, 5, 5})
	for id := 0; id < 3; id++ {
		if got := s.Rank(id); got != id+1 {
			t.Errorf("Rank(%d) = %d, want %d (stable tie order)", id, got, id+1)
		}
	}
}

func TestByRankRoundTrip(t *testing.T) {
	s := NewSet([]float64{0.3, 0.9, 0.1, 0.5})
	for r := 1; r <= s.Len(); r++ {
		if got := s.Rank(s.ByRank(r).ID); got != r {
			t.Errorf("Rank(ByRank(%d)) = %d", r, got)
		}
	}
}

func TestByRankOutOfRangePanics(t *testing.T) {
	s := NewSet([]float64{1, 2})
	for _, r := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ByRank(%d) did not panic", r)
				}
			}()
			s.ByRank(r)
		}()
	}
}

func TestByRankIsSortedDescending(t *testing.T) {
	f := func(values []float64) bool {
		clean := values[:0]
		for _, v := range values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := NewSet(clean)
		for r := 2; r <= s.Len(); r++ {
			if s.ByRank(r).Value > s.ByRank(r-1).Value {
				return false
			}
		}
		return s.ByRank(1).Value == s.Max().Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUCount(t *testing.T) {
	// Max = 10; distances: 0, 1, 3, 6, 10.
	s := NewSet([]float64{10, 9, 7, 4, 0})
	tests := []struct {
		delta float64
		want  int
	}{
		{0, 1},
		{0.5, 1},
		{1, 2},
		{3, 3},
		{5.9, 3},
		{6, 4},
		{10, 5},
		{100, 5},
	}
	for _, tc := range tests {
		if got := s.UCount(tc.delta); got != tc.want {
			t.Errorf("UCount(%g) = %d, want %d", tc.delta, got, tc.want)
		}
	}
}

func TestUCountEmpty(t *testing.T) {
	if got := NewSet(nil).UCount(1); got != 0 {
		t.Fatalf("UCount on empty set = %d", got)
	}
}

func TestDeltaForU(t *testing.T) {
	s := NewSet([]float64{10, 9, 7, 4, 0})
	for u := 1; u <= 5; u++ {
		d, err := s.DeltaForU(u)
		if err != nil {
			t.Fatalf("DeltaForU(%d): %v", u, err)
		}
		if got := s.UCount(d); got != u {
			t.Errorf("UCount(DeltaForU(%d)=%g) = %d", u, d, got)
		}
	}
}

func TestDeltaForUInvalid(t *testing.T) {
	s := NewSet([]float64{1, 2, 3})
	for _, u := range []int{0, -1, 4} {
		if _, err := s.DeltaForU(u); err == nil {
			t.Errorf("DeltaForU(%d) succeeded, want error", u)
		}
	}
}

func TestDeltaForUTies(t *testing.T) {
	// Two elements at the same distance from the max: u=2 is unachievable.
	s := NewSet([]float64{10, 8, 8})
	if _, err := s.DeltaForU(2); err == nil {
		t.Fatal("DeltaForU with tied distances succeeded, want error")
	}
	if _, err := s.DeltaForU(3); err != nil {
		t.Fatalf("DeltaForU(3): %v", err)
	}
}

func TestDeltaForUProperty(t *testing.T) {
	f := func(raw []float64, uRaw uint8) bool {
		values := raw[:0]
		for _, v := range raw {
			// Keep magnitudes where pairwise distances cannot overflow.
			if !math.IsNaN(v) && math.Abs(v) < 1e300 {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			return true
		}
		s := NewSet(values)
		u := int(uRaw)%s.Len() + 1
		d, err := s.DeltaForU(u)
		if err != nil {
			return true // ties: correctly refused
		}
		return s.UCount(d) == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestItemsAndSubsetCopy(t *testing.T) {
	s := NewSet([]float64{1, 2, 3})
	items := s.Items()
	items[0].Value = 99
	if s.Item(0).Value != 1 {
		t.Fatal("Items() did not copy")
	}
	sub := s.Subset([]int{2, 0})
	if len(sub) != 2 || sub[0].ID != 2 || sub[1].ID != 0 {
		t.Fatalf("Subset = %+v", sub)
	}
}

func TestIDs(t *testing.T) {
	s := NewSet([]float64{4, 4, 4, 4})
	ids := s.IDs()
	if len(ids) != 4 {
		t.Fatalf("IDs length = %d", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("IDs[%d] = %d", i, id)
		}
	}
}
