package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBinomialPMFKnownValues(t *testing.T) {
	tests := []struct {
		n, k int
		p    float64
		want float64
	}{
		{1, 0, 0.5, 0.5},
		{1, 1, 0.5, 0.5},
		{2, 1, 0.5, 0.5},
		{4, 2, 0.5, 0.375},
		{3, 0, 0.2, 0.512},
		{3, 3, 0.2, 0.008},
		{10, 5, 0.3, 0.10291934520},
	}
	for _, tc := range tests {
		got := BinomialPMF(tc.n, tc.k, tc.p)
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("BinomialPMF(%d,%d,%g) = %.12f, want %.12f", tc.n, tc.k, tc.p, got, tc.want)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Fatal("out-of-range k should have probability 0")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 3, 0) != 0 {
		t.Fatal("p=0 edge wrong")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 3, 1) != 0 {
		t.Fatal("p=1 edge wrong")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	f := func(nRaw uint8, p float64) bool {
		n := int(nRaw)%50 + 1
		p = math.Mod(math.Abs(p), 1)
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += BinomialPMF(n, k, p)
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialTailGE(t *testing.T) {
	if got := BinomialTailGE(2, 1, 0.5); !almostEqual(got, 0.75, 1e-12) {
		t.Fatalf("P(Bin(2,.5)≥1) = %g, want 0.75", got)
	}
	if BinomialTailGE(5, 0, 0.3) != 1 {
		t.Fatal("tail at k=0 should be 1")
	}
	if BinomialTailGE(5, 6, 0.3) != 0 {
		t.Fatal("tail beyond n should be 0")
	}
}

func TestMajorityCorrectProbSingleVoter(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if got := MajorityCorrectProb(p, 1); !almostEqual(got, p, 1e-12) {
			t.Errorf("MajorityCorrectProb(%g, 1) = %g", p, got)
		}
	}
}

func TestMajorityCorrectProbFairCoin(t *testing.T) {
	for _, k := range []int{1, 2, 3, 10, 21} {
		if got := MajorityCorrectProb(0.5, k); !almostEqual(got, 0.5, 1e-9) {
			t.Errorf("MajorityCorrectProb(0.5, %d) = %g, want 0.5", k, got)
		}
	}
}

func TestMajorityCorrectProbMonotoneInK(t *testing.T) {
	// For p > 1/2, accuracy increases with odd k.
	prev := 0.0
	for _, k := range []int{1, 3, 5, 7, 9, 21, 51} {
		got := MajorityCorrectProb(0.6, k)
		if got <= prev {
			t.Fatalf("accuracy not increasing at k=%d: %g after %g", k, got, prev)
		}
		prev = got
	}
	if prev < 0.9 {
		t.Fatalf("MajorityCorrectProb(0.6, 51) = %g, want ≥0.9", prev)
	}
}

func TestMajorityCorrectProbBelowHalfDecays(t *testing.T) {
	// For p < 1/2, more voters make things worse — the wisdom of crowds
	// works against you.
	if MajorityCorrectProb(0.4, 21) >= MajorityCorrectProb(0.4, 3) {
		t.Fatal("majority accuracy should decay with k when p < 1/2")
	}
}

func TestMajorityCorrectProbTieHandling(t *testing.T) {
	// k=2, p=0.6: P(2 correct)=0.36, P(1-1 tie)=0.48 → 0.36+0.24 = 0.60.
	if got := MajorityCorrectProb(0.6, 2); !almostEqual(got, 0.60, 1e-9) {
		t.Fatalf("MajorityCorrectProb(0.6, 2) = %g, want 0.60", got)
	}
}

func TestMajorityCorrectProbZeroVoters(t *testing.T) {
	if got := MajorityCorrectProb(0.9, 0); got != 0.5 {
		t.Fatalf("k=0 should be a coin flip, got %g", got)
	}
}

func TestChernoffMajorityBoundFormula(t *testing.T) {
	// Direct evaluation of exp(−(1−2p)²k/(8(1−p))).
	p, k := 0.3, 10
	want := math.Exp(-(0.4 * 0.4 * 10) / (8 * 0.7))
	if got := ChernoffMajorityBound(p, k); !almostEqual(got, want, 1e-12) {
		t.Fatalf("ChernoffMajorityBound(%g,%d) = %g, want %g", p, k, got, want)
	}
}

func TestChernoffMajorityBoundVacuous(t *testing.T) {
	if ChernoffMajorityBound(0.5, 100) != 1 || ChernoffMajorityBound(0.7, 100) != 1 {
		t.Fatal("bound should be vacuous (1) for p ≥ 1/2")
	}
	if ChernoffMajorityBound(0.3, 0) != 1 {
		t.Fatal("bound should be 1 for k ≤ 0")
	}
}

func TestChernoffBoundDominatesExactError(t *testing.T) {
	// The paper's Section 3.2 claim: the probability that the worse
	// element wins the majority is at most the Chernoff bound. Here p is
	// the per-voter ERROR probability, so each voter is correct with
	// probability 1 − p.
	for _, p := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		for _, k := range []int{1, 3, 5, 11, 21, 51} {
			exact := 1 - MajorityCorrectProb(1-p, k)
			bound := ChernoffMajorityBound(p, k)
			if exact > bound+1e-12 {
				t.Errorf("exact error %g exceeds Chernoff bound %g at p=%g k=%d", exact, bound, p, k)
			}
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 2.5, 1e-12) {
		t.Fatalf("Mean = %g", s.Mean())
	}
	// Sample variance of {1,2,3,4} is 5/3.
	if !almostEqual(s.Var(), 5.0/3.0, 1e-12) {
		t.Fatalf("Var = %g", s.Var())
	}
	if !almostEqual(s.StdErr(), s.Std()/2, 1e-12) {
		t.Fatalf("StdErr = %g", s.StdErr())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	s.Add(-7)
	if s.Mean() != -7 || s.Var() != 0 || s.Min() != -7 || s.Max() != -7 {
		t.Fatal("single-observation summary wrong")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		for _, x := range clean {
			s.Add(x)
		}
		if len(clean) == 0 {
			return s.N() == 0
		}
		sum := 0.0
		for _, x := range clean {
			sum += x
		}
		mean := sum / float64(len(clean))
		if !almostEqual(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) {
			return false
		}
		if len(clean) >= 2 {
			ss := 0.0
			for _, x := range clean {
				ss += (x - mean) * (x - mean)
			}
			v := ss / float64(len(clean)-1)
			if !almostEqual(s.Var(), v, 1e-4*(1+v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestMajorityEqualsBinomialTailForOddK(t *testing.T) {
	// For odd k there are no ties, so majority success is exactly
	// P(Bin(k, p) ≥ (k+1)/2).
	f := func(pRaw uint8, kRaw uint8) bool {
		p := float64(pRaw%100) / 100
		k := 2*(int(kRaw)%15) + 1
		want := BinomialTailGE(k, (k+1)/2, p)
		return almostEqual(MajorityCorrectProb(p, k), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityComplementSymmetry(t *testing.T) {
	// Swapping correct/incorrect probabilities must swap the outcome:
	// majority(p) + majority(1−p) = 1 (tie mass splits evenly).
	f := func(pRaw uint8, kRaw uint8) bool {
		p := float64(pRaw%101) / 100
		k := int(kRaw)%25 + 1
		return almostEqual(MajorityCorrectProb(p, k)+MajorityCorrectProb(1-p, k), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
