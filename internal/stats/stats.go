// Package stats provides the probability and aggregation helpers used by the
// paper's analysis and experiments: exact majority-vote success
// probabilities, the Chernoff bound of Section 3.2, and mean/stderr
// summaries for trial aggregation.
package stats

import (
	"fmt"
	"math"
)

// MajorityCorrectProb returns the probability that a strict majority of k
// independent voters, each correct with probability p, selects the correct
// element, with exact ties broken uniformly at random (the paper's model:
// "taking the element that won the majority of the comparisons, or an
// arbitrary element in case of a tie").
func MajorityCorrectProb(p float64, k int) float64 {
	if k <= 0 {
		return 0.5
	}
	win, tie := 0.0, 0.0
	for c := 0; c <= k; c++ {
		pc := BinomialPMF(k, c, p)
		switch {
		case 2*c > k:
			win += pc
		case 2*c == k:
			tie += pc
		}
	}
	return win + tie/2
}

// BinomialPMF returns P(Bin(n, p) = k), computed in log space for stability.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// BinomialTailGE returns P(Bin(n, p) ≥ k).
func BinomialTailGE(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	sum := 0.0
	for c := k; c <= n; c++ {
		sum += BinomialPMF(n, c, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	return lgamma(float64(n)+1) - lgamma(float64(k)+1) - lgamma(float64(n-k)+1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// ChernoffMajorityBound returns the paper's Section 3.2 upper bound on the
// probability that the element with lower value receives the majority of k
// votes when each voter errs independently with probability p < 1/2:
//
//	exp(−(1−2p)²·k / (8(1−p)))
//
// It returns 1 when p ≥ 1/2 (the bound is vacuous there).
func ChernoffMajorityBound(p float64, k int) float64 {
	if p >= 0.5 || k <= 0 {
		return 1
	}
	num := (1 - 2*p) * (1 - 2*p) * float64(k)
	return math.Exp(-num / (8 * (1 - p)))
}

// Summary accumulates scalar observations and reports mean, standard
// deviation, standard error, min and max. The zero value is ready to use.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the unbiased sample variance (0 for fewer than 2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sumSq - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 {
		v = 0 // numerical guard
	}
	return v
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// String renders "mean ± stderr (n=k)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.StdErr(), s.n)
}
