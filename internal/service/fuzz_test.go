package service

import (
	"bytes"
	"testing"

	"crowdmax/internal/checkpoint"
)

// FuzzDecodeRecord throws arbitrary bytes — seeded with exactly the shapes
// injected disk faults produce: torn-write prefixes of a valid record at
// several fractions, a zero-byte file, foreign magic, and bit-flipped valid
// records — at the job-record decoder. The decoder must never panic, and any
// record it does accept must re-encode to bytes it accepts again, decoding
// to the same job (otherwise a recovered server could persist a record its
// own next boot quarantines).
func FuzzDecodeRecord(f *testing.F) {
	j := mkJob("j00000042", "fuzz")
	j.Spec.DeadlineSeconds = 2.5
	j.Spec.IdempotencyKey = "key-1"
	full := encodeRecord(j)
	f.Add(full)
	f.Add([]byte{})
	// ModeTorn persists a fraction of the buffer but reports success; these
	// prefixes are byte-for-byte what lands on disk after a torn write.
	for _, frac := range []int{1, 4, 10} {
		f.Add(full[:len(full)*frac/10])
	}
	f.Add(checkpoint.SealEnvelope("XXXX", 1, []byte("not a record")))
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeRecord(data)
		if err != nil {
			return
		}
		re := encodeRecord(got)
		again, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if !bytes.Equal(encodeRecord(again), re) {
			t.Fatalf("record did not round-trip: % x vs % x", encodeRecord(again), re)
		}
	})
}
