package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"crowdmax/internal/obs"
)

// maxBody bounds the accepted request body (a maxInstance-item explicit
// instance fits comfortably).
const maxBody = 64 << 20

// jobView is the JSON shape of GET /v1/jobs/{id}.
type jobView struct {
	ID             string     `json:"id"`
	Tenant         string     `json:"tenant"`
	State          State      `json:"state"`
	Mode           string     `json:"mode"`
	K              int        `json:"k,omitempty"`
	Votes          int        `json:"votes,omitempty"`
	N              int        `json:"n"`
	Un             int        `json:"un"`
	Ue             int        `json:"ue"`
	Seed           uint64     `json:"seed"`
	ReservedNaive  int64      `json:"reserved_naive"`
	ReservedExpert int64      `json:"reserved_expert"`
	Error          string     `json:"error,omitempty"`
	Result         *JobResult `json:"result,omitempty"`
}

func viewOf(j *Job) jobView {
	v := jobView{
		ID:             j.ID,
		Tenant:         j.Spec.Tenant,
		State:          j.State(),
		Mode:           j.Spec.Mode,
		K:              j.Spec.K,
		Votes:          j.Spec.Votes,
		N:              j.Spec.size(),
		Un:             j.Spec.Un,
		Ue:             j.Spec.Ue,
		Seed:           j.Spec.Seed,
		ReservedNaive:  j.ReservedNaive,
		ReservedExpert: j.ReservedExpert,
		Error:          j.Err(),
	}
	if r, ok := j.Result(); ok {
		v.Result = &r
	}
	return v
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs              submit a job (202; 400/429/503 on refusal)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status and result
//	GET  /v1/jobs/{id}/events  the job's JSONL event trace (?follow=1 streams
//	                           until the job reaches a terminal state)
//	GET  /healthz              liveness + drain status + job counts
//	GET  /debug/vars, /debug/pprof/...   via obs.Routes
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	obs.Routes(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client gone is not a server error
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decode job spec: %v", err))
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		var rej *RejectError
		switch {
		case errors.As(err, &rej):
			w.Header().Set("Retry-After", strconv.Itoa(int(max(1, rej.RetryAfter.Seconds()))))
			writeErr(w, http.StatusTooManyRequests, rej.Reason)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrBadRequest):
			writeErr(w, http.StatusBadRequest, err.Error())
		default:
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":     j.ID,
		"status": "/v1/jobs/" + j.ID,
		"events": "/v1/jobs/" + j.ID + "/events",
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = viewOf(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

// handleEvents serves the job's JSONL trace. Without ?follow=1 it returns
// the events so far; with it, it streams — flushing each chunk — until the
// job's log closes (terminal state or drain) or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, done, changed := j.events.since(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			off += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
			continue // re-check for bytes appended while writing
		}
		if done || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	counts := map[State]int{}
	for _, j := range s.Jobs() {
		counts[j.State()]++
	}
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "jobs": counts})
}
