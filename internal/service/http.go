package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"crowdmax/internal/obs"
)

// maxBody bounds the accepted request body (a maxInstance-item explicit
// instance fits comfortably).
const maxBody = 64 << 20

// jobView is the JSON shape of GET /v1/jobs/{id}.
type jobView struct {
	ID              string     `json:"id"`
	Tenant          string     `json:"tenant"`
	State           State      `json:"state"`
	Mode            string     `json:"mode"`
	K               int        `json:"k,omitempty"`
	Votes           int        `json:"votes,omitempty"`
	N               int        `json:"n"`
	Un              int        `json:"un"`
	Ue              int        `json:"ue"`
	Seed            uint64     `json:"seed"`
	ReservedNaive   int64      `json:"reserved_naive"`
	ReservedExpert  int64      `json:"reserved_expert"`
	DeadlineSeconds float64    `json:"deadline_seconds,omitempty"`
	Stalled         bool       `json:"stalled,omitempty"`
	Error           string     `json:"error,omitempty"`
	Result          *JobResult `json:"result,omitempty"`
}

func viewOf(j *Job) jobView {
	v := jobView{
		ID:              j.ID,
		Tenant:          j.Spec.Tenant,
		State:           j.State(),
		Mode:            j.Spec.Mode,
		K:               j.Spec.K,
		Votes:           j.Spec.Votes,
		N:               j.Spec.size(),
		Un:              j.Spec.Un,
		Ue:              j.Spec.Ue,
		Seed:            j.Spec.Seed,
		ReservedNaive:   j.ReservedNaive,
		ReservedExpert:  j.ReservedExpert,
		DeadlineSeconds: j.Spec.DeadlineSeconds,
		Stalled:         j.Stalled(),
		Error:           j.Err(),
	}
	if r, ok := j.Result(); ok {
		v.Result = &r
	}
	return v
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs              submit a job (202; 400/429/503 on refusal)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status and result
//	GET  /v1/jobs/{id}/events  the job's JSONL event trace (?follow=1 streams
//	                           until the job reaches a terminal state)
//	GET  /v1/tenants           per-tenant job counts and budget spend
//	GET  /healthz              liveness + drain/degraded status + damage report
//	GET  /debug/vars, /debug/pprof/...   via obs.Routes
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	obs.Routes(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client gone is not a server error
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decode job spec: %v", err))
		return
	}
	if spec.IdempotencyKey == "" {
		spec.IdempotencyKey = r.Header.Get("Idempotency-Key")
	}
	j, reused, err := s.SubmitIdempotent(spec)
	if err != nil {
		var rej *RejectError
		switch {
		case errors.As(err, &rej):
			w.Header().Set("Retry-After", strconv.Itoa(int(max(1, rej.RetryAfter.Seconds()))))
			writeErr(w, http.StatusTooManyRequests, rej.Reason)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrBadRequest):
			writeErr(w, http.StatusBadRequest, err.Error())
		default:
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	// A replayed idempotent submission returns the original job with 200:
	// nothing was admitted or charged by this request.
	status := http.StatusAccepted
	body := map[string]any{
		"id":     j.ID,
		"status": "/v1/jobs/" + j.ID,
		"events": "/v1/jobs/" + j.ID + "/events",
	}
	if reused {
		status = http.StatusOK
		body["replayed"] = true
	}
	writeJSON(w, status, body)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.TenantUsages()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = viewOf(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

// handleEvents serves the job's JSONL trace. Without ?follow=1 it returns
// the events so far; with it, it streams — flushing each chunk — until the
// job's log closes (terminal state or drain) or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, done, changed := j.events.since(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			off += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
			continue // re-check for bytes appended while writing
		}
		if done || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz reports liveness plus the damage report: a server running
// with quarantined records, unmovable corrupt files, or dirty (unpersisted)
// records says "degraded" — it is serving, but an operator should look.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	counts := map[State]int{}
	for _, j := range s.Jobs() {
		counts[j.State()]++
	}
	h := s.Health()
	status := "ok"
	if h.Degraded() {
		status = "degraded"
	}
	if s.Draining() {
		status = "draining"
	}
	body := map[string]any{
		"status":    status,
		"jobs":      counts,
		"swept_tmp": h.SweptTmp,
		"dirty":     h.Dirty,
		"stalled":   h.Stalled,
	}
	if len(h.Quarantined) > 0 {
		body["quarantined"] = h.Quarantined
	}
	if h.Unmovable > 0 {
		body["unmovable"] = h.Unmovable
	}
	writeJSON(w, http.StatusOK, body)
}
