package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/faults"
)

// mkJob builds a minimal terminal job for record fixtures.
func mkJob(id, tenant string) *Job {
	j := &Job{ID: id, Spec: JobSpec{Tenant: tenant, Mode: ModeMax, N: 10, Seed: 1, Un: 2, Ue: 1}}
	j.attachLog()
	j.state = StateDone
	j.result = &JobResult{Mode: ModeMax, BestID: 3, BestValue: 0.9, NaiveComparisons: 12, ExpertComparisons: 2, Cost: 32}
	return j
}

func writeRecord(t *testing.T, dir string, j *Job) string {
	t.Helper()
	path := filepath.Join(dir, j.ID+".job")
	if err := os.WriteFile(path, encodeRecord(j), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func discardLogf(string, ...any) {}

// TestRecordV3RoundTrip pins the robustness appendix: idempotency key,
// deadline, fault tag, and the expired state survive the record codec.
func TestRecordV3RoundTrip(t *testing.T) {
	j := mkJob("j00000042", "acme")
	j.Spec.IdempotencyKey = "retry-abc"
	j.Spec.DeadlineSeconds = 2.5
	j.Spec.Fault = FaultPanic
	j.state = StateExpired
	got, err := decodeRecord(encodeRecord(j))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Spec.IdempotencyKey != "retry-abc" || got.Spec.DeadlineSeconds != 2.5 || got.Spec.Fault != FaultPanic {
		t.Fatalf("robustness fields lost: %+v", got.Spec)
	}
	if got.State() != StateExpired {
		t.Fatalf("state = %q, want expired", got.State())
	}
}

// TestDecodeRecordTruncationNeverPanics truncates a valid record at every
// single byte offset: each prefix must decode as an error (almost always
// ErrCorrupt from the envelope), never panic, and never yield a job.
func TestDecodeRecordTruncationNeverPanics(t *testing.T) {
	data := encodeRecord(mkJob("j00000001", "t"))
	for cut := 0; cut < len(data); cut++ {
		if _, err := decodeRecord(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(data))
		}
	}
	if _, err := decodeRecord(data); err != nil {
		t.Fatalf("full record must decode: %v", err)
	}
}

// TestLoadQuarantinesDamage seeds a store directory with every kind of
// damage the loader must survive: a zero-byte record, a truncated record, a
// record under a foreign magic, a record naming an unknown state, and an
// orphaned temp file. Load must keep the two good jobs, quarantine the four
// bad files, and sweep the temp.
func TestLoadQuarantinesDamage(t *testing.T) {
	dir := t.TempDir()
	writeRecord(t, dir, mkJob("j00000001", "a"))
	writeRecord(t, dir, mkJob("j00000002", "b"))
	if err := os.WriteFile(filepath.Join(dir, "j00000003.job"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	full := encodeRecord(mkJob("j00000004", "a"))
	if err := os.WriteFile(filepath.Join(dir, "j00000004.job"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "j00000005.job"), checkpoint.SealEnvelope("XXXX", 1, []byte("zz")), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := mkJob("j00000006", "a")
	bad.state = State("haunted")
	if err := os.WriteFile(filepath.Join(dir, "j00000006.job"), encodeRecord(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "j00000001.job.tmp-77"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := newStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := st.load(discardLogf)
	if err != nil {
		t.Fatalf("load must not fail on damage: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != "j00000001" || jobs[1].ID != "j00000002" {
		t.Fatalf("loaded %v, want the two good jobs", jobs)
	}
	q, unmovable, swept := st.health()
	if len(q) != 4 || unmovable != 0 || swept != 1 {
		t.Fatalf("health = %d quarantined %d unmovable %d swept, want 4/0/1 (%v)", len(q), unmovable, swept, q)
	}
	ents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(ents) != 4 {
		t.Fatalf("quarantine dir: %v %v", ents, err)
	}
	// The damaged files are out of the boot path: a second load is clean.
	st2, _ := newStore(nil, dir)
	if jobs2, err := st2.load(discardLogf); err != nil || len(jobs2) != 2 {
		t.Fatalf("second load: %v jobs, err %v", jobs2, err)
	}
	// The damage stays on the books until an operator clears quarantine/:
	// the second load inherits all four records (no re-moves, no new files)
	// and still reports degraded.
	q2, _, swept2 := st2.health()
	if len(q2) != 4 || swept2 != 0 {
		t.Fatalf("second load health = %d quarantined %d swept, want 4/0 (%v)", len(q2), swept2, q2)
	}
	for _, rec := range q2 {
		if rec.Reason != "quarantined by an earlier boot" {
			t.Fatalf("inherited record %s has reason %q", rec.Name, rec.Reason)
		}
	}
	if !st2.degraded() {
		t.Fatal("store with a populated quarantine must stay degraded")
	}
	if ents, err := os.ReadDir(filepath.Join(dir, quarantineDir)); err != nil || len(ents) != 4 {
		t.Fatalf("second load changed the quarantine dir: %v %v", ents, err)
	}
}

// TestLoadResolvesDuplicateIDs writes two records claiming the same job ID
// under different filenames; the newer file must win and the loser land in
// quarantine with a reason naming the winner.
func TestLoadResolvesDuplicateIDs(t *testing.T) {
	dir := t.TempDir()
	old := mkJob("j00000009", "a")
	old.result.NaiveComparisons = 1
	newer := mkJob("j00000009", "a")
	newer.result.NaiveComparisons = 99
	if err := os.WriteFile(filepath.Join(dir, "copy-old.job"), encodeRecord(old), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "copy-old.job"), past, past); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "j00000009.job"), encodeRecord(newer), 0o644); err != nil {
		t.Fatal(err)
	}

	st, _ := newStore(nil, dir)
	jobs, err := st.load(discardLogf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("loaded %d jobs, want 1", len(jobs))
	}
	if r, _ := jobs[0].Result(); r.NaiveComparisons != 99 {
		t.Fatalf("older duplicate won: %+v", r)
	}
	q, _, _ := st.health()
	if len(q) != 1 || q[0].Name != "copy-old.job" || !strings.Contains(q[0].Reason, "duplicate record") {
		t.Fatalf("loser not quarantined: %v", q)
	}
}

// TestServerBootsWithPoisonedRecord is the acceptance gate in miniature:
// a server whose store holds a corrupt record must boot, serve new jobs,
// and report itself degraded.
func TestServerBootsWithPoisonedRecord(t *testing.T) {
	dir := t.TempDir()
	jobs := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobs, "j00000001.job"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, dir, nil)
	defer s.Drain(context.Background())
	h := s.Health()
	if !h.Degraded() || len(h.Quarantined) != 1 {
		t.Fatalf("health = %+v, want degraded with 1 quarantined", h)
	}
	j, err := s.Submit(JobSpec{N: 60, Seed: 3, Un: 3})
	if err != nil {
		t.Fatalf("poisoned store must still admit jobs: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	if j.State() != StateDone {
		t.Fatalf("job state %q: %s", j.State(), j.Err())
	}
	// The quarantined name must not leak into the ID sequence: the new job
	// keeps its own identity.
	if j.ID == "j00000001" {
		t.Fatal("new job reused the quarantined record's ID")
	}
}

// TestPersistRetriesThroughTransientFaults drives the record writes through
// an injector whose first two write ops fail ENOSPC; the bounded retry must
// land the record without parking it dirty.
func TestPersistRetriesThroughTransientFaults(t *testing.T) {
	plan, err := faults.ParsePlan("enospc%*.job.tmp-*@0-2")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := newStore(faults.NewInjector(faults.OS(), plan), filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	j := mkJob("j00000001", "a")
	if err := st.persist(j); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first persist should fail ENOSPC, got %v", err)
	}
	if err := st.persist(j); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second persist should fail ENOSPC, got %v", err)
	}
	if err := st.persist(j); err != nil {
		t.Fatalf("third persist should pass the fault window: %v", err)
	}
}

// TestPersistDefersOnUnwritableStore simulates a read-only/failing store
// directory: every rename fails, so persistJob exhausts its attempts, parks
// the record dirty, and the server keeps running; once the faults lift, the
// drain-time flush lands the record.
func TestPersistDefersOnUnwritableStore(t *testing.T) {
	// Record renames: op 0 is the queued persist (must land so Submit
	// acks), ops 1-4 are the running and terminal persists (2 attempts
	// each, all failing — a read-only store mid-run), op 5 is the drain
	// flush over a recovered disk.
	plan, err := faults.ParsePlan("renamefail%*.job@1-5")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := testServer(t, dir, func(o *Options) {
		o.FS = faults.NewInjector(faults.OS(), plan)
		o.PersistAttempts = 2
	})
	j, err := s.Submit(JobSpec{N: 40, Seed: 9, Un: 3})
	if err != nil {
		// Submission itself persists; with the record unwritable the admit
		// is rolled back. That is also acceptable fail-closed behavior, but
		// this test wants the running-job path, so weaken the plan if so.
		t.Fatalf("Submit: %v", err)
	}
	_ = j
	waitTerminal(t, j, 30*time.Second)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After the drain flush over a recovered disk, nothing stays dirty and
	// the terminal record is durable and decodable.
	if n := s.dirtyCount(); n != 0 {
		t.Fatalf("%d records still dirty after drain flush", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", j.ID+".job"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.State().terminal() {
		t.Fatalf("flushed record state %q not terminal", got.State())
	}
}

// TestSubmitFailsClosedWhenRecordUnwritable pins the admission contract: if
// the queued record cannot be written at all, Submit refuses and rolls the
// reservation back rather than acknowledging a job that could vanish.
func TestSubmitFailsClosedWhenRecordUnwritable(t *testing.T) {
	plan, err := faults.ParsePlan("enospc")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := testServer(t, dir, func(o *Options) {
		o.FS = faults.NewInjector(faults.OS(), plan)
		o.DefaultTenant = TenantLimits{MaxCost: 1e9}
	})
	defer s.Drain(context.Background())
	if _, err := s.Submit(JobSpec{N: 40, Seed: 9, Un: 3}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Submit over a full disk: %v", err)
	}
	// The rollback must leave the books empty.
	for _, u := range s.TenantUsages() {
		if u.Jobs != 0 || (u.SpentCost != nil && *u.SpentCost != 0) {
			t.Fatalf("reservation leaked: %+v", u)
		}
	}
}

// TestPanicIsolation submits a deliberately panicking workload next to a
// healthy one: the panic must settle only its own job as failed (with the
// stack in its event log and a full refund) while the neighbor completes.
func TestPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, dir, func(o *Options) {
		o.AllowFaults = true
		o.DefaultTenant = TenantLimits{MaxCost: 1e9}
	})
	defer s.Drain(context.Background())
	bad, err := s.Submit(JobSpec{N: 50, Seed: 1, Un: 3, Fault: FaultPanic})
	if err != nil {
		t.Fatalf("Submit fault job: %v", err)
	}
	good, err := s.Submit(JobSpec{N: 80, Seed: 2, Un: 4})
	if err != nil {
		t.Fatalf("Submit healthy job: %v", err)
	}
	waitTerminal(t, bad, 30*time.Second)
	waitTerminal(t, good, 30*time.Second)
	if bad.State() != StateFailed || !strings.Contains(bad.Err(), "panic") {
		t.Fatalf("fault job state %q err %q", bad.State(), bad.Err())
	}
	if good.State() != StateDone {
		t.Fatalf("healthy job state %q: %s", good.State(), good.Err())
	}
	buf, _, _ := bad.events.since(0)
	if !strings.Contains(string(buf), `"ev":"panic"`) || !strings.Contains(string(buf), "goroutine") {
		t.Fatalf("panic event with stack missing from trace:\n%s", buf)
	}
	// A panicked run produced no billable result: the reservation is fully
	// refunded, so tenant cost equals the healthy job's actual spend.
	r, ok := good.Result()
	if !ok {
		t.Fatal("healthy job has no result")
	}
	for _, u := range s.TenantUsages() {
		if u.SpentCost == nil {
			continue
		}
		want := float64(r.NaiveComparisons)*1 + float64(r.ExpertComparisons)*10
		if diff := *u.SpentCost - want; diff > 0.005 || diff < -0.005 {
			t.Fatalf("tenant cost %.2f, want %.2f (panic job not refunded?)", *u.SpentCost, want)
		}
	}
	// And the server still admits work.
	again, err := s.Submit(JobSpec{N: 40, Seed: 3, Un: 3})
	if err != nil {
		t.Fatalf("server stopped serving after a panic: %v", err)
	}
	waitTerminal(t, again, 30*time.Second)
}

// TestFaultSpecGated pins that fault injection is opt-in: a default server
// rejects specs carrying a fault tag.
func TestFaultSpecGated(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())
	if _, err := s.Submit(JobSpec{N: 40, Seed: 1, Un: 3, Fault: FaultPanic}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("fault spec on a default server: %v", err)
	}
}

// TestDeadlineExpiresJob holds every comparison long enough that the job's
// own deadline fires: the job must settle terminal as "expired" without
// tearing anything else down, and its partial spend must be recorded.
func TestDeadlineExpiresJob(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, dir, func(o *Options) {
		o.CmpLatency = 20 * time.Millisecond
	})
	defer s.Drain(context.Background())
	j, err := s.Submit(JobSpec{N: 400, Seed: 5, Un: 8, DeadlineSeconds: 0.2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	if j.State() != StateExpired {
		t.Fatalf("state %q, want expired (err %q)", j.State(), j.Err())
	}
	if _, ok := j.Result(); !ok {
		t.Fatal("expired job must carry its partial result")
	}
	// The expired record survives the codec and a restart does not resume
	// it. Drain first: the terminal persist may still be in flight (or
	// parked dirty) when the in-memory state flips; drain is the point the
	// record is guaranteed durable.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", j.ID+".job"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.State() != StateExpired {
		t.Fatalf("persisted state %q", got.State())
	}
}

// TestIdempotentSubmission pins the dedup contract: same tenant + key is
// the same job (no second charge), a different tenant with the same key is
// its own job, and the mapping survives a restart.
func TestIdempotentSubmission(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, dir, nil)
	j1, reused, err := s.SubmitIdempotent(JobSpec{N: 60, Seed: 1, Un: 3, IdempotencyKey: "k1"})
	if err != nil || reused {
		t.Fatalf("first submit: %v reused=%v", err, reused)
	}
	j2, reused, err := s.SubmitIdempotent(JobSpec{N: 60, Seed: 1, Un: 3, IdempotencyKey: "k1"})
	if err != nil || !reused || j2.ID != j1.ID {
		t.Fatalf("replay: %v reused=%v id=%s want %s", err, reused, j2.ID, j1.ID)
	}
	other, reused, err := s.SubmitIdempotent(JobSpec{Tenant: "other", N: 60, Seed: 1, Un: 3, IdempotencyKey: "k1"})
	if err != nil || reused || other.ID == j1.ID {
		t.Fatalf("tenant scoping broken: %v reused=%v id=%s", err, reused, other.ID)
	}
	waitTerminal(t, j1, 30*time.Second)
	waitTerminal(t, other, 30*time.Second)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart: the retried POST still gets its original job, not a re-run.
	s2 := testServer(t, dir, nil)
	defer s2.Drain(context.Background())
	j3, reused, err := s2.SubmitIdempotent(JobSpec{N: 60, Seed: 1, Un: 3, IdempotencyKey: "k1"})
	if err != nil || !reused || j3.ID != j1.ID {
		t.Fatalf("replay across restart: %v reused=%v id=%s want %s", err, reused, j3.ID, j1.ID)
	}
	if j3.State() != StateDone {
		t.Fatalf("replayed job lost its result: %q", j3.State())
	}
}

// TestWatchdogFlagsStalledJob runs a job whose comparisons sleep far past
// the watchdog threshold; the job must be flagged stalled mid-run and the
// flag must clear once it completes.
func TestWatchdogFlagsStalledJob(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.CmpLatency = 50 * time.Millisecond
		o.WatchdogAfter = 20 * time.Millisecond
		o.CheckpointEvery = 1 << 30 // no checkpoint touches mid-phase
	})
	defer s.Drain(context.Background())
	j, err := s.Submit(JobSpec{N: 20, Seed: 4, Un: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sawStall := false
	deadline := time.Now().Add(30 * time.Second)
	for !j.State().terminal() {
		if j.Stalled() {
			sawStall = true
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawStall {
		t.Fatal("watchdog never flagged the slow job")
	}
	if j.Stalled() {
		t.Fatal("stall flag not cleared by the terminal transition")
	}
}
