package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdmax"
	"crowdmax/internal/core"
	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/faults"
	"crowdmax/internal/obs"
)

// ErrDraining is returned by Submit once a drain has begun; the HTTP layer
// maps it to 503.
var ErrDraining = errors.New("service: server is draining")

// ErrBadRequest wraps job-spec validation failures; the HTTP layer maps it
// to 400.
var ErrBadRequest = errors.New("service: invalid job spec")

// RejectError is an admission refusal — the server or tenant is at capacity
// right now, and the client should retry after RetryAfter. The HTTP layer
// maps it to 429 with a Retry-After header.
type RejectError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("service: rejected: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// TenantLimits caps one tenant's concurrent jobs and cumulative spend.
// Monetary and count caps are enforced by a dispatch.Budget fed with
// worst-case reservations at admission, so a tenant can never be admitted
// into work its caps cannot cover. The zero value is unlimited.
type TenantLimits struct {
	// MaxJobs caps the tenant's admitted-but-unfinished jobs; 0 = unlimited.
	MaxJobs int
	// MaxNaive / MaxExpert / MaxTotal cap cumulative comparisons across all
	// of the tenant's jobs; 0 = unlimited.
	MaxNaive, MaxExpert, MaxTotal int64
	// MaxCost caps cumulative monetary spend under the server prices;
	// 0 = unlimited.
	MaxCost float64
}

func (l TenantLimits) isZero() bool { return l == TenantLimits{} }

// Options configures a Server.
type Options struct {
	// Dir is the state directory: job records under Dir/jobs, session
	// checkpoints under Dir/ck. Required.
	Dir string
	// MaxConcurrent caps concurrently admitted (queued or running) sessions;
	// submissions past the cap are rejected 429. Default 8.
	MaxConcurrent int
	// Prices values naïve and expert comparisons for job costs and tenant
	// monetary caps. Default {Naive: 1, Expert: 10}.
	Prices crowdmax.Prices
	// DefaultTenant is the cap set applied to tenants without an entry in
	// Tenants. The zero value is unlimited.
	DefaultTenant TenantLimits
	// Tenants overrides DefaultTenant per tenant name.
	Tenants map[string]TenantLimits
	// CmpLatency, when > 0, sleeps this long inside every comparison —
	// emulating crowd round-trips so smoke tests can hold jobs in flight
	// deterministically. It never changes answers or costs.
	CmpLatency time.Duration
	// CheckpointEvery is the per-job snapshot interval in paid comparisons
	// (besides phase boundaries). Default 64.
	CheckpointEvery int
	// RetryAfter is the backoff hint attached to 429 rejections. Default 1s.
	RetryAfter time.Duration
	// FS is the filesystem the store and checkpoints write through; nil uses
	// the real disk. Torture runs install a faults.Injector here.
	FS faults.FS
	// AllowFaults permits client-requested fault injection (JobSpec.Fault);
	// off by default so a production deployment cannot be panicked by a
	// request body.
	AllowFaults bool
	// WatchdogAfter flags a running job as stalled when it makes no
	// observable progress (state change, phase, decision, checkpoint) for
	// this long; 0 disables the watchdog.
	WatchdogAfter time.Duration
	// PersistAttempts bounds the retries of one job-record write before the
	// record is parked dirty for the drain-time flush. Default 4.
	PersistAttempts int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// tenant is one tenant's live admission state.
type tenant struct {
	mu     sync.Mutex
	jobs   int              // admitted and not yet settled
	max    int              // MaxJobs cap; 0 = unlimited
	budget *crowdmax.Budget // nil = unlimited
}

// Server is the long-running multi-tenant max-finding service: a pool of
// concurrent Sessions behind admission control, a persistent job store, and
// graceful drain. Create with NewServer, expose with Handler, stop with
// Drain.
type Server struct {
	opt   Options
	fsys  faults.FS
	store *store

	// slots is the session-concurrency semaphore: Submit acquires
	// non-blocking (full ⇒ 429), restart recovery acquires blocking.
	slots chan struct{}

	tmu     sync.Mutex
	tenants map[string]*tenant

	seqMu sync.Mutex
	seq   int64

	// idem maps tenant-scoped idempotency keys to their admitted jobs.
	// Guarded by admitMu — Submit is already fully serialized under it, and
	// lookup/insert must be atomic with admission anyway.
	idem map[string]*Job

	// dirty holds jobs whose latest record write failed even after retries;
	// the next transition or the drain-time flush tries again.
	dirtyMu sync.Mutex
	dirty   map[string]*Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   bool
	admitMu    sync.Mutex // serializes admission vs. drain flip
	wg         sync.WaitGroup
}

// NewServer loads the state directory, rebuilds tenant budgets from the
// records found there, schedules every non-terminal job for resume, and
// returns a serving-ready server.
func NewServer(opt Options) (*Server, error) {
	if opt.Dir == "" {
		return nil, errors.New("service: Options.Dir is required")
	}
	if opt.MaxConcurrent <= 0 {
		opt.MaxConcurrent = 8
	}
	if opt.Prices == (crowdmax.Prices{}) {
		opt.Prices = crowdmax.Prices{Naive: 1, Expert: 10}
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 64
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	if opt.PersistAttempts <= 0 {
		opt.PersistAttempts = 4
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = faults.OS()
	}
	st, err := newStore(fsys, filepath.Join(opt.Dir, "jobs"))
	if err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(filepath.Join(opt.Dir, "ck"), 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		fsys:       fsys,
		store:      st,
		slots:      make(chan struct{}, opt.MaxConcurrent),
		tenants:    make(map[string]*tenant),
		idem:       make(map[string]*Job),
		dirty:      make(map[string]*Job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	if opt.WatchdogAfter > 0 {
		go s.watchdog()
	}
	return s, nil
}

// logf writes one operational log line.
func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// tenant returns (creating on first use) the named tenant's admission state.
func (s *Server) tenant(name string) *tenant {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	lim, ok := s.opt.Tenants[name]
	if !ok {
		lim = s.opt.DefaultTenant
	}
	t := &tenant{max: lim.MaxJobs}
	if lim.MaxNaive > 0 || lim.MaxExpert > 0 || lim.MaxTotal > 0 || lim.MaxCost > 0 {
		t.budget = crowdmax.NewBudget(crowdmax.BudgetLimits{
			MaxNaive:  lim.MaxNaive,
			MaxExpert: lim.MaxExpert,
			MaxTotal:  lim.MaxTotal,
			MaxCost:   lim.MaxCost,
			Prices:    s.opt.Prices,
		})
	}
	s.tenants[name] = t
	return t
}

// reservation computes the worst-case per-class comparison counts a job
// could spend — the amount admission pre-charges. For a max-find, the naïve
// side is the filter bound (Lemma 3) plus a full all-play-all over the
// candidate-set bound (the naive-majority degradation rung); the expert side
// is the larger of the 2-MaxFind bound (Theorem 1) and the randomized rung's
// pessimistic estimate. A topk job reserves k such rounds (memo reuse makes
// the actual spend far smaller; the refund covers the difference). A score
// job's naïve side is its vote count (one value query per element per vote)
// and its expert side the shortlist tournament. Every quality-ladder rung
// spends within this envelope, so the refund at settlement is never
// negative.
func reservation(sp JobSpec) (naive, expert int64) {
	n, un := sp.size(), sp.Un
	cs := int64(core.CandidateSetBound(un))
	naive = int64(math.Ceil(core.Phase1UpperBound(n, un))) + cs*(cs-1)/2
	expert = int64(math.Ceil(core.Phase2ExpertUpperBound(un)))
	if alt := 160 * cs; alt > expert {
		expert = alt
	}
	switch sp.Mode {
	case ModeTopK:
		naive *= int64(sp.K)
		expert *= int64(sp.K)
	case ModeScore:
		votes := int64(sp.Votes)
		if votes == 0 {
			votes = 3 // engine default
		}
		naive = int64(n) * votes
	}
	return naive, expert
}

// Submit validates, admits, and starts one job. See SubmitIdempotent.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	j, _, err := s.SubmitIdempotent(spec)
	return j, err
}

// idemKey scopes an idempotency key to its tenant.
func idemKey(tenant, key string) string { return tenant + "\x00" + key }

// SubmitIdempotent validates, admits, and starts one job. The admission
// sequence is slot → tenant job cap → tenant budget reservation, each step
// rolled back if a later one refuses; on success the job is persisted as
// queued and its session starts on a pool goroutine. A spec carrying an
// IdempotencyKey already admitted for the tenant returns the existing job
// with reused=true — a retried POST (client timeout, proxy replay) never
// charges the budget twice. Errors: ErrBadRequest (invalid spec),
// ErrDraining (shutdown begun), *RejectError (capacity; retry later).
func (s *Server) SubmitIdempotent(spec JobSpec) (j *Job, reused bool, err error) {
	if err := spec.normalize(); err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if spec.Fault != "" && !s.opt.AllowFaults {
		return nil, false, fmt.Errorf("%w: fault injection is not enabled on this server", ErrBadRequest)
	}

	// The admit lock makes "reject new work after the drain flag flips"
	// atomic with the flip itself: Drain takes the same lock, so no
	// submission can be mid-admission when the base context is cancelled.
	s.admitMu.Lock()
	defer s.admitMu.Unlock()

	// Idempotent replay is checked before the drain gate: returning the job
	// a key already names is a read, and the retried client deserves its
	// answer even while the server winds down.
	if spec.IdempotencyKey != "" {
		if prev, ok := s.idem[idemKey(spec.Tenant, spec.IdempotencyKey)]; ok {
			if m := obs.Active(); m != nil {
				m.IdempotentReplay()
			}
			s.logf("job %s replayed for idempotency key %q (tenant %q)", prev.ID, spec.IdempotencyKey, spec.Tenant)
			return prev, true, nil
		}
	}
	if s.draining {
		return nil, false, ErrDraining
	}

	// Slot: the server-wide concurrent-session cap.
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, false, &RejectError{
			Reason:     fmt.Sprintf("server at max concurrent sessions (%d)", s.opt.MaxConcurrent),
			RetryAfter: s.opt.RetryAfter,
		}
	}

	// Tenant job-count cap.
	t := s.tenant(spec.Tenant)
	t.mu.Lock()
	if t.max > 0 && t.jobs+1 > t.max {
		t.mu.Unlock()
		<-s.slots
		return nil, false, &RejectError{
			Reason:     fmt.Sprintf("tenant %q at max concurrent jobs (%d)", spec.Tenant, t.max),
			RetryAfter: s.opt.RetryAfter,
		}
	}
	t.jobs++
	t.mu.Unlock()

	// Tenant budget: pre-charge the worst case, all-or-nothing.
	rn, re := reservation(spec)
	if err := t.budget.Spend(crowdmax.Naive, rn); err != nil {
		s.unadmit(t, 0, 0)
		return nil, false, &RejectError{
			Reason:     fmt.Sprintf("tenant %q budget: %v", spec.Tenant, err),
			RetryAfter: s.opt.RetryAfter,
		}
	}
	if err := t.budget.Spend(crowdmax.Expert, re); err != nil {
		s.unadmit(t, rn, 0)
		return nil, false, &RejectError{
			Reason:     fmt.Sprintf("tenant %q budget: %v", spec.Tenant, err),
			RetryAfter: s.opt.RetryAfter,
		}
	}

	j = &Job{
		ID:             s.nextID(),
		Spec:           spec,
		ReservedNaive:  rn,
		ReservedExpert: re,
		state:          StateQueued,
	}
	j.attachLog()
	j.touch()
	s.store.put(j)
	if err := s.store.persist(j); err != nil {
		s.unadmit(t, rn, re)
		return nil, false, err
	}
	if spec.IdempotencyKey != "" {
		s.idem[idemKey(spec.Tenant, spec.IdempotencyKey)] = j
	}
	scope := s.scope(j)
	scope.Event("job", obs.Fs("state", "queued"), obs.Fs("mode", spec.Mode),
		obs.Fs("tenant", spec.Tenant), obs.Fi("n", int64(spec.size())),
		obs.Fi("un", int64(spec.Un)), obs.Fi("reserved_naive", rn), obs.Fi("reserved_expert", re))
	s.wg.Add(1)
	go s.runJob(j, false)
	return j, false, nil
}

// unadmit rolls an admission back: slot, tenant job count, and any part of
// the budget reservation already charged.
func (s *Server) unadmit(t *tenant, rn, re int64) {
	t.budget.Refund(crowdmax.Naive, rn)
	t.budget.Refund(crowdmax.Expert, re)
	t.mu.Lock()
	t.jobs--
	t.mu.Unlock()
	<-s.slots
}

// nextID allocates the next job ID.
func (s *Server) nextID() string {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	s.seq++
	return fmt.Sprintf("j%08d", s.seq)
}

// scope returns the job's tracer scope: events written through it land in
// the job's streamable event log, in the obs JSONL wire format.
func (s *Server) scope(j *Job) *obs.Scope {
	return j.trace.Scope(j.ID, j.Spec.Seed)
}

// ckPath is the job's session-checkpoint file.
func (s *Server) ckPath(id string) string {
	return filepath.Join(s.opt.Dir, "ck", id+".ck")
}

// latencyWorker wraps a comparator with a fixed sleep per call, emulating a
// crowd round-trip. Answers are untouched, so determinism and resume
// invariants hold.
type latencyWorker struct {
	inner crowdmax.Comparator
	d     time.Duration
}

func (w *latencyWorker) Compare(a, b crowdmax.Item) crowdmax.Item {
	time.Sleep(w.d)
	return w.inner.Compare(a, b)
}

// uniformSet generates the job's uniform dataset from its derived stream.
func uniformSet(n int, r *crowdmax.Rand) *crowdmax.Set {
	return dataset.Uniform(n, 0, 1, r)
}

// session builds the job's Session: deterministic threshold workers with
// order-independent hash tie-breaking (the resume invariant), per-job
// checkpointing, graceful degradation, and progress hooks feeding the
// job's event stream.
func (s *Server) session(j *Job, set *crowdmax.Set, scope *obs.Scope) (*crowdmax.Session, error) {
	dn, err := set.DeltaForU(min(j.Spec.Un, set.Len()))
	if err != nil {
		return nil, err
	}
	de, err := set.DeltaForU(min(j.Spec.Ue, set.Len()))
	if err != nil {
		return nil, err
	}
	var naive crowdmax.Comparator = &crowdmax.ThresholdWorker{Delta: dn, Tie: crowdmax.HashTie{Seed: j.Spec.Seed}}
	var expert crowdmax.Comparator = &crowdmax.ThresholdWorker{Delta: de, Tie: crowdmax.HashTie{Seed: j.Spec.Seed + 1}}
	if s.opt.CmpLatency > 0 {
		naive = &latencyWorker{inner: naive, d: s.opt.CmpLatency}
		expert = &latencyWorker{inner: expert, d: s.opt.CmpLatency}
	}
	var valuer crowdmax.Valuer
	if j.Spec.Mode == ModeScore {
		// Cardinal votes from the same naive workforce: per-vote noise on
		// the order of the class's discernment threshold, deterministic per
		// (seed, element, vote) so parallel dispatch and checkpoint replay
		// reproduce identical votes.
		valuer = crowdmax.NoisyValuer{Sigma: dn, Seed: j.Spec.Seed + 2}
	}
	return crowdmax.NewSession(crowdmax.Config{
		Naive:  naive,
		Expert: expert,
		Valuer: valuer,
		Un:     j.Spec.Un,
		Prices: s.opt.Prices,
		Rand:   crowdmax.NewRand(j.Spec.Seed),
		Checkpoint: crowdmax.CheckpointConfig{
			Path:       s.ckPath(j.ID),
			Every:      s.opt.CheckpointEvery,
			FS:         s.fsys,
			OnSnapshot: j.touch,
		},
		Degrade: &crowdmax.DegradeConfig{},
		OnPhase: func(phase string, survivors []crowdmax.Item) {
			j.touch()
			scope.Event("phase", obs.Fs("phase", phase), obs.Fi("survivors", int64(len(survivors))))
			if j.Spec.Fault == FaultPanic {
				// Injected on the session goroutine so the torture harness
				// exercises the same recovery path a real workload bug would.
				panic(fmt.Sprintf("injected fault: panic in job %s at phase %s", j.ID, phase))
			}
		},
		OnDecision: func(d crowdmax.DegradeDecision) {
			j.touch()
			scope.Event("degrade", obs.Fs("point", d.Point), obs.Fs("from", d.From),
				obs.Fs("to", d.To), obs.Fi("dir", int64(d.Direction())))
		},
	})
}

// runJob executes one admitted job to a terminal or interrupted state. It
// owns the job's slot and waitgroup entry. A panicking workload — injected
// or real — is confined to its own job: the recover below settles it failed
// (full refund, since a panicked run produced no billable result) and the
// server keeps serving every other tenant.
func (s *Server) runJob(j *Job, resume bool) {
	defer s.wg.Done()
	defer func() { <-s.slots }()

	scope := s.scope(j)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if m := obs.Active(); m != nil {
			m.JobPanic()
		}
		stack := string(debug.Stack())
		scope.Event("panic", obs.Fs("value", fmt.Sprint(r)), obs.Fs("stack", stack))
		s.finishFailed(j, scope, crowdmax.Result{}, fmt.Errorf("panic: %v", r))
		s.logf("job %s panicked (isolated): %v\n%s", j.ID, r, stack)
	}()

	j.setState(StateRunning, "")
	s.persistJob(j)
	scope.Event("job", obs.Fs("state", "running"))

	set := buildSet(j.Spec)
	sess, err := s.session(j, set, scope)
	if err != nil {
		s.finishFailed(j, scope, crowdmax.Result{}, err)
		return
	}
	w, err := workloadOf(j.Spec)
	if err != nil {
		s.finishFailed(j, scope, crowdmax.Result{}, err)
		return
	}

	// The job's own deadline layers a timeout over the server context; the
	// degrade controller sees it (and sheds quality to beat it), and an
	// expiry that still cuts the run off settles as "expired" with the
	// partial spend billed.
	ctx := s.baseCtx
	if d := j.Spec.DeadlineSeconds; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(d*float64(time.Second)))
		defer cancel()
	}

	var res crowdmax.Result
	ck := s.ckPath(j.ID)
	if resume {
		if _, statErr := s.fsys.Stat(ck); statErr == nil {
			// ResumeWorkload pins the snapshot to the job's recorded mode: a
			// swapped checkpoint file fails instead of silently running a
			// different workload under this job's ID.
			res, err = sess.ResumeWorkload(ctx, w, ck, set.Items())
		} else {
			// Drained before the first snapshot landed: run fresh.
			res, err = sess.Run(ctx, w, set.Items())
		}
	} else {
		res, err = sess.Run(ctx, w, set.Items())
	}

	switch {
	case err == nil:
		s.finishDone(j, scope, res)
	case errors.Is(err, context.DeadlineExceeded):
		// Checked before Canceled: a WithTimeout expiry reports both through
		// errors.Is, and the deadline is the cause here.
		s.finishExpired(j, scope, res)
	case errors.Is(err, context.Canceled):
		// Only a drain cancels the base context: the job stops at its last
		// durable checkpoint, keeps its reservation, and resumes on restart.
		j.setState(StateInterrupted, "")
		scope.Event("job", obs.Fs("state", "interrupted"))
		j.events.close()
		s.persistJob(j)
		s.logf("job %s interrupted (drain); checkpoint %s", j.ID, ck)
	default:
		s.finishFailed(j, scope, res, err)
	}
}

// workloadOf maps an admitted job spec onto its session workload.
func workloadOf(sp JobSpec) (crowdmax.Workload, error) {
	switch sp.Mode {
	case ModeMax:
		return crowdmax.MaxFind(), nil
	case ModeTopK:
		return crowdmax.TopKWorkload(sp.K), nil
	case ModeScore:
		return crowdmax.ScoreWorkload(crowdmax.ScoreConfig{Votes: sp.Votes}), nil
	default:
		return nil, fmt.Errorf("job has unknown mode %q", sp.Mode)
	}
}

// finishDone settles a completed job: validate the guarantee labels — the
// overall one and, for ranked results, every rank's own — record the
// result, refund the unspent reservation, release the tenant, persist.
func (s *Server) finishDone(j *Job, scope *obs.Scope, res crowdmax.Result) {
	if strongest, ok := crowdmax.StrongestGuaranteeFor(res.Rung); !ok {
		s.finishFailed(j, scope, res, fmt.Errorf("result names unknown rung %q", res.Rung))
		return
	} else if res.Guarantee.Strength() > strongest.Strength() {
		s.finishFailed(j, scope, res, fmt.Errorf("label %q is stronger than rung %q can deliver", res.Guarantee, res.Rung))
		return
	}
	var ranked []RankedEntry // nil when empty, matching the record round trip
	for i, rr := range res.Ranked {
		if strongest, ok := crowdmax.StrongestGuaranteeFor(rr.Rung); !ok {
			s.finishFailed(j, scope, res, fmt.Errorf("rank %d names unknown rung %q", i+1, rr.Rung))
			return
		} else if rr.Guarantee.Strength() > strongest.Strength() {
			s.finishFailed(j, scope, res, fmt.Errorf("rank %d label %q is stronger than rung %q can deliver", i+1, rr.Guarantee, rr.Rung))
			return
		}
		ranked = append(ranked, RankedEntry{
			ID:        rr.Item.ID,
			Label:     rr.Item.Label,
			Value:     rr.Item.Value,
			Rung:      rr.Rung,
			Guarantee: string(rr.Guarantee),
		})
	}
	j.setResult(StateDone, JobResult{
		Mode:              j.Spec.Mode,
		BestID:            res.Best.ID,
		BestLabel:         res.Best.Label,
		BestValue:         res.Best.Value,
		Candidates:        len(res.Candidates),
		Ranked:            ranked,
		NaiveComparisons:  res.NaiveComparisons,
		ExpertComparisons: res.ExpertComparisons,
		Cost:              res.Cost,
		Rung:              res.Rung,
		Guarantee:         string(res.Guarantee),
	})
	j.mu.Lock()
	j.result.Phase1Complete = res.Phase1Complete
	j.mu.Unlock()
	scope.Event("job", obs.Fs("state", "done"), obs.Fs("mode", j.Spec.Mode),
		obs.Fs("rung", res.Rung), obs.Fs("guarantee", string(res.Guarantee)),
		obs.Fi("ranks", int64(len(res.Ranked))),
		obs.Fi("naive", res.NaiveComparisons), obs.Fi("expert", res.ExpertComparisons))
	// Close the stream before settling and persisting: followers of a
	// terminal job should not hang on a slow (possibly fault-retried) disk.
	j.events.close()
	s.settle(j, res)
	s.persistJob(j)
}

// finishExpired settles a job whose own deadline cut the run off: the
// partial spend is billed (the comparisons were bought), the rest of the
// reservation refunded, and the job lands terminal as "expired".
func (s *Server) finishExpired(j *Job, scope *obs.Scope, res crowdmax.Result) {
	if m := obs.Active(); m != nil {
		m.JobExpiry()
	}
	j.setResult(StateExpired, JobResult{
		Mode:              j.Spec.Mode,
		BestID:            res.Best.ID,
		BestLabel:         res.Best.Label,
		BestValue:         res.Best.Value,
		Candidates:        len(res.Candidates),
		NaiveComparisons:  res.NaiveComparisons,
		ExpertComparisons: res.ExpertComparisons,
		Cost:              res.Cost,
		Rung:              res.Rung,
		Guarantee:         string(res.Guarantee),
		Phase1Complete:    res.Phase1Complete,
	})
	scope.Event("job", obs.Fs("state", "expired"),
		obs.Fi("naive", res.NaiveComparisons), obs.Fi("expert", res.ExpertComparisons))
	j.events.close()
	s.settle(j, res)
	s.persistJob(j)
	s.logf("job %s expired at its deadline (%.3fs)", j.ID, j.Spec.DeadlineSeconds)
}

// finishFailed settles a failed job.
func (s *Server) finishFailed(j *Job, scope *obs.Scope, res crowdmax.Result, err error) {
	j.setState(StateFailed, err.Error())
	scope.Event("job", obs.Fs("state", "failed"), obs.Fs("error", err.Error()))
	j.events.close()
	s.settle(j, res)
	s.persistJob(j)
	s.logf("job %s failed: %v", j.ID, err)
}

// settle refunds the unspent part of the job's reservation (clamped at the
// actual spend, so a reservation can never be refunded past what was
// charged) and releases the tenant's job count. Settlement is exactly-once:
// a panic that unwinds through a finish path which already settled must not
// refund (or decrement the tenant) a second time.
func (s *Server) settle(j *Job, res crowdmax.Result) {
	if !j.settled.CompareAndSwap(false, true) {
		return
	}
	t := s.tenant(j.Spec.Tenant)
	if dn := j.ReservedNaive - res.NaiveComparisons; dn > 0 {
		t.budget.Refund(crowdmax.Naive, dn)
	}
	if de := j.ReservedExpert - res.ExpertComparisons; de > 0 {
		t.budget.Refund(crowdmax.Expert, de)
	}
	t.mu.Lock()
	t.jobs--
	t.mu.Unlock()
}

// persistJob persists the job record through a bounded seeded-jitter retry
// (the same backoff discipline the dispatch layer retries comparisons
// with). A record that still cannot be written is parked dirty — the
// in-memory state stays authoritative for clients, the next transition or
// the drain-time flush retries — rather than silently dropped.
func (s *Server) persistJob(j *Job) {
	h := fnv.New64a()
	h.Write([]byte(j.ID))
	bo := dispatch.NewBackoff(dispatch.RetryConfig{
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		Seed:        h.Sum64(),
	})
	var err error
	for attempt := 0; attempt < s.opt.PersistAttempts; attempt++ {
		if attempt > 0 {
			if m := obs.Active(); m != nil {
				m.PersistRetry()
			}
			time.Sleep(bo.Next())
		}
		if err = s.store.persist(j); err == nil {
			s.dirtyMu.Lock()
			delete(s.dirty, j.ID)
			s.dirtyMu.Unlock()
			return
		}
	}
	if m := obs.Active(); m != nil {
		m.PersistDeferred()
	}
	s.dirtyMu.Lock()
	s.dirty[j.ID] = j
	s.dirtyMu.Unlock()
	s.logf("persist of job %s deferred after %d attempts: %v", j.ID, s.opt.PersistAttempts, err)
}

// dirtyCount reports how many records are parked awaiting a rewrite.
func (s *Server) dirtyCount() int {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	return len(s.dirty)
}

// flushDirty retries every parked record once; called at drain, after all
// sessions have stopped mutating their jobs.
func (s *Server) flushDirty() {
	s.dirtyMu.Lock()
	pending := make([]*Job, 0, len(s.dirty))
	for _, j := range s.dirty {
		pending = append(pending, j)
	}
	s.dirtyMu.Unlock()
	for _, j := range pending {
		if err := s.store.persist(j); err != nil {
			s.logf("drain flush: job %s record still unwritable: %v", j.ID, err)
			continue
		}
		s.dirtyMu.Lock()
		delete(s.dirty, j.ID)
		s.dirtyMu.Unlock()
	}
}

// watchdog periodically flags running jobs that show no observable forward
// progress for Options.WatchdogAfter: no state change, phase, degrade
// decision, or checkpoint write. A stall is observability, not enforcement
// — the job keeps its slot (killing it could strand a checkpoint mid-write)
// but the flag surfaces in /healthz, the job view, and the metrics, where
// an operator or the torture harness can see it.
func (s *Server) watchdog() {
	interval := s.opt.WatchdogAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.opt.WatchdogAfter).UnixNano()
		for _, j := range s.store.all() {
			if j.State() != StateRunning {
				continue
			}
			last := j.progress.Load()
			if last == 0 || last >= cutoff {
				continue
			}
			if j.stalled.CompareAndSwap(false, true) {
				if m := obs.Active(); m != nil {
					m.JobStall()
				}
				s.scope(j).Event("stall", obs.Fi("idle_ms", (time.Now().UnixNano()-last)/int64(time.Millisecond)))
				s.logf("watchdog: job %s has made no progress for %s", j.ID, s.opt.WatchdogAfter)
			}
		}
	}
}

// recover rebuilds tenant state from the loaded records and schedules every
// non-terminal job for resume. Terminal jobs re-charge their actual spend
// to the tenant budget; non-terminal jobs re-charge their full reservation
// (Preload — restoring admitted spend cannot be refused) and re-enter the
// run pool behind a blocking slot acquire.
func (s *Server) recover() error {
	jobs, err := s.store.load(s.logf)
	if err != nil {
		return err
	}
	// Quarantined records still pin the ID sequence: a fresh job must never
	// reuse the identity of a record that was only moved aside, or a later
	// un-quarantine would collide two different jobs under one ID.
	if q, _, _ := s.store.health(); len(q) > 0 {
		for _, rec := range q {
			id, _, _ := strings.Cut(rec.Name, ".")
			if n, perr := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64); perr == nil && n > s.seq {
				s.seq = n
			}
		}
	}
	for _, j := range jobs {
		if n, perr := strconv.ParseInt(strings.TrimPrefix(j.ID, "j"), 10, 64); perr == nil && n > s.seq {
			s.seq = n
		}
		if k := j.Spec.IdempotencyKey; k != "" {
			// Terminal jobs included: a client retrying its POST after the
			// restart must still get its original job back, not a re-charge.
			s.idem[idemKey(j.Spec.Tenant, k)] = j
		}
		t := s.tenant(j.Spec.Tenant)
		if j.State().terminal() {
			// A settled job must never settle again on some later path.
			j.settled.Store(true)
			if r, ok := j.Result(); ok {
				t.budget.Preload(crowdmax.Naive, r.NaiveComparisons)
				t.budget.Preload(crowdmax.Expert, r.ExpertComparisons)
			}
			continue
		}
		t.budget.Preload(crowdmax.Naive, j.ReservedNaive)
		t.budget.Preload(crowdmax.Expert, j.ReservedExpert)
		t.mu.Lock()
		t.jobs++
		t.mu.Unlock()
		j.setState(StateInterrupted, "")
		// Non-fatal: a record that cannot be rewritten right now must not
		// keep the whole server from booting; the next transition retries.
		s.persistJob(j)
		s.logf("job %s recovered; resuming", j.ID)
		s.wg.Add(1)
		go func(j *Job) {
			select {
			case s.slots <- struct{}{}:
			case <-s.baseCtx.Done():
				// Drained again before a slot freed: stay interrupted.
				s.wg.Done()
				return
			}
			s.runJob(j, true)
		}(j)
	}
	return nil
}

// Job returns the job by ID, or nil.
func (s *Server) Job(id string) *Job { return s.store.get(id) }

// Jobs returns every job, sorted by ID.
func (s *Server) Jobs() []*Job { return s.store.all() }

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: admissions stop (Submit returns
// ErrDraining), every running session is cancelled — each stops at its last
// durable checkpoint and is persisted as interrupted — and Drain returns
// once all jobs have settled, or with ctx's error if they do not settle in
// time. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Sessions have stopped mutating their jobs: last chance to land any
		// record whose writes kept failing mid-run.
		s.flushDirty()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain did not settle in time: %w", ctx.Err())
	}
}

// Health is the server's damage report: what the store quarantined or swept
// at boot, how many records are parked dirty, and how many running jobs the
// watchdog currently flags.
type Health struct {
	Quarantined []QuarantinedRecord
	Unmovable   int
	SweptTmp    int
	Dirty       int
	Stalled     int
}

// Degraded reports whether the server is serving with known damage.
func (h Health) Degraded() bool {
	return len(h.Quarantined) > 0 || h.Unmovable > 0 || h.Dirty > 0
}

// Health snapshots the server's damage report.
func (s *Server) Health() Health {
	q, unmovable, swept := s.store.health()
	stalled := 0
	for _, j := range s.store.all() {
		if j.Stalled() {
			stalled++
		}
	}
	return Health{
		Quarantined: q,
		Unmovable:   unmovable,
		SweptTmp:    swept,
		Dirty:       s.dirtyCount(),
		Stalled:     stalled,
	}
}

// TenantUsage is one tenant's budget position for the audit endpoint.
type TenantUsage struct {
	Tenant     string   `json:"tenant"`
	Jobs       int      `json:"jobs"`
	SpentNaive *int64   `json:"spent_naive,omitempty"`
	SpentExp   *int64   `json:"spent_expert,omitempty"`
	SpentCost  *float64 `json:"spent_cost,omitempty"`
}

// TenantUsages reports every known tenant's live job count and cumulative
// budget spend (nil spends for unlimited tenants, which carry no budget).
// This is what lets an external auditor reconcile the books: after every
// job is terminal, a tenant's spend must equal the sum of its jobs'
// recorded comparisons.
func (s *Server) TenantUsages() []TenantUsage {
	s.tmu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.tmu.Unlock()
	sort.Strings(names)
	out := make([]TenantUsage, 0, len(names))
	for _, name := range names {
		t := s.tenant(name)
		t.mu.Lock()
		u := TenantUsage{Tenant: name, Jobs: t.jobs}
		t.mu.Unlock()
		if t.budget != nil {
			n := t.budget.Spent(crowdmax.Naive)
			e := t.budget.Spent(crowdmax.Expert)
			c := t.budget.SpentCost()
			u.SpentNaive, u.SpentExp, u.SpentCost = &n, &e, &c
		}
		out = append(out, u)
	}
	return out
}
