package service

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"crowdmax"
	"crowdmax/internal/checkpoint"
)

// testServer builds a server over a fresh state directory.
func testServer(t *testing.T, dir string, mutate func(*Options)) *Server {
	t.Helper()
	opt := Options{Dir: dir}
	if mutate != nil {
		mutate(&opt)
	}
	s, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !j.State().terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q after %s", j.ID, j.State(), timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobCompletesWithHonestLabel(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{N: 120, Seed: 7, Un: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %q (err %q), want done", st, j.Err())
	}
	res, ok := j.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	strongest, known := crowdmax.StrongestGuaranteeFor(res.Rung)
	if !known {
		t.Fatalf("result names unknown rung %q", res.Rung)
	}
	if crowdmax.Guarantee(res.Guarantee).Strength() > strongest.Strength() {
		t.Fatalf("label %q stronger than rung %q allows (%q)", res.Guarantee, res.Rung, strongest)
	}
	if res.NaiveComparisons <= 0 {
		t.Fatalf("no naive comparisons recorded: %+v", res)
	}
	if res.NaiveComparisons > j.ReservedNaive || res.ExpertComparisons > j.ReservedExpert {
		t.Fatalf("spend (%d, %d) exceeded reservation (%d, %d)",
			res.NaiveComparisons, res.ExpertComparisons, j.ReservedNaive, j.ReservedExpert)
	}
}

func TestExplicitItemsJob(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	items := make([]ItemSpec, 40)
	for i := range items {
		items[i] = ItemSpec{Label: "it", Value: float64(i) / 40}
	}
	items[17].Label, items[17].Value = "winner", 9.5
	j, err := s.Submit(JobSpec{Items: items, Seed: 3, Un: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	res, ok := j.Result()
	if !ok {
		t.Fatalf("state = %q err %q", j.State(), j.Err())
	}
	if res.BestLabel != "winner" {
		t.Fatalf("best = %q (value %g), want the planted winner", res.BestLabel, res.BestValue)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	for _, spec := range []JobSpec{
		{},                      // no instance
		{N: 1, Un: 1},           // too small
		{N: 100, Un: 0},         // un < 1
		{N: maxInstance + 1, Un: 4},
	} {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Submit(%+v) err = %v, want ErrBadRequest", spec, err)
		}
	}
}

func TestAdmissionSlotCap(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.MaxConcurrent = 1
		o.CmpLatency = 20 * time.Millisecond // hold the slot
	})
	defer s.Drain(context.Background())

	j1, err := s.Submit(JobSpec{N: 60, Seed: 1, Un: 4})
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	var rej *RejectError
	if _, err := s.Submit(JobSpec{N: 60, Seed: 2, Un: 4}); !errors.As(err, &rej) {
		t.Fatalf("second Submit err = %v, want RejectError", err)
	} else if !strings.Contains(rej.Reason, "max concurrent sessions") {
		t.Fatalf("rejection reason %q", rej.Reason)
	}
	waitTerminal(t, j1, 60*time.Second)
	// Slot released: a new submission is admitted again.
	if _, err := s.Submit(JobSpec{N: 60, Seed: 3, Un: 4}); err != nil {
		t.Fatalf("post-completion Submit: %v", err)
	}
}

func TestAdmissionTenantCaps(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.CmpLatency = 20 * time.Millisecond
		o.Tenants = map[string]TenantLimits{
			"jobs-capped": {MaxJobs: 1},
			"broke":       {MaxCost: 5}, // cannot cover any reservation
		}
	})
	defer s.Drain(context.Background())

	if _, err := s.Submit(JobSpec{Tenant: "jobs-capped", N: 60, Seed: 1, Un: 4}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	var rej *RejectError
	if _, err := s.Submit(JobSpec{Tenant: "jobs-capped", N: 60, Seed: 2, Un: 4}); !errors.As(err, &rej) {
		t.Fatalf("tenant job cap: err = %v, want RejectError", err)
	} else if !strings.Contains(rej.Reason, "max concurrent jobs") {
		t.Fatalf("rejection reason %q", rej.Reason)
	}
	if _, err := s.Submit(JobSpec{Tenant: "broke", N: 60, Seed: 3, Un: 4}); !errors.As(err, &rej) {
		t.Fatalf("tenant budget: err = %v, want RejectError", err)
	} else if !strings.Contains(rej.Reason, "budget") {
		t.Fatalf("rejection reason %q", rej.Reason)
	}
	// An unrelated tenant is unaffected.
	if _, err := s.Submit(JobSpec{Tenant: "solvent", N: 60, Seed: 4, Un: 4}); err != nil {
		t.Fatalf("unrelated tenant Submit: %v", err)
	}
}

func TestSettlementRefundsReservation(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.DefaultTenant = TenantLimits{MaxCost: 1e9}
	})
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{N: 100, Seed: 11, Un: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	res, ok := j.Result()
	if !ok {
		t.Fatalf("state %q err %q", j.State(), j.Err())
	}
	ten := s.tenant("default")
	if got := ten.budget.Spent(crowdmax.Naive); got != res.NaiveComparisons {
		t.Errorf("tenant naive spend after refund = %d, want the actual %d", got, res.NaiveComparisons)
	}
	if got := ten.budget.Spent(crowdmax.Expert); got != res.ExpertComparisons {
		t.Errorf("tenant expert spend after refund = %d, want the actual %d", got, res.ExpertComparisons)
	}
	if got := ten.budget.SpentCost(); math.Abs(got-res.Cost) > 1e-6 {
		t.Errorf("tenant monetary spend after refund = %g, want the actual cost %g", got, res.Cost)
	}
	ten.mu.Lock()
	jobs := ten.jobs
	ten.mu.Unlock()
	if jobs != 0 {
		t.Errorf("tenant job count after settlement = %d, want 0", jobs)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := s.Submit(JobSpec{N: 60, Seed: 1, Un: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain err = %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	j := &Job{
		ID: "j00000042",
		Spec: JobSpec{
			Tenant: "acme", N: 0, Seed: 99, Un: 6, Ue: 3,
			Items: []ItemSpec{{Label: "a", Value: 0.25}, {Value: 0.75}},
		},
		ReservedNaive:  1234,
		ReservedExpert: 567,
		state:          StateDone,
		result: &JobResult{
			BestID: 1, BestLabel: "b", BestValue: 0.75, Candidates: 3,
			NaiveComparisons: 100, ExpertComparisons: 9, Cost: 190,
			Rung: "expert-2maxfind", Guarantee: "2δe", Phase1Complete: true,
		},
	}
	j.attachLog()
	data := encodeRecord(j)
	got, err := decodeRecord(data)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if got.ID != j.ID || got.Spec.Tenant != "acme" || got.Spec.Seed != 99 ||
		got.Spec.Un != 6 || got.Spec.Ue != 3 || len(got.Spec.Items) != 2 ||
		got.Spec.Items[0] != j.Spec.Items[0] || got.Spec.Items[1] != j.Spec.Items[1] ||
		got.ReservedNaive != 1234 || got.ReservedExpert != 567 || got.state != StateDone {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.result == nil || *got.result != *j.result {
		t.Fatalf("result mismatch: %+v", got.result)
	}

	// Fail-closed on corruption: flip one payload byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40
	if _, err := decodeRecord(bad); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("corrupted record err = %v, want ErrCorrupt", err)
	}
	// Wrong magic (a session checkpoint is not a job record).
	wrong := append([]byte(nil), data...)
	copy(wrong, "CMCK")
	if _, err := decodeRecord(wrong); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("wrong-magic err = %v, want ErrCorrupt", err)
	}
}

func TestEventLogFollow(t *testing.T) {
	l := newEventLog()
	l.Write([]byte("one\n"))
	chunk, done, changed := l.since(0)
	if string(chunk) != "one\n" || done {
		t.Fatalf("since(0) = %q done=%v", chunk, done)
	}
	go func() {
		l.Write([]byte("two\n"))
		l.close()
	}()
	off := len(chunk)
	for {
		chunk, done, changed = l.since(off)
		off += len(chunk)
		if len(chunk) == 0 && done {
			break
		}
		if len(chunk) == 0 {
			<-changed
		}
	}
	all, _, _ := l.since(0)
	if string(all) != "one\ntwo\n" {
		t.Fatalf("final buffer %q", all)
	}
	l.close() // idempotent
}

func TestEventsCarryLifecycle(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())
	j, err := s.Submit(JobSpec{N: 80, Seed: 5, Un: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	buf, done, _ := j.events.since(0)
	if !done {
		t.Fatal("event log not closed after terminal state")
	}
	trace := string(buf)
	for _, want := range []string{
		`"ev":"job"`, `"state":"queued"`, `"state":"running"`, `"state":"done"`,
		`"ev":"phase"`, `"phase":"phase1"`, `"trial":"` + j.ID + `"`, `"seq":1,`,
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s:\n%s", want, trace)
		}
	}
}
