package service

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"crowdmax"
	"crowdmax/internal/checkpoint"
)

// testServer builds a server over a fresh state directory.
func testServer(t *testing.T, dir string, mutate func(*Options)) *Server {
	t.Helper()
	opt := Options{Dir: dir}
	if mutate != nil {
		mutate(&opt)
	}
	s, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !j.State().terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q after %s", j.ID, j.State(), timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobCompletesWithHonestLabel(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{N: 120, Seed: 7, Un: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %q (err %q), want done", st, j.Err())
	}
	res, ok := j.Result()
	if !ok {
		t.Fatal("done job has no result")
	}
	strongest, known := crowdmax.StrongestGuaranteeFor(res.Rung)
	if !known {
		t.Fatalf("result names unknown rung %q", res.Rung)
	}
	if crowdmax.Guarantee(res.Guarantee).Strength() > strongest.Strength() {
		t.Fatalf("label %q stronger than rung %q allows (%q)", res.Guarantee, res.Rung, strongest)
	}
	if res.NaiveComparisons <= 0 {
		t.Fatalf("no naive comparisons recorded: %+v", res)
	}
	if res.NaiveComparisons > j.ReservedNaive || res.ExpertComparisons > j.ReservedExpert {
		t.Fatalf("spend (%d, %d) exceeded reservation (%d, %d)",
			res.NaiveComparisons, res.ExpertComparisons, j.ReservedNaive, j.ReservedExpert)
	}
}

func TestExplicitItemsJob(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	items := make([]ItemSpec, 40)
	for i := range items {
		items[i] = ItemSpec{Label: "it", Value: float64(i) / 40}
	}
	items[17].Label, items[17].Value = "winner", 9.5
	j, err := s.Submit(JobSpec{Items: items, Seed: 3, Un: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	res, ok := j.Result()
	if !ok {
		t.Fatalf("state = %q err %q", j.State(), j.Err())
	}
	if res.BestLabel != "winner" {
		t.Fatalf("best = %q (value %g), want the planted winner", res.BestLabel, res.BestValue)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	for _, spec := range []JobSpec{
		{},              // no instance
		{N: 1, Un: 1},   // too small
		{N: 100, Un: 0}, // un < 1
		{N: maxInstance + 1, Un: 4},
	} {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Submit(%+v) err = %v, want ErrBadRequest", spec, err)
		}
	}
}

func TestAdmissionSlotCap(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.MaxConcurrent = 1
		o.CmpLatency = 20 * time.Millisecond // hold the slot
	})
	defer s.Drain(context.Background())

	j1, err := s.Submit(JobSpec{N: 60, Seed: 1, Un: 4})
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	var rej *RejectError
	if _, err := s.Submit(JobSpec{N: 60, Seed: 2, Un: 4}); !errors.As(err, &rej) {
		t.Fatalf("second Submit err = %v, want RejectError", err)
	} else if !strings.Contains(rej.Reason, "max concurrent sessions") {
		t.Fatalf("rejection reason %q", rej.Reason)
	}
	waitTerminal(t, j1, 60*time.Second)
	// Slot released: a new submission is admitted again.
	if _, err := s.Submit(JobSpec{N: 60, Seed: 3, Un: 4}); err != nil {
		t.Fatalf("post-completion Submit: %v", err)
	}
}

func TestAdmissionTenantCaps(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.CmpLatency = 20 * time.Millisecond
		o.Tenants = map[string]TenantLimits{
			"jobs-capped": {MaxJobs: 1},
			"broke":       {MaxCost: 5}, // cannot cover any reservation
		}
	})
	defer s.Drain(context.Background())

	if _, err := s.Submit(JobSpec{Tenant: "jobs-capped", N: 60, Seed: 1, Un: 4}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	var rej *RejectError
	if _, err := s.Submit(JobSpec{Tenant: "jobs-capped", N: 60, Seed: 2, Un: 4}); !errors.As(err, &rej) {
		t.Fatalf("tenant job cap: err = %v, want RejectError", err)
	} else if !strings.Contains(rej.Reason, "max concurrent jobs") {
		t.Fatalf("rejection reason %q", rej.Reason)
	}
	if _, err := s.Submit(JobSpec{Tenant: "broke", N: 60, Seed: 3, Un: 4}); !errors.As(err, &rej) {
		t.Fatalf("tenant budget: err = %v, want RejectError", err)
	} else if !strings.Contains(rej.Reason, "budget") {
		t.Fatalf("rejection reason %q", rej.Reason)
	}
	// An unrelated tenant is unaffected.
	if _, err := s.Submit(JobSpec{Tenant: "solvent", N: 60, Seed: 4, Un: 4}); err != nil {
		t.Fatalf("unrelated tenant Submit: %v", err)
	}
}

func TestSettlementRefundsReservation(t *testing.T) {
	s := testServer(t, t.TempDir(), func(o *Options) {
		o.DefaultTenant = TenantLimits{MaxCost: 1e9}
	})
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{N: 100, Seed: 11, Un: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	res, ok := j.Result()
	if !ok {
		t.Fatalf("state %q err %q", j.State(), j.Err())
	}
	ten := s.tenant("default")
	if got := ten.budget.Spent(crowdmax.Naive); got != res.NaiveComparisons {
		t.Errorf("tenant naive spend after refund = %d, want the actual %d", got, res.NaiveComparisons)
	}
	if got := ten.budget.Spent(crowdmax.Expert); got != res.ExpertComparisons {
		t.Errorf("tenant expert spend after refund = %d, want the actual %d", got, res.ExpertComparisons)
	}
	if got := ten.budget.SpentCost(); math.Abs(got-res.Cost) > 1e-6 {
		t.Errorf("tenant monetary spend after refund = %g, want the actual cost %g", got, res.Cost)
	}
	ten.mu.Lock()
	jobs := ten.jobs
	ten.mu.Unlock()
	if jobs != 0 {
		t.Errorf("tenant job count after settlement = %d, want 0", jobs)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := s.Submit(JobSpec{N: 60, Seed: 1, Un: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain err = %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	j := &Job{
		ID: "j00000042",
		Spec: JobSpec{
			Tenant: "acme", Mode: ModeTopK, K: 2, N: 0, Seed: 99, Un: 6, Ue: 3,
			Items: []ItemSpec{{Label: "a", Value: 0.25}, {Value: 0.75}},
		},
		ReservedNaive:  1234,
		ReservedExpert: 567,
		state:          StateDone,
		result: &JobResult{
			Mode: ModeTopK, BestID: 1, BestLabel: "b", BestValue: 0.75, Candidates: 3,
			Ranked: []RankedEntry{
				{ID: 1, Label: "b", Value: 0.75, Rung: "expert-2maxfind", Guarantee: "2δe"},
				{ID: 0, Label: "a", Value: 0.25, Rung: "naive-majority", Guarantee: "δn"},
			},
			NaiveComparisons: 100, ExpertComparisons: 9, Cost: 190,
			Rung: "naive-majority", Guarantee: "δn", Phase1Complete: true,
		},
	}
	j.attachLog()
	data := encodeRecord(j)
	got, err := decodeRecord(data)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if got.ID != j.ID || got.Spec.Tenant != "acme" || got.Spec.Seed != 99 ||
		got.Spec.Mode != ModeTopK || got.Spec.K != 2 ||
		got.Spec.Un != 6 || got.Spec.Ue != 3 || len(got.Spec.Items) != 2 ||
		got.Spec.Items[0] != j.Spec.Items[0] || got.Spec.Items[1] != j.Spec.Items[1] ||
		got.ReservedNaive != 1234 || got.ReservedExpert != 567 || got.state != StateDone {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.result == nil || !reflect.DeepEqual(*got.result, *j.result) {
		t.Fatalf("result mismatch: %+v", got.result)
	}

	// A version-1 record (pre-workload server) loads as mode "max" with no
	// fabricated ranked entries.
	v1 := encodeRecordV1(j)
	old, err := decodeRecord(v1)
	if err != nil {
		t.Fatalf("decode v1 record: %v", err)
	}
	if old.Spec.Mode != ModeMax || old.Spec.K != 0 || old.Spec.Votes != 0 {
		t.Fatalf("v1 spec decoded as mode=%q k=%d votes=%d, want max/0/0", old.Spec.Mode, old.Spec.K, old.Spec.Votes)
	}
	if old.result == nil || old.result.Mode != ModeMax || old.result.Ranked != nil {
		t.Fatalf("v1 result decoded as %+v, want mode max with no ranked entries", old.result)
	}
	// And re-persists as a valid current-version record.
	if _, err := decodeRecord(encodeRecord(old)); err != nil {
		t.Fatalf("re-encode of migrated v1 record: %v", err)
	}

	// Fail-closed on corruption: flip one payload byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40
	if _, err := decodeRecord(bad); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("corrupted record err = %v, want ErrCorrupt", err)
	}
	// Wrong magic (a session checkpoint is not a job record).
	wrong := append([]byte(nil), data...)
	copy(wrong, "CMCK")
	if _, err := decodeRecord(wrong); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("wrong-magic err = %v, want ErrCorrupt", err)
	}
}

// TestModesEndToEnd submits one job per workload mode to the same server and
// checks each completes with its mode's result shape and honest labels.
func TestModesEndToEnd(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())

	jm, err := s.Submit(JobSpec{N: 80, Seed: 7, Un: 5})
	if err != nil {
		t.Fatalf("Submit max: %v", err)
	}
	jt, err := s.Submit(JobSpec{Mode: ModeTopK, K: 3, N: 80, Seed: 7, Un: 5})
	if err != nil {
		t.Fatalf("Submit topk: %v", err)
	}
	js, err := s.Submit(JobSpec{Mode: ModeScore, Votes: 5, N: 80, Seed: 7, Un: 5})
	if err != nil {
		t.Fatalf("Submit score: %v", err)
	}
	for _, j := range []*Job{jm, jt, js} {
		waitTerminal(t, j, 60*time.Second)
		if st := j.State(); st != StateDone {
			t.Fatalf("job %s (mode %s) state %q err %q", j.ID, j.Spec.Mode, st, j.Err())
		}
	}

	rm, _ := jm.Result()
	if rm.Mode != ModeMax || rm.Ranked != nil {
		t.Fatalf("max result = %+v, want mode max with no ranked entries", rm)
	}

	rt, _ := jt.Result()
	if rt.Mode != ModeTopK || len(rt.Ranked) != 3 {
		t.Fatalf("topk result = %+v, want mode topk with 3 ranks", rt)
	}
	if rt.Ranked[0].ID != rt.BestID {
		t.Fatalf("topk rank 1 is %d, best is %d", rt.Ranked[0].ID, rt.BestID)
	}
	seen := map[int]bool{}
	for i, e := range rt.Ranked {
		if seen[e.ID] {
			t.Fatalf("topk rank %d repeats element %d", i+1, e.ID)
		}
		seen[e.ID] = true
		strongest, ok := crowdmax.StrongestGuaranteeFor(e.Rung)
		if !ok {
			t.Fatalf("topk rank %d names unknown rung %q", i+1, e.Rung)
		}
		if crowdmax.Guarantee(e.Guarantee).Strength() > strongest.Strength() {
			t.Fatalf("topk rank %d label %q stronger than rung %q allows", i+1, e.Guarantee, e.Rung)
		}
	}

	rs, _ := js.Result()
	if rs.Mode != ModeScore {
		t.Fatalf("score result mode = %q", rs.Mode)
	}
	if rs.Rung != "score-expert" || rs.Guarantee != "2δe@subset" {
		t.Fatalf("score result labeled %s/%s, want score-expert/2δe@subset", rs.Rung, rs.Guarantee)
	}
	if rs.NaiveComparisons < 80*5 {
		t.Fatalf("score run paid %d naive queries, want ≥ %d (n·votes)", rs.NaiveComparisons, 80*5)
	}

	// Mode-field validation is part of admission.
	for _, bad := range []JobSpec{
		{Mode: "rank", N: 10, Seed: 1, Un: 2},
		{Mode: ModeTopK, N: 10, Seed: 1, Un: 2},                 // k missing
		{Mode: ModeTopK, K: 11, N: 10, Seed: 1, Un: 2},          // k > n
		{K: 2, N: 10, Seed: 1, Un: 2},                           // k outside topk
		{Mode: ModeTopK, K: 2, Votes: 3, N: 10, Seed: 1, Un: 2}, // votes outside score
	} {
		if _, err := s.Submit(bad); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("Submit(%+v) err = %v, want ErrBadRequest", bad, err)
		}
	}
}

// encodeRecordV1 renders j in the version-1 record layout — the format
// pre-workload servers wrote — for migration tests.
func encodeRecordV1(j *Job) []byte {
	var b checkpoint.Builder
	b.Str(j.ID)
	b.Str(j.Spec.Tenant)
	b.I64(int64(j.Spec.N))
	b.U64(j.Spec.Seed)
	b.I64(int64(j.Spec.Un))
	b.I64(int64(j.Spec.Ue))
	b.I64(int64(len(j.Spec.Items)))
	for _, it := range j.Spec.Items {
		b.Str(it.Label)
		b.F64(it.Value)
	}
	b.I64(j.ReservedNaive)
	b.I64(j.ReservedExpert)
	b.Str(string(j.state))
	b.Str(j.errMsg)
	b.Bool(j.result != nil)
	if r := j.result; r != nil {
		b.I64(int64(r.BestID))
		b.Str(r.BestLabel)
		b.F64(r.BestValue)
		b.I64(int64(r.Candidates))
		b.I64(r.NaiveComparisons)
		b.I64(r.ExpertComparisons)
		b.F64(r.Cost)
		b.Str(r.Rung)
		b.Str(r.Guarantee)
		b.Bool(r.Phase1Complete)
	}
	return checkpoint.SealEnvelope(recordMagic, recordVersionPreModes, b.Bytes())
}

func TestEventLogFollow(t *testing.T) {
	l := newEventLog()
	l.Write([]byte("one\n"))
	chunk, done, changed := l.since(0)
	if string(chunk) != "one\n" || done {
		t.Fatalf("since(0) = %q done=%v", chunk, done)
	}
	go func() {
		l.Write([]byte("two\n"))
		l.close()
	}()
	off := len(chunk)
	for {
		chunk, done, changed = l.since(off)
		off += len(chunk)
		if len(chunk) == 0 && done {
			break
		}
		if len(chunk) == 0 {
			<-changed
		}
	}
	all, _, _ := l.since(0)
	if string(all) != "one\ntwo\n" {
		t.Fatalf("final buffer %q", all)
	}
	l.close() // idempotent
}

func TestEventsCarryLifecycle(t *testing.T) {
	s := testServer(t, t.TempDir(), nil)
	defer s.Drain(context.Background())
	j, err := s.Submit(JobSpec{N: 80, Seed: 5, Un: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	buf, done, _ := j.events.since(0)
	if !done {
		t.Fatal("event log not closed after terminal state")
	}
	trace := string(buf)
	for _, want := range []string{
		`"ev":"job"`, `"state":"queued"`, `"state":"running"`, `"state":"done"`,
		`"ev":"phase"`, `"phase":"phase1"`, `"trial":"` + j.ID + `"`, `"seq":1,`,
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s:\n%s", want, trace)
		}
	}
}
