package service

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"crowdmax/internal/checkpoint"
)

// storeShards is the fan-out of the in-memory job index. Sharding bounds
// lock contention when thousands of concurrent submissions and status polls
// hit the store; each shard has its own RWMutex and map.
const storeShards = 16

// store is the sharded, persistent job index. The in-memory maps are the
// read path; every durable transition additionally writes the job's record
// — one envelope-framed file per job, via the checkpoint codec's atomic
// write — so the set of records under dir is always a crash-consistent
// snapshot of the server's jobs.
type store struct {
	dir    string
	shards [storeShards]struct {
		sync.RWMutex
		m map[string]*Job
	}
}

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &store{dir: dir}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Job)
	}
	return st, nil
}

func (st *store) shard(id string) *struct {
	sync.RWMutex
	m map[string]*Job
} {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()%storeShards]
}

// put indexes the job in memory (no disk write; see persist).
func (st *store) put(j *Job) {
	sh := st.shard(j.ID)
	sh.Lock()
	sh.m[j.ID] = j
	sh.Unlock()
}

// get returns the job by ID, or nil.
func (st *store) get(id string) *Job {
	sh := st.shard(id)
	sh.RLock()
	defer sh.RUnlock()
	return sh.m[id]
}

// all returns every job, sorted by ID for stable listings.
func (st *store) all() []*Job {
	var out []*Job
	for i := range st.shards {
		sh := &st.shards[i]
		sh.RLock()
		for _, j := range sh.m {
			out = append(out, j)
		}
		sh.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// recordPath is the job's durable record file.
func (st *store) recordPath(id string) string {
	return filepath.Join(st.dir, id+".job")
}

// persist writes the job's current durable state atomically. Called at
// every state transition; a crash between transitions leaves the previous
// complete record behind.
func (st *store) persist(j *Job) error {
	if err := checkpoint.WriteFileAtomic(st.recordPath(j.ID), encodeRecord(j), 0o644); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	return nil
}

// load reads every record under dir into the store and returns the loaded
// jobs. A corrupt record fails the load — refusing to start beats silently
// dropping a tenant's job.
func (st *store) load() ([]*Job, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		j, err := decodeRecord(data)
		if err != nil {
			return nil, fmt.Errorf("service: record %s: %w", e.Name(), err)
		}
		st.put(j)
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}
