package service

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"crowdmax/internal/checkpoint"
	"crowdmax/internal/faults"
	"crowdmax/internal/obs"
)

// storeShards is the fan-out of the in-memory job index. Sharding bounds
// lock contention when thousands of concurrent submissions and status polls
// hit the store; each shard has its own RWMutex and map.
const storeShards = 16

// quarantineDir is where load moves records it cannot trust, under the
// store directory.
const quarantineDir = "quarantine"

// store is the sharded, persistent job index. The in-memory maps are the
// read path; every durable transition additionally writes the job's record
// — one envelope-framed file per job, via the checkpoint codec's atomic
// write — so the set of records under dir is always a crash-consistent
// snapshot of the server's jobs.
//
// All disk access goes through an injectable faults.FS, so every recovery
// path below is exercised under injected ENOSPC/EIO/torn-write faults.
type store struct {
	fsys   faults.FS
	dir    string
	shards [storeShards]struct {
		sync.RWMutex
		m map[string]*Job
	}

	// Load-time damage report, guarded by hmu: record files moved to
	// quarantine (with the reason), records that were corrupt but could not
	// even be moved aside, and orphaned temp files swept.
	hmu         sync.Mutex
	quarantined []QuarantinedRecord
	unmovable   int
	sweptTmp    int
}

// QuarantinedRecord is one record file moved aside at load.
type QuarantinedRecord struct {
	Name   string `json:"name"`
	Reason string `json:"reason"`
}

func newStore(fsys faults.FS, dir string) (*store, error) {
	if fsys == nil {
		fsys = faults.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &store{fsys: fsys, dir: dir}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Job)
	}
	return st, nil
}

func (st *store) shard(id string) *struct {
	sync.RWMutex
	m map[string]*Job
} {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()%storeShards]
}

// put indexes the job in memory (no disk write; see persist).
func (st *store) put(j *Job) {
	sh := st.shard(j.ID)
	sh.Lock()
	sh.m[j.ID] = j
	sh.Unlock()
}

// get returns the job by ID, or nil.
func (st *store) get(id string) *Job {
	sh := st.shard(id)
	sh.RLock()
	defer sh.RUnlock()
	return sh.m[id]
}

// all returns every job, sorted by ID for stable listings.
func (st *store) all() []*Job {
	var out []*Job
	for i := range st.shards {
		sh := &st.shards[i]
		sh.RLock()
		for _, j := range sh.m {
			out = append(out, j)
		}
		sh.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// recordPath is the job's durable record file.
func (st *store) recordPath(id string) string {
	return filepath.Join(st.dir, id+".job")
}

// persist writes the job's current durable state atomically. Called at
// every state transition; a crash between transitions leaves the previous
// complete record behind.
func (st *store) persist(j *Job) error {
	if err := checkpoint.WriteFileAtomicFS(st.fsys, st.recordPath(j.ID), encodeRecord(j), 0o644); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	return nil
}

// health reports the load-time damage: quarantined records, records that
// could not even be moved aside, and swept temp files.
func (st *store) health() (quarantined []QuarantinedRecord, unmovable, sweptTmp int) {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	return append([]QuarantinedRecord(nil), st.quarantined...), st.unmovable, st.sweptTmp
}

// degraded reports whether load found damage a client should know about.
func (st *store) degraded() bool {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	return len(st.quarantined) > 0 || st.unmovable > 0
}

// quarantine moves a record file the load cannot trust into the
// quarantine subdirectory — preserving the evidence while getting it out
// of the boot path — and accounts for it. When even the move fails (disk
// errors, read-only directory) the file is left in place and counted as
// unmovable; either way the server boots.
func (st *store) quarantine(name string, reason error, logf func(string, ...any)) {
	if m := obs.Active(); m != nil {
		m.StoreQuarantine()
	}
	src := filepath.Join(st.dir, name)
	qdir := filepath.Join(st.dir, quarantineDir)
	err := st.fsys.MkdirAll(qdir, 0o755)
	dst := filepath.Join(qdir, name)
	if err == nil {
		// Never clobber evidence from an earlier boot: pick the first
		// free numbered suffix.
		for i := 1; ; i++ {
			if _, serr := st.fsys.Stat(dst); serr != nil {
				break
			}
			dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
		}
		err = st.fsys.Rename(src, dst)
	}
	st.hmu.Lock()
	if err == nil {
		// Report the landed filename (suffix included), so the health
		// report names exactly the files sitting in quarantine/.
		st.quarantined = append(st.quarantined, QuarantinedRecord{Name: filepath.Base(dst), Reason: reason.Error()})
	} else {
		st.unmovable++
	}
	st.hmu.Unlock()
	if err != nil {
		logf("service: record %s is corrupt (%v) and could not be quarantined: %v", name, reason, err)
		return
	}
	logf("service: quarantined record %s: %v", name, reason)
}

// load reads every record under dir into the store and returns the loaded
// jobs. Damage does not refuse startup: corrupt, truncated, or
// unknown-kind records are moved to <dir>/quarantine/ (one tenant's
// poisoned record must not take every tenant's service down), duplicate
// job IDs are resolved deterministically — newest mtime wins, ties to the
// lexicographically larger filename, the loser quarantined — and orphaned
// temp files from writes interrupted mid-crash are swept. Only a failure
// to list the directory itself is fatal.
func (st *store) load(logf func(string, ...any)) ([]*Job, error) {
	entries, err := st.fsys.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	type candidate struct {
		name  string
		mtime int64
		job   *Job
	}
	best := make(map[string]candidate)
	swept := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.Contains(name, ".tmp-") {
			// A crash between CreateTemp and rename strands the temp file;
			// it holds at most an incomplete copy of a record that either
			// still exists or was never acknowledged.
			if rerr := st.fsys.Remove(filepath.Join(st.dir, name)); rerr != nil {
				logf("service: could not sweep orphaned temp file %s: %v", name, rerr)
			} else {
				swept++
			}
			continue
		}
		if !strings.HasSuffix(name, ".job") {
			continue
		}
		data, rerr := st.fsys.ReadFile(filepath.Join(st.dir, name))
		if rerr != nil {
			st.quarantine(name, rerr, logf)
			continue
		}
		j, derr := decodeRecord(data)
		if derr != nil {
			st.quarantine(name, derr, logf)
			continue
		}
		var mtime int64
		if info, ierr := e.Info(); ierr == nil {
			mtime = info.ModTime().UnixNano()
		}
		cand := candidate{name: name, mtime: mtime, job: j}
		prev, dup := best[j.ID]
		if !dup {
			best[j.ID] = cand
			continue
		}
		winner, loser := cand, prev
		if prev.mtime > cand.mtime || (prev.mtime == cand.mtime && prev.name > cand.name) {
			winner, loser = prev, cand
		}
		best[j.ID] = winner
		st.quarantine(loser.name, fmt.Errorf("duplicate record for job %s (kept %s)", j.ID, winner.name), logf)
	}
	// Damage from earlier boots stays on the books: files already sitting in
	// the quarantine directory are re-reported by every load, so /healthz
	// keeps saying "degraded" — and a post-crash audit can account for every
	// acknowledged job ID — until an operator inspects and clears them. The
	// obs counter is not re-bumped; it counted each file when it was moved.
	if qents, qerr := st.fsys.ReadDir(filepath.Join(st.dir, quarantineDir)); qerr == nil {
		st.hmu.Lock()
		fresh := make(map[string]bool, len(st.quarantined))
		for _, q := range st.quarantined {
			fresh[q.Name] = true
		}
		for _, e := range qents {
			if e.IsDir() || fresh[e.Name()] {
				continue
			}
			st.quarantined = append(st.quarantined, QuarantinedRecord{
				Name:   e.Name(),
				Reason: "quarantined by an earlier boot",
			})
		}
		st.hmu.Unlock()
	}
	st.hmu.Lock()
	st.sweptTmp = swept
	st.hmu.Unlock()
	if swept > 0 {
		if m := obs.Active(); m != nil {
			m.StoreTmpSweep(int64(swept))
		}
		logf("service: swept %d orphaned temp file(s) from %s", swept, st.dir)
	}
	jobs := make([]*Job, 0, len(best))
	for _, c := range best {
		st.put(c.job)
		jobs = append(jobs, c.job)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}
