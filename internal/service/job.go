// Package service turns the single-run crowdmax Session into a long-running
// multi-tenant max-finding service: an HTTP API over a pool of concurrent
// sessions, per-tenant admission control on worst-case budget reservations,
// durable job records in the checkpoint container format, and graceful
// drain that checkpoints in-flight jobs so a restart completes them with
// bit-identical answers and costs.
//
// # Admission as reservation
//
// The paper's closed-form bounds make admission control exact rather than
// heuristic: a job over n items with filter parameter un can never spend
// more than Phase1UpperBound(n, un) naïve comparisons plus the worst rung
// of the quality ladder in each class. Submit pre-charges that worst case
// against the tenant's budget — all-or-nothing, exactly like the in-run
// dispatch.Budget — and the difference between the reservation and the
// run's actual spend is refunded on completion. A submission the budget
// cannot cover is rejected up front with 429 + Retry-After, before a single
// comparison is bought.
//
// # Drain and recovery
//
// SIGTERM (Server.Drain) stops admissions, cancels every running session —
// cancellation is fatal even under the degrade controller, so each job
// stops at its last durable checkpoint — marks the jobs interrupted, and
// returns once every record is persisted. A new server over the same state
// directory reloads the records, rebuilds tenant budgets from them, and
// re-runs interrupted jobs through Session.Resume: memo replay makes the
// recovered results bit-identical to an uninterrupted run.
package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crowdmax"
	"crowdmax/internal/checkpoint"
	"crowdmax/internal/obs"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: admitted (slot and budget reservation held) but the
	// session has not started yet.
	StateQueued State = "queued"
	// StateRunning: the session is executing.
	StateRunning State = "running"
	// StateInterrupted: a drain stopped the session mid-run; the job keeps
	// its budget reservation and resumes from its checkpoint on restart.
	StateInterrupted State = "interrupted"
	// StateDone: the session completed; Result is set.
	StateDone State = "done"
	// StateFailed: the session returned a non-recoverable error; Err is set.
	StateFailed State = "failed"
	// StateExpired: the job's own deadline elapsed mid-run; the partial
	// result (whatever the degrade ladder could certify in the time it had)
	// is recorded and the unspent reservation refunded.
	StateExpired State = "expired"
)

// terminal reports whether the state is an endpoint of the lifecycle.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired
}

// ItemSpec is one explicit input element of a job.
type ItemSpec struct {
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
}

// JobSpec is the client-supplied description of one max-finding job. An
// instance is either generated (N > 0: a uniform dataset of N values derived
// from Seed, so the submission stays small and the restart can regenerate it
// verbatim) or explicit (Items). Both forms are persisted in the job record;
// together with Seed they make every job re-runnable bit-identically.
type JobSpec struct {
	// Tenant names the budget the job is billed to; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Mode selects the workload: "max" (default), "topk", or "score".
	Mode string `json:"mode,omitempty"`
	// K is the number of ranks a topk job extracts; required (≥ 1) for mode
	// "topk", invalid otherwise.
	K int `json:"k,omitempty"`
	// Votes is the per-element vote count of a score job; 0 uses the
	// engine default (3). Invalid outside mode "score".
	Votes int `json:"votes,omitempty"`
	// N requests a generated uniform instance of this size (ignored when
	// Items is set).
	N int `json:"n,omitempty"`
	// Items is the explicit instance; overrides N.
	Items []ItemSpec `json:"items,omitempty"`
	// Seed is the job's root random seed: it derives the generated dataset,
	// the worker tie-breaking, and the phase-2 randomness.
	Seed uint64 `json:"seed"`
	// Un is the filter parameter un(n) (required, ≥ 1).
	Un int `json:"un"`
	// Ue is the expert-class analogue used to derive the simulated expert's
	// threshold; defaults to max(1, Un/2).
	Ue int `json:"ue,omitempty"`
	// DeadlineSeconds bounds the job's wall-clock runtime; past it the run
	// is cut off and settles as "expired" with whatever partial answer the
	// degrade ladder certified. 0 means no per-job deadline.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// IdempotencyKey deduplicates retried submissions: a second POST with
	// the same (tenant, key) returns the job already admitted under it
	// instead of charging the budget again. Also settable via the
	// Idempotency-Key header.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Fault injects a failure into the job's own run for torture testing —
	// only honored when the server opts in (Options.AllowFaults). "panic"
	// panics the session goroutine mid-phase.
	Fault string `json:"fault,omitempty"`
}

// FaultPanic is the only recognized JobSpec.Fault value.
const FaultPanic = "panic"

// The service's job modes, mapped one-to-one onto session workloads.
const (
	ModeMax   = "max"
	ModeTopK  = "topk"
	ModeScore = "score"
)

// maxInstance bounds the accepted instance size; a service should not let
// one request allocate arbitrarily.
const maxInstance = 1 << 20

// normalize validates the spec and fills defaults in place.
func (sp *JobSpec) normalize() error {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if len(sp.Items) > 0 {
		sp.N = 0
	}
	n := sp.N + len(sp.Items)
	if n < 2 {
		return errors.New("instance needs at least 2 items (set n or items)")
	}
	if n > maxInstance {
		return fmt.Errorf("instance size %d exceeds the cap %d", n, maxInstance)
	}
	if sp.Un < 1 {
		return errors.New("un must be ≥ 1")
	}
	if sp.Ue < 0 {
		return errors.New("ue must be ≥ 0")
	}
	if sp.Ue == 0 {
		sp.Ue = max(1, sp.Un/2)
	}
	if sp.Mode == "" {
		sp.Mode = ModeMax
	}
	switch sp.Mode {
	case ModeMax, ModeScore:
		if sp.K != 0 {
			return fmt.Errorf("k is only valid for mode %q", ModeTopK)
		}
	case ModeTopK:
		if sp.K < 1 || sp.K > n {
			return fmt.Errorf("mode %q requires 1 ≤ k ≤ n, got k=%d n=%d", ModeTopK, sp.K, n)
		}
	default:
		return fmt.Errorf("unknown mode %q (want %q, %q or %q)", sp.Mode, ModeMax, ModeTopK, ModeScore)
	}
	if sp.Mode != ModeScore && sp.Votes != 0 {
		return fmt.Errorf("votes is only valid for mode %q", ModeScore)
	}
	if sp.Votes < 0 {
		return errors.New("votes must be ≥ 0")
	}
	if sp.DeadlineSeconds < 0 {
		return errors.New("deadline_seconds must be ≥ 0")
	}
	switch sp.Fault {
	case "", FaultPanic:
	default:
		return fmt.Errorf("unknown fault %q (want %q)", sp.Fault, FaultPanic)
	}
	return nil
}

// size returns the instance size.
func (sp *JobSpec) size() int {
	if len(sp.Items) > 0 {
		return len(sp.Items)
	}
	return sp.N
}

// RankedEntry is one rank of a topk job's result, with its own honesty
// label: each rank reports the rung that produced it and the guarantee that
// rung can vouch for.
type RankedEntry struct {
	ID        int     `json:"id"`
	Label     string  `json:"label,omitempty"`
	Value     float64 `json:"value"`
	Rung      string  `json:"rung"`
	Guarantee string  `json:"guarantee"`
}

// JobResult is the outcome of a completed job — the subset of
// crowdmax.Result the API reports and the record persists.
type JobResult struct {
	Mode              string        `json:"mode"`
	BestID            int           `json:"best_id"`
	BestLabel         string        `json:"best_label,omitempty"`
	BestValue         float64       `json:"best_value"`
	Candidates        int           `json:"candidates"`
	Ranked            []RankedEntry `json:"ranked,omitempty"`
	NaiveComparisons  int64         `json:"naive_comparisons"`
	ExpertComparisons int64         `json:"expert_comparisons"`
	Cost              float64       `json:"cost"`
	Rung              string        `json:"rung"`
	Guarantee         string        `json:"guarantee"`
	Phase1Complete    bool          `json:"phase1_complete"`
}

// Job is one submitted max-finding run. Mutable fields (state, result,
// error) are guarded by mu; the spec, ID, and reservation are immutable
// after admission.
type Job struct {
	// ID is the server-assigned job identifier.
	ID string
	// Spec is the admitted (normalized) submission.
	Spec JobSpec
	// ReservedNaive and ReservedExpert are the worst-case comparison counts
	// pre-charged to the tenant budget at admission; the unspent part is
	// refunded when the job reaches a terminal state.
	ReservedNaive, ReservedExpert int64

	mu     sync.Mutex
	state  State
	errMsg string
	result *JobResult

	// progress is the unix-nano timestamp of the job's last observable
	// forward motion (state transition, phase event, decision, checkpoint
	// write); the watchdog compares it against the stall threshold. stalled
	// latches the watchdog's verdict so each episode is flagged once.
	// settled guards the budget settlement: refunds must happen exactly once
	// even if a panic unwinds through a path that already settled.
	progress atomic.Int64
	stalled  atomic.Bool
	settled  atomic.Bool

	// events buffers the job's JSONL trace for streaming readers; trace is
	// the tracer writing into it (one per job, so event sequence numbers
	// run continuously across the job's lifecycle).
	events *eventLog
	trace  *obs.Tracer
}

// touch stamps the job's forward-progress clock and clears any stall flag.
func (j *Job) touch() {
	j.progress.Store(time.Now().UnixNano())
	j.stalled.Store(false)
}

// Stalled reports whether the watchdog currently flags the job.
func (j *Job) Stalled() bool { return j.stalled.Load() }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns a copy of the job's result and true when it completed.
func (j *Job) Result() (JobResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return JobResult{}, false
	}
	return *j.result, true
}

// Err returns the failure message of a failed job ("" otherwise).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// setState transitions the job's state (and error message, for
// StateFailed) under the job lock.
func (j *Job) setState(s State, errMsg string) {
	j.mu.Lock()
	j.state = s
	j.errMsg = errMsg
	j.mu.Unlock()
	j.touch()
}

// setResult records a completed run's outcome under state s (StateDone, or
// StateExpired for a deadline-cut partial answer).
func (j *Job) setResult(s State, r JobResult) {
	j.mu.Lock()
	j.state = s
	j.result = &r
	j.mu.Unlock()
	j.touch()
}

// attachLog gives the job a fresh event log and its tracer. Event history
// does not survive a restart — a recovered job's stream starts over with
// its recovery events.
func (j *Job) attachLog() {
	j.events = newEventLog()
	j.trace = obs.NewTracer(j.events)
}

// Job records are framed in the checkpoint container format under their own
// magic, so a bit-flipped or truncated record fails closed (ErrCorrupt)
// exactly like a session snapshot instead of resurrecting a corrupt job.
const (
	recordMagic = "CMJR"
	// recordVersion 3 appends the robustness fields (idempotency key,
	// deadline, fault tag). Version 2 appended the workload-mode fields
	// (spec mode/k/votes, result mode + per-rank entries); version-1
	// records from pre-workload servers load as mode "max".
	recordVersion          = 3
	recordVersionPreRobust = 2
	recordVersionPreModes  = 1
)

// encodeRecord renders the job's durable fields in the record format.
// Callers must not hold j.mu.
func encodeRecord(j *Job) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	var b checkpoint.Builder
	b.Str(j.ID)
	b.Str(j.Spec.Tenant)
	b.I64(int64(j.Spec.N))
	b.U64(j.Spec.Seed)
	b.I64(int64(j.Spec.Un))
	b.I64(int64(j.Spec.Ue))
	b.I64(int64(len(j.Spec.Items)))
	for _, it := range j.Spec.Items {
		b.Str(it.Label)
		b.F64(it.Value)
	}
	b.I64(j.ReservedNaive)
	b.I64(j.ReservedExpert)
	b.Str(string(j.state))
	b.Str(j.errMsg)
	b.Bool(j.result != nil)
	if r := j.result; r != nil {
		b.I64(int64(r.BestID))
		b.Str(r.BestLabel)
		b.F64(r.BestValue)
		b.I64(int64(r.Candidates))
		b.I64(r.NaiveComparisons)
		b.I64(r.ExpertComparisons)
		b.F64(r.Cost)
		b.Str(r.Rung)
		b.Str(r.Guarantee)
		b.Bool(r.Phase1Complete)
	}
	// Version-2 appendix: the workload-mode fields.
	b.Str(j.Spec.Mode)
	b.I64(int64(j.Spec.K))
	b.I64(int64(j.Spec.Votes))
	if r := j.result; r != nil {
		b.Str(r.Mode)
		b.I64(int64(len(r.Ranked)))
		for _, e := range r.Ranked {
			b.I64(int64(e.ID))
			b.Str(e.Label)
			b.F64(e.Value)
			b.Str(e.Rung)
			b.Str(e.Guarantee)
		}
	}
	// Version-3 appendix: the robustness fields.
	b.Str(j.Spec.IdempotencyKey)
	b.F64(j.Spec.DeadlineSeconds)
	b.Str(j.Spec.Fault)
	return checkpoint.SealEnvelope(recordMagic, recordVersion, b.Bytes())
}

// decodeRecord parses a job record, failing closed on any inconsistency.
// Version-1 records (pre-workload servers) decode as mode "max".
func decodeRecord(data []byte) (*Job, error) {
	body, ver, err := checkpoint.OpenEnvelopeAny(recordMagic, data)
	if err != nil {
		return nil, err
	}
	if ver < recordVersionPreModes || ver > recordVersion {
		return nil, fmt.Errorf("%w: unsupported job record version %d", checkpoint.ErrCorrupt, ver)
	}
	r := checkpoint.NewReader(body)
	j := &Job{}
	j.attachLog()
	j.ID = r.Str()
	j.Spec.Tenant = r.Str()
	j.Spec.N = int(r.I64())
	j.Spec.Seed = r.U64()
	j.Spec.Un = int(r.I64())
	j.Spec.Ue = int(r.I64())
	if n := r.Count(9); n > 0 { // ≥ 8-byte value + 1-byte length per item
		j.Spec.Items = make([]ItemSpec, n)
		for i := range j.Spec.Items {
			j.Spec.Items[i] = ItemSpec{Label: r.Str(), Value: r.F64()}
		}
	}
	j.ReservedNaive = r.I64()
	j.ReservedExpert = r.I64()
	j.state = State(r.Str())
	j.errMsg = r.Str()
	if r.Bool() {
		res := &JobResult{}
		res.BestID = int(r.I64())
		res.BestLabel = r.Str()
		res.BestValue = r.F64()
		res.Candidates = int(r.I64())
		res.NaiveComparisons = r.I64()
		res.ExpertComparisons = r.I64()
		res.Cost = r.F64()
		res.Rung = r.Str()
		res.Guarantee = r.Str()
		res.Phase1Complete = r.Bool()
		j.result = res
	}
	if ver >= recordVersionPreRobust {
		j.Spec.Mode = r.Str()
		j.Spec.K = int(r.I64())
		j.Spec.Votes = int(r.I64())
		if j.result != nil {
			j.result.Mode = r.Str()
			if n := r.Count(40); n > 0 { // two numbers + three string length prefixes per entry
				j.result.Ranked = make([]RankedEntry, n)
				for i := range j.result.Ranked {
					j.result.Ranked[i] = RankedEntry{
						ID:        int(r.I64()),
						Label:     r.Str(),
						Value:     r.F64(),
						Rung:      r.Str(),
						Guarantee: r.Str(),
					}
				}
			}
		}
	}
	if ver >= recordVersion {
		j.Spec.IdempotencyKey = r.Str()
		j.Spec.DeadlineSeconds = r.F64()
		j.Spec.Fault = r.Str()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if j.Spec.Mode == "" {
		// Pre-workload record: every job was a max-find.
		j.Spec.Mode = ModeMax
		if j.result != nil {
			j.result.Mode = ModeMax
		}
	}
	switch j.state {
	case StateQueued, StateRunning, StateInterrupted, StateDone, StateFailed, StateExpired:
	default:
		return nil, fmt.Errorf("%w: record names unknown state %q", checkpoint.ErrCorrupt, j.state)
	}
	switch j.Spec.Mode {
	case ModeMax, ModeTopK, ModeScore:
	default:
		return nil, fmt.Errorf("%w: record names unknown mode %q", checkpoint.ErrCorrupt, j.Spec.Mode)
	}
	return j, nil
}

// buildSet materializes the job's problem instance: the explicit items, or
// the uniform dataset its seed derives. Both are pure functions of the
// persisted spec, which is what lets a restarted server regenerate the
// exact instance a checkpoint fingerprints (Resume verifies the items
// hash).
func buildSet(sp JobSpec) *crowdmax.Set {
	if len(sp.Items) > 0 {
		items := make([]crowdmax.Item, len(sp.Items))
		for i, it := range sp.Items {
			items[i] = crowdmax.Item{ID: i, Label: it.Label, Value: it.Value}
		}
		return crowdmax.NewSetItems(items)
	}
	return uniformSet(sp.N, crowdmax.NewRand(sp.Seed).Child("data"))
}
