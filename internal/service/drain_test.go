package service

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"
)

// TestDrainResumeBitIdentical is the service-layer restatement of the PR 4/5
// resume invariant: a job interrupted by a drain and resumed by a fresh
// server over the same state directory must finish with the same answer,
// paid counts, and cost as an uninterrupted run of the same spec.
func TestDrainResumeBitIdentical(t *testing.T) {
	spec := JobSpec{N: 200, Seed: 42, Un: 6}

	// Reference: the uninterrupted run.
	ref := testServer(t, t.TempDir(), nil)
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatalf("reference Submit: %v", err)
	}
	waitTerminal(t, rj, 60*time.Second)
	want, ok := rj.Result()
	if !ok {
		t.Fatalf("reference state %q err %q", rj.State(), rj.Err())
	}
	if err := ref.Drain(context.Background()); err != nil {
		t.Fatalf("reference Drain: %v", err)
	}

	// Interrupted leg: same spec, slowed so the drain lands mid-run.
	dir := t.TempDir()
	s1 := testServer(t, dir, func(o *Options) {
		o.CmpLatency = 2 * time.Millisecond
		o.CheckpointEvery = 16
	})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for the run to be genuinely in flight: the start snapshot lands
	// immediately, then give it a few comparison round-trips.
	ck := s1.ckPath(j1.ID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ck); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := j1.State(); st != StateInterrupted {
		// The run may have finished before the drain; that would make this
		// test vacuous rather than wrong — fail so the timing gets fixed.
		t.Fatalf("state after drain = %q, want interrupted", st)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}

	// Recovery: a fresh server over the same directory resumes the job
	// (full speed — latency only served to catch the drain mid-run).
	s2 := testServer(t, dir, nil)
	defer s2.Drain(context.Background())
	j2 := s2.Job(j1.ID)
	if j2 == nil {
		t.Fatalf("job %s not reloaded", j1.ID)
	}
	waitTerminal(t, j2, 60*time.Second)
	got, ok := j2.Result()
	if !ok {
		t.Fatalf("resumed state %q err %q", j2.State(), j2.Err())
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed result diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}

	// The record on disk agrees with memory after the final persist. Drain
	// first: the terminal persist may still be in flight (or parked dirty)
	// when the in-memory state flips; drain is the durability point.
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	reloaded, err := os.ReadFile(s2.store.recordPath(j2.ID))
	if err != nil {
		t.Fatalf("read final record: %v", err)
	}
	dec, err := decodeRecord(reloaded)
	if err != nil {
		t.Fatalf("decode final record: %v", err)
	}
	if dec.state != StateDone || dec.result == nil || !reflect.DeepEqual(*dec.result, want) {
		t.Fatalf("persisted record %+v (result %+v) does not match %+v", dec, dec.result, want)
	}
}

// TestRecoveryRestoresTenantAccounting checks that a restart rebuilds the
// tenant budget from the records: completed jobs charge their actual spend,
// interrupted jobs their full reservation.
func TestRecoveryRestoresTenantAccounting(t *testing.T) {
	dir := t.TempDir()
	s1 := testServer(t, dir, func(o *Options) {
		o.DefaultTenant = TenantLimits{MaxCost: 1e9}
	})
	j, err := s1.Submit(JobSpec{N: 100, Seed: 8, Un: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j, 30*time.Second)
	res, _ := j.Result()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2 := testServer(t, dir, func(o *Options) {
		o.DefaultTenant = TenantLimits{MaxCost: 1e9}
	})
	defer s2.Drain(context.Background())
	ten := s2.tenant("default")
	if got := ten.budget.Spent(0); got != res.NaiveComparisons {
		t.Errorf("restored naive spend = %d, want %d", got, res.NaiveComparisons)
	}
	// The completed job must not count against the tenant's job cap.
	ten.mu.Lock()
	jobs := ten.jobs
	ten.mu.Unlock()
	if jobs != 0 {
		t.Errorf("restored job count = %d, want 0", jobs)
	}
	// And the next ID does not collide with the reloaded one.
	j2, err := s2.Submit(JobSpec{N: 60, Seed: 9, Un: 4})
	if err != nil {
		t.Fatalf("post-restart Submit: %v", err)
	}
	if j2.ID == j.ID {
		t.Fatalf("ID collision after restart: %s", j2.ID)
	}
}
