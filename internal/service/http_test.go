package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func httpServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	s := testServer(t, t.TempDir(), mutate)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(context.Background())
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

func TestHTTPSubmitAndStatus(t *testing.T) {
	_, ts := httpServer(t, nil)

	resp := postJob(t, ts, `{"n": 80, "seed": 4, "un": 4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var accepted struct{ ID, Status, Events string }
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if accepted.ID == "" || !strings.HasPrefix(accepted.Status, "/v1/jobs/") {
		t.Fatalf("submit response %+v", accepted)
	}

	// Poll until done, through the API only.
	var view jobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + accepted.Status)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status code = %d", r.StatusCode)
		}
		view = jobView{}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		r.Body.Close()
		if view.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("terminal view %+v", view)
	}
	if view.Result.Guarantee == "" || view.Result.Rung == "" {
		t.Fatalf("result misses guarantee/rung: %+v", view.Result)
	}

	// The follow stream terminates (log closed) and carries the lifecycle.
	r, err := http.Get(ts.URL + accepted.Events + "?follow=1")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	events, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type %q", ct)
	}
	for _, want := range []string{`"state":"queued"`, `"state":"done"`, `"ev":"phase"`} {
		if !strings.Contains(string(events), want) {
			t.Errorf("event stream missing %s:\n%s", want, events)
		}
	}

	// List includes the job.
	r, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	var list struct{ Jobs []jobView }
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	r.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != accepted.ID {
		t.Fatalf("list %+v", list)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := httpServer(t, func(o *Options) {
		o.MaxConcurrent = 1
		o.CmpLatency = 20 * time.Millisecond
	})

	// Malformed and invalid bodies.
	if resp := postJob(t, ts, `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
	if resp := postJob(t, ts, `{"n": 1, "un": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status = %d", resp.StatusCode)
	}
	if resp := postJob(t, ts, `{"n": 50, "un": 4, "bogus": true}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", resp.StatusCode)
	}

	// Unknown job.
	r, _ := http.Get(ts.URL + "/v1/jobs/j99999999")
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("missing job status = %d", r.StatusCode)
	}
	r.Body.Close()

	// Capacity: the first job holds the only slot, the second gets 429
	// with a Retry-After hint.
	if resp := postJob(t, ts, `{"n": 60, "seed": 1, "un": 4}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	resp := postJob(t, ts, `{"n": 60, "seed": 2, "un": 4}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
}

func TestHTTPHealthzAndDrain(t *testing.T) {
	s, ts := httpServer(t, nil)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	var health struct {
		Status string
		Jobs   map[string]int
	}
	if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	r.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz status %q", health.Status)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	r, _ = http.Get(ts.URL + "/healthz")
	health.Status = ""
	json.NewDecoder(r.Body).Decode(&health) //nolint:errcheck
	r.Body.Close()
	if health.Status != "draining" {
		t.Fatalf("post-drain healthz status %q", health.Status)
	}
	resp := postJob(t, ts, `{"n": 60, "un": 4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The debug endpoints are mounted.
	r, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	if r.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status = %d", r.StatusCode)
	}
	r.Body.Close()
}
