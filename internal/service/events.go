package service

import (
	"sync"
)

// eventLog buffers one job's JSONL event trace and lets readers stream it
// with follow semantics. The obs.Tracer writes into it (it is an io.Writer),
// so the wire format of GET /v1/jobs/{id}/events is exactly the tracer's
// JSONL — the same format maxcrowd -trace-out writes to disk.
//
// Follow readers block on a change channel that is closed and replaced on
// every append; close() closes the final channel and leaves it in place, so
// late readers drain the buffer and return immediately.
type eventLog struct {
	mu      sync.Mutex
	buf     []byte
	changed chan struct{}
	done    bool
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// Write appends one (or more) trace lines. Implements io.Writer for the
// tracer; never fails.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	l.buf = append(l.buf, p...)
	if !l.done {
		close(l.changed)
		l.changed = make(chan struct{})
	}
	l.mu.Unlock()
	return len(p), nil
}

// close marks the log complete and wakes every waiting reader. Idempotent.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.done {
		l.done = true
		close(l.changed)
	}
	l.mu.Unlock()
}

// since returns the bytes appended past off, whether the log is complete,
// and a channel that is closed on the next change (already closed when the
// log is complete). The returned slice aliases the internal buffer, which
// is append-only — safe to read, never mutated in place.
func (l *eventLog) since(off int) (chunk []byte, done bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off < len(l.buf) {
		chunk = l.buf[off:]
	}
	return chunk, l.done, l.changed
}
