package core

import (
	"context"
	"fmt"

	"crowdmax/internal/item"
	"crowdmax/internal/tournament"
)

// BracketOptions configures TournamentMax.
type BracketOptions struct {
	// Repetitions is the number of independent answers collected per
	// match, aggregated by majority (ties broken by asking once more).
	// Must be odd; defaults to 1.
	Repetitions int
}

// TournamentMax is the classic single-elimination ("bracket") tournament
// baseline discussed in the paper's related work (Venetis et al.'s static
// tournaments): elements are paired round by round, each match decided by a
// majority over Repetitions independent answers, until one element remains.
// Odd elements receive a bye.
//
// It performs exactly (n − 1)·Repetitions comparisons and ⌈log2 n⌉ logical
// steps — the cheapest and most parallel of the baselines — but under the
// threshold model its winner can be up to ⌈log2 n⌉·δ below the maximum in
// the worst case (each round can lose δ), and under the probabilistic model
// a single early upset eliminates the maximum; repetition helps against the
// latter and is useless against the former. This contrast with Algorithm 1
// is the paper's thesis in miniature.
//
// On cancellation or budget exhaustion the first element of the current
// round — a survivor of every completed round — is returned alongside the
// error.
func TournamentMax(ctx context.Context, items []item.Item, o *tournament.Oracle, opt BracketOptions) (item.Item, error) {
	if len(items) == 0 {
		return item.Item{}, ErrNoItems
	}
	rep := opt.Repetitions
	if rep <= 0 {
		rep = 1
	}
	if rep%2 == 0 {
		return item.Item{}, fmt.Errorf("core: bracket repetitions must be odd, got %d", rep)
	}
	if rep > 1 && o.Memoized() {
		// A memoized oracle replays the first answer, silently collapsing
		// the majority vote to a single sample.
		return item.Item{}, fmt.Errorf("core: bracket repetitions require a non-memoized oracle")
	}

	round := make([]item.Item, len(items))
	copy(round, items)
	// Arena-style: the pair, winner, and survivor buffers are sized once
	// from the first (largest) round and reused by every later round, as is
	// the batch scratch — the loop itself allocates nothing.
	pairs := make([][2]item.Item, 0, len(round)/2*rep)
	winners := make([]item.Item, 0, len(round)/2*rep)
	next := make([]item.Item, 0, (len(round)+1)/2)
	var scratch tournament.BatchScratch
	for len(round) > 1 {
		// One logical step per round: all matches (with all their
		// repetitions) are independent.
		pairs = pairs[:0]
		for i := 0; i+1 < len(round); i += 2 {
			for v := 0; v < rep; v++ {
				pairs = append(pairs, [2]item.Item{round[i], round[i+1]})
			}
		}
		winners = winners[:len(pairs)]
		if err := o.CompareBatchInto(ctx, pairs, winners, &scratch); err != nil {
			return round[0], err
		}
		next = next[:0]
		p := 0
		for i := 0; i+1 < len(round); i += 2 {
			votesA := 0
			for v := 0; v < rep; v++ {
				if winners[p].ID == round[i].ID {
					votesA++
				}
				p++
			}
			if 2*votesA > rep {
				next = append(next, round[i])
			} else {
				next = append(next, round[i+1])
			}
		}
		if len(round)%2 == 1 {
			next = append(next, round[len(round)-1]) // bye
		}
		round, next = next, round[:0] // double-buffer swap
	}
	return round[0], nil
}

// BracketComparisons returns the exact comparison count of TournamentMax on
// n elements with the given repetitions: (n − 1)·rep.
func BracketComparisons(n, repetitions int) int {
	if repetitions < 1 {
		repetitions = 1
	}
	if n < 1 {
		return 0
	}
	return (n - 1) * repetitions
}
