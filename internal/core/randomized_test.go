package core

import (
	"context"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func TestRandomizedEdges(t *testing.T) {
	r := rng.New(1)
	o := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	if _, err := RandomizedMaxFind(context.Background(), nil, o, RandomizedOptions{R: r}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := RandomizedMaxFind(context.Background(), []item.Item{{ID: 0}, {ID: 1}}, o, RandomizedOptions{}); err == nil {
		t.Fatal("nil RNG accepted")
	}
	single := []item.Item{{ID: 5, Value: 2}}
	got, err := RandomizedMaxFind(context.Background(), single, o, RandomizedOptions{R: r})
	if err != nil || got.ID != 5 {
		t.Fatalf("singleton: %v, %v", got, err)
	}
}

func TestRandomizedTruthfulFindsMax(t *testing.T) {
	root := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		n := 2 + r.Intn(400)
		s := dataset.Uniform(n, 0, 1, r)
		o := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
		got, err := RandomizedMaxFind(context.Background(), s.Items(), o, RandomizedOptions{R: r})
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != s.Max().ID {
			t.Fatalf("trial %d (n=%d): returned rank %d", trial, n, s.Rank(got.ID))
		}
	}
}

func TestRandomizedGuaranteeUnderThresholdModel(t *testing.T) {
	// Lemma 4 / Ajtai et al. Theorem 4: d(M, e) ≤ 3δ w.h.p. We check all
	// trials stay within 3δ (failures are polynomially unlikely and the
	// seeds are fixed).
	root := rng.New(3)
	for trial := 0; trial < 15; trial++ {
		r := root.ChildN("t", trial)
		n := 50 + r.Intn(300)
		delta := 0.05
		s := dataset.Uniform(n, 0, 1, r)
		w := &worker.Threshold{Delta: delta, Tie: worker.RandomTie{R: r}, R: r}
		o := tournament.NewOracle(w, worker.Expert, nil, nil)
		got, err := RandomizedMaxFind(context.Background(), s.Items(), o, RandomizedOptions{R: r, C: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d := item.Distance(s.Max(), got); d > 3*delta {
			t.Fatalf("trial %d: d(M, e) = %g > 3δ = %g", trial, d, 3*delta)
		}
	}
}

func TestRandomizedLinearButHugeConstants(t *testing.T) {
	// The Section 4.1.2 observation that drives the paper's choice of
	// 2-MaxFind in practice: Algorithm 5 performs (much) more comparisons
	// than 2-MaxFind at practical sizes, despite its linear asymptotics.
	r := rng.New(4)
	n := 500
	s := dataset.Uniform(n, 0, 1, r)

	lRand := cost.NewLedger()
	w1 := &worker.Threshold{Delta: 0.02, Tie: worker.RandomTie{R: r.Child("a")}, R: r.Child("a")}
	oRand := tournament.NewOracle(w1, worker.Expert, lRand, nil)
	if _, err := RandomizedMaxFind(context.Background(), s.Items(), oRand, RandomizedOptions{R: r.Child("ra"), C: 1}); err != nil {
		t.Fatal(err)
	}

	lTwo := cost.NewLedger()
	w2 := &worker.Threshold{Delta: 0.02, Tie: worker.RandomTie{R: r.Child("b")}, R: r.Child("b")}
	oTwo := tournament.NewOracle(w2, worker.Expert, lTwo, nil)
	if _, err := TwoMaxFind(context.Background(), s.Items(), oTwo); err != nil {
		t.Fatal(err)
	}

	if lRand.Expert() <= lTwo.Expert() {
		t.Fatalf("expected Algorithm 5 (%d) to cost more than 2-MaxFind (%d) at n=%d",
			lRand.Expert(), lTwo.Expert(), n)
	}
}

func TestRandomizedDefaultC(t *testing.T) {
	r := rng.New(5)
	s := dataset.Uniform(50, 0, 1, r)
	o := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	// C = 0 falls back to 1; must work and find the max with a truthful
	// oracle.
	got, err := RandomizedMaxFind(context.Background(), s.Items(), o, RandomizedOptions{R: r, C: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != s.Max().ID {
		t.Fatalf("rank %d returned", s.Rank(got.ID))
	}
}

func TestRandomizedDoesNotMutateInput(t *testing.T) {
	r := rng.New(6)
	s := dataset.Uniform(80, 0, 1, r)
	in := s.Items()
	want := s.Items()
	o := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	if _, err := RandomizedMaxFind(context.Background(), in, o, RandomizedOptions{R: r}); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != want[i] {
			t.Fatal("input slice mutated")
		}
	}
}
