package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func TestTournamentMaxValidation(t *testing.T) {
	o := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
	if _, err := TournamentMax(context.Background(), nil, o, BracketOptions{}); err == nil {
		t.Fatal("empty input accepted")
	}
	s := dataset.Uniform(8, 0, 1, rng.New(1))
	if _, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{Repetitions: 2}); err == nil {
		t.Fatal("even repetitions accepted")
	}
	memoized := tournament.NewOracle(worker.Truth, worker.Naive, nil, tournament.NewMemo())
	if _, err := TournamentMax(context.Background(), s.Items(), memoized, BracketOptions{Repetitions: 3}); err == nil {
		t.Fatal("memoized oracle with repetitions accepted")
	}
}

func TestTournamentMaxTruthfulExact(t *testing.T) {
	root := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		r := root.ChildN("t", trial)
		n := 1 + r.Intn(200)
		s := dataset.Uniform(n, 0, 1, r)
		o := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
		got, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != s.Max().ID {
			t.Fatalf("trial %d (n=%d): bracket returned rank %d", trial, n, s.Rank(got.ID))
		}
	}
}

func TestTournamentMaxComparisonCount(t *testing.T) {
	root := rng.New(3)
	f := func(nRaw, repRaw uint8) bool {
		n := int(nRaw)%100 + 1
		rep := 2*(int(repRaw)%4) + 1 // 1, 3, 5, 7
		s := dataset.Uniform(n, 0, 1, root)
		l := cost.NewLedger()
		o := tournament.NewOracle(worker.NewProbabilistic(0.2, root), worker.Naive, l, nil)
		if _, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{Repetitions: rep}); err != nil {
			return false
		}
		// Exactly (n − 1)·rep comparisons, always.
		return l.Naive() == int64(BracketComparisons(n, rep))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTournamentMaxLogicalSteps(t *testing.T) {
	s := dataset.Uniform(64, 0, 1, rng.New(4))
	l := cost.NewLedger()
	o := tournament.NewOracle(worker.Truth, worker.Naive, l, nil)
	if _, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{}); err != nil {
		t.Fatal(err)
	}
	// 64 elements → exactly log2(64) = 6 rounds.
	if l.Steps() != 6 {
		t.Fatalf("steps = %d, want 6", l.Steps())
	}
}

func TestTournamentMaxRepetitionHelpsProbabilisticModel(t *testing.T) {
	// Under the probabilistic model, repetitions push per-match accuracy
	// toward 1, so the bracket finds the max far more often.
	root := rng.New(5)
	trials := 150
	success := func(rep int) int {
		wins := 0
		for trial := 0; trial < trials; trial++ {
			r := root.ChildN("t", trial*100+rep)
			s := dataset.Uniform(64, 0, 1, r.Child("data"))
			o := tournament.NewOracle(worker.NewProbabilistic(0.2, r.Child("w")), worker.Naive, nil, nil)
			got, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{Repetitions: rep})
			if err != nil {
				t.Fatal(err)
			}
			if got.ID == s.Max().ID {
				wins++
			}
		}
		return wins
	}
	single := success(1)
	nine := success(9)
	if nine <= single {
		t.Fatalf("repetition did not help under the probabilistic model: %d vs %d of %d",
			single, nine, trials)
	}
	if nine < trials*3/4 {
		t.Fatalf("9 repetitions should make the bracket reliable, got %d/%d", nine, trials)
	}
}

func TestTournamentMaxRepetitionUselessUnderThreshold(t *testing.T) {
	// The paper's thesis: under the threshold model, indistinguishable
	// matches stay coin flips no matter how many repetitions — on an
	// all-indistinguishable instance the bracket returns the true max no
	// more often than chance among the finalists, with 1 or 9 repetitions
	// alike.
	root := rng.New(6)
	s, err := dataset.AdversarialIndistinguishable(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	trials := 200
	success := func(rep int) int {
		wins := 0
		for trial := 0; trial < trials; trial++ {
			r := root.ChildN("t", trial*100+rep)
			w := &worker.Threshold{Delta: 1, Tie: worker.RandomTie{R: r}, R: r}
			o := tournament.NewOracle(w, worker.Naive, nil, nil)
			got, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{Repetitions: rep})
			if err != nil {
				t.Fatal(err)
			}
			if got.ID == s.Max().ID {
				wins++
			}
		}
		return wins
	}
	single, nine := success(1), success(9)
	// Both hover around 1/64 ≈ 3 wins; neither should be meaningfully
	// better (allow generous noise; the point is nine ≉ trials).
	if nine > trials/4 {
		t.Fatalf("repetitions beat indistinguishability: %d/%d", nine, trials)
	}
	if diff := float64(nine-single) / float64(trials); math.Abs(diff) > 0.15 {
		t.Fatalf("repetitions changed threshold-model success rate: %d vs %d", single, nine)
	}
}

func TestTournamentMaxOddField(t *testing.T) {
	// Odd field sizes exercise the bye path; with a truthful oracle the
	// max still always wins.
	for _, n := range []int{3, 5, 7, 31, 33} {
		s := dataset.Uniform(n, 0, 1, rng.New(uint64(n)))
		o := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
		got, err := TournamentMax(context.Background(), s.Items(), o, BracketOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != s.Max().ID {
			t.Fatalf("n=%d: bye handling broke the bracket", n)
		}
	}
}

func TestTournamentMaxSingleton(t *testing.T) {
	o := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
	got, err := TournamentMax(context.Background(), []item.Item{{ID: 9, Value: 4}}, o, BracketOptions{})
	if err != nil || got.ID != 9 {
		t.Fatalf("singleton: %v, %v", got, err)
	}
}

func TestBracketComparisons(t *testing.T) {
	if BracketComparisons(0, 3) != 0 || BracketComparisons(1, 3) != 0 {
		t.Fatal("degenerate counts wrong")
	}
	if BracketComparisons(64, 1) != 63 || BracketComparisons(64, 7) != 441 {
		t.Fatal("counts wrong")
	}
	if BracketComparisons(10, 0) != 9 {
		t.Fatal("repetition clamp wrong")
	}
}
