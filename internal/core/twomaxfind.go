package core

import (
	"context"
	"math"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

// twoMaxState carries one 2-MaxFind run's loop state, shared by both
// schedules so the sample/eliminate round cannot drift between them.
type twoMaxState struct {
	k          int
	sc         *obs.Scope
	candidates []item.Item
	leader     item.Item
	round      int
	beaten     map[int]bool // reused across rounds
}

// crownPivot scores a sample tournament: the top-by-wins element becomes the
// round's pivot/leader, and x's tournament victims are removed from the
// candidate set directly — those comparisons were already performed and must
// not be re-asked (their answers could flip below the threshold). Returns
// the remaining candidates the pivot pass runs over.
func (st *twoMaxState) crownPivot(sample []item.Item, res tournament.Result) (item.Item, []item.Item) {
	x := res.TopByWins()
	st.leader = x
	if st.beaten == nil {
		st.beaten = make(map[int]bool, len(sample))
	} else {
		clear(st.beaten)
	}
	for i := range sample {
		for _, w := range res.Losers[i] {
			if w == x.ID {
				st.beaten[sample[i].ID] = true
			}
		}
	}
	remaining := st.candidates[:0]
	for _, c := range st.candidates {
		if !st.beaten[c.ID] {
			remaining = append(remaining, c)
		}
	}
	return x, remaining
}

// finishRound folds a pivot pass's survivors back into the loop state.
func (st *twoMaxState) finishRound(before int, survivors []item.Item) {
	st.candidates = survivors
	if st.sc != nil {
		st.sc.Round()
		st.sc.Event("2maxfind.round",
			obs.Fi("round", int64(st.round)), obs.Fi("candidates", int64(before)),
			obs.Fi("survivors", int64(len(survivors))))
	}
	st.round++
}

// TwoMaxFind is Algorithm 3 (2-MaxFind, from Ajtai et al. Section 3.1): a
// deterministic max-finding algorithm that, under the threshold model
// T(δ, 0), returns an element within 2δ of the maximum using O(s^{3/2})
// comparisons on s elements. It runs the lockstep reference schedule; see
// TwoMaxFindWith for the scheduler knob.
//
// While more than ⌈√s⌉ candidates remain, an arbitrary set of ⌈√s⌉
// candidates plays an all-play-all tournament; the element x with the most
// wins is compared against every candidate, and candidates losing to x are
// eliminated. A final all-play-all tournament among the at most ⌈√s⌉
// survivors returns the element with the most wins.
//
// The sample-tournament results are reused in the elimination pass (the
// first Appendix A optimization): besides saving comparisons, this is what
// guarantees progress — and hence the O(s^{3/2}) bound — even against
// adversarial tie-breaking, because x's tournament victims stay eliminated.
//
// On cancellation or budget exhaustion the current leader — the most recent
// round's pivot, i.e. the best element identified so far — is returned
// alongside the error, so a truncated run still yields a usable answer.
func TwoMaxFind(ctx context.Context, items []item.Item, o *tournament.Oracle) (item.Item, error) {
	return TwoMaxFindWith(ctx, items, o, sched.Lockstep)
}

// TwoMaxFindWith is TwoMaxFind under an explicit comparison schedule.
//
// 2-MaxFind is a true dependency chain — the pivot pass needs the sample
// tournament's winner, and the next round's sample needs the pivot pass's
// survivors — so unlike Filter there is no round-merging win: the DAG
// schedule dispatches the same two steps per round (its dependency edges
// simply express the chain). Both schedules ask the identical comparison
// sequence and bill identically.
func TwoMaxFindWith(ctx context.Context, items []item.Item, o *tournament.Oracle, kind sched.Kind) (item.Item, error) {
	s := len(items)
	if s == 0 {
		return item.Item{}, ErrNoItems
	}
	if s == 1 {
		return items[0], nil
	}
	k := int(math.Ceil(math.Sqrt(float64(s))))
	if k < 2 {
		k = 2
	}
	sc := o.Obs().WithPhase(obs.PhaseTwoMaxFind)
	var startLedger cost.Snapshot
	if sc != nil {
		startLedger = o.LedgerSnapshot()
		sc.Event("2maxfind.start", obs.Fi("s", int64(s)), obs.Fi("k", int64(k)))
	}
	st := &twoMaxState{k: k, sc: sc, candidates: make([]item.Item, s)}
	copy(st.candidates, items)
	st.leader = st.candidates[0]

	var (
		final tournament.Result
		err   error
	)
	if kind == sched.DAG {
		final, err = twoMaxDAG(ctx, o, st)
	} else {
		final, err = twoMaxLockstep(ctx, o, st)
	}
	if err != nil {
		return st.leader, err
	}
	if sc != nil {
		d := o.LedgerSnapshot().Sub(startLedger)
		sc.PhaseComparisons(d.Comparisons)
		sc.Event("2maxfind.done",
			obs.Fi("rounds", int64(st.round)), obs.Fi("finalists", int64(len(st.candidates))),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("memo_hits", d.TotalMemoHits()))
	}
	return final.TopByWins(), nil
}

// twoMaxLockstep is the reference schedule: each round is two sequential
// batches (sample tournament, then pivot pass).
func twoMaxLockstep(ctx context.Context, o *tournament.Oracle, st *twoMaxState) (tournament.Result, error) {
	for len(st.candidates) > st.k {
		before := len(st.candidates)
		sample := st.candidates[:st.k]
		res, err := tournament.RoundRobinWith(ctx, sample, o, tournament.RoundRobinOpts{RecordLosers: true})
		if err != nil {
			return tournament.Result{}, err
		}
		x, remaining := st.crownPivot(sample, res)
		survivors, _, err := tournament.PivotPass(ctx, x, remaining, o)
		if err != nil {
			return tournament.Result{}, err
		}
		st.finishRound(before, survivors)
	}
	return tournament.RoundRobin(ctx, st.candidates, o)
}

// twoMaxDAG runs the same chain on the work-frontier dispatcher: each
// completion hook enqueues the one successor its results unlock, so every
// wave holds exactly one node and the step count matches lockstep — the
// chain is the DAG's critical path.
func twoMaxDAG(ctx context.Context, o *tournament.Oracle, st *twoMaxState) (tournament.Result, error) {
	f := sched.NewFrontier(o)
	var final tournament.Result
	var enqueue func()
	enqueue = func() {
		if len(st.candidates) <= st.k {
			// The final tournament; its result is the answer.
			f.AddRoundRobin(st.candidates, tournament.RoundRobinOpts{}, func(res tournament.Result) error {
				final = res
				return nil
			})
			return
		}
		before := len(st.candidates)
		sample := st.candidates[:st.k]
		f.AddRoundRobin(sample, tournament.RoundRobinOpts{RecordLosers: true}, func(res tournament.Result) error {
			x, remaining := st.crownPivot(sample, res)
			f.AddPivot(x, remaining, func(survivors []item.Item, _ []int) error {
				st.finishRound(before, survivors)
				enqueue()
				return nil
			})
			return nil
		})
	}
	enqueue()
	if err := f.Run(ctx); err != nil {
		return tournament.Result{}, err
	}
	return final, nil
}
