package core

import (
	"context"
	"math"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/tournament"
)

// TwoMaxFind is Algorithm 3 (2-MaxFind, from Ajtai et al. Section 3.1): a
// deterministic max-finding algorithm that, under the threshold model
// T(δ, 0), returns an element within 2δ of the maximum using O(s^{3/2})
// comparisons on s elements.
//
// While more than ⌈√s⌉ candidates remain, an arbitrary set of ⌈√s⌉
// candidates plays an all-play-all tournament; the element x with the most
// wins is compared against every candidate, and candidates losing to x are
// eliminated. A final all-play-all tournament among the at most ⌈√s⌉
// survivors returns the element with the most wins.
//
// The sample-tournament results are reused in the elimination pass (the
// first Appendix A optimization): besides saving comparisons, this is what
// guarantees progress — and hence the O(s^{3/2}) bound — even against
// adversarial tie-breaking, because x's tournament victims stay eliminated.
//
// On cancellation or budget exhaustion the current leader — the most recent
// round's pivot, i.e. the best element identified so far — is returned
// alongside the error, so a truncated run still yields a usable answer.
func TwoMaxFind(ctx context.Context, items []item.Item, o *tournament.Oracle) (item.Item, error) {
	s := len(items)
	if s == 0 {
		return item.Item{}, ErrNoItems
	}
	if s == 1 {
		return items[0], nil
	}
	k := int(math.Ceil(math.Sqrt(float64(s))))
	if k < 2 {
		k = 2
	}
	sc := o.Obs().WithPhase(obs.PhaseTwoMaxFind)
	var startLedger cost.Snapshot
	if sc != nil {
		startLedger = o.LedgerSnapshot()
		sc.Event("2maxfind.start", obs.Fi("s", int64(s)), obs.Fi("k", int64(k)))
	}
	candidates := make([]item.Item, s)
	copy(candidates, items)

	leader := candidates[0]
	round := 0
	for len(candidates) > k {
		before := len(candidates)
		sample := candidates[:k]
		res, err := tournament.RoundRobinWith(ctx, sample, o, tournament.RoundRobinOpts{RecordLosers: true})
		if err != nil {
			return leader, err
		}
		x := res.TopByWins()
		leader = x

		// Eliminate x's tournament victims directly: those comparisons
		// were already performed and must not be re-asked (their answers
		// could flip below the threshold).
		beaten := make(map[int]bool)
		for i := range sample {
			for _, w := range res.Losers[i] {
				if w == x.ID {
					beaten[sample[i].ID] = true
				}
			}
		}
		remaining := candidates[:0]
		for _, c := range candidates {
			if !beaten[c.ID] {
				remaining = append(remaining, c)
			}
		}
		candidates, _, err = tournament.PivotPass(ctx, x, remaining, o)
		if err != nil {
			return leader, err
		}
		if sc != nil {
			sc.Round()
			sc.Event("2maxfind.round",
				obs.Fi("round", int64(round)), obs.Fi("candidates", int64(before)),
				obs.Fi("survivors", int64(len(candidates))))
		}
		round++
	}

	final, err := tournament.RoundRobin(ctx, candidates, o)
	if err != nil {
		return leader, err
	}
	if sc != nil {
		d := o.LedgerSnapshot().Sub(startLedger)
		sc.PhaseComparisons(d.Comparisons)
		sc.Event("2maxfind.done",
			obs.Fi("rounds", int64(round)), obs.Fi("finalists", int64(len(candidates))),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("memo_hits", d.TotalMemoHits()))
	}
	return final.TopByWins(), nil
}
