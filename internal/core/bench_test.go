package core

import (
	"context"
	"fmt"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// Ablation benchmarks for the design choices called out in DESIGN.md:
// memoization (Appendix A opt. 1), cross-iteration loss counters (opt. 2),
// phase-2 algorithm choice, and tie-break policy. Each reports
// comparisons/op — the metric the paper's cost model prices — alongside
// wall-clock time.

func benchInstance(b *testing.B, n, un, ue int, seed uint64) (dataset.Calibrated, *rng.Source) {
	b.Helper()
	r := rng.New(seed)
	cal, err := dataset.UniformCalibrated(n, un, ue, r.Child("data"))
	if err != nil {
		b.Fatal(err)
	}
	return cal, r
}

func BenchmarkFilter(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		for _, variant := range []struct {
			name        string
			memo        bool
			trackLosses bool
		}{
			{"plain", false, false},
			{"memo", true, false},
			{"losses", false, true},
			{"memo+losses", true, true},
		} {
			b.Run(fmt.Sprintf("n%d/%s", n, variant.name), func(b *testing.B) {
				cal, r := benchInstance(b, n, 10, 5, 2015)
				items := cal.Set.Items()
				var totalComparisons int64
				for i := 0; i < b.N; i++ {
					ledger := cost.NewLedger()
					w := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r}, R: r}
					var memo *tournament.Memo
					if variant.memo {
						memo = tournament.NewMemo()
					}
					o := tournament.NewOracle(w, worker.Naive, ledger, memo)
					if _, err := Filter(context.Background(), items, o, FilterOptions{Un: 10, TrackLosses: variant.trackLosses}); err != nil {
						b.Fatal(err)
					}
					totalComparisons += ledger.Naive()
				}
				b.ReportMetric(float64(totalComparisons)/float64(b.N), "comparisons/op")
			})
		}
	}
}

func BenchmarkPhase2(b *testing.B) {
	// The paper's Section 4.1.2 trade-off: all-play-all vs 2-MaxFind vs
	// randomized on candidate sets of realistic sizes.
	for _, s := range []int{19, 99, 499} {
		for _, variant := range []struct {
			name string
			algo Phase2Algorithm
		}{
			{"allplayall", Phase2AllPlayAll},
			{"twomaxfind", Phase2TwoMaxFind},
			{"randomized", Phase2Randomized},
		} {
			b.Run(fmt.Sprintf("s%d/%s", s, variant.name), func(b *testing.B) {
				r := rng.New(7)
				set := dataset.Uniform(s, 0, 1, r.Child("data"))
				items := set.Items()
				var totalComparisons int64
				for i := 0; i < b.N; i++ {
					ledger := cost.NewLedger()
					w := &worker.Threshold{Delta: 0.01, Tie: worker.RandomTie{R: r}, R: r}
					o := tournament.NewOracle(w, worker.Expert, ledger, nil)
					if _, err := RunPhase2(context.Background(), items, o, variant.algo, RandomizedOptions{R: r.ChildN("p2", i)}); err != nil {
						b.Fatal(err)
					}
					totalComparisons += ledger.Expert()
				}
				b.ReportMetric(float64(totalComparisons)/float64(b.N), "comparisons/op")
			})
		}
	}
}

func BenchmarkTwoMaxFindTieBreak(b *testing.B) {
	// Average vs worst case: random tie-breaking on random data vs the
	// pivot-loses adversary on an all-indistinguishable instance.
	const n = 1000
	b.Run("random", func(b *testing.B) {
		r := rng.New(3)
		set := dataset.Uniform(n, 0, 1, r.Child("data"))
		items := set.Items()
		var total int64
		for i := 0; i < b.N; i++ {
			ledger := cost.NewLedger()
			w := &worker.Threshold{Delta: 0.01, Tie: worker.RandomTie{R: r}, R: r}
			o := tournament.NewOracle(w, worker.Expert, ledger, nil)
			if _, err := TwoMaxFind(context.Background(), items, o); err != nil {
				b.Fatal(err)
			}
			total += ledger.Expert()
		}
		b.ReportMetric(float64(total)/float64(b.N), "comparisons/op")
	})
	b.Run("adversarial", func(b *testing.B) {
		set, err := dataset.AdversarialIndistinguishable(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		items := set.Items()
		r := rng.New(4)
		var total int64
		for i := 0; i < b.N; i++ {
			ledger := cost.NewLedger()
			w := &worker.Threshold{Delta: 1, Tie: worker.FirstLosesTie{}, R: r}
			o := tournament.NewOracle(w, worker.Expert, ledger, nil)
			if _, err := TwoMaxFind(context.Background(), items, o); err != nil {
				b.Fatal(err)
			}
			total += ledger.Expert()
		}
		b.ReportMetric(float64(total)/float64(b.N), "comparisons/op")
	})
}

func BenchmarkFindMaxEndToEnd(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			cal, r := benchInstance(b, n, 10, 5, 9)
			items := cal.Set.Items()
			for i := 0; i < b.N; i++ {
				nw := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r}, R: r}
				ew := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: r}, R: r}
				no := tournament.NewOracle(nw, worker.Naive, nil, nil)
				eo := tournament.NewOracle(ew, worker.Expert, nil, nil)
				if _, err := FindMax(context.Background(), items, no, eo, FindMaxOptions{Un: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEstimateUn(b *testing.B) {
	cal, r := benchInstance(b, 2000, 15, 5, 13)
	items := cal.Set.Items()
	for i := 0; i < b.N; i++ {
		w := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r}, R: r}
		o := tournament.NewOracle(w, worker.Naive, nil, nil)
		if _, err := EstimateUn(context.Background(), items, o, EstimateUnOptions{Perr: 0.5, N: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}
