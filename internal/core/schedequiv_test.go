package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// The scheduler-equivalence property: for every algorithm, every seed, and
// every termination mode (completion, budget exhaustion, mid-phase
// cancellation), the DAG schedule must produce bit-identical answers, paid
// comparison counts, memo hits, and monetary cost to the lockstep reference
// — because on the element-wise dispatch path both schedules ask the
// underlying comparator the exact same comparison sequence. Only the
// logical-step count may differ, and only downward.
//
// The workers here are deliberately STATEFUL (stream-driven random
// tie-breaking): if the DAG schedule reordered, dropped, or duplicated even
// one comparison, the tie stream would desynchronize and the fingerprints
// would diverge. That makes this a much sharper test than one with
// order-independent workers.

// schedOutcome fingerprints one run for cross-scheduler comparison. Steps is
// kept separately: it is the one quantity the schedules are allowed (and
// expected) to disagree on.
type schedOutcome struct {
	answer string // algorithm-specific answer fingerprint, incl. error text
	naive  int64
	expert int64
	memo   int64
	cost   float64
	steps  int64
}

// equal ignores steps; see above.
func (a schedOutcome) equal(b schedOutcome) bool {
	return a.answer == b.answer && a.naive == b.naive && a.expert == b.expert &&
		a.memo == b.memo && a.cost == b.cost
}

func (a schedOutcome) String() string {
	return fmt.Sprintf("{answer=%s naive=%d expert=%d memo=%d cost=%g steps=%d}",
		a.answer, a.naive, a.expert, a.memo, a.cost, a.steps)
}

// schedRig is one run's fixture: fresh ledger, memoized oracles, and
// stateful seeded workers, built identically for both schedules.
type schedRig struct {
	ledger *cost.Ledger
	naive  *tournament.Oracle
	expert *tournament.Oracle
	prices cost.Prices
	items  []item.Item
	r      *rng.Source
}

// newSchedRig builds the fixture for one (seed, scheduler) run. The naive
// comparator is wrapped by wrapNaive when non-nil (the cancellation tests
// hook call counting there).
func newSchedRig(seed uint64, n, un int, wrapNaive func(worker.Comparator) worker.Comparator) *schedRig {
	r := rng.New(seed)
	cal, err := dataset.UniformCalibrated(n, un, 1, r.Child("data"))
	if err != nil {
		panic(err)
	}
	deltaE, err := cal.Set.DeltaForU(min(3, n))
	if err != nil {
		panic(err)
	}
	ledger := cost.NewLedger()
	var nw worker.Comparator = &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r.Child("naive")}, R: r.Child("nw")}
	if wrapNaive != nil {
		nw = wrapNaive(nw)
	}
	ew := &worker.Threshold{Delta: deltaE, Tie: worker.RandomTie{R: r.Child("expert")}, R: r.Child("ew")}
	return &schedRig{
		ledger: ledger,
		naive:  tournament.NewOracle(nw, worker.Naive, ledger, tournament.NewMemo()),
		expert: tournament.NewOracle(ew, worker.Expert, ledger, tournament.NewMemo()),
		prices: cost.Prices{Naive: 1, Expert: 25},
		items:  cal.Set.Items(),
		r:      r,
	}
}

// outcome closes the run: answer fingerprint plus the ledger readings.
func (rig *schedRig) outcome(answer string) schedOutcome {
	return schedOutcome{
		answer: answer,
		naive:  rig.ledger.Naive(),
		expert: rig.ledger.Expert(),
		memo:   rig.ledger.MemoHits(worker.Naive) + rig.ledger.MemoHits(worker.Expert),
		cost:   rig.ledger.Cost(rig.prices),
		steps:  rig.ledger.Steps(),
	}
}

// fpItems fingerprints an item list order-sensitively.
func fpItems(items []item.Item) string {
	s := "["
	for _, it := range items {
		s += fmt.Sprintf("%d,", it.ID)
	}
	return s + "]"
}

// fpErr appends an error to a fingerprint so error paths must match too.
func fpErr(s string, err error) string {
	if err != nil {
		return s + "|err:" + err.Error()
	}
	return s
}

// assertSchedEquivalent runs fn under both schedules across seeds and
// requires identical outcomes and no step regression.
func assertSchedEquivalent(t *testing.T, seeds int, fn func(kind sched.Kind, seed uint64) schedOutcome) {
	t.Helper()
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		lock := fn(sched.Lockstep, seed)
		dag := fn(sched.DAG, seed)
		if !lock.equal(dag) {
			t.Fatalf("seed %d: schedules diverged\n  lockstep %s\n  dag      %s", seed, lock, dag)
		}
		if dag.steps > lock.steps {
			t.Fatalf("seed %d: DAG took more steps than lockstep (%d > %d)", seed, dag.steps, lock.steps)
		}
	}
}

func TestSchedEquivFilter(t *testing.T) {
	for _, track := range []bool{false, true} {
		t.Run(fmt.Sprintf("trackLosses=%v", track), func(t *testing.T) {
			assertSchedEquivalent(t, 8, func(kind sched.Kind, seed uint64) schedOutcome {
				rig := newSchedRig(seed, 150+int(seed)*31, 4, nil)
				out, err := Filter(context.Background(), rig.items, rig.naive, FilterOptions{Un: 4, TrackLosses: track, Scheduler: kind})
				return rig.outcome(fpErr(fpItems(out), err))
			})
		})
	}
}

func TestSchedEquivTwoMaxFind(t *testing.T) {
	assertSchedEquivalent(t, 8, func(kind sched.Kind, seed uint64) schedOutcome {
		rig := newSchedRig(seed, 60+int(seed)*17, 4, nil)
		best, err := TwoMaxFindWith(context.Background(), rig.items, rig.expert, kind)
		return rig.outcome(fpErr(fmt.Sprintf("best=%d", best.ID), err))
	})
}

func TestSchedEquivRandomized(t *testing.T) {
	assertSchedEquivalent(t, 6, func(kind sched.Kind, seed uint64) schedOutcome {
		rig := newSchedRig(seed, 120+int(seed)*23, 4, nil)
		best, err := RandomizedMaxFind(context.Background(), rig.items, rig.expert,
			RandomizedOptions{R: rig.r.Child("p2"), Scheduler: kind})
		return rig.outcome(fpErr(fmt.Sprintf("best=%d", best.ID), err))
	})
}

func TestSchedEquivFindMaxAllPhase2s(t *testing.T) {
	for _, p2 := range []Phase2Algorithm{Phase2TwoMaxFind, Phase2Randomized, Phase2AllPlayAll} {
		t.Run(p2.String(), func(t *testing.T) {
			assertSchedEquivalent(t, 6, func(kind sched.Kind, seed uint64) schedOutcome {
				rig := newSchedRig(seed, 140+int(seed)*29, 4, nil)
				res, err := FindMax(context.Background(), rig.items, rig.naive, rig.expert, FindMaxOptions{
					Un:         4,
					Phase2:     p2,
					Randomized: RandomizedOptions{R: rig.r.Child("p2")},
					Scheduler:  kind,
				})
				return rig.outcome(fpErr(fmt.Sprintf("best=%d cand=%s", res.Best.ID, fpItems(res.Candidates)), err))
			})
		})
	}
}

func TestSchedEquivTopK(t *testing.T) {
	assertSchedEquivalent(t, 4, func(kind sched.Kind, seed uint64) schedOutcome {
		rig := newSchedRig(seed, 90+int(seed)*13, 3, nil)
		top, err := TopK(context.Background(), rig.items, rig.naive, rig.expert, TopKOptions{
			K: 3, U: 3, TrackLosses: true, Scheduler: kind,
		})
		return rig.outcome(fpErr(fpItems(top), err))
	})
}

func TestSchedEquivBudgetExhaustion(t *testing.T) {
	// A hard comparison budget truncates the run mid-flight. On the
	// element-wise path both schedules charge pair by pair in the same
	// order, so they must exhaust at the identical comparison and return
	// identical partial results and paid counts.
	assertSchedEquivalent(t, 6, func(kind sched.Kind, seed uint64) schedOutcome {
		rig := newSchedRig(seed, 150+int(seed)*31, 4, nil)
		budget := dispatch.NewBudget(dispatch.Limits{
			MaxNaive:  900 + int64(seed)*137,
			MaxExpert: 40,
		})
		rig.naive.WithBudget(budget)
		rig.expert.WithBudget(budget)
		res, err := FindMax(context.Background(), rig.items, rig.naive, rig.expert, FindMaxOptions{
			Un: 4, Scheduler: kind,
		})
		if err == nil {
			t.Fatalf("seed %d: budget never exhausted — raise the instance size", seed)
		}
		if !errors.Is(err, dispatch.ErrBudgetExhausted) {
			t.Fatalf("seed %d: want ErrBudgetExhausted, got %v", seed, err)
		}
		return rig.outcome(fpErr(fmt.Sprintf("best=%d cand=%s", res.Best.ID, fpItems(res.Candidates)), err))
	})
}

// cancelAfter cancels a context after exactly limit comparator calls,
// modelling a mid-phase shutdown at a deterministic point.
type cancelAfter struct {
	inner  worker.Comparator
	calls  int
	limit  int
	cancel context.CancelFunc
}

func (c *cancelAfter) Compare(a, b item.Item) item.Item {
	c.calls++
	if c.calls == c.limit {
		c.cancel()
	}
	return c.inner.Compare(a, b)
}

func TestSchedEquivMidPhaseCancellation(t *testing.T) {
	// Cancellation fires after a fixed number of naive comparisons — mid
	// filter iteration. Every subsequent ask fails its ctx check, so both
	// schedules truncate at the same comparison index and must return the
	// same partial survivor state and billing.
	assertSchedEquivalent(t, 6, func(kind sched.Kind, seed uint64) schedOutcome {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		rig := newSchedRig(seed, 150+int(seed)*31, 4, func(inner worker.Comparator) worker.Comparator {
			return &cancelAfter{inner: inner, limit: 700 + int(seed)*101, cancel: cancel}
		})
		res, err := FindMax(ctx, rig.items, rig.naive, rig.expert, FindMaxOptions{
			Un: 4, Scheduler: kind,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: want context.Canceled, got %v", seed, err)
		}
		return rig.outcome(fpErr(fmt.Sprintf("best=%d cand=%s", res.Best.ID, fpItems(res.Candidates)), err))
	})
}

// TestSchedDAGReducesFilterSteps pins the tentpole's point: on a multi-group
// filter instance the DAG schedule must finish in strictly fewer logical
// steps than lockstep (one per iteration instead of one per group), while
// TestSchedEquiv* above pin that nothing else changes.
func TestSchedDAGReducesFilterSteps(t *testing.T) {
	run := func(kind sched.Kind) int64 {
		rig := newSchedRig(42, 600, 4, nil)
		if _, err := Filter(context.Background(), rig.items, rig.naive, FilterOptions{Un: 4, Scheduler: kind}); err != nil {
			t.Fatal(err)
		}
		return rig.ledger.Steps()
	}
	lock, dag := run(sched.Lockstep), run(sched.DAG)
	if dag >= lock {
		t.Fatalf("DAG steps %d not below lockstep steps %d", dag, lock)
	}
	// 600 elements in groups of 16 is ~38 groups in iteration one alone;
	// the gap should be massive, not marginal.
	if lock < 3*dag {
		t.Fatalf("expected ≥3× step reduction, got lockstep=%d dag=%d", lock, dag)
	}
}
