package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoundFormulas(t *testing.T) {
	if got := Phase1UpperBound(1000, 10); got != 40000 {
		t.Fatalf("Phase1UpperBound = %g", got)
	}
	if got := Phase1LowerBound(1000, 10); got != 2500 {
		t.Fatalf("Phase1LowerBound = %g", got)
	}
	if got := CandidateSetBound(10); got != 19 {
		t.Fatalf("CandidateSetBound = %d", got)
	}
	if got := TwoMaxFindUpperBound(100); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("TwoMaxFindUpperBound = %g", got)
	}
	if got := Phase2ExpertUpperBound(10); got != TwoMaxFindUpperBound(19) {
		t.Fatalf("Phase2ExpertUpperBound = %g", got)
	}
	if got := Phase2DeterministicLowerBound(8); math.Abs(got-16) > 1e-9 {
		t.Fatalf("Phase2DeterministicLowerBound(8) = %g, want 16", got)
	}
}

func TestUpperDominatesLower(t *testing.T) {
	// Sanity: every upper bound dominates the corresponding lower bound
	// on its shared domain (the gap is the "constant factor" of the
	// optimality claims).
	f := func(nRaw uint16, unRaw uint8) bool {
		n := int(nRaw)%10000 + 10
		un := int(unRaw)%100 + 1
		if un > n {
			un = n
		}
		if Phase1UpperBound(n, un) < Phase1LowerBound(n, un) {
			return false
		}
		return Phase2ExpertUpperBound(un) >= Phase2DeterministicLowerBound(un)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedExpertBoundShape(t *testing.T) {
	if RandomizedExpertBound(0) != 0 {
		t.Fatal("bound at un=0 should be 0")
	}
	if got := RandomizedExpertBound(1); got != 1 {
		t.Fatalf("bound at un=1 = %g, want 1 (1^1.7 + 0)", got)
	}
	// Monotone increasing.
	prev := 0.0
	for _, u := range []int{1, 2, 5, 10, 50, 100, 1000} {
		b := RandomizedExpertBound(u)
		if b <= prev {
			t.Fatalf("bound not increasing at un=%d", u)
		}
		prev = b
	}
	// Asymptotically below the 2-MaxFind bound’s growth? No — un^{1.7}
	// grows faster than un^{1.5}; the paper's Lemma 5 combines the
	// randomized phase inside the wider analysis. Just check the formula.
	u := 100.0
	want := math.Pow(u, 1.7) + math.Pow(u, 0.6)*math.Log(u)*math.Log(u)
	if got := RandomizedExpertBound(100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RandomizedExpertBound(100) = %g, want %g", got, want)
	}
}
