// Package core implements the paper's algorithms: the two-phase expert-aware
// max-finding algorithm (Algorithm 1), its naïve-worker filtering phase
// (Algorithm 2), the deterministic 2-MaxFind and randomized max-find of
// Ajtai et al. used in the second phase (Algorithms 3 and 5), the
// training-set estimation of un(n) (Algorithm 4), and the upper/lower bound
// formulas of Sections 4.2–4.3.
package core

import (
	"context"
	"errors"
	"fmt"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/tournament"
)

// ErrNoItems is returned when an algorithm is invoked on an empty input.
var ErrNoItems = errors.New("core: empty input set")

// FilterOptions configures Algorithm 2.
type FilterOptions struct {
	// Un is the (estimated) number of elements naïve-indistinguishable
	// from the maximum, un(n) ≥ 1. Overestimating costs money but not
	// accuracy; underestimating may discard the maximum (Section 5.2).
	Un int
	// TrackLosses enables the second Appendix A optimization: elements
	// accumulating un distinct-opponent losses across iterations are
	// discarded at the end of each iteration, shrinking later rounds.
	TrackLosses bool
}

// Filter is Algorithm 2: using only the naïve oracle, it reduces items to a
// candidate set of size at most 2·un − 1 that — under the threshold model
// with ε = 0 — is guaranteed to contain the maximum (Lemma 3), performing at
// most 4·n·un comparisons.
//
// Elements are partitioned into groups of size g = 4·un; each group plays an
// all-play-all tournament and only elements winning at least |group| − un
// games survive; the process repeats until fewer than 2·un elements remain.
// If the input is already smaller than 2·un, it is returned unchanged (no
// comparisons are needed).
//
// On cancellation or budget exhaustion Filter returns the survivor set of
// the last fully completed iteration alongside the error — a usable (if
// larger than promised) candidate set, since completed iterations never
// discard the maximum.
func Filter(ctx context.Context, items []item.Item, naive *tournament.Oracle, opt FilterOptions) ([]item.Item, error) {
	if len(items) == 0 {
		return nil, ErrNoItems
	}
	if opt.Un < 1 {
		return nil, fmt.Errorf("core: Filter requires un ≥ 1, got %d", opt.Un)
	}
	un := opt.Un
	g := 4 * un

	var tracker *tournament.LossTracker
	if opt.TrackLosses {
		tracker = tournament.NewLossTracker()
	}

	sc := naive.Obs().WithPhase(obs.PhaseFilter)
	var startLedger cost.Snapshot
	if sc != nil {
		startLedger = naive.LedgerSnapshot()
		sc.Event("filter.start",
			obs.Fi("n", int64(len(items))), obs.Fi("un", int64(un)))
	}

	li := make([]item.Item, len(items))
	copy(li, items)

	iter := 0
	for len(li) >= 2*un {
		prev := len(li)
		var next, groupTops []item.Item
		gi := 0
		for start := 0; start < len(li); start += g {
			end := start + g
			if end > len(li) {
				end = len(li)
			}
			group := li[start:end]
			last := end == len(li)
			if last && len(group) <= un {
				// The final group is too small for its tournament to
				// eliminate anyone: everyone advances.
				next = append(next, group...)
				continue
			}
			res, err := tournament.RoundRobinWith(ctx, group, naive,
				tournament.RoundRobinOpts{RecordLosers: tracker != nil})
			if err != nil {
				// Partial result: the survivors of the last completed
				// iteration (the current iteration's partial progress is
				// discarded — a half-played group must not eliminate).
				return li, err
			}
			groupTops = append(groupTops, res.TopByWins())
			need := len(group) - un
			kept := 0
			for i, it := range group {
				if tracker != nil {
					for _, w := range res.Losers[i] {
						tracker.Record(it.ID, w)
					}
				}
				if res.Wins[i] >= need {
					next = append(next, it)
					kept++
				}
			}
			if sc.Tracing() {
				sc.Event("filter.group",
					obs.Fi("iter", int64(iter)), obs.Fi("group", int64(gi)),
					obs.Fi("size", int64(len(group))), obs.Fi("survivors", int64(kept)))
			}
			gi++
		}
		if len(next) == 0 {
			// Only possible when un is underestimated (Section 5.2: "it
			// could return an empty set of elements"): a group of g
			// elements has a guaranteed survivor only when the win
			// threshold g − un is at most the ⌈(g−1)/2⌉ wins its best
			// element must collect. Rather than returning an empty set we
			// keep each group's top-wins element, degrading accuracy but
			// staying total — matching the measured behaviour the paper
			// reports for small estimation factors.
			next = groupTops
		}
		if tracker != nil {
			// Appendix A: an element that has lost to at least un distinct
			// opponents overall would lose more than un − 1 games in a
			// global all-play-all tournament, so by Lemma 1 it cannot be
			// the maximum.
			kept := next[:0]
			for _, it := range next {
				if tracker.Losses(it.ID) < un {
					kept = append(kept, it)
				}
			}
			next = kept
		}
		li = next
		if sc != nil {
			sc.Round()
			sc.Event("filter.iter",
				obs.Fi("iter", int64(iter)), obs.Fi("in", int64(prev)), obs.Fi("out", int64(len(li))))
		}
		iter++
		if len(li) >= prev {
			// Lemma 2 guarantees strict progress; reaching here means the
			// oracle violated the comparison model (e.g. inconsistent
			// custom comparator answering both directions of one pair
			// within a tournament cannot do this, but a buggy one might).
			return nil, fmt.Errorf("core: Filter made no progress at %d elements", prev)
		}
	}
	if sc != nil {
		d := naive.LedgerSnapshot().Sub(startLedger)
		sc.PhaseComparisons(d.Comparisons)
		sc.Event("filter.done",
			obs.Fi("kept", int64(len(li))), obs.Fi("iters", int64(iter)),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("memo_hits", d.TotalMemoHits()))
	}
	return li, nil
}
