// Package core implements the paper's algorithms: the two-phase expert-aware
// max-finding algorithm (Algorithm 1), its naïve-worker filtering phase
// (Algorithm 2), the deterministic 2-MaxFind and randomized max-find of
// Ajtai et al. used in the second phase (Algorithms 3 and 5), the
// training-set estimation of un(n) (Algorithm 4), and the upper/lower bound
// formulas of Sections 4.2–4.3.
package core

import (
	"context"
	"errors"
	"fmt"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

// ErrNoItems is returned when an algorithm is invoked on an empty input.
var ErrNoItems = errors.New("core: empty input set")

// FilterOptions configures Algorithm 2.
type FilterOptions struct {
	// Un is the (estimated) number of elements naïve-indistinguishable
	// from the maximum, un(n) ≥ 1. Overestimating costs money but not
	// accuracy; underestimating may discard the maximum (Section 5.2).
	Un int
	// TrackLosses enables the second Appendix A optimization: elements
	// accumulating un distinct-opponent losses across iterations are
	// discarded at the end of each iteration, shrinking later rounds.
	TrackLosses bool
	// Scheduler selects the comparison schedule: the zero value plays one
	// batch per tournament group (the lockstep reference); sched.DAG
	// drains every group of an iteration — they are data-independent — in
	// one logical step through the work-frontier dispatcher. Answers, paid
	// counts, and cost are identical; only the step count changes.
	Scheduler sched.Kind
}

// filterState carries one filter run's per-iteration working set. The
// survivor buffers are arena-style: allocated once from the input size and
// swapped between iterations, so the iteration loop itself allocates only
// the tournament bookkeeping.
type filterState struct {
	un, g   int
	tracker *tournament.LossTracker
	sc      *obs.Scope

	li   []item.Item // current survivors (this iteration's input)
	next []item.Item // survivors being accumulated (the swap buffer)
	tops []item.Item // each group's top-wins element (underestimation fallback)
	iter int
	gi   int
}

// applyGroup folds one group's tournament result into the iteration state:
// threshold survivors, the group top, loss recording, and the per-group
// trace event. Shared verbatim by the lockstep and DAG schedules so their
// survivor computation cannot drift.
func (st *filterState) applyGroup(group []item.Item, res tournament.Result) {
	st.tops = append(st.tops, res.TopByWins())
	need := len(group) - st.un
	kept := 0
	for i, it := range group {
		if st.tracker != nil {
			for _, w := range res.Losers[i] {
				st.tracker.Record(it.ID, w)
			}
		}
		if res.Wins[i] >= need {
			st.next = append(st.next, it)
			kept++
		}
	}
	if st.sc.Tracing() {
		st.sc.Event("filter.group",
			obs.Fi("iter", int64(st.iter)), obs.Fi("group", int64(st.gi)),
			obs.Fi("size", int64(len(group))), obs.Fi("survivors", int64(kept)))
	}
	st.gi++
}

// finishIteration closes one iteration: the empty-survivor fallback, the
// Appendix A early discards, the buffer swap, and the progress check.
func (st *filterState) finishIteration() error {
	prev := len(st.li)
	if len(st.next) == 0 {
		// Only possible when un is underestimated (Section 5.2: "it
		// could return an empty set of elements"): a group of g
		// elements has a guaranteed survivor only when the win
		// threshold g − un is at most the ⌈(g−1)/2⌉ wins its best
		// element must collect. Rather than returning an empty set we
		// keep each group's top-wins element, degrading accuracy but
		// staying total — matching the measured behaviour the paper
		// reports for small estimation factors.
		st.next = append(st.next, st.tops...)
	}
	if st.tracker != nil {
		// Appendix A: an element that has lost to at least un distinct
		// opponents overall would lose more than un − 1 games in a
		// global all-play-all tournament, so by Lemma 1 it cannot be
		// the maximum.
		kept := st.next[:0]
		for _, it := range st.next {
			if st.tracker.Losses(it.ID) < st.un {
				kept = append(kept, it)
			}
		}
		st.next = kept
	}
	st.li, st.next = st.next, st.li[:0]
	st.tops = st.tops[:0]
	if st.sc != nil {
		st.sc.Round()
		st.sc.Event("filter.iter",
			obs.Fi("iter", int64(st.iter)), obs.Fi("in", int64(prev)), obs.Fi("out", int64(len(st.li))))
	}
	st.iter++
	st.gi = 0
	if len(st.li) >= prev {
		// Lemma 2 guarantees strict progress; reaching here means the
		// oracle violated the comparison model (e.g. inconsistent
		// custom comparator answering both directions of one pair
		// within a tournament cannot do this, but a buggy one might).
		return fmt.Errorf("core: Filter made no progress at %d elements", prev)
	}
	return nil
}

// groupBounds returns the [start, end) bounds of group gi over n elements.
func (st *filterState) groupBounds(start int) (end int, advanceWholesale bool) {
	end = start + st.g
	if end > len(st.li) {
		end = len(st.li)
	}
	// The final group is too small for its tournament to eliminate
	// anyone: everyone advances.
	return end, end == len(st.li) && end-start <= st.un
}

// Filter is Algorithm 2: using only the naïve oracle, it reduces items to a
// candidate set of size at most 2·un − 1 that — under the threshold model
// with ε = 0 — is guaranteed to contain the maximum (Lemma 3), performing at
// most 4·n·un comparisons.
//
// Elements are partitioned into groups of size g = 4·un; each group plays an
// all-play-all tournament and only elements winning at least |group| − un
// games survive; the process repeats until fewer than 2·un elements remain.
// If the input is already smaller than 2·un, it is returned unchanged (no
// comparisons are needed).
//
// Under the lockstep schedule each group's tournament is one logical step;
// under sched.DAG all groups of an iteration — which share no data — are
// drained in a single step, so an iteration costs one round instead of
// ⌈n/g⌉ rounds while asking the identical comparison sequence.
//
// On cancellation or budget exhaustion Filter returns the survivor set of
// the last fully completed iteration alongside the error — a usable (if
// larger than promised) candidate set, since completed iterations never
// discard the maximum.
func Filter(ctx context.Context, items []item.Item, naive *tournament.Oracle, opt FilterOptions) ([]item.Item, error) {
	if len(items) == 0 {
		return nil, ErrNoItems
	}
	if opt.Un < 1 {
		return nil, fmt.Errorf("core: Filter requires un ≥ 1, got %d", opt.Un)
	}
	st := &filterState{
		un: opt.Un,
		g:  4 * opt.Un,
		sc: naive.Obs().WithPhase(obs.PhaseFilter),
		li: make([]item.Item, len(items)),
		// Arena-style: both survivor buffers and the group-top scratch are
		// sized once from the input and reused by every iteration.
		next: make([]item.Item, 0, len(items)),
		tops: make([]item.Item, 0, (len(items)+4*opt.Un-1)/(4*opt.Un)),
	}
	copy(st.li, items)
	if opt.TrackLosses {
		st.tracker = tournament.NewLossTracker()
	}

	var startLedger cost.Snapshot
	if st.sc != nil {
		startLedger = naive.LedgerSnapshot()
		st.sc.Event("filter.start",
			obs.Fi("n", int64(len(items))), obs.Fi("un", int64(st.un)))
	}

	var err error
	if opt.Scheduler == sched.DAG {
		err = filterDAG(ctx, naive, st)
	} else {
		err = filterLockstep(ctx, naive, st)
	}
	if err != nil {
		return st.li, err
	}
	if st.sc != nil {
		d := naive.LedgerSnapshot().Sub(startLedger)
		st.sc.PhaseComparisons(d.Comparisons)
		st.sc.Event("filter.done",
			obs.Fi("kept", int64(len(st.li))), obs.Fi("iters", int64(st.iter)),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("memo_hits", d.TotalMemoHits()))
	}
	return st.li, nil
}

// filterLockstep is the reference schedule: groups play their tournaments
// one batch at a time, in partition order.
func filterLockstep(ctx context.Context, naive *tournament.Oracle, st *filterState) error {
	opts := tournament.RoundRobinOpts{RecordLosers: st.tracker != nil}
	for len(st.li) >= 2*st.un {
		for start := 0; start < len(st.li); start += st.g {
			end, wholesale := st.groupBounds(start)
			group := st.li[start:end]
			if wholesale {
				st.next = append(st.next, group...)
				continue
			}
			res, err := tournament.RoundRobinWith(ctx, group, naive, opts)
			if err != nil {
				// Partial result: the survivors of the last completed
				// iteration (the current iteration's partial progress is
				// discarded — a half-played group must not eliminate).
				return err
			}
			st.applyGroup(group, res)
		}
		if err := st.finishIteration(); err != nil {
			return err
		}
	}
	return nil
}

// filterDAG runs the same iterations on the work-frontier dispatcher: every
// group of an iteration is enqueued as one ready node — the groups are
// data-independent — and the iteration join, fired by its last group,
// computes the survivors and enqueues the next iteration's groups. One
// iteration, one wave, one logical step.
func filterDAG(ctx context.Context, naive *tournament.Oracle, st *filterState) error {
	f := sched.NewFrontier(naive)
	opts := tournament.RoundRobinOpts{RecordLosers: st.tracker != nil}
	var enqueue func() error
	enqueue = func() error {
		if len(st.li) < 2*st.un {
			return nil
		}
		type pendingGroup struct {
			group     []item.Item
			res       tournament.Result
			wholesale bool
		}
		var groups []pendingGroup
		pending := 0
		// The whole iteration's pair count is known now; one exact
		// reservation instead of a growth chain across the group loop.
		totalPairs := 0
		for start := 0; start < len(st.li); start += st.g {
			end, wholesale := st.groupBounds(start)
			if !wholesale {
				n := end - start
				totalPairs += n * (n - 1) / 2
			}
		}
		f.Reserve(totalPairs)
		join := func() error {
			// Fold results in partition order — identical to lockstep,
			// including the position of a wholesale-advanced tail group —
			// then start the next iteration.
			for _, pg := range groups {
				if pg.wholesale {
					st.next = append(st.next, pg.group...)
				} else {
					st.applyGroup(pg.group, pg.res)
				}
			}
			if err := st.finishIteration(); err != nil {
				return err
			}
			return enqueue()
		}
		for start := 0; start < len(st.li); start += st.g {
			end, wholesale := st.groupBounds(start)
			group := st.li[start:end]
			if wholesale {
				groups = append(groups, pendingGroup{group: group, wholesale: true})
				continue
			}
			idx := len(groups)
			groups = append(groups, pendingGroup{group: group})
			pending++
			// Capture the index, not a pointer: later appends may move the
			// slice's backing array. By the time the hook fires, enqueueing
			// is finished and groups is final.
			f.AddRoundRobin(group, opts, func(res tournament.Result) error {
				groups[idx].res = res
				pending--
				if pending == 0 {
					return join()
				}
				return nil
			})
		}
		if pending == 0 {
			// Every group advanced wholesale: close the iteration without
			// a wave (lockstep reaches the same state without a batch).
			return join()
		}
		return nil
	}
	if err := enqueue(); err != nil {
		return err
	}
	return f.Run(ctx)
}
