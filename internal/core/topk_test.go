package core

import (
	"context"
	"errors"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func TestTopKValidation(t *testing.T) {
	r := rng.New(1)
	s := dataset.Uniform(20, 0, 1, r)
	no := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
	eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	if _, err := TopK(context.Background(), nil, no, eo, TopKOptions{K: 1, U: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	for _, k := range []int{0, -1, 21} {
		if _, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{K: k, U: 1}); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
	if _, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{K: 3, U: 0}); err == nil {
		t.Fatal("U=0 accepted")
	}
}

func TestTopKTruthfulExactOrder(t *testing.T) {
	root := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		n := 50 + r.Intn(200)
		k := 1 + r.Intn(8)
		s := dataset.Uniform(n, 0, 1, r)
		no := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
		eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
		got, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{K: k, U: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("trial %d: returned %d of %d", trial, len(got), k)
		}
		for i, it := range got {
			if s.Rank(it.ID) != i+1 {
				t.Fatalf("trial %d: position %d has true rank %d", trial, i, s.Rank(it.ID))
			}
		}
	}
}

func TestTopKGuaranteePerRound(t *testing.T) {
	// Each returned element must be within 2·δe of the true maximum of
	// the set with the previous returns removed, when U upper-bounds
	// every prefix maximum's neighbourhood.
	root := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		cal, err := dataset.UniformCalibrated(500, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		const k = 5
		// Compute a valid U: the largest u(δn) over the top-k prefix
		// maxima (ground truth, used only to parameterize the test).
		u := 0
		remaining := cal.Set.Items()
		for round := 0; round < k; round++ {
			sub := item.NewSetItems(remaining)
			if c := sub.UCount(cal.DeltaN); c > u {
				u = c
			}
			remaining = removeOneByValue(remaining, sub.Max().Value)
		}

		nw := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r.Child("n")}, R: r.Child("n")}
		ew := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: r.Child("e")}, R: r.Child("e")}
		no := tournament.NewOracle(nw, worker.Naive, nil, nil)
		eo := tournament.NewOracle(ew, worker.Expert, nil, nil)
		got, err := TopK(context.Background(), cal.Set.Items(), no, eo, TopKOptions{K: k, U: u})
		if err != nil {
			t.Fatal(err)
		}
		// Verify the per-round guarantee against ground truth.
		rest := cal.Set.Items()
		for i, chosen := range got {
			trueMax := item.NewSetItems(rest).Max()
			if d := trueMax.Value - chosen.Value; d > 2*cal.DeltaE {
				t.Fatalf("trial %d round %d: d = %g > 2δe", trial, i, d)
			}
			rest = removeByID(rest, chosen.ID)
		}
	}
}

// removeOneByValue removes the first element with the given value.
func removeOneByValue(items []item.Item, v float64) []item.Item {
	out := items[:0]
	removed := false
	for _, it := range items {
		if !removed && it.Value == v {
			removed = true
			continue
		}
		out = append(out, it)
	}
	return out
}

func removeByID(items []item.Item, id int) []item.Item {
	out := make([]item.Item, 0, len(items)-1)
	for _, it := range items {
		if it.ID != id {
			out = append(out, it)
		}
	}
	return out
}

func TestTopKMemoizationSavesAcrossRounds(t *testing.T) {
	r := rng.New(4)
	cal, err := dataset.UniformCalibrated(400, 6, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	run := func(memoize bool, seed string) int64 {
		rr := r.Child(seed)
		ledger := cost.NewLedger()
		var nm, em *tournament.Memo
		if memoize {
			nm, em = tournament.NewMemo(), tournament.NewMemo()
		}
		nw := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: rr.Child("n")}, R: rr.Child("n")}
		ew := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: rr.Child("e")}, R: rr.Child("e")}
		no := tournament.NewOracle(nw, worker.Naive, ledger, nm)
		eo := tournament.NewOracle(ew, worker.Expert, ledger, em)
		if _, err := TopK(context.Background(), cal.Set.Items(), no, eo, TopKOptions{K: 5, U: 6}); err != nil {
			t.Fatal(err)
		}
		return ledger.Naive() + ledger.Expert()
	}
	withMemo := run(true, "a")
	withoutMemo := run(false, "b")
	// Rounds 2..k repeat most pairings; memoization must cut the paid
	// count by a wide margin (empirically ~4-5×).
	if withMemo*2 > withoutMemo {
		t.Fatalf("memoized TopK paid %d vs %d unmemoized — expected large savings", withMemo, withoutMemo)
	}
}

func TestTopKWholeSet(t *testing.T) {
	// k = n returns a full ranking.
	r := rng.New(5)
	s := dataset.Uniform(30, 0, 1, r)
	no := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
	eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	got, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{K: 30, U: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range got {
		if s.Rank(it.ID) != i+1 {
			t.Fatalf("full ranking wrong at position %d", i)
		}
	}
}

func TestTopKOnRoundHook(t *testing.T) {
	// OnRound fires once per completed round, in order, with the round's
	// winner — including the final round served by the single-remaining
	// shortcut when k = n.
	r := rng.New(7)
	s := dataset.Uniform(10, 0, 1, r)
	no := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
	eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	type roundWin struct {
		round  int
		winner int
	}
	var calls []roundWin
	got, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{
		K: 10, U: 2,
		OnRound: func(round int, winner item.Item) {
			calls = append(calls, roundWin{round, winner.ID})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(got) {
		t.Fatalf("OnRound fired %d times for %d ranks", len(calls), len(got))
	}
	for i, c := range calls {
		if c.round != i {
			t.Fatalf("call %d reported round %d", i, c.round)
		}
		if c.winner != got[i].ID {
			t.Fatalf("round %d winner %d but rank %d is %d", i, c.winner, i, got[i].ID)
		}
	}
}

func TestTopKRoundErrorPartialProgress(t *testing.T) {
	// A budget that covers round 1 but starves round 2 must surface the
	// completed prefix alongside a *RoundError naming the truncated round,
	// with errors.Is still reaching the budget cause.
	r := rng.New(8)
	s := dataset.Uniform(60, 0, 1, r)
	newOracles := func(b *dispatch.Budget) (*tournament.Oracle, *tournament.Oracle) {
		ledger := cost.NewLedger()
		no := tournament.NewOracle(worker.Truth, worker.Naive, ledger, nil).WithBudget(b)
		eo := tournament.NewOracle(worker.Truth, worker.Expert, ledger, nil).WithBudget(b)
		return no, eo
	}

	// Measure round 1's paid total on an unbudgeted run.
	no, eo := newOracles(nil)
	if _, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{K: 1, U: 2}); err != nil {
		t.Fatal(err)
	}
	round1 := no.LedgerSnapshot().TotalComparisons()
	if round1 == 0 {
		t.Fatal("round 1 paid nothing")
	}

	b := dispatch.NewBudget(dispatch.Limits{MaxTotal: round1 + 1})
	no, eo = newOracles(b)
	got, err := TopK(context.Background(), s.Items(), no, eo, TopKOptions{K: 3, U: 2})
	if err == nil {
		t.Fatal("starved run succeeded")
	}
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RoundError", err)
	}
	if !errors.Is(err, dispatch.ErrBudgetExhausted) {
		t.Fatalf("cause lost: %v", err)
	}
	if re.Completed != len(got) {
		t.Fatalf("Completed = %d but %d ranks returned", re.Completed, len(got))
	}
	if re.Round != re.Completed+1 {
		t.Fatalf("Round = %d with %d completed", re.Round, re.Completed)
	}
	if len(got) != 1 {
		t.Fatalf("expected exactly round 1's rank back, got %d", len(got))
	}
	if s.Rank(got[0].ID) != 1 {
		t.Fatalf("surviving rank has true rank %d", s.Rank(got[0].ID))
	}
}

func TestRankByWins(t *testing.T) {
	r := rng.New(6)
	s := dataset.Uniform(12, 0, 1, r)
	o := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil)
	ranked, err := RankByWins(context.Background(), s.Items(), o)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range ranked {
		if s.Rank(it.ID) != i+1 {
			t.Fatalf("position %d has true rank %d", i, s.Rank(it.ID))
		}
	}
	if got, err := RankByWins(context.Background(), nil, o); err != nil || got != nil {
		t.Fatal("empty input should return nil")
	}
	single, err := RankByWins(context.Background(), []item.Item{{ID: 3, Value: 1}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0].ID != 3 {
		t.Fatal("singleton ranking wrong")
	}
}
