package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"crowdmax/internal/dataset"
	"crowdmax/internal/dispatch"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func scoreOracles() (*tournament.Oracle, *tournament.Oracle) {
	no := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil).WithValuer(worker.TruthValuer)
	eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	return no, eo
}

func TestScoreValidation(t *testing.T) {
	r := rng.New(1)
	s := dataset.Uniform(20, 0, 1, r)
	no, eo := scoreOracles()
	if _, err := Score(context.Background(), nil, no, eo, ScoreOptions{U: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Votes: -1, U: 1}); err == nil {
		t.Fatal("negative Votes accepted")
	}
	if _, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{}); err == nil {
		t.Fatal("U=0 without Shortlist accepted")
	}
	if _, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Shortlist: -2}); err == nil {
		t.Fatal("negative Shortlist accepted")
	}
}

func TestScoreTruthfulFindsMax(t *testing.T) {
	r := rng.New(2)
	s := dataset.Uniform(40, 0, 1, r)
	no, eo := scoreOracles()
	res, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Votes: 3, U: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScoresComplete {
		t.Fatal("full run reported incomplete scores")
	}
	if s.Rank(res.Best.ID) != 1 {
		t.Fatalf("Best has true rank %d", s.Rank(res.Best.ID))
	}
	if len(res.Scores) != 40 {
		t.Fatalf("scored %d of 40 elements", len(res.Scores))
	}
	// Truthful votes mean the score order is the exact value order.
	for i, is := range res.Scores {
		if s.Rank(is.Item.ID) != i+1 {
			t.Fatalf("score position %d has true rank %d", i, s.Rank(is.Item.ID))
		}
	}
	if len(res.Shortlist) != 3 { // 2·U − 1
		t.Fatalf("shortlist has %d elements, want 3", len(res.Shortlist))
	}
	if res.Shortlist[0].ID != res.Scores[0].Item.ID {
		t.Fatal("shortlist not in score order")
	}
}

func TestScoreShortlistClampAndOverride(t *testing.T) {
	r := rng.New(3)
	s := dataset.Uniform(5, 0, 1, r)
	no, eo := scoreOracles()
	// Explicit Shortlist bypasses U; larger than n clamps to n.
	res, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Shortlist: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shortlist) != 5 {
		t.Fatalf("shortlist has %d elements, want clamp to 5", len(res.Shortlist))
	}
	if s.Rank(res.Best.ID) != 1 {
		t.Fatalf("Best has true rank %d", s.Rank(res.Best.ID))
	}
}

func TestScorePhase1Truncation(t *testing.T) {
	// Starve the naive budget mid-wave-2: the result must carry exactly
	// the elements whose second vote landed, ScoresComplete false, and an
	// error wrapped "phase 1 (scoring)" with the budget cause reachable.
	r := rng.New(4)
	s := dataset.Uniform(10, 0, 1, r)
	b := dispatch.NewBudget(dispatch.Limits{MaxNaive: 14})
	no, eo := scoreOracles()
	no = no.WithBudget(b)
	res, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Votes: 3, U: 2})
	if err == nil {
		t.Fatal("starved run succeeded")
	}
	if !strings.Contains(err.Error(), "phase 1 (scoring)") {
		t.Fatalf("error not labeled phase 1: %v", err)
	}
	if !errors.Is(err, dispatch.ErrBudgetExhausted) {
		t.Fatalf("cause lost: %v", err)
	}
	if res.ScoresComplete {
		t.Fatal("truncated run claims complete scores")
	}
	// 14 paid queries = wave 1 (10) + 4 of wave 2: four fully-voted-so-far
	// elements survive the aggregation cut.
	if len(res.Scores) != 4 {
		t.Fatalf("partial result has %d scores, want 4", len(res.Scores))
	}
	if res.Best.ID != res.Scores[0].Item.ID {
		t.Fatal("Best is not the best-so-far leader")
	}
	if res.Shortlist != nil {
		t.Fatal("truncated phase 1 produced a shortlist")
	}
}

func TestScorePhase2Truncation(t *testing.T) {
	// An expert budget too small for the extraction leaves the scores
	// intact and labels the error "phase 2".
	r := rng.New(5)
	s := dataset.Uniform(30, 0, 1, r)
	b := dispatch.NewBudget(dispatch.Limits{MaxExpert: 1})
	no, eo := scoreOracles()
	eo = eo.WithBudget(b)
	res, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Votes: 3, U: 3})
	if err == nil {
		t.Fatal("starved phase 2 succeeded")
	}
	if !strings.Contains(err.Error(), "phase 2") {
		t.Fatalf("error not labeled phase 2: %v", err)
	}
	if !errors.Is(err, dispatch.ErrBudgetExhausted) {
		t.Fatalf("cause lost: %v", err)
	}
	if !res.ScoresComplete {
		t.Fatal("phase 1 completed but ScoresComplete is false")
	}
	if len(res.Shortlist) != 5 {
		t.Fatalf("shortlist has %d elements, want 5", len(res.Shortlist))
	}
	if res.Best == (item.Item{}) {
		t.Fatal("no best-so-far leader on a phase 2 truncation")
	}
}

func TestScoreAggregations(t *testing.T) {
	// Trimmed mean drops len/4 from each end; median averages the middle
	// pair on even ballots.
	cases := []struct {
		ballot []float64
		agg    Aggregation
		want   float64
	}{
		{[]float64{0, 2, 100}, AggTrimmedMean, 34},   // trim 0: plain mean
		{[]float64{0, 2, 100}, AggMedian, 2},         // outlier ignored
		{[]float64{0, 1, 1, 100}, AggTrimmedMean, 1}, // trim 1 each end
		{[]float64{0, 1, 3, 100}, AggMedian, 2},      // middle-pair average
		{[]float64{5}, AggTrimmedMean, 5},
		{[]float64{5}, AggMedian, 5},
	}
	for i, c := range cases {
		if got := aggregate(c.ballot, c.agg); got != c.want {
			t.Errorf("case %d (%s of %v): got %g want %g", i, c.agg, c.ballot, got, c.want)
		}
	}
	if AggTrimmedMean.String() != "trimmed-mean" || AggMedian.String() != "median" {
		t.Fatal("aggregation names wrong")
	}
	if Aggregation(9).String() != "aggregation(9)" {
		t.Fatal("unknown aggregation name wrong")
	}
}

func TestScoreMedianRobustToSpammerVotes(t *testing.T) {
	// A valuer that answers garbage on one of five votes must not move the
	// median-aggregated winner off the true maximum.
	r := rng.New(6)
	s := dataset.Uniform(25, 0, 1, r)
	spam := worker.ValuerFunc(func(it item.Item, rep int) float64 {
		if rep == 2 && it.ID%3 == 0 {
			return 1e6 // one wildly inflated vote for a third of the pool
		}
		return it.Value
	})
	no := tournament.NewOracle(worker.Truth, worker.Naive, nil, nil).WithValuer(spam)
	eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	res, err := Score(context.Background(), s.Items(), no, eo, ScoreOptions{Votes: 5, U: 2, Aggregation: AggMedian})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank(res.Best.ID) != 1 {
		t.Fatalf("median aggregation lost the max to a spammer vote: rank %d", s.Rank(res.Best.ID))
	}
}
