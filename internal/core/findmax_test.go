package core

import (
	"context"
	"strings"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// oracles builds a naïve and an expert oracle for a calibrated instance.
func oracles(cal dataset.Calibrated, r *rng.Source, ln, le *cost.Ledger) (*tournament.Oracle, *tournament.Oracle) {
	nw := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r.Child("n")}, R: r.Child("n")}
	ew := &worker.Threshold{Delta: cal.DeltaE, Tie: worker.RandomTie{R: r.Child("e")}, R: r.Child("e")}
	return tournament.NewOracle(nw, worker.Naive, ln, nil),
		tournament.NewOracle(ew, worker.Expert, le, nil)
}

func TestFindMaxEndToEndGuarantee(t *testing.T) {
	// Theorem 1: with a 2-MaxFind phase 2, d(M, e) ≤ 2δe, ≤ 4·n·un naïve
	// and ≤ 2(2un−1)^{3/2} expert comparisons.
	root := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		r := root.ChildN("t", trial)
		n := 200 + r.Intn(800)
		un := 4 + r.Intn(10)
		ue := 1 + r.Intn(un)
		cal, err := dataset.UniformCalibrated(n, un, ue, r)
		if err != nil {
			t.Fatal(err)
		}
		ln, le := cost.NewLedger(), cost.NewLedger()
		no, eo := oracles(cal, r, ln, le)
		res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: un})
		if err != nil {
			t.Fatal(err)
		}
		if d := item.Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
			t.Fatalf("trial %d: d(M, e) = %g > 2δe = %g", trial, d, 2*cal.DeltaE)
		}
		if len(res.Candidates) > CandidateSetBound(un) {
			t.Fatalf("trial %d: |S| = %d", trial, len(res.Candidates))
		}
		if float64(ln.Naive()) > Phase1UpperBound(n, un) {
			t.Fatalf("trial %d: naïve comparisons %d over bound", trial, ln.Naive())
		}
		if float64(le.Expert()) > Phase2ExpertUpperBound(un) {
			t.Fatalf("trial %d: expert comparisons %d over bound %g",
				trial, le.Expert(), Phase2ExpertUpperBound(un))
		}
		if ln.Expert() != 0 || le.Naive() != 0 {
			t.Fatalf("trial %d: phase ledgers cross-contaminated", trial)
		}
	}
}

func TestFindMaxRandomizedPhase2(t *testing.T) {
	root := rng.New(2)
	for trial := 0; trial < 8; trial++ {
		r := root.ChildN("t", trial)
		cal, err := dataset.UniformCalibrated(600, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		no, eo := oracles(cal, r, nil, nil)
		res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{
			Un:         8,
			Phase2:     Phase2Randomized,
			Randomized: RandomizedOptions{R: r.Child("rand"), C: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 4: d(M, e) ≤ 3δe w.h.p.
		if d := item.Distance(cal.Set.Max(), res.Best); d > 3*cal.DeltaE {
			t.Fatalf("trial %d: d = %g > 3δe = %g", trial, d, 3*cal.DeltaE)
		}
	}
}

func TestFindMaxAllPlayAllPhase2(t *testing.T) {
	r := rng.New(3)
	cal, err := dataset.UniformCalibrated(400, 6, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	le := cost.NewLedger()
	no, eo := oracles(cal, r, nil, le)
	res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 6, Phase2: Phase2AllPlayAll})
	if err != nil {
		t.Fatal(err)
	}
	if d := item.Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
		t.Fatalf("d = %g > 2δe", d)
	}
	s := len(res.Candidates)
	if want := int64(s * (s - 1) / 2); le.Expert() != want {
		t.Fatalf("all-play-all expert comparisons = %d, want %d", le.Expert(), want)
	}
}

func TestFindMaxUnknownPhase2(t *testing.T) {
	r := rng.New(4)
	cal, err := dataset.UniformCalibrated(100, 3, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	no, eo := oracles(cal, r, nil, nil)
	_, err = FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 3, Phase2: Phase2Algorithm(99)})
	if err == nil || !strings.Contains(err.Error(), "unknown phase-2") {
		t.Fatalf("err = %v", err)
	}
}

func TestFindMaxPropagatesPhase1Error(t *testing.T) {
	r := rng.New(5)
	cal, err := dataset.UniformCalibrated(100, 3, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	no, eo := oracles(cal, r, nil, nil)
	_, err = FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 0})
	if err == nil || !strings.Contains(err.Error(), "phase 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestFindMaxExactWhenExpertsPerfect(t *testing.T) {
	// δe → 0 experts return the exact maximum.
	root := rng.New(6)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		cal, err := dataset.UniformCalibrated(500, 10, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		nw := &worker.Threshold{Delta: cal.DeltaN, Tie: worker.RandomTie{R: r}, R: r}
		no := tournament.NewOracle(nw, worker.Naive, nil, nil)
		eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
		res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.ID != cal.Set.Max().ID {
			t.Fatalf("trial %d: perfect experts returned rank %d",
				trial, cal.Set.Rank(res.Best.ID))
		}
	}
}

func TestFindMaxStringNames(t *testing.T) {
	if Phase2TwoMaxFind.String() != "2-MaxFind" ||
		Phase2Randomized.String() != "randomized" ||
		Phase2AllPlayAll.String() != "all-play-all" {
		t.Fatal("phase-2 names wrong")
	}
	if !strings.Contains(Phase2Algorithm(9).String(), "9") {
		t.Fatal("unknown phase-2 name")
	}
}

func TestFindMaxTrackLosses(t *testing.T) {
	r := rng.New(7)
	cal, err := dataset.UniformCalibrated(800, 8, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	no, eo := oracles(cal, r, nil, nil)
	res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 8, TrackLosses: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := item.Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
		t.Fatalf("loss tracking broke the guarantee: d = %g", d)
	}
}

func TestRunPhase2EmptyCandidates(t *testing.T) {
	eo := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	if _, err := RunPhase2(context.Background(), nil, eo, Phase2AllPlayAll, RandomizedOptions{}); err == nil {
		t.Fatal("empty candidates accepted")
	}
}

func TestFindMaxWithDistanceDependentError(t *testing.T) {
	// Appendix A's "more realistic model": above the threshold the error
	// probability decays with distance. With a decay fast enough that
	// far-apart comparisons are near-perfect, the two-phase algorithm
	// keeps finding a top element despite every comparison being fallible.
	root := rng.New(8)
	var sum float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		r := root.ChildN("t", trial)
		cal, err := dataset.UniformCalibrated(600, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		mkWorker := func(delta float64, rr *rng.Source) worker.Comparator {
			return &worker.DistanceError{
				Delta: delta,
				// ε(d) = 0.3·δ/d: 30% at the threshold, decaying as
				// elements separate.
				EpsilonAt: func(d float64) float64 { return 0.3 * delta / d },
				Tie:       worker.RandomTie{R: rr},
				R:         rr,
			}
		}
		no := tournament.NewOracle(mkWorker(cal.DeltaN, r.Child("n")), worker.Naive, nil, nil)
		eo := tournament.NewOracle(mkWorker(cal.DeltaE, r.Child("e")), worker.Expert, nil, nil)
		res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: 8})
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(cal.Set.Rank(res.Best.ID))
	}
	if avg := sum / trials; avg > 15 {
		t.Fatalf("average rank %.1f under decaying distance error, want modest degradation", avg)
	}
}
