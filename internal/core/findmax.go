package core

import (
	"context"
	"fmt"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/rng"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

// Phase2Algorithm selects how the second phase extracts the maximum from the
// candidate set (Section 4.1.2).
type Phase2Algorithm int

const (
	// Phase2TwoMaxFind uses the deterministic 2-MaxFind (Algorithm 3):
	// O(un^{3/2}) expert comparisons, guarantee d(M, e) ≤ 2δe. This is
	// the option the paper uses in its simulations, because at practical
	// sizes it is both cheaper and more accurate than the randomized
	// alternative.
	Phase2TwoMaxFind Phase2Algorithm = iota
	// Phase2Randomized uses the randomized Algorithm 5: Θ(un) expert
	// comparisons (with very large constants), guarantee d(M, e) ≤ 3δe
	// w.h.p. This is the option used for the asymptotic analysis
	// (Lemmas 4 and 5).
	Phase2Randomized
	// Phase2AllPlayAll plays a single all-play-all tournament among the
	// candidates: Θ(un²) expert comparisons, guarantee d(M, e) ≤ 2δe.
	// Dominated by 2-MaxFind; included as a baseline.
	Phase2AllPlayAll
)

// String returns the option's name.
func (p Phase2Algorithm) String() string {
	switch p {
	case Phase2TwoMaxFind:
		return "2-MaxFind"
	case Phase2Randomized:
		return "randomized"
	case Phase2AllPlayAll:
		return "all-play-all"
	default:
		return fmt.Sprintf("phase2(%d)", int(p))
	}
}

// FindMaxOptions configures Algorithm 1.
type FindMaxOptions struct {
	// Un is the un(n) estimate handed to the filter phase; see
	// FilterOptions.Un.
	Un int
	// Phase2 selects the second-phase algorithm; the zero value is
	// 2-MaxFind, matching the paper's simulations.
	Phase2 Phase2Algorithm
	// TrackLosses enables the Appendix A cross-iteration loss counters
	// in phase 1.
	TrackLosses bool
	// Randomized configures Algorithm 5 when Phase2 is Phase2Randomized.
	Randomized RandomizedOptions
	// Scheduler selects the comparison schedule for both phases; see
	// FilterOptions.Scheduler. The choice never changes answers, paid
	// comparison counts, or monetary cost — only the logical-step count.
	Scheduler sched.Kind
	// OnPhase, when set, is called at phase boundaries with the boundary
	// label ("phase1" after the filter, "done" after phase 2) and the
	// survivor set at that point. The session layer hooks checkpoint
	// snapshots here. Called synchronously on the algorithm goroutine.
	OnPhase func(phase string, survivors []item.Item)
}

// FindMaxResult reports the outcome of a two-phase run.
type FindMaxResult struct {
	// Best is the returned approximation of the maximum element.
	Best item.Item
	// Candidates is the set S produced by phase 1 (|S| ≤ 2·un − 1),
	// in filter output order.
	Candidates []item.Item
}

// FindMax is Algorithm 1, the paper's primary contribution: naïve workers
// filter the n elements down to at most 2·un − 1 candidates containing the
// maximum (Algorithm 2), then experts extract an element within O(δe) of the
// maximum from the candidates. Under the threshold model with ε = 0 it
// performs at most 4·n·un naïve comparisons, and the returned element is
// within 2δe of the maximum with 2-MaxFind (Theorem 1) or within 3δe w.h.p.
// with the randomized phase 2 (Lemma 4).
//
// Costs accrue to the ledgers bound to the two oracles, so callers can read
// xn and xe (and the monetary cost C(n)) after the run.
//
// On cancellation or budget exhaustion FindMax returns the best-so-far
// partial result alongside the error (wrapped as "phase 1:" or "phase 2:",
// with errors.Is reaching the cause): a phase-1 truncation yields the last
// completed filter iteration's survivors in Candidates (Best zero); a
// phase-2 truncation yields the full candidate set plus the current leader
// in Best.
func FindMax(ctx context.Context, items []item.Item, naive, expert *tournament.Oracle, opt FindMaxOptions) (FindMaxResult, error) {
	sc := naive.Obs()
	if sc == nil {
		sc = expert.Obs()
	}
	var n0 cost.Snapshot
	if sc != nil {
		n0 = naive.LedgerSnapshot()
	}
	candidates, err := Filter(ctx, items, naive, FilterOptions{Un: opt.Un, TrackLosses: opt.TrackLosses, Scheduler: opt.Scheduler})
	if err != nil {
		return FindMaxResult{Candidates: candidates}, fmt.Errorf("phase 1: %w", err)
	}
	if len(candidates) == 0 {
		return FindMaxResult{}, fmt.Errorf("phase 1: empty candidate set (un=%d underestimated?)", opt.Un)
	}
	if sc != nil {
		d := naive.LedgerSnapshot().Sub(n0)
		sc.Event("alg1.phase1",
			obs.Fi("n", int64(len(items))), obs.Fi("candidates", int64(len(candidates))),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("steps", d.Steps))
	}
	if opt.OnPhase != nil {
		opt.OnPhase("phase1", candidates)
	}
	var e0 cost.Snapshot
	if sc != nil {
		e0 = expert.LedgerSnapshot()
	}
	best, err := RunPhase2With(ctx, candidates, expert, opt.Phase2, opt.Randomized, opt.Scheduler)
	if err != nil {
		return FindMaxResult{Best: best, Candidates: candidates}, fmt.Errorf("phase 2: %w", err)
	}
	if sc != nil {
		d := expert.LedgerSnapshot().Sub(e0)
		sc.Event("alg1.phase2",
			obs.Fs("algo", opt.Phase2.String()), obs.Fi("candidates", int64(len(candidates))),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("steps", d.Steps))
	}
	if opt.OnPhase != nil {
		opt.OnPhase("done", candidates)
	}
	return FindMaxResult{Best: best, Candidates: candidates}, nil
}

// RunPhase2 applies the selected second-phase algorithm to the candidate
// set using the expert oracle, on the lockstep reference schedule. On error
// the returned item is the algorithm's best-so-far partial leader (zero when
// none was established).
func RunPhase2(ctx context.Context, candidates []item.Item, expert *tournament.Oracle, algo Phase2Algorithm, ropt RandomizedOptions) (item.Item, error) {
	return RunPhase2With(ctx, candidates, expert, algo, ropt, sched.Lockstep)
}

// RunPhase2With is RunPhase2 under an explicit comparison schedule.
func RunPhase2With(ctx context.Context, candidates []item.Item, expert *tournament.Oracle, algo Phase2Algorithm, ropt RandomizedOptions, kind sched.Kind) (item.Item, error) {
	switch algo {
	case Phase2TwoMaxFind:
		return TwoMaxFindWith(ctx, candidates, expert, kind)
	case Phase2Randomized:
		if ropt.R == nil {
			ropt.R = rng.New(0)
		}
		ropt.Scheduler = kind
		return RandomizedMaxFind(ctx, candidates, expert, ropt)
	case Phase2AllPlayAll:
		if len(candidates) == 0 {
			return item.Item{}, ErrNoItems
		}
		res, err := tournament.RoundRobin(ctx, candidates, expert)
		if err != nil {
			return candidates[0], err
		}
		return res.TopByWins(), nil
	default:
		return item.Item{}, fmt.Errorf("core: unknown phase-2 algorithm %d", int(algo))
	}
}
