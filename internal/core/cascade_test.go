package core

import (
	"context"
	"sort"
	"strings"
	"testing"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

// threeLevelInstance builds a uniform instance with three calibrated
// thresholds δ1 > δ2 > δ3 hitting the target u values exactly.
func threeLevelInstance(t *testing.T, n int, us [3]int, r *rng.Source) (*item.Set, [3]float64) {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		s := dataset.Uniform(n, 0, 1, r)
		var deltas [3]float64
		ok := true
		for i, u := range us {
			d, err := s.DeltaForU(u)
			if err != nil {
				ok = false
				break
			}
			deltas[i] = d
		}
		if ok {
			return s, deltas
		}
	}
	t.Fatal("could not calibrate three-level instance")
	return nil, [3]float64{}
}

func levelOracle(delta float64, class worker.Class, l *cost.Ledger, r *rng.Source) *tournament.Oracle {
	w := &worker.Threshold{Delta: delta, Tie: worker.RandomTie{R: r}, R: r}
	return tournament.NewOracle(w, class, l, nil)
}

func TestCascadeValidation(t *testing.T) {
	r := rng.New(1)
	s := dataset.Uniform(50, 0, 1, r)
	o := levelOracle(0.1, worker.Naive, nil, r)

	if _, err := CascadeFindMax(context.Background(), nil, CascadeOptions{Levels: []Level{{Oracle: o, U: 2}, {Oracle: o, U: 1}}}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := CascadeFindMax(context.Background(), s.Items(), CascadeOptions{Levels: []Level{{Oracle: o, U: 2}}}); err == nil {
		t.Fatal("single level accepted")
	}
	if _, err := CascadeFindMax(context.Background(), s.Items(), CascadeOptions{Levels: []Level{{U: 2}, {Oracle: o, U: 1}}}); err == nil {
		t.Fatal("nil oracle accepted")
	}
	if _, err := CascadeFindMax(context.Background(), s.Items(), CascadeOptions{Levels: []Level{{Oracle: o, U: 0}, {Oracle: o, U: 1}}}); err == nil {
		t.Fatal("u=0 filter level accepted")
	}
	// u must be non-increasing across filter levels.
	bad := []Level{{Oracle: o, U: 2}, {Oracle: o, U: 5}, {Oracle: o, U: 1}}
	if _, err := CascadeFindMax(context.Background(), s.Items(), CascadeOptions{Levels: bad}); err == nil ||
		!strings.Contains(err.Error(), "finer thresholds") {
		t.Fatalf("increasing u accepted: %v", err)
	}
}

func TestCascadeTwoLevelsEqualsAlgorithm1(t *testing.T) {
	// With exactly two levels, the cascade must behave like FindMax: same
	// guarantee and the same comparison bounds.
	root := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		cal, err := dataset.UniformCalibrated(600, 8, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		ln, le := cost.NewLedger(), cost.NewLedger()
		levels := []Level{
			{Oracle: levelOracle(cal.DeltaN, worker.Naive, ln, r.Child("n")), U: 8},
			{Oracle: levelOracle(cal.DeltaE, worker.Expert, le, r.Child("e")), U: 3},
		}
		res, err := CascadeFindMax(context.Background(), cal.Set.Items(), CascadeOptions{Levels: levels})
		if err != nil {
			t.Fatal(err)
		}
		if d := item.Distance(cal.Set.Max(), res.Best); d > 2*cal.DeltaE {
			t.Fatalf("trial %d: d = %g > 2δe", trial, d)
		}
		if float64(ln.Naive()) > Phase1UpperBound(600, 8) {
			t.Fatalf("trial %d: naive over bound", trial)
		}
		if float64(le.Expert()) > Phase2ExpertUpperBound(8) {
			t.Fatalf("trial %d: expert over bound", trial)
		}
	}
}

func TestCascadeThreeLevelsGuarantee(t *testing.T) {
	// Three classes: coarse (cheap), medium, fine (expensive). The result
	// must be within 2·δ3 of the maximum and every intermediate candidate
	// set within its 2·u−1 bound and containing the maximum.
	root := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		r := root.ChildN("t", trial)
		us := [3]int{20, 6, 2}
		set, deltas := threeLevelInstance(t, 1000, us, r.Child("data"))
		levels := []Level{
			{Oracle: levelOracle(deltas[0], worker.Naive, nil, r.Child("l0")), U: us[0]},
			{Oracle: levelOracle(deltas[1], worker.Class(1), nil, r.Child("l1")), U: us[1]},
			{Oracle: levelOracle(deltas[2], worker.Class(2), nil, r.Child("l2")), U: us[2]},
		}
		res, err := CascadeFindMax(context.Background(), set.Items(), CascadeOptions{Levels: levels})
		if err != nil {
			t.Fatal(err)
		}
		if d := item.Distance(set.Max(), res.Best); d > 2*deltas[2] {
			t.Fatalf("trial %d: d = %g > 2δ3 = %g", trial, d, 2*deltas[2])
		}
		if len(res.Candidates) != 2 {
			t.Fatalf("trial %d: %d candidate sets recorded", trial, len(res.Candidates))
		}
		for l, cand := range res.Candidates {
			if len(cand) > CandidateSetBound(us[l]) {
				t.Fatalf("trial %d level %d: |S| = %d > %d", trial, l, len(cand), CandidateSetBound(us[l]))
			}
			found := false
			for _, c := range cand {
				if c.ID == set.Max().ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d level %d: maximum dropped", trial, l)
			}
		}
	}
}

func TestCascadeReducesExpensiveComparisons(t *testing.T) {
	// The cascade's point: the most expert class sees only the final
	// candidates, so its comparisons are far below running it on the
	// whole input.
	r := rng.New(4)
	us := [3]int{20, 6, 2}
	set, deltas := threeLevelInstance(t, 1000, us, r.Child("data"))

	lTop := cost.NewLedger()
	levels := []Level{
		{Oracle: levelOracle(deltas[0], worker.Naive, nil, r.Child("l0")), U: us[0]},
		{Oracle: levelOracle(deltas[1], worker.Class(1), nil, r.Child("l1")), U: us[1]},
		{Oracle: levelOracle(deltas[2], worker.Class(2), lTop, r.Child("l2")), U: us[2]},
	}
	if _, err := CascadeFindMax(context.Background(), set.Items(), CascadeOptions{Levels: levels}); err != nil {
		t.Fatal(err)
	}

	lDirect := cost.NewLedger()
	direct := levelOracle(deltas[2], worker.Class(2), lDirect, r.Child("direct"))
	if _, err := TwoMaxFind(context.Background(), set.Items(), direct); err != nil {
		t.Fatal(err)
	}
	if lTop.Expert()*10 > lDirect.Expert() {
		t.Fatalf("cascade top-level comparisons %d not ≪ direct %d", lTop.Expert(), lDirect.Expert())
	}
}

func TestCascadeMonotoneShrinkage(t *testing.T) {
	r := rng.New(5)
	us := [3]int{25, 8, 3}
	set, deltas := threeLevelInstance(t, 800, us, r.Child("data"))
	levels := []Level{
		{Oracle: levelOracle(deltas[0], worker.Naive, nil, r.Child("l0")), U: us[0]},
		{Oracle: levelOracle(deltas[1], worker.Class(1), nil, r.Child("l1")), U: us[1]},
		{Oracle: levelOracle(deltas[2], worker.Class(2), nil, r.Child("l2")), U: us[2]},
	}
	res, err := CascadeFindMax(context.Background(), set.Items(), CascadeOptions{Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{set.Len()}
	for _, c := range res.Candidates {
		sizes = append(sizes, len(c))
	}
	if !sort.SliceIsSorted(sizes, func(a, b int) bool { return sizes[a] > sizes[b] }) {
		t.Fatalf("candidate sets not shrinking: %v", sizes)
	}
}

func TestCascadeNaiveBound(t *testing.T) {
	levels := []Level{{U: 20}, {U: 6}, {U: 2}}
	if got := CascadeNaiveBound(1000, levels, 0); got != 4*1000*20 {
		t.Fatalf("level 0 bound = %g", got)
	}
	// Level 1 sees at most 2·20−1 = 39 elements.
	if got := CascadeNaiveBound(1000, levels, 1); got != 4*39*6 {
		t.Fatalf("level 1 bound = %g", got)
	}
	// Final level: 2-MaxFind bound on at most 2·6−1 = 11 elements.
	if got := CascadeNaiveBound(1000, levels, 2); got != TwoMaxFindUpperBound(11) {
		t.Fatalf("final level bound = %g", got)
	}
}

func TestCascadeRandomizedPhase2(t *testing.T) {
	r := rng.New(6)
	us := [3]int{20, 8, 3}
	set, deltas := threeLevelInstance(t, 700, us, r.Child("data"))
	levels := []Level{
		{Oracle: levelOracle(deltas[0], worker.Naive, nil, r.Child("l0")), U: us[0]},
		{Oracle: levelOracle(deltas[1], worker.Class(1), nil, r.Child("l1")), U: us[1]},
		{Oracle: levelOracle(deltas[2], worker.Class(2), nil, r.Child("l2")), U: us[2]},
	}
	res, err := CascadeFindMax(context.Background(), set.Items(), CascadeOptions{
		Levels:     levels,
		Phase2:     Phase2Randomized,
		Randomized: RandomizedOptions{R: r.Child("p2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := item.Distance(set.Max(), res.Best); d > 3*deltas[2] {
		t.Fatalf("d = %g > 3δ3", d)
	}
}
