package core

import (
	"context"
	"fmt"

	"crowdmax/internal/item"
	"crowdmax/internal/tournament"
)

// Level describes one expertise class in the multi-class extension of
// Section 3.3 ("a natural extension models multiple classes of workers with
// different expertise levels"). Levels are ordered from least to most
// expert: descending thresholds δ1 > δ2 > … > δL and ascending prices.
type Level struct {
	// Oracle answers this level's comparisons and bills them under the
	// level's class.
	Oracle *tournament.Oracle
	// U is u(δ) for this level's threshold: the (estimated) number of
	// elements within δ of the maximum. Must be ≥ 1 and non-increasing
	// across levels (finer thresholds distinguish more).
	U int
}

// CascadeOptions configures CascadeFindMax.
type CascadeOptions struct {
	// Levels holds the expertise hierarchy, cheapest first. The last
	// level plays the role of the experts: it runs the phase-2 algorithm
	// on the final candidate set. At least two levels are required (with
	// exactly two, the cascade IS Algorithm 1).
	Levels []Level
	// Phase2 selects the final extraction algorithm (default 2-MaxFind).
	Phase2 Phase2Algorithm
	// TrackLosses enables the Appendix A loss counters in every filter
	// stage.
	TrackLosses bool
	// Randomized configures Algorithm 5 when Phase2 is Phase2Randomized.
	Randomized RandomizedOptions
}

// CascadeResult reports a cascade run.
type CascadeResult struct {
	// Best is the returned approximation of the maximum.
	Best item.Item
	// Candidates[l] is the candidate set after filter level l
	// (len(Levels)−1 entries: every level but the last filters).
	Candidates [][]item.Item
}

// CascadeFindMax generalizes Algorithm 1 to L worker classes: each level
// but the last runs the Algorithm 2 filter with its own workers and u
// value, shrinking the candidate set from n to ≤ 2·u1−1 to ≤ 2·u2−1 … and
// the final (most expert) level extracts the maximum with the phase-2
// algorithm.
//
// Correctness for ε = 0 follows by induction on Lemma 3: level l's filter
// is guaranteed to keep the maximum whenever Ul is at least the true u(δl)
// of its *input* set — which holds when Ul upper-bounds u(δl) of the
// original set, since candidate sets only shrink. The returned element is
// within 2·δL of the maximum (3·δL w.h.p. for the randomized phase 2).
//
// The cost motivation mirrors the two-class case: each level's filter costs
// at most 4·|input|·Ul comparisons at that level's price, so cheap classes
// absorb the bulk of the input and each pricier class sees at most
// 2·U(prev)−1 elements.
//
// On cancellation or budget exhaustion the returned CascadeResult carries
// the candidate sets of every fully completed level (and, for a truncation
// in the final level, the phase-2 partial leader in Best) alongside the
// error.
func CascadeFindMax(ctx context.Context, items []item.Item, opt CascadeOptions) (CascadeResult, error) {
	if len(items) == 0 {
		return CascadeResult{}, ErrNoItems
	}
	if len(opt.Levels) < 2 {
		return CascadeResult{}, fmt.Errorf("core: cascade needs at least 2 levels, got %d", len(opt.Levels))
	}
	for l, lv := range opt.Levels {
		if lv.Oracle == nil {
			return CascadeResult{}, fmt.Errorf("core: cascade level %d has no oracle", l)
		}
		if l < len(opt.Levels)-1 && lv.U < 1 {
			return CascadeResult{}, fmt.Errorf("core: cascade level %d has u=%d, need ≥ 1", l, lv.U)
		}
		if l > 0 && l < len(opt.Levels)-1 && lv.U > opt.Levels[l-1].U {
			return CascadeResult{}, fmt.Errorf(
				"core: cascade level %d has u=%d > previous level's u=%d; finer thresholds must have smaller u",
				l, lv.U, opt.Levels[l-1].U)
		}
	}

	var res CascadeResult
	current := items
	for l := 0; l < len(opt.Levels)-1; l++ {
		lv := opt.Levels[l]
		filtered, err := Filter(ctx, current, lv.Oracle, FilterOptions{Un: lv.U, TrackLosses: opt.TrackLosses})
		if err != nil {
			return res, fmt.Errorf("cascade level %d: %w", l, err)
		}
		if len(filtered) == 0 {
			return res, fmt.Errorf("cascade level %d: empty candidate set (u=%d underestimated?)", l, lv.U)
		}
		res.Candidates = append(res.Candidates, filtered)
		current = filtered
	}

	last := opt.Levels[len(opt.Levels)-1]
	best, err := RunPhase2(ctx, current, last.Oracle, opt.Phase2, opt.Randomized)
	res.Best = best
	if err != nil {
		return res, fmt.Errorf("cascade final level: %w", err)
	}
	return res, nil
}

// CascadeNaiveBound returns the comparison upper bound of level l of a
// cascade over an input of size n: level 0 sees n elements, level l > 0
// sees at most 2·U(l−1)−1. The bound for a filter level is 4·input·Ul
// (Lemma 3); for the final level it is the 2-MaxFind bound on its input.
func CascadeNaiveBound(n int, levels []Level, l int) float64 {
	input := n
	if l > 0 {
		input = CandidateSetBound(levels[l-1].U)
	}
	if l == len(levels)-1 {
		return TwoMaxFindUpperBound(input)
	}
	return 4 * float64(input) * float64(levels[l].U)
}
