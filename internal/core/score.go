package core

import (
	"context"
	"fmt"
	"sort"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

// Aggregation selects how a crowd-scoring run combines the V cardinal votes
// collected per element (Nordio et al., "Selecting the top-quality item
// through crowd scoring").
type Aggregation int

const (
	// AggTrimmedMean drops the top and bottom quarter of each element's
	// votes and averages the rest — robust to a bounded fraction of
	// spammer votes while keeping the precision of a mean. The default.
	AggTrimmedMean Aggregation = iota
	// AggMedian takes each element's median vote — the majority-style
	// aggregate, maximally robust to outliers.
	AggMedian
)

// String returns the aggregation's name.
func (a Aggregation) String() string {
	switch a {
	case AggTrimmedMean:
		return "trimmed-mean"
	case AggMedian:
		return "median"
	default:
		return fmt.Sprintf("aggregation(%d)", int(a))
	}
}

// ScoreOptions configures Score.
type ScoreOptions struct {
	// Votes is the number of independent cardinal votes collected per
	// element in phase 1; 0 defaults to 3.
	Votes int
	// Aggregation combines each element's votes into one score; the zero
	// value is the trimmed mean.
	Aggregation Aggregation
	// U plays the role un(n) plays for the filter: the number of elements
	// whose aggregated scores are statistically indistinguishable from the
	// maximum's. It sizes the default shortlist (2·U − 1, mirroring the
	// filter's candidate bound). Required ≥ 1 unless Shortlist is set.
	U int
	// Shortlist overrides the number of top-scored elements handed to the
	// expert phase; 0 derives 2·U − 1. Clamped to [1, n].
	Shortlist int
	// Phase2 selects the expert extraction algorithm over the shortlist.
	Phase2 Phase2Algorithm
	// Randomized configures Algorithm 5 when Phase2 is Phase2Randomized.
	Randomized RandomizedOptions
	// Scheduler selects the comparison schedule of the expert phase.
	Scheduler sched.Kind
	// OnPhase, when set, is called at phase boundaries with the label
	// ("phase1" after scoring, "done" after extraction) and the shortlist.
	OnPhase func(phase string, survivors []item.Item)
}

// ItemScore pairs an element with its aggregated crowd score.
type ItemScore struct {
	Item  item.Item
	Score float64
}

// ScoreResult reports the outcome of a crowd-scoring run.
type ScoreResult struct {
	// Best is the element the expert phase extracted from the shortlist
	// (or, on a truncated run, the best-so-far leader — the top-scored
	// element once scoring completed, the zero Item before that).
	Best item.Item
	// Shortlist is the top-scored elements handed to the expert phase,
	// score order (best first).
	Shortlist []item.Item
	// Scores holds every element's aggregated score, best first. On a
	// phase-1 truncation it holds the elements fully scored so far.
	Scores []ItemScore
	// ScoresComplete reports whether phase 1 collected and aggregated all
	// votes — the precondition for any score-based quality claim.
	ScoresComplete bool
}

// Score is the crowd-scoring workload: phase 1 collects Votes independent
// cardinal estimates per element from the naive class (value queries, billed
// like naive comparisons), aggregates them robustly, and shortlists the top
// scorers; phase 2 has experts extract the best element from the shortlist
// with the usual pairwise machinery. It is the Nordio-et-al. alternative to
// the comparison-based filter: the same two-phase shape, but phase 1 costs
// Votes·n value queries instead of up to 4·n·un comparisons — cheaper when
// un is large — at the price of a score-calibration assumption instead of a
// theorem (the shortlist contains the maximum only when the aggregated
// per-vote noise is small enough relative to the value gaps).
//
// Votes are collected in vote-index-major waves (wave r asks one vote for
// every element), each wave one logical step — the crowd answers a wave in
// parallel. On cancellation or budget exhaustion Score returns the
// best-so-far partial result alongside the error, wrapped "phase 1
// (scoring):" or "phase 2:" with errors.Is reaching the cause.
func Score(ctx context.Context, items []item.Item, naive, expert *tournament.Oracle, opt ScoreOptions) (ScoreResult, error) {
	if len(items) == 0 {
		return ScoreResult{}, ErrNoItems
	}
	votes := opt.Votes
	if votes == 0 {
		votes = 3
	}
	if votes < 1 {
		return ScoreResult{}, fmt.Errorf("core: Score requires Votes ≥ 1, got %d", votes)
	}
	shortlist := opt.Shortlist
	if shortlist == 0 {
		if opt.U < 1 {
			return ScoreResult{}, fmt.Errorf("core: Score requires U ≥ 1 (or an explicit Shortlist), got U=%d", opt.U)
		}
		shortlist = 2*opt.U - 1
	}
	if shortlist < 1 {
		return ScoreResult{}, fmt.Errorf("core: Score requires Shortlist ≥ 1, got %d", shortlist)
	}
	if shortlist > len(items) {
		shortlist = len(items)
	}

	sc := naive.Obs()
	if sc == nil {
		sc = expert.Obs()
	}
	var n0 cost.Snapshot
	if sc != nil {
		n0 = naive.LedgerSnapshot()
	}

	// Phase 1: vote waves. ballots[i] accumulates items[i]'s votes; an
	// element's score is final only when all waves completed, so a
	// truncated run reports no partially-voted scores.
	ballots := make([][]float64, len(items))
	for i := range ballots {
		ballots[i] = make([]float64, 0, votes)
	}
	var res ScoreResult
	for rep := 0; rep < votes; rep++ {
		for i, it := range items {
			v, err := naive.AskValue(ctx, it, rep)
			if err != nil {
				res.Scores = aggregateScores(items[:i], ballots[:i], opt.Aggregation, rep+1)
				if len(res.Scores) > 0 {
					res.Best = res.Scores[0].Item
				}
				return res, fmt.Errorf("phase 1 (scoring): %w", err)
			}
			ballots[i] = append(ballots[i], v)
		}
		naive.Step()
	}
	res.Scores = aggregateScores(items, ballots, opt.Aggregation, votes)
	res.ScoresComplete = true
	res.Shortlist = make([]item.Item, shortlist)
	for i := 0; i < shortlist; i++ {
		res.Shortlist[i] = res.Scores[i].Item
	}
	res.Best = res.Shortlist[0]

	if sc != nil {
		d := naive.LedgerSnapshot().Sub(n0)
		sc.Event("score.phase1",
			obs.Fs("aggregation", opt.Aggregation.String()),
			obs.Fi("n", int64(len(items))), obs.Fi("votes", int64(votes)),
			obs.Fi("shortlist", int64(shortlist)),
			obs.Fi("queries", d.TotalComparisons()), obs.Fi("steps", d.Steps))
	}
	if opt.OnPhase != nil {
		opt.OnPhase("phase1", res.Shortlist)
	}

	// Phase 2: expert pairwise extraction over the shortlist.
	var e0 cost.Snapshot
	if sc != nil {
		e0 = expert.LedgerSnapshot()
	}
	best, err := RunPhase2With(ctx, res.Shortlist, expert, opt.Phase2, opt.Randomized, opt.Scheduler)
	if err != nil {
		if best.ID != 0 || best.Value != 0 {
			res.Best = best
		}
		return res, fmt.Errorf("phase 2: %w", err)
	}
	res.Best = best
	if sc != nil {
		d := expert.LedgerSnapshot().Sub(e0)
		sc.Event("score.phase2",
			obs.Fs("algo", opt.Phase2.String()), obs.Fi("shortlist", int64(shortlist)),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("steps", d.Steps))
	}
	if opt.OnPhase != nil {
		opt.OnPhase("done", res.Shortlist)
	}
	return res, nil
}

// aggregateScores combines each element's collected votes into one score and
// returns the elements sorted best-first (stable on ties, so equal scores
// keep input order). Only elements with all `votes` ballots in are included.
func aggregateScores(items []item.Item, ballots [][]float64, agg Aggregation, votes int) []ItemScore {
	out := make([]ItemScore, 0, len(items))
	for i, it := range items {
		if len(ballots[i]) < votes {
			continue
		}
		out = append(out, ItemScore{Item: it, Score: aggregate(ballots[i], agg)})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// aggregate reduces one ballot to a score. The ballot is copied before
// sorting; callers may keep appending to it.
func aggregate(ballot []float64, agg Aggregation) float64 {
	vs := make([]float64, len(ballot))
	copy(vs, ballot)
	sort.Float64s(vs)
	switch agg {
	case AggMedian:
		n := len(vs)
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	default: // AggTrimmedMean
		trim := len(vs) / 4
		vs = vs[trim : len(vs)-trim]
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		return sum / float64(len(vs))
	}
}
