package core

import (
	"context"
	"math"
	"testing"

	"crowdmax/internal/dataset"
	"crowdmax/internal/rng"
	"crowdmax/internal/worker"
)

func TestEstimateUnValidation(t *testing.T) {
	r := rng.New(1)
	o := naiveOracle(0.1, worker.RandomTie{R: r}, nil, r)
	training := dataset.Uniform(50, 0, 1, r).Items()
	if _, err := EstimateUn(context.Background(), nil, o, EstimateUnOptions{Perr: 0.5, N: 100}); err == nil {
		t.Fatal("empty training set accepted")
	}
	for _, perr := range []float64{0, 1, -0.3, 2} {
		if _, err := EstimateUn(context.Background(), training, o, EstimateUnOptions{Perr: perr, N: 100}); err == nil {
			t.Fatalf("perr=%g accepted", perr)
		}
	}
	if _, err := EstimateUn(context.Background(), training, o, EstimateUnOptions{Perr: 0.5, N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestEstimateUnUpperBoundsTrueUn(t *testing.T) {
	// The guarantee of Section 4.4 is probabilistic: w.h.p. the estimate
	// upper-bounds the true un. We use the full instance as training
	// (Assumption 1 trivially satisfied) and tolerate at most one
	// below-target estimate across 20 seeded trials.
	root := rng.New(2)
	failures, sum := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		r := root.ChildN("t", trial)
		n := 2000
		trueUn := 20
		cal, err := dataset.UniformCalibrated(n, trueUn, 5, r)
		if err != nil {
			t.Fatal(err)
		}
		o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r}, nil, r)
		est, err := EstimateUn(context.Background(), cal.Set.Items(), o, EstimateUnOptions{Perr: 0.5, N: n})
		if err != nil {
			t.Fatal(err)
		}
		if est < trueUn {
			failures++
		}
		sum += est
	}
	if failures > 3 {
		t.Fatalf("estimate fell below true un in %d/%d trials", failures, trials)
	}
	// In expectation the estimate is 2·E[errors]/perr = 2·(un−1): a clear
	// overestimate, as Section 4.4 intends.
	if mean := float64(sum) / trials; mean < 30 {
		t.Fatalf("mean estimate %.1f, want ≥ 1.5× the true un of 20", mean)
	}
}

func TestEstimateUnNeverBelowOne(t *testing.T) {
	// A perfectly separable training set yields zero errors; the estimate
	// falls back to the c·ln n floor and is still usable.
	r := rng.New(3)
	training := dataset.Uniform(100, 0, 1000, r).Items() // huge gaps vs δ=1e-6
	o := naiveOracle(1e-6, worker.RandomTie{R: r}, nil, r)
	est, err := EstimateUn(context.Background(), training, o, EstimateUnOptions{Perr: 0.5, N: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 {
		t.Fatalf("estimate = %d", est)
	}
	// Floor: (N/n̂)·c·ln N = 10·ln(1000) ≈ 69.
	want := int(math.Ceil(10 * math.Log(1000)))
	if est != want {
		t.Fatalf("estimate = %d, want c·ln n floor %d", est, want)
	}
}

func TestEstimateUnScalesWithN(t *testing.T) {
	// Assumption 1: the training count scales by N/n̂.
	r := rng.New(4)
	cal, err := dataset.UniformCalibrated(500, 15, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	o := naiveOracle(cal.DeltaN, worker.RandomTie{R: r.Child("w")}, nil, r.Child("w"))
	estSmall, err := EstimateUn(context.Background(), cal.Set.Items(), o, EstimateUnOptions{Perr: 0.5, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	o2 := naiveOracle(cal.DeltaN, worker.RandomTie{R: r.Child("w")}, nil, r.Child("w"))
	estBig, err := EstimateUn(context.Background(), cal.Set.Items(), o2, EstimateUnOptions{Perr: 0.5, N: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if estBig < 5*estSmall {
		t.Fatalf("estimate did not scale: N=500 → %d, N=5000 → %d", estSmall, estBig)
	}
}

func TestEstimatePerrValidation(t *testing.T) {
	r := rng.New(5)
	o := naiveOracle(0.1, worker.RandomTie{R: r}, nil, r)
	one := dataset.Uniform(1, 0, 1, r).Items()
	if _, err := EstimatePerr(context.Background(), one, o, EstimatePerrOptions{R: r}); err == nil {
		t.Fatal("single-element training accepted")
	}
	two := dataset.Uniform(2, 0, 1, r).Items()
	if _, err := EstimatePerr(context.Background(), two, o, EstimatePerrOptions{}); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestEstimatePerrRecoversModelValue(t *testing.T) {
	// Under the threshold model with random tie-breaking, under-threshold
	// answers err with probability 1/2; the consensus-based estimator
	// should land near 0.5.
	r := rng.New(6)
	// Tight cluster: everything under threshold → every pair hard.
	s, err := dataset.AdversarialIndistinguishable(50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	o := naiveOracle(1.0, worker.RandomTie{R: r.Child("w")}, nil, r.Child("w"))
	perr, err := EstimatePerr(context.Background(), s.Items(), o, EstimatePerrOptions{Pairs: 200, Votes: 9, R: r})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perr-0.5) > 0.06 {
		t.Fatalf("perr estimate = %.3f, want ≈0.5", perr)
	}
}

func TestEstimatePerrAllConsensusFallsBack(t *testing.T) {
	// Perfectly separable data: every pair reaches consensus, estimator
	// returns the uninformative prior.
	r := rng.New(7)
	s := dataset.Uniform(30, 0, 1000, r)
	o := naiveOracle(1e-9, worker.RandomTie{R: r}, nil, r)
	perr, err := EstimatePerr(context.Background(), s.Items(), o, EstimatePerrOptions{Pairs: 50, Votes: 5, R: r})
	if err != nil {
		t.Fatal(err)
	}
	if perr != 0.5 {
		t.Fatalf("fallback perr = %g, want 0.5", perr)
	}
}

func TestEstimatePipelineEndToEnd(t *testing.T) {
	// Full Section 4.4 workflow: estimate perr from consensus data, feed
	// it to Algorithm 4, run Algorithm 1 with the estimated un, and check
	// the accuracy guarantee still holds (overestimation is safe).
	r := rng.New(8)
	n := 1500
	cal, err := dataset.UniformCalibrated(n, 12, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	training, err := dataset.SampleSet(cal.Set, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	oEst := naiveOracle(cal.DeltaN, worker.RandomTie{R: r.Child("est")}, nil, r.Child("est"))
	perr, err := EstimatePerr(context.Background(), training.Items(), oEst, EstimatePerrOptions{Pairs: 150, Votes: 9, R: r})
	if err != nil {
		t.Fatal(err)
	}
	if perr < 0.2 { // guard: estimator degenerated
		perr = 0.5
	}
	est, err := EstimateUn(context.Background(), training.Items(), oEst, EstimateUnOptions{Perr: perr, N: n})
	if err != nil {
		t.Fatal(err)
	}
	if est > n/4 {
		est = n / 4 // un must stay o(n) for the filter to be useful
	}
	no, eo := oracles(cal, r, nil, nil)
	res, err := FindMax(context.Background(), cal.Set.Items(), no, eo, FindMaxOptions{Un: est})
	if err != nil {
		t.Fatal(err)
	}
	if d := cal.Set.Max().Value - res.Best.Value; d > 2*cal.DeltaE {
		t.Fatalf("estimated-un run returned d = %g > 2δe = %g", d, 2*cal.DeltaE)
	}
}
