package core

import (
	"context"
	"errors"
	"math"
	"sort"

	"crowdmax/internal/cost"
	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/rng"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

var errNilRNG = errors.New("core: randomized algorithm requires a random source")

// RandomizedOptions configures Algorithm 5.
type RandomizedOptions struct {
	// C is the confidence constant c of Algorithm 5: group sizes are
	// 80·(C+2) and the failure probability is s^{−c}. Defaults to 1.
	C int
	// R drives the random sampling and partitioning. Required.
	R *rng.Source
	// Scheduler selects the comparison schedule; see FilterOptions.Scheduler.
	// Under sched.DAG the independent group tournaments of one round are
	// drained in a single logical step.
	Scheduler sched.Kind
}

// RandomizedMaxFind is Algorithm 5 (from Ajtai et al. Section 3.2): a
// randomized max-finding algorithm that, under the threshold model T(δ, 0),
// returns an element within 3δ of the maximum with probability at least
// 1 − s^{−c}, using Θ(s) comparisons — but with constants so large
// (all-play-all tournaments in groups of 80·(c+2) elements, each round
// removing one element per group) that 2-MaxFind is cheaper at the input
// sizes the paper considers. The experiments of Section 5.1 reproduce this
// crossover.
//
// Each round samples s^{0.3} random elements into a reserve W, partitions
// the survivors into groups of 80·(C+2), plays an all-play-all tournament in
// each group, and removes each group's minimal element (fewest wins). When
// fewer than s^{0.3} survivors remain they join W, and a final all-play-all
// tournament over W picks the winner.
//
// The groups of one round share no data, so under sched.DAG a round is one
// logical step instead of one per group; the comparison sequence, answers,
// and billing are identical to the lockstep reference either way, and in
// particular the same RNG draws produce the same partitions.
//
// On cancellation or budget exhaustion the first surviving candidate is
// returned alongside the error as a best-effort partial answer.
func RandomizedMaxFind(ctx context.Context, items []item.Item, o *tournament.Oracle, opt RandomizedOptions) (item.Item, error) {
	s := len(items)
	if s == 0 {
		return item.Item{}, ErrNoItems
	}
	if s == 1 {
		return items[0], nil
	}
	if opt.R == nil {
		return item.Item{}, errNilRNG
	}
	c := opt.C
	if c < 1 {
		c = 1
	}
	groupSize := 80 * (c + 2)
	cutoff := math.Pow(float64(s), 0.3)
	sampleSize := int(math.Ceil(cutoff))

	sc := o.Obs().WithPhase(obs.PhaseRandomized)
	var startLedger cost.Snapshot
	if sc != nil {
		startLedger = o.LedgerSnapshot()
		sc.Event("randomized.start",
			obs.Fi("s", int64(s)), obs.Fi("group_size", int64(groupSize)),
			obs.Fi("sample", int64(sampleSize)))
	}

	ni := make([]item.Item, s)
	copy(ni, items)
	reserve := make(map[int]item.Item)

	round := 0
	for float64(len(ni)) >= cutoff && len(ni) > 1 {
		before := len(ni)
		// Sample s^0.3 elements at random into the reserve W.
		for _, idx := range opt.R.Perm(len(ni))[:min(sampleSize, len(ni))] {
			it := ni[idx]
			reserve[it.ID] = it
		}
		// Randomly partition into groups of 80(c+2) and drop each
		// group's minimal element.
		opt.R.Shuffle(len(ni), func(i, j int) { ni[i], ni[j] = ni[j], ni[i] })
		drop := make(map[int]bool)
		var err error
		if opt.Scheduler == sched.DAG {
			err = randomizedRoundDAG(ctx, o, ni, groupSize, drop)
		} else {
			err = randomizedRoundLockstep(ctx, o, ni, groupSize, drop)
		}
		if err != nil {
			return ni[0], err
		}
		if len(drop) == 0 {
			break // single survivor group of size 1
		}
		kept := ni[:0]
		for _, it := range ni {
			if !drop[it.ID] {
				kept = append(kept, it)
			}
		}
		ni = kept
		if sc != nil {
			sc.Round()
			sc.Event("randomized.round",
				obs.Fi("round", int64(round)), obs.Fi("in", int64(before)),
				obs.Fi("out", int64(len(ni))), obs.Fi("reserve", int64(len(reserve))))
		}
		round++
	}

	for _, it := range ni {
		reserve[it.ID] = it
	}
	finalists := make([]item.Item, 0, len(reserve))
	for _, it := range reserve {
		finalists = append(finalists, it)
	}
	// Deterministic order for reproducibility (map iteration is random).
	sort.Slice(finalists, func(i, j int) bool { return finalists[i].ID < finalists[j].ID })
	final, err := tournament.RoundRobin(ctx, finalists, o)
	if err != nil {
		return finalists[0], err
	}
	if sc != nil {
		d := o.LedgerSnapshot().Sub(startLedger)
		sc.PhaseComparisons(d.Comparisons)
		sc.Event("randomized.done",
			obs.Fi("rounds", int64(round)), obs.Fi("finalists", int64(len(finalists))),
			obs.Fi("comparisons", d.TotalComparisons()), obs.Fi("memo_hits", d.TotalMemoHits()))
	}
	return final.TopByWins(), nil
}

// randomizedRoundLockstep plays one round's group tournaments one batch at a
// time, recording each group's minimal element into drop.
func randomizedRoundLockstep(ctx context.Context, o *tournament.Oracle, ni []item.Item, groupSize int, drop map[int]bool) error {
	for start := 0; start < len(ni); start += groupSize {
		end := min(start+groupSize, len(ni))
		group := ni[start:end]
		if len(group) < 2 {
			continue
		}
		res, err := tournament.RoundRobin(ctx, group, o)
		if err != nil {
			return err
		}
		drop[res.MinByWins().ID] = true
	}
	return nil
}

// randomizedRoundDAG drains all of one round's independent group
// tournaments in a single frontier wave — one logical step — with each
// group's minimal element recorded in partition order, exactly like the
// lockstep pass.
func randomizedRoundDAG(ctx context.Context, o *tournament.Oracle, ni []item.Item, groupSize int, drop map[int]bool) error {
	f := sched.NewFrontier(o)
	mins := make([]int, 0, (len(ni)+groupSize-1)/groupSize)
	for start := 0; start < len(ni); start += groupSize {
		end := min(start+groupSize, len(ni))
		group := ni[start:end]
		if len(group) < 2 {
			continue
		}
		f.AddRoundRobin(group, tournament.RoundRobinOpts{}, func(res tournament.Result) error {
			mins = append(mins, res.MinByWins().ID)
			return nil
		})
	}
	if err := f.Run(ctx); err != nil {
		return err
	}
	for _, id := range mins {
		drop[id] = true
	}
	return nil
}
