package core

import (
	"context"
	"testing"
	"testing/quick"

	"crowdmax/internal/cost"
	"crowdmax/internal/dataset"
	"crowdmax/internal/item"
	"crowdmax/internal/rng"
	"crowdmax/internal/tournament"
	"crowdmax/internal/worker"
)

func TestTwoMaxFindEdges(t *testing.T) {
	r := rng.New(1)
	o := naiveOracle(0, worker.RandomTie{R: r}, nil, r)
	if _, err := TwoMaxFind(context.Background(), nil, o); err == nil {
		t.Fatal("empty input accepted")
	}
	single := []item.Item{{ID: 3, Value: 7}}
	got, err := TwoMaxFind(context.Background(), single, o)
	if err != nil || got.ID != 3 {
		t.Fatalf("singleton: %v, %v", got, err)
	}
}

func TestTwoMaxFindTruthfulOracleExact(t *testing.T) {
	// With δ = 0, ε = 0 the guarantee d(M, e) ≤ 2δ means the exact max.
	root := rng.New(2)
	for trial := 0; trial < 25; trial++ {
		r := root.ChildN("t", trial)
		n := 2 + r.Intn(300)
		s := dataset.Uniform(n, 0, 1, r)
		o := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
		got, err := TwoMaxFind(context.Background(), s.Items(), o)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != s.Max().ID {
			t.Fatalf("trial %d: returned rank %d", trial, s.Rank(got.ID))
		}
	}
}

func TestTwoMaxFindGuaranteeUnderThresholdModel(t *testing.T) {
	// Ajtai et al.: the returned element is within 2δ of the maximum.
	root := rng.New(3)
	for trial := 0; trial < 40; trial++ {
		r := root.ChildN("t", trial)
		n := 2 + r.Intn(200)
		delta := 0.05 + r.Float64()*0.1
		s := dataset.Uniform(n, 0, 1, r)
		w := &worker.Threshold{Delta: delta, Tie: worker.RandomTie{R: r}, R: r}
		o := tournament.NewOracle(w, worker.Expert, nil, nil)
		got, err := TwoMaxFind(context.Background(), s.Items(), o)
		if err != nil {
			t.Fatal(err)
		}
		if d := item.Distance(s.Max(), got); d > 2*delta {
			t.Fatalf("trial %d: d(M, e) = %g > 2δ = %g", trial, d, 2*delta)
		}
	}
}

func TestTwoMaxFindGuaranteeAgainstAdversary(t *testing.T) {
	// The 2δ guarantee must hold against adversarial tie-breaking too —
	// and the run must terminate (progress is guaranteed by reusing the
	// pivot's tournament results).
	root := rng.New(4)
	for trial := 0; trial < 25; trial++ {
		r := root.ChildN("t", trial)
		n := 2 + r.Intn(150)
		delta := 0.2
		s := dataset.Uniform(n, 0, 1, r)
		w := &worker.Threshold{Delta: delta, Tie: worker.AdversarialTie{}, R: r}
		o := tournament.NewOracle(w, worker.Expert, nil, nil)
		got, err := TwoMaxFind(context.Background(), s.Items(), o)
		if err != nil {
			t.Fatal(err)
		}
		if d := item.Distance(s.Max(), got); d > 2*delta {
			t.Fatalf("trial %d: adversarial d(M, e) = %g > %g", trial, d, 2*delta)
		}
	}
}

func TestTwoMaxFindAllIndistinguishableTerminates(t *testing.T) {
	// Worst case: every pair under threshold, adversary in control. Any
	// answer is within 2δ; the point is termination and the comparison
	// bound.
	s, err := dataset.AdversarialIndistinguishable(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	l := cost.NewLedger()
	w := &worker.Threshold{Delta: 1.0, Tie: worker.AdversarialTie{}, R: r}
	o := tournament.NewOracle(w, worker.Expert, l, nil)
	if _, err := TwoMaxFind(context.Background(), s.Items(), o); err != nil {
		t.Fatal(err)
	}
	if float64(l.Expert()) > TwoMaxFindUpperBound(100) {
		t.Fatalf("%d comparisons exceed 2·s^1.5 = %g", l.Expert(), TwoMaxFindUpperBound(100))
	}
}

func TestTwoMaxFindComparisonBound(t *testing.T) {
	root := rng.New(6)
	for _, n := range []int{10, 50, 100, 400, 1000} {
		r := root.ChildN("n", n)
		s := dataset.Uniform(n, 0, 1, r)
		l := cost.NewLedger()
		w := &worker.Threshold{Delta: 0.05, Tie: worker.RandomTie{R: r}, R: r}
		o := tournament.NewOracle(w, worker.Expert, l, nil)
		if _, err := TwoMaxFind(context.Background(), s.Items(), o); err != nil {
			t.Fatal(err)
		}
		if float64(l.Expert()) > TwoMaxFindUpperBound(n) {
			t.Fatalf("n=%d: %d comparisons > %g", n, l.Expert(), TwoMaxFindUpperBound(n))
		}
	}
}

func TestTwoMaxFindDoesNotMutateInput(t *testing.T) {
	r := rng.New(7)
	s := dataset.Uniform(50, 0, 1, r)
	in := s.Items()
	want := s.Items()
	o := tournament.NewOracle(worker.Truth, worker.Expert, nil, nil)
	if _, err := TwoMaxFind(context.Background(), in, o); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != want[i] {
			t.Fatal("input slice mutated")
		}
	}
}

func TestTwoMaxFindProperty(t *testing.T) {
	root := rng.New(8)
	trial := 0
	f := func(nRaw uint8, deltaRaw uint8) bool {
		trial++
		r := root.ChildN("q", trial)
		n := int(nRaw)%120 + 2
		delta := float64(deltaRaw%50)/100 + 0.01
		s := dataset.Uniform(n, 0, 1, r)
		l := cost.NewLedger()
		w := &worker.Threshold{Delta: delta, Tie: worker.RandomTie{R: r}, R: r}
		o := tournament.NewOracle(w, worker.Expert, l, nil)
		got, err := TwoMaxFind(context.Background(), s.Items(), o)
		if err != nil {
			return false
		}
		return item.Distance(s.Max(), got) <= 2*delta &&
			float64(l.Expert()) <= TwoMaxFindUpperBound(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
