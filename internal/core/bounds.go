package core

import "math"

// The functions in this file evaluate the closed-form comparison bounds of
// Sections 4.2–4.3. The experiments use them for the paper's worst-case
// curves ("For our algorithm we considered the upper bound predicted by the
// theory"), and the tests use them to check that measured comparison counts
// never exceed the proven bounds.

// Phase1UpperBound returns 4·n·un, Lemma 3's bound on the naïve comparisons
// performed by Algorithm 2.
func Phase1UpperBound(n, un int) float64 {
	return 4 * float64(n) * float64(un)
}

// Phase1LowerBound returns n·un/4, Corollary 1's lower bound on the naïve
// comparisons any algorithm needs to return a guaranteed candidate set of
// size at most n/2.
func Phase1LowerBound(n, un int) float64 {
	return float64(n) * float64(un) / 4
}

// CandidateSetBound returns 2·un − 1, Lemma 3's bound on |S|.
func CandidateSetBound(un int) int {
	return 2*un - 1
}

// TwoMaxFindUpperBound returns 2·s^{3/2}, the bound on 2-MaxFind's
// comparisons over s elements used in Theorem 1.
func TwoMaxFindUpperBound(s int) float64 {
	return 2 * math.Pow(float64(s), 1.5)
}

// Phase2ExpertUpperBound returns Theorem 1's bound on the expert
// comparisons of Algorithm 1 with a 2-MaxFind phase 2: 2·un^{3/2} evaluated
// on the worst-case candidate set size 2·un − 1 would double-count, so the
// paper states it directly as 2·un(n)^{3/2} with the candidate bound
// folded in; here we evaluate 2·(2·un−1)^{3/2}, the bound for the actual
// candidate set delivered by phase 1.
func Phase2ExpertUpperBound(un int) float64 {
	return TwoMaxFindUpperBound(CandidateSetBound(un))
}

// Phase2DeterministicLowerBound returns Ω(un^{4/3}) evaluated with constant
// 1 — Lemma 6's lower bound on expert comparisons for any deterministic
// algorithm returning an element within 2δe of the maximum.
func Phase2DeterministicLowerBound(un int) float64 {
	return math.Pow(float64(un), 4.0/3.0)
}

// RandomizedExpertBound returns Lemma 5's expert-comparison bound for the
// randomized phase 2, un^{1.7} + un^{0.6}·log²(un), evaluated with constant
// 1 (natural log).
func RandomizedExpertBound(un int) float64 {
	u := float64(un)
	if u < 1 {
		return 0
	}
	lg := math.Log(u)
	return math.Pow(u, 1.7) + math.Pow(u, 0.6)*lg*lg
}
