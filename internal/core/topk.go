package core

import (
	"context"
	"fmt"
	"sort"

	"crowdmax/internal/item"
	"crowdmax/internal/obs"
	"crowdmax/internal/sched"
	"crowdmax/internal/tournament"
)

// TopKOptions configures TopK.
type TopKOptions struct {
	// K is the number of elements to return, best first.
	K int
	// U must upper-bound, for every prefix maximum encountered (the
	// overall maximum, the maximum after removing it, and so on K times),
	// the number of elements naïve-indistinguishable from it. The single
	// un(n) of the max-finding problem suffices when the top-K elements
	// have neighbourhoods of similar size; otherwise overestimate — as
	// with Algorithm 1, overestimation costs money, never accuracy.
	U int
	// Phase2 selects the expert extraction algorithm per round.
	Phase2 Phase2Algorithm
	// TrackLosses enables the Appendix A loss counters per round.
	TrackLosses bool
	// Randomized configures Algorithm 5 when Phase2 is Phase2Randomized.
	Randomized RandomizedOptions
	// Scheduler selects the comparison schedule of every round's two-phase
	// run; see FilterOptions.Scheduler.
	Scheduler sched.Kind
	// OnRound, when set, is called after every completed round with the
	// 0-based round index and its winner — the hook checkpointing callers
	// use to snapshot at rank boundaries.
	OnRound func(round int, winner item.Item)
}

// RoundError reports a TopK run truncated mid-round: the first Completed
// ranks of the returned prefix are final, and Best is the truncated round's
// best-so-far leader (the zero Item when the round had none). It wraps the
// underlying cause, so errors.Is sees context.Canceled, budget exhaustion,
// and friends through it.
type RoundError struct {
	// Round is the 1-based round that failed.
	Round int
	// Completed is the number of fully completed rounds (= ranks returned).
	Completed int
	// Best is the failed round's best-so-far element, zero if none.
	Best item.Item
	// Err is the underlying cause.
	Err error
}

// Error formats like the historical "round %d: %v" message.
func (e *RoundError) Error() string { return fmt.Sprintf("round %d: %v", e.Round, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RoundError) Unwrap() error { return e.Err }

// TopK returns k elements ordered best-first by running the two-phase
// expert-aware algorithm k times, removing each round's winner — the
// selection-sort composition that turns max-finding into the ranking tasks
// the paper's introduction motivates ("ranking of search results,
// evaluation of web-page relevance").
//
// Guarantee under T(δ, 0) workers with a 2-MaxFind phase 2 and a valid U:
// the i-th returned element is within 2·δe of the true maximum of the set
// with the previous i−1 returns removed. Cost: at most k·4·n·U naïve and
// k·2·(2U−1)^{3/2} expert comparisons. Memoized oracles make later rounds
// substantially cheaper, since most pairs repeat.
//
// On cancellation or budget exhaustion TopK returns the prefix of fully
// completed rounds alongside a *RoundError: the first len(result) ranks are
// final, and the error carries the truncated round's completed-rank count
// and best-so-far leader (also surfaced as a "topk.truncated" obs event), so
// callers can report partial progress instead of discarding it.
func TopK(ctx context.Context, items []item.Item, naive, expert *tournament.Oracle, opt TopKOptions) ([]item.Item, error) {
	if len(items) == 0 {
		return nil, ErrNoItems
	}
	if opt.K < 1 || opt.K > len(items) {
		return nil, fmt.Errorf("core: TopK requires 1 ≤ k ≤ n, got k=%d n=%d", opt.K, len(items))
	}
	if opt.U < 1 {
		return nil, fmt.Errorf("core: TopK requires U ≥ 1, got %d", opt.U)
	}

	remaining := make([]item.Item, len(items))
	copy(remaining, items)
	out := make([]item.Item, 0, opt.K)
	for round := 0; round < opt.K; round++ {
		if len(remaining) == 1 {
			out = append(out, remaining[0])
			if opt.OnRound != nil {
				opt.OnRound(round, out[len(out)-1])
			}
			remaining = remaining[:0]
			continue
		}
		res, err := FindMax(ctx, remaining, naive, expert, FindMaxOptions{
			Un:          opt.U,
			Phase2:      opt.Phase2,
			TrackLosses: opt.TrackLosses,
			Randomized:  opt.Randomized,
			Scheduler:   opt.Scheduler,
		})
		if err != nil {
			if sc := topkScope(naive, expert); sc != nil {
				sc.Event("topk.truncated",
					obs.Fi("round", int64(round+1)), obs.Fi("completed", int64(len(out))),
					obs.Fi("partial_best", int64(res.Best.ID)))
			}
			return out, &RoundError{Round: round + 1, Completed: len(out), Best: res.Best, Err: err}
		}
		out = append(out, res.Best)
		if opt.OnRound != nil {
			opt.OnRound(round, res.Best)
		}
		kept := remaining[:0]
		for _, it := range remaining {
			if it.ID != res.Best.ID {
				kept = append(kept, it)
			}
		}
		remaining = kept
	}
	return out, nil
}

// topkScope picks the obs scope TopK events go to: the naive oracle's, or
// the expert's when only that one is instrumented.
func topkScope(naive, expert *tournament.Oracle) *obs.Scope {
	if sc := naive.Obs(); sc != nil {
		return sc
	}
	return expert.Obs()
}

// RankByWins orders items by their win counts in an all-play-all tournament
// under the oracle, best first (stable on ties). This is the "last round"
// ranking procedure of the paper's Tables 1 and 2.
func RankByWins(ctx context.Context, items []item.Item, o *tournament.Oracle) ([]item.Item, error) {
	if len(items) == 0 {
		return nil, nil
	}
	res, err := tournament.RoundRobin(ctx, items, o)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return res.Wins[order[a]] > res.Wins[order[b]] })
	out := make([]item.Item, len(items))
	for i, idx := range order {
		out[i] = items[idx]
	}
	return out, nil
}
